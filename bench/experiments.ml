(* One function per paper table/figure. All output is printed as aligned
   text tables; EXPERIMENTS.md records paper-vs-measured values. *)

open Context
module Xgboost = Tb_baselines.Xgboost
module Treelite = Tb_baselines.Treelite
module Hummingbird = Tb_baselines.Hummingbird
module Cost_model = Tb_cpu.Cost_model
module Layout = Tb_lir.Layout
module Program = Tb_hir.Program
module Vtune = Tb_cpu.Vtune
module Multicore = Tb_cpu.Multicore

let intel = Config.intel_rocket_lake
let amd = Config.amd_ryzen7
let geomean xs = Stats.geomean (Array.of_list xs)

(* ------------------------------------------------------------------ *)

let table1 () =
  heading "Table I: benchmark datasets and their parameters";
  let t =
    Table.create
      [ "Dataset"; "#Features"; "#Trees"; "Max Depth"; "#Leaf-biased";
        "(paper #Trees)"; "(paper #Leaf-biased)" ]
  in
  List.iter
    (fun name ->
      let b = load name in
      let spec = b.entry.Zoo.spec in
      let forest = b.entry.Zoo.forest in
      let biased =
        Model_stats.num_leaf_biased forest
          b.entry.Zoo.train_data.Dataset.features ~alpha:0.075 ~beta:0.9
      in
      Table.add_row t
        [
          name;
          string_of_int forest.Forest.num_features;
          string_of_int (Array.length forest.Forest.trees);
          string_of_int (Forest.max_depth forest);
          string_of_int biased;
          string_of_int spec.Zoo.paper_trees;
          string_of_int spec.Zoo.paper_leaf_biased;
        ])
    all_names;
  Table.print t

(* ------------------------------------------------------------------ *)

let table2 () =
  heading "Table II: space of optimizations explored";
  let t = Table.create [ "Optimization"; "Configurations" ] in
  Table.add_row t [ "Loop order"; "one tree at a time / one row at a time" ];
  Table.add_row t [ "Tile size"; "1, 2, 4, 8" ];
  Table.add_row t [ "Tiling type"; "basic / probability-based" ];
  Table.add_row t [ "Tree padding and unrolling"; "yes / no" ];
  Table.add_row t [ "Tree walk interleaving"; "1, 2, 4, 8" ];
  Table.add_row t [ "<alpha,beta> for leaf-bias"; "(0.05,0.9) (0.075,0.9) (0.1,0.9)" ];
  Table.print t;
  Printf.printf "Total schedules in the exhaustive grid: %d\n"
    (List.length Schedule.table2_grid);
  Printf.printf "Schedules probed by the greedy autotuner: ~%d per (model, target)\n"
    (best_schedule "higgs" intel).Explore.evaluated

(* ------------------------------------------------------------------ *)

let fig3 () =
  heading "Figure 3: leaf-coverage statistical profiles";
  List.iter
    (fun name ->
      let b = load name in
      Printf.printf "\n%s: fraction of trees (y) needing at most a fraction (x) of\ntheir leaves to cover a fraction f of training inputs\n" name;
      let t =
        Table.create
          ([ "f \\ x" ] @ List.map (fun x -> Printf.sprintf "%.2f" x)
             [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.35; 0.5; 0.75; 1.0 ])
      in
      List.iter
        (fun f ->
          let cdf =
            Model_stats.coverage_cdf b.entry.Zoo.forest
              b.entry.Zoo.train_data.Dataset.features ~f
          in
          let y_at x =
            (* fraction of trees whose needed-leaf fraction is <= x *)
            let n = Array.length cdf in
            let below = Array.fold_left (fun acc (xi, _) -> if xi <= x then acc + 1 else acc) 0 cdf in
            float_of_int below /. float_of_int n
          in
          Table.add_row t
            (Printf.sprintf "%.2f" f
            :: List.map
                 (fun x -> Table.cell_f (y_at x))
                 [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.35; 0.5; 0.75; 1.0 ]))
        [ 0.8; 0.9; 0.95 ];
      Table.print t)
    [ "airline-ohe"; "epsilon" ]

(* ------------------------------------------------------------------ *)

let fig7a () =
  heading
    "Figure 7a: single-core speedup of TREEBEARD-optimized code over the\n\
     scalar baseline, batch 1024 (number = optimized us/row)";
  let t =
    Table.create
      [ "benchmark"; "Intel speedup"; "Intel us/row"; "Intel best schedule";
        "AMD speedup"; "AMD us/row" ]
  in
  let intel_sp = ref [] and amd_sp = ref [] in
  List.iter
    (fun name ->
      let row target =
        let base = baseline_perf name target in
        let best = best_schedule name target in
        let sp = base.Perf.cycles_per_row /. best.Explore.perf.Perf.cycles_per_row in
        (sp, best.Explore.perf.Perf.time_per_row_us, best.Explore.schedule)
      in
      let i_sp, i_us, i_sched = row intel in
      let a_sp, a_us, _ = row amd in
      intel_sp := i_sp :: !intel_sp;
      amd_sp := a_sp :: !amd_sp;
      Table.add_row t
        [
          name; Table.cell_fx i_sp; Table.cell_f i_us; Schedule.to_string i_sched;
          Table.cell_fx a_sp; Table.cell_f a_us;
        ])
    all_names;
  Table.add_sep t;
  Table.add_row t
    [ "geomean"; Table.cell_fx (geomean !intel_sp); "";
      "(paper: 2.45x Intel)"; Table.cell_fx (geomean !amd_sp); "(paper: 2.06x AMD)" ];
  Table.print t

(* ------------------------------------------------------------------ *)

let fig7b () =
  heading
    "Figure 7b: 16-core speedup over the single-core scalar baseline,\n\
     batch 1024";
  let t = Table.create [ "benchmark"; "Intel speedup"; "AMD speedup" ] in
  let intel_sp = ref [] and amd_sp = ref [] in
  List.iter
    (fun name ->
      let speedup target =
        let base = baseline_perf name target in
        let best = best_schedule name target in
        let par = simulate ~threads:16 name target best.Explore.schedule in
        base.Perf.cycles_per_row /. par.Perf.cycles_per_row
      in
      let i = speedup intel and a = speedup amd in
      intel_sp := i :: !intel_sp;
      amd_sp := a :: !amd_sp;
      Table.add_row t [ name; Table.cell_fx i; Table.cell_fx a ])
    all_names;
  Table.add_sep t;
  Table.add_row t
    [ "geomean"; Table.cell_fx (geomean !intel_sp); Table.cell_fx (geomean !amd_sp) ];
  Table.print t

(* ------------------------------------------------------------------ *)

let xgb_perf ?(version = Xgboost.V15) ?(threads = 1) name (target : Config.t) =
  let b = load name in
  let packed = Xgboost.compile b.entry.Zoo.forest in
  let sample = Array.sub b.rows_1024 0 48 in
  let w = Xgboost.profile ~target packed version sample in
  let breakdown = Cost_model.estimate target w in
  let single = breakdown.Cost_model.cycles /. float_of_int w.Cost_model.rows in
  (single /. Multicore.speedup target ~threads (), breakdown, w)

let treelite_perf ?(threads = 1) name (target : Config.t) =
  let b = load name in
  let compiled = Treelite.compile b.entry.Zoo.forest in
  let sample = Array.sub b.rows_1024 0 48 in
  let w = Treelite.profile ~target compiled sample in
  let breakdown = Cost_model.estimate target w in
  let single = breakdown.Cost_model.cycles /. float_of_int w.Cost_model.rows in
  (single /. Multicore.speedup target ~threads (), breakdown, w)

let hummingbird_perf ?(threads = 1) name (target : Config.t) =
  let b = load name in
  let compiled = Hummingbird.compile b.entry.Zoo.forest in
  Hummingbird.cycles_per_row ~target ~threads compiled

let tb_best_perf ?(threads = 1) name target =
  let best = best_schedule name target in
  if threads = 1 then best.Explore.perf.Perf.cycles_per_row
  else (simulate ~threads name target best.Explore.schedule).Perf.cycles_per_row

let fig8 ~threads () =
  heading
    (Printf.sprintf
       "Figure 8%s: TREEBEARD vs XGBoost and Treelite, batch 1024, %d core(s)\n\
        (numbers = baseline us/row on Intel)"
       (if threads = 1 then "a" else "b")
       threads);
  let t =
    Table.create
      [ "benchmark"; "vs XGBoost (Intel)"; "vs Treelite (Intel)";
        "XGB us/row"; "TL us/row"; "vs XGBoost (AMD)"; "vs Treelite (AMD)" ]
  in
  let accum = Array.make 4 [] in
  List.iter
    (fun name ->
      let per target =
        let tb = tb_best_perf ~threads name target in
        let xgb, _, _ = xgb_perf ~threads name target in
        let tl, _, _ = treelite_perf ~threads name target in
        (xgb /. tb, tl /. tb, xgb, tl)
      in
      let xi, ti, xgb_c, tl_c = per intel in
      let xa, ta, _, _ = per amd in
      accum.(0) <- xi :: accum.(0);
      accum.(1) <- ti :: accum.(1);
      accum.(2) <- xa :: accum.(2);
      accum.(3) <- ta :: accum.(3);
      Table.add_row t
        [
          name; Table.cell_fx xi; Table.cell_fx ti;
          Table.cell_f (xgb_c /. 3500.0); Table.cell_f (tl_c /. 3500.0);
          Table.cell_fx xa; Table.cell_fx ta;
        ])
    all_names;
  Table.add_sep t;
  Table.add_row t
    [
      "geomean";
      Table.cell_fx (geomean accum.(0));
      Table.cell_fx (geomean accum.(1));
      (if threads = 1 then "(paper: 2.6x" else "(paper: 2.3x");
      (if threads = 1 then "4.7x)" else "2.7x)");
      Table.cell_fx (geomean accum.(2));
      Table.cell_fx (geomean accum.(3));
    ];
  Table.print t

let fig8a () = fig8 ~threads:1 ()
let fig8b () = fig8 ~threads:16 ()

(* ------------------------------------------------------------------ *)

let batch_sizes = [ 64; 128; 256; 512; 1024; 2048; 4096 ]

let fig9 () =
  heading
    "Figure 9: geomean speedup of TREEBEARD over XGBoost and Treelite on a\n\
     single core across batch sizes (Intel)";
  let t =
    Table.create
      ([ "batch" ] @ [ "vs XGBoost"; "vs Treelite" ])
  in
  List.iter
    (fun batch ->
      let xs = ref [] and ts = ref [] in
      List.iter
        (fun name ->
          let best = best_schedule name intel in
          let tb = (simulate ~batch name intel best.Explore.schedule).Perf.cycles_per_row in
          let xgb, _, _ = xgb_perf name intel in
          let tl, _, _ = treelite_perf name intel in
          xs := (xgb /. tb) :: !xs;
          ts := (tl /. tb) :: !ts)
        all_names;
      Table.add_row t
        [ string_of_int batch; Table.cell_fx (geomean !xs); Table.cell_fx (geomean !ts) ])
    batch_sizes;
  Table.print t

(* ------------------------------------------------------------------ *)

let fig10 () =
  heading
    "Figure 10: single-core comparison with Hummingbird, batch 1024 (Intel).\n\
     Bars = per-row time normalized to Hummingbird (lower is better)";
  let t =
    Table.create
      [ "benchmark"; "Hummingbird"; "XGBoost v0.9"; "XGBoost v1.5"; "TREEBEARD";
        "HB us/row"; "TB us/row" ]
  in
  let tb_ratios = ref [] in
  List.iter
    (fun name ->
      let hb = hummingbird_perf name intel in
      let x09, _, _ = xgb_perf ~version:Xgboost.V09 name intel in
      let x15, _, _ = xgb_perf ~version:Xgboost.V15 name intel in
      let tb = tb_best_perf name intel in
      tb_ratios := (hb /. tb) :: !tb_ratios;
      Table.add_row t
        [
          name; "1.00";
          Table.cell_f (x09 /. hb);
          Table.cell_f (x15 /. hb);
          Table.cell_f (tb /. hb);
          Table.cell_f (hb /. 3500.0);
          Table.cell_f (tb /. 3500.0);
        ])
    all_names;
  Table.add_sep t;
  Table.add_row t
    [ "geomean TB speedup vs HB"; Table.cell_fx (geomean !tb_ratios);
      "(paper: 5.4x)"; ""; ""; ""; "" ];
  Table.print t;
  Printf.printf
    "16-core: TREEBEARD vs Hummingbird (HB capped at ~%d effective cores):\n"
    Hummingbird.effective_core_cap;
  let ratios =
    List.map
      (fun name ->
        hummingbird_perf ~threads:16 name intel /. tb_best_perf ~threads:16 name intel)
      all_names
  in
  Printf.printf "geomean = %.1fx (paper: 14x)\n" (geomean ratios)

(* ------------------------------------------------------------------ *)

(* Fig 11 schedules: low-level optimizations only (tile + vectorize +
   layout), mid-level optimizations disabled. *)
let fig11_base_schedule =
  {
    Schedule.default with
    tile_size = 8;
    tiling = Schedule.Basic;
    pad_and_unroll = false;
    peel = false;
    interleave = 1;
    layout = Schedule.Sparse_layout;
  }

let fig11a () =
  heading
    "Figure 11a: tiling algorithm impact at batch 1024 (Intel, tile size 8,\n\
     mid-level optimizations disabled). Speedup over scalar baseline";
  let t =
    Table.create
      [ "benchmark"; "basic tiling"; "+ probability-based"; "#leaf-biased trees" ]
  in
  List.iter
    (fun name ->
      let b = load name in
      let base = baseline_perf name intel in
      let basic = simulate name intel fig11_base_schedule in
      let prob =
        simulate name intel
          { fig11_base_schedule with Schedule.tiling = Schedule.Probability_based }
      in
      let biased =
        Model_stats.num_leaf_biased b.entry.Zoo.forest
          b.entry.Zoo.train_data.Dataset.features ~alpha:0.075 ~beta:0.9
      in
      Table.add_row t
        [
          name;
          Table.cell_fx (base.Perf.cycles_per_row /. basic.Perf.cycles_per_row);
          Table.cell_fx (base.Perf.cycles_per_row /. prob.Perf.cycles_per_row);
          string_of_int biased;
        ])
    all_names;
  Table.print t

let fig11b () =
  heading
    "Figure 11b: walk unrolling & interleaving impact at batch 1024 (Intel).\n\
     Speedup over scalar baseline";
  let t =
    Table.create
      [ "benchmark"; "tiling only"; "+ unroll/peel + interleave(8)" ]
  in
  let only = ref [] and full = ref [] in
  List.iter
    (fun name ->
      let base = baseline_perf name intel in
      let tiled = simulate name intel fig11_base_schedule in
      let opt =
        simulate name intel
          {
            fig11_base_schedule with
            Schedule.pad_and_unroll = true;
            peel = true;
            interleave = 8;
          }
      in
      let s1 = base.Perf.cycles_per_row /. tiled.Perf.cycles_per_row in
      let s2 = base.Perf.cycles_per_row /. opt.Perf.cycles_per_row in
      only := s1 :: !only;
      full := s2 :: !full;
      Table.add_row t [ name; Table.cell_fx s1; Table.cell_fx s2 ])
    all_names;
  Table.add_sep t;
  Table.add_row t
    [ "geomean (paper: 1.5x -> 2.4x)"; Table.cell_fx (geomean !only);
      Table.cell_fx (geomean !full) ];
  Table.print t

(* ------------------------------------------------------------------ *)

let fig12 () =
  heading
    "Figure 12: single-core geomean speedup of optimized code over the\n\
     scalar baseline across batch sizes";
  let t = Table.create [ "batch"; "Intel"; "AMD" ] in
  List.iter
    (fun batch ->
      let sp target =
        geomean
          (List.map
             (fun name ->
               let base = baseline_perf ~batch name target in
               let best = best_schedule name target in
               let opt = (simulate ~batch name target best.Explore.schedule) in
               base.Perf.cycles_per_row /. opt.Perf.cycles_per_row)
             all_names)
      in
      Table.add_row t
        [ string_of_int batch; Table.cell_fx (sp intel); Table.cell_fx (sp amd) ])
    batch_sizes;
  Table.print t

(* ------------------------------------------------------------------ *)

let fig13 () =
  heading
    "Figure 13: TREEBEARD scaling with core count (speedup over single-core\n\
     scalar baseline, batch 1024, Intel)";
  let cores = [ 1; 2; 4; 8; 16 ] in
  let t =
    Table.create ([ "benchmark" ] @ List.map (fun c -> Printf.sprintf "%d cores" c) cores)
  in
  List.iter
    (fun name ->
      let base = baseline_perf name intel in
      let best = best_schedule name intel in
      Table.add_row t
        (name
        :: List.map
             (fun c ->
               let p = simulate ~threads:c name intel best.Explore.schedule in
               Table.cell_fx (base.Perf.cycles_per_row /. p.Perf.cycles_per_row))
             cores))
    all_names;
  Table.print t

(* ------------------------------------------------------------------ *)

let sec5b () =
  heading
    "Section V-B: model memory footprint by representation (tile size 8,\n\
     basic tiling). Paper: array ~8x scalar; sparse ~6.8x smaller than\n\
     array and ~1.16x scalar";
  let t =
    Table.create
      [ "benchmark"; "scalar KB"; "array KB"; "sparse KB"; "array/scalar";
        "array/sparse"; "sparse/scalar" ]
  in
  let r1 = ref [] and r2 = ref [] and r3 = ref [] in
  List.iter
    (fun name ->
      let b = load name in
      let forest = b.entry.Zoo.forest in
      let layout_bytes kind tile_size =
        let schedule =
          { Schedule.scalar_baseline with tile_size; tiling = Schedule.Basic }
        in
        let p = Program.build forest schedule in
        Layout.memory_bytes (Layout.build_kind kind p)
      in
      let scalar = layout_bytes Layout.Sparse_kind 1 in
      let arr = layout_bytes Layout.Array_kind 8 in
      let sparse = layout_bytes Layout.Sparse_kind 8 in
      let f1 = float_of_int arr /. float_of_int scalar in
      let f2 = float_of_int arr /. float_of_int sparse in
      let f3 = float_of_int sparse /. float_of_int scalar in
      r1 := f1 :: !r1;
      r2 := f2 :: !r2;
      r3 := f3 :: !r3;
      Table.add_row t
        [
          name;
          string_of_int (scalar / 1024);
          string_of_int (arr / 1024);
          string_of_int (sparse / 1024);
          Table.cell_fx f1; Table.cell_fx f2; Table.cell_fx f3;
        ])
    all_names;
  Table.add_sep t;
  Table.add_row t
    [ "geomean"; ""; ""; ""; Table.cell_fx (geomean !r1); Table.cell_fx (geomean !r2);
      Table.cell_fx (geomean !r3) ];
  Table.print t

(* ------------------------------------------------------------------ *)

let sec6e () =
  heading
    "Section VI-E: microarchitectural analysis (Intel). Stall attribution\n\
     per variant, batch 1024";
  List.iter
    (fun name ->
      Printf.printf "\n--- %s ---\n" name;
      let variant label schedule =
        let p = simulate name intel schedule in
        { Vtune.variant = label; breakdown = p.Perf.breakdown;
          rows = p.Perf.workload.Cost_model.rows }
      in
      let scalar_tree =
        { Schedule.scalar_baseline with loop_order = Schedule.One_tree_at_a_time }
      in
      let vector = fig11_base_schedule in
      let interleaved =
        { fig11_base_schedule with Schedule.pad_and_unroll = true; peel = true; interleave = 8 }
      in
      let rows =
        [
          variant "OneRow (scalar, row-major)" Schedule.scalar_baseline;
          variant "OneTree (scalar, tree-major)" scalar_tree;
          variant "Vector (nt=8, tree-major)" vector;
          variant "Interleaved (+unroll, il=8)" interleaved;
          (let _, breakdown, w = treelite_perf name intel in
           { Vtune.variant = "Treelite (if-else expansion)"; breakdown;
             rows = w.Cost_model.rows });
        ]
      in
      Table.print (Vtune.table rows))
    [ "abalone"; "higgs" ]

(* ------------------------------------------------------------------ *)

let wallclock () =
  heading
    "Real wall-clock sanity check (OCaml closure backend; absolute numbers\n\
     are not comparable to the paper's C++/LLVM builds, shapes should hold)";
  let t =
    Table.create
      [ "benchmark"; "tb-scalar us/row"; "tb-best us/row"; "speedup";
        "xgboost-style us/row"; "treelite-style us/row" ]
  in
  List.iter
    (fun name ->
      let b = load name in
      let forest = b.entry.Zoo.forest in
      let rows = b.rows_1024 in
      let n = float_of_int (Array.length rows) in
      let time f =
        let r = Tb_util.Timer.measure ~warmup:1 ~min_iters:3 ~min_time_s:0.3 f in
        r.Tb_util.Timer.mean_s /. n *. 1e6
      in
      let scalar =
        Tb_core.Treebeard.make
          ~plan:(`Schedule Schedule.scalar_baseline)
          (`Forest forest)
      in
      let best =
        Tb_core.Treebeard.make
          ~plan:(`Schedule (best_schedule name intel).Explore.schedule)
          ~profiles:b.profiles (`Forest forest)
      in
      let xgb = Xgboost.compile forest in
      let tl = Treelite.compile forest in
      let t_scalar = time (fun () -> ignore (Tb_core.Treebeard.predict_forest scalar rows)) in
      let t_best = time (fun () -> ignore (Tb_core.Treebeard.predict_forest best rows)) in
      let t_xgb = time (fun () -> ignore (Xgboost.predict_batch xgb Xgboost.V15 rows)) in
      let t_tl = time (fun () -> ignore (Treelite.predict_batch tl rows)) in
      Table.add_row t
        [
          name;
          Table.cell_f t_scalar;
          Table.cell_f t_best;
          Table.cell_fx (t_scalar /. t_best);
          Table.cell_f t_xgb;
          Table.cell_f t_tl;
        ])
    [ "abalone"; "airline"; "higgs"; "letter" ];
  Table.print t

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)

(* Extension beyond the paper's figures: one-axis ablation of the tuned
   schedule, quantifying how much each optimization contributes on each
   benchmark (the per-axis analogue of Fig. 11). *)
let ablation () =
  heading
    "Ablation (extension): slowdown from disabling one optimization of the\n\
     tuned schedule at a time (Intel, batch 1024; 1.00x = no effect)";
  let t =
    Table.create
      [ "benchmark"; "best cyc/row"; "scalar tiles"; "row-major"; "no unroll/peel";
        "no interleave"; "basic tiling"; "other layout" ]
  in
  List.iter
    (fun name ->
      let best = best_schedule name intel in
      let s0 = best.Explore.schedule in
      let c0 = best.Explore.perf.Perf.cycles_per_row in
      let flip schedule =
        match simulate name intel schedule with
        | p -> Table.cell_fx (p.Perf.cycles_per_row /. c0)
        | exception Invalid_argument _ -> "n/a"
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f" c0;
          flip { s0 with Schedule.tile_size = 1; layout = Schedule.Array_layout };
          flip
            {
              s0 with
              Schedule.loop_order =
                (match s0.Schedule.loop_order with
                | Schedule.One_tree_at_a_time -> Schedule.One_row_at_a_time
                | Schedule.One_row_at_a_time -> Schedule.One_tree_at_a_time);
            };
          flip { s0 with Schedule.pad_and_unroll = false; peel = false };
          flip { s0 with Schedule.interleave = 1 };
          flip { s0 with Schedule.tiling = Schedule.Basic };
          flip
            {
              s0 with
              Schedule.layout =
                (match s0.Schedule.layout with
                | Schedule.Array_layout -> Schedule.Sparse_layout
                | Schedule.Sparse_layout -> Schedule.Array_layout);
            };
        ])
    all_names;
  Table.print t

(* Extension: QuickScorer as an alternative traversal strategy (§VII). *)
let ext_qs () =
  heading
    "Extension: QuickScorer traversal (Lucchese et al.) vs TREEBEARD.\n\
     QS visits only false nodes via bitvector masks - fast on small\n\
     models, poor scaling on large ones (the paper's cited limitation)";
  let t =
    Table.create
      [ "benchmark"; "model nodes"; "QS false-nodes/row"; "QS cyc/row";
        "TB cyc/row"; "XGB cyc/row"; "QS/TB" ]
  in
  List.iter
    (fun name ->
      let b = load name in
      let forest = b.entry.Zoo.forest in
      let qs = Tb_baselines.Quickscorer.compile forest in
      let sample = Array.sub b.rows_1024 0 48 in
      let qs_cycles = Tb_baselines.Quickscorer.cycles_per_row ~target:intel qs sample in
      let tb = tb_best_perf name intel in
      let xgb, _, _ = xgb_perf name intel in
      Table.add_row t
        [
          name;
          string_of_int (Forest.total_nodes forest);
          Printf.sprintf "%.0f" (Tb_baselines.Quickscorer.false_nodes_per_row qs sample);
          Printf.sprintf "%.0f" qs_cycles;
          Printf.sprintf "%.0f" tb;
          Printf.sprintf "%.0f" xgb;
          Table.cell_fx (qs_cycles /. tb);
        ])
    all_names;
  Table.print t

(* Extension: the DP tilings (optimal expected depth; min-max depth). *)
let ext_dp () =
  heading
    "Extension: DP tilings vs the paper's greedy Algorithm 1 (Intel,\n\
     tile size 8, mid-level opts disabled). Cells = simulated cycles/row";
  let t =
    Table.create
      [ "benchmark"; "basic"; "greedy prob"; "optimal prob (DP)";
        "min-max depth (DP)"; "greedy/optimal" ]
  in
  List.iter
    (fun name ->
      let cost tiling =
        (simulate name intel { fig11_base_schedule with Schedule.tiling })
          .Perf.cycles_per_row
      in
      let basic = cost Schedule.Basic in
      let greedy = cost Schedule.Probability_based in
      let opt = cost Schedule.Optimal_probability_based in
      let mm = cost Schedule.Min_max_depth in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f" basic;
          Printf.sprintf "%.0f" greedy;
          Printf.sprintf "%.0f" opt;
          Printf.sprintf "%.0f" mm;
          Table.cell_fx (greedy /. opt);
        ])
    [ "abalone"; "airline-ohe"; "covtype"; "higgs" ];
  Table.print t

(* Cost-model calibration (the C0xx lint): how well the simulated ranking
   tracks the closure JIT's wall clock on this machine, over the reduced
   schedule grid. Writes the structured report to calibration.json. *)
let calibrate () =
  let module Cost_check = Tb_analysis.Cost_check in
  let module D = Tb_diag.Diagnostic in
  heading
    "Cost-model calibration: Kendall-tau and top-k regret of the simulated\n\
     ranking vs JIT wall clock (reduced grid, Intel model). Findings are\n\
     C001 rank / C002 events / C003 stall attribution";
  let t =
    Table.create
      [ "benchmark"; "tau"; "regret"; "champion (predicted)"; "measured best";
        "C001"; "C002"; "C003" ]
  in
  let count code r =
    List.length
      (List.filter (fun d -> d.D.code = code) r.Cost_check.findings)
  in
  let reports =
    List.map
      (fun name ->
        let b = load name in
        let rows = Array.sub b.rows_1024 0 256 in
        let compile schedule =
          match
            Tb_core.Passman.lower ~batch_size:(Array.length rows)
              ~profiles:b.profiles b.entry.Zoo.forest schedule
          with
          | Ok (lowered, _) -> Ok lowered
          | Error report -> Error (D.summary (Tb_core.Passman.diagnostics report))
        in
        let r =
          Cost_check.calibrate ~target:intel ~compile ~name
            ~grid:Cost_check.reduced_grid rows
        in
        Table.add_row t
          [
            name;
            Printf.sprintf "%.3f" r.Cost_check.tau;
            Printf.sprintf "%.1f%%" (100.0 *. r.Cost_check.regret);
            Schedule.to_string
              r.Cost_check.observations.(r.Cost_check.champion).Cost_check.schedule;
            Schedule.to_string
              r.Cost_check.observations.(r.Cost_check.measured_best).Cost_check.schedule;
            string_of_int (count "C001" r);
            string_of_int (count "C002" r);
            string_of_int (count "C003" r);
          ];
        r)
      [ "abalone"; "letter"; "higgs" ]
  in
  Table.print t;
  List.iter
    (fun r ->
      List.iter
        (fun d -> Printf.printf "  %s\n" (D.to_string d))
        r.Cost_check.findings)
    reports;
  let json =
    Tb_util.Json.Obj
      [
        ("target", Tb_util.Json.Str intel.Config.name);
        ( "reports",
          Tb_util.Json.List (List.map Cost_check.report_to_json reports) );
      ]
  in
  let oc = open_out "calibration.json" in
  output_string oc (Tb_util.Json.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "report: calibration.json\n"

(* Serving runtime: dynamic-batching policy sweep (throughput vs tail
   latency) and eviction-policy comparison under cache pressure. Sweeps 1
   and 2 come from the deterministic virtual clock, so those tables are
   machine-independent; sweep 3 runs the dual clock and reports the
   measured wall/virtual drift per zoo model (host-dependent by nature)
   plus one Registry.calibrate round. Writes BENCH_serve.json. *)
let serve () =
  let module Simulate = Tb_serve.Simulate in
  let module Runtime = Tb_serve.Runtime in
  let module Policy = Tb_serve.Policy in
  let module H = Tb_util.Stats.Histogram in
  let module J = Tb_util.Json in
  heading
    "Serving runtime: batch-size/deadline sweep and LRU-vs-SIEVE predictor\n\
     cache, on a deterministic Poisson trace (virtual-clock latencies)";
  let spec ?(weight = 1) ?slo_us name =
    let b = load name in
    {
      Simulate.name;
      forest = b.entry.Zoo.forest;
      profiles = Some b.profiles;
      pool = Array.sub b.rows_1024 0 128;
      weight;
      slo_us;
    }
  in
  let run ~models ~policy ~capacity ~batch_max ~deadline_us ~rate ~n =
    let config =
      {
        Simulate.default_config with
        Simulate.rate_rps = rate;
        num_requests = n;
        runtime =
          {
            Runtime.default_config with
            Runtime.batch_max;
            deadline_us;
          };
        cache_policy = policy;
        cache_capacity = capacity;
      }
    in
    Simulate.run config models
  in
  let row_json ~label ~policy ~batch_max ~deadline_us (r : Simulate.report) =
    let m = r.Simulate.result.Runtime.metrics in
    let cs = r.Simulate.result.Runtime.cache_stats in
    let q p = H.quantile m.Tb_serve.Metrics.total_us p in
    J.Obj
      [
        ("sweep", J.Str label);
        ("policy", J.Str (Policy.kind_to_string policy));
        ("batch_max", J.Num (float_of_int batch_max));
        ("deadline_us", J.Num deadline_us);
        ("throughput_rows_per_s", J.Num (Tb_serve.Metrics.throughput_rows_per_s m));
        ("p50_us", J.Num (q 0.5));
        ("p95_us", J.Num (q 0.95));
        ("p99_us", J.Num (q 0.99));
        ("rejected", J.Num (float_of_int m.Tb_serve.Metrics.rejected));
        ( "cache_hit_ratio",
          J.Num
            (let lookups = cs.Policy.hits + cs.Policy.misses in
             if lookups = 0 then 0.0
             else float_of_int cs.Policy.hits /. float_of_int lookups) );
        ("evictions", J.Num (float_of_int cs.Policy.evictions));
        ( "equivalent",
          J.Bool (r.Simulate.result.Runtime.equivalence_failures = 0) );
      ]
  in
  let rows_json = ref [] in
  (* Sweep 1: batching policy, two models, no cache pressure. *)
  let models2 = List.map spec [ "abalone"; "letter" ] in
  let t =
    Table.create
      [ "batch_max"; "deadline us"; "throughput r/s"; "p50 us"; "p99 us";
        "batches"; "rejected" ]
  in
  List.iter
    (fun batch_max ->
      List.iter
        (fun deadline_us ->
          let r =
            run ~models:models2 ~policy:Policy.Lru ~capacity:8 ~batch_max
              ~deadline_us ~rate:100_000.0 ~n:4000
          in
          let m = r.Simulate.result.Runtime.metrics in
          Table.add_row t
            [
              string_of_int batch_max;
              Printf.sprintf "%.0f" deadline_us;
              Printf.sprintf "%.0f" (Tb_serve.Metrics.throughput_rows_per_s m);
              Printf.sprintf "%.0f" (H.quantile m.Tb_serve.Metrics.total_us 0.5);
              Printf.sprintf "%.0f" (H.quantile m.Tb_serve.Metrics.total_us 0.99);
              string_of_int m.Tb_serve.Metrics.batches;
              string_of_int m.Tb_serve.Metrics.rejected;
            ];
          rows_json :=
            row_json ~label:"batching" ~policy:Policy.Lru ~batch_max
              ~deadline_us r
            :: !rows_json)
        [ 100.0; 500.0; 2000.0 ])
    [ 8; 32; 128 ];
  Table.print t;
  (* Sweep 2: eviction policy under cache pressure: two hot models and two
     cold scan models share a 2-entry cache. LRU lets every cold compile
     evict a hot predictor; SIEVE's visited bits spare them. *)
  let models4 =
    [
      spec ~weight:8 "abalone"; spec ~weight:8 "letter";
      spec "covtype"; spec "airline";
    ]
  in
  let t2 =
    Table.create
      [ "policy"; "hit ratio"; "evictions"; "compiles"; "p99 us";
        "throughput r/s" ]
  in
  List.iter
    (fun policy ->
      let r =
        run ~models:models4 ~policy ~capacity:2 ~batch_max:32
          ~deadline_us:500.0 ~rate:100_000.0 ~n:4000
      in
      let m = r.Simulate.result.Runtime.metrics in
      let cs = r.Simulate.result.Runtime.cache_stats in
      Table.add_row t2
        [
          Policy.kind_to_string policy;
          (let lookups = cs.Policy.hits + cs.Policy.misses in
           Printf.sprintf "%.3f"
             (if lookups = 0 then 0.0
              else float_of_int cs.Policy.hits /. float_of_int lookups));
          string_of_int cs.Policy.evictions;
          string_of_int r.Simulate.result.Runtime.compile_count;
          Printf.sprintf "%.0f" (H.quantile m.Tb_serve.Metrics.total_us 0.99);
          Printf.sprintf "%.0f" (Tb_serve.Metrics.throughput_rows_per_s m);
        ];
      rows_json :=
        row_json ~label:"eviction" ~policy ~batch_max:32 ~deadline_us:500.0 r
        :: !rows_json)
    [ Policy.Lru; Policy.Sieve ];
  Table.print t2;
  (* Sweep 3: dual clock. Serve the full zoo mix in Dual mode, report how
     far the measured wall predict/compile times drift from the virtual
     cost model, fit a calibration from that drift and show the corrected
     ratios of a second run. The ratios are wall measurements — the one
     part of this bench that depends on the host. *)
  let module Serve_check = Tb_analysis.Serve_check in
  let module Registry = Tb_serve.Registry in
  let models_dual = List.map spec [ "abalone"; "letter"; "covtype"; "airline" ] in
  let dual_config =
    {
      Simulate.default_config with
      Simulate.rate_rps = 100_000.0;
      num_requests = 4000;
      mode = Runtime.Dual;
    }
  in
  let rep1 = Simulate.run dual_config models_dual in
  let drift1 = rep1.Simulate.result.Runtime.drift in
  let cal = Registry.calibration_of_drift drift1 in
  let rep2 = Simulate.run ~calibration:cal dual_config models_dual in
  let drift2 = rep2.Simulate.result.Runtime.drift in
  let pct_ratio (d : Serve_check.model_drift) p =
    match List.find_opt (fun (q, _, _) -> q = p) d.Serve_check.percentiles with
    | Some (_, v, w) when v > 0.0 -> w /. v
    | _ -> 0.0
  in
  let t3 =
    Table.create
      [ "model"; "batches"; "wall/virtual"; "p50 ratio"; "p99 ratio";
        "compile ratio"; "calibrated" ]
  in
  List.iter
    (fun (d : Serve_check.model_drift) ->
      let after =
        List.find_opt
          (fun (d2 : Serve_check.model_drift) ->
            d2.Serve_check.model = d.Serve_check.model)
          drift2
      in
      Table.add_row t3
        [
          d.Serve_check.model;
          string_of_int d.Serve_check.batches;
          Printf.sprintf "%.1f" d.Serve_check.service_ratio;
          Printf.sprintf "%.1f" (pct_ratio d 0.5);
          Printf.sprintf "%.1f" (pct_ratio d 0.99);
          (match d.Serve_check.compile_ratio with
          | Some r -> Printf.sprintf "%.1f" r
          | None -> "-");
          (match after with
          | Some d2 -> Printf.sprintf "%.2f" d2.Serve_check.service_ratio
          | None -> "-");
        ])
    drift1;
  Table.print t3;
  let dual_json =
    J.Obj
      [
        ("round1", J.List (List.map Serve_check.drift_to_json drift1));
        ("calibration", Registry.calibration_to_json cal);
        ("round2", J.List (List.map Serve_check.drift_to_json drift2));
      ]
  in
  (* Sweep 4: sharded fleet on a Zipf-popular trace. Three legs:
     (a) routing rebalance — warm a 3-shard fleet, add a fourth and replay
     the same trace on the surviving registries: affinity (consistent
     hashing) moves few models so in-memory caches stay warm, hash-mod
     remaps most keys; (b) FIFO vs EDF pending-batch dispatch at equal
     load with per-model SLO budgets; (c) a warm restart of the whole
     fleet over the shared artifact store — every shard hydrates foreign
     artifacts, nobody recompiles. All virtual-clock, machine-independent. *)
  let module Router = Tb_serve.Router in
  let module Scheduler = Tb_serve.Scheduler in
  let module Metrics = Tb_serve.Metrics in
  let module Prng = Tb_util.Prng in
  let fresh_cache_dir tag =
    let base = Filename.get_temp_dir_name () in
    let rec go i =
      let d =
        Filename.concat base
          (Printf.sprintf "tb_bench_%s_%d_%d" tag (Unix.getpid ()) i)
      in
      if Sys.file_exists d then go (i + 1) else d
    in
    go 0
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  let shard_models =
    List.map spec [ "abalone"; "letter"; "covtype"; "airline" ]
  in
  let shard_config ~cache_dir ~scheduling =
    {
      Simulate.default_config with
      Simulate.rate_rps = 100_000.0;
      num_requests = 4000;
      popularity = Simulate.Zipf 1.1;
      shards = 4;
      cache_dir = Some cache_dir;
      runtime = { Runtime.default_config with Runtime.scheduling };
    }
  in
  (* Core-seconds of fleet capacity spent per million rows served: the
     fleet holds shards × workers cores for the whole makespan. *)
  let cost_core_s_per_mrow ~shards (m : Metrics.t) =
    if m.Metrics.rows_served = 0 then 0.0
    else
      float_of_int (shards * Runtime.default_config.Runtime.workers)
      *. m.Metrics.makespan_us /. float_of_int m.Metrics.rows_served
  in
  let make_reg (c : Simulate.config) =
    let reg =
      Registry.create ~target:c.Simulate.target ~policy:c.Simulate.cache_policy
        ~capacity:c.Simulate.cache_capacity ?cache_dir:c.Simulate.cache_dir ()
    in
    List.iter
      (fun (m : Simulate.model_spec) ->
        Registry.register reg ~name:m.Simulate.name
          ?profiles:m.Simulate.profiles ~sample_rows:m.Simulate.pool
          m.Simulate.forest)
      shard_models;
    reg
  in
  let trace (c : Simulate.config) =
    let rng = Prng.create c.Simulate.seed in
    Simulate.gen_requests rng c shard_models
  in
  (* Leg (a): rebalance. Registry counters are cumulative, so warm-phase
     numbers are deltas across the second run. *)
  let snap regs =
    List.fold_left
      (fun (h, mi, co, hy, fo) (_, reg) ->
        let cs = Registry.cache_stats reg in
        ( h + cs.Policy.hits,
          mi + cs.Policy.misses,
          co + Registry.compile_count reg,
          hy + Registry.hydration_count reg,
          fo + Registry.foreign_hydration_count reg ))
      (0, 0, 0, 0, 0) regs
  in
  let rebalance policy =
    let cache_dir = fresh_cache_dir ("reb_" ^ Router.policy_to_string policy) in
    let c = shard_config ~cache_dir ~scheduling:Scheduler.Fifo in
    let reqs = trace c in
    let router3 = Router.create policy ~shards:3 in
    let regs3 =
      List.map (fun sid -> (sid, make_reg c)) (Router.shard_ids router3)
    in
    let _cold : Runtime.fleet_result =
      Runtime.run_fleet ~config:c.Simulate.runtime ~schedule:c.Simulate.schedule
        ~router:router3 regs3 reqs
    in
    let router4 = Router.add_shard router3 3 in
    let regs4 = regs3 @ [ (3, make_reg c) ] in
    let h0, m0, c0, y0, f0 = snap regs4 in
    let after =
      Runtime.run_fleet ~config:c.Simulate.runtime ~schedule:c.Simulate.schedule
        ~router:router4 regs4 reqs
    in
    let h1, m1, c1, y1, f1 = snap regs4 in
    let moved =
      List.length
        (List.filter
           (fun (ms : Simulate.model_spec) ->
             Router.route router3 ms.Simulate.name
             <> Router.route router4 ms.Simulate.name)
           shard_models)
    in
    rm_rf cache_dir;
    let hits = h1 - h0 and lookups = h1 - h0 + (m1 - m0) in
    let hit_ratio =
      if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups
    in
    (moved, hit_ratio, c1 - c0, y1 - y0, f1 - f0, after.Runtime.fleet_metrics)
  in
  let t4 =
    Table.create
      [ "routing"; "moved"; "warm hit ratio"; "compiles"; "hydrations";
        "foreign"; "p99 us"; "core-s/Mrow" ]
  in
  let rebalance_json = ref [] in
  List.iter
    (fun policy ->
      let moved, hit_ratio, compiles, hydrations, foreign, m =
        rebalance policy
      in
      let p99 = H.quantile m.Metrics.total_us 0.99 in
      let cost = cost_core_s_per_mrow ~shards:4 m in
      Table.add_row t4
        [
          Router.policy_to_string policy;
          string_of_int moved;
          Printf.sprintf "%.4f" hit_ratio;
          string_of_int compiles;
          string_of_int hydrations;
          string_of_int foreign;
          Printf.sprintf "%.0f" p99;
          Printf.sprintf "%.2f" cost;
        ];
      rebalance_json :=
        J.Obj
          [
            ("routing", J.Str (Router.policy_to_string policy));
            ("moved_models", J.Num (float_of_int moved));
            ("warm_hit_ratio", J.Num hit_ratio);
            ("compiles", J.Num (float_of_int compiles));
            ("hydrations", J.Num (float_of_int hydrations));
            ("foreign_hydrations", J.Num (float_of_int foreign));
            ("p99_us", J.Num p99);
            ("cost_core_s_per_mrow", J.Num cost);
          ]
        :: !rebalance_json)
    [ Router.Hash; Router.Affinity ];
  Printf.printf
    "\nRouting rebalance: 3 -> 4 shards, same Zipf trace replayed on the\n\
     surviving registries (warm-phase deltas; shared artifact store)\n";
  Table.print t4;
  (* Leg (b): FIFO vs EDF at equal load. Tight budgets on the two hot
     models, loose on the cold heavy ones — FIFO head-of-line blocking
     behind heavy batches is exactly what EDF undoes. *)
  let slo_spec_models =
    [
      spec ~slo_us:1500.0 "abalone"; spec ~slo_us:2500.0 "letter";
      spec ~slo_us:60000.0 "covtype"; spec ~slo_us:60000.0 "airline";
    ]
  in
  let slo_run scheduling =
    let c =
      {
        Simulate.default_config with
        Simulate.rate_rps = 1_000_000.0;
        num_requests = 4000;
        popularity = Simulate.Zipf 1.1;
        runtime = { Runtime.default_config with Runtime.scheduling };
      }
    in
    Simulate.run c slo_spec_models
  in
  let t5 =
    Table.create
      [ "scheduling"; "model"; "slo us"; "attainment"; "met (>=0.95)" ]
  in
  let slo_json = ref [] in
  let slos_met = Hashtbl.create 4 in
  List.iter
    (fun scheduling ->
      let r = slo_run scheduling in
      let m = r.Simulate.result.Runtime.metrics in
      let met = ref 0 in
      let per_model =
        List.map
          (fun (ms : Simulate.model_spec) ->
            let a =
              Option.value ~default:0.0
                (Metrics.slo_attainment m ms.Simulate.name)
            in
            if a >= 0.95 then incr met;
            Table.add_row t5
              [
                Scheduler.policy_to_string scheduling;
                ms.Simulate.name;
                (match ms.Simulate.slo_us with
                | Some b -> Printf.sprintf "%.0f" b
                | None -> "-");
                Printf.sprintf "%.3f" a;
                (if a >= 0.95 then "yes" else "no");
              ];
            (ms.Simulate.name, J.Num a))
          slo_spec_models
      in
      Hashtbl.replace slos_met (Scheduler.policy_to_string scheduling) !met;
      slo_json :=
        J.Obj
          [
            ("scheduling", J.Str (Scheduler.policy_to_string scheduling));
            ("attainment", J.Obj per_model);
            ("slos_met", J.Num (float_of_int !met));
            ( "p99_us",
              J.Num (H.quantile m.Metrics.total_us 0.99) );
          ]
        :: !slo_json)
    [ Scheduler.Fifo; Scheduler.Edf ];
  Printf.printf
    "\nSLO attainment at equal load (same trace, same budgets):\n\
     fifo meets %d budgets at >=0.95 attainment, edf meets %d\n"
    (try Hashtbl.find slos_met "fifo" with Not_found -> 0)
    (try Hashtbl.find slos_met "edf" with Not_found -> 0);
  Table.print t5;
  (* Leg (c): warm restart of the whole fleet. The second run builds
     fresh registries over the same artifact store — the process-restart
     case: everything hydrates (foreign), nothing recompiles. *)
  let restart_dir = fresh_cache_dir "restart" in
  let restart_config =
    shard_config ~cache_dir:restart_dir ~scheduling:Scheduler.Fifo
  in
  let cold = Simulate.run_fleet restart_config shard_models in
  let warm = Simulate.run_fleet restart_config shard_models in
  rm_rf restart_dir;
  let t6 =
    Table.create
      [ "run"; "compiles"; "hydrations"; "foreign"; "p99 us"; "core-s/Mrow" ]
  in
  let restart_row label (fr : Simulate.fleet_report) =
    let f = fr.Simulate.fleet in
    let m = f.Runtime.fleet_metrics in
    Table.add_row t6
      [
        label;
        string_of_int f.Runtime.fleet_compiles;
        string_of_int f.Runtime.fleet_hydrations;
        string_of_int f.Runtime.fleet_foreign_hydrations;
        Printf.sprintf "%.0f" (H.quantile m.Metrics.total_us 0.99);
        Printf.sprintf "%.2f" (cost_core_s_per_mrow ~shards:4 m);
      ];
    J.Obj
      [
        ("run", J.Str label);
        ("compiles", J.Num (float_of_int f.Runtime.fleet_compiles));
        ("hydrations", J.Num (float_of_int f.Runtime.fleet_hydrations));
        ( "foreign_hydrations",
          J.Num (float_of_int f.Runtime.fleet_foreign_hydrations) );
        ("p99_us", J.Num (H.quantile m.Metrics.total_us 0.99));
        ("cost_core_s_per_mrow", J.Num (cost_core_s_per_mrow ~shards:4 m));
      ]
  in
  let cold_json = restart_row "cold" cold in
  let warm_json = restart_row "warm restart" warm in
  Printf.printf
    "\nFleet warm restart over the shared artifact store (4 shards):\n";
  Table.print t6;
  let sharding_json =
    J.Obj
      [
        ("rebalance", J.List (List.rev !rebalance_json));
        ("slo", J.List (List.rev !slo_json));
        ("restart", J.List [ cold_json; warm_json ]);
      ]
  in
  let json =
    J.Obj
      [
        ("rows", J.List (List.rev !rows_json));
        ("dual", dual_json);
        ("sharding", sharding_json);
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (J.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "report: BENCH_serve.json\n"

(* Warning census: the legacy interval-only walk-bounds analysis vs the
   relational one (congruence/stride domain + per-lane alias analysis),
   per model over the full Table II schedule grid. Model-independent of
   any host clock — the census counts diagnostics, not cycles. Writes
   BENCH_lint.json (both censuses + per-model summary) and
   lint_census_baseline.json (the relational census, the file CI diffs
   against). *)
let lint () =
  let module Census = Tb_analysis.Census in
  let module J = Tb_util.Json in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  heading
    "Lint census: legacy interval analysis vs relational\n\
     (congruence + alias) analysis, zoo x Table II grid";
  let before = ref [] and after = ref [] in
  let t =
    Table.create
      [ "Model"; "scheds"; "L011 leg"; "L011 rel"; "sparse leg";
        "sparse rel"; "sparse drop"; "L012 leg"; "L012 rel"; "L013";
        "L014" ]
  in
  let summary_rows = ref [] in
  List.iter
    (fun name ->
      let b = load name in
      let forest = b.entry.Zoo.forest in
      let nf = forest.Forest.num_features in
      let t0 = Unix.gettimeofday () in
      let rows_b = ref [] and rows_a = ref [] in
      List.iter
        (fun s ->
          (* No profiles: matches the CI lint job, which compiles without
             training-set statistics. *)
          let lp = Lower.lower forest s in
          let run rel =
            Tb_analysis.Lir_check.check ~relational:rel ~num_features:nf
              lp.Lower.layout lp.Lower.mir
          in
          let sched = Schedule.to_string s in
          rows_b :=
            Census.row_of_diags ~model:name ~schedule:sched (run false)
            :: !rows_b;
          rows_a :=
            Census.row_of_diags ~model:name ~schedule:sched (run true)
            :: !rows_a)
        Schedule.table2_grid;
      let rows_b = List.rev !rows_b and rows_a = List.rev !rows_a in
      let count ?(sparse_only = false) code rows =
        List.fold_left
          (fun acc (r : Census.row) ->
            if (not sparse_only) || contains_sub r.Census.schedule "sparse"
            then acc + Census.get r code
            else acc)
          0 rows
      in
      let l011_b = count "L011" rows_b and l011_a = count "L011" rows_a in
      let sp_b = count ~sparse_only:true "L011" rows_b in
      let sp_a = count ~sparse_only:true "L011" rows_a in
      let drop =
        if sp_b = 0 then 0.0
        else 100.0 *. (1.0 -. (float_of_int sp_a /. float_of_int sp_b))
      in
      let l012_b = count "L012" rows_b and l012_a = count "L012" rows_a in
      let l013 = count "L013" rows_a and l014 = count "L014" rows_a in
      Table.add_row t
        [
          name;
          string_of_int (List.length rows_a);
          string_of_int l011_b; string_of_int l011_a;
          string_of_int sp_b; string_of_int sp_a;
          Printf.sprintf "%.1f%%" drop;
          string_of_int l012_b; string_of_int l012_a;
          string_of_int l013; string_of_int l014;
        ];
      summary_rows :=
        J.Obj
          [
            ("model", J.Str name);
            ("schedules", J.Num (float_of_int (List.length rows_a)));
            ("l011_legacy", J.Num (float_of_int l011_b));
            ("l011_relational", J.Num (float_of_int l011_a));
            ("sparse_l011_legacy", J.Num (float_of_int sp_b));
            ("sparse_l011_relational", J.Num (float_of_int sp_a));
            ("sparse_l011_drop_pct", J.Num drop);
            ("l012_legacy", J.Num (float_of_int l012_b));
            ("l012_relational", J.Num (float_of_int l012_a));
            ("l013", J.Num (float_of_int l013));
            ("l014", J.Num (float_of_int l014));
          ]
        :: !summary_rows;
      before := !before @ rows_b;
      after := !after @ rows_a;
      Printf.printf "[lint] %s: %d schedules in %.1fs\n%!" name
        (List.length rows_a)
        (Unix.gettimeofday () -. t0))
    all_names;
  Table.print t;
  let json =
    J.Obj
      [
        ("summary", J.List (List.rev !summary_rows));
        ("before", Census.to_json !before);
        ("after", Census.to_json !after);
      ]
  in
  let oc = open_out "BENCH_lint.json" in
  output_string oc (J.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  Census.to_file "lint_census_baseline.json" !after;
  Printf.printf "report: BENCH_lint.json\n";
  Printf.printf "baseline: lint_census_baseline.json\n"

(* Translation validation: validator wall-clock and summary sizes per
   (model, schedule) over the reduced representative grid — the cost
   that justifies keeping the validate:* stages on by default in
   Passman's Verify_each — plus the T00x census. Writes
   BENCH_validate.json and validate_census_baseline.json (the file CI
   diffs against). *)
let validate () =
  let module Census = Tb_analysis.Census in
  let module Validate = Tb_analysis.Validate in
  let module Cost_check = Tb_analysis.Cost_check in
  let module Mir = Tb_mir.Mir in
  let module J = Tb_util.Json in
  heading
    "Translation validation: validator cost + T00x census,\n\
     zoo x reduced schedule grid";
  let t =
    Table.create
      [ "Model"; "scheds"; "trees"; "paths/tree"; "max paths";
        "validate ms/sched"; "T001"; "T002"; "T003"; "T004" ]
  in
  let census = ref [] and cells = ref [] and summary_rows = ref [] in
  List.iter
    (fun name ->
      let b = load name in
      let forest = b.entry.Zoo.forest in
      let num_trees = Array.length forest.Forest.trees in
      let scheds = ref 0 and total_ms = ref 0.0 in
      let sum_paths = ref 0 and max_paths = ref 0 and path_cells = ref 0 in
      let totals = Hashtbl.create 4 in
      List.iter
        (fun s ->
          let hir = Program.build forest s in
          let mir = Mir.lower hir in
          match Layout.build hir with
          | exception Invalid_argument _ -> ()
          | lay ->
            incr scheds;
            let t0 = Unix.gettimeofday () in
            let fs = Validate.check_all hir mir lay in
            let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
            total_ms := !total_ms +. ms;
            (* Summary sizes: per-tree path counts of the HIR form (equal
               across stages when validation passes). *)
            let cell_paths = ref 0 and cell_max = ref 0 in
            Array.iter
              (fun (e : Program.tree_entry) ->
                let n =
                  Validate.num_paths (Validate.summarize_hir e.Program.tiled)
                in
                cell_paths := !cell_paths + n;
                cell_max := max !cell_max n)
              hir.Program.trees;
            sum_paths := !sum_paths + !cell_paths;
            max_paths := max !max_paths !cell_max;
            path_cells := !path_cells + num_trees;
            let ds = Validate.to_diagnostics fs in
            let sched = Schedule.to_string s in
            let row =
              Census.row_of_diags ~family:Census.validate_family ~model:name
                ~schedule:sched ds
            in
            List.iter
              (fun code ->
                Hashtbl.replace totals code
                  ((try Hashtbl.find totals code with Not_found -> 0)
                   + Census.get row code))
              Census.validate_family.Census.codes;
            census := row :: !census;
            cells :=
              J.Obj
                [
                  ("model", J.Str name);
                  ("schedule", J.Str sched);
                  ("validate_us", J.Num (1000.0 *. ms));
                  ("findings", J.Num (float_of_int (List.length fs)));
                  ("total_paths", J.Num (float_of_int !cell_paths));
                  ("max_paths_per_tree", J.Num (float_of_int !cell_max));
                ]
              :: !cells)
        Cost_check.reduced_grid;
      let tcount code =
        try Hashtbl.find totals code with Not_found -> 0
      in
      let mean_paths =
        if !path_cells = 0 then 0.0
        else float_of_int !sum_paths /. float_of_int !path_cells
      in
      let ms_per_sched =
        if !scheds = 0 then 0.0 else !total_ms /. float_of_int !scheds
      in
      Table.add_row t
        [
          name; string_of_int !scheds; string_of_int num_trees;
          Printf.sprintf "%.1f" mean_paths; string_of_int !max_paths;
          Printf.sprintf "%.1f" ms_per_sched;
          string_of_int (tcount "T001"); string_of_int (tcount "T002");
          string_of_int (tcount "T003"); string_of_int (tcount "T004");
        ];
      summary_rows :=
        J.Obj
          [
            ("model", J.Str name);
            ("schedules", J.Num (float_of_int !scheds));
            ("trees", J.Num (float_of_int num_trees));
            ("mean_paths_per_tree", J.Num mean_paths);
            ("max_paths_per_tree", J.Num (float_of_int !max_paths));
            ("validate_ms_per_schedule", J.Num ms_per_sched);
            ("t001", J.Num (float_of_int (tcount "T001")));
            ("t002", J.Num (float_of_int (tcount "T002")));
            ("t003", J.Num (float_of_int (tcount "T003")));
            ("t004", J.Num (float_of_int (tcount "T004")));
          ]
        :: !summary_rows;
      Printf.printf "[validate] %s: %d schedules in %.1fs\n%!" name !scheds
        (!total_ms /. 1000.0))
    all_names;
  Table.print t;
  let census = List.rev !census in
  let json =
    J.Obj
      [
        ("summary", J.List (List.rev !summary_rows));
        ("cells", J.List (List.rev !cells));
        ("census", Census.to_json census);
      ]
  in
  let oc = open_out "BENCH_validate.json" in
  output_string oc (J.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  Census.to_file "validate_census_baseline.json" census;
  Printf.printf "report: BENCH_validate.json\n";
  Printf.printf "baseline: validate_census_baseline.json\n"

(* Packed predictor artifacts: what a warm restart actually buys. Per zoo
   model, measure the cold path (lower + pack + instantiate), each codec
   stage (encode / decode) and the hydrate path (decode + instantiate),
   then replay the same comparison through the two-tier registry — one
   process compiles and persists, a second hydrates from the same cache
   directory. Wall-clock, so host-dependent; the *ratio* (hydrate vs
   compile) is the claim. Writes BENCH_artifacts.json. *)
let artifacts () =
  let module Pack = Tb_lir.Pack in
  let module Jit = Tb_vm.Jit in
  let module Registry = Tb_serve.Registry in
  let module Timer = Tb_util.Timer in
  let module J = Tb_util.Json in
  heading
    "Packed artifacts: cold compile vs disk hydration, per codec stage\n\
     and end-to-end through the two-tier registry (wall-clock)";
  let names = [ "abalone"; "letter"; "covtype"; "airline"; "higgs" ] in
  (* Best of 3: these are sub-millisecond paths on the small models. *)
  let time3 f =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to 3 do
      let t0 = Timer.now () in
      let r = f () in
      let us = (Timer.now () -. t0) *. 1e6 in
      if us < !best then best := us;
      result := Some r
    done;
    (!best, Option.get !result)
  in
  let t =
    Table.create
      [ "model"; "pack KB"; "lower+pack us"; "encode us"; "decode us";
        "instantiate us"; "cold us"; "hydrate us"; "speedup" ]
  in
  let rows_json = ref [] in
  let speedups = ref [] in
  List.iter
    (fun name ->
      let b = load name in
      let forest = b.entry.Zoo.forest in
      let compile_us, pk =
        time3 (fun () ->
            Pack.of_lower ~model:name ~target:intel.Config.name
              (Lower.lower ~profiles:b.profiles forest Schedule.default))
      in
      let encode_us, bytes = time3 (fun () -> Pack.encode pk) in
      let decode_us, decoded =
        time3 (fun () ->
            match Pack.decode bytes with
            | Ok p -> p
            | Error e -> failwith ("bench artifact rejected: " ^ e.Pack.message))
      in
      let instantiate_us, predict =
        time3 (fun () -> Jit.instantiate_single_thread decoded)
      in
      ignore (predict (Array.sub b.rows_1024 0 8));
      let cold_us = compile_us +. instantiate_us in
      let hydrate_us = decode_us +. instantiate_us in
      let speedup = cold_us /. hydrate_us in
      speedups := speedup :: !speedups;
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f" (float_of_int (Bytes.length bytes) /. 1024.0);
          Printf.sprintf "%.0f" compile_us;
          Printf.sprintf "%.0f" encode_us;
          Printf.sprintf "%.0f" decode_us;
          Printf.sprintf "%.0f" instantiate_us;
          Printf.sprintf "%.0f" cold_us;
          Printf.sprintf "%.0f" hydrate_us;
          Printf.sprintf "%.1fx" speedup;
        ];
      rows_json :=
        J.Obj
          [
            ("model", J.Str name);
            ("pack_bytes", J.Num (float_of_int (Bytes.length bytes)));
            ("lower_pack_us", J.Num compile_us);
            ("encode_us", J.Num encode_us);
            ("decode_us", J.Num decode_us);
            ("instantiate_us", J.Num instantiate_us);
            ("cold_compile_us", J.Num cold_us);
            ("hydrate_us", J.Num hydrate_us);
            ("speedup", J.Num speedup);
          ]
        :: !rows_json)
    names;
  Table.print t;
  (* End to end: a registry with a disk tier, cold then warm-restarted. *)
  let cache_dir =
    let f = Filename.temp_file "tb_bench_artifacts" ".cache" in
    Sys.remove f;
    f
  in
  let mk_registry () =
    let reg = Registry.create ~capacity:16 ~cache_dir () in
    List.iter
      (fun name ->
        let b = load name in
        Registry.register reg ~name ~profiles:b.profiles b.entry.Zoo.forest)
      names;
    reg
  in
  let t2 =
    Table.create
      [ "model"; "cold tier"; "cold wall us"; "warm tier"; "warm wall us";
        "restart speedup" ]
  in
  let cold_reg = mk_registry () in
  let cold_rows =
    List.map
      (fun name ->
        let c, prov =
          Registry.compiled cold_reg ~model:name ~schedule:Schedule.default
        in
        (name, c.Registry.wall_compile_us, prov))
      names
  in
  let warm_reg = mk_registry () in
  let registry_json =
    List.map
      (fun (name, cold_wall, _cold_prov) ->
        let c, prov =
          Registry.compiled warm_reg ~model:name ~schedule:Schedule.default
        in
        let warm_wall = c.Registry.wall_compile_us in
        let restart_speedup = cold_wall /. warm_wall in
        Table.add_row t2
          [
            name;
            "compile";
            Printf.sprintf "%.0f" cold_wall;
            Registry.provenance_string prov;
            Printf.sprintf "%.0f" warm_wall;
            Printf.sprintf "%.1fx" restart_speedup;
          ];
        J.Obj
          [
            ("model", J.Str name);
            ("cold_wall_us", J.Num cold_wall);
            ("warm_tier", J.Str (Registry.provenance_string prov));
            ("warm_wall_us", J.Num warm_wall);
            ("restart_speedup", J.Num restart_speedup);
          ])
      cold_rows
  in
  Table.print t2;
  Printf.printf "warm restart: %d compiles, %d hydrations\n"
    (Registry.compile_count warm_reg)
    (Registry.hydration_count warm_reg);
  let min_speedup = List.fold_left min infinity !speedups in
  Printf.printf "minimum hydrate-vs-cold speedup: %.1fx (target >= 5x)\n"
    min_speedup;
  let json =
    J.Obj
      [
        ("codec", J.List (List.rev !rows_json));
        ("registry", J.List registry_json);
        ("min_speedup", J.Num min_speedup);
        ( "warm_restart",
          J.Obj
            [
              ("compiles", J.Num (float_of_int (Registry.compile_count warm_reg)));
              ( "hydrations",
                J.Num (float_of_int (Registry.hydration_count warm_reg)) );
            ] );
      ]
  in
  let oc = open_out "BENCH_artifacts.json" in
  output_string oc (J.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "report: BENCH_artifacts.json\n"

(* Quantization certification: per (model, width) the statically proved
   plan (leaf scale, deviation and accumulator bounds), the N00x census,
   and a concrete replay — the quantized integer path against the
   Neumaier float reference on test rows, reporting the measured
   deviation on routing-stable rows next to the proved bound (the
   soundness claim, measured). Writes BENCH_numeric.json and
   numeric_census_baseline.json (the file CI diffs against). *)
let numeric () =
  let module Census = Tb_analysis.Census in
  let module Numeric = Tb_analysis.Numeric in
  let module J = Tb_util.Json in
  heading
    "Quantization certification: N00x census + replayed deviation,\n\
     zoo x {int8, int16}";
  let t =
    Table.create
      [ "Model"; "width"; "leaf 2^e"; "dev bound"; "acc bound";
        "N001"; "N002"; "N003"; "N004"; "dz rows"; "measured dev";
        "certify us" ]
  in
  let census = ref [] and summary_rows = ref [] in
  List.iter
    (fun name ->
      let b = load name in
      let forest = b.entry.Zoo.forest in
      let rows = Array.sub b.rows_1024 0 256 in
      List.iter
        (fun width ->
          let t0 = Unix.gettimeofday () in
          let cert = Numeric.certify ~width forest in
          let certify_us = 1e6 *. (Unix.gettimeofday () -. t0) in
          let wname = Numeric.width_to_string width in
          let row =
            Census.row_of_diags ~family:Census.numeric_family ~model:name
              ~schedule:wname cert.Numeric.findings
          in
          census := row :: !census;
          (* Replay: quantized path vs float reference on test rows. *)
          let qm = Numeric.quantize cert.Numeric.plan forest in
          let dz = ref 0 and measured = ref 0.0 in
          Array.iter
            (fun r ->
              if Numeric.dead_zone_row cert.Numeric.plan forest r then incr dz
              else begin
                let q = Numeric.qpredict_raw qm r in
                let f = Numeric.reference_raw forest r in
                Array.iteri
                  (fun c qv ->
                    measured := Float.max !measured (Float.abs (qv -. f.(c))))
                  q
              end)
            rows;
          let max_dev =
            Array.fold_left Float.max 0.0 cert.Numeric.dev_bound
          in
          let max_acc =
            Array.fold_left max 0 cert.Numeric.acc_bound
          in
          let n code = Census.get row code in
          Table.add_row t
            [
              name; wname;
              string_of_int cert.Numeric.plan.Numeric.leaf_exp;
              Printf.sprintf "%.2e" max_dev;
              string_of_int max_acc;
              string_of_int (n "N001"); string_of_int (n "N002");
              string_of_int (n "N003"); string_of_int (n "N004");
              Printf.sprintf "%d/%d" !dz (Array.length rows);
              Printf.sprintf "%.2e" !measured;
              Printf.sprintf "%.0f" certify_us;
            ];
          summary_rows :=
            J.Obj
              [
                ("model", J.Str name);
                ("width", J.Str wname);
                ("leaf_exp", J.Num (float_of_int cert.Numeric.plan.Numeric.leaf_exp));
                ("dev_bound_max", J.Num max_dev);
                ("acc_bound_max", J.Num (float_of_int max_acc));
                ("acc_cap", J.Num (float_of_int cert.Numeric.plan.Numeric.acc_max));
                ("n001", J.Num (float_of_int (n "N001")));
                ("n002", J.Num (float_of_int (n "N002")));
                ("n003", J.Num (float_of_int (n "N003")));
                ("n004", J.Num (float_of_int (n "N004")));
                ("replay_rows", J.Num (float_of_int (Array.length rows)));
                ("dead_zone_rows", J.Num (float_of_int !dz));
                ("measured_dev", J.Num !measured);
                ("certify_us", J.Num certify_us);
              ]
            :: !summary_rows;
          if !measured > max_dev then
            Printf.printf
              "[numeric] %s %s: MEASURED DEVIATION %.3g EXCEEDS PROVED %.3g\n"
              name wname !measured max_dev)
        [ Numeric.I8; Numeric.I16 ];
      Printf.printf "[numeric] %s done\n%!" name)
    all_names;
  Table.print t;
  let census = List.rev !census in
  let json =
    J.Obj
      [
        ("summary", J.List (List.rev !summary_rows));
        ("census", Census.to_json census);
      ]
  in
  let oc = open_out "BENCH_numeric.json" in
  output_string oc (J.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  Census.to_file "numeric_census_baseline.json" census;
  Printf.printf "report: BENCH_numeric.json\n";
  Printf.printf "baseline: numeric_census_baseline.json\n"

(* Extension: the integer fast path, measured. For each (model, width)
   the certificate is computed at the default tolerance first; the
   compile request then carries a tolerance of twice the proved
   deviation bound, so N003 can never refute and the resolution is
   decided purely by the structural findings (N001, N004). Regression
   models (abalone, year) certify and serve the quantized tier;
   classification models are kept in the table to show the N004
   fallback. For certified widths the resident-prefix depth is also
   swept on the wall clock (k = 0..3, pack-level API), next to the
   cost model's autotuned choice. Timings interleave the float and
   quantized predictors and keep the fastest of the alternating
   repeats, so slow drift in the host's clock speed cancels out.
   Writes BENCH_quant.json. *)
let quant () =
  let module Numeric = Tb_analysis.Numeric in
  let module Treebeard = Tb_core.Treebeard in
  let module Lower = Tb_lir.Lower in
  let module Pack = Tb_lir.Pack in
  let module Jit = Tb_vm.Jit in
  let module J = Tb_util.Json in
  heading
    "Integer fast path (extension): float vs int16/int8 wall clock,\n\
     register-resident prefix depth swept and autotuned";
  let t =
    Table.create
      [ "Model"; "width"; "tier"; "tolerance"; "dev bound"; "k auto";
        "k best"; "float us/row"; "quant us/row"; "speedup" ]
  in
  let summary = ref [] in
  List.iter
    (fun name ->
      let b = load name in
      let forest = b.entry.Zoo.forest in
      let schedule = (best_schedule name intel).Explore.schedule in
      let rows = b.rows_1024 in
      let n = float_of_int (Array.length rows) in
      let time f =
        let r =
          Tb_util.Timer.measure ~warmup:1 ~min_iters:3 ~min_time_s:0.2 f
        in
        r.Tb_util.Timer.mean_s /. n *. 1e6
      in
      (* Alternate the two predictors and keep each side's fastest
         repeat: frequency drift hits both sides equally. *)
      let time_pair fa fb =
        let ta = ref infinity and tb = ref infinity in
        for _ = 1 to 3 do
          ta := Float.min !ta (time fa);
          tb := Float.min !tb (time fb)
        done;
        (!ta, !tb)
      in
      let float_compiled =
        Treebeard.make ~plan:(`Schedule schedule) (`Forest forest)
      in
      let run_float () =
        ignore (Treebeard.predict_forest float_compiled rows)
      in
      List.iter
        (fun (bits, width) ->
          let cert0 = Numeric.certify ~width forest in
          let dev_max =
            Array.fold_left Float.max 0.0 cert0.Numeric.dev_bound
          in
          let tolerance = Float.max Numeric.default_tolerance (2.0 *. dev_max) in
          let compiled =
            Treebeard.make ~plan:(`Schedule schedule)
              ~precision:(`Quantized { Treebeard.bits; tolerance })
              (`Forest forest)
          in
          let tier = Treebeard.tier_to_string compiled.Treebeard.tier in
          let wname = Numeric.width_to_string width in
          let k_auto = compiled.Treebeard.resident_k in
          (* Wall-clock sweep of the resident depth on the certified
             lowering; k = 0 is the pure memory-phase quantized walk. *)
          let sweep =
            match compiled.Treebeard.certificate with
            | None -> []
            | Some cert ->
              let lowered = compiled.Treebeard.lowered in
              List.map
                (fun k ->
                  let pack =
                    Pack.of_lower
                      ~quant:
                        {
                          Pack.resident_k = k;
                          dev_bound = Array.copy cert.Numeric.dev_bound;
                          tolerance;
                        }
                      lowered
                  in
                  let predict = Jit.instantiate pack in
                  let tf, tq =
                    time_pair run_float (fun () -> ignore (predict rows))
                  in
                  (k, tf, tq))
                [ 0; 1; 2; 3 ]
          in
          let t_float, t_quant, k_best =
            match sweep with
            | [] ->
              (* Fallback row: both predictors run the float tier. *)
              let tf, tq =
                time_pair run_float (fun () ->
                    ignore (Treebeard.predict_forest compiled rows))
              in
              (tf, tq, 0)
            | sweep ->
              List.fold_left
                (fun (bf, bq, bk) (k, tf, tq) ->
                  if tq < bq then (tf, tq, k) else (bf, bq, bk))
                (infinity, infinity, 0) sweep
          in
          Table.add_row t
            [
              name; wname; tier;
              Printf.sprintf "%.2e" tolerance;
              Printf.sprintf "%.2e" dev_max;
              string_of_int k_auto;
              string_of_int k_best;
              Table.cell_f t_float;
              Table.cell_f t_quant;
              Table.cell_fx (t_float /. t_quant);
            ];
          summary :=
            J.Obj
              [
                ("model", J.Str name);
                ("width", J.Str wname);
                ("tier", J.Str tier);
                ("quantized", J.Bool (sweep <> []));
                ("tolerance", J.Num tolerance);
                ("dev_bound_max", J.Num dev_max);
                ("resident_k_auto", J.Num (float_of_int k_auto));
                ("resident_k_best", J.Num (float_of_int k_best));
                ("float_us_per_row", J.Num t_float);
                ("quant_us_per_row", J.Num t_quant);
                ("speedup", J.Num (t_float /. t_quant));
                ( "resident_sweep",
                  J.List
                    (List.map
                       (fun (k, tf, tq) ->
                         J.Obj
                           [
                             ("k", J.Num (float_of_int k));
                             ("float_us_per_row", J.Num tf);
                             ("quant_us_per_row", J.Num tq);
                             ("speedup", J.Num (tf /. tq));
                           ])
                       sweep) );
                ( "fallback_codes",
                  J.List
                    (List.filter_map
                       (fun d ->
                         let c = d.Tb_diag.Diagnostic.code in
                         if c = "N005" then None else Some (J.Str c))
                       compiled.Treebeard.precision_diags) );
              ]
            :: !summary;
          Printf.printf "[quant] %s %s -> %s%!\n" name wname tier)
        [ (`I16, Numeric.I16); (`I8, Numeric.I8) ])
    [ "abalone"; "year"; "higgs"; "letter" ];
  Table.print t;
  let json = J.Obj [ ("summary", J.List (List.rev !summary)) ] in
  let oc = open_out "BENCH_quant.json" in
  output_string oc (J.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "report: BENCH_quant.json\n"

let all_experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig3", fig3);
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11a", fig11a);
    ("fig11b", fig11b);
    ("fig12", fig12);
    ("fig13", fig13);
    ("sec5b", sec5b);
    ("sec6e", sec6e);
    ("ablation", ablation);
    ("ext_qs", ext_qs);
    ("ext_dp", ext_dp);
    ("wallclock", wallclock);
    ("calibrate", calibrate);
    ("serve", serve);
    ("artifacts", artifacts);
    ("lint", lint);
    ("validate", validate);
    ("numeric", numeric);
    ("quant", quant);
  ]
