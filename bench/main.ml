(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 # run every experiment
     dune exec bench/main.exe -- fig8a fig10  # selected experiments
     dune exec bench/main.exe -- bechamel     # Bechamel wall-clock suite only

   Each experiment regenerates one table/figure of the paper (see
   DESIGN.md's experiment index). The Bechamel suite complements the
   simulated numbers with real OCaml wall-clock measurements — one
   Bechamel test per reproduced table/figure, each timing the kernel that
   experiment exercises. *)

module Schedule = Tb_hir.Schedule

let bechamel_suite () =
  let open Bechamel in
  let b = Context.load "higgs" in
  let forest = b.Context.entry.Tb_gbt.Zoo.forest in
  let rows = Array.sub b.Context.rows_1024 0 256 in
  let compile schedule =
    Tb_core.Treebeard.make ~plan:(`Schedule schedule)
      ~profiles:b.Context.profiles (`Forest forest)
  in
  let predict compiled () =
    ignore (Tb_core.Treebeard.predict_forest compiled rows)
  in
  let scalar = compile Schedule.scalar_baseline in
  let tree_major =
    compile { Schedule.scalar_baseline with loop_order = Schedule.One_tree_at_a_time }
  in
  let tiled =
    compile { Schedule.default with interleave = 1; pad_and_unroll = false; peel = false }
  in
  let unrolled = compile { Schedule.default with interleave = 1 } in
  let interleaved = compile Schedule.default in
  let prob = compile { Schedule.default with tiling = Schedule.Probability_based } in
  let array_layout = compile { Schedule.default with layout = Schedule.Array_layout } in
  let sparse_layout = compile { Schedule.default with layout = Schedule.Sparse_layout } in
  let parallel = compile (Schedule.with_threads Schedule.default 4) in
  let small_batch = Array.sub rows 0 64 in
  let xgb = Tb_baselines.Xgboost.compile forest in
  let tl = Tb_baselines.Treelite.compile forest in
  let profile_rows = Array.sub rows 0 64 in
  let tests =
    [
      Test.make ~name:"table1.leaf-profiling"
        (Staged.stage (fun () ->
             ignore (Tb_model.Model_stats.profile_forest forest profile_rows)));
      Test.make ~name:"table2.grid-validation"
        (Staged.stage (fun () ->
             List.iter (fun s -> ignore (Schedule.validate s)) Schedule.table2_grid));
      Test.make ~name:"fig3.coverage-cdf"
        (Staged.stage (fun () ->
             ignore (Tb_model.Model_stats.coverage_cdf forest profile_rows ~f:0.9)));
      Test.make ~name:"fig7a.tb-scalar-baseline" (Staged.stage (predict scalar));
      Test.make ~name:"fig7a.tb-optimized" (Staged.stage (predict interleaved));
      Test.make ~name:"fig7b.tb-parallel-4-domains" (Staged.stage (predict parallel));
      Test.make ~name:"fig8a.xgboost-style"
        (Staged.stage (fun () ->
             ignore (Tb_baselines.Xgboost.predict_batch xgb Tb_baselines.Xgboost.V15 rows)));
      Test.make ~name:"fig8a.treelite-style"
        (Staged.stage (fun () -> ignore (Tb_baselines.Treelite.predict_batch tl rows)));
      Test.make ~name:"fig9.tb-batch-64"
        (Staged.stage (fun () ->
             ignore (Tb_core.Treebeard.predict_forest interleaved small_batch)));
      Test.make ~name:"fig10.xgboost-v09-style"
        (Staged.stage (fun () ->
             ignore (Tb_baselines.Xgboost.predict_batch xgb Tb_baselines.Xgboost.V09 rows)));
      Test.make ~name:"fig11a.basic-tiling" (Staged.stage (predict tiled));
      Test.make ~name:"fig11a.probability-tiling" (Staged.stage (predict prob));
      Test.make ~name:"fig11b.unrolled" (Staged.stage (predict unrolled));
      Test.make ~name:"fig11b.interleaved" (Staged.stage (predict interleaved));
      Test.make ~name:"fig12.tb-batch-256" (Staged.stage (predict interleaved));
      Test.make ~name:"fig13.scaling-kernel" (Staged.stage (predict parallel));
      Test.make ~name:"sec5b.array-layout" (Staged.stage (predict array_layout));
      Test.make ~name:"sec5b.sparse-layout" (Staged.stage (predict sparse_layout));
      Test.make ~name:"sec6e.one-tree-scalar" (Staged.stage (predict tree_major));
    ]
  in
  Context.heading
    "Bechamel wall-clock suite: one test per reproduced table/figure\n\
     (real OCaml-backend timings on higgs, batch 256)";
  let grouped = Test.make_grouped ~name:"tb" tests in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |] in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table = Tb_util.Table.create [ "kernel"; "time per call" ] in
  let entries =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) res []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ols) ->
      let cell =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) ->
          if e > 1e6 then Printf.sprintf "%.2f ms" (e /. 1e6)
          else Printf.sprintf "%.1f us" (e /. 1e3)
        | Some [] | None -> "n/a"
      in
      Tb_util.Table.add_row table [ name; cell ])
    entries;
  Tb_util.Table.print table

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run_one name =
    if name = "bechamel" then bechamel_suite ()
    else
      match List.assoc_opt name Experiments.all_experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s bechamel\n" name
          (String.concat " " (List.map fst Experiments.all_experiments));
        exit 1
  in
  match args with
  | [] ->
    List.iter (fun (_, f) -> f ()) Experiments.all_experiments;
    bechamel_suite ()
  | names -> List.iter run_one names
