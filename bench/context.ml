(* Shared benchmark context: zoo models, batches, memoized autotuning. *)

module Zoo = Tb_gbt.Zoo
module Dataset = Tb_data.Dataset
module Forest = Tb_model.Forest
module Model_stats = Tb_model.Model_stats
module Schedule = Tb_hir.Schedule
module Config = Tb_cpu.Config
module Lower = Tb_lir.Lower
module Explore = Tb_core.Explore
module Perf = Tb_core.Perf
module Table = Tb_util.Table
module Stats = Tb_util.Stats

type bench = {
  entry : Zoo.entry;
  profiles : Model_stats.tree_profile array;
  rows_1024 : float array array;
}

let benches : (string, bench) Hashtbl.t = Hashtbl.create 8

let load name =
  match Hashtbl.find_opt benches name with
  | Some b -> b
  | None ->
    Printf.printf "[setup] loading %s...\n%!" name;
    let entry = Zoo.get name in
    let profiles =
      Model_stats.profile_forest entry.Zoo.forest
        entry.Zoo.train_data.Dataset.features
    in
    let rows_1024 =
      Dataset.subsample_rows entry.Zoo.test_data 1024
        (Tb_util.Prng.create (Hashtbl.hash name))
    in
    let b = { entry; profiles; rows_1024 } in
    Hashtbl.add benches name b;
    b

let all_names = List.map (fun (s : Zoo.spec) -> s.Zoo.name) Zoo.specs

(* Memoized greedy autotuning per (benchmark, target). *)
let best_cache : (string * string, Explore.result) Hashtbl.t = Hashtbl.create 16

let best_schedule name (target : Config.t) =
  let key = (name, target.Config.name) in
  match Hashtbl.find_opt best_cache key with
  | Some r -> r
  | None ->
    let b = load name in
    Printf.printf "[setup] autotuning %s on %s...\n%!" name target.Config.name;
    let r =
      Explore.greedy ~target ~profiles:b.profiles b.entry.Zoo.forest b.rows_1024
    in
    Hashtbl.add best_cache key r;
    r

let simulate ?threads ?batch name target schedule =
  let b = load name in
  let lowered =
    Lower.lower ~profiles:b.profiles b.entry.Zoo.forest schedule
  in
  Perf.simulate ~target ?threads ?batch lowered b.rows_1024

let baseline_perf ?threads ?batch name target =
  simulate ?threads ?batch name target Schedule.scalar_baseline

let geomean_row label values =
  label :: List.map (fun v -> Table.cell_fx (Stats.geomean (Array.of_list v))) values

let heading title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"
