(* Shared Cmdliner terms for the treebeard subcommands.

   lint, calibrate and serve-sim grew the same flag vocabulary
   independently (--model/--zoo selection, --strict exit-status policy,
   --grid sweeps, -o JSON report output, the schedule/target flags); this
   module is the single definition each subcommand composes from. *)

open Cmdliner
module Schedule = Tb_hir.Schedule
module Config = Tb_cpu.Config

let model_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "m"; "model" ] ~docv:"FILE" ~doc:"Serialized model (JSON).")

(* Subcommands that also accept --zoo make the model optional. *)
let model_opt_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "m"; "model" ] ~docv:"FILE" ~doc:"Serialized model (JSON).")

let target_arg =
  let parse s =
    match Config.by_name s with
    | t -> Ok t
    | exception Not_found ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown target %s (try intel-rocket-lake or amd-ryzen7)" s))
  in
  let print fmt (t : Config.t) = Format.fprintf fmt "%s" t.Config.name in
  Arg.(
    value
    & opt (conv (parse, print)) Config.intel_rocket_lake
    & info [ "target" ] ~docv:"CPU" ~doc:"Cost-model target CPU.")

let zoo_flag ~doc = Arg.(value & flag & info [ "zoo" ] ~doc)
let grid_flag ~doc = Arg.(value & flag & info [ "grid" ] ~doc)
let strict_flag ~doc = Arg.(value & flag & info [ "strict" ] ~doc)

let bits_arg =
  let parse s =
    match Tb_analysis.Numeric.width_of_string s with
    | Ok w -> Ok w
    | Error e -> Error (`Msg e)
  in
  let print fmt w =
    Format.fprintf fmt "%s" (Tb_analysis.Numeric.width_to_string w)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tb_analysis.Numeric.I16
    & info [ "bits"; "width" ] ~docv:"WIDTH"
        ~doc:"Quantization width to certify: int8 or int16.")

let tolerance_arg =
  Arg.(
    value
    & opt float Tb_analysis.Numeric.default_tolerance
    & info [ "tolerance" ] ~docv:"EPS"
        ~doc:
          "Maximum acceptable proved per-class deviation of the \
           dequantized output against the float reference before an N003 \
           finding.")

let precision_arg =
  let parse s =
    match Tb_core.Treebeard.precision_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print fmt p =
    Format.fprintf fmt "%s" (Tb_core.Treebeard.precision_to_string p)
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Float
    & info [ "precision" ] ~docv:"TIER"
        ~doc:
          "Precision tier to compile: float (default), int16 or int8. A \
           quantized tier certifies the model first (the quantcheck \
           analysis) and falls back to float — per model, with an N005 \
           diagnostic — when the certificate is refuted; a model that \
           certifies clean serves the integer fast path, bitwise-equal \
           to the certified integer evaluator.")

(* --precision int16 --tolerance 0.5: the tolerance flag (shared with
   quantcheck) overrides the quantized request's N003 budget. *)
let with_tolerance tolerance = function
  | `Float -> `Float
  | `Quantized q -> `Quantized { q with Tb_core.Treebeard.tolerance }

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "On-disk packed-artifact store for the predictor registry \
           (created if absent). A later run pointed at the same directory \
           hydrates compiled predictors from disk instead of recompiling \
           — warm restarts report disk hits, not compiles.")

let cache_max_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Size cap for the on-disk artifact store: after every artifact \
           write, oldest artifacts (by mtime) are evicted until the store \
           fits. Requires --cache-dir; unbounded by default.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Serve the trace across N shards, each with its own registry \
           and worker pool, behind routed admission (see --routing). \
           Shards share --cache-dir, so a compile on one shard ships its \
           artifact to the others.")

let routing_arg =
  let parse s =
    match Tb_serve.Router.policy_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print fmt p =
    Format.fprintf fmt "%s" (Tb_serve.Router.policy_to_string p)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tb_serve.Router.Affinity
    & info [ "routing" ] ~docv:"POLICY"
        ~doc:
          "Admission routing across shards: hash (modulo — balanced but \
           unstable under resharding) or affinity (consistent hashing — \
           a reshard moves only the keys it must).")

let scheduling_arg =
  let parse s =
    match Tb_serve.Scheduler.policy_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print fmt p =
    Format.fprintf fmt "%s" (Tb_serve.Scheduler.policy_to_string p)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tb_serve.Scheduler.Fifo
    & info [ "scheduling" ] ~docv:"POLICY"
        ~doc:
          "Pending-batch dispatch order: fifo (formation order) or edf \
           (earliest deadline first, driven by --slo-us budgets).")

let popularity_arg =
  let parse s =
    match Tb_serve.Simulate.popularity_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print fmt p =
    Format.fprintf fmt "%s" (Tb_serve.Simulate.popularity_to_string p)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tb_serve.Simulate.Uniform
    & info [ "popularity" ] ~docv:"DIST"
        ~doc:
          "Model-popularity distribution of the trace: uniform or \
           zipf[:theta] (first --zoo model hottest).")

(* --slo-us "m1=4000,m2=1500" per-model budgets; a bare number is the
   default budget for every unlisted model. *)
let slo_arg =
  let parse s =
    let parts =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    let rec go pairs default = function
      | [] -> Ok (List.rev pairs, default)
      | p :: rest -> (
        match String.index_opt p '=' with
        | Some i -> (
          let name = String.trim (String.sub p 0 i) in
          let v = String.sub p (i + 1) (String.length p - i - 1) in
          match float_of_string_opt (String.trim v) with
          | Some b when b > 0.0 -> go ((name, b) :: pairs) default rest
          | _ -> Error (`Msg (Printf.sprintf "invalid SLO budget in %S" p)))
        | None -> (
          match float_of_string_opt p with
          | Some b when b > 0.0 -> go pairs (Some b) rest
          | _ -> Error (`Msg (Printf.sprintf "invalid SLO budget %S" p))))
    in
    go [] None parts
  in
  let print fmt (pairs, default) =
    let ps = List.map (fun (m, b) -> Printf.sprintf "%s=%g" m b) pairs in
    let ps =
      match default with
      | None -> ps
      | Some b -> ps @ [ Printf.sprintf "%g" b ]
    in
    Format.fprintf fmt "%s" (String.concat "," ps)
  in
  Arg.(
    value
    & opt (conv (parse, print)) ([], None)
    & info [ "slo-us" ] ~docv:"SPEC"
        ~doc:
          "Per-model end-to-end latency budgets in virtual microseconds, \
           e.g. 'abalone=4000,letter=1500'; a bare number is the default \
           budget for unlisted models. Budgets drive EDF deadlines \
           (--scheduling edf), per-model SLO attainment in the report and \
           graded overload shedding.")

let shed_lo_arg =
  Arg.(
    value & opt float 2.0
    & info [ "shed-lo" ] ~docv:"FRAC"
        ~doc:
          "Admission-window occupancy (0..1) where graded overload \
           shedding starts turning away the loosest-SLO classes; the \
           default 2.0 disables shedding.")

let shed_hi_arg =
  Arg.(
    value & opt float 2.0
    & info [ "shed-hi" ] ~docv:"FRAC"
        ~doc:
          "Occupancy where every class but the tightest is shed; between \
           --shed-lo and --shed-hi the ladder degrades gradually.")

let out_arg ~doc =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

(* Write an indented JSON report, newline-terminated — every report the
   CLI persists goes through here so determinism diffs compare like for
   like. *)
let write_report path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Tb_util.Json.to_string ~indent:true json);
      output_string oc "\n")

let schedule_term =
  let tile_size =
    Arg.(value & opt int 8 & info [ "tile-size" ] ~doc:"Tile size (1-8).")
  in
  let tiling =
    Arg.(
      value
      & opt
          (enum
             [ ("basic", Schedule.Basic); ("prob", Schedule.Probability_based);
               ("prob-opt", Schedule.Optimal_probability_based);
               ("minmax", Schedule.Min_max_depth) ])
          Schedule.Basic
      & info [ "tiling" ]
          ~doc:"Tiling algorithm: basic, prob, prob-opt or minmax.")
  in
  let loop_order =
    Arg.(
      value
      & opt
          (enum
             [ ("tree", Schedule.One_tree_at_a_time);
               ("row", Schedule.One_row_at_a_time) ])
          Schedule.One_tree_at_a_time
      & info [ "loop-order" ] ~doc:"Loop order: tree or row.")
  in
  let interleave =
    Arg.(
      value & opt int 4
      & info [ "interleave" ] ~doc:"Walk interleaving factor.")
  in
  let unroll =
    Arg.(value & flag & info [ "no-unroll" ] ~doc:"Disable padding + unrolling.")
  in
  let layout =
    Arg.(
      value
      & opt
          (enum
             [ ("array", Schedule.Array_layout);
               ("sparse", Schedule.Sparse_layout) ])
          Schedule.Sparse_layout
      & info [ "layout" ] ~doc:"Memory layout: array or sparse.")
  in
  let threads =
    Arg.(
      value & opt int 1
      & info [ "threads" ] ~doc:"Row-loop parallelism (domains).")
  in
  let build tile_size tiling loop_order interleave no_unroll layout threads =
    {
      Schedule.default with
      tile_size;
      tiling;
      loop_order;
      interleave;
      pad_and_unroll = not no_unroll;
      peel = not no_unroll;
      layout;
      num_threads = threads;
    }
  in
  let schedule_file =
    Arg.(
      value & opt (some file) None
      & info [ "schedule-file" ] ~docv:"FILE"
          ~doc:"Load the schedule from a JSON file (e.g. saved by explore                 --save); overrides the individual schedule flags.")
  in
  let finish schedule = function
    | None -> schedule
    | Some path -> Schedule.of_file path
  in
  Term.(
    const finish
    $ (const build $ tile_size $ tiling $ loop_order $ interleave $ unroll
      $ layout $ threads)
    $ schedule_file)
