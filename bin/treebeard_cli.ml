(* treebeard — command-line driver for the compiler.

   Subcommands:
     train    train a benchmark model and serialize it to JSON
     compile  compile a serialized model and dump its IR
     predict  run batch inference on a serialized model
     explore  autotune a schedule for a CPU target
     lint     statically verify models through the tbcheck pipeline
     quantcheck  certify int8/int16 quantization of a model (N00x)
     calibrate  cross-validate the cost model against the profiler + JIT
     serve-sim  simulate the dynamic-batching serving runtime on a trace *)

open Cmdliner
module Schedule = Tb_hir.Schedule
module Config = Tb_cpu.Config

(* ---------------- shared args (Cli_common) ---------------- *)

let model_arg = Cli_common.model_arg
let target_arg = Cli_common.target_arg
let schedule_term = Cli_common.schedule_term
let precision_arg = Cli_common.precision_arg

(* ---------------- train ---------------- *)

let train_cmd =
  let benchmark =
    Arg.(
      required
      & opt (some (enum (List.map (fun n -> (n, n)) Tb_data.Generators.names))) None
      & info [ "b"; "benchmark" ] ~docv:"NAME"
          ~doc:"Benchmark to train (abalone, airline, airline-ohe, covtype, epsilon, letter, higgs, year).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output path (default <name>.json).")
  in
  let run benchmark out =
    let t0 = Unix.gettimeofday () in
    let entry = Tb_gbt.Zoo.get benchmark in
    let path = Option.value out ~default:(benchmark ^ ".json") in
    Tb_model.Serialize.to_file path entry.Tb_gbt.Zoo.forest;
    Printf.printf "trained/loaded %s in %.1fs: %d trees, depth %d -> %s\n" benchmark
      (Unix.gettimeofday () -. t0)
      (Array.length entry.Tb_gbt.Zoo.forest.Tb_model.Forest.trees)
      (Tb_model.Forest.max_depth entry.Tb_gbt.Zoo.forest)
      path
  in
  Cmd.v (Cmd.info "train" ~doc:"Train (or load cached) benchmark model")
    Term.(const run $ benchmark $ out)

(* ---------------- compile ---------------- *)

let compile_cmd =
  let run model schedule precision tolerance =
    let precision = Cli_common.with_tolerance tolerance precision in
    let compiled =
      Tb_core.Treebeard.make ~plan:(`Schedule schedule) ~precision
        (`File model)
    in
    List.iter
      (fun d -> print_endline (Tb_diag.Diagnostic.to_string d))
      compiled.Tb_core.Treebeard.precision_diags;
    Printf.printf "precision: %s%s\n"
      (Tb_core.Treebeard.tier_to_string compiled.Tb_core.Treebeard.tier)
      (if compiled.Tb_core.Treebeard.resident_k > 0 then
         Printf.sprintf " (resident prefix k=%d)"
           compiled.Tb_core.Treebeard.resident_k
       else "");
    print_string (Tb_core.Treebeard.dump_ir compiled)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a model and dump its IR (schedule, MIR, LIR, layout)")
    Term.(
      const run $ model_arg $ schedule_term $ precision_arg
      $ Cli_common.tolerance_arg)

(* ---------------- predict ---------------- *)

let predict_cmd =
  let batch =
    Arg.(value & opt int 1024 & info [ "batch" ] ~docv:"N" ~doc:"Batch size.")
  in
  let backend =
    Arg.(
      value
      & opt (enum [ ("jit", `Jit); ("interp", `Interp) ]) `Jit
      & info [ "backend" ]
          ~doc:"Execution backend: the closure JIT or the register-IR interpreter.")
  in
  let run model schedule batch backend precision tolerance =
    let precision = Cli_common.with_tolerance tolerance precision in
    let forest = Tb_model.Serialize.of_file model in
    let predict, tier =
      match backend with
      | `Jit ->
        let compiled =
          Tb_core.Treebeard.make ~plan:(`Schedule schedule) ~precision
            (`Forest forest)
        in
        (compiled.Tb_core.Treebeard.predict, compiled.Tb_core.Treebeard.tier)
      | `Interp ->
        (match precision with
        | `Float -> ()
        | `Quantized _ ->
          prerr_endline "predict: --precision requires the jit backend";
          exit 2);
        (Tb_vm.Interp.compile (Tb_lir.Lower.lower forest schedule), `Float)
    in
    let rng = Tb_util.Prng.create 1 in
    let rows =
      Array.init batch (fun _ ->
          Array.init forest.Tb_model.Forest.num_features (fun _ ->
              Tb_util.Prng.gaussian rng))
    in
    let r =
      Tb_util.Timer.measure ~warmup:1 ~min_iters:3 ~min_time_s:0.5 (fun () ->
          ignore (predict rows))
    in
    Printf.printf "schedule: %s (%s backend, %s)\n"
      (Schedule.to_string schedule)
      (match backend with `Jit -> "jit" | `Interp -> "interp")
      (Tb_core.Treebeard.tier_to_string tier);
    Printf.printf "batch %d: %.2f ms/batch, %.2f us/row\n" batch
      (r.Tb_util.Timer.mean_s *. 1e3)
      (r.Tb_util.Timer.mean_s *. 1e6 /. float_of_int batch)
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Run batch inference and report wall-clock time")
    Term.(
      const run $ model_arg $ schedule_term $ batch $ backend $ precision_arg
      $ Cli_common.tolerance_arg)

(* ---------------- explore ---------------- *)

let explore_cmd =
  let exhaustive =
    Arg.(value & flag & info [ "exhaustive" ] ~doc:"Search the full Table II grid.")
  in
  let save =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the best schedule as JSON.")
  in
  let run model target exhaustive save =
    let forest = Tb_model.Serialize.of_file model in
    let rng = Tb_util.Prng.create 7 in
    let rows =
      Array.init 256 (fun _ ->
          Array.init forest.Tb_model.Forest.num_features (fun _ ->
              Tb_util.Prng.gaussian rng))
    in
    let t0 = Unix.gettimeofday () in
    let result =
      if exhaustive then Tb_core.Explore.exhaustive ~target forest rows
      else Tb_core.Explore.greedy ~target forest rows
    in
    let baseline =
      Tb_core.Explore.evaluate ~target forest Schedule.scalar_baseline rows
    in
    Printf.printf "target          : %s\n" target.Config.name;
    Printf.printf "best schedule   : %s\n" (Schedule.to_string result.Tb_core.Explore.schedule);
    Printf.printf "simulated cost  : %.0f cycles/row (baseline %.0f, speedup %.2fx)\n"
      result.Tb_core.Explore.perf.Tb_core.Perf.cycles_per_row
      baseline.Tb_core.Perf.cycles_per_row
      (baseline.Tb_core.Perf.cycles_per_row
      /. result.Tb_core.Explore.perf.Tb_core.Perf.cycles_per_row);
    Printf.printf "search          : %d schedules in %.1fs\n"
      result.Tb_core.Explore.evaluated
      (Unix.gettimeofday () -. t0);
    match save with
    | None -> ()
    | Some path ->
      Schedule.to_file path result.Tb_core.Explore.schedule;
      Printf.printf "saved schedule  : %s\n" path
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Autotune a schedule for a CPU target")
    Term.(const run $ model_arg $ target_arg $ exhaustive $ save)

(* ---------------- lint ---------------- *)

let lint_cmd =
  let model = Cli_common.model_opt_arg in
  let zoo =
    Cli_common.zoo_flag
      ~doc:
        "Lint every benchmark model in the zoo (training/loading them from \
         the cache as needed)."
  in
  let grid =
    Cli_common.grid_flag
      ~doc:
        "Lint each model over the full Table II schedule grid instead of a \
         single schedule."
  in
  let batch =
    Arg.(
      value & opt int 1024
      & info [ "batch" ] ~docv:"N"
          ~doc:"Batch size assumed by the deployment-dependent checks.")
  in
  let strict =
    Cli_common.strict_flag
      ~doc:"Treat warnings as errors for the exit status."
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print every finding, including infos.")
  in
  let census_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "census" ] ~docv:"FILE"
          ~doc:"Write a warning census (per model x schedule counts of \
                L010..L014) to FILE as JSON.")
  in
  let census_baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "census-baseline" ] ~docv:"FILE"
          ~doc:"Diff this run's census against a checked-in baseline \
                census; any L010/L013 finding or L011/L012 count \
                regression fails the run.")
  in
  let run model zoo grid schedule batch strict verbose census_out
      census_baseline =
    let module D = Tb_diag.Diagnostic in
    let module Passman = Tb_core.Passman in
    let module Census = Tb_analysis.Census in
    let models =
      match (zoo, model) with
      | true, _ ->
        List.map
          (fun s ->
            let e = Tb_gbt.Zoo.get s.Tb_gbt.Zoo.name in
            (s.Tb_gbt.Zoo.name, e.Tb_gbt.Zoo.forest))
          Tb_gbt.Zoo.specs
      | false, Some path -> [ (path, Tb_model.Serialize.of_file path) ]
      | false, None ->
        prerr_endline "lint: pass --model FILE or --zoo"; exit 2
    in
    let schedules =
      if grid then Schedule.table2_grid else [ schedule ]
    in
    let errors = ref 0 and warnings = ref 0 in
    let census = ref [] in
    List.iter
      (fun (name, forest) ->
        List.iter
          (fun schedule ->
            let report =
              match Passman.lower ~batch_size:batch forest schedule with
              | Ok (_, r) | Error r -> r
            in
            let ds = Passman.diagnostics report in
            census :=
              Census.row_of_diags ~model:name
                ~schedule:(Schedule.to_string schedule) ds
              :: !census;
            let n_err = List.length (D.errors ds) in
            let n_warn =
              List.length
                (List.filter (fun d -> d.D.severity = D.Warning) ds)
            in
            errors := !errors + n_err;
            warnings := !warnings + n_warn;
            let verdict =
              if n_err > 0 then "FAIL"
              else if n_warn > 0 then "warn"
              else "ok"
            in
            Printf.printf "%-12s %-55s %s\n" name
              (Schedule.to_string schedule)
              verdict;
            let shown =
              if verbose then ds
              else List.filter (fun d -> d.D.severity <> D.Info) ds
            in
            List.iter (fun d -> Printf.printf "  %s\n" (D.to_string d)) shown)
          schedules)
      models;
    Printf.printf "lint: %d model(s) x %d schedule(s): %d error(s), %d warning(s)\n"
      (List.length models) (List.length schedules) !errors !warnings;
    let census = List.rev !census in
    if census_out <> None || census_baseline <> None then begin
      Printf.printf "census totals:\n";
      List.iter
        (fun (c, n) -> Printf.printf "  %-6s %d\n" c n)
        (Census.totals census)
    end;
    (match census_out with
    | None -> ()
    | Some path ->
      Census.to_file path census;
      Printf.printf "census          : %s (%d rows)\n" path
        (List.length census));
    let census_regressed =
      match census_baseline with
      | None -> false
      | Some path -> (
        match Census.diff ~baseline:(Census.of_file path) census with
        | [] ->
          Printf.printf "census baseline : ok (no regression vs %s)\n" path;
          false
        | problems ->
          Printf.printf "census baseline : %d regression(s) vs %s\n"
            (List.length problems) path;
          List.iter (fun p -> Printf.printf "  %s\n" p) problems;
          true)
    in
    if !errors > 0 || census_regressed || (strict && !warnings > 0) then
      exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically verify models through the tbcheck pipeline \
             (schedule legality, tiling/LUT/padding, loop-nest and race \
             checks, layout closure and walk-program bounds)")
    Term.(
      const run $ model $ zoo $ grid $ schedule_term $ batch $ strict
      $ verbose $ census_out $ census_baseline)

(* ---------------- validate ---------------- *)

let validate_cmd =
  let module D = Tb_diag.Diagnostic in
  let module Census = Tb_analysis.Census in
  let module Validate = Tb_analysis.Validate in
  let module Cost_check = Tb_analysis.Cost_check in
  let module Program = Tb_hir.Program in
  let module Mir = Tb_mir.Mir in
  let module Layout = Tb_lir.Layout in
  let module Json = Tb_util.Json in
  let model = Cli_common.model_opt_arg in
  let zoo =
    Cli_common.zoo_flag
      ~doc:
        "Validate every benchmark model in the zoo (training/loading them \
         from the cache as needed)."
  in
  let grid =
    Cli_common.grid_flag
      ~doc:
        "Sweep the full 256-point Table II schedule grid instead of the \
         reduced representative grid."
  in
  let stage =
    Arg.(
      value
      & opt
          (enum
             [ ("all", `All); ("hir", `Hir); ("mir", `Mir); ("lir", `Lir);
               ("reg", `Reg) ])
          `All
      & info [ "stage" ] ~docv:"STAGE"
          ~doc:
            "Restrict validation to one cross-stage pair: hir \
             (source<->HIR), mir (HIR<->walk kinds), lir (MIR<->layout \
             buffers), reg (layout<->register IR + jam projection), or \
             all.")
  in
  let strict =
    Cli_common.strict_flag
      ~doc:"Treat warnings as errors for the exit status."
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print every finding, including infos.")
  in
  let out =
    Cli_common.out_arg
      ~doc:"Write the per-(model, schedule) findings report as JSON."
  in
  let census_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "census" ] ~docv:"FILE"
          ~doc:"Write a T001..T004 census (per model x schedule counts) to \
                FILE as JSON.")
  in
  let census_baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "census-baseline" ] ~docv:"FILE"
          ~doc:"Diff this run's census against a checked-in baseline; any \
                T004 finding or T001..T003 count regression fails the \
                run.")
  in
  let run model zoo grid stage strict verbose out census_out census_baseline =
    let models =
      match (zoo, model) with
      | true, _ ->
        List.map
          (fun (s : Tb_gbt.Zoo.spec) ->
            let e = Tb_gbt.Zoo.get s.Tb_gbt.Zoo.name in
            (s.Tb_gbt.Zoo.name, e.Tb_gbt.Zoo.forest))
          Tb_gbt.Zoo.specs
      | false, Some path -> [ (path, Tb_model.Serialize.of_file path) ]
      | false, None ->
        prerr_endline "validate: pass --model FILE or --zoo"; exit 2
    in
    let schedules =
      if grid then Schedule.table2_grid else Cost_check.reduced_grid
    in
    let errors = ref 0 and warnings = ref 0 in
    let census = ref [] and cells = ref [] in
    List.iter
      (fun (name, forest) ->
        List.iter
          (fun schedule ->
            let findings =
              let hir = Program.build forest schedule in
              let mir = Mir.lower hir in
              match Layout.build hir with
              | exception Invalid_argument msg ->
                (* Slab cap on degenerate array-layout points: nothing to
                   validate below MIR. *)
                Printf.printf "%-12s %-55s skip (%s)\n" name
                  (Schedule.to_string schedule) msg;
                None
              | lay ->
                Some
                  (match stage with
                  | `All -> Validate.check_all hir mir lay
                  | `Hir -> Validate.check_hir hir
                  | `Mir -> Validate.check_mir hir mir
                  | `Lir -> Validate.check_lir hir mir lay
                  | `Reg -> Validate.check_reg hir mir lay)
            in
            match findings with
            | None -> ()
            | Some fs ->
              let ds = Validate.to_diagnostics fs in
              census :=
                Census.row_of_diags ~family:Census.validate_family ~model:name
                  ~schedule:(Schedule.to_string schedule) ds
                :: !census;
              cells := (name, schedule, fs) :: !cells;
              let n_err = List.length (D.errors ds) in
              let n_warn =
                List.length
                  (List.filter (fun d -> d.D.severity = D.Warning) ds)
              in
              errors := !errors + n_err;
              warnings := !warnings + n_warn;
              let verdict =
                if n_err > 0 then "FAIL"
                else if n_warn > 0 then "warn"
                else "ok"
              in
              Printf.printf "%-12s %-55s %s\n" name
                (Schedule.to_string schedule)
                verdict;
              let shown =
                if verbose then ds
                else List.filter (fun d -> d.D.severity <> D.Info) ds
              in
              List.iter (fun d -> Printf.printf "  %s\n" (D.to_string d)) shown)
          schedules)
      models;
    Printf.printf
      "validate: %d model(s) x %d schedule(s): %d error(s), %d warning(s)\n"
      (List.length models) (List.length schedules) !errors !warnings;
    let census = List.rev !census in
    (match out with
    | None -> ()
    | Some path ->
      let cell_json (name, schedule, fs) =
        Json.Obj
          [
            ("model", Json.Str name);
            ("schedule", Json.Str (Schedule.to_string schedule));
            ( "findings",
              Json.List
                (List.map
                   (fun (f : Validate.finding) ->
                     Json.Obj
                       [
                         ("code", Json.Str f.Validate.code);
                         ( "severity",
                           Json.Str (D.severity_string f.Validate.severity) );
                         ("pair", Json.Str
                            (Validate.stage_name (fst f.Validate.pair)
                             ^ "<->"
                             ^ Validate.stage_name (snd f.Validate.pair)));
                         ("tree", Json.Num (float_of_int f.Validate.tree));
                         ( "witness",
                           match f.Validate.witness with
                           | None -> Json.Null
                           | Some w ->
                             Json.List
                               (Array.to_list
                                  (Array.map (fun x -> Json.Num x) w)) );
                         ("message", Json.Str f.Validate.message);
                       ])
                   fs) );
          ]
      in
      Cli_common.write_report path
        (Json.Obj [ ("cells", Json.List (List.rev_map cell_json !cells)) ]);
      Printf.printf "report          : %s\n" path);
    if census_out <> None || census_baseline <> None then begin
      Printf.printf "census totals:\n";
      List.iter
        (fun (c, n) -> Printf.printf "  %-6s %d\n" c n)
        (Census.totals ~family:Census.validate_family census)
    end;
    (match census_out with
    | None -> ()
    | Some path ->
      Census.to_file path census;
      Printf.printf "census          : %s (%d rows)\n" path
        (List.length census));
    let census_regressed =
      match census_baseline with
      | None -> false
      | Some path -> (
        match
          Census.diff ~family:Census.validate_family
            ~baseline:(Census.of_file path) census
        with
        | [] ->
          Printf.printf "census baseline : ok (no regression vs %s)\n" path;
          false
        | problems ->
          Printf.printf "census baseline : %d regression(s) vs %s\n"
            (List.length problems) path;
          List.iter (fun p -> Printf.printf "  %s\n" p) problems;
          true)
    in
    if !errors > 0 || census_regressed || (strict && !warnings > 0) then
      exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Translation-validate the lowering pipeline: symbolic per-tree \
          path summaries of each compiled form (HIR tiled trees, MIR walk \
          kinds, LIR layout buffers, register-IR walk programs) are \
          compared pairwise, and any divergence is refuted with a \
          concrete witness row (T001..T004)")
    Term.(
      const run $ model $ zoo $ grid $ stage $ strict $ verbose $ out
      $ census_out $ census_baseline)

(* ---------------- quantcheck ---------------- *)

let quantcheck_cmd =
  let module D = Tb_diag.Diagnostic in
  let module Census = Tb_analysis.Census in
  let module Numeric = Tb_analysis.Numeric in
  let module Json = Tb_util.Json in
  let model = Cli_common.model_opt_arg in
  let zoo =
    Cli_common.zoo_flag
      ~doc:
        "Certify every benchmark model in the zoo (training/loading them \
         from the cache as needed)."
  in
  let grid =
    Cli_common.grid_flag
      ~doc:"Certify at both widths (int8 and int16) instead of just --bits."
  in
  let bits = Cli_common.bits_arg in
  let tolerance = Cli_common.tolerance_arg in
  let strict =
    Cli_common.strict_flag
      ~doc:
        "Exit non-zero on any finding — or, when --census-baseline is \
         given, only on a census regression (the baseline records the \
         findings a model is known not to certify away)."
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Also print per-feature scales and per-class bounds.")
  in
  let out =
    Cli_common.out_arg
      ~doc:"Write the per-(model, width) certificates as a JSON report."
  in
  let census_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "census" ] ~docv:"FILE"
          ~doc:"Write an N001..N004 census (per model x width counts) to \
                FILE as JSON.")
  in
  let census_baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "census-baseline" ] ~docv:"FILE"
          ~doc:"Diff this run's census against a checked-in baseline; any \
                per-cell N00x count growth fails the run.")
  in
  let run model zoo grid bits tolerance strict verbose out census_out
      census_baseline =
    let models =
      match (zoo, model) with
      | true, _ ->
        List.map
          (fun (s : Tb_gbt.Zoo.spec) ->
            let e = Tb_gbt.Zoo.get s.Tb_gbt.Zoo.name in
            (s.Tb_gbt.Zoo.name, e.Tb_gbt.Zoo.forest))
          Tb_gbt.Zoo.specs
      | false, Some path -> [ (path, Tb_model.Serialize.of_file path) ]
      | false, None ->
        prerr_endline "quantcheck: pass --model FILE or --zoo"; exit 2
    in
    let widths = if grid then [ Numeric.I8; Numeric.I16 ] else [ bits ] in
    let warnings = ref 0 in
    let census = ref [] and certs = ref [] in
    List.iter
      (fun (name, forest) ->
        List.iter
          (fun width ->
            let cert = Numeric.certify ~tolerance ~width forest in
            let wname = Numeric.width_to_string width in
            certs := cert :: !certs;
            census :=
              Census.row_of_diags ~family:Census.numeric_family ~model:name
                ~schedule:wname cert.Numeric.findings
              :: !census;
            let n = List.length cert.Numeric.findings in
            warnings := !warnings + n;
            Printf.printf "%-12s %-6s %s\n" name wname
              (if n = 0 then "certified" else "refuted");
            List.iter
              (fun d -> Printf.printf "  %s\n" (D.to_string d))
              cert.Numeric.findings;
            if verbose then begin
              Printf.printf "  leaf scale 2^%d, tolerance %g\n"
                cert.Numeric.plan.Numeric.leaf_exp tolerance;
              Array.iteri
                (fun c dev ->
                  Printf.printf
                    "  class %d: dev bound %.3g, acc bound %d (cap %d)\n" c
                    dev
                    cert.Numeric.acc_bound.(c)
                    cert.Numeric.plan.Numeric.acc_max)
                cert.Numeric.dev_bound
            end)
          widths)
      models;
    let certified =
      List.length (List.filter Numeric.certified_clean !certs)
    in
    Printf.printf
      "quantcheck: %d model(s) x %d width(s): %d certified, %d finding(s)\n"
      (List.length models) (List.length widths) certified !warnings;
    let census = List.rev !census in
    (match out with
    | None -> ()
    | Some path ->
      Cli_common.write_report path
        (Json.Obj
           [
             ( "certificates",
               Json.List (List.rev_map Numeric.report_to_json !certs) );
           ]);
      Printf.printf "report          : %s\n" path);
    if census_out <> None || census_baseline <> None then begin
      Printf.printf "census totals:\n";
      List.iter
        (fun (c, n) -> Printf.printf "  %-6s %d\n" c n)
        (Census.totals ~family:Census.numeric_family census)
    end;
    (match census_out with
    | None -> ()
    | Some path ->
      Census.to_file path census;
      Printf.printf "census          : %s (%d rows)\n" path
        (List.length census));
    let census_regressed =
      match census_baseline with
      | None -> false
      | Some path -> (
        match
          Census.diff ~family:Census.numeric_family
            ~baseline:(Census.of_file path) census
        with
        | [] ->
          Printf.printf "census baseline : ok (no regression vs %s)\n" path;
          false
        | problems ->
          Printf.printf "census baseline : %d regression(s) vs %s\n"
            (List.length problems) path;
          List.iter (fun p -> Printf.printf "  %s\n" p) problems;
          true)
    in
    let strict_failed =
      strict && census_baseline = None && !warnings > 0
    in
    if census_regressed || strict_failed then exit 1
  in
  Cmd.v
    (Cmd.info "quantcheck"
       ~doc:
         "Statically certify integer quantization of a model: derive \
          per-feature power-of-two scales for int8/int16, prove \
          worst-case accumulator and output-deviation bounds, and report \
          overflow, threshold-collision, tolerance and argmax-flip risks \
          (N001..N004)")
    Term.(
      const run $ model $ zoo $ grid $ bits $ tolerance $ strict $ verbose
      $ out $ census_out $ census_baseline)

(* ---------------- calibrate ---------------- *)

let calibrate_cmd =
  let module Cost_check = Tb_analysis.Cost_check in
  let module D = Tb_diag.Diagnostic in
  let module Passman = Tb_core.Passman in
  let model = Cli_common.model_opt_arg in
  let zoo =
    Cli_common.zoo_flag
      ~doc:
        "Calibrate against every benchmark model in the zoo \
         (training/loading them from the cache as needed)."
  in
  let grid =
    Cli_common.grid_flag
      ~doc:
        "Sweep the full 256-point Table II schedule grid instead of the \
         reduced representative grid."
  in
  let top_k =
    Arg.(
      value & opt int Cost_check.default_tolerance.Cost_check.top_k
      & info [ "top-k" ] ~docv:"K"
          ~doc:"The predicted champion must rank in the measured top-K.")
  in
  let min_tau =
    Arg.(
      value & opt float Cost_check.default_tolerance.Cost_check.min_tau
      & info [ "min-tau" ] ~docv:"T"
          ~doc:"Minimum Kendall-tau between predicted and measured rankings \
                before a C001 finding.")
  in
  let max_regret =
    Arg.(
      value & opt float Cost_check.default_tolerance.Cost_check.max_regret
      & info [ "max-regret" ] ~docv:"F"
          ~doc:"Maximum measured slowdown of the predicted champion over \
                the measured best before a C001 finding (fraction).")
  in
  let event_tol =
    Arg.(
      value & opt float Cost_check.default_tolerance.Cost_check.event_rel_err
      & info [ "event-tol" ] ~docv:"F"
          ~doc:"Maximum per-row relative error on extensive event counts \
                before a C002 finding.")
  in
  let stall_tol =
    Arg.(
      value & opt float Cost_check.default_tolerance.Cost_check.stall_share_abs
      & info [ "stall-tol" ] ~docv:"F"
          ~doc:"Maximum absolute drift in a top-down stall bucket's share \
                of total cycles before a C003 finding.")
  in
  let batch =
    Arg.(
      value & opt int 256
      & info [ "batch" ] ~docv:"N" ~doc:"Rows per calibration batch.")
  in
  let sample =
    Arg.(
      value & opt int 48
      & info [ "sample" ] ~docv:"N"
          ~doc:"Row-sample size the extrapolated (autotuner-side) workload \
                is profiled on.")
  in
  let out =
    Cli_common.out_arg ~doc:"Write the combined calibration report as JSON."
  in
  let strict =
    Cli_common.strict_flag
      ~doc:"Treat warnings as errors for the exit status."
  in
  let run model zoo grid target top_k min_tau max_regret event_tol stall_tol
      batch sample out strict =
    let models =
      match (zoo, model) with
      | true, _ ->
        List.map
          (fun (s : Tb_gbt.Zoo.spec) ->
            let e = Tb_gbt.Zoo.get s.Tb_gbt.Zoo.name in
            let profiles =
              Tb_model.Model_stats.profile_forest e.Tb_gbt.Zoo.forest
                e.Tb_gbt.Zoo.train_data.Tb_data.Dataset.features
            in
            let rows =
              Tb_data.Dataset.subsample_rows e.Tb_gbt.Zoo.test_data batch
                (Tb_util.Prng.create (Hashtbl.hash s.Tb_gbt.Zoo.name))
            in
            (s.Tb_gbt.Zoo.name, e.Tb_gbt.Zoo.forest, Some profiles, rows))
          Tb_gbt.Zoo.specs
      | false, Some path ->
        let forest = Tb_model.Serialize.of_file path in
        let rng = Tb_util.Prng.create 7 in
        let rows =
          Array.init batch (fun _ ->
              Array.init forest.Tb_model.Forest.num_features (fun _ ->
                  Tb_util.Prng.gaussian rng))
        in
        [ (path, forest, None, rows) ]
      | false, None ->
        prerr_endline "calibrate: pass --model FILE or --zoo"; exit 2
    in
    let schedules =
      if grid then Schedule.table2_grid else Cost_check.reduced_grid
    in
    let tol =
      {
        Cost_check.top_k;
        min_tau;
        max_regret;
        event_rel_err = event_tol;
        stall_share_abs = stall_tol;
      }
    in
    let errors = ref 0 and warnings = ref 0 in
    let reports =
      List.map
        (fun (name, forest, profiles, rows) ->
          let compile schedule =
            match Passman.lower ~batch_size:batch ?profiles forest schedule with
            | Ok (lowered, _) -> Ok lowered
            | Error report -> Error (D.summary (Passman.diagnostics report))
          in
          let report =
            Cost_check.calibrate ~target ~tol ~sample ~compile ~name
              ~grid:schedules rows
          in
          print_string (Cost_check.report_to_string report);
          errors := !errors + List.length (D.errors report.Cost_check.findings);
          warnings :=
            !warnings
            + List.length
                (List.filter
                   (fun d -> d.D.severity = D.Warning)
                   report.Cost_check.findings);
          report)
        models
    in
    Printf.printf
      "calibrate: %d model(s) x %d schedule(s): %d error(s), %d warning(s)\n"
      (List.length models) (List.length schedules) !errors !warnings;
    (match out with
    | None -> ()
    | Some path ->
      let json =
        Tb_util.Json.Obj
          [
            ("target", Tb_util.Json.Str target.Config.name);
            ( "reports",
              Tb_util.Json.List (List.map Cost_check.report_to_json reports) );
          ]
      in
      Cli_common.write_report path json;
      Printf.printf "report: %s\n" path);
    if !errors > 0 || (strict && !warnings > 0) then exit 1
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Cross-validate the cost model against the instrumented \
             profiler and JIT wall clock over a schedule grid \
             (Kendall-tau rank agreement, top-k regret, event-count and \
             stall-attribution drift; C00x findings)")
    Term.(
      const run $ model $ zoo $ grid $ target_arg $ top_k $ min_tau
      $ max_regret $ event_tol $ stall_tol $ batch $ sample $ out $ strict)

(* ---------------- serve-sim ---------------- *)

let serve_sim_cmd =
  let module Simulate = Tb_serve.Simulate in
  let module Policy = Tb_serve.Policy in
  let module Runtime = Tb_serve.Runtime in
  let zoo =
    Arg.(
      value & opt string "abalone"
      & info [ "zoo" ] ~docv:"NAMES"
          ~doc:"Comma-separated benchmark models to serve (the request \
                stream mixes them uniformly).")
  in
  let arrival =
    let parse s =
      match Simulate.arrival_kind_of_string s with
      | Ok k -> Ok k
      | Error e -> Error (`Msg e)
    in
    let print fmt k =
      Format.fprintf fmt "%s" (Simulate.arrival_kind_to_string k)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Simulate.Poisson
      & info [ "arrival" ] ~docv:"KIND"
          ~doc:"Arrival process: poisson, burst[:N] or ramp.")
  in
  let rate =
    Arg.(
      value & opt float 50_000.0
      & info [ "rate" ] ~docv:"RPS" ~doc:"Average request rate (requests/s).")
  in
  let requests =
    Arg.(
      value & opt int 2000
      & info [ "requests" ] ~docv:"N" ~doc:"Trace length in requests.")
  in
  let batch_max =
    Arg.(
      value & opt int 32
      & info [ "batch-max" ] ~docv:"N" ~doc:"Maximum dynamic batch size.")
  in
  let deadline =
    Arg.(
      value & opt float 500.0
      & info [ "deadline-us" ] ~docv:"US"
          ~doc:"Batching deadline: a request waits at most this long \
                before its partial batch is dispatched.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker pool size (domains).")
  in
  let queue_cap =
    Arg.(
      value & opt int 1024
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Admission queue capacity; arrivals beyond it are rejected \
                (backpressure).")
  in
  let cache =
    let parse s =
      match Policy.kind_of_string s with
      | Ok k -> Ok k
      | Error e -> Error (`Msg e)
    in
    let print fmt k = Format.fprintf fmt "%s" (Policy.kind_to_string k) in
    Arg.(
      value
      & opt (conv (parse, print)) Policy.Lru
      & info [ "cache" ] ~docv:"POLICY"
          ~doc:"Predictor-cache eviction policy: lru or sieve.")
  in
  let cache_cap =
    Arg.(
      value & opt int 8
      & info [ "cache-cap" ] ~docv:"N" ~doc:"Predictor-cache capacity.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Trace PRNG seed.")
  in
  let mode =
    let parse s =
      match Runtime.mode_of_string s with
      | Ok m -> Ok m
      | Error e -> Error (`Msg e)
    in
    let print fmt m = Format.fprintf fmt "%s" (Runtime.mode_to_string m) in
    Arg.(
      value
      & opt (conv (parse, print)) Runtime.Virtual
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Execution mode: virtual (deterministic simulation only), \
                wall (also time real execution and report wall metrics), or \
                dual (wall metrics plus per-model wall/virtual drift and \
                V001/V002 checks).")
  in
  let max_service_drift =
    Arg.(
      value
      & opt float
          Tb_analysis.Serve_check.default_tolerance
            .Tb_analysis.Serve_check.max_service_drift
      & info [ "max-service-drift" ] ~docv:"X"
          ~doc:"Allowed wall/virtual service-time ratio (either direction) \
                per percentile before a V001 finding (dual mode).")
  in
  let max_compile_drift =
    Arg.(
      value
      & opt float
          Tb_analysis.Serve_check.default_tolerance
            .Tb_analysis.Serve_check.max_compile_drift
      & info [ "max-compile-drift" ] ~docv:"X"
          ~doc:"Allowed measured/modeled compile-cost ratio before a V002 \
                finding (dual mode).")
  in
  let min_drift_batches =
    Arg.(
      value
      & opt int
          Tb_analysis.Serve_check.default_tolerance
            .Tb_analysis.Serve_check.min_batches
      & info [ "min-drift-batches" ] ~docv:"N"
          ~doc:"A model's drift is only judged once it has at least this \
                many measured batches (noise guard, dual mode).")
  in
  let cache_dir = Cli_common.cache_dir_arg in
  let cache_max_bytes = Cli_common.cache_max_bytes_arg in
  let shards = Cli_common.shards_arg in
  let routing = Cli_common.routing_arg in
  let scheduling = Cli_common.scheduling_arg in
  let popularity = Cli_common.popularity_arg in
  let slo = Cli_common.slo_arg in
  let shed_lo = Cli_common.shed_lo_arg in
  let shed_hi = Cli_common.shed_hi_arg in
  let require_warm =
    Arg.(
      value & flag
      & info [ "require-warm" ]
          ~doc:
            "Exit non-zero if any dispatch paid a fresh compile — i.e. \
             assert the run was served entirely from the in-memory and \
             on-disk cache tiers (use with --cache-dir on a second run to \
             verify warm-restart behaviour).")
  in
  let out = Cli_common.out_arg ~doc:"Write the JSON report here." in
  let virtual_out =
    Arg.(
      value & opt (some string) None
      & info [ "virtual-out" ] ~docv:"FILE"
          ~doc:"Also write the report's deterministic virtual half (wall \
                and drift sections stripped) here — byte-identical across \
                same-seed runs in any mode.")
  in
  let strict =
    Cli_common.strict_flag
      ~doc:
        "Exit non-zero unless every served output is bitwise equal to the \
         direct single-call JIT prediction and (dual mode) no V001/V002 \
         drift finding fired."
  in
  let run zoo arrival rate requests schedule target batch_max deadline
      workers queue_cap cache cache_cap cache_dir cache_max_bytes shards
      routing scheduling popularity slo shed_lo shed_hi precision tolerance
      require_warm seed mode max_service_drift max_compile_drift
      min_drift_batches out virtual_out strict =
    let precision = Cli_common.with_tolerance tolerance precision in
    let names =
      String.split_on_char ',' zoo
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if names = [] then begin
      prerr_endline "serve-sim: pass at least one model via --zoo";
      exit 2
    end;
    if shards < 1 then begin
      prerr_endline "serve-sim: --shards must be >= 1";
      exit 2
    end;
    let slo_pairs, slo_default = slo in
    let models =
      List.map
        (fun name ->
          let e = Tb_gbt.Zoo.get name in
          let profiles =
            Tb_model.Model_stats.profile_forest e.Tb_gbt.Zoo.forest
              e.Tb_gbt.Zoo.train_data.Tb_data.Dataset.features
          in
          let pool =
            Tb_data.Dataset.subsample_rows e.Tb_gbt.Zoo.test_data 128
              (Tb_util.Prng.create (Hashtbl.hash name land max_int))
          in
          {
            Simulate.name;
            forest = e.Tb_gbt.Zoo.forest;
            profiles = Some profiles;
            pool;
            weight = 1;
            slo_us = List.assoc_opt name slo_pairs;
          })
        names
    in
    let config =
      {
        Simulate.arrival;
        rate_rps = rate;
        num_requests = requests;
        seed;
        popularity;
        schedule;
        runtime =
          {
            Runtime.default_config with
            Runtime.queue_capacity = queue_cap;
            batch_max;
            deadline_us = deadline;
            workers;
            scheduling;
            default_slo_us = slo_default;
            shed_lo;
            shed_hi;
            precision;
          };
        mode;
        shards;
        routing;
        cache_policy = cache;
        cache_capacity = cache_cap;
        cache_dir;
        cache_max_bytes;
        target;
      }
    in
    (* The fleet path subsumes the single-shard one, but the 1-shard
       report keeps its historical shape (and byte-compatibility with
       determinism diffs), so only route through the fleet when asked. *)
    let json, virtual_json, failures, compiles, hydrations, foreign, drift =
      if shards = 1 then begin
        let report = Simulate.run config models in
        ( Simulate.report_to_json report,
          (fun () -> Simulate.report_to_json ~virtual_only:true report),
          report.Simulate.result.Runtime.equivalence_failures,
          report.Simulate.result.Runtime.compile_count,
          report.Simulate.result.Runtime.hydration_count,
          report.Simulate.result.Runtime.foreign_hydration_count,
          report.Simulate.result.Runtime.drift )
      end
      else begin
        let report = Simulate.run_fleet config models in
        let f = report.Simulate.fleet in
        ( Simulate.fleet_report_to_json report,
          (fun () -> Simulate.fleet_report_to_json ~virtual_only:true report),
          f.Runtime.fleet_equivalence_failures,
          f.Runtime.fleet_compiles,
          f.Runtime.fleet_hydrations,
          f.Runtime.fleet_foreign_hydrations,
          List.concat_map
            (fun (_, (r : Runtime.result)) -> r.Runtime.drift)
            f.Runtime.shard_results )
      end
    in
    let text = Tb_util.Json.to_string ~indent:true json ^ "\n" in
    (match out with
    | None -> print_string text
    | Some path ->
      Cli_common.write_report path json;
      Printf.printf "report: %s\n" path);
    (match virtual_out with
    | None -> ()
    | Some path ->
      Cli_common.write_report path (virtual_json ());
      Printf.printf "virtual report: %s\n" path);
    if failures > 0 then
      Printf.eprintf "serve-sim: %d served output(s) diverge from the JIT\n"
        failures;
    Printf.printf "compiles: %d, disk hydrations: %d (foreign: %d)\n" compiles
      hydrations foreign;
    if require_warm && compiles > 0 then begin
      Printf.eprintf
        "serve-sim: --require-warm but %d dispatch(es) paid a fresh compile\n"
        compiles;
      exit 1
    end;
    let drift_findings =
      let module S = Tb_analysis.Serve_check in
      let tol =
        { S.max_service_drift; max_compile_drift;
          min_batches = min_drift_batches }
      in
      S.check ~tol drift
    in
    List.iter
      (fun d -> print_endline (Tb_diag.Diagnostic.to_string d))
      drift_findings;
    if drift_findings <> [] then
      Printf.printf "serve-sim: %d drift finding(s)\n"
        (List.length drift_findings);
    if strict && (failures > 0 || drift_findings <> []) then exit 1
  in
  Cmd.v
    (Cmd.info "serve-sim"
       ~doc:"Simulate the dynamic-batching serving runtime on a \
             deterministic trace (virtual-clock latencies, predictor \
             cache, backpressure) and report p50/p95/p99, throughput and \
             cache behaviour as JSON; --shards/--routing/--scheduling add \
             a routed fleet with EDF dispatch and artifact shipping; \
             --mode wall/dual also times real execution and (dual) checks \
             wall/virtual drift (V001/V002)")
    Term.(
      const run $ zoo $ arrival $ rate $ requests $ schedule_term
      $ target_arg $ batch_max $ deadline $ workers $ queue_cap $ cache
      $ cache_cap $ cache_dir $ cache_max_bytes $ shards $ routing
      $ scheduling $ popularity $ slo $ shed_lo $ shed_hi
      $ Cli_common.precision_arg $ Cli_common.tolerance_arg $ require_warm
      $ seed $ mode
      $ max_service_drift $ max_compile_drift $ min_drift_batches $ out
      $ virtual_out $ strict)

(* ---------------- import ---------------- *)

let import_cmd =
  let dump =
    Arg.(
      required & opt (some file) None
      & info [ "d"; "dump" ] ~docv:"FILE"
          ~doc:"XGBoost JSON dump (booster.dump_model(..., dump_format=\"json\")).")
  in
  let out =
    Arg.(
      required & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output model path.")
  in
  let run dump out =
    let forest = Tb_model.Xgb_import.of_dump_file dump in
    Tb_model.Serialize.to_file out forest;
    Printf.printf "imported %d trees (max depth %d, %d features) -> %s\n"
      (Array.length forest.Tb_model.Forest.trees)
      (Tb_model.Forest.max_depth forest)
      forest.Tb_model.Forest.num_features out
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Convert an XGBoost JSON dump into a model file")
    Term.(const run $ dump $ out)

let () =
  let doc = "TREEBEARD: an optimizing compiler for decision tree inference" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "treebeard" ~version:"1.0.0" ~doc)
          [
            train_cmd; compile_cmd; predict_cmd; explore_cmd; import_cmd;
            lint_cmd; validate_cmd; quantcheck_cmd; calibrate_cmd;
            serve_sim_cmd;
          ]))
