(** Mid-level IR: the explicit loop nest over (tree, row) pairs.

    MIR makes the iteration order concrete (paper Fig. 2 D/E) while leaving
    memory layout abstract. Each §IV optimization is a separate pass over
    the IR:

    - {!lower_of_hir} materializes the loop nest in the schedule's order;
    - {!apply_walk_specialization} rewrites each group's
      [WalkDecisionTree] into an unrolled walk (padded uniform-depth
      groups, §IV-B) or a peeled walk (probability-tiled trees whose hot
      leaves are shallow);
    - {!apply_interleaving} unroll-and-jams the innermost loop (§IV-A);
    - {!apply_parallelization} tiles the row loop across threads (§IV-C).

    [lower] composes all four. *)

type walk_kind =
  | Loop_walk  (** while-not-leaf loop *)
  | Peeled_walk of { peel : int }
      (** first [peel] iterations unrolled with leaf checks, then the
          generic loop *)
  | Unrolled_walk of { depth : int }
      (** exactly [depth] tile steps, no termination checks — only valid
          for uniform-depth groups *)

type group_plan = {
  group : Tb_hir.Reorder.group;
  walk : walk_kind;
  interleave : int;
      (** how many (tree,row) walks are jammed together; 1 = no jam *)
}

type t = {
  schedule : Tb_hir.Schedule.t;
  loop_order : Tb_hir.Schedule.loop_order;
  num_threads : int;  (** row-loop parallel tiling; 1 = sequential *)
  group_plans : group_plan array;
}

val lower_of_hir : Tb_hir.Program.t -> t
(** The unoptimized loop nest: generic walks, no jam, single thread, loop
    order from the schedule. *)

val apply_walk_specialization : Tb_hir.Program.t -> t -> t
val apply_interleaving : t -> t
val apply_parallelization : t -> t

val row_partition : num_threads:int -> batch:int -> (int * int) array
(** The §IV-C static row tiling: one half-open [(lo, hi)] row range per
    domain (possibly empty for trailing domains when the batch is small).
    This is the single source of truth for how the parallel backend splits
    the batch — {!Tb_vm.Jit} executes these exact ranges, and
    {!Tb_analysis.Mir_check} statically proves they are pairwise disjoint
    and cover the batch (no write races on the output buffer).
    @raise Invalid_argument when [num_threads < 1] or [batch < 0]. *)

val lower : Tb_hir.Program.t -> t
(** All MIR passes in paper order. *)

exception Walk_contract of string
(** A walk-kind contract violation during {!walk_tree} replay: a peeled or
    unrolled walk met a leaf before its check-free steps ran out, or an
    unrolled walk was not at a leaf after exactly [depth] steps. *)

val walk_tree : walk_kind -> Tb_hir.Tiled_tree.t -> float array -> float
(** Concrete walk-kind-faithful replay of one tree: executes the tiled
    walk under the MIR-level semantics of [walk_kind] — a peeled walk runs
    its first [peel] steps without leaf checks, an unrolled walk takes
    exactly [depth] steps with no termination checks. Used by
    {!Tb_analysis.Validate} to confirm divergence witnesses concretely.
    @raise Walk_contract when the walk kind's precondition is violated. *)

val pp : Format.formatter -> t -> unit
(** Render the loop nest in the paper's pseudo-IR style (Fig. 2). *)

val to_string : t -> string

val total_walk_steps_bound : Tb_hir.Program.t -> t -> int
(** Static upper bound on tile steps per input row (sum over trees of their
    walk depth) — used by cost-model sanity checks. *)
