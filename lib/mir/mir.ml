module Schedule = Tb_hir.Schedule
module Program = Tb_hir.Program
module Reorder = Tb_hir.Reorder
module Tiled_tree = Tb_hir.Tiled_tree

type walk_kind =
  | Loop_walk
  | Peeled_walk of { peel : int }
  | Unrolled_walk of { depth : int }

type group_plan = {
  group : Reorder.group;
  walk : walk_kind;
  interleave : int;
}

type t = {
  schedule : Schedule.t;
  loop_order : Schedule.loop_order;
  num_threads : int;
  group_plans : group_plan array;
}

let lower_of_hir (p : Program.t) =
  {
    schedule = p.Program.schedule;
    loop_order = p.Program.schedule.Schedule.loop_order;
    num_threads = 1;
    group_plans =
      Array.of_list
        (List.map
           (fun group -> { group; walk = Loop_walk; interleave = 1 })
           p.Program.groups);
  }

let apply_walk_specialization (p : Program.t) t =
  let schedule = t.schedule in
  let specialize plan =
    let g = plan.group in
    if schedule.Schedule.pad_and_unroll && g.Reorder.uniform then
      { plan with walk = Unrolled_walk { depth = g.Reorder.walk_depth } }
    else if schedule.Schedule.peel then begin
      (* Peel to the depth of the shallowest leaf across the group: those
         iterations need no leaf checks (§IV-B). *)
      let peel =
        Array.fold_left
          (fun acc pos ->
            min acc (Tiled_tree.min_leaf_depth p.Program.trees.(pos).Program.tiled))
          max_int g.Reorder.positions
      in
      let peel = if peel = max_int || peel < 1 then 0 else peel in
      if peel > 0 then { plan with walk = Peeled_walk { peel } } else plan
    end
    else plan
  in
  { t with group_plans = Array.map specialize t.group_plans }

let apply_interleaving t =
  let factor = t.schedule.Schedule.interleave in
  if factor <= 1 then t
  else begin
    let jam plan =
      match t.loop_order with
      | Schedule.One_tree_at_a_time ->
        (* Innermost loop is over rows: jam [factor] rows of one tree.
           Always legal; the backend handles the batch remainder. *)
        { plan with interleave = factor }
      | Schedule.One_row_at_a_time ->
        (* Innermost loop is over the trees of a group: jam up to
           [factor] trees of the same row. *)
        { plan with interleave = min factor (Array.length plan.group.Reorder.positions) }
    in
    { t with group_plans = Array.map jam t.group_plans }
  end

let apply_parallelization t =
  { t with num_threads = t.schedule.Schedule.num_threads }

let row_partition ~num_threads ~batch =
  if num_threads < 1 then invalid_arg "Mir.row_partition: num_threads < 1";
  if batch < 0 then invalid_arg "Mir.row_partition: negative batch";
  let block = (batch + num_threads - 1) / num_threads in
  Array.init num_threads (fun t ->
      let lo = min batch (t * block) in
      let hi = min batch (lo + block) in
      (lo, hi))

let lower p =
  lower_of_hir p
  |> apply_walk_specialization p
  |> apply_interleaving
  |> apply_parallelization

exception Walk_contract of string

let walk_tree walk (tree : Tiled_tree.t) row =
  let leaf_value i =
    match tree.Tiled_tree.nodes.(i) with
    | Tiled_tree.Leaf v -> v
    | Tiled_tree.Tile _ -> assert false
  in
  let is_leaf i =
    match tree.Tiled_tree.nodes.(i) with
    | Tiled_tree.Leaf _ -> true
    | Tiled_tree.Tile _ -> false
  in
  let rec loop i = if is_leaf i then leaf_value i else loop (Tiled_tree.step tree i row) in
  match walk with
  | Loop_walk -> loop 0
  | Peeled_walk { peel } ->
    (* The peeled iterations carry no leaf checks: stepping on a leaf is a
       contract violation, not a prediction. *)
    let i = ref 0 in
    for step = 1 to peel do
      if is_leaf !i then
        raise
          (Walk_contract
             (Printf.sprintf "peeled walk reached a leaf at depth %d < peel %d"
                (step - 1) peel));
      i := Tiled_tree.step tree !i row
    done;
    loop !i
  | Unrolled_walk { depth } ->
    let i = ref 0 in
    for step = 1 to depth do
      if is_leaf !i then
        raise
          (Walk_contract
             (Printf.sprintf
                "unrolled walk reached a leaf at depth %d < unroll depth %d"
                (step - 1) depth));
      i := Tiled_tree.step tree !i row
    done;
    if not (is_leaf !i) then
      raise
        (Walk_contract
           (Printf.sprintf "unrolled walk not at a leaf after %d tile steps"
              depth));
    leaf_value !i

let pp_walk fmt (plan : group_plan) =
  let n = Array.length plan.group.Reorder.positions in
  let describe =
    match plan.walk with
    | Loop_walk -> "WalkDecisionTree"
    | Peeled_walk { peel } -> Printf.sprintf "WalkDecisionTree_Peeled<%d>" peel
    | Unrolled_walk { depth } -> Printf.sprintf "WalkDecisionTree_Unrolled<%d>" depth
  in
  if plan.interleave > 1 then
    Format.fprintf fmt "InterleavedWalk<%d>(%s, trees[g][0..%d], ...)"
      plan.interleave describe n
  else Format.fprintf fmt "%s(trees[g][0..%d], ...)" describe n

let pp fmt t =
  let parallel = t.num_threads > 1 in
  Format.fprintf fmt "@[<v>predictForest(rows[0..batch], predictions):@,";
  let indent = ref 2 in
  let line fmt' = Format.fprintf fmt "%s" (String.make !indent ' ') ; Format.fprintf fmt fmt' in
  if parallel then begin
    line "parallel.for i0 = 0 to batch step batch/%d {@," t.num_threads;
    indent := !indent + 2
  end;
  (match t.loop_order with
  | Schedule.One_row_at_a_time ->
    line "for i = %s {@," (if parallel then "i0 to i0 + batch/k" else "0 to batch");
    indent := !indent + 2;
    line "prediction = base_score@,";
    Array.iteri
      (fun gi plan ->
        line "// group %d: %d trees, %s@," gi
          (Array.length plan.group.Reorder.positions)
          (if plan.group.Reorder.uniform then
             Printf.sprintf "uniform depth %d" plan.group.Reorder.walk_depth
           else "irregular");
        line "for t in group(%d) { prediction += %s }@," gi
          (Format.asprintf "%a" pp_walk plan))
      t.group_plans;
    line "predictions[i] = prediction@,";
    indent := !indent - 2;
    line "}@,"
  | Schedule.One_tree_at_a_time ->
    Array.iteri
      (fun gi plan ->
        line "// group %d: %d trees, %s@," gi
          (Array.length plan.group.Reorder.positions)
          (if plan.group.Reorder.uniform then
             Printf.sprintf "uniform depth %d" plan.group.Reorder.walk_depth
           else "irregular");
        line "for t in group(%d) {@," gi;
        indent := !indent + 2;
        line "for i = %s step %d {@,"
          (if parallel then "i0 to i0 + batch/k" else "0 to batch")
          plan.interleave;
        indent := !indent + 2;
        line "predictions[i] += %s@," (Format.asprintf "%a" pp_walk plan);
        indent := !indent - 2;
        line "}@,";
        indent := !indent - 2;
        line "}@,")
      t.group_plans);
  if parallel then begin
    indent := !indent - 2;
    line "}@,"
  end;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t

let total_walk_steps_bound (p : Program.t) t =
  Array.fold_left
    (fun acc plan ->
      Array.fold_left
        (fun acc pos ->
          let tiled = p.Program.trees.(pos).Program.tiled in
          let d =
            match plan.walk with
            | Unrolled_walk { depth } -> depth
            | Loop_walk | Peeled_walk _ -> Tiled_tree.depth tiled
          in
          acc + d)
        acc plan.group.Reorder.positions)
    0 t.group_plans
