(** Treelite-style baseline: the model fully expanded into if-else code.

    Treelite compiles every tree into nested if-else statements with the
    thresholds embedded as immediates. We reproduce that mechanism by
    compiling each tree into a nest of OCaml closures (the closure tree
    {e is} the specialized code: constants captured, no model buffers at
    runtime), and reproduce its microarchitectural failure mode in the
    profile: code size grows with the model (I-cache misses / front-end
    bound, §VI-E) while data traffic shrinks to just the input row. *)

type t

val compile : Tb_model.Forest.t -> t

val predict_batch : t -> float array array -> float array array
(** Equals {!Tb_model.Forest.predict_batch_raw} (tested). *)

val code_bytes : t -> int
(** Estimated machine-code size of the expanded model (~20 bytes per
    compare-and-branch plus leaf returns) — the quantity that makes this
    strategy front-end bound on large ensembles. *)

val profile :
  target:Tb_cpu.Config.t -> t -> float array array -> Tb_cpu.Cost_model.workload
