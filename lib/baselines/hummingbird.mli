(** Hummingbird-style baseline: tree inference as dense tensor algebra.

    Implements the GEMM strategy of Nakandala et al. (OSDI'20): for each
    tree with N internal nodes and L leaves,

    + [S = (X · A < B)] — evaluate {e all} node predicates: [A] is the
      F×N one-hot feature-selection matrix, [B] the threshold vector;
    + [E = (S · C == D)] — identify the leaf whose root-to-leaf path
      conditions all hold: [C] is the N×L path matrix (+1 when the leaf is
      in a node's left subtree, −1 when in its right subtree, 0 otherwise)
      and [D_l] counts the left-turns on the path to leaf [l];
    + [out = E · V] — select the leaf value.

    The arithmetic is dense: O(F·N + N·L) multiply-adds per (row, tree)
    regardless of the path actually taken — the reason the approach loses
    to tree walking on CPUs for non-trivial ensembles (§VI-C), and wins
    only where dense SIMD throughput beats branchy walks (small trees,
    huge batches). The analytic perf model charges exactly those FLOPs at
    the target's SIMD throughput and caps multicore scaling at the ~3
    effective cores the paper measured for Hummingbird. *)

type t

val compile : Tb_model.Forest.t -> t

val predict_batch : t -> float array array -> float array array
(** Equals {!Tb_model.Forest.predict_batch_raw} up to float tolerance
    (tested). *)

val macs_per_row : t -> float
(** Dense multiply-accumulate count per input row (all trees). *)

val cycles_per_row : target:Tb_cpu.Config.t -> threads:int -> t -> float
(** Analytic cost: MACs at SIMD throughput with GEMM efficiency, capped
    parallel scaling. *)

val effective_core_cap : int
(** Observed Hummingbird core utilization on the paper's testbed (3). *)
