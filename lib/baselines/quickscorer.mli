(** QuickScorer (Lucchese et al., SIGIR'15) — the bitvector traversal the
    paper names as an integrable alternative strategy (§VII).

    Instead of walking root-to-leaf, QuickScorer visits only the {e false}
    nodes: every internal node carries a bitvector zeroing the leaves that
    become unreachable when its predicate fails (the leaves of its left
    subtree). Nodes are bucketed per feature and sorted by threshold, so
    for a row the false nodes of feature [f] are exactly the prefix with
    [threshold <= row.(f)]. ANDing their masks into a per-tree bitvector
    and taking the leftmost surviving bit yields the exit leaf.

    Fast for small trees (the masks fit one machine word and there are few
    false nodes); scales poorly to large ensembles — the observation the
    paper cites from Buschjäger et al. [39], reproduced by the [ext_qs]
    benchmark experiment. Masks here are arbitrary-width (multi-word), so
    any tree is supported. *)

type t

val compile : Tb_model.Forest.t -> t

val predict_batch : t -> float array array -> float array array
(** Equals {!Tb_model.Forest.predict_batch_raw} (tested). *)

val false_nodes_per_row : t -> float array array -> float
(** Mean number of false-node mask applications per row — QuickScorer's
    dynamic work metric. *)

val cycles_per_row : target:Tb_cpu.Config.t -> t -> float array array -> float
(** Analytic cost: mask AND work for the measured false-node count plus
    per-tree bitvector scan/reset, at the target's issue width. *)

val memory_bytes : t -> int
