module Forest = Tb_model.Forest
module Tree = Tb_model.Tree
module Config = Tb_cpu.Config

(* Arbitrary-width bitvectors over a tree's leaves, leaf 0 = bit 0 of word
   0. "Leftmost leaf" = lowest set bit. *)
module Bits = struct
  let words n = (n + 62) / 63

  let make_ones n =
    let w = words n in
    Array.init w (fun i ->
        let remaining = n - (i * 63) in
        if remaining >= 63 then max_int (* 63 ones *)
        else (1 lsl remaining) - 1)

  let land_into dst src =
    for i = 0 to Array.length dst - 1 do
      dst.(i) <- dst.(i) land src.(i)
    done

  let lowest_set v =
    let rec word i =
      if i >= Array.length v then invalid_arg "Quickscorer: empty bitvector"
      else if v.(i) = 0 then word (i + 1)
      else begin
        let w = v.(i) in
        let rec bit b = if (w lsr b) land 1 = 1 then b else bit (b + 1) in
        (i * 63) + bit 0
      end
    in
    word 0
end

(* One false-node entry: applied when row.(feature) >= threshold. *)
type node_entry = {
  threshold : float;
  tree : int;
  mask : int array;  (** zeros on the left-subtree leaves *)
}

type t = {
  (* per feature, entries sorted by ascending threshold *)
  by_feature : node_entry array array;
  leaf_values : float array array;  (** per tree *)
  num_leaves : int array;
  tree_class : int array;
  num_outputs : int;
  base_score : float;
}

let compile (forest : Forest.t) =
  let num_trees = Array.length forest.Forest.trees in
  let per_feature = Array.make forest.Forest.num_features [] in
  let leaf_values = Array.make num_trees [||] in
  let num_leaves = Array.make num_trees 0 in
  Array.iteri
    (fun ti tree ->
      let nl = Tree.num_leaves tree in
      num_leaves.(ti) <- nl;
      leaf_values.(ti) <- Tree.leaves tree;
      (* Assign leaf indices left-to-right; each internal node's mask zeros
         its left subtree's leaf range. *)
      let rec build t next_leaf =
        match t with
        | Tree.Leaf _ -> next_leaf + 1
        | Tree.Node { feature; threshold; left; right } ->
          let left_start = next_leaf in
          let left_end = build left next_leaf in
          (* mask: ones everywhere except [left_start, left_end) *)
          let mask = Bits.make_ones nl in
          for l = left_start to left_end - 1 do
            mask.(l / 63) <- mask.(l / 63) land lnot (1 lsl (l mod 63))
          done;
          per_feature.(feature) <-
            { threshold; tree = ti; mask } :: per_feature.(feature);
          build right left_end
      in
      let (_ : int) = build tree 0 in
      ())
    forest.Forest.trees;
  {
    by_feature =
      Array.map
        (fun entries ->
          let a = Array.of_list entries in
          Array.sort (fun a b -> compare a.threshold b.threshold) a;
          a)
        per_feature;
    leaf_values;
    num_leaves;
    tree_class = Array.mapi (fun i _ -> Forest.class_of_tree forest i) forest.Forest.trees;
    num_outputs = Forest.num_outputs forest;
    base_score = forest.Forest.base_score;
  }

let score_row ?(count = ref 0) t row out =
  let vectors = Array.mapi (fun ti _ -> Bits.make_ones t.num_leaves.(ti)) t.leaf_values in
  (* Apply masks of all false nodes: predicate x < thr fails iff
     thr <= x, i.e. the sorted prefix per feature. *)
  Array.iteri
    (fun f entries ->
      let x = row.(f) in
      let i = ref 0 in
      while
        !i < Array.length entries
        && entries.(!i).threshold <= x
      do
        let e = entries.(!i) in
        Bits.land_into vectors.(e.tree) e.mask;
        incr count;
        incr i
      done)
    t.by_feature;
  Array.iteri
    (fun ti v ->
      let leaf = Bits.lowest_set v in
      out.(t.tree_class.(ti)) <- out.(t.tree_class.(ti)) +. t.leaf_values.(ti).(leaf))
    vectors

let predict_batch t rows =
  let n = Array.length rows in
  let out = Array.init n (fun _ -> Array.make t.num_outputs t.base_score) in
  for i = 0 to n - 1 do
    score_row t rows.(i) out.(i)
  done;
  out

let false_nodes_per_row t rows =
  let count = ref 0 in
  let out = Array.make t.num_outputs 0.0 in
  Array.iter
    (fun row ->
      Array.fill out 0 t.num_outputs 0.0;
      score_row ~count t row out)
    rows;
  float_of_int !count /. float_of_int (max 1 (Array.length rows))

let cycles_per_row ~target t rows =
  let false_nodes = false_nodes_per_row t rows in
  let trees = float_of_int (Array.length t.leaf_values) in
  let mean_words =
    Tb_util.Stats.mean
      (Array.map (fun nl -> float_of_int (Bits.words nl)) (Array.map Fun.id t.num_leaves))
  in
  (* Per false node: threshold compare + mask AND over the words (~2 ops
     per word); per tree: bitvector reset + find-first-set + leaf lookup. *)
  let ops =
    (false_nodes *. (2.0 +. (2.0 *. mean_words))) +. (trees *. (3.0 +. mean_words))
  in
  ops /. target.Config.issue_width

let memory_bytes t =
  let entry_bytes e = 8 + 4 + (8 * Array.length e.mask) in
  let masks =
    Array.fold_left
      (fun acc entries -> Array.fold_left (fun a e -> a + entry_bytes e) acc entries)
      0 t.by_feature
  in
  masks + (4 * Array.fold_left ( + ) 0 t.num_leaves)
