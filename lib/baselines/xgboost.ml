module Forest = Tb_model.Forest
module Tree = Tb_model.Tree
module Cache = Tb_cpu.Cache
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model

type version = V09 | V15

(* Per-tree node arrays, preorder. Leaves: feature = -1, threshold holds
   the value. *)
type packed_tree = {
  feature : int array;
  threshold : float array;
  left : int array;
  right : int array;
}

type t = {
  trees : packed_tree array;
  tree_class : int array;
  num_outputs : int;
  base_score : float;
}

let node_bytes = 16

let pack_tree tree =
  let n = Tree.num_nodes tree + Tree.num_leaves tree in
  let feature = Array.make n (-1) in
  let threshold = Array.make n 0.0 in
  let left = Array.make n (-1) in
  let right = Array.make n (-1) in
  let next = ref 0 in
  let rec go t =
    let id = !next in
    incr next;
    (match t with
    | Tree.Leaf v -> threshold.(id) <- v
    | Tree.Node { feature = f; threshold = thr; left = l; right = r } ->
      feature.(id) <- f;
      threshold.(id) <- thr;
      left.(id) <- go l;
      right.(id) <- go r);
    id
  in
  let (_ : int) = go tree in
  { feature; threshold; left; right }

let compile (forest : Forest.t) =
  {
    trees = Array.map pack_tree forest.Forest.trees;
    tree_class = Array.mapi (fun i _ -> Forest.class_of_tree forest i) forest.Forest.trees;
    num_outputs = Forest.num_outputs forest;
    base_score = forest.Forest.base_score;
  }

let walk_tree (pt : packed_tree) row =
  let rec go i =
    let f = pt.feature.(i) in
    if f < 0 then pt.threshold.(i)
    else if row.(f) < pt.threshold.(i) then go pt.left.(i)
    else go pt.right.(i)
  in
  go 0

let predict_batch t version rows =
  let n = Array.length rows in
  let out = Array.init n (fun _ -> Array.make t.num_outputs t.base_score) in
  (match version with
  | V09 ->
    (* one row at a time *)
    for i = 0 to n - 1 do
      Array.iteri
        (fun ti pt ->
          let cls = t.tree_class.(ti) in
          out.(i).(cls) <- out.(i).(cls) +. walk_tree pt rows.(i))
        t.trees
    done
  | V15 ->
    (* one tree at a time *)
    Array.iteri
      (fun ti pt ->
        let cls = t.tree_class.(ti) in
        for i = 0 to n - 1 do
          out.(i).(cls) <- out.(i).(cls) +. walk_tree pt rows.(i)
        done)
      t.trees);
  out

let memory_bytes t =
  Array.fold_left (fun acc pt -> acc + (node_bytes * Array.length pt.feature)) 0 t.trees

let profile ~target t version rows =
  let cache =
    Cache.create ~line_bytes:target.Config.l1_line_bytes ~ways:target.Config.l1_ways
      ~size_bytes:target.Config.l1_size_bytes ()
  in
  (* Flat address map: tree node arrays then the row matrix. *)
  let tree_base = Array.make (Array.length t.trees) 0 in
  let total = ref 0 in
  Array.iteri
    (fun ti pt ->
      tree_base.(ti) <- !total;
      total := !total + (node_bytes * Array.length pt.feature))
    t.trees;
  let rows_base = !total + 4096 in
  let num_features = if Array.length rows = 0 then 0 else Array.length rows.(0) in
  let steps = ref 0 in
  let walks = ref 0 in
  let traced_walk ti row_idx =
    let pt = t.trees.(ti) in
    let row = rows.(row_idx) in
    let rec go i =
      Cache.access_range cache (tree_base.(ti) + (i * node_bytes)) node_bytes;
      let f = pt.feature.(i) in
      if f < 0 then ()
      else begin
        ignore
          (Cache.access cache (rows_base + (((row_idx * num_features) + f) * 4)));
        incr steps;
        if row.(f) < pt.threshold.(i) then go pt.left.(i) else go pt.right.(i)
      end
    in
    go 0;
    incr walks
  in
  (match version with
  | V09 ->
    for i = 0 to Array.length rows - 1 do
      Array.iteri (fun ti _ -> traced_walk ti i) t.trees
    done
  | V15 ->
    Array.iteri
      (fun ti _ ->
        for i = 0 to Array.length rows - 1 do
          traced_walk ti i
        done)
      t.trees);
  {
    Cost_model.rows = Array.length rows;
    walks_checked = !walks;
    walks_unrolled = 0;
    steps_checked = !steps;
    steps_unchecked = 0;
    leaf_fetches = !walks;
    critical_steps = !steps;
    l1 = Cache.stats cache;
    (* Generic interpreter loop: small, I-cache resident. *)
    code_bytes = 2048;
    model_bytes = memory_bytes t;
    tile_size = 1;
    layout = Tb_lir.Layout.Array_kind;
  }
