module Forest = Tb_model.Forest
module Tree = Tb_model.Tree
module Cache = Tb_cpu.Cache
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model

type t = {
  compiled : (float array -> float) array;  (* the if-else closure nests *)
  tracers : (float array -> (int -> unit) -> int) array;
      (* same walk, reporting each consulted feature; returns node count *)
  tree_class : int array;
  num_outputs : int;
  base_score : float;
  code_bytes : int;
  total_nodes : int;
}

(* "Code generation": build a closure nest mirroring the emitted if-else
   chain; every threshold/feature/leaf is a captured immediate. *)
let rec compile_tree tree =
  match tree with
  | Tree.Leaf v -> fun _ -> v
  | Tree.Node { feature; threshold; left; right } ->
    let l = compile_tree left and r = compile_tree right in
    fun row -> if row.(feature) < threshold then l row else r row

let rec compile_tracer tree =
  match tree with
  | Tree.Leaf _ -> fun _ _ -> 0
  | Tree.Node { feature; threshold; left; right } ->
    let l = compile_tracer left and r = compile_tracer right in
    fun row visit ->
      visit feature;
      1 + (if row.(feature) < threshold then l row visit else r row visit)

let compile (forest : Forest.t) =
  let nodes = Forest.total_nodes forest in
  let leaves = Forest.total_leaves forest in
  {
    compiled = Array.map compile_tree forest.Forest.trees;
    tracers = Array.map compile_tracer forest.Forest.trees;
    tree_class = Array.mapi (fun i _ -> Forest.class_of_tree forest i) forest.Forest.trees;
    num_outputs = Forest.num_outputs forest;
    base_score = forest.Forest.base_score;
    (* ~20B per compare-and-branch, ~8B per leaf return. *)
    code_bytes = (20 * nodes) + (8 * leaves);
    total_nodes = nodes;
  }

let predict_batch t rows =
  let n = Array.length rows in
  let out = Array.init n (fun _ -> Array.make t.num_outputs t.base_score) in
  for i = 0 to n - 1 do
    Array.iteri
      (fun ti f ->
        let cls = t.tree_class.(ti) in
        out.(i).(cls) <- out.(i).(cls) +. f rows.(i))
      t.compiled
  done;
  out

let code_bytes t = t.code_bytes

let profile ~target t rows =
  let cache =
    Cache.create ~line_bytes:target.Config.l1_line_bytes ~ways:target.Config.l1_ways
      ~size_bytes:target.Config.l1_size_bytes ()
  in
  let num_features = if Array.length rows = 0 then 0 else Array.length rows.(0) in
  let steps = ref 0 in
  let walks = ref 0 in
  (* Data traffic is only the row loads: model constants live in the
     code, so each visited node costs exactly one row-feature access. *)
  Array.iteri
    (fun i row ->
      Array.iter
        (fun tracer ->
          let visited =
            tracer row (fun f ->
                ignore (Cache.access cache (((i * num_features) + f) * 4)))
          in
          steps := !steps + visited;
          incr walks)
        t.tracers)
    rows;
  {
    Cost_model.rows = Array.length rows;
    walks_checked = !walks;
    walks_unrolled = 0;
    steps_checked = !steps;
    steps_unchecked = 0;
    leaf_fetches = !walks;
    critical_steps = !steps;
    l1 = Cache.stats cache;
    (* The model lives in the instruction stream; the data working set is
       just the input rows. *)
    code_bytes = t.code_bytes;
    model_bytes = 0;
    tile_size = 1;
    layout = Tb_lir.Layout.Array_kind;
  }
