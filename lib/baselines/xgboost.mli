(** XGBoost-style library inference baseline.

    Reimplements the inference strategy of the XGBoost library: a generic
    (non-model-specialized) node-array representation walked by a generic
    scalar loop. Two variants reproduce the paper's comparison points:

    - [V09]: one-row-at-a-time outer loop (XGBoost 0.9);
    - [V15]: one-tree-at-a-time loop order — the loop interchange that gave
      XGBoost 1.5 its ~2.8× speedup over 0.9 (§VI-C, [33]).

    The node format mirrors the library's: 16 bytes per node (feature,
    threshold, left/right indices), leaves inline. *)

type version = V09 | V15

type t
(** A forest packed into library-style node arrays. *)

val compile : Tb_model.Forest.t -> t

val predict_batch : t -> version -> float array array -> float array array
(** Equals {!Tb_model.Forest.predict_batch_raw} (tested). *)

val profile :
  target:Tb_cpu.Config.t ->
  t ->
  version ->
  float array array ->
  Tb_cpu.Cost_model.workload
(** Dynamic event counts of the library walk (16-byte nodes through the
    cache simulator, one checked scalar step per node visited). *)

val node_bytes : int
(** Bytes per packed node (16). *)

val memory_bytes : t -> int
