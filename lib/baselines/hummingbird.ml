module Forest = Tb_model.Forest
module Tree = Tb_model.Tree
module Config = Tb_cpu.Config

(* Dense per-tree tensors. *)
type tree_tensors = {
  num_nodes : int;  (* internal *)
  num_leaves : int;
  node_feature : int array;  (* A as indices: node j tests feature.(j) *)
  node_threshold : float array;  (* B *)
  path : float array array;  (* C: path.(node).(leaf) in {-1,0,+1} *)
  left_counts : float array;  (* D: left turns on the path to each leaf *)
  leaf_values : float array;  (* V *)
}

type t = {
  trees : tree_tensors array;
  tree_class : int array;
  num_outputs : int;
  base_score : float;
  num_features : int;
}

let tensorize tree =
  let num_nodes = Tree.num_nodes tree in
  let num_leaves = Tree.num_leaves tree in
  let node_feature = Array.make (max 1 num_nodes) 0 in
  let node_threshold = Array.make (max 1 num_nodes) infinity in
  let path = Array.make_matrix (max 1 num_nodes) num_leaves 0.0 in
  let left_counts = Array.make num_leaves 0.0 in
  let leaf_values = Array.make num_leaves 0.0 in
  let next_node = ref 0 and next_leaf = ref 0 in
  (* conditions: list of (node index, +1 for left / -1 for right) *)
  let rec go t conditions =
    match t with
    | Tree.Leaf v ->
      let l = !next_leaf in
      incr next_leaf;
      leaf_values.(l) <- v;
      List.iter
        (fun (node, sign) ->
          path.(node).(l) <- sign;
          if sign > 0.0 then left_counts.(l) <- left_counts.(l) +. 1.0)
        conditions
    | Tree.Node { feature; threshold; left; right } ->
      let j = !next_node in
      incr next_node;
      node_feature.(j) <- feature;
      node_threshold.(j) <- threshold;
      go left ((j, 1.0) :: conditions);
      go right ((j, -1.0) :: conditions)
  in
  go tree [];
  { num_nodes; num_leaves; node_feature; node_threshold; path; left_counts; leaf_values }

let compile (forest : Forest.t) =
  {
    trees = Array.map tensorize forest.Forest.trees;
    tree_class = Array.mapi (fun i _ -> Forest.class_of_tree forest i) forest.Forest.trees;
    num_outputs = Forest.num_outputs forest;
    base_score = forest.Forest.base_score;
    num_features = forest.Forest.num_features;
  }

let predict_tree (tt : tree_tensors) row =
  if tt.num_nodes = 0 then tt.leaf_values.(0)
  else begin
    (* S = (X·A < B): all predicates, dense. *)
    let s = Array.make tt.num_nodes 0.0 in
    for j = 0 to tt.num_nodes - 1 do
      s.(j) <- (if row.(tt.node_feature.(j)) < tt.node_threshold.(j) then 1.0 else 0.0)
    done;
    (* E = (S·C == D), using C with ±1 entries: for leaf l the dot product
       equals left_counts.(l) exactly when every path condition holds. *)
    let result = ref 0.0 in
    for l = 0 to tt.num_leaves - 1 do
      let dot = ref 0.0 in
      for j = 0 to tt.num_nodes - 1 do
        let c = tt.path.(j).(l) in
        if c > 0.0 then dot := !dot +. s.(j)
        else if c < 0.0 then dot := !dot +. (1.0 -. s.(j)) -. 1.0
      done;
      (* dot = (#satisfied left conditions) - (#unsatisfied-right...) ;
         reaches left_counts.(l) iff all conditions on l's path hold. *)
      if Float.abs (!dot -. tt.left_counts.(l)) < 0.5 then
        result := !result +. tt.leaf_values.(l)
    done;
    !result
  end

let predict_batch t rows =
  let n = Array.length rows in
  let out = Array.init n (fun _ -> Array.make t.num_outputs t.base_score) in
  for i = 0 to n - 1 do
    Array.iteri
      (fun ti tt ->
        let cls = t.tree_class.(ti) in
        out.(i).(cls) <- out.(i).(cls) +. predict_tree tt rows.(i))
      t.trees
  done;
  out

let macs_per_row t =
  Array.fold_left
    (fun acc tt ->
      (* predicate evaluation ~ N MACs (gather+cmp counted as one), path
         matching N×L, leaf selection L. *)
      acc
      +. float_of_int tt.num_nodes
      +. (float_of_int tt.num_nodes *. float_of_int tt.num_leaves)
      +. float_of_int tt.num_leaves)
    0.0 t.trees

let effective_core_cap = 3

(* Hummingbird picks a strategy per tree depth: GEMM for shallow trees,
   (Perfect)TreeTraversal — a tensorized level-synchronous walk doing
   gather work for every tree at every level — for deeper ones. We model
   both and take the cheaper, as HB's heuristic does. *)
let tree_traversal_cycles_per_row t =
  let cycles_per_tree_level = 9.0 in
  Array.fold_left
    (fun acc tt ->
      (* levels walked = padded depth ~ log2(leaves); every tree walks its
         full depth every time (no early exit in the tensor form). *)
      let depth =
        ceil (log (float_of_int (max 2 tt.num_leaves)) /. log 2.0)
      in
      acc +. (depth *. cycles_per_tree_level))
    0.0 t.trees

let cycles_per_row ~target ~threads t =
  (* GEMM path: 8-lane FMA per cycle at ~50% efficiency for these small,
     skinny matrices. *)
  let flops_per_cycle = 8.0 *. 0.5 in
  let gemm = macs_per_row t /. flops_per_cycle in
  let tt = tree_traversal_cycles_per_row t in
  let single = Float.min gemm tt in
  let speedup =
    Tb_cpu.Multicore.speedup target ~max_effective_cores:effective_core_cap ~threads ()
  in
  single /. speedup
