type op =
  | Vload_thresholds
  | Vload_features
  | Gather_row
  | Vcompare
  | Pack_mask
  | Load_shape_id
  | Lut_lookup
  | Load_child_ptr
  | Addr_arith
  | Leaf_check_branch
  | Loop_back_branch
  | Scalar_load_leaf
  | Accumulate
  | Scalar_load_threshold
  | Scalar_load_feature
  | Scalar_compare_branch

type step_kind =
  | Tile_step of { leaf_check : bool }
  | Leaf_fetch

let scalar_step ~leaf_check =
  (* Tile size 1: a plain binary-tree step — loads, a compare-and-branch,
     index arithmetic. *)
  [ Scalar_load_feature; Scalar_load_threshold; Scalar_compare_branch; Addr_arith ]
  @ (if leaf_check then [ Leaf_check_branch ] else [])
  @ [ Loop_back_branch ]

let vector_step ~layout ~leaf_check =
  [ Vload_thresholds; Vload_features; Gather_row; Vcompare; Pack_mask;
    Load_shape_id; Lut_lookup ]
  @ (match layout with Layout.Sparse_kind -> [ Load_child_ptr ] | Layout.Array_kind -> [])
  @ [ Addr_arith ]
  @ (if leaf_check then [ Leaf_check_branch; Loop_back_branch ] else [])

let step_ops ~layout ~tile_size kind =
  match kind with
  | Leaf_fetch ->
    (* Includes the per-walk overhead: root/base setup, the accumulate,
       and the tree-loop bookkeeping. *)
    [ Scalar_load_leaf; Accumulate; Addr_arith; Addr_arith; Loop_back_branch ]
  | Tile_step { leaf_check } ->
    if tile_size = 1 then scalar_step ~leaf_check
    else vector_step ~layout ~leaf_check

let dependency_chain ~layout ~tile_size kind =
  match kind with
  | Leaf_fetch -> [ Scalar_load_leaf; Accumulate ]
  | Tile_step _ ->
    if tile_size = 1 then
      (* Scalar walks branch on the predicate: prediction supplies the next
         node's address speculatively, so the serial chain is only the
         index arithmetic (mispredictions are charged separately). *)
      [ Addr_arith ]
    else
      (* indices -> gather -> compare -> mask -> LUT -> next address; the
         threshold vector load runs in parallel with the index load. *)
      [ Vload_features; Gather_row; Vcompare; Pack_mask; Lut_lookup ]
      @ (match layout with
        | Layout.Sparse_kind -> [ Load_child_ptr ]
        | Layout.Array_kind -> [])
      @ [ Addr_arith ]

let op_name = function
  | Vload_thresholds -> "vload.thresholds"
  | Vload_features -> "vload.featureIndices"
  | Gather_row -> "gather.row"
  | Vcompare -> "vcmp.lt"
  | Pack_mask -> "movemask"
  | Load_shape_id -> "load.tileShape"
  | Lut_lookup -> "load.LUT"
  | Load_child_ptr -> "load.childPtr"
  | Addr_arith -> "lea.childTile"
  | Leaf_check_branch -> "br.isLeaf"
  | Loop_back_branch -> "br.loop"
  | Scalar_load_leaf -> "load.leafValue"
  | Accumulate -> "addf.prediction"
  | Scalar_load_threshold -> "load.threshold"
  | Scalar_load_feature -> "load.featureIndex"
  | Scalar_compare_branch -> "cmp-br.predicate"

let pp_step fmt ops =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt op ->
         Format.fprintf fmt "%s" (op_name op)))
    ops

let pp_walk_listing fmt ~layout ~tile_size () =
  Format.fprintf fmt "@[<v>WalkDecisionTree(tree, row):@,";
  Format.fprintf fmt "  tile = getRoot(tree)@,";
  Format.fprintf fmt "  while (!isLeaf(tree, tile)) {@,";
  List.iter
    (fun op -> Format.fprintf fmt "    %s@," (op_name op))
    (step_ops ~layout ~tile_size (Tile_step { leaf_check = true }));
  Format.fprintf fmt "  }@,";
  List.iter
    (fun op -> Format.fprintf fmt "  %s@," (op_name op))
    (step_ops ~layout ~tile_size Leaf_fetch);
  Format.fprintf fmt "@]"

let estimated_code_bytes ~layout ~tile_size walk =
  (* ~6 bytes per instruction, plus loop scaffolding. *)
  let step ops = 6 * List.length ops in
  let looped = step (step_ops ~layout ~tile_size (Tile_step { leaf_check = true })) in
  let unrolled = step (step_ops ~layout ~tile_size (Tile_step { leaf_check = false })) in
  let leaf = step (step_ops ~layout ~tile_size Leaf_fetch) in
  match walk with
  | Tb_mir.Mir.Loop_walk -> looped + leaf + 16
  | Tb_mir.Mir.Peeled_walk { peel } -> (unrolled * peel) + looped + leaf + 16
  | Tb_mir.Mir.Unrolled_walk { depth } -> (unrolled * depth) + leaf + 8
