(** The register-level walk IR — the layer Treebeard hands to LLVM.

    A {!walk_program} is straight-line/structured code over typed virtual
    registers (int, float, int-vector, float-vector) and symbolic model
    buffers. {!Reg_codegen} emits one program per (layout, walk kind) pair;
    {!Tb_vm.Interp} executes it with lane-exact vector semantics, giving a
    backend that is independent of the closure JIT and is tested to agree
    with it bit-for-bit.

    Conventions:
    - the walk's cursor state lives in int register 0 ([state_reg]); its
      meaning is layout-specific (array: slot local to the tree slab;
      sparse: absolute slot, negative values encode [-(leaf index) - 1]);
    - int register 1 ([base_reg]) holds the tree's root/base, loaded from
      the [Tree_roots] buffer by the prologue;
    - the final prediction is left in float register 0 ([result_reg]). *)

type buffer =
  | Thresholds  (** slot-major float lanes *)
  | Feature_ids  (** slot-major int lanes *)
  | Shape_ids  (** per slot *)
  | Child_ptrs  (** per slot (sparse layout) *)
  | Leaf_values
  | Lut  (** flattened: [shape_id * 2^tile_size + bits] *)
  | Tree_roots  (** per tree: slab base (array) or root slot (sparse) *)
  | Row  (** the input row *)

type ireg = int
type freg = int
type vreg = int  (** vector registers; int and float vectors share an id space *)

type iexpr =
  | Iconst of int
  | Imov of ireg
  | Iadd of ireg * ireg
  | Imul_const of ireg * int
  | Iadd_const of ireg * int
  | Isub of ireg * ireg
  | Iload of buffer * ireg  (** int load at a register index *)
  | Movemask of vreg
      (** pack an int-vector of {0,1} lane predicates into an integer, lane
          0 as MSB *)

type fexpr =
  | Fload of buffer * ireg

type vexpr =
  | Vload_f of buffer * ireg  (** [tile_size] consecutive floats *)
  | Vload_i of buffer * ireg
  | Gather of buffer * vreg  (** per-lane loads at an index vector *)
  | Vcmp_lt of vreg * vreg  (** float vectors -> {0,1} int vector *)

type cond =
  | Ige of ireg * int  (** reg >= immediate *)
  | Ieq_load of buffer * ireg * int  (** buffer.(reg) = immediate *)

type stmt =
  | Iset of ireg * iexpr
  | Fset of freg * fexpr
  | Vset of vreg * vexpr
  | While of cond * stmt list  (** loop while the condition holds *)
  | If of cond * stmt list * stmt list
  | Repeat of int * stmt list  (** unrolled: the body [n] times *)

type walk_program = {
  tile_size : int;
  layout : Layout.kind;
  body : stmt list;
  num_iregs : int;
  num_fregs : int;
  num_vregs : int;
  lanes : int;
      (** Unroll-and-jam lane count. 1 for plain walks. When [> 1] each
          register file is [lanes] equal windows; lane [l]'s copy of
          single-lane register [r] is [l * (num_iregs / lanes) + r] (and
          likewise for float/vector files). The driver initializes
          [state_reg]/[base_reg] at every lane's window offset. *)
}

val state_reg : ireg
val base_reg : ireg
val result_reg : freg

val lane_width : walk_program -> int
(** Int registers per jam lane ([num_iregs / lanes]). *)

val lane_fwidth : walk_program -> int
val lane_vwidth : walk_program -> int

val check : walk_program -> Tb_diag.Diagnostic.t list
(** Register-discipline verification with structured diagnostics: register
    indices within the declared files ([L001]), every register assigned
    before use along all paths ([L002]), vector-typed operands used
    consistently — float vs int lanes ([L003]) — and non-negative repeat
    counts ([L004]). Findings are collected (not first-error-only);
    an empty list means the program is well-formed.

    {!Tb_analysis.Lir_check} extends this discipline check into a full
    forward interval dataflow that also proves buffer-bounds facts against
    a {!Layout}. *)

val buffer_name : buffer -> string
(** Display name used in diagnostics and the assembly rendering, e.g.
    ["shapeIds"]. *)

val pp : Format.formatter -> walk_program -> unit
(** Assembly-style rendering, e.g. [i2 <- load.shapeIds [i0]]. *)

val to_string : walk_program -> string

val count_ops : walk_program -> static:bool -> int
(** Number of instructions: [static] counts the program text (Repeat bodies
    once); otherwise Repeat bodies are multiplied out. *)
