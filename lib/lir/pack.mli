(** Packed predictor artifacts: the serializable half of a compile.

    A {!t} is everything {!Tb_vm.Jit} needs to build a predictor — the
    {!Layout} buffers, the MIR walk plan (loop order, per-group walk kind /
    interleave / tree positions), per-tree aggregation classes and the
    verified {!Reg_ir} walk programs — plus compile-time metadata (model
    name, canonical schedule, CPU target, the deterministic modeled
    service time). It deliberately does {e not} carry the HIR or MIR: a
    pack is the {e result} of lowering, so rehydrating one is a bounded
    [Bytes] decode followed by closure construction, never a recompile.

    The wire format (see DESIGN.md §11) is a 16-byte header — magic
    ["TBPK"], format version, payload length, CRC32 — followed by
    length-prefixed blocks in traversal order (metadata, walk plan, tree
    tables, layout buffers in the order a walk touches them, register
    programs). Floats are stored as their IEEE-754 bit patterns, so a
    decoded artifact's predictions are bitwise-equal to the compiler's.

    Decoding is total: every failure — wrong magic ([A001]), unsupported
    version ([A002]), checksum mismatch ([A003]), truncation or a
    malformed/inconsistent body ([A004]) — is returned as a structured
    {!error}, never an exception, so callers (the {!Tb_serve.Registry}
    disk tier) can fall back to a fresh compile. *)

type group = {
  positions : int array;
      (** layout tree indices this group walks, in execution order *)
  walk : Tb_mir.Mir.walk_kind;
  interleave : int;  (** jam factor; 1 = no interleaving *)
}

type meta = {
  model : string;
  target : string;  (** CPU target name the artifact was compiled for *)
  schedule : Tb_hir.Schedule.t;
      (** the exact (normalized) schedule that was lowered *)
  us_per_row : float;
      (** deterministic modeled service time per row, {e uncalibrated}
          ({!Tb_core.Perf.simulate} at pack time); 0 when unknown *)
}

type quant = {
  resident_k : int;
      (** autotuned resident-prefix depth the artifact was compiled for
          (0 = pure memory-phase walks) *)
  dev_bound : float array;
      (** per output class: the certificate's proved N003 deviation bound
          between quantized and float predictions *)
  tolerance : float;  (** the tolerance the certificate was checked against *)
}
(** Integer-fast-path metadata. Present exactly when [layout.quant] is
    — the pack carries the serving-side record of {e which} precision
    tier it implements and what accuracy was proved for it. The
    fixed-point spec itself ({!Layout.qspec}) is serialized alongside
    and rehydrated into the layout. *)

type t = {
  meta : meta;
  loop_order : Tb_hir.Schedule.loop_order;
  num_threads : int;
  num_outputs : int;
  base_score : float;
  tree_class : int array;  (** per layout tree: output class *)
  walk_depth : int array;  (** per layout tree: max tiled walk depth *)
  groups : group array;
  layout : Layout.t;
  programs : Reg_ir.walk_program array;
      (** per group: the verified single-lane register-IR walk body *)
  quant : quant option;
      (** [Some _] iff the layout is quantized (enforced by
          {!of_lower}/[validate]) *)
}

val of_lower :
  ?model:string ->
  ?target:string ->
  ?us_per_row:float ->
  ?quant:quant ->
  Lower.t ->
  t
(** Artifact construction: project a lowered program onto its packable
    form (drop the HIR/MIR, keep the execution plan) and generate the
    per-group register programs ({!Reg_codegen.all_variants}).
    [?quant] must be given exactly when the lowered layout is quantized.
    @raise Invalid_argument when the quant metadata and the layout
    disagree about the precision tier. *)

val format_version : int
(** Current wire-format version. Bump on any incompatible layout change —
    the golden-artifact byte-stability test fails loudly otherwise. *)

val magic : string
(** The 4-byte artifact magic, ["TBPK"]. *)

type error = { code : string; message : string }
(** Structured decode failure; [code] is one of ["A001"].."A004"] (see
    {!Tb_diag.Diagnostic}'s registry). *)

val error_to_diagnostic : error -> Tb_diag.Diagnostic.t

val encode : t -> bytes
(** Serialize. Deterministic: equal packs encode to equal bytes. *)

val decode : bytes -> (t, error) result
(** Total inverse of {!encode}: validates magic, version, length and
    checksum before touching the payload, then structurally validates the
    decoded pack (layout buffer lengths against slot count and kind,
    group/program consistency, {!Reg_ir.check} register discipline on
    every walk program). Never raises. *)

val equal : t -> t -> bool
(** Structural equality, with floats compared bitwise (NaN-safe) — the
    round-trip property [decode (encode p) = Ok p] is tested with this. *)

val crc32 : bytes -> pos:int -> len:int -> int32
(** The checksum used by the format (IEEE 802.3 polynomial, reflected) —
    exposed for tests that craft adversarial artifacts. *)

val size_bytes : t -> int
(** Encoded size in bytes (header + all blocks); encodes internally. *)
