(** LIR operation templates: the per-step instruction sequences of the
    vectorized tile walk (paper §V-A listing).

    A tile step always performs: vector-load thresholds, vector-load
    feature indices, gather the row's features, vector-compare, pack the
    mask into an integer, load the tile's shape id, index the LUT, and
    compute the child address (plus a child-pointer load in the sparse
    layout and a leaf check in non-unrolled walks). The cost model assigns
    per-target latencies/throughputs to each op; interleaving and unrolling
    change how many independent copies of the chain are in flight, not the
    ops themselves. *)

type op =
  | Vload_thresholds  (** vector load of [tile_size] thresholds *)
  | Vload_features  (** vector load of [tile_size] feature indices *)
  | Gather_row  (** gather features from the input row *)
  | Vcompare  (** vector [<] *)
  | Pack_mask  (** movemask: compare vector -> integer *)
  | Load_shape_id
  | Lut_lookup
  | Load_child_ptr  (** sparse layout only *)
  | Addr_arith  (** next-slot index computation *)
  | Leaf_check_branch  (** conditional branch testing walk termination *)
  | Loop_back_branch  (** loop back edge of the generic walk *)
  | Scalar_load_leaf  (** terminal leaf value load *)
  | Accumulate  (** add tree prediction into the output *)
  | Scalar_load_threshold  (** scalar walk (tile size 1, no SIMD) *)
  | Scalar_load_feature
  | Scalar_compare_branch  (** scalar predicate + branch on it *)

type step_kind =
  | Tile_step of { leaf_check : bool }
      (** one tile evaluation; [leaf_check] is false inside unrolled or
          peeled regions *)
  | Leaf_fetch  (** terminal value load + accumulate *)

val step_ops : layout:Layout.kind -> tile_size:int -> step_kind -> op list
(** The op sequence of one step. Tile size 1 uses the scalar template
    (vectorization degenerates; the paper's scalar baseline). *)

val dependency_chain : layout:Layout.kind -> tile_size:int -> step_kind -> op list
(** The subsequence of {!step_ops} on the serial critical path from one
    step to the next (what interleaving hides). *)

val op_name : op -> string

val pp_step : Format.formatter -> op list -> unit

val pp_walk_listing :
  Format.formatter -> layout:Layout.kind -> tile_size:int -> unit -> unit
(** Render the full §V-A style WalkDecisionTree listing for documentation
    and [--dump-lir]. *)

val estimated_code_bytes :
  layout:Layout.kind -> tile_size:int -> Tb_mir.Mir.walk_kind -> int
(** Rough machine-code footprint of one walk body — drives the I-cache /
    front-end model (unrolled bodies are bigger; Treelite-style if-else
    expansion is modeled separately in the baselines). *)
