(** Code generation into the register-level walk IR.

    Emits the {!Reg_ir.walk_program} for a layout and walk specialization —
    the textual/interpretable equivalent of what the closure JIT builds.
    Programs are verified ({!Reg_ir.check}) before being returned. *)

val walk_program :
  Layout.t -> Tb_mir.Mir.walk_kind -> Reg_ir.walk_program
(** Generate (and verify) the walk body for one (tree, row) pair under the
    layout's addressing scheme.
    @raise Invalid_argument if the generated program fails verification
    (a compiler bug, caught eagerly). *)

val all_variants : Layout.t -> Tb_mir.Mir.t -> (int * Reg_ir.walk_program) list
(** One verified program per MIR group plan, keyed by group index.
    Ignores interleaving — each program is the single-lane walk body. *)

val resident_program : Layout.t -> k:int -> tree:int -> Reg_ir.walk_program
(** Resident-prefix walk for one tree of a {e quantized} layout: the
    first [k] tile levels are unrolled to straight-line code with
    thresholds, shapes and child slots baked in as immediates (the
    register phase reads only the quantized row, via integer
    [Iload (Row, _)], and the LUT); execution then falls through to the
    ordinary checked memory-phase walk from the cursor left in the state
    register. [k = 0] degenerates to the generic walk. Bitwise-equal to
    the memory-only walk by construction — the differential suite pins
    it. @raise Invalid_argument on a float layout, [k < 0], or if the
    generated program fails verification. *)

val jam_lanes : Reg_ir.walk_program -> lanes:int -> Reg_ir.walk_program
(** Unroll-and-jam: replicate a single-lane program across [lanes] disjoint
    register windows (lane [l]'s register [r] becomes
    [l * num_iregs + r], likewise float/vector files), interleaving
    straight-line statements in lockstep while per-lane control flow
    (While/If, whose condition registers are lane-private) is emitted
    sequentially per lane. Identity when [lanes <= 1].
    @raise Invalid_argument on an already-jammed input or if the jammed
    program fails {!Reg_ir.check}. *)

val jammed_variants : Layout.t -> Tb_mir.Mir.t -> (int * Reg_ir.walk_program) list
(** Like {!all_variants} but each group's program is jammed to its plan's
    interleave factor — the register-file shape the interleaved backend
    executes and the shape {!Tb_analysis.Lir_check} analyses per lane. *)

(** Register-convention constants (exposed for the alias analysis seed and
    the interpreter's lane setup). *)

val num_iregs : int
val num_fregs : int
val num_vregs : int
