(** Code generation into the register-level walk IR.

    Emits the {!Reg_ir.walk_program} for a layout and walk specialization —
    the textual/interpretable equivalent of what the closure JIT builds.
    Programs are verified ({!Reg_ir.check}) before being returned. *)

val walk_program :
  Layout.t -> Tb_mir.Mir.walk_kind -> Reg_ir.walk_program
(** Generate (and verify) the walk body for one (tree, row) pair under the
    layout's addressing scheme.
    @raise Invalid_argument if the generated program fails verification
    (a compiler bug, caught eagerly). *)

val all_variants : Layout.t -> Tb_mir.Mir.t -> (int * Reg_ir.walk_program) list
(** One verified program per MIR group plan, keyed by group index. *)
