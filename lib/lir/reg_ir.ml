type buffer =
  | Thresholds
  | Feature_ids
  | Shape_ids
  | Child_ptrs
  | Leaf_values
  | Lut
  | Tree_roots
  | Row

type ireg = int
type freg = int
type vreg = int

type iexpr =
  | Iconst of int
  | Imov of ireg
  | Iadd of ireg * ireg
  | Imul_const of ireg * int
  | Iadd_const of ireg * int
  | Isub of ireg * ireg
  | Iload of buffer * ireg
  | Movemask of vreg

type fexpr =
  | Fload of buffer * ireg

type vexpr =
  | Vload_f of buffer * ireg
  | Vload_i of buffer * ireg
  | Gather of buffer * vreg
  | Vcmp_lt of vreg * vreg

type cond =
  | Ige of ireg * int
  | Ieq_load of buffer * ireg * int

type stmt =
  | Iset of ireg * iexpr
  | Fset of freg * fexpr
  | Vset of vreg * vexpr
  | While of cond * stmt list
  | If of cond * stmt list * stmt list
  | Repeat of int * stmt list

type walk_program = {
  tile_size : int;
  layout : Layout.kind;
  body : stmt list;
  num_iregs : int;
  num_fregs : int;
  num_vregs : int;
  lanes : int;
}

let state_reg = 0
let base_reg = 1
let result_reg = 0

(* Jammed programs replicate a single-lane register file [lanes] times;
   lane l's copy of register r is [l * (num_Xregs / lanes) + r]. *)
let lane_width p = p.num_iregs / max 1 p.lanes
let lane_fwidth p = p.num_fregs / max 1 p.lanes
let lane_vwidth p = p.num_vregs / max 1 p.lanes

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

(* Vector registers carry a lane type; the verifier tracks it. *)
type vkind = VInt | VFloat

module D = Tb_diag.Diagnostic

(* Structured register-discipline check. Findings are collected (with
   error recovery so one fault does not hide the rest) instead of
   short-circuiting on the first violation. Statements are addressed by
   their static pre-order index ("op N"). *)
let check p =
  let diags = ref [] in
  let opno = ref (-1) in
  let here () = [ Printf.sprintf "op %d" !opno ] in
  let err code fmt = Printf.ksprintf (fun message ->
      diags := D.errorf ~level:D.Lir ~code ~path:(here ()) "%s" message :: !diags) fmt
  in
  let check_ireg ~defined r ~use =
    if r < 0 || r >= p.num_iregs then err "L001" "ireg %d out of range (file size %d)" r p.num_iregs
    else if use && not defined.(r) then err "L002" "ireg %d used before assignment" r
  in
  let rec go stmts (di, dv) =
    match stmts with
    | [] -> (di, dv)
    | stmt :: rest ->
      incr opno;
      let state =
        match stmt with
        | Iset (r, e) ->
          check_ireg ~defined:di r ~use:false;
          (match e with
          | Iconst _ -> ()
          | Imov a | Imul_const (a, _) | Iadd_const (a, _)
          | Iload (_, a) ->
            check_ireg ~defined:di a ~use:true
          | Iadd (a, b) | Isub (a, b) ->
            check_ireg ~defined:di a ~use:true;
            check_ireg ~defined:di b ~use:true
          | Movemask v -> (
            if v < 0 || v >= p.num_vregs then
              err "L001" "vreg %d out of range (file size %d)" v p.num_vregs
            else
              match dv.(v) with
              | Some VInt -> ()
              | Some VFloat -> err "L003" "movemask on float vector v%d" v
              | None -> err "L002" "vreg %d used before assignment" v));
          if r >= 0 && r < p.num_iregs then begin
            let di = Array.copy di in
            di.(r) <- true;
            (di, dv)
          end
          else (di, dv)
        | Fset (r, Fload (_, a)) ->
          if r < 0 || r >= p.num_fregs then
            err "L001" "freg %d out of range (file size %d)" r p.num_fregs;
          check_ireg ~defined:di a ~use:true;
          (di, dv)
        | Vset (r, e) ->
          if r < 0 || r >= p.num_vregs then begin
            err "L001" "vreg %d out of range (file size %d)" r p.num_vregs;
            (di, dv)
          end
          else begin
            let use_v v expected =
              if v < 0 || v >= p.num_vregs then
                err "L001" "vreg %d out of range (file size %d)" v p.num_vregs
              else
                match dv.(v) with
                | Some k when k = expected -> ()
                | Some _ ->
                  err "L003" "vreg %d lane-type mismatch (expected %s lanes)" v
                    (match expected with VInt -> "int" | VFloat -> "float")
                | None -> err "L002" "vreg %d used before assignment" v
            in
            let kind =
              match e with
              | Vload_f (_, a) ->
                check_ireg ~defined:di a ~use:true;
                VFloat
              | Vload_i (_, a) ->
                check_ireg ~defined:di a ~use:true;
                VInt
              | Gather (_, idx) ->
                use_v idx VInt;
                VFloat
              | Vcmp_lt (a, b) ->
                use_v a VFloat;
                use_v b VFloat;
                VInt
            in
            let dv = Array.copy dv in
            dv.(r) <- Some kind;
            (di, dv)
          end
        | While (cond, body) ->
          (match cond with
          | Ige (r, _) | Ieq_load (_, r, _) -> check_ireg ~defined:di r ~use:true);
          (* The body may not execute: definitions inside don't escape. *)
          let (_ : bool array * vkind option array) =
            go body (Array.copy di, Array.copy dv)
          in
          (di, dv)
        | Repeat (n, body) ->
          if n < 0 then begin
            err "L004" "negative repeat count %d" n;
            (di, dv)
          end
          else if n = 0 then (di, dv)
          else go body (di, dv) (* executes at least once when n >= 1 *)
        | If (cond, then_, else_) ->
          (match cond with
          | Ige (r, _) | Ieq_load (_, r, _) -> check_ireg ~defined:di r ~use:true);
          let dit, dvt = go then_ (Array.copy di, Array.copy dv) in
          let die, dve = go else_ (Array.copy di, Array.copy dv) in
          (* Joins take the intersection: defined only if defined on both
             paths, lane type kept only when both paths agree. *)
          let di' = Array.mapi (fun i a -> a && die.(i)) dit in
          let dv' =
            Array.mapi (fun i a -> if a = dve.(i) then a else None) dvt
          in
          (di', dv')
      in
      go rest state
  in
  let di = Array.make (max 1 p.num_iregs) false in
  (* Walk inputs: state and base are set up by the driver — once per jam
     lane, at the lane's window offset. *)
  let w = lane_width p in
  for lane = 0 to max 1 p.lanes - 1 do
    let off = lane * w in
    if p.num_iregs > off + state_reg then di.(off + state_reg) <- true;
    if p.num_iregs > off + base_reg then di.(off + base_reg) <- true
  done;
  let dv = Array.make (max 1 p.num_vregs) None in
  let (_ : bool array * vkind option array) = go p.body (di, dv) in
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let buffer_name = function
  | Thresholds -> "thresholds"
  | Feature_ids -> "featureIds"
  | Shape_ids -> "shapeIds"
  | Child_ptrs -> "childPtrs"
  | Leaf_values -> "leafValues"
  | Lut -> "LUT"
  | Tree_roots -> "treeRoots"
  | Row -> "row"

let iexpr_str = function
  | Iconst c -> string_of_int c
  | Imov a -> Printf.sprintf "i%d" a
  | Iadd (a, b) -> Printf.sprintf "i%d + i%d" a b
  | Imul_const (a, c) -> Printf.sprintf "i%d * %d" a c
  | Iadd_const (a, c) -> Printf.sprintf "i%d + %d" a c
  | Isub (a, b) -> Printf.sprintf "i%d - i%d" a b
  | Iload (b, a) -> Printf.sprintf "load.%s [i%d]" (buffer_name b) a
  | Movemask v -> Printf.sprintf "movemask v%d" v

let fexpr_str = function
  | Fload (b, a) -> Printf.sprintf "load.%s [i%d]" (buffer_name b) a

let vexpr_str = function
  | Vload_f (b, a) -> Printf.sprintf "vload.f32 %s [i%d]" (buffer_name b) a
  | Vload_i (b, a) -> Printf.sprintf "vload.i32 %s [i%d]" (buffer_name b) a
  | Gather (b, v) -> Printf.sprintf "gather.%s [v%d]" (buffer_name b) v
  | Vcmp_lt (a, b) -> Printf.sprintf "vcmp.lt v%d, v%d" a b

let cond_str = function
  | Ige (r, c) -> Printf.sprintf "i%d >= %d" r c
  | Ieq_load (b, r, c) -> Printf.sprintf "%s[i%d] == %d" (buffer_name b) r c

let pp fmt p =
  let rec stmts indent body =
    List.iter
      (fun stmt ->
        let pad = String.make indent ' ' in
        match stmt with
        | Iset (r, e) -> Format.fprintf fmt "%si%d <- %s@," pad r (iexpr_str e)
        | Fset (r, e) -> Format.fprintf fmt "%sf%d <- %s@," pad r (fexpr_str e)
        | Vset (r, e) -> Format.fprintf fmt "%sv%d <- %s@," pad r (vexpr_str e)
        | While (c, body) ->
          Format.fprintf fmt "%swhile (%s) {@," pad (cond_str c);
          stmts (indent + 2) body;
          Format.fprintf fmt "%s}@," pad
        | If (c, t, e) ->
          Format.fprintf fmt "%sif (%s) {@," pad (cond_str c);
          stmts (indent + 2) t;
          if e <> [] then begin
            Format.fprintf fmt "%s} else {@," pad;
            stmts (indent + 2) e
          end;
          Format.fprintf fmt "%s}@," pad
        | Repeat (n, body) ->
          Format.fprintf fmt "%srepeat %d {  // fully unrolled@," pad n;
          stmts (indent + 2) body;
          Format.fprintf fmt "%s}@," pad)
      body
  in
  Format.fprintf fmt "@[<v>walk(%s, tile_size=%d%s):@,"
    (match p.layout with Layout.Array_kind -> "array" | Layout.Sparse_kind -> "sparse")
    p.tile_size
    (if p.lanes > 1 then Printf.sprintf ", lanes=%d" p.lanes else "");
  stmts 2 p.body;
  Format.fprintf fmt "@]"

let to_string p = Format.asprintf "%a" pp p

let count_ops p ~static =
  let rec count body =
    List.fold_left
      (fun acc stmt ->
        acc
        +
        match stmt with
        | Iset _ | Fset _ | Vset _ -> 1
        | While (_, b) -> 1 + count b
        | If (_, t, e) -> 1 + count t + count e
        | Repeat (n, b) -> if static then count b else n * count b)
      0 body
  in
  count p.body
