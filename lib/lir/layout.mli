(** In-memory representations of tiled trees (paper §V-B).

    Both layouts store the model as struct-of-arrays over {e slots}; a slot
    holds one tile's [tile_size] thresholds and feature indices plus its
    shape id. They differ in how children are found:

    - {b Array layout} (§V-B1): per-tree slab of implicitly indexed slots;
      child [c] of local slot [s] lives at [s*(tile_size+1) + c + 1].
      Simple, but allocates every addressable slot of the (n_t+1)-ary tree
      — the memory bloat the paper measures. Leaves occupy full slots.
    - {b Sparse layout} (§V-B2): tiles store an explicit child pointer;
      all children of a tile are contiguous, and leaf values live in a
      separate dense array. Tiles whose children mix tiles and leaves get
      an extra "hop" tile inserted above each leaf child (paper Fig. 6) so
      every tile's children are homogeneous. *)

type kind = Array_kind | Sparse_kind

type qspec = {
  qbits : int;  (** quantized value width: 8 or 16 *)
  q_max : int;  (** [2^(qbits-1) - 1], the saturation cap *)
  feature_exp : int option array;
      (** per feature: [Some e] scales feature [f] and its thresholds by
          [2^e]; [None] for unused features *)
  leaf_exp : int;  (** leaves and the base score are scaled by [2^leaf_exp] *)
}
(** Layout-side mirror of [Tb_analysis.Numeric.plan] (the analysis
    library consumes this one, so the plan's fixed-point parameters are
    replicated here). A quantized layout stores the plan's integers in
    the existing float buffers: every certified value is far below
    [2^53], so float compares/adds on them are bit-identical to integer
    arithmetic and the float walk kernels execute the integer path
    unchanged. *)

type t = {
  kind : kind;
  tile_size : int;
  num_trees : int;
  tree_root : int array;
      (** Array layout: slab base, in slots. Sparse: root tile index, or
          [-1 - leaf_index] when the whole tree is a single leaf. *)
  thresholds : float array;  (** slot-major: [slot * tile_size + lane] *)
  features : int array;  (** same indexing *)
  shape_ids : int array;
      (** per slot: shape id; array layout also uses [leaf_marker] for leaf
          slots and [unused_marker] for never-allocated slots *)
  child_ptr : int array;
      (** sparse only, per slot: [>= 0] = first child tile slot (children
          contiguous); [< 0] = children are leaves starting at
          [leaf_values.(-child_ptr - 1)] *)
  leaf_values : float array;
      (** array layout: per-slot leaf value; sparse: dense leaf store *)
  lut : int array array;  (** LUT rows by shape id *)
  quant : qspec option;
      (** [Some q] when thresholds/leaves hold [q]'s fixed-point integers
          (as integer-valued floats); [None] for the float path *)
}

val leaf_marker : int
(** Shape-id value marking a leaf slot in the array layout (-1). *)

val unused_marker : int
(** Shape-id value marking an unallocated slot in the array layout (-2). *)

val max_array_slots : int
(** Safety cap on a single tree's slab (deep probability-tiled chains make
    the implicit-index slab exponential — the builder raises rather than
    allocating gigabytes; use the sparse layout for such schedules). *)

val build : Tb_hir.Program.t -> t
(** Build the layout selected by the program's schedule.
    @raise Invalid_argument when an array-layout slab would exceed
    {!max_array_slots}. *)

val build_kind : kind -> Tb_hir.Program.t -> t
(** Build a specific layout regardless of the schedule (used by the
    footprint experiment). *)

val comparison_bits : t -> int -> float array -> int
(** Evaluate all lane predicates of the tile in [slot] against a row and
    pack them into the LUT index (lane 0 = MSB). *)

val walk : t -> tree:int -> float array -> float
(** Reference traversal over the layout buffers — the semantics the JIT
    backend must reproduce. *)

val walk_with_trace : t -> tree:int -> float array -> on_slot:(int -> unit) -> float
(** Like {!walk}, reporting each visited slot index (absolute, in slot
    units) — drives the cache simulator. *)

type stride_facts = {
  lane_stride : int;
      (** Slot-major lane stride of [thresholds]/[features]: element
          [slot * lane_stride + lane]. Equals [tile_size]. *)
  tile_advance : (int * int) option;
      (** Sparse only: min/max of [child_ptr.(s) + c] over every slot [s]
          with [child_ptr.(s) >= 0] and every child [c] its LUT row can
          actually select — i.e. the exact range of tile-successor slot
          indices a walk can compute. [None] for array layouts or when no
          slot has tile children. *)
  leaf_advance : (int * int) option;
      (** Sparse only: min/max of [-child_ptr.(s) - 1 + c] over every slot
          with [child_ptr.(s) < 0] — the range of reachable [leaf_values]
          indices. [None] for array layouts or when no slot has leaf
          children. *)
}

val stride_facts : t -> stride_facts
(** Relational facts about the layout's index arithmetic, consumed by
    [Lir_check]'s congruence/interval product to discharge
    [child_ptr + lut_child] bounds obligations. Conservative on corrupt
    layouts (out-of-range shape ids fall back to the full child range). *)

val memory_bytes : t -> int
(** Model bytes under this layout, counting thresholds as float32, feature
    indices and shape ids as int16, child pointers as int32 and leaf values
    as float32 (excludes the LUT, which is shared across models). Quantized
    layouts count thresholds and leaf values at [qspec.qbits] instead. *)

val num_slots : t -> int

val reachable_children : t -> int -> int list
(** Sorted distinct child exits shape [sid]'s LUT row can actually select;
    the full [0..tile_size] range when the shape id is out of range
    (conservative on corrupt layouts). Drives resident-prefix codegen and
    the stride-facts analysis. *)

(** {2 Quantization — the integer fast path's layout half} *)

val quantize_scaled : q_max:int -> float -> int
(** Bit-for-bit replica of [Tb_analysis.Numeric]'s fixed-point rounding:
    round-half-away-from-zero, NaN to 0, saturation at [q_max] /
    [-q_max - 1]. *)

val quantize_threshold : qspec -> feature:int -> float -> float
(** One threshold under the plan, as an integer-valued float. Infinite
    thresholds (dummy-tile, hop-tile and padding-lane always/never-true
    markers) pass through untouched so their comparison bit stays
    constant even against saturated quantized rows. *)

val quantize_leaf : qspec -> float -> float
(** One leaf value (or the base score) scaled by [2^leaf_exp], as an
    integer-valued float. *)

val quantize_row : qspec -> float array -> float array
(** Per-feature fixed-point rounding of an input row (0 for unused
    features), as integer-valued floats — the row form the quantized
    layout's walks compare against. *)

val dequant_scale : qspec -> float
(** [2^(-leaf_exp)]: multiply an integer-valued accumulator by this to
    dequantize. Exact (a power of two). *)

val quantize_row_int : qspec -> float array -> int array
(** {!quantize_row} in the integer domain — same rounding, saturation
    and unused-feature handling, but producing the int row form the
    narrow kernels compare against. *)

val quantize_leaf_int : qspec -> float -> int
(** {!quantize_leaf} in the integer domain (used for the base score). *)

val row_quantizer : qspec -> float array -> int array
(** Staged {!quantize_row_int}: apply to the spec once to hoist the
    per-feature scales, then per row. Always produces an array of
    exactly [Array.length feature_exp] elements (the walk kernels index
    it by model feature, so extra row columns are dropped and a too-short
    row raises). The batch entry point of the integer fast path. *)

val quantize : qspec -> t -> t
(** Rewrite thresholds and leaf values to the plan's fixed-point
    integers (stored as integer-valued floats) and tag the layout with
    the spec. {!walk} on the result, fed {!quantize_row} rows, is
    bit-identical to [Tb_analysis.Numeric]'s integer evaluator on
    routing-stable rows. @raise Invalid_argument if already quantized or
    [qbits] is not 8/16. *)

type narrow8 = (int, Bigarray.int8_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
type narrow16 = (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t

type narrow =
  | Narrow8 of { thr : narrow8; leaves : narrow8; always : int array }
  | Narrow16 of { thr : narrow16; leaves : narrow16; always : int array }
      (** Materialized narrow execution form of a quantized layout:
          thresholds and leaves at the plan's actual width (same
          slot-major indexing as the float buffers), plus a per-slot
          OR-mask of always-true lanes. The ±inf routing markers the
          narrow elements cannot carry are re-encoded exactly: -inf
          lanes store [-q_max - 1] (no quantized row is below it, so
          the comparison is constantly false, as with -inf), and +inf
          lanes store the same sentinel but set their bit in [always],
          which the narrow comparison ORs into the LUT index. *)

val narrow : t -> narrow
(** Materialize the narrow buffers of a quantized layout — what the
    JIT's integer kernels walk. Routing and results are bit-identical
    to {!walk} over the float-trick buffers.
    @raise Invalid_argument on a float layout. *)

val resident_tiles : t -> k:int -> int
(** Number of tile slots in the first [k] levels across all trees — the
    working set a resident-prefix register phase keeps out of memory;
    drives the cost model's register-pressure and code-size terms. *)
