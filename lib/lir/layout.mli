(** In-memory representations of tiled trees (paper §V-B).

    Both layouts store the model as struct-of-arrays over {e slots}; a slot
    holds one tile's [tile_size] thresholds and feature indices plus its
    shape id. They differ in how children are found:

    - {b Array layout} (§V-B1): per-tree slab of implicitly indexed slots;
      child [c] of local slot [s] lives at [s*(tile_size+1) + c + 1].
      Simple, but allocates every addressable slot of the (n_t+1)-ary tree
      — the memory bloat the paper measures. Leaves occupy full slots.
    - {b Sparse layout} (§V-B2): tiles store an explicit child pointer;
      all children of a tile are contiguous, and leaf values live in a
      separate dense array. Tiles whose children mix tiles and leaves get
      an extra "hop" tile inserted above each leaf child (paper Fig. 6) so
      every tile's children are homogeneous. *)

type kind = Array_kind | Sparse_kind

type t = {
  kind : kind;
  tile_size : int;
  num_trees : int;
  tree_root : int array;
      (** Array layout: slab base, in slots. Sparse: root tile index, or
          [-1 - leaf_index] when the whole tree is a single leaf. *)
  thresholds : float array;  (** slot-major: [slot * tile_size + lane] *)
  features : int array;  (** same indexing *)
  shape_ids : int array;
      (** per slot: shape id; array layout also uses [leaf_marker] for leaf
          slots and [unused_marker] for never-allocated slots *)
  child_ptr : int array;
      (** sparse only, per slot: [>= 0] = first child tile slot (children
          contiguous); [< 0] = children are leaves starting at
          [leaf_values.(-child_ptr - 1)] *)
  leaf_values : float array;
      (** array layout: per-slot leaf value; sparse: dense leaf store *)
  lut : int array array;  (** LUT rows by shape id *)
}

val leaf_marker : int
(** Shape-id value marking a leaf slot in the array layout (-1). *)

val unused_marker : int
(** Shape-id value marking an unallocated slot in the array layout (-2). *)

val max_array_slots : int
(** Safety cap on a single tree's slab (deep probability-tiled chains make
    the implicit-index slab exponential — the builder raises rather than
    allocating gigabytes; use the sparse layout for such schedules). *)

val build : Tb_hir.Program.t -> t
(** Build the layout selected by the program's schedule.
    @raise Invalid_argument when an array-layout slab would exceed
    {!max_array_slots}. *)

val build_kind : kind -> Tb_hir.Program.t -> t
(** Build a specific layout regardless of the schedule (used by the
    footprint experiment). *)

val comparison_bits : t -> int -> float array -> int
(** Evaluate all lane predicates of the tile in [slot] against a row and
    pack them into the LUT index (lane 0 = MSB). *)

val walk : t -> tree:int -> float array -> float
(** Reference traversal over the layout buffers — the semantics the JIT
    backend must reproduce. *)

val walk_with_trace : t -> tree:int -> float array -> on_slot:(int -> unit) -> float
(** Like {!walk}, reporting each visited slot index (absolute, in slot
    units) — drives the cache simulator. *)

type stride_facts = {
  lane_stride : int;
      (** Slot-major lane stride of [thresholds]/[features]: element
          [slot * lane_stride + lane]. Equals [tile_size]. *)
  tile_advance : (int * int) option;
      (** Sparse only: min/max of [child_ptr.(s) + c] over every slot [s]
          with [child_ptr.(s) >= 0] and every child [c] its LUT row can
          actually select — i.e. the exact range of tile-successor slot
          indices a walk can compute. [None] for array layouts or when no
          slot has tile children. *)
  leaf_advance : (int * int) option;
      (** Sparse only: min/max of [-child_ptr.(s) - 1 + c] over every slot
          with [child_ptr.(s) < 0] — the range of reachable [leaf_values]
          indices. [None] for array layouts or when no slot has leaf
          children. *)
}

val stride_facts : t -> stride_facts
(** Relational facts about the layout's index arithmetic, consumed by
    [Lir_check]'s congruence/interval product to discharge
    [child_ptr + lut_child] bounds obligations. Conservative on corrupt
    layouts (out-of-range shape ids fall back to the full child range). *)

val memory_bytes : t -> int
(** Model bytes under this layout, counting thresholds as float32, feature
    indices and shape ids as int16, child pointers as int32 and leaf values
    as float32 (excludes the LUT, which is shared across models). *)

val num_slots : t -> int
