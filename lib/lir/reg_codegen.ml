module Mir = Tb_mir.Mir
open Reg_ir

(* Fixed register assignment (the walk needs only a handful of values
   live at once; a real backend would run a register allocator here).

   iregs: 0 state (cursor)         1 base (tree slab/root)
          2 absolute slot          3 lane offset (slot * tile_size)
          4 comparison bits        5 shape id
          6 LUT index              7 child index
          8 child pointer (sparse) 9 scratch
   fregs: 0 result
   vregs: 0 thresholds (f32)       1 feature indices (i32)
          2 gathered features(f32) 3 comparison mask (i32) *)

let r_state = state_reg
let r_base = base_reg
let r_abs = 2
let r_lane = 3
let r_bits = 4
let r_shape = 5
let r_lut = 6
let r_child = 7
let r_cptr = 8
let r_scratch = 9

let v_thr = 0
let v_feat = 1
let v_row = 2
let v_mask = 3

let num_iregs = 10
let num_fregs = 1
let num_vregs = 4

(* The §V-A vectorized predicate evaluation for the tile at [r_abs]:
   leaves the LUT-selected child index in [r_child]. *)
let evaluate_tile tile_size =
  [
    Iset (r_lane, Imul_const (r_abs, tile_size));
    Vset (v_thr, Vload_f (Thresholds, r_lane));
    Vset (v_feat, Vload_i (Feature_ids, r_lane));
    Vset (v_row, Gather (Row, v_feat));
    Vset (v_mask, Vcmp_lt (v_row, v_thr));
    Iset (r_bits, Movemask v_mask);
    Iset (r_shape, Iload (Shape_ids, r_abs));
    Iset (r_lut, Imul_const (r_shape, 1 lsl tile_size));
    Iset (r_lut, Iadd (r_lut, r_bits));
    Iset (r_child, Iload (Lut, r_lut));
  ]

(* ---------------- array layout ---------------- *)

(* state = slot local to the tree's slab; abs = base + state. *)
let array_abs = Iset (r_abs, Iadd (r_base, r_state))

let array_advance tile_size =
  [
    Iset (r_state, Imul_const (r_state, tile_size + 1));
    Iset (r_state, Iadd (r_state, r_child));
    Iset (r_state, Iadd_const (r_state, 1));
  ]

let array_step tile_size = (array_abs :: evaluate_tile tile_size) @ array_advance tile_size

let array_leaf_fetch tile_size =
  (* Leaf slots store the value in threshold lane 0. *)
  [
    array_abs;
    Iset (r_lane, Imul_const (r_abs, tile_size));
    Fset (result_reg, Fload (Thresholds, r_lane));
  ]

let array_generic tile_size =
  [
    array_abs;
    Iset (r_shape, Iload (Shape_ids, r_abs));
    While
      ( Ige (r_shape, 0),
        evaluate_tile tile_size @ array_advance tile_size
        @ [ array_abs; Iset (r_shape, Iload (Shape_ids, r_abs)) ] );
  ]
  @ array_leaf_fetch tile_size

let array_unrolled tile_size depth =
  [ Repeat (depth, array_step tile_size) ] @ array_leaf_fetch tile_size

let array_peeled tile_size peel =
  (* The first [peel] steps cannot reach a leaf (peel = the group's minimum
     leaf depth), so they run without termination checks. *)
  [ Repeat (peel, array_step tile_size) ] @ array_generic tile_size

(* ---------------- sparse layout ---------------- *)

(* state = absolute slot; negative values encode [-(leaf index) - 1], and
   the next state simplifies to [child_ptr - child] when the children are
   leaves (child_ptr < 0). *)
let sparse_step tile_size =
  [ Iset (r_abs, Imov r_state) ]
  @ evaluate_tile tile_size
  @ [
      Iset (r_cptr, Iload (Child_ptrs, r_abs));
      If
        ( Ige (r_cptr, 0),
          [ Iset (r_state, Iadd (r_cptr, r_child)) ],
          [ Iset (r_state, Isub (r_cptr, r_child)) ] );
    ]

let sparse_leaf_fetch =
  [
    Iset (r_scratch, Iconst (-1));
    Iset (r_scratch, Isub (r_scratch, r_state));
    Fset (result_reg, Fload (Leaf_values, r_scratch));
  ]

let sparse_generic tile_size =
  [ While (Ige (r_state, 0), sparse_step tile_size) ] @ sparse_leaf_fetch

let sparse_unrolled tile_size depth =
  (* Uniform-depth group: exactly [depth] tile steps; the last one's child
     pointer is negative and the fused If computes the leaf code. Depth 0
     means a constant tree whose root state is already a leaf code. Each
     step carries the same [state >= 0] guard the peeled form uses: on a
     uniform-depth group the guard always holds before the final step, and
     it keeps the non-leaf precondition locally checkable instead of
     depending on the MIR-level uniformity argument (M002). *)
  if depth = 0 then sparse_leaf_fetch
  else
    [ Repeat (depth, [ If (Ige (r_state, 0), sparse_step tile_size, []) ]) ]
    @ sparse_leaf_fetch

let sparse_peeled tile_size peel =
  (* A walk may end exactly at the peel depth; each peeled step is guarded
     (same structure the closure backend uses). *)
  [ Repeat (peel, [ If (Ige (r_state, 0), sparse_step tile_size, []) ]) ]
  @ sparse_generic tile_size

(* ---------------- entry points ---------------- *)

let walk_program (lay : Layout.t) walk =
  let tile_size = lay.Layout.tile_size in
  let body =
    match (lay.Layout.kind, walk) with
    | Layout.Array_kind, Mir.Loop_walk -> array_generic tile_size
    | Layout.Array_kind, Mir.Unrolled_walk { depth } -> array_unrolled tile_size depth
    | Layout.Array_kind, Mir.Peeled_walk { peel } -> array_peeled tile_size peel
    | Layout.Sparse_kind, Mir.Loop_walk -> sparse_generic tile_size
    | Layout.Sparse_kind, Mir.Unrolled_walk { depth } -> sparse_unrolled tile_size depth
    | Layout.Sparse_kind, Mir.Peeled_walk { peel } -> sparse_peeled tile_size peel
  in
  let program =
    { tile_size; layout = lay.Layout.kind; body; num_iregs; num_fregs;
      num_vregs; lanes = 1 }
  in
  match check program with
  | [] -> program
  | d :: _ ->
    invalid_arg
      ("Reg_codegen: generated invalid program: " ^ Tb_diag.Diagnostic.to_string d)

(* ---------------- resident prefix (quantized fast path) ---------------- *)

(* "Register Your Forests": the first [k] tile levels of a tree are
   compiled to straight-line code with thresholds, shape ids and child
   slots baked in as immediates — the register phase touches only the
   row (via integer [Iload (Row, _)] reads of the quantized row) and the
   LUT; below level [k] the program falls through to the ordinary
   memory-phase walk, which resumes from whatever cursor the register
   phase left in [r_state]. Quantized layouts only: the integer [Ige]
   immediates require integer-valued thresholds. *)
let resident_program (lay : Layout.t) ~k ~tree =
  (match lay.Layout.quant with
  | Some _ -> ()
  | None -> invalid_arg "Reg_codegen.resident_program: layout is not quantized");
  if k < 0 then invalid_arg "Reg_codegen.resident_program: negative prefix depth";
  let nt = lay.Layout.tile_size in
  let bit lane = 1 lsl (nt - 1 - lane) in
  (* Children the LUT row can actually select; unreachable ladder arms
     get dead code that still satisfies the definedness check. *)
  let reachable sid = Layout.reachable_children lay sid in
  let eval_bits s =
    Iset (r_bits, Iconst 0)
    :: List.concat
         (List.init nt (fun lane ->
              let thr = lay.Layout.thresholds.((s * nt) + lane) in
              (* Infinite thresholds are constant predicates (dummy/hop/
                 padding lanes): fold the bit instead of comparing. *)
              if thr = infinity then
                [ Iset (r_bits, Iadd_const (r_bits, bit lane)) ]
              else if thr = neg_infinity then []
              else
                [
                  Iset (r_scratch, Iconst lay.Layout.features.((s * nt) + lane));
                  Iset (r_scratch, Iload (Row, r_scratch));
                  If
                    ( Ige (r_scratch, int_of_float thr),
                      [],
                      [ Iset (r_bits, Iadd_const (r_bits, bit lane)) ] );
                ]))
  in
  let select sid =
    [
      Iset (r_lut, Iconst (sid lsl nt));
      Iset (r_lut, Iadd (r_lut, r_bits));
      Iset (r_child, Iload (Lut, r_lut));
    ]
  in
  let dispatch sid gen_child =
    let reach = reachable sid in
    let arm c =
      if List.mem c reach then gen_child c else [ Iset (r_state, Iconst 0) ]
    in
    let rec ladder c =
      if c = 0 then arm 0 else [ If (Ige (r_child, c), arm c, ladder (c - 1)) ]
    in
    ladder nt
  in
  let body =
    match lay.Layout.kind with
    | Layout.Array_kind ->
      let fanout = nt + 1 in
      let base = lay.Layout.tree_root.(tree) in
      let rec tile local level =
        let s = base + local in
        let sid = lay.Layout.shape_ids.(s) in
        if level >= k || sid < 0 then [ Iset (r_state, Iconst local) ]
        else
          eval_bits s @ select sid
          @ dispatch sid (fun c -> tile ((local * fanout) + c + 1) (level + 1))
      in
      tile 0 0 @ array_generic nt
    | Layout.Sparse_kind ->
      let root = lay.Layout.tree_root.(tree) in
      if root < 0 then sparse_generic nt
      else
        let rec tile s level =
          if level >= k then [ Iset (r_state, Iconst s) ]
          else begin
            let sid = lay.Layout.shape_ids.(s) in
            let p = lay.Layout.child_ptr.(s) in
            eval_bits s @ select sid
            @ dispatch sid (fun c ->
                  if p >= 0 then tile (p + c) (level + 1)
                  else [ Iset (r_state, Iconst (p - c)) ])
          end
        in
        tile root 0 @ sparse_generic nt
  in
  let program =
    { tile_size = nt; layout = lay.Layout.kind; body; num_iregs; num_fregs;
      num_vregs; lanes = 1 }
  in
  match check program with
  | [] -> program
  | d :: _ ->
    invalid_arg
      ("Reg_codegen.resident_program: generated invalid program: "
      ^ Tb_diag.Diagnostic.to_string d)

(* ---------------- unroll-and-jam ---------------- *)

(* Jamming replicates the single-lane register file [lanes] times: lane l's
   copy of register r is [l * width + r], so lanes own disjoint register
   windows by construction (Alias re-derives this by dataflow rather than
   trusting it). Straight-line statements are interleaved in lockstep —
   the instruction-level mixing unroll-and-jam exists for — while control
   flow (While/If), whose condition is lane-private, stays per-lane. *)
let rename_stmt ~lane =
  let ir r = (lane * num_iregs) + r in
  let fr r = (lane * num_fregs) + r in
  let vr r = (lane * num_vregs) + r in
  let iexpr = function
    | Iconst c -> Iconst c
    | Imov a -> Imov (ir a)
    | Iadd (a, b) -> Iadd (ir a, ir b)
    | Imul_const (a, c) -> Imul_const (ir a, c)
    | Iadd_const (a, c) -> Iadd_const (ir a, c)
    | Isub (a, b) -> Isub (ir a, ir b)
    | Iload (b, a) -> Iload (b, ir a)
    | Movemask v -> Movemask (vr v)
  in
  let fexpr = function Fload (b, a) -> Fload (b, ir a) in
  let vexpr = function
    | Vload_f (b, a) -> Vload_f (b, ir a)
    | Vload_i (b, a) -> Vload_i (b, ir a)
    | Gather (b, v) -> Gather (b, vr v)
    | Vcmp_lt (a, b) -> Vcmp_lt (vr a, vr b)
  in
  let cond = function
    | Ige (r, c) -> Ige (ir r, c)
    | Ieq_load (b, r, c) -> Ieq_load (b, ir r, c)
  in
  let rec stmt = function
    | Iset (r, e) -> Iset (ir r, iexpr e)
    | Fset (r, e) -> Fset (fr r, fexpr e)
    | Vset (r, e) -> Vset (vr r, vexpr e)
    | While (c, b) -> While (cond c, List.map stmt b)
    | If (c, t, e) -> If (cond c, List.map stmt t, List.map stmt e)
    | Repeat (n, b) -> Repeat (n, List.map stmt b)
  in
  stmt

let rec jam_stmts ~lanes stmts =
  List.concat_map
    (fun s ->
      match s with
      | Repeat (n, body) -> [ Repeat (n, jam_stmts ~lanes body) ]
      | Iset _ | Fset _ | Vset _ | While _ | If _ ->
        List.init lanes (fun lane -> rename_stmt ~lane s))
    stmts

let jam_lanes (p : walk_program) ~lanes =
  if lanes <= 1 then p
  else if p.lanes <> 1 then invalid_arg "Reg_codegen.jam_lanes: already jammed"
  else
    let program =
      {
        p with
        body = jam_stmts ~lanes p.body;
        num_iregs = lanes * p.num_iregs;
        num_fregs = lanes * p.num_fregs;
        num_vregs = lanes * p.num_vregs;
        lanes;
      }
    in
    match check program with
    | [] -> program
    | d :: _ ->
      invalid_arg
        ("Reg_codegen: jammed program fails verification: "
        ^ Tb_diag.Diagnostic.to_string d)

let all_variants lay (mir : Mir.t) =
  List.mapi
    (fun i (plan : Mir.group_plan) -> (i, walk_program lay plan.Mir.walk))
    (Array.to_list mir.Mir.group_plans)

let jammed_variants lay (mir : Mir.t) =
  List.mapi
    (fun i (plan : Mir.group_plan) ->
      let p = walk_program lay plan.Mir.walk in
      (i, jam_lanes p ~lanes:(max 1 plan.Mir.interleave)))
    (Array.to_list mir.Mir.group_plans)
