module Mir = Tb_mir.Mir
module Schedule = Tb_hir.Schedule
module Reorder = Tb_hir.Reorder
module Json = Tb_util.Json
module D = Tb_diag.Diagnostic

type group = {
  positions : int array;
  walk : Mir.walk_kind;
  interleave : int;
}

type meta = {
  model : string;
  target : string;
  schedule : Schedule.t;
  us_per_row : float;
}

type quant = {
  resident_k : int;
  dev_bound : float array;
  tolerance : float;
}

type t = {
  meta : meta;
  loop_order : Schedule.loop_order;
  num_threads : int;
  num_outputs : int;
  base_score : float;
  tree_class : int array;
  walk_depth : int array;
  groups : group array;
  layout : Layout.t;
  programs : Reg_ir.walk_program array;
  quant : quant option;
}

let of_lower ?(model = "") ?(target = "") ?(us_per_row = 0.0) ?quant
    (lp : Lower.t) =
  (match (quant, lp.Lower.layout.Layout.quant) with
  | Some _, None ->
    invalid_arg "Pack.of_lower: quant metadata without a quantized layout"
  | None, Some _ ->
    invalid_arg "Pack.of_lower: quantized layout without quant metadata"
  | _ -> ());
  let mir = lp.Lower.mir in
  let groups =
    Array.map
      (fun (p : Mir.group_plan) ->
        {
          positions = Array.copy p.Mir.group.Reorder.positions;
          walk = p.Mir.walk;
          interleave = p.Mir.interleave;
        })
      mir.Mir.group_plans
  in
  let variants = Reg_codegen.all_variants lp.Lower.layout mir in
  let programs =
    Array.init (Array.length groups) (fun g -> List.assoc g variants)
  in
  {
    meta = { model; target; schedule = mir.Mir.schedule; us_per_row };
    loop_order = mir.Mir.loop_order;
    num_threads = mir.Mir.num_threads;
    num_outputs = lp.Lower.num_outputs;
    base_score = lp.Lower.base_score;
    tree_class = Array.copy lp.Lower.tree_class;
    walk_depth = Array.copy lp.Lower.walk_depth;
    groups;
    layout = lp.Lower.layout;
    programs;
    quant;
  }

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

let format_version = 2
let magic = "TBPK"

type error = { code : string; message : string }

exception Fail of error

let fail code fmt =
  Printf.ksprintf (fun message -> raise (Fail { code; message })) fmt

let error_to_diagnostic e =
  D.errorf ~level:D.Artifact ~code:e.code ~path:[] "%s" e.message

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected)                                       *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 buf ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i))))
           0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let w_u8 b v = Buffer.add_uint8 b v
let w_i32 b v = Buffer.add_int32_le b (Int32.of_int v)
let w_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let w_str b s =
  w_i32 b (String.length s);
  Buffer.add_string b s

let w_int_array b a =
  w_i32 b (Array.length a);
  Array.iter (w_i32 b) a

let w_float_array b a =
  w_i32 b (Array.length a);
  Array.iter (w_f64 b) a

let w_walk b = function
  | Mir.Loop_walk -> w_u8 b 0
  | Mir.Peeled_walk { peel } ->
    w_u8 b 1;
    w_i32 b peel
  | Mir.Unrolled_walk { depth } ->
    w_u8 b 2;
    w_i32 b depth

let buffer_tag = function
  | Reg_ir.Thresholds -> 0
  | Reg_ir.Feature_ids -> 1
  | Reg_ir.Shape_ids -> 2
  | Reg_ir.Child_ptrs -> 3
  | Reg_ir.Leaf_values -> 4
  | Reg_ir.Lut -> 5
  | Reg_ir.Tree_roots -> 6
  | Reg_ir.Row -> 7

let w_buf b buf = w_u8 b (buffer_tag buf)

let w_iexpr b = function
  | Reg_ir.Iconst v ->
    w_u8 b 0;
    w_i32 b v
  | Reg_ir.Imov r ->
    w_u8 b 1;
    w_i32 b r
  | Reg_ir.Iadd (x, y) ->
    w_u8 b 2;
    w_i32 b x;
    w_i32 b y
  | Reg_ir.Imul_const (r, v) ->
    w_u8 b 3;
    w_i32 b r;
    w_i32 b v
  | Reg_ir.Iadd_const (r, v) ->
    w_u8 b 4;
    w_i32 b r;
    w_i32 b v
  | Reg_ir.Isub (x, y) ->
    w_u8 b 5;
    w_i32 b x;
    w_i32 b y
  | Reg_ir.Iload (buf, r) ->
    w_u8 b 6;
    w_buf b buf;
    w_i32 b r
  | Reg_ir.Movemask v ->
    w_u8 b 7;
    w_i32 b v

let w_fexpr b = function
  | Reg_ir.Fload (buf, r) ->
    w_u8 b 0;
    w_buf b buf;
    w_i32 b r

let w_vexpr b = function
  | Reg_ir.Vload_f (buf, r) ->
    w_u8 b 0;
    w_buf b buf;
    w_i32 b r
  | Reg_ir.Vload_i (buf, r) ->
    w_u8 b 1;
    w_buf b buf;
    w_i32 b r
  | Reg_ir.Gather (buf, v) ->
    w_u8 b 2;
    w_buf b buf;
    w_i32 b v
  | Reg_ir.Vcmp_lt (x, y) ->
    w_u8 b 3;
    w_i32 b x;
    w_i32 b y

let w_cond b = function
  | Reg_ir.Ige (r, v) ->
    w_u8 b 0;
    w_i32 b r;
    w_i32 b v
  | Reg_ir.Ieq_load (buf, r, v) ->
    w_u8 b 1;
    w_buf b buf;
    w_i32 b r;
    w_i32 b v

let rec w_stmt b = function
  | Reg_ir.Iset (r, e) ->
    w_u8 b 0;
    w_i32 b r;
    w_iexpr b e
  | Reg_ir.Fset (r, e) ->
    w_u8 b 1;
    w_i32 b r;
    w_fexpr b e
  | Reg_ir.Vset (r, e) ->
    w_u8 b 2;
    w_i32 b r;
    w_vexpr b e
  | Reg_ir.While (c, body) ->
    w_u8 b 3;
    w_cond b c;
    w_stmts b body
  | Reg_ir.If (c, t, f) ->
    w_u8 b 4;
    w_cond b c;
    w_stmts b t;
    w_stmts b f
  | Reg_ir.Repeat (n, body) ->
    w_u8 b 5;
    w_i32 b n;
    w_stmts b body

and w_stmts b l =
  w_i32 b (List.length l);
  List.iter (w_stmt b) l

let w_program b (p : Reg_ir.walk_program) =
  w_u8 b p.Reg_ir.tile_size;
  w_u8 b (match p.Reg_ir.layout with Layout.Array_kind -> 0 | Layout.Sparse_kind -> 1);
  w_i32 b p.Reg_ir.lanes;
  w_i32 b p.Reg_ir.num_iregs;
  w_i32 b p.Reg_ir.num_fregs;
  w_i32 b p.Reg_ir.num_vregs;
  w_stmts b p.Reg_ir.body

(* Block tags, in required stream order. *)
let tag_meta = 1
let tag_plan = 2
let tag_trees = 3
let tag_layout = 4
let tag_reg = 5
let tag_quant = 6

let w_block b tag body =
  w_u8 b tag;
  w_i32 b (Buffer.length body);
  Buffer.add_buffer b body

let encode t =
  let payload = Buffer.create 4096 in
  (* META *)
  let b = Buffer.create 256 in
  w_str b t.meta.model;
  w_str b t.meta.target;
  w_str b (Json.to_string (Schedule.to_json t.meta.schedule));
  w_f64 b t.meta.us_per_row;
  w_u8 b (match t.loop_order with Schedule.One_row_at_a_time -> 0 | Schedule.One_tree_at_a_time -> 1);
  w_i32 b t.num_threads;
  w_i32 b t.num_outputs;
  w_f64 b t.base_score;
  w_block payload tag_meta b;
  (* PLAN *)
  let b = Buffer.create 256 in
  w_i32 b (Array.length t.groups);
  Array.iter
    (fun g ->
      w_walk b g.walk;
      w_i32 b g.interleave;
      w_int_array b g.positions)
    t.groups;
  w_block payload tag_plan b;
  (* TREES *)
  let b = Buffer.create 256 in
  w_int_array b t.tree_class;
  w_int_array b t.walk_depth;
  w_block payload tag_trees b;
  (* LAYOUT — buffers in the order a walk touches them: roots, shapes,
     child pointers, then the per-lane predicate data, then the leaves. *)
  let b = Buffer.create 4096 in
  let lay = t.layout in
  w_u8 b (match lay.Layout.kind with Layout.Array_kind -> 0 | Layout.Sparse_kind -> 1);
  w_u8 b lay.Layout.tile_size;
  w_i32 b lay.Layout.num_trees;
  w_int_array b lay.Layout.tree_root;
  w_int_array b lay.Layout.shape_ids;
  w_int_array b lay.Layout.child_ptr;
  w_int_array b lay.Layout.features;
  w_float_array b lay.Layout.thresholds;
  w_float_array b lay.Layout.leaf_values;
  w_i32 b (Array.length lay.Layout.lut);
  Array.iter (w_int_array b) lay.Layout.lut;
  w_block payload tag_layout b;
  (* REG *)
  let b = Buffer.create 1024 in
  w_i32 b (Array.length t.programs);
  Array.iter (w_program b) t.programs;
  w_block payload tag_reg b;
  (* QUANT — optional trailing block; float packs omit it entirely so
     their encodings stay minimal. *)
  (match (t.quant, t.layout.Layout.quant) with
  | Some q, Some spec ->
    let b = Buffer.create 256 in
    w_u8 b spec.Layout.qbits;
    w_i32 b spec.Layout.q_max;
    w_i32 b spec.Layout.leaf_exp;
    w_i32 b (Array.length spec.Layout.feature_exp);
    Array.iter
      (fun e ->
        match e with
        | None -> w_u8 b 0
        | Some v ->
          w_u8 b 1;
          w_i32 b v)
      spec.Layout.feature_exp;
    w_i32 b q.resident_k;
    w_float_array b q.dev_bound;
    w_f64 b q.tolerance;
    w_block payload tag_quant b
  | None, None -> ()
  | _ -> invalid_arg "Pack.encode: quant metadata and layout disagree");
  (* Header + payload. *)
  let plen = Buffer.length payload in
  let out = Bytes.create (16 + plen) in
  Bytes.blit_string magic 0 out 0 4;
  Bytes.set_uint16_le out 4 format_version;
  Bytes.set_uint16_le out 6 0;
  Buffer.blit payload 0 out 16 plen;
  Bytes.set_int32_le out 8 (Int32.of_int plen);
  Bytes.set_int32_le out 12 (crc32 out ~pos:16 ~len:plen);
  out

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type cursor = { buf : bytes; mutable pos : int; limit : int }

let need c n what =
  if n < 0 || c.pos + n > c.limit then
    fail "A004" "truncated artifact: %s needs %d bytes at offset %d (limit %d)"
      what n c.pos c.limit

let r_u8 c what =
  need c 1 what;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let r_i32 c what =
  need c 4 what;
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  v

let r_len c what =
  let v = r_i32 c what in
  if v < 0 then fail "A004" "negative length for %s" what;
  v

let r_f64 c what =
  need c 8 what;
  let v = Int64.float_of_bits (Bytes.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let r_str c what =
  let n = r_len c what in
  need c n what;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

(* [Array.init]/[List.init] make no order guarantee, and every read
   advances the cursor — all repetition below is explicit left-to-right. *)
let r_seq n read =
  if n = 0 then [||]
  else begin
    let first = read () in
    let a = Array.make n first in
    for i = 1 to n - 1 do
      a.(i) <- read ()
    done;
    a
  end

let r_int_array c what =
  let n = r_len c what in
  need c (4 * n) what;
  r_seq n (fun () -> r_i32 c what)

let r_float_array c what =
  let n = r_len c what in
  need c (8 * n) what;
  r_seq n (fun () -> r_f64 c what)

let r_walk c =
  match r_u8 c "walk kind" with
  | 0 -> Mir.Loop_walk
  | 1 ->
    let peel = r_i32 c "peel" in
    if peel < 0 then fail "A004" "negative peel %d" peel;
    Mir.Peeled_walk { peel }
  | 2 ->
    let depth = r_i32 c "depth" in
    (* depth 0 is real: a group of single-tile trees unrolls to no steps. *)
    if depth < 0 then fail "A004" "negative unrolled depth %d" depth;
    Mir.Unrolled_walk { depth }
  | tag -> fail "A004" "unknown walk-kind tag %d" tag

let r_kind c what =
  match r_u8 c what with
  | 0 -> Layout.Array_kind
  | 1 -> Layout.Sparse_kind
  | tag -> fail "A004" "unknown layout-kind tag %d in %s" tag what

let r_buf c =
  match r_u8 c "buffer" with
  | 0 -> Reg_ir.Thresholds
  | 1 -> Reg_ir.Feature_ids
  | 2 -> Reg_ir.Shape_ids
  | 3 -> Reg_ir.Child_ptrs
  | 4 -> Reg_ir.Leaf_values
  | 5 -> Reg_ir.Lut
  | 6 -> Reg_ir.Tree_roots
  | 7 -> Reg_ir.Row
  | tag -> fail "A004" "unknown buffer tag %d" tag

let r_iexpr c =
  match r_u8 c "iexpr" with
  | 0 -> Reg_ir.Iconst (r_i32 c "iconst")
  | 1 -> Reg_ir.Imov (r_i32 c "imov")
  | 2 ->
    let x = r_i32 c "iadd" in
    Reg_ir.Iadd (x, r_i32 c "iadd")
  | 3 ->
    let r = r_i32 c "imul_const" in
    Reg_ir.Imul_const (r, r_i32 c "imul_const")
  | 4 ->
    let r = r_i32 c "iadd_const" in
    Reg_ir.Iadd_const (r, r_i32 c "iadd_const")
  | 5 ->
    let x = r_i32 c "isub" in
    Reg_ir.Isub (x, r_i32 c "isub")
  | 6 ->
    let buf = r_buf c in
    Reg_ir.Iload (buf, r_i32 c "iload")
  | 7 -> Reg_ir.Movemask (r_i32 c "movemask")
  | tag -> fail "A004" "unknown iexpr tag %d" tag

let r_fexpr c =
  match r_u8 c "fexpr" with
  | 0 ->
    let buf = r_buf c in
    Reg_ir.Fload (buf, r_i32 c "fload")
  | tag -> fail "A004" "unknown fexpr tag %d" tag

let r_vexpr c =
  match r_u8 c "vexpr" with
  | 0 ->
    let buf = r_buf c in
    Reg_ir.Vload_f (buf, r_i32 c "vload_f")
  | 1 ->
    let buf = r_buf c in
    Reg_ir.Vload_i (buf, r_i32 c "vload_i")
  | 2 ->
    let buf = r_buf c in
    Reg_ir.Gather (buf, r_i32 c "gather")
  | 3 ->
    let x = r_i32 c "vcmp_lt" in
    Reg_ir.Vcmp_lt (x, r_i32 c "vcmp_lt")
  | tag -> fail "A004" "unknown vexpr tag %d" tag

let r_cond c =
  match r_u8 c "cond" with
  | 0 ->
    let r = r_i32 c "ige" in
    Reg_ir.Ige (r, r_i32 c "ige")
  | 1 ->
    let buf = r_buf c in
    let r = r_i32 c "ieq_load" in
    Reg_ir.Ieq_load (buf, r, r_i32 c "ieq_load")
  | tag -> fail "A004" "unknown cond tag %d" tag

let rec r_stmt c =
  match r_u8 c "stmt" with
  | 0 ->
    let r = r_i32 c "iset" in
    Reg_ir.Iset (r, r_iexpr c)
  | 1 ->
    let r = r_i32 c "fset" in
    Reg_ir.Fset (r, r_fexpr c)
  | 2 ->
    let r = r_i32 c "vset" in
    Reg_ir.Vset (r, r_vexpr c)
  | 3 ->
    let cond = r_cond c in
    Reg_ir.While (cond, r_stmts c)
  | 4 ->
    let cond = r_cond c in
    let t = r_stmts c in
    Reg_ir.If (cond, t, r_stmts c)
  | 5 ->
    let n = r_i32 c "repeat" in
    Reg_ir.Repeat (n, r_stmts c)
  | tag -> fail "A004" "unknown stmt tag %d" tag

and r_stmts c =
  let n = r_len c "stmt list" in
  (* Each stmt is at least 2 bytes, so a hostile count cannot force a
     huge allocation past what the payload could actually hold. *)
  need c (2 * n) "stmt list";
  let acc = ref [] in
  for _ = 1 to n do
    acc := r_stmt c :: !acc
  done;
  List.rev !acc

let r_program c =
  let tile_size = r_u8 c "program tile_size" in
  let layout = r_kind c "program layout" in
  let lanes = r_i32 c "lanes" in
  let num_iregs = r_i32 c "num_iregs" in
  let num_fregs = r_i32 c "num_fregs" in
  let num_vregs = r_i32 c "num_vregs" in
  let body = r_stmts c in
  { Reg_ir.tile_size; layout; body; num_iregs; num_fregs; num_vregs; lanes }

let r_block c tag what =
  let got = r_u8 c (what ^ " block tag") in
  if got <> tag then
    fail "A004" "expected %s block (tag %d) at offset %d, found tag %d" what
      tag (c.pos - 1) got;
  let len = r_len c (what ^ " block length") in
  need c len (what ^ " block body");
  let body_start = c.pos in
  (len, body_start)

let check_block c (len, body_start) what =
  if c.pos - body_start <> len then
    fail "A004" "%s block length %d disagrees with its contents (%d bytes)"
      what len (c.pos - body_start)

(* ------------------------------------------------------------------ *)
(* Structural validation of a decoded pack                             *)
(* ------------------------------------------------------------------ *)

let validate t =
  let lay = t.layout in
  let slots = Array.length lay.Layout.shape_ids in
  let nt = lay.Layout.tile_size in
  if nt < 1 || nt > 8 then fail "A004" "tile size %d out of range" nt;
  if lay.Layout.num_trees <> Array.length lay.Layout.tree_root then
    fail "A004" "num_trees %d != tree_root length %d" lay.Layout.num_trees
      (Array.length lay.Layout.tree_root);
  if Array.length lay.Layout.thresholds <> slots * nt then
    fail "A004" "thresholds length %d != %d slots x tile size %d"
      (Array.length lay.Layout.thresholds) slots nt;
  if Array.length lay.Layout.features <> slots * nt then
    fail "A004" "features length %d != %d slots x tile size %d"
      (Array.length lay.Layout.features) slots nt;
  (match lay.Layout.kind with
  | Layout.Array_kind ->
    if lay.Layout.child_ptr <> [||] then
      fail "A004" "array layout carries child pointers";
    if lay.Layout.leaf_values <> [||] then
      fail "A004" "array layout carries a separate leaf store";
    Array.iteri
      (fun i root ->
        if root < 0 || root > slots then
          fail "A004" "tree %d slab base %d out of range" i root)
      lay.Layout.tree_root
  | Layout.Sparse_kind ->
    if Array.length lay.Layout.child_ptr <> slots then
      fail "A004" "child_ptr length %d != %d slots"
        (Array.length lay.Layout.child_ptr) slots;
    let leaves = Array.length lay.Layout.leaf_values in
    Array.iteri
      (fun i root ->
        if root >= slots || -root - 1 >= leaves then
          fail "A004" "tree %d root %d out of range" i root)
      lay.Layout.tree_root);
  let lut_rows = Array.length lay.Layout.lut in
  Array.iter
    (fun row ->
      if Array.length row <> 1 lsl nt then
        fail "A004" "LUT row length %d != 2^tile size %d" (Array.length row)
          (1 lsl nt))
    lay.Layout.lut;
  Array.iteri
    (fun s sid ->
      if sid >= lut_rows || sid < Layout.unused_marker then
        fail "A004" "slot %d shape id %d out of range" s sid)
    lay.Layout.shape_ids;
  let num_trees = lay.Layout.num_trees in
  if Array.length t.tree_class <> num_trees then
    fail "A004" "tree_class length %d != %d trees" (Array.length t.tree_class)
      num_trees;
  if Array.length t.walk_depth <> num_trees then
    fail "A004" "walk_depth length %d != %d trees" (Array.length t.walk_depth)
      num_trees;
  if t.num_outputs < 1 then fail "A004" "num_outputs %d < 1" t.num_outputs;
  Array.iteri
    (fun i cls ->
      if cls < 0 || cls >= t.num_outputs then
        fail "A004" "tree %d class %d out of range" i cls)
    t.tree_class;
  if t.num_threads < 1 then fail "A004" "num_threads %d < 1" t.num_threads;
  (* Every tree must be walked exactly once across the group plans. *)
  let seen = Array.make num_trees 0 in
  Array.iter
    (fun g ->
      if g.interleave < 1 then fail "A004" "interleave %d < 1" g.interleave;
      Array.iter
        (fun tree ->
          if tree < 0 || tree >= num_trees then
            fail "A004" "group position %d out of range" tree;
          seen.(tree) <- seen.(tree) + 1)
        g.positions)
    t.groups;
  Array.iteri
    (fun tree n ->
      if n <> 1 then fail "A004" "tree %d appears in %d group plans" tree n)
    seen;
  if Array.length t.programs <> Array.length t.groups then
    fail "A004" "%d register programs for %d groups"
      (Array.length t.programs) (Array.length t.groups);
  Array.iteri
    (fun g p ->
      match Reg_ir.check p with
      | [] -> ()
      | ds ->
        fail "A004" "group %d register program fails verification: %s" g
          (D.to_string (List.hd ds)))
    t.programs;
  (* Quantized artifacts: the spec must be sane and every stored value
     must actually be one of the plan's integers (as integer-valued
     floats), with infinities kept as always/never-true markers. *)
  match (t.quant, lay.Layout.quant) with
  | None, None -> ()
  | Some _, None -> fail "A004" "quant block without a quantized layout"
  | None, Some _ -> fail "A004" "quantized layout without a quant block"
  | Some q, Some spec ->
    if spec.Layout.qbits <> 8 && spec.Layout.qbits <> 16 then
      fail "A004" "quantized width %d is not 8 or 16" spec.Layout.qbits;
    if spec.Layout.q_max <> (1 lsl (spec.Layout.qbits - 1)) - 1 then
      fail "A004" "q_max %d disagrees with width %d" spec.Layout.q_max
        spec.Layout.qbits;
    if q.resident_k < 0 then
      fail "A004" "negative resident prefix depth %d" q.resident_k;
    if Array.length q.dev_bound <> t.num_outputs then
      fail "A004" "deviation bound length %d != %d outputs"
        (Array.length q.dev_bound) t.num_outputs;
    if not (Float.is_finite q.tolerance) || q.tolerance < 0.0 then
      fail "A004" "bad quantization tolerance";
    let in_range what i v =
      if Float.is_finite v then
        if
          Float.round v <> v
          || v > float_of_int spec.Layout.q_max
          || v < float_of_int (-spec.Layout.q_max - 1)
        then fail "A004" "%s %d value %g is not a quantized integer" what i v
    in
    Array.iteri (in_range "threshold") lay.Layout.thresholds;
    Array.iteri (in_range "leaf") lay.Layout.leaf_values

let decode bytes =
  try
    let total = Bytes.length bytes in
    if total < 4 || Bytes.sub_string bytes 0 4 <> magic then
      fail "A001" "not a packed predictor artifact (bad magic)";
    if total < 16 then fail "A001" "not a packed predictor artifact (no header)";
    let version = Bytes.get_uint16_le bytes 4 in
    if version <> format_version then
      fail "A002" "unsupported artifact format version %d (decoder speaks %d)"
        version format_version;
    (* The payload CRC cannot cover the header; rejecting nonzero reserved
       bytes keeps every single-bit corruption detectable. *)
    if Bytes.get_uint16_le bytes 6 <> 0 then
      fail "A004" "reserved header bytes are nonzero";
    let plen = Int32.to_int (Bytes.get_int32_le bytes 8) in
    if plen < 0 || 16 + plen > total then
      fail "A004" "truncated artifact: header declares %d payload bytes, %d present"
        plen (total - 16);
    if 16 + plen < total then
      fail "A004" "trailing garbage: %d bytes past the declared payload"
        (total - 16 - plen);
    let stored = Bytes.get_int32_le bytes 12 in
    let actual = crc32 bytes ~pos:16 ~len:plen in
    if stored <> actual then
      fail "A003" "checksum mismatch: stored %08lx, computed %08lx" stored
        actual;
    let c = { buf = bytes; pos = 16; limit = 16 + plen } in
    (* META *)
    let blk = r_block c tag_meta "meta" in
    let model = r_str c "model name" in
    let target = r_str c "target name" in
    let schedule_json = r_str c "schedule" in
    let schedule =
      match Schedule.of_json (Json.of_string schedule_json) with
      | s -> s
      | exception Json.Parse_error m -> fail "A004" "bad schedule: %s" m
    in
    let us_per_row = r_f64 c "us_per_row" in
    let loop_order =
      match r_u8 c "loop order" with
      | 0 -> Schedule.One_row_at_a_time
      | 1 -> Schedule.One_tree_at_a_time
      | tag -> fail "A004" "unknown loop-order tag %d" tag
    in
    let num_threads = r_i32 c "num_threads" in
    let num_outputs = r_i32 c "num_outputs" in
    let base_score = r_f64 c "base_score" in
    check_block c blk "meta";
    (* PLAN *)
    let blk = r_block c tag_plan "plan" in
    let num_groups = r_len c "group count" in
    need c (10 * num_groups) "group plans";
    let groups =
      r_seq num_groups (fun () ->
          let walk = r_walk c in
          let interleave = r_i32 c "interleave" in
          let positions = r_int_array c "group positions" in
          { positions; walk; interleave })
    in
    check_block c blk "plan";
    (* TREES *)
    let blk = r_block c tag_trees "trees" in
    let tree_class = r_int_array c "tree_class" in
    let walk_depth = r_int_array c "walk_depth" in
    check_block c blk "trees";
    (* LAYOUT *)
    let blk = r_block c tag_layout "layout" in
    let kind = r_kind c "layout kind" in
    let tile_size = r_u8 c "tile size" in
    let num_trees = r_i32 c "num_trees" in
    let tree_root = r_int_array c "tree_root" in
    let shape_ids = r_int_array c "shape_ids" in
    let child_ptr = r_int_array c "child_ptr" in
    let features = r_int_array c "features" in
    let thresholds = r_float_array c "thresholds" in
    let leaf_values = r_float_array c "leaf_values" in
    let lut_rows = r_len c "LUT row count" in
    need c (4 * lut_rows) "LUT";
    let lut = r_seq lut_rows (fun () -> r_int_array c "LUT row") in
    check_block c blk "layout";
    let layout =
      {
        Layout.kind;
        tile_size;
        num_trees;
        tree_root;
        thresholds;
        features;
        shape_ids;
        child_ptr;
        leaf_values;
        lut;
        quant = None;
      }
    in
    (* REG *)
    let blk = r_block c tag_reg "reg" in
    let num_programs = r_len c "program count" in
    need c (15 * num_programs) "register programs";
    let programs = r_seq num_programs (fun () -> r_program c) in
    check_block c blk "reg";
    (* QUANT — present only for integer-fast-path artifacts. *)
    let layout, quant =
      if c.pos = c.limit then (layout, None)
      else begin
        let blk = r_block c tag_quant "quant" in
        let qbits = r_u8 c "qbits" in
        let q_max = r_i32 c "q_max" in
        let leaf_exp = r_i32 c "leaf_exp" in
        let num_features = r_len c "feature_exp count" in
        need c num_features "feature exponents";
        let feature_exp =
          r_seq num_features (fun () ->
              match r_u8 c "feature_exp flag" with
              | 0 -> None
              | 1 -> Some (r_i32 c "feature_exp")
              | tag -> fail "A004" "unknown feature-exp flag %d" tag)
        in
        let resident_k = r_i32 c "resident_k" in
        let dev_bound = r_float_array c "dev_bound" in
        let tolerance = r_f64 c "tolerance" in
        check_block c blk "quant";
        let spec = { Layout.qbits; q_max; feature_exp; leaf_exp } in
        ( { layout with Layout.quant = Some spec },
          Some { resident_k; dev_bound; tolerance } )
      end
    in
    if c.pos <> c.limit then
      fail "A004" "trailing garbage: %d undecoded payload bytes"
        (c.limit - c.pos);
    let t =
      {
        meta = { model; target; schedule; us_per_row };
        loop_order;
        num_threads;
        num_outputs;
        base_score;
        tree_class;
        walk_depth;
        groups;
        layout;
        programs;
        quant;
      }
    in
    validate t;
    Ok t
  with
  | Fail e -> Error e
  | exn ->
    (* Decoding must be total; anything escaping the typed failures above
       is still reported as a malformed body, never a crash. *)
    Error
      {
        code = "A004";
        message = Printf.sprintf "malformed artifact: %s" (Printexc.to_string exn);
      }

(* ------------------------------------------------------------------ *)
(* Equality                                                            *)
(* ------------------------------------------------------------------ *)

let float_eq a b = Int64.bits_of_float a = Int64.bits_of_float b

let float_array_eq a b =
  Array.length a = Array.length b && Array.for_all2 float_eq a b

let layout_eq (a : Layout.t) (b : Layout.t) =
  a.Layout.kind = b.Layout.kind
  && a.Layout.tile_size = b.Layout.tile_size
  && a.Layout.num_trees = b.Layout.num_trees
  && a.Layout.tree_root = b.Layout.tree_root
  && float_array_eq a.Layout.thresholds b.Layout.thresholds
  && a.Layout.features = b.Layout.features
  && a.Layout.shape_ids = b.Layout.shape_ids
  && a.Layout.child_ptr = b.Layout.child_ptr
  && float_array_eq a.Layout.leaf_values b.Layout.leaf_values
  && a.Layout.lut = b.Layout.lut
  && a.Layout.quant = b.Layout.quant

let equal a b =
  a.meta.model = b.meta.model
  && a.meta.target = b.meta.target
  && a.meta.schedule = b.meta.schedule
  && float_eq a.meta.us_per_row b.meta.us_per_row
  && a.loop_order = b.loop_order
  && a.num_threads = b.num_threads
  && a.num_outputs = b.num_outputs
  && float_eq a.base_score b.base_score
  && a.tree_class = b.tree_class
  && a.walk_depth = b.walk_depth
  && a.groups = b.groups
  && layout_eq a.layout b.layout
  && a.programs = b.programs
  && (match (a.quant, b.quant) with
     | None, None -> true
     | Some qa, Some qb ->
       qa.resident_k = qb.resident_k
       && float_array_eq qa.dev_bound qb.dev_bound
       && float_eq qa.tolerance qb.tolerance
     | _ -> false)

let size_bytes t = Bytes.length (encode t)
