module Program = Tb_hir.Program
module Schedule = Tb_hir.Schedule
module Forest = Tb_model.Forest
module Mir = Tb_mir.Mir

type t = {
  hir : Program.t;
  mir : Mir.t;
  layout : Layout.t;
  num_outputs : int;
  base_score : float;
  tree_class : int array;
  walk_depth : int array;
}

let assemble ?quant (hir : Program.t) mir layout =
  let forest = hir.Program.forest in
  let layout =
    match quant with None -> layout | Some q -> Layout.quantize q layout
  in
  {
    hir;
    mir;
    layout;
    num_outputs = Forest.num_outputs forest;
    base_score = forest.Forest.base_score;
    tree_class =
      Array.map
        (fun e -> Forest.class_of_tree forest e.Program.original_index)
        hir.Program.trees;
    walk_depth =
      Array.map (fun e -> Tb_hir.Tiled_tree.depth e.Program.tiled) hir.Program.trees;
  }

let lower_hir ?quant (hir : Program.t) =
  assemble ?quant hir (Mir.lower hir) (Layout.build hir)

let lower ?profiles ?quant forest schedule =
  lower_hir ?quant (Program.build ?profiles forest schedule)

let reference_predict t row =
  let out = Array.make t.num_outputs t.base_score in
  for tree = 0 to t.layout.Layout.num_trees - 1 do
    let cls = t.tree_class.(tree) in
    out.(cls) <- out.(cls) +. Layout.walk t.layout ~tree row
  done;
  out

(* End-to-end integer fast path over the quantized layout buffers: the
   semantics the quantized JIT must reproduce and the form the
   differential tests pin against [Tb_analysis.Numeric.qpredict_raw].
   Accumulation is exact (integer-valued floats below the certified
   accumulator bound), so tree order cannot change the result. *)
let reference_qpredict t row =
  match t.layout.Layout.quant with
  | None -> invalid_arg "Lower.reference_qpredict: layout is not quantized"
  | Some q ->
    let qrow = Layout.quantize_row q row in
    let out = Array.make t.num_outputs (Layout.quantize_leaf q t.base_score) in
    for tree = 0 to t.layout.Layout.num_trees - 1 do
      let cls = t.tree_class.(tree) in
      out.(cls) <- out.(cls) +. Layout.walk t.layout ~tree qrow
    done;
    let scale = Layout.dequant_scale q in
    Array.map (fun acc -> acc *. scale) out

let dump t =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  let schedule = t.hir.Program.schedule in
  Format.fprintf fmt "== schedule ==@.%s@.@." (Schedule.to_string schedule);
  Format.fprintf fmt "== MIR loop nest ==@.%s@." (Mir.to_string t.mir);
  Format.fprintf fmt "== LIR walk body ==@.%a@."
    (fun fmt () ->
      Ops.pp_walk_listing fmt ~layout:t.layout.Layout.kind
        ~tile_size:t.layout.Layout.tile_size ())
    ();
  Format.fprintf fmt "== register IR (per walk variant) ==@.";
  List.iter
    (fun (g, p) ->
      Format.fprintf fmt "-- group %d --@.%s@." g (Reg_ir.to_string p))
    (Reg_codegen.all_variants t.layout t.mir);
  Format.fprintf fmt "== layout ==@.kind: %s@.slots: %d@.model bytes: %d@.LUT shapes: %d@."
    (match t.layout.Layout.kind with
    | Layout.Array_kind -> "array"
    | Layout.Sparse_kind -> "sparse")
    (Layout.num_slots t.layout)
    (Layout.memory_bytes t.layout)
    (Array.length t.layout.Layout.lut);
  Format.pp_print_flush fmt ();
  Buffer.contents buf
