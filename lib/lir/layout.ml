module T = Tb_hir.Tiled_tree
module Program = Tb_hir.Program
module Schedule = Tb_hir.Schedule
module Lut = Tb_hir.Lut

type kind = Array_kind | Sparse_kind

(* Mirror of [Tb_analysis.Numeric.plan]'s layout-relevant fields (the
   dependency points the other way — Tb_analysis consumes Tb_lir — so the
   plan is replicated here and the differential tests pin the two
   quantizers bit for bit). *)
type qspec = {
  qbits : int;  (* 8 or 16 *)
  q_max : int;  (* 2^(qbits-1) - 1 *)
  feature_exp : int option array;
  leaf_exp : int;
}

type t = {
  kind : kind;
  tile_size : int;
  num_trees : int;
  tree_root : int array;
  thresholds : float array;
  features : int array;
  shape_ids : int array;
  child_ptr : int array;
  leaf_values : float array;
  lut : int array array;
  quant : qspec option;
}

let leaf_marker = -1
let unused_marker = -2
let max_array_slots = 1 lsl 22

(* ------------------------------------------------------------------ *)
(* Array layout                                                        *)
(* ------------------------------------------------------------------ *)

(* Local slot assignment for one tiled tree: node 0 -> slot 0, child c of
   slot s -> s*(nt+1) + c + 1. Returns (slots per node array, slab size). *)
let array_slots (tree : T.t) =
  let fanout = tree.T.tile_size + 1 in
  let slot = Array.make (Array.length tree.T.nodes) (-1) in
  let max_slot = ref 0 in
  let rec assign node s =
    if s > max_array_slots then
      invalid_arg
        "Layout: array-layout slab exceeds max_array_slots (use the sparse \
         layout for deep tilings)";
    slot.(node) <- s;
    max_slot := max !max_slot s;
    match tree.T.nodes.(node) with
    | T.Leaf _ -> ()
    | T.Tile tile ->
      Array.iteri (fun c child -> assign child ((s * fanout) + c + 1)) tile.T.children
  in
  assign 0 0;
  (slot, !max_slot + 1)

let build_array (p : Program.t) =
  let trees = Array.map (fun e -> e.Program.tiled) p.Program.trees in
  let nt = p.Program.schedule.Schedule.tile_size in
  let per_tree = Array.map array_slots trees in
  let offsets = Array.make (Array.length trees) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i (_, slab) ->
      offsets.(i) <- !total;
      total := !total + slab)
    per_tree;
  let slots = !total in
  let thresholds = Array.make (slots * nt) 0.0 in
  let features = Array.make (slots * nt) 0 in
  let shape_ids = Array.make slots unused_marker in
  Array.iteri
    (fun ti tree ->
      let slot_of, _ = per_tree.(ti) in
      let base = offsets.(ti) in
      Array.iteri
        (fun node_idx node ->
          let s = base + slot_of.(node_idx) in
          match node with
          | T.Leaf v ->
            shape_ids.(s) <- leaf_marker;
            (* Leaves are stored as full tiles (the paper's bloat): the
               value sits in lane 0 of the threshold vector. *)
            thresholds.(s * nt) <- v
          | T.Tile tile ->
            shape_ids.(s) <- tile.T.shape_id;
            for lane = 0 to nt - 1 do
              thresholds.((s * nt) + lane) <- tile.T.thresholds.(lane);
              features.((s * nt) + lane) <- tile.T.features.(lane)
            done)
        tree.T.nodes)
    trees;
  {
    kind = Array_kind;
    tile_size = nt;
    num_trees = Array.length trees;
    tree_root = offsets;
    thresholds;
    features;
    shape_ids;
    child_ptr = [||];
    leaf_values = [||];
    lut = Lut.table p.Program.lut;
    quant = None;
  }

(* ------------------------------------------------------------------ *)
(* Sparse layout                                                       *)
(* ------------------------------------------------------------------ *)

(* Worklist entries: a real tiled node sitting in a preassigned slot, or a
   synthesized hop tile carrying a leaf value. *)
type sparse_item =
  | Real of int  (* tiled node index (always a Tile) *)
  | Hop of float

let build_sparse (p : Program.t) =
  let trees = Array.map (fun e -> e.Program.tiled) p.Program.trees in
  let nt = p.Program.schedule.Schedule.tile_size in
  let dummy_shape = Tb_hir.Shape.Node (None, None) in
  let dummy_shape_id = Lut.shape_id p.Program.lut dummy_shape in
  (* Growable buffers. *)
  let num_slots = ref 0 in
  let leaves = ref [] and num_leaves = ref 0 in
  let push_leaf v =
    leaves := v :: !leaves;
    let i = !num_leaves in
    incr num_leaves;
    i
  in
  (* Reserve a contiguous block of [n] slots; contents are set later via the
     returned setter list. *)
  let reserved = Hashtbl.create 1024 in
  let reserve n =
    let start = !num_slots in
    num_slots := !num_slots + n;
    for i = start to start + n - 1 do
      Hashtbl.replace reserved i None
    done;
    start
  in
  let tree_root = Array.make (Array.length trees) 0 in
  Array.iteri
    (fun ti (tree : T.t) ->
      match tree.T.nodes.(0) with
      | T.Leaf v -> tree_root.(ti) <- -1 - push_leaf v
      | T.Tile _ ->
        let root_slot = reserve 1 in
        tree_root.(ti) <- root_slot;
        let queue = Queue.create () in
        Queue.add (root_slot, Real 0) queue;
        while not (Queue.is_empty queue) do
          let slot, item = Queue.pop queue in
          let fill ~shape_id ~thresholds ~features ~child_ptr =
            Hashtbl.replace reserved slot
              (Some (shape_id, thresholds, features, child_ptr))
          in
          match item with
          | Hop v ->
            (* A hop tile: single always-true dummy predicate, both exits
               lead to leaves holding the original leaf's value. *)
            let l0 = push_leaf v in
            let _l1 = push_leaf v in
            fill ~shape_id:dummy_shape_id
              ~thresholds:(Array.make nt infinity)
              ~features:(Array.make nt 0)
              ~child_ptr:(-l0 - 1)
          | Real node_idx ->
            let tile =
              match tree.T.nodes.(node_idx) with
              | T.Tile tile -> tile
              | T.Leaf _ -> assert false
            in
            let children = tile.T.children in
            let all_leaves =
              Array.for_all
                (fun c -> match tree.T.nodes.(c) with T.Leaf _ -> true | T.Tile _ -> false)
                children
            in
            let child_ptr =
              if all_leaves then begin
                let first = ref None in
                Array.iter
                  (fun c ->
                    match tree.T.nodes.(c) with
                    | T.Leaf v ->
                      let idx = push_leaf v in
                      if !first = None then first := Some idx
                    | T.Tile _ -> assert false)
                  children;
                -Option.get !first - 1
              end
              else begin
                (* Mixed or all-tile children: leaf children become hop
                   tiles so the block is homogeneous. *)
                let start = reserve (Array.length children) in
                Array.iteri
                  (fun c child ->
                    let item =
                      match tree.T.nodes.(child) with
                      | T.Leaf v -> Hop v
                      | T.Tile _ -> Real child
                    in
                    Queue.add (start + c, item) queue)
                  children;
                start
              end
            in
            fill ~shape_id:tile.T.shape_id ~thresholds:tile.T.thresholds
              ~features:tile.T.features ~child_ptr
        done)
    trees;
  let n = !num_slots in
  let thresholds = Array.make (n * nt) 0.0 in
  let features = Array.make (n * nt) 0 in
  let shape_ids = Array.make n unused_marker in
  let child_ptr = Array.make n 0 in
  for s = 0 to n - 1 do
    match Hashtbl.find reserved s with
    | Some (sid, thr, fts, cp) ->
      shape_ids.(s) <- sid;
      child_ptr.(s) <- cp;
      for lane = 0 to nt - 1 do
        thresholds.((s * nt) + lane) <- thr.(lane);
        features.((s * nt) + lane) <- fts.(lane)
      done
    | None -> invalid_arg "Layout.build_sparse: unfilled slot"
  done;
  let leaf_values = Array.make !num_leaves 0.0 in
  List.iteri
    (fun i v -> leaf_values.(!num_leaves - 1 - i) <- v)
    !leaves;
  {
    kind = Sparse_kind;
    tile_size = nt;
    num_trees = Array.length trees;
    tree_root;
    thresholds;
    features;
    shape_ids;
    child_ptr;
    leaf_values;
    lut = Lut.table p.Program.lut;
    quant = None;
  }

let build_kind kind p =
  match kind with
  | Array_kind -> build_array p
  | Sparse_kind -> build_sparse p

let build (p : Program.t) =
  match p.Program.schedule.Schedule.layout with
  | Schedule.Array_layout -> build_array p
  | Schedule.Sparse_layout -> build_sparse p

(* ------------------------------------------------------------------ *)
(* Walking                                                             *)
(* ------------------------------------------------------------------ *)

let comparison_bits t slot row =
  let nt = t.tile_size in
  let bits = ref 0 in
  for lane = 0 to nt - 1 do
    let b = if row.(t.features.((slot * nt) + lane)) < t.thresholds.((slot * nt) + lane) then 1 else 0 in
    bits := !bits lor (b lsl (nt - 1 - lane))
  done;
  !bits

let walk_with_trace t ~tree row ~on_slot =
  match t.kind with
  | Array_kind ->
    let fanout = t.tile_size + 1 in
    let base = t.tree_root.(tree) in
    let rec go local =
      let s = base + local in
      on_slot s;
      let sid = t.shape_ids.(s) in
      if sid = leaf_marker then t.thresholds.(s * t.tile_size)
      else begin
        let bits = comparison_bits t s row in
        let c = t.lut.(sid).(bits) in
        go ((local * fanout) + c + 1)
      end
    in
    go 0
  | Sparse_kind ->
    let r = t.tree_root.(tree) in
    if r < 0 then t.leaf_values.(-r - 1)
    else begin
      let rec go s =
        on_slot s;
        let bits = comparison_bits t s row in
        let c = t.lut.(t.shape_ids.(s)).(bits) in
        let p = t.child_ptr.(s) in
        if p >= 0 then go (p + c) else t.leaf_values.(-p - 1 + c)
      in
      go r
    end

let walk t ~tree row = walk_with_trace t ~tree row ~on_slot:ignore

(* ------------------------------------------------------------------ *)
(* Stride facts                                                        *)
(* ------------------------------------------------------------------ *)

type stride_facts = {
  lane_stride : int;
  tile_advance : (int * int) option;
  leaf_advance : (int * int) option;
}

(* Children a LUT row can actually select, restricted to the valid child
   range. An out-of-range shape id (corrupt layout) degrades to the full
   child range so the facts stay conservative — the closure check (L02x)
   reports the corruption separately. *)
let reachable_children t sid =
  let nt = t.tile_size in
  let full = List.init (nt + 1) Fun.id in
  if sid < 0 || sid >= Array.length t.lut then full
  else
    let row = t.lut.(sid) in
    let cs =
      Array.to_list row |> List.filter (fun c -> c >= 0 && c <= nt)
      |> List.sort_uniq compare
    in
    if cs = [] then full else cs

let stride_facts t =
  match t.kind with
  | Array_kind ->
    { lane_stride = t.tile_size; tile_advance = None; leaf_advance = None }
  | Sparse_kind ->
    let tile = ref None and leaf = ref None in
    let widen r v =
      match !r with
      | None -> r := Some (v, v)
      | Some (lo, hi) -> r := Some (min lo v, max hi v)
    in
    Array.iteri
      (fun s cp ->
        let children = reachable_children t t.shape_ids.(s) in
        if cp >= 0 then List.iter (fun c -> widen tile (cp + c)) children
        else List.iter (fun c -> widen leaf (-cp - 1 + c)) children)
      t.child_ptr;
    { lane_stride = t.tile_size; tile_advance = !tile; leaf_advance = !leaf }

(* ------------------------------------------------------------------ *)
(* Quantization (the integer fast path's layout half)                  *)
(* ------------------------------------------------------------------ *)

(* Bit-for-bit replica of [Tb_analysis.Numeric]'s fixed-point rounding:
   round-half-away, NaN to 0, saturation at [q_max] / [-q_max - 1]. The
   quantized buffers store these integers as floats — every integer the
   certified plan can produce is below 2^31, so float compares and adds
   on them are exact and the existing walk kernels execute integer
   semantics unchanged. *)
let pow2 e = Float.ldexp 1.0 e

let quantize_scaled ~q_max scaled =
  let v = Float.round scaled in
  if Float.is_nan v then 0
  else if v >= float_of_int q_max then q_max
  else if v <= float_of_int (-q_max - 1) then -q_max - 1
  else int_of_float v

let quantize_threshold (q : qspec) ~feature x =
  (* Infinite thresholds are routing markers, not model constants: dummy
     padding tiles, hop tiles and unused tile lanes compare against +inf
     so their comparison bit is constant. Quantizing +inf to the
     saturated q_max would break the constancy exactly on saturated rows
     (q_max < q_max is false), so the markers pass through untouched —
     a finite quantized row value still compares against them the same
     way every float row does. *)
  if x = infinity || x = neg_infinity then x
  else
    let e = match q.feature_exp.(feature) with Some e -> e | None -> 0 in
    float_of_int (quantize_scaled ~q_max:q.q_max (x *. pow2 e))

let quantize_leaf (q : qspec) v =
  float_of_int (quantize_scaled ~q_max:q.q_max (v *. pow2 q.leaf_exp))

let quantize_row (q : qspec) row =
  Array.mapi
    (fun f x ->
      match if f < Array.length q.feature_exp then q.feature_exp.(f) else None with
      | None -> 0.0
      | Some e -> float_of_int (quantize_scaled ~q_max:q.q_max (x *. pow2 e)))
    row

let dequant_scale (q : qspec) = pow2 (-q.leaf_exp)

let quantize_row_int (q : qspec) row =
  Array.mapi
    (fun f x ->
      match if f < Array.length q.feature_exp then q.feature_exp.(f) else None with
      | None -> 0
      | Some e -> quantize_scaled ~q_max:q.q_max (x *. pow2 e))
    row

let quantize_leaf_int (q : qspec) v =
  quantize_scaled ~q_max:q.q_max (v *. pow2 q.leaf_exp)

(* Per-batch row quantization is on the fast path's critical path (it
   runs once per row per predict call), so the per-feature 2^e scales
   are hoisted out of the loop — [ldexp] per element costs as much as a
   tile step on wide-feature models. Unused features keep scale 0, which
   doubles as the None marker ([pow2] never returns 0). *)
let row_quantizer (q : qspec) =
  let nf = Array.length q.feature_exp in
  let scale = Array.make nf 0.0 in
  Array.iteri
    (fun f e -> match e with Some e -> scale.(f) <- pow2 e | None -> ())
    q.feature_exp;
  let q_max = q.q_max in
  fun (row : float array) ->
    Array.init nf (fun f ->
        let s = Array.unsafe_get scale f in
        if s = 0.0 then 0 else quantize_scaled ~q_max (row.(f) *. s))

let quantize (q : qspec) t =
  if t.quant <> None then invalid_arg "Layout.quantize: already quantized";
  if q.qbits <> 8 && q.qbits <> 16 then
    invalid_arg "Layout.quantize: qbits must be 8 or 16";
  let nt = t.tile_size in
  let thresholds = Array.copy t.thresholds in
  Array.iteri
    (fun s sid ->
      if sid = leaf_marker then
        (* Array-layout leaf slot: the value sits in threshold lane 0. *)
        thresholds.(s * nt) <- quantize_leaf q t.thresholds.(s * nt)
      else if sid <> unused_marker then
        for lane = 0 to nt - 1 do
          let i = (s * nt) + lane in
          thresholds.(i) <- quantize_threshold q ~feature:t.features.(i) t.thresholds.(i)
        done)
    t.shape_ids;
  let leaf_values = Array.map (quantize_leaf q) t.leaf_values in
  { t with thresholds; leaf_values; quant = Some q }

(* ------------------------------------------------------------------ *)
(* Narrow buffers (the materialized int8/int16 execution form)         *)
(* ------------------------------------------------------------------ *)

(* The quantized float-trick buffers above stay authoritative — they are
   what [walk] (the reference semantics), the interpreter and the Pack
   wire format consume. The narrow form re-expresses them at the plan's
   actual width for the JIT's integer kernels: thresholds and leaves in
   int8/int16 Bigarrays (2-8x less value traffic than the float64
   buffers), quantized rows as int arrays. The only values a narrow
   element cannot carry are the ±inf routing markers, so those are
   re-encoded exactly:

   - [-inf] lanes (never true) store [-q_max - 1], the smallest value a
     quantized row can take — [qrow < -q_max - 1] is false for every
     row, just like [qrow < -inf]. A genuinely saturated threshold at
     [-q_max - 1] already compares false against every row in the float
     domain too, so the merge is lossless.
   - [+inf] lanes (always true) also store [-q_max - 1] (contributing a
     0 bit) and set their lane's bit in the slot's [always] mask, which
     the narrow comparison ORs in. *)

type narrow8 = (int, Bigarray.int8_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
type narrow16 = (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t

type narrow =
  | Narrow8 of { thr : narrow8; leaves : narrow8; always : int array }
  | Narrow16 of { thr : narrow16; leaves : narrow16; always : int array }

let narrow t =
  match t.quant with
  | None -> invalid_arg "Layout.narrow: float layout has no narrow form"
  | Some q ->
    let nt = t.tile_size in
    let slots = Array.length t.shape_ids in
    let always = Array.make slots 0 in
    let never = -q.q_max - 1 in
    let thr_i = Array.make (Array.length t.thresholds) 0 in
    Array.iteri
      (fun s sid ->
        if sid = leaf_marker then
          (* Array-layout leaf slot: the (finite) leaf sits in lane 0. *)
          thr_i.(s * nt) <- int_of_float t.thresholds.(s * nt)
        else if sid <> unused_marker then
          for lane = 0 to nt - 1 do
            let i = (s * nt) + lane in
            let x = t.thresholds.(i) in
            if x = infinity then begin
              always.(s) <- always.(s) lor (1 lsl (nt - 1 - lane));
              thr_i.(i) <- never
            end
            else if x = neg_infinity then thr_i.(i) <- never
            else thr_i.(i) <- int_of_float x
          done)
      t.shape_ids;
    let leaf_i = Array.map int_of_float t.leaf_values in
    let fill kind a =
      let b = Bigarray.Array1.create kind Bigarray.c_layout (Array.length a) in
      Array.iteri (fun i v -> Bigarray.Array1.set b i v) a;
      b
    in
    if q.qbits = 8 then
      Narrow8
        {
          thr = fill Bigarray.int8_signed thr_i;
          leaves = fill Bigarray.int8_signed leaf_i;
          always;
        }
    else
      Narrow16
        {
          thr = fill Bigarray.int16_signed thr_i;
          leaves = fill Bigarray.int16_signed leaf_i;
          always;
        }

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let num_slots t = Array.length t.shape_ids

let memory_bytes t =
  let slots = num_slots t in
  let nt = t.tile_size in
  (* Quantized layouts store thresholds and leaves at the plan's width
     instead of float32. *)
  let value_bytes = match t.quant with None -> 4 | Some q -> q.qbits / 8 in
  let per_slot =
    (* thresholds + features i16 per lane, shape id i16, and the sparse
       layout's i32 child pointer. *)
    (nt * (value_bytes + 2)) + 2
    + (match t.kind with Sparse_kind -> 4 | Array_kind -> 0)
  in
  (slots * per_slot) + (value_bytes * Array.length t.leaf_values)

let resident_tiles t ~k =
  if k < 0 then invalid_arg "Layout.resident_tiles: negative depth";
  let nt = t.tile_size in
  let count = ref 0 in
  let fanout = nt + 1 in
  for tree = 0 to t.num_trees - 1 do
    match t.kind with
    | Array_kind ->
      let base = t.tree_root.(tree) in
      let rec go local level =
        if level < k then begin
          let s = base + local in
          if t.shape_ids.(s) >= 0 then begin
            incr count;
            List.iter
              (fun c -> go ((local * fanout) + c + 1) (level + 1))
              (reachable_children t t.shape_ids.(s))
          end
        end
      in
      go 0 0
    | Sparse_kind ->
      let rec go s level =
        if level < k then begin
          incr count;
          let p = t.child_ptr.(s) in
          if p >= 0 then
            List.iter
              (fun c -> go (p + c) (level + 1))
              (reachable_children t t.shape_ids.(s))
        end
      in
      let r = t.tree_root.(tree) in
      if r >= 0 then go r 0
  done;
  !count
