(** The full compilation pipeline below the model level: HIR → MIR → LIR.

    The result bundles everything a backend needs: the laid-out model
    buffers, the loop-nest plan, per-tree aggregation classes and the walk
    op templates. {!Tb_vm.Jit} turns it into executable code;
    {!Tb_vm.Profiler} executes it while counting events. *)

type t = {
  hir : Tb_hir.Program.t;
  mir : Tb_mir.Mir.t;
  layout : Layout.t;
  num_outputs : int;
  base_score : float;
  tree_class : int array;
      (** per layout tree index (= reordered position): output class its
          prediction accumulates into *)
  walk_depth : int array;  (** per tree: max tiled walk depth *)
}

val lower :
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?quant:Layout.qspec ->
  Tb_model.Forest.t ->
  Tb_hir.Schedule.t ->
  t
(** Run the whole pipeline on a model. With [?quant], the layout buffers
    are rewritten to the plan's fixed-point integers
    ({!Layout.quantize}) — the integer fast path's program form. *)

val lower_hir : ?quant:Layout.qspec -> Tb_hir.Program.t -> t
(** Lower an already-built HIR program (lets callers reuse one HIR across
    experiments). *)

val assemble :
  ?quant:Layout.qspec -> Tb_hir.Program.t -> Tb_mir.Mir.t -> Layout.t -> t
(** Bundle already-lowered stages into a backend-ready program — used by
    {!Tb_core.Passman}, which runs the MIR passes one at a time with
    verification between them instead of calling {!Tb_mir.Mir.lower}.
    [?quant] quantizes the supplied (float) layout first. *)

val reference_predict : t -> float array -> float array
(** Predict by walking the layout directly (no backend) — must equal
    {!Tb_model.Forest.predict_raw}; the anchor for backend tests. *)

val reference_qpredict : t -> float array -> float array
(** The quantized analogue over a quantized layout: quantize the row,
    accumulate the integer-valued walk results from the certified base
    score, dequantize exactly. Must equal
    [Tb_analysis.Numeric.qpredict_raw] bit for bit; the anchor for the
    quantized backend tests. @raise Invalid_argument on a float layout. *)

val dump : t -> string
(** Human-readable dump: schedule, MIR loop nest, walk listing, the
    verified register IR of every walk variant, and layout statistics
    (the CLI's [compile] subcommand prints this). *)
