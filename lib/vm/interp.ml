module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Mir = Tb_mir.Mir
module Schedule = Tb_hir.Schedule
module Reorder = Tb_hir.Reorder
open Tb_lir.Reg_ir

type predictor = float array array -> float array array

(* Machine state: one register file per class, reused across walks. *)
type machine = {
  iregs : int array;
  fregs : float array;
  (* vector registers: int and float lanes in separate stores, selected by
     the instruction's type (the verifier guarantees consistency) *)
  vi : int array array;
  vf : float array array;
  mutable row : float array;
  lay : Layout.t;
  lut_width : int;  (* entries per LUT row: 2^tile_size *)
  trace : buffer -> int -> unit;
      (* observes every concrete buffer access (vector loads per lane, LUT
         accesses by flat index) — the soundness harness's probe *)
}

let make_machine ?(trace = fun _ _ -> ()) (p : walk_program) lay =
  let nt = p.tile_size in
  {
    iregs = Array.make p.num_iregs 0;
    fregs = Array.make p.num_fregs 0.0;
    vi = Array.init p.num_vregs (fun _ -> Array.make nt 0);
    vf = Array.init p.num_vregs (fun _ -> Array.make nt 0.0);
    row = [||];
    lay;
    lut_width = 1 lsl nt;
    trace;
  }

let iload m buffer idx =
  m.trace buffer idx;
  match buffer with
  | Shape_ids -> m.lay.Layout.shape_ids.(idx)
  | Child_ptrs -> m.lay.Layout.child_ptr.(idx)
  | Feature_ids -> m.lay.Layout.features.(idx)
  | Lut -> m.lay.Layout.lut.(idx / m.lut_width).(idx mod m.lut_width)
  | Tree_roots -> m.lay.Layout.tree_root.(idx)
  | Row ->
    (* Resident-prefix programs read the quantized row as integers; the
       stored values are integer-valued floats (Layout.quantize_row), so
       the truncation is exact. *)
    int_of_float m.row.(idx)
  | Thresholds | Leaf_values ->
    invalid_arg "Interp: integer load from a float buffer"

let fload m buffer idx =
  m.trace buffer idx;
  match buffer with
  | Thresholds -> m.lay.Layout.thresholds.(idx)
  | Leaf_values -> m.lay.Layout.leaf_values.(idx)
  | Row -> m.row.(idx)
  | Shape_ids | Child_ptrs | Feature_ids | Lut | Tree_roots ->
    invalid_arg "Interp: float load from an integer buffer"

let eval_iexpr m = function
  | Iconst c -> c
  | Imov a -> m.iregs.(a)
  | Iadd (a, b) -> m.iregs.(a) + m.iregs.(b)
  | Isub (a, b) -> m.iregs.(a) - m.iregs.(b)
  | Imul_const (a, c) -> m.iregs.(a) * c
  | Iadd_const (a, c) -> m.iregs.(a) + c
  | Iload (b, a) -> iload m b m.iregs.(a)
  | Movemask v ->
    let lanes = m.vi.(v) in
    let nt = Array.length lanes in
    let bits = ref 0 in
    for lane = 0 to nt - 1 do
      bits := !bits lor (lanes.(lane) lsl (nt - 1 - lane))
    done;
    !bits

let eval_cond m = function
  | Ige (r, c) -> m.iregs.(r) >= c
  | Ieq_load (b, r, c) -> iload m b m.iregs.(r) = c

let exec_vexpr m dst = function
  | Vload_f (b, a) ->
    let base = m.iregs.(a) in
    let lanes = m.vf.(dst) in
    for lane = 0 to Array.length lanes - 1 do
      lanes.(lane) <- fload m b (base + lane)
    done
  | Vload_i (b, a) ->
    let base = m.iregs.(a) in
    let lanes = m.vi.(dst) in
    for lane = 0 to Array.length lanes - 1 do
      lanes.(lane) <- iload m b (base + lane)
    done
  | Gather (b, idx) ->
    let indices = m.vi.(idx) in
    let lanes = m.vf.(dst) in
    for lane = 0 to Array.length lanes - 1 do
      lanes.(lane) <- fload m b indices.(lane)
    done
  | Vcmp_lt (a, b) ->
    let xa = m.vf.(a) and xb = m.vf.(b) in
    let lanes = m.vi.(dst) in
    for lane = 0 to Array.length lanes - 1 do
      lanes.(lane) <- (if xa.(lane) < xb.(lane) then 1 else 0)
    done

let rec exec_stmts m body =
  List.iter
    (fun stmt ->
      match stmt with
      | Iset (r, e) -> m.iregs.(r) <- eval_iexpr m e
      | Fset (r, Fload (b, a)) -> m.fregs.(r) <- fload m b m.iregs.(a)
      | Vset (r, e) -> exec_vexpr m r e
      | While (cond, body) ->
        while eval_cond m cond do
          exec_stmts m body
        done
      | If (cond, t, e) -> exec_stmts m (if eval_cond m cond then t else e)
      | Repeat (n, body) ->
        for _ = 1 to n do
          exec_stmts m body
        done)
    body

let run_walk_machine m (p : walk_program) ~tree ~row =
  m.row <- row;
  m.iregs.(base_reg) <- m.lay.Layout.tree_root.(tree);
  (* Array layout: cursor starts at local slot 0; sparse: at the root slot
     (or its leaf code for constant trees). *)
  m.iregs.(state_reg) <-
    (match m.lay.Layout.kind with
    | Layout.Array_kind -> 0
    | Layout.Sparse_kind -> m.lay.Layout.tree_root.(tree));
  exec_stmts m p.body;
  m.fregs.(result_reg)

let run_walk p (lp : Lower.t) ~tree ~row =
  let m = make_machine p lp.Lower.layout in
  run_walk_machine m p ~tree ~row

let compile ?trace (lp : Lower.t) =
  let lay = lp.Lower.layout in
  let variants = Tb_lir.Reg_codegen.all_variants lay lp.Lower.mir in
  let machines =
    Array.of_list
      (List.map
         (fun (g, p) ->
           let trace =
             Option.map (fun t buffer idx -> t ~group:g buffer idx) trace
           in
           (p, make_machine ?trace p lay))
         variants)
  in
  fun rows ->
    let n = Array.length rows in
    let out =
      Array.init n (fun _ -> Array.make lp.Lower.num_outputs lp.Lower.base_score)
    in
    let plans = lp.Lower.mir.Mir.group_plans in
    let walk_group gi tree row =
      let p, m = machines.(gi) in
      run_walk_machine m p ~tree ~row
    in
    (match lp.Lower.mir.Mir.loop_order with
    | Schedule.One_tree_at_a_time ->
      Array.iteri
        (fun gi (plan : Mir.group_plan) ->
          Array.iter
            (fun tree ->
              let cls = lp.Lower.tree_class.(tree) in
              for i = 0 to n - 1 do
                out.(i).(cls) <- out.(i).(cls) +. walk_group gi tree rows.(i)
              done)
            plan.Mir.group.Reorder.positions)
        plans
    | Schedule.One_row_at_a_time ->
      for i = 0 to n - 1 do
        Array.iteri
          (fun gi (plan : Mir.group_plan) ->
            Array.iter
              (fun tree ->
                let cls = lp.Lower.tree_class.(tree) in
                out.(i).(cls) <- out.(i).(cls) +. walk_group gi tree rows.(i))
              plan.Mir.group.Reorder.positions)
          plans
      done);
    out

let dump_programs (lp : Lower.t) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (g, p) ->
      Buffer.add_string buf (Printf.sprintf "-- group %d --\n" g);
      Buffer.add_string buf (to_string p);
      Buffer.add_char buf '\n')
    (Tb_lir.Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir);
  Buffer.contents buf
