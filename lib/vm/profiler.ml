module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Ops = Tb_lir.Ops
module Mir = Tb_mir.Mir
module Schedule = Tb_hir.Schedule
module Reorder = Tb_hir.Reorder
module Cache = Tb_cpu.Cache
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model

type state = {
  lay : Layout.t;
  cache : Cache.t;
  rows : float array array;
  num_features : int;
  (* address map: slots are an array of structs (as in the paper §V-B) —
     one struct holds a tile's thresholds, feature indices, shape id and
     (sparse) child pointer contiguously. *)
  struct_bytes : int;
  slots_base : int;
  leaf_base : int;
  lut_base : int;
  rows_base : int;
  mutable steps_checked : int;
  mutable steps_unchecked : int;
  mutable leaf_fetches : int;
  mutable walks_checked : int;
  mutable walks_unrolled : int;
  mutable critical_steps : int;
}

let align a = (a + 63) land lnot 63

let make_state ~target (lp : Lower.t) rows =
  let lay = lp.Lower.layout in
  let nt = lay.Layout.tile_size in
  let slots = Layout.num_slots lay in
  let struct_bytes =
    (nt * (4 + 2)) + 2
    + (match lay.Layout.kind with Layout.Sparse_kind -> 4 | Layout.Array_kind -> 0)
  in
  let slots_base = 0 in
  let leaf_base = align (slots_base + (slots * struct_bytes)) in
  let lut_base = align (leaf_base + (4 * Array.length lay.Layout.leaf_values)) in
  let lut_bytes = Array.length lay.Layout.lut * (1 lsl nt) * 2 in
  let rows_base = align (lut_base + lut_bytes) in
  let num_features = if Array.length rows = 0 then 0 else Array.length rows.(0) in
  {
    lay;
    cache =
      Cache.create ~line_bytes:target.Config.l1_line_bytes ~ways:target.Config.l1_ways
        ~size_bytes:target.Config.l1_size_bytes ();
    rows;
    num_features;
    struct_bytes;
    slots_base;
    leaf_base;
    lut_base;
    rows_base;
    steps_checked = 0;
    steps_unchecked = 0;
    leaf_fetches = 0;
    walks_checked = 0;
    walks_unrolled = 0;
    critical_steps = 0;
  }

(* Memory traffic of one tile evaluation at [slot] on behalf of [row_idx]:
   the whole tile struct, the row features gathered, and the LUT entry. *)
let touch_tile_step st slot row_idx =
  let nt = st.lay.Layout.tile_size in
  Cache.access_range st.cache (st.slots_base + (slot * st.struct_bytes)) st.struct_bytes;
  (* Gather: one access per lane into the row. *)
  for lane = 0 to nt - 1 do
    let f = st.lay.Layout.features.((slot * nt) + lane) in
    ignore
      (Cache.access st.cache
         (st.rows_base + (((row_idx * st.num_features) + f) * 4)))
  done;
  let sid = st.lay.Layout.shape_ids.(slot) in
  ignore
    (Cache.access st.cache (st.lut_base + (((sid * (1 lsl nt)) + 0) * 2)))

let touch_leaf st ~slot ~leaf_idx =
  match st.lay.Layout.kind with
  | Layout.Array_kind ->
    ignore (Cache.access st.cache (st.slots_base + (slot * st.struct_bytes)))
  | Layout.Sparse_kind ->
    ignore (Cache.access st.cache (st.leaf_base + (leaf_idx * 4)))

(* Walk one (tree,row), touching memory, and return the number of tile
   steps taken. *)
let traced_walk st tree row_idx =
  let lay = st.lay in
  let row = st.rows.(row_idx) in
  let steps = ref 0 in
  (match lay.Layout.kind with
  | Layout.Array_kind ->
    let base = lay.Layout.tree_root.(tree) in
    let local = ref 0 in
    let continue = ref true in
    while !continue do
      let s = base + !local in
      if lay.Layout.shape_ids.(s) = Layout.leaf_marker then begin
        touch_leaf st ~slot:s ~leaf_idx:0;
        continue := false
      end
      else begin
        touch_tile_step st s row_idx;
        incr steps;
        let bits = Layout.comparison_bits lay s row in
        let c = lay.Layout.lut.(lay.Layout.shape_ids.(s)).(bits) in
        local := (!local * (lay.Layout.tile_size + 1)) + c + 1
      end
    done
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    if root < 0 then touch_leaf st ~slot:0 ~leaf_idx:(-root - 1)
    else begin
      let s = ref root in
      let continue = ref true in
      while !continue do
        touch_tile_step st !s row_idx;
        incr steps;
        let bits = Layout.comparison_bits lay !s row in
        let c = lay.Layout.lut.(lay.Layout.shape_ids.(!s)).(bits) in
        let p = lay.Layout.child_ptr.(!s) in
        if p >= 0 then s := p + c
        else begin
          touch_leaf st ~slot:0 ~leaf_idx:(-p - 1 + c);
          continue := false
        end
      done
    end);
  st.leaf_fetches <- st.leaf_fetches + 1;
  !steps

let account_walk st (walk : Mir.walk_kind) steps =
  match walk with
  | Mir.Loop_walk ->
    st.steps_checked <- st.steps_checked + steps;
    st.walks_checked <- st.walks_checked + 1
  | Mir.Unrolled_walk _ ->
    st.steps_unchecked <- st.steps_unchecked + steps;
    st.walks_unrolled <- st.walks_unrolled + 1
  | Mir.Peeled_walk { peel } ->
    let unchecked = min peel steps in
    st.steps_unchecked <- st.steps_unchecked + unchecked;
    st.steps_checked <- st.steps_checked + (steps - unchecked);
    st.walks_checked <- st.walks_checked + 1

let run_trace st (lp : Lower.t) rows =
  let n = Array.length rows in
  let plans = lp.Lower.mir.Mir.group_plans in
  match lp.Lower.mir.Mir.loop_order with
  | Schedule.One_tree_at_a_time ->
    Array.iter
      (fun (plan : Mir.group_plan) ->
        let k = max 1 plan.Mir.interleave in
        Array.iter
          (fun tree ->
            let i = ref 0 in
            while !i < n do
              let count = min k (n - !i) in
              let longest = ref 0 in
              for j = 0 to count - 1 do
                let steps = traced_walk st tree (!i + j) in
                account_walk st plan.Mir.walk steps;
                longest := max !longest steps
              done;
              st.critical_steps <- st.critical_steps + !longest;
              i := !i + count
            done)
          plan.Mir.group.Reorder.positions)
      plans
  | Schedule.One_row_at_a_time ->
    for i = 0 to n - 1 do
      Array.iter
        (fun (plan : Mir.group_plan) ->
          let k = max 1 plan.Mir.interleave in
          let positions = plan.Mir.group.Reorder.positions in
          let t = ref 0 in
          while !t < Array.length positions do
            let count = min k (Array.length positions - !t) in
            let longest = ref 0 in
            for j = 0 to count - 1 do
              let steps = traced_walk st positions.(!t + j) i in
              account_walk st plan.Mir.walk steps;
              longest := max !longest steps
            done;
            st.critical_steps <- st.critical_steps + !longest;
            t := !t + count
          done
        )
        plans
    done

let reset_counters st =
  st.steps_checked <- 0;
  st.steps_unchecked <- 0;
  st.leaf_fetches <- 0;
  st.walks_checked <- 0;
  st.walks_unrolled <- 0;
  st.critical_steps <- 0;
  Cache.reset_stats st.cache

let profile ~target ?(warm_start = false) (lp : Lower.t) rows =
  let st = make_state ~target lp rows in
  let n = Array.length rows in
  let plans = lp.Lower.mir.Mir.group_plans in
  (* A small row sample starts on a cold simulated L1, so its miss count is
     dominated by compulsory misses that a full batch amortizes away.
     [warm_start] primes the cache with one identical pass, then counts
     only the steady-state pass. Note this does not remove *per-batch*
     fixed costs (the tree-major model stream): callers that scale a
     sample to a larger batch should prefer {!extrapolate}, which fits
     them out; warm_start + {!scale} is the fallback when the sample is
     too small to split into two points. *)
  if warm_start then begin
    run_trace st lp rows;
    reset_counters st
  end;
  run_trace st lp rows;
  let code_bytes =
    Array.fold_left
      (fun acc (plan : Mir.group_plan) ->
        acc
        + Ops.estimated_code_bytes ~layout:st.lay.Layout.kind
            ~tile_size:st.lay.Layout.tile_size plan.Mir.walk)
      256 plans
  in
  {
    Cost_model.rows = n;
    walks_checked = st.walks_checked;
    walks_unrolled = st.walks_unrolled;
    steps_checked = st.steps_checked;
    steps_unchecked = st.steps_unchecked;
    leaf_fetches = st.leaf_fetches;
    critical_steps = st.critical_steps;
    l1 = Cache.stats st.cache;
    code_bytes;
    model_bytes = Layout.memory_bytes st.lay;
    tile_size = st.lay.Layout.tile_size;
    layout = st.lay.Layout.kind;
  }

let extrapolate (w1 : Cost_model.workload) (w2 : Cost_model.workload) ~rows =
  let n1 = w1.Cost_model.rows and n2 = w2.Cost_model.rows in
  if n1 < 1 || n2 <= n1 then
    invalid_arg "Profiler.extrapolate: need 1 <= rows w1 < rows w2";
  let t = float_of_int (rows - n1) /. float_of_int (n2 - n1) in
  let e f1 f2 =
    max 0
      (int_of_float
         (Float.round (float_of_int f1 +. (float_of_int (f2 - f1) *. t))))
  in
  let accesses = e w1.Cost_model.l1.Cache.accesses w2.Cost_model.l1.Cache.accesses in
  let misses =
    min accesses (e w1.Cost_model.l1.Cache.misses w2.Cost_model.l1.Cache.misses)
  in
  {
    w2 with
    Cost_model.rows;
    walks_checked = e w1.Cost_model.walks_checked w2.Cost_model.walks_checked;
    walks_unrolled = e w1.Cost_model.walks_unrolled w2.Cost_model.walks_unrolled;
    steps_checked = e w1.Cost_model.steps_checked w2.Cost_model.steps_checked;
    steps_unchecked = e w1.Cost_model.steps_unchecked w2.Cost_model.steps_unchecked;
    leaf_fetches = e w1.Cost_model.leaf_fetches w2.Cost_model.leaf_fetches;
    critical_steps = e w1.Cost_model.critical_steps w2.Cost_model.critical_steps;
    l1 = { Cache.accesses; hits = accesses - misses; misses };
  }

let scale (w : Cost_model.workload) factor =
  let s x = int_of_float (Float.round (float_of_int x *. factor)) in
  {
    w with
    Cost_model.rows = s w.Cost_model.rows;
    walks_checked = s w.Cost_model.walks_checked;
    walks_unrolled = s w.Cost_model.walks_unrolled;
    steps_checked = s w.Cost_model.steps_checked;
    steps_unchecked = s w.Cost_model.steps_unchecked;
    leaf_fetches = s w.Cost_model.leaf_fetches;
    critical_steps = s w.Cost_model.critical_steps;
    l1 =
      {
        Cache.accesses = s w.Cost_model.l1.Cache.accesses;
        hits = s w.Cost_model.l1.Cache.hits;
        misses = s w.Cost_model.l1.Cache.misses;
      };
  }
