module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Pack = Tb_lir.Pack
module Mir = Tb_mir.Mir
module Schedule = Tb_hir.Schedule

type predictor = float array array -> float array array

(* ------------------------------------------------------------------ *)
(* Single-walk kernels                                                 *)
(* ------------------------------------------------------------------ *)

(* Array layout: cursor is a slot local to the tree's slab; child c of
   local slot s lives at s*(nt+1)+c+1. *)

let step_array (lay : Layout.t) base local row =
  let s = base + local in
  let bits = Layout.comparison_bits lay s row in
  let c = lay.Layout.lut.(lay.Layout.shape_ids.(s)).(bits) in
  (local * (lay.Layout.tile_size + 1)) + c + 1

let walk_array_generic lay base row =
  let rec go local =
    let s = base + local in
    if lay.Layout.shape_ids.(s) = Layout.leaf_marker then
      lay.Layout.thresholds.(s * lay.Layout.tile_size)
    else go (step_array lay base local row)
  in
  go 0

let walk_array_unrolled lay base row ~depth =
  (* No termination checks: the tree is padded to uniform depth. *)
  let local = ref 0 in
  for _ = 1 to depth do
    local := step_array lay base !local row
  done;
  let s = base + !local in
  lay.Layout.thresholds.(s * lay.Layout.tile_size)

let walk_array_peeled lay base row ~peel =
  (* The first [peel] steps cannot reach a leaf (min leaf depth), so they
     run without leaf checks; the remainder is the generic loop. *)
  let local = ref 0 in
  for _ = 1 to peel do
    local := step_array lay base !local row
  done;
  let rec go local =
    let s = base + local in
    if lay.Layout.shape_ids.(s) = Layout.leaf_marker then
      lay.Layout.thresholds.(s * lay.Layout.tile_size)
    else go (step_array lay base local row)
  in
  go !local

(* Sparse layout: cursor is an absolute tile slot; a negative value from a
   step encodes the leaf index reached. *)

let step_sparse (lay : Layout.t) s row =
  let bits = Layout.comparison_bits lay s row in
  let c = lay.Layout.lut.(lay.Layout.shape_ids.(s)).(bits) in
  let p = lay.Layout.child_ptr.(s) in
  if p >= 0 then p + c else -(-p - 1 + c) - 1

let walk_sparse_generic lay root row =
  if root < 0 then lay.Layout.leaf_values.(-root - 1)
  else begin
    let rec go s =
      let next = step_sparse lay s row in
      if next >= 0 then go next else lay.Layout.leaf_values.(-next - 1)
    in
    go root
  end

let walk_sparse_unrolled lay root row ~depth =
  if root < 0 then lay.Layout.leaf_values.(-root - 1)
  else begin
    (* depth >= 1 tiles on every path; the first depth-1 steps always land
       on tiles, the last one on a leaf. *)
    let s = ref root in
    for _ = 1 to depth - 1 do
      s := step_sparse lay !s row
    done;
    let last = step_sparse lay !s row in
    lay.Layout.leaf_values.(-last - 1)
  end

let walk_sparse_peeled lay root row ~peel =
  if root < 0 then lay.Layout.leaf_values.(-root - 1)
  else begin
    (* No walk can terminate before [peel] steps (peel = min leaf depth),
       but the last peeled step may land exactly on a leaf. *)
    let s = ref root in
    for _ = 1 to peel do
      if !s >= 0 then s := step_sparse lay !s row
    done;
    if !s < 0 then lay.Layout.leaf_values.(- !s - 1)
    else begin
      let rec go s =
        let next = step_sparse lay s row in
        if next >= 0 then go next else lay.Layout.leaf_values.(-next - 1)
      in
      go !s
    end
  end

(* One tree, one row, per the group's walk kind. *)
let walk_fn (lay : Layout.t) (walk : Mir.walk_kind) =
  match (lay.Layout.kind, walk) with
  | Layout.Array_kind, Mir.Loop_walk ->
    fun tree row -> walk_array_generic lay lay.Layout.tree_root.(tree) row
  | Layout.Array_kind, Mir.Unrolled_walk { depth } ->
    fun tree row -> walk_array_unrolled lay lay.Layout.tree_root.(tree) row ~depth
  | Layout.Array_kind, Mir.Peeled_walk { peel } ->
    fun tree row -> walk_array_peeled lay lay.Layout.tree_root.(tree) row ~peel
  | Layout.Sparse_kind, Mir.Loop_walk ->
    fun tree row -> walk_sparse_generic lay lay.Layout.tree_root.(tree) row
  | Layout.Sparse_kind, Mir.Unrolled_walk { depth } ->
    fun tree row -> walk_sparse_unrolled lay lay.Layout.tree_root.(tree) row ~depth
  | Layout.Sparse_kind, Mir.Peeled_walk { peel } ->
    fun tree row -> walk_sparse_peeled lay lay.Layout.tree_root.(tree) row ~peel

(* ------------------------------------------------------------------ *)
(* Interleaved (jammed) kernels                                        *)
(* ------------------------------------------------------------------ *)

(* Jam [count] walks of one tree over consecutive rows (tree-at-a-time
   order). Lockstep cursors; diverging walks retire individually. Cursors
   use the sparse encoding for both layouts: array-layout locals are
   non-negative, retirement is flagged via a parallel [value] store. *)
let jam_rows_generic (lay : Layout.t) walk tree (rows : float array array) i0 count
    (out : float array array) cls =
  ignore walk;
  let cursors = Array.make count 0 in
  let live = Array.make count true in
  (match lay.Layout.kind with
  | Layout.Array_kind ->
    let base = lay.Layout.tree_root.(tree) in
    let remaining = ref count in
    while !remaining > 0 do
      for j = 0 to count - 1 do
        if live.(j) then begin
          let row = rows.(i0 + j) in
          let s = base + cursors.(j) in
          if lay.Layout.shape_ids.(s) = Layout.leaf_marker then begin
            out.(i0 + j).(cls) <-
              out.(i0 + j).(cls) +. lay.Layout.thresholds.(s * lay.Layout.tile_size);
            live.(j) <- false;
            decr remaining
          end
          else cursors.(j) <- step_array lay base cursors.(j) row
        end
      done
    done
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    if root < 0 then
      for j = 0 to count - 1 do
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) +. lay.Layout.leaf_values.(-root - 1)
      done
    else begin
      Array.fill cursors 0 count root;
      let remaining = ref count in
      while !remaining > 0 do
        for j = 0 to count - 1 do
          if live.(j) then begin
            let next = step_sparse lay cursors.(j) rows.(i0 + j) in
            if next >= 0 then cursors.(j) <- next
            else begin
              out.(i0 + j).(cls) <-
                out.(i0 + j).(cls) +. lay.Layout.leaf_values.(-next - 1);
              live.(j) <- false;
              decr remaining
            end
          end
        done
      done
    end)

(* Jam with a uniform unrolled depth: pure lockstep, no liveness flags. *)
let jam_rows_unrolled (lay : Layout.t) tree rows i0 count out cls ~depth =
  match lay.Layout.kind with
  | Layout.Array_kind ->
    let base = lay.Layout.tree_root.(tree) in
    let cursors = Array.make count 0 in
    for _ = 1 to depth do
      for j = 0 to count - 1 do
        cursors.(j) <- step_array lay base cursors.(j) rows.(i0 + j)
      done
    done;
    for j = 0 to count - 1 do
      let s = base + cursors.(j) in
      out.(i0 + j).(cls) <-
        out.(i0 + j).(cls) +. lay.Layout.thresholds.(s * lay.Layout.tile_size)
    done
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    if root < 0 then
      for j = 0 to count - 1 do
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) +. lay.Layout.leaf_values.(-root - 1)
      done
    else begin
      let cursors = Array.make count root in
      for _ = 1 to depth - 1 do
        for j = 0 to count - 1 do
          cursors.(j) <- step_sparse lay cursors.(j) rows.(i0 + j)
        done
      done;
      for j = 0 to count - 1 do
        let last = step_sparse lay cursors.(j) rows.(i0 + j) in
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) +. lay.Layout.leaf_values.(-last - 1)
      done
    end

(* ------------------------------------------------------------------ *)
(* Narrow-walk kernels (quantized fast path)                           *)
(* ------------------------------------------------------------------ *)

(* The quantized walk runs in the integer domain over the layout's
   materialized narrow buffers ({!Layout.narrow}): quantized rows are
   int arrays, thresholds and leaves load from int8/int16 Bigarrays,
   and per-class accumulators are ints. Routing replicates
   [Layout.comparison_bits] bit for bit — finite thresholds compare as
   the very integers the float-trick buffers store, +inf marker lanes
   come from the slot's constant [always] mask, and -inf lanes store
   the row minimum (constantly false, exactly like comparing against
   -inf). Integer adds are exact, so tree order is irrelevant and the
   final dequantize reproduces Lower.reference_qpredict — and hence
   Numeric.qpredict_raw — bitwise. The step/walk kernels are duplicated
   per width because Bigarray loads are only single instructions when
   the element kind is statically known. *)

let nstep8 (lay : Layout.t) (thr : Layout.narrow8) (always : int array) s
    (qrow : int array) =
  (* Unsafe loads: slot/lane indices are exactly the ones Lir_check's
     walk-program bounds pass proves in range, and [Layout.row_quantizer]
     fixes the row length at the feature count the layout indexes by. *)
  let nt = lay.Layout.tile_size in
  let features = lay.Layout.features in
  let bits = ref always.(s) in
  for lane = 0 to nt - 1 do
    let i = (s * nt) + lane in
    (* Comparison in value position: compiles branchless (setcc), like
       [Layout.comparison_bits] — a branch per lane would mispredict on
       ~half the routing decisions and stall every jammed chain. *)
    let b =
      if
        Array.unsafe_get qrow (Array.unsafe_get features i)
        < Bigarray.Array1.unsafe_get thr i
      then 1
      else 0
    in
    bits := !bits lor (b lsl (nt - 1 - lane))
  done;
  lay.Layout.lut.(lay.Layout.shape_ids.(s)).(!bits)

let nwalk_array8 (lay : Layout.t) thr always base local0 qrow =
  let fanout = lay.Layout.tile_size + 1 in
  let rec go local =
    let s = base + local in
    if lay.Layout.shape_ids.(s) = Layout.leaf_marker then
      Bigarray.Array1.get thr (s * lay.Layout.tile_size)
    else go ((local * fanout) + nstep8 lay thr always s qrow + 1)
  in
  go local0

let nwalk_sparse8 (lay : Layout.t) thr (leaves : Layout.narrow8) always s0 qrow =
  if s0 < 0 then Bigarray.Array1.get leaves (-s0 - 1)
  else begin
    let rec go s =
      let c = nstep8 lay thr always s qrow in
      let p = lay.Layout.child_ptr.(s) in
      if p >= 0 then go (p + c) else Bigarray.Array1.get leaves (-p - 1 + c)
    in
    go s0
  end

let nwalk_array_unrolled8 (lay : Layout.t) thr always base qrow ~depth =
  let fanout = lay.Layout.tile_size + 1 in
  let local = ref 0 in
  for _ = 1 to depth do
    local := (!local * fanout) + nstep8 lay thr always (base + !local) qrow + 1
  done;
  Bigarray.Array1.get thr ((base + !local) * lay.Layout.tile_size)

let nwalk_array_peeled8 (lay : Layout.t) thr always base qrow ~peel =
  let fanout = lay.Layout.tile_size + 1 in
  let local = ref 0 in
  for _ = 1 to peel do
    local := (!local * fanout) + nstep8 lay thr always (base + !local) qrow + 1
  done;
  nwalk_array8 lay thr always base !local qrow

let nstep_sparse8 (lay : Layout.t) thr always s qrow =
  let c = nstep8 lay thr always s qrow in
  let p = lay.Layout.child_ptr.(s) in
  if p >= 0 then p + c else -(-p - 1 + c) - 1

let nwalk_sparse_unrolled8 (lay : Layout.t) thr (leaves : Layout.narrow8) always
    root qrow ~depth =
  if root < 0 then Bigarray.Array1.get leaves (-root - 1)
  else begin
    let s = ref root in
    for _ = 1 to depth - 1 do
      s := nstep_sparse8 lay thr always !s qrow
    done;
    let last = nstep_sparse8 lay thr always !s qrow in
    Bigarray.Array1.get leaves (-last - 1)
  end

let nwalk_sparse_peeled8 (lay : Layout.t) thr (leaves : Layout.narrow8) always
    root qrow ~peel =
  if root < 0 then Bigarray.Array1.get leaves (-root - 1)
  else begin
    let s = ref root in
    for _ = 1 to peel do
      if !s >= 0 then s := nstep_sparse8 lay thr always !s qrow
    done;
    nwalk_sparse8 lay thr leaves always !s qrow
  end

let nstep16 (lay : Layout.t) (thr : Layout.narrow16) (always : int array) s
    (qrow : int array) =
  (* Same unsafe-load and branchless-compare notes as {!nstep8}. *)
  let nt = lay.Layout.tile_size in
  let features = lay.Layout.features in
  let bits = ref always.(s) in
  for lane = 0 to nt - 1 do
    let i = (s * nt) + lane in
    let b =
      if
        Array.unsafe_get qrow (Array.unsafe_get features i)
        < Bigarray.Array1.unsafe_get thr i
      then 1
      else 0
    in
    bits := !bits lor (b lsl (nt - 1 - lane))
  done;
  lay.Layout.lut.(lay.Layout.shape_ids.(s)).(!bits)

let nwalk_array16 (lay : Layout.t) thr always base local0 qrow =
  let fanout = lay.Layout.tile_size + 1 in
  let rec go local =
    let s = base + local in
    if lay.Layout.shape_ids.(s) = Layout.leaf_marker then
      Bigarray.Array1.get thr (s * lay.Layout.tile_size)
    else go ((local * fanout) + nstep16 lay thr always s qrow + 1)
  in
  go local0

let nwalk_sparse16 (lay : Layout.t) thr (leaves : Layout.narrow16) always s0 qrow =
  if s0 < 0 then Bigarray.Array1.get leaves (-s0 - 1)
  else begin
    let rec go s =
      let c = nstep16 lay thr always s qrow in
      let p = lay.Layout.child_ptr.(s) in
      if p >= 0 then go (p + c) else Bigarray.Array1.get leaves (-p - 1 + c)
    in
    go s0
  end

let nwalk_array_unrolled16 (lay : Layout.t) thr always base qrow ~depth =
  let fanout = lay.Layout.tile_size + 1 in
  let local = ref 0 in
  for _ = 1 to depth do
    local := (!local * fanout) + nstep16 lay thr always (base + !local) qrow + 1
  done;
  Bigarray.Array1.get thr ((base + !local) * lay.Layout.tile_size)

let nwalk_array_peeled16 (lay : Layout.t) thr always base qrow ~peel =
  let fanout = lay.Layout.tile_size + 1 in
  let local = ref 0 in
  for _ = 1 to peel do
    local := (!local * fanout) + nstep16 lay thr always (base + !local) qrow + 1
  done;
  nwalk_array16 lay thr always base !local qrow

let nstep_sparse16 (lay : Layout.t) thr always s qrow =
  let c = nstep16 lay thr always s qrow in
  let p = lay.Layout.child_ptr.(s) in
  if p >= 0 then p + c else -(-p - 1 + c) - 1

let nwalk_sparse_unrolled16 (lay : Layout.t) thr (leaves : Layout.narrow16)
    always root qrow ~depth =
  if root < 0 then Bigarray.Array1.get leaves (-root - 1)
  else begin
    let s = ref root in
    for _ = 1 to depth - 1 do
      s := nstep_sparse16 lay thr always !s qrow
    done;
    let last = nstep_sparse16 lay thr always !s qrow in
    Bigarray.Array1.get leaves (-last - 1)
  end

let nwalk_sparse_peeled16 (lay : Layout.t) thr (leaves : Layout.narrow16)
    always root qrow ~peel =
  if root < 0 then Bigarray.Array1.get leaves (-root - 1)
  else begin
    let s = ref root in
    for _ = 1 to peel do
      if !s >= 0 then s := nstep_sparse16 lay thr always !s qrow
    done;
    nwalk_sparse16 lay thr leaves always !s qrow
  end

(* One tree, one quantized row, per the group's walk kind — the narrow
   mirror of {!walk_fn}. *)
let nwalk_fn8 (lay : Layout.t) thr leaves always (walk : Mir.walk_kind) =
  let root tree = lay.Layout.tree_root.(tree) in
  match (lay.Layout.kind, walk) with
  | Layout.Array_kind, Mir.Loop_walk ->
    fun tree qrow -> nwalk_array8 lay thr always (root tree) 0 qrow
  | Layout.Array_kind, Mir.Unrolled_walk { depth } ->
    fun tree qrow -> nwalk_array_unrolled8 lay thr always (root tree) qrow ~depth
  | Layout.Array_kind, Mir.Peeled_walk { peel } ->
    fun tree qrow -> nwalk_array_peeled8 lay thr always (root tree) qrow ~peel
  | Layout.Sparse_kind, Mir.Loop_walk ->
    fun tree qrow -> nwalk_sparse8 lay thr leaves always (root tree) qrow
  | Layout.Sparse_kind, Mir.Unrolled_walk { depth } ->
    fun tree qrow ->
      nwalk_sparse_unrolled8 lay thr leaves always (root tree) qrow ~depth
  | Layout.Sparse_kind, Mir.Peeled_walk { peel } ->
    fun tree qrow ->
      nwalk_sparse_peeled8 lay thr leaves always (root tree) qrow ~peel

let nwalk_fn16 (lay : Layout.t) thr leaves always (walk : Mir.walk_kind) =
  let root tree = lay.Layout.tree_root.(tree) in
  match (lay.Layout.kind, walk) with
  | Layout.Array_kind, Mir.Loop_walk ->
    fun tree qrow -> nwalk_array16 lay thr always (root tree) 0 qrow
  | Layout.Array_kind, Mir.Unrolled_walk { depth } ->
    fun tree qrow -> nwalk_array_unrolled16 lay thr always (root tree) qrow ~depth
  | Layout.Array_kind, Mir.Peeled_walk { peel } ->
    fun tree qrow -> nwalk_array_peeled16 lay thr always (root tree) qrow ~peel
  | Layout.Sparse_kind, Mir.Loop_walk ->
    fun tree qrow -> nwalk_sparse16 lay thr leaves always (root tree) qrow
  | Layout.Sparse_kind, Mir.Unrolled_walk { depth } ->
    fun tree qrow ->
      nwalk_sparse_unrolled16 lay thr leaves always (root tree) qrow ~depth
  | Layout.Sparse_kind, Mir.Peeled_walk { peel } ->
    fun tree qrow ->
      nwalk_sparse_peeled16 lay thr leaves always (root tree) qrow ~peel

(* ------------------------------------------------------------------ *)
(* Resident-prefix walkers (quantized fast path)                       *)
(* ------------------------------------------------------------------ *)

let never_taken : int array -> int =
 fun _ -> invalid_arg "Jit: resident dispatch reached an unreachable child"

(* The top [k] tile levels of one tree become a closure tree with the
   lane feature ids, integer thresholds and LUT row baked in as
   immediates — no buffer loads until the walk leaves the resident
   prefix, where control falls through to [tail] (the narrow
   memory-phase walk from that cursor; array-kind cursors are slab
   locals, sparse cursors the slot-or-negative-leaf encoding).
   Thresholds bake exactly like {!Layout.narrow} encodes them (+inf
   lanes as a constant OR-mask, -inf as a never-true sentinel), so the
   prefix depth cannot change any prediction. *)
let resident_walker (lay : Layout.t) ~k tree ~(tail : int -> int array -> int)
    ~(leaf_get : int -> int) =
  let nt = lay.Layout.tile_size in
  let bake s (children : (int array -> int) array) =
    let lut_row = lay.Layout.lut.(lay.Layout.shape_ids.(s)) in
    let feats = Array.init nt (fun l -> lay.Layout.features.((s * nt) + l)) in
    let always = ref 0 in
    let thrs =
      Array.init nt (fun l ->
          let x = lay.Layout.thresholds.((s * nt) + l) in
          if x = infinity then begin
            always := !always lor (1 lsl (nt - 1 - l));
            min_int
          end
          else if x = neg_infinity then min_int
          else int_of_float x)
    in
    let always = !always in
    fun (qrow : int array) ->
      let bits = ref always in
      for l = 0 to nt - 1 do
        let b = if qrow.(feats.(l)) < thrs.(l) then 1 else 0 in
        bits := !bits lor (b lsl (nt - 1 - l))
      done;
      children.(lut_row.(!bits)) qrow
  in
  match lay.Layout.kind with
  | Layout.Array_kind ->
    let fanout = nt + 1 in
    let base = lay.Layout.tree_root.(tree) in
    let rec build local level =
      let s = base + local in
      if level >= k || lay.Layout.shape_ids.(s) < 0 then tail local
      else begin
        let reach = Layout.reachable_children lay lay.Layout.shape_ids.(s) in
        let children =
          Array.init fanout (fun c ->
              if List.mem c reach then build ((local * fanout) + c + 1) (level + 1)
              else never_taken)
        in
        bake s children
      end
    in
    build 0 0
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    let rec build s level =
      if level >= k then tail s
      else begin
        let p = lay.Layout.child_ptr.(s) in
        let reach = Layout.reachable_children lay lay.Layout.shape_ids.(s) in
        let children =
          Array.init (nt + 1) (fun c ->
              if not (List.mem c reach) then never_taken
              else if p >= 0 then build (p + c) (level + 1)
              else begin
                let v = leaf_get (-p - 1 + c) in
                fun _ -> v
              end)
        in
        bake s children
      end
    in
    if root < 0 then begin
      let v = leaf_get (-root - 1) in
      fun _ -> v
    end
    else build root 0

(* ------------------------------------------------------------------ *)
(* Narrow jammed kernels                                               *)
(* ------------------------------------------------------------------ *)

(* Lockstep row jamming over the narrow buffers — the integer mirror of
   {!jam_rows_unrolled} / {!jam_rows_generic}. The jam is what buys the
   quantized path the same memory-latency overlap the float kernels
   get from interleaving. *)

let njam_unrolled8 (lay : Layout.t) thr (leaves : Layout.narrow8) always tree
    qrows i0 count (out : int array array) cls ~depth =
  let nt = lay.Layout.tile_size in
  match lay.Layout.kind with
  | Layout.Array_kind ->
    let fanout = nt + 1 in
    let base = lay.Layout.tree_root.(tree) in
    let cursors = Array.make count 0 in
    for _ = 1 to depth do
      for j = 0 to count - 1 do
        cursors.(j) <-
          (cursors.(j) * fanout)
          + nstep8 lay thr always (base + cursors.(j)) qrows.(i0 + j)
          + 1
      done
    done;
    for j = 0 to count - 1 do
      out.(i0 + j).(cls) <-
        out.(i0 + j).(cls) + Bigarray.Array1.get thr ((base + cursors.(j)) * nt)
    done
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    if root < 0 then begin
      let v = Bigarray.Array1.get leaves (-root - 1) in
      for j = 0 to count - 1 do
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) + v
      done
    end
    else begin
      let cursors = Array.make count root in
      for _ = 1 to depth - 1 do
        for j = 0 to count - 1 do
          cursors.(j) <- nstep_sparse8 lay thr always cursors.(j) qrows.(i0 + j)
        done
      done;
      for j = 0 to count - 1 do
        let last = nstep_sparse8 lay thr always cursors.(j) qrows.(i0 + j) in
        out.(i0 + j).(cls) <-
          out.(i0 + j).(cls) + Bigarray.Array1.get leaves (-last - 1)
      done
    end

let njam_generic8 (lay : Layout.t) thr (leaves : Layout.narrow8) always tree
    qrows i0 count (out : int array array) cls =
  let nt = lay.Layout.tile_size in
  let cursors = Array.make count 0 in
  let live = Array.make count true in
  match lay.Layout.kind with
  | Layout.Array_kind ->
    let fanout = nt + 1 in
    let base = lay.Layout.tree_root.(tree) in
    let remaining = ref count in
    while !remaining > 0 do
      for j = 0 to count - 1 do
        if live.(j) then begin
          let s = base + cursors.(j) in
          if lay.Layout.shape_ids.(s) = Layout.leaf_marker then begin
            out.(i0 + j).(cls) <-
              out.(i0 + j).(cls) + Bigarray.Array1.get thr (s * nt);
            live.(j) <- false;
            decr remaining
          end
          else
            cursors.(j) <-
              (cursors.(j) * fanout) + nstep8 lay thr always s qrows.(i0 + j) + 1
        end
      done
    done
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    if root < 0 then begin
      let v = Bigarray.Array1.get leaves (-root - 1) in
      for j = 0 to count - 1 do
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) + v
      done
    end
    else begin
      Array.fill cursors 0 count root;
      let remaining = ref count in
      while !remaining > 0 do
        for j = 0 to count - 1 do
          if live.(j) then begin
            let next = nstep_sparse8 lay thr always cursors.(j) qrows.(i0 + j) in
            if next >= 0 then cursors.(j) <- next
            else begin
              out.(i0 + j).(cls) <-
                out.(i0 + j).(cls) + Bigarray.Array1.get leaves (-next - 1);
              live.(j) <- false;
              decr remaining
            end
          end
        done
      done
    end

let njam_unrolled16 (lay : Layout.t) thr (leaves : Layout.narrow16) always tree
    qrows i0 count (out : int array array) cls ~depth =
  let nt = lay.Layout.tile_size in
  match lay.Layout.kind with
  | Layout.Array_kind ->
    let fanout = nt + 1 in
    let base = lay.Layout.tree_root.(tree) in
    let cursors = Array.make count 0 in
    for _ = 1 to depth do
      for j = 0 to count - 1 do
        cursors.(j) <-
          (cursors.(j) * fanout)
          + nstep16 lay thr always (base + cursors.(j)) qrows.(i0 + j)
          + 1
      done
    done;
    for j = 0 to count - 1 do
      out.(i0 + j).(cls) <-
        out.(i0 + j).(cls) + Bigarray.Array1.get thr ((base + cursors.(j)) * nt)
    done
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    if root < 0 then begin
      let v = Bigarray.Array1.get leaves (-root - 1) in
      for j = 0 to count - 1 do
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) + v
      done
    end
    else begin
      let cursors = Array.make count root in
      for _ = 1 to depth - 1 do
        for j = 0 to count - 1 do
          cursors.(j) <- nstep_sparse16 lay thr always cursors.(j) qrows.(i0 + j)
        done
      done;
      for j = 0 to count - 1 do
        let last = nstep_sparse16 lay thr always cursors.(j) qrows.(i0 + j) in
        out.(i0 + j).(cls) <-
          out.(i0 + j).(cls) + Bigarray.Array1.get leaves (-last - 1)
      done
    end

let njam_generic16 (lay : Layout.t) thr (leaves : Layout.narrow16) always tree
    qrows i0 count (out : int array array) cls =
  let nt = lay.Layout.tile_size in
  let cursors = Array.make count 0 in
  let live = Array.make count true in
  match lay.Layout.kind with
  | Layout.Array_kind ->
    let fanout = nt + 1 in
    let base = lay.Layout.tree_root.(tree) in
    let remaining = ref count in
    while !remaining > 0 do
      for j = 0 to count - 1 do
        if live.(j) then begin
          let s = base + cursors.(j) in
          if lay.Layout.shape_ids.(s) = Layout.leaf_marker then begin
            out.(i0 + j).(cls) <-
              out.(i0 + j).(cls) + Bigarray.Array1.get thr (s * nt);
            live.(j) <- false;
            decr remaining
          end
          else
            cursors.(j) <-
              (cursors.(j) * fanout) + nstep16 lay thr always s qrows.(i0 + j) + 1
        end
      done
    done
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    if root < 0 then begin
      let v = Bigarray.Array1.get leaves (-root - 1) in
      for j = 0 to count - 1 do
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) + v
      done
    end
    else begin
      Array.fill cursors 0 count root;
      let remaining = ref count in
      while !remaining > 0 do
        for j = 0 to count - 1 do
          if live.(j) then begin
            let next = nstep_sparse16 lay thr always cursors.(j) qrows.(i0 + j) in
            if next >= 0 then cursors.(j) <- next
            else begin
              out.(i0 + j).(cls) <-
                out.(i0 + j).(cls) + Bigarray.Array1.get leaves (-next - 1);
              live.(j) <- false;
              decr remaining
            end
          end
        done
      done
    end

(* ------------------------------------------------------------------ *)
(* Quantized runner assembly                                           *)
(* ------------------------------------------------------------------ *)

(* One runner per tree, assembled from the pack's groups. Memory-only
   trees (k = 0) honor their group's walk kind and interleave (jammed
   rows, like the float path); resident trees bake the prefix and fall
   through to the generic narrow walk from the exit cursor. The
   schedule's loop order is deliberately ignored: integer adds are
   exact, so tree-at-a-time — the cache-friendliest order — is always
   bitwise-identical. *)
let assemble_quant_runner (pk : Pack.t) ~resident_k ~walk_of ~tail_of ~leaf_get
    ~jam_unrolled ~jam_generic =
  let lay = pk.Pack.layout in
  let per_row cls w qrows (out : int array array) lo hi =
    for i = lo to hi - 1 do
      out.(i).(cls) <- out.(i).(cls) + w qrows.(i)
    done
  in
  let runners =
    Array.to_list pk.Pack.groups
    |> List.concat_map (fun (g : Pack.group) ->
           Array.to_list g.Pack.positions
           |> List.map (fun tree ->
                  let cls = pk.Pack.tree_class.(tree) in
                  if resident_k > 0 then
                    per_row cls
                      (resident_walker lay ~k:resident_k tree
                         ~tail:(tail_of tree) ~leaf_get)
                  else begin
                    let k = g.Pack.interleave in
                    if k <= 1 then per_row cls (walk_of g.Pack.walk tree)
                    else
                      let jam =
                        match g.Pack.walk with
                        | Mir.Unrolled_walk { depth } ->
                          fun qrows i0 count out -> jam_unrolled tree ~depth qrows i0 count out cls
                        | Mir.Loop_walk | Mir.Peeled_walk _ ->
                          fun qrows i0 count out -> jam_generic tree qrows i0 count out cls
                      in
                      fun qrows out lo hi ->
                        let i = ref lo in
                        while !i < hi do
                          let count = min k (hi - !i) in
                          jam qrows !i count out;
                          i := !i + count
                        done
                  end))
  in
  let runners = Array.of_list runners in
  fun qrows out lo hi -> Array.iter (fun r -> r qrows out lo hi) runners

let quant_runner (pk : Pack.t) ~resident_k =
  let lay = pk.Pack.layout in
  match Layout.narrow lay with
  | Layout.Narrow8 { thr; leaves; always } ->
    assemble_quant_runner pk ~resident_k
      ~walk_of:(fun walk tree -> nwalk_fn8 lay thr leaves always walk tree)
      ~tail_of:(fun tree ->
        match lay.Layout.kind with
        | Layout.Array_kind ->
          let base = lay.Layout.tree_root.(tree) in
          fun local qrow -> nwalk_array8 lay thr always base local qrow
        | Layout.Sparse_kind ->
          fun s qrow -> nwalk_sparse8 lay thr leaves always s qrow)
      ~leaf_get:(fun i -> Bigarray.Array1.get leaves i)
      ~jam_unrolled:(fun tree ~depth qrows i0 count out cls ->
        njam_unrolled8 lay thr leaves always tree qrows i0 count out cls ~depth)
      ~jam_generic:(fun tree qrows i0 count out cls ->
        njam_generic8 lay thr leaves always tree qrows i0 count out cls)
  | Layout.Narrow16 { thr; leaves; always } ->
    assemble_quant_runner pk ~resident_k
      ~walk_of:(fun walk tree -> nwalk_fn16 lay thr leaves always walk tree)
      ~tail_of:(fun tree ->
        match lay.Layout.kind with
        | Layout.Array_kind ->
          let base = lay.Layout.tree_root.(tree) in
          fun local qrow -> nwalk_array16 lay thr always base local qrow
        | Layout.Sparse_kind ->
          fun s qrow -> nwalk_sparse16 lay thr leaves always s qrow)
      ~leaf_get:(fun i -> Bigarray.Array1.get leaves i)
      ~jam_unrolled:(fun tree ~depth qrows i0 count out cls ->
        njam_unrolled16 lay thr leaves always tree qrows i0 count out cls ~depth)
      ~jam_generic:(fun tree qrows i0 count out cls ->
        njam_generic16 lay thr leaves always tree qrows i0 count out cls)

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let run_range (pk : Pack.t) rows out lo hi =
  (* Compute predictions for rows[lo..hi) into out (same indexing). *)
  let lay = pk.Pack.layout in
  let groups = pk.Pack.groups in
  match pk.Pack.loop_order with
  | Schedule.One_tree_at_a_time ->
    Array.iter
      (fun (g : Pack.group) ->
        let k = g.Pack.interleave in
        Array.iter
          (fun tree ->
            let cls = pk.Pack.tree_class.(tree) in
            if k <= 1 then begin
              let walk = walk_fn lay g.Pack.walk in
              for i = lo to hi - 1 do
                out.(i).(cls) <- out.(i).(cls) +. walk tree rows.(i)
              done
            end
            else begin
              let i = ref lo in
              while !i < hi do
                let count = min k (hi - !i) in
                (match g.Pack.walk with
                | Mir.Unrolled_walk { depth } ->
                  jam_rows_unrolled lay tree rows !i count out cls ~depth
                | Mir.Loop_walk | Mir.Peeled_walk _ ->
                  jam_rows_generic lay g.Pack.walk tree rows !i count out cls);
                i := !i + count
              done
            end)
          g.Pack.positions)
      groups
  | Schedule.One_row_at_a_time ->
    (* Innermost loop over a group's trees; interleaving jams k trees of
       the same row. Tree cursors live in per-plan scratch. *)
    let walks = Array.map (fun (g : Pack.group) -> walk_fn lay g.Pack.walk) groups in
    for i = lo to hi - 1 do
      let row = rows.(i) in
      Array.iteri
        (fun gi (g : Pack.group) ->
          let walk = walks.(gi) in
          (* Tree-jamming on one row is a scheduling decision; walks of
             distinct trees are independent, so executing them back to back
             is semantically identical. The profiler models the jam's ILP
             effect; here we just follow group order. *)
          Array.iter
            (fun tree ->
              let cls = pk.Pack.tree_class.(tree) in
              out.(i).(cls) <- out.(i).(cls) +. walk tree row)
            g.Pack.positions)
        groups
    done

(* Tile the row loop by thread count (§IV-C); each domain owns a
   contiguous block of rows (Mir.row_partition, statically checked
   disjoint by the analysis), so no synchronization is needed. *)
let parallel_run ~threads run rows out =
  let n = Array.length rows in
  if threads <= 1 then run rows out 0 n
  else
    let domains =
      Array.to_list (Mir.row_partition ~num_threads:threads ~batch:n)
      |> List.map (fun (lo, hi) ->
             if lo >= hi then None
             else Some (Domain.spawn (fun () -> run rows out lo hi)))
    in
    List.iter (function Some d -> Domain.join d | None -> ()) domains

let instantiate_with ~threads (pk : Pack.t) =
  match pk.Pack.layout.Layout.quant with
  | None ->
    fun rows ->
      let n = Array.length rows in
      let out =
        Array.init n (fun _ -> Array.make pk.Pack.num_outputs pk.Pack.base_score)
      in
      parallel_run ~threads (run_range pk) rows out;
      out
  | Some q ->
    (* Integer fast path: quantize the batch into int rows once, walk
       the narrow buffers (with the resident prefix baked when k > 0)
       accumulating int sums from the quantized base score, then
       dequantize exactly. Must equal Lower.reference_qpredict — and
       hence Numeric.qpredict_raw — bit for bit: routing matches the
       float-trick buffers comparison for comparison, and both sides'
       sums are the same integers far below 2^53. *)
    let resident_k =
      match pk.Pack.quant with Some m -> m.Pack.resident_k | None -> 0
    in
    let run = quant_runner pk ~resident_k in
    let quantize_row = Layout.row_quantizer q in
    let qbase = Layout.quantize_leaf_int q pk.Pack.base_score in
    let scale = Layout.dequant_scale q in
    fun rows ->
      let n = Array.length rows in
      let qrows = Array.map quantize_row rows in
      let acc = Array.init n (fun _ -> Array.make pk.Pack.num_outputs qbase) in
      parallel_run ~threads run qrows acc;
      Array.map (fun o -> Array.map (fun v -> float_of_int v *. scale) o) acc

let instantiate_single_thread (pk : Pack.t) = instantiate_with ~threads:1 pk
let instantiate (pk : Pack.t) = instantiate_with ~threads:pk.Pack.num_threads pk

let compile_single_thread (lp : Lower.t) = instantiate_single_thread (Pack.of_lower lp)
let compile (lp : Lower.t) = instantiate (Pack.of_lower lp)
