module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Pack = Tb_lir.Pack
module Mir = Tb_mir.Mir
module Schedule = Tb_hir.Schedule

type predictor = float array array -> float array array

(* ------------------------------------------------------------------ *)
(* Single-walk kernels                                                 *)
(* ------------------------------------------------------------------ *)

(* Array layout: cursor is a slot local to the tree's slab; child c of
   local slot s lives at s*(nt+1)+c+1. *)

let step_array (lay : Layout.t) base local row =
  let s = base + local in
  let bits = Layout.comparison_bits lay s row in
  let c = lay.Layout.lut.(lay.Layout.shape_ids.(s)).(bits) in
  (local * (lay.Layout.tile_size + 1)) + c + 1

let walk_array_generic lay base row =
  let rec go local =
    let s = base + local in
    if lay.Layout.shape_ids.(s) = Layout.leaf_marker then
      lay.Layout.thresholds.(s * lay.Layout.tile_size)
    else go (step_array lay base local row)
  in
  go 0

let walk_array_unrolled lay base row ~depth =
  (* No termination checks: the tree is padded to uniform depth. *)
  let local = ref 0 in
  for _ = 1 to depth do
    local := step_array lay base !local row
  done;
  let s = base + !local in
  lay.Layout.thresholds.(s * lay.Layout.tile_size)

let walk_array_peeled lay base row ~peel =
  (* The first [peel] steps cannot reach a leaf (min leaf depth), so they
     run without leaf checks; the remainder is the generic loop. *)
  let local = ref 0 in
  for _ = 1 to peel do
    local := step_array lay base !local row
  done;
  let rec go local =
    let s = base + local in
    if lay.Layout.shape_ids.(s) = Layout.leaf_marker then
      lay.Layout.thresholds.(s * lay.Layout.tile_size)
    else go (step_array lay base local row)
  in
  go !local

(* Sparse layout: cursor is an absolute tile slot; a negative value from a
   step encodes the leaf index reached. *)

let step_sparse (lay : Layout.t) s row =
  let bits = Layout.comparison_bits lay s row in
  let c = lay.Layout.lut.(lay.Layout.shape_ids.(s)).(bits) in
  let p = lay.Layout.child_ptr.(s) in
  if p >= 0 then p + c else -(-p - 1 + c) - 1

let walk_sparse_generic lay root row =
  if root < 0 then lay.Layout.leaf_values.(-root - 1)
  else begin
    let rec go s =
      let next = step_sparse lay s row in
      if next >= 0 then go next else lay.Layout.leaf_values.(-next - 1)
    in
    go root
  end

let walk_sparse_unrolled lay root row ~depth =
  if root < 0 then lay.Layout.leaf_values.(-root - 1)
  else begin
    (* depth >= 1 tiles on every path; the first depth-1 steps always land
       on tiles, the last one on a leaf. *)
    let s = ref root in
    for _ = 1 to depth - 1 do
      s := step_sparse lay !s row
    done;
    let last = step_sparse lay !s row in
    lay.Layout.leaf_values.(-last - 1)
  end

let walk_sparse_peeled lay root row ~peel =
  if root < 0 then lay.Layout.leaf_values.(-root - 1)
  else begin
    (* No walk can terminate before [peel] steps (peel = min leaf depth),
       but the last peeled step may land exactly on a leaf. *)
    let s = ref root in
    for _ = 1 to peel do
      if !s >= 0 then s := step_sparse lay !s row
    done;
    if !s < 0 then lay.Layout.leaf_values.(- !s - 1)
    else begin
      let rec go s =
        let next = step_sparse lay s row in
        if next >= 0 then go next else lay.Layout.leaf_values.(-next - 1)
      in
      go !s
    end
  end

(* One tree, one row, per the group's walk kind. *)
let walk_fn (lay : Layout.t) (walk : Mir.walk_kind) =
  match (lay.Layout.kind, walk) with
  | Layout.Array_kind, Mir.Loop_walk ->
    fun tree row -> walk_array_generic lay lay.Layout.tree_root.(tree) row
  | Layout.Array_kind, Mir.Unrolled_walk { depth } ->
    fun tree row -> walk_array_unrolled lay lay.Layout.tree_root.(tree) row ~depth
  | Layout.Array_kind, Mir.Peeled_walk { peel } ->
    fun tree row -> walk_array_peeled lay lay.Layout.tree_root.(tree) row ~peel
  | Layout.Sparse_kind, Mir.Loop_walk ->
    fun tree row -> walk_sparse_generic lay lay.Layout.tree_root.(tree) row
  | Layout.Sparse_kind, Mir.Unrolled_walk { depth } ->
    fun tree row -> walk_sparse_unrolled lay lay.Layout.tree_root.(tree) row ~depth
  | Layout.Sparse_kind, Mir.Peeled_walk { peel } ->
    fun tree row -> walk_sparse_peeled lay lay.Layout.tree_root.(tree) row ~peel

(* ------------------------------------------------------------------ *)
(* Interleaved (jammed) kernels                                        *)
(* ------------------------------------------------------------------ *)

(* Jam [count] walks of one tree over consecutive rows (tree-at-a-time
   order). Lockstep cursors; diverging walks retire individually. Cursors
   use the sparse encoding for both layouts: array-layout locals are
   non-negative, retirement is flagged via a parallel [value] store. *)
let jam_rows_generic (lay : Layout.t) walk tree (rows : float array array) i0 count
    (out : float array array) cls =
  ignore walk;
  let cursors = Array.make count 0 in
  let live = Array.make count true in
  (match lay.Layout.kind with
  | Layout.Array_kind ->
    let base = lay.Layout.tree_root.(tree) in
    let remaining = ref count in
    while !remaining > 0 do
      for j = 0 to count - 1 do
        if live.(j) then begin
          let row = rows.(i0 + j) in
          let s = base + cursors.(j) in
          if lay.Layout.shape_ids.(s) = Layout.leaf_marker then begin
            out.(i0 + j).(cls) <-
              out.(i0 + j).(cls) +. lay.Layout.thresholds.(s * lay.Layout.tile_size);
            live.(j) <- false;
            decr remaining
          end
          else cursors.(j) <- step_array lay base cursors.(j) row
        end
      done
    done
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    if root < 0 then
      for j = 0 to count - 1 do
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) +. lay.Layout.leaf_values.(-root - 1)
      done
    else begin
      Array.fill cursors 0 count root;
      let remaining = ref count in
      while !remaining > 0 do
        for j = 0 to count - 1 do
          if live.(j) then begin
            let next = step_sparse lay cursors.(j) rows.(i0 + j) in
            if next >= 0 then cursors.(j) <- next
            else begin
              out.(i0 + j).(cls) <-
                out.(i0 + j).(cls) +. lay.Layout.leaf_values.(-next - 1);
              live.(j) <- false;
              decr remaining
            end
          end
        done
      done
    end)

(* Jam with a uniform unrolled depth: pure lockstep, no liveness flags. *)
let jam_rows_unrolled (lay : Layout.t) tree rows i0 count out cls ~depth =
  match lay.Layout.kind with
  | Layout.Array_kind ->
    let base = lay.Layout.tree_root.(tree) in
    let cursors = Array.make count 0 in
    for _ = 1 to depth do
      for j = 0 to count - 1 do
        cursors.(j) <- step_array lay base cursors.(j) rows.(i0 + j)
      done
    done;
    for j = 0 to count - 1 do
      let s = base + cursors.(j) in
      out.(i0 + j).(cls) <-
        out.(i0 + j).(cls) +. lay.Layout.thresholds.(s * lay.Layout.tile_size)
    done
  | Layout.Sparse_kind ->
    let root = lay.Layout.tree_root.(tree) in
    if root < 0 then
      for j = 0 to count - 1 do
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) +. lay.Layout.leaf_values.(-root - 1)
      done
    else begin
      let cursors = Array.make count root in
      for _ = 1 to depth - 1 do
        for j = 0 to count - 1 do
          cursors.(j) <- step_sparse lay cursors.(j) rows.(i0 + j)
        done
      done;
      for j = 0 to count - 1 do
        let last = step_sparse lay cursors.(j) rows.(i0 + j) in
        out.(i0 + j).(cls) <- out.(i0 + j).(cls) +. lay.Layout.leaf_values.(-last - 1)
      done
    end

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let run_range (pk : Pack.t) rows out lo hi =
  (* Compute predictions for rows[lo..hi) into out (same indexing). *)
  let lay = pk.Pack.layout in
  let groups = pk.Pack.groups in
  match pk.Pack.loop_order with
  | Schedule.One_tree_at_a_time ->
    Array.iter
      (fun (g : Pack.group) ->
        let k = g.Pack.interleave in
        Array.iter
          (fun tree ->
            let cls = pk.Pack.tree_class.(tree) in
            if k <= 1 then begin
              let walk = walk_fn lay g.Pack.walk in
              for i = lo to hi - 1 do
                out.(i).(cls) <- out.(i).(cls) +. walk tree rows.(i)
              done
            end
            else begin
              let i = ref lo in
              while !i < hi do
                let count = min k (hi - !i) in
                (match g.Pack.walk with
                | Mir.Unrolled_walk { depth } ->
                  jam_rows_unrolled lay tree rows !i count out cls ~depth
                | Mir.Loop_walk | Mir.Peeled_walk _ ->
                  jam_rows_generic lay g.Pack.walk tree rows !i count out cls);
                i := !i + count
              done
            end)
          g.Pack.positions)
      groups
  | Schedule.One_row_at_a_time ->
    (* Innermost loop over a group's trees; interleaving jams k trees of
       the same row. Tree cursors live in per-plan scratch. *)
    let walks = Array.map (fun (g : Pack.group) -> walk_fn lay g.Pack.walk) groups in
    for i = lo to hi - 1 do
      let row = rows.(i) in
      Array.iteri
        (fun gi (g : Pack.group) ->
          let walk = walks.(gi) in
          (* Tree-jamming on one row is a scheduling decision; walks of
             distinct trees are independent, so executing them back to back
             is semantically identical. The profiler models the jam's ILP
             effect; here we just follow group order. *)
          Array.iter
            (fun tree ->
              let cls = pk.Pack.tree_class.(tree) in
              out.(i).(cls) <- out.(i).(cls) +. walk tree row)
            g.Pack.positions)
        groups
    done

let instantiate_single_thread (pk : Pack.t) rows =
  let n = Array.length rows in
  let out = Array.init n (fun _ -> Array.make pk.Pack.num_outputs pk.Pack.base_score) in
  run_range pk rows out 0 n;
  out

let instantiate pk =
  let threads = pk.Pack.num_threads in
  if threads <= 1 then instantiate_single_thread pk
  else
    fun rows ->
      let n = Array.length rows in
      let out =
        Array.init n (fun _ -> Array.make pk.Pack.num_outputs pk.Pack.base_score)
      in
      (* Tile the row loop by thread count (§IV-C); each domain owns a
         contiguous block of rows (Mir.row_partition, statically checked
         disjoint by the analysis), so no synchronization is needed. *)
      let domains =
        Array.to_list (Mir.row_partition ~num_threads:threads ~batch:n)
        |> List.map (fun (lo, hi) ->
               if lo >= hi then None
               else Some (Domain.spawn (fun () -> run_range pk rows out lo hi)))
      in
      List.iter (function Some d -> Domain.join d | None -> ()) domains;
      out

let compile_single_thread (lp : Lower.t) = instantiate_single_thread (Pack.of_lower lp)
let compile (lp : Lower.t) = instantiate (Pack.of_lower lp)
