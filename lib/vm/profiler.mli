(** Instrumented execution: runs the lowered program over a row sample and
    produces the exact dynamic event counts ({!Tb_cpu.Cost_model.workload})
    the cost model consumes.

    The profiler mirrors the JIT's iteration structure — loop order,
    interleaving (jam sets), walk specialization — and feeds every memory
    access of the §V-A walk (threshold/feature vector loads, row gathers,
    shape-id/LUT/child-pointer loads, leaf fetches) through a simulated L1
    data cache with the target's geometry. A deliberately simple address
    map lays the model buffers and the input rows out in a flat address
    space. *)

val profile :
  target:Tb_cpu.Config.t ->
  ?warm_start:bool ->
  Tb_lir.Lower.t ->
  float array array ->
  Tb_cpu.Cost_model.workload
(** [profile ~target lowered rows] — [rows] is typically a modest sample
    (48–256 rows); use {!scale} to extrapolate to a full batch.

    [warm_start] (default [false]) primes the simulated L1 with one
    identical pass before counting, so the reported miss rate is the
    steady-state rate rather than cold-cache compulsory misses — set it
    whenever the result will be {!scale}d up to a larger batch, where
    compulsory misses would otherwise be extrapolated linearly. *)

val scale : Tb_cpu.Cost_model.workload -> float -> Tb_cpu.Cost_model.workload
(** Scale all extensive counts by a factor (event rates are linear in the
    number of rows once the cache is warm). *)

val extrapolate :
  Tb_cpu.Cost_model.workload ->
  Tb_cpu.Cost_model.workload ->
  rows:int ->
  Tb_cpu.Cost_model.workload
(** [extrapolate w1 w2 ~rows] — affine two-point extrapolation from two
    cold profiles of the same program over nested row prefixes
    ([w1.rows < w2.rows]).

    Event totals over a batch are affine in the row count, [a + b*n]: the
    fixed term [a] carries the per-batch costs (compulsory code/model
    misses, and under tree-major order the one streaming pass over a
    model larger than L1), while [b] is the steady per-row rate. Linear
    {!scale} folds [a] into the rate and overstates a small sample by the
    batch/sample ratio — the dominant source of Cost_check C002 l1_misses
    divergence. Fitting the line through two sample sizes recovers [a]
    and [b] separately, so the prediction matches an instrumented cold
    full-batch run. Counts are clamped non-negative and [hits] is derived
    as [accesses - misses]; structural fields are taken from [w2].

    Raises [Invalid_argument] unless [1 <= w1.rows < w2.rows]. *)
