(** Instrumented execution: runs the lowered program over a row sample and
    produces the exact dynamic event counts ({!Tb_cpu.Cost_model.workload})
    the cost model consumes.

    The profiler mirrors the JIT's iteration structure — loop order,
    interleaving (jam sets), walk specialization — and feeds every memory
    access of the §V-A walk (threshold/feature vector loads, row gathers,
    shape-id/LUT/child-pointer loads, leaf fetches) through a simulated L1
    data cache with the target's geometry. A deliberately simple address
    map lays the model buffers and the input rows out in a flat address
    space. *)

val profile :
  target:Tb_cpu.Config.t ->
  Tb_lir.Lower.t ->
  float array array ->
  Tb_cpu.Cost_model.workload
(** [profile ~target lowered rows] — [rows] is typically a modest sample
    (48–256 rows); use {!scale} to extrapolate to a full batch. *)

val scale : Tb_cpu.Cost_model.workload -> float -> Tb_cpu.Cost_model.workload
(** Scale all extensive counts by a factor (event rates are linear in the
    number of rows once the cache is warm). *)
