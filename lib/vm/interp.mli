(** Register-IR interpreter: the second execution backend.

    Executes the {!Tb_lir.Reg_codegen} walk programs over the layout
    buffers with lane-exact vector semantics. Much slower than the closure
    JIT — its purpose is independence: it shares no walk logic with
    {!Jit}, so agreement between the two (and the reference traversal) is
    strong evidence the lowering is correct. It also serves as the
    executable semantics of the register IR. *)

type predictor = float array array -> float array array

val compile :
  ?trace:(group:int -> Tb_lir.Reg_ir.buffer -> int -> unit) ->
  Tb_lir.Lower.t -> predictor
(** Generate, verify and interpret the per-group walk programs following
    the MIR loop order (single-threaded; interleaving does not change
    interpretation order). Output equals {!Jit.compile}'s bit-for-bit
    (tested).

    [trace] observes every concrete buffer access of group [group]'s walk
    program — scalar loads directly, vector loads once per lane, LUT
    accesses by flat index — before it happens. The soundness harness uses
    it to replay executions against the index ranges
    {!Tb_analysis.Lir_check.analyze_program} claims to have proved. *)

val run_walk :
  Tb_lir.Reg_ir.walk_program ->
  Tb_lir.Lower.t ->
  tree:int ->
  row:float array ->
  float
(** Execute one walk program for one (tree, row) pair — exposed for tests
    and for single-stepping in the CLI. *)

val dump_programs : Tb_lir.Lower.t -> string
(** The verified register IR of every walk variant in the compiled program
    (shown by the CLI's [compile] subcommand). *)
