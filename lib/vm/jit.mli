(** The execution backend: compiles a lowered program into specialized
    OCaml closures (this repository's stand-in for the paper's LLVM JIT).

    The generated predictor honours every schedule decision:
    - loop order (one-tree-at-a-time vs one-row-at-a-time);
    - walk specialization (generic loop / peeled prologue / fully unrolled
      fixed-depth walks with no termination checks);
    - tree-walk interleaving (k cursors advanced in lockstep);
    - memory layout (array vs sparse buffer navigation);
    - row-loop parallelization over OCaml domains.

    Semantics contract (tested): for every schedule, the predictor's output
    equals {!Tb_model.Forest.predict_batch_raw} on the source forest. *)

type predictor = float array array -> float array array
(** Batch inference: one margin vector per input row. *)

val instantiate : Tb_lir.Pack.t -> predictor
(** Closure instantiation: build the specialized predictor from a packed
    artifact — the cheap half of a compile, run on registry disk hits. The
    closure graph is constructed once here; calling the predictor performs
    no per-call compilation work. *)

val instantiate_single_thread : Tb_lir.Pack.t -> predictor
(** Same, ignoring the artifact's thread count (used by benchmarks that
    sweep thread counts externally). *)

val compile : Tb_lir.Lower.t -> predictor
(** [instantiate] of {!Tb_lir.Pack.of_lower} — artifact construction plus
    closure instantiation in one step. *)

val compile_single_thread : Tb_lir.Lower.t -> predictor
(** Single-threaded {!compile}. *)
