module Cost_model = Tb_cpu.Cost_model
module Profiler = Tb_vm.Profiler
module Mir = Tb_mir.Mir

type t = {
  cycles_per_row : float;
  time_per_row_us : float;
  breakdown : Cost_model.breakdown;
  workload : Cost_model.workload;
}

(* Treebeard's §IV-C parallelization is a naive static partition of the
   row loop; load imbalance and fork/join costs eat a slice of the ideal
   scaling (the libraries' mature OpenMP runtimes do better). *)
let naive_parallel_efficiency = 0.85

let simulate ~target ?threads ?batch ?(sample = 48) (lowered : Tb_lir.Lower.t) rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Perf.simulate: no rows";
  let batch = Option.value batch ~default:n in
  let threads =
    Option.value threads ~default:lowered.Tb_lir.Lower.mir.Mir.num_threads
  in
  let sample_rows = if n <= sample then rows else Array.sub rows 0 sample in
  let w = Profiler.profile ~target lowered sample_rows in
  let w =
    if batch = Array.length sample_rows then w
    else Profiler.scale w (float_of_int batch /. float_of_int (Array.length sample_rows))
  in
  let breakdown = Cost_model.estimate target w in
  let cycles = Tb_cpu.Multicore.cycles target ~threads breakdown.Cost_model.cycles in
  let cycles =
    if threads > 1 then cycles /. naive_parallel_efficiency else cycles
  in
  let cycles_per_row = cycles /. float_of_int (max 1 w.Cost_model.rows) in
  {
    cycles_per_row;
    time_per_row_us = cycles_per_row /. 3500.0;
    breakdown;
    workload = w;
  }

let speedup ~baseline t = baseline.cycles_per_row /. t.cycles_per_row
