module Cost_model = Tb_cpu.Cost_model
module Profiler = Tb_vm.Profiler
module Mir = Tb_mir.Mir

type t = {
  cycles_per_row : float;
  time_per_row_us : float;
  breakdown : Cost_model.breakdown;
  workload : Cost_model.workload;
}

(* Treebeard's §IV-C parallelization is a naive static partition of the
   row loop; load imbalance and fork/join costs eat a slice of the ideal
   scaling (the libraries' mature OpenMP runtimes do better). *)
let naive_parallel_efficiency = 0.85

let simulate ~target ?threads ?batch ?(sample = 48) (lowered : Tb_lir.Lower.t) rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Perf.simulate: no rows";
  let batch = Option.value batch ~default:n in
  let threads =
    Option.value threads ~default:lowered.Tb_lir.Lower.mir.Mir.num_threads
  in
  let sample_rows = if n <= sample then rows else Array.sub rows 0 sample in
  (* Event totals are affine in the row count: a fixed per-batch term
     (compulsory misses; the per-pass model stream under tree-major order)
     plus a per-row rate. Extrapolating from a single sample point folds
     the fixed term into the rate and overstates misses by batch/sample;
     fitting the line through two nested sample prefixes separates them. *)
  let ns = Array.length sample_rows in
  let w =
    if batch = ns then Profiler.profile ~target lowered sample_rows
    else
      (* The second point sits at 2x the sample so the fitted slope is the
         steady per-row rate: below ~[sample] rows the marginal miss rate is
         still contaminated by warm-up transients. *)
      let n2 = min n (2 * ns) in
      if n2 <= ns then
        (* Too few rows for a second point: prime the cache and fall back
           to linear scaling of the steady-state pass. *)
        Profiler.scale
          (Profiler.profile ~target ~warm_start:true lowered sample_rows)
          (float_of_int batch /. float_of_int ns)
      else
        let w1 = Profiler.profile ~target lowered sample_rows in
        let w2 = Profiler.profile ~target lowered (Array.sub rows 0 n2) in
        Profiler.extrapolate w1 w2 ~rows:batch
  in
  let breakdown = Cost_model.estimate target w in
  let cycles = Tb_cpu.Multicore.cycles target ~threads breakdown.Cost_model.cycles in
  let cycles =
    if threads > 1 then cycles /. naive_parallel_efficiency else cycles
  in
  let cycles_per_row = cycles /. float_of_int (max 1 w.Cost_model.rows) in
  {
    cycles_per_row;
    time_per_row_us = Tb_cpu.Config.us_of_cycles target cycles_per_row;
    breakdown;
    workload = w;
  }

let speedup ~baseline t = baseline.cycles_per_row /. t.cycles_per_row
