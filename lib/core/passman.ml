module D = Tb_diag.Diagnostic
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Program = Tb_hir.Program
module Mir = Tb_mir.Mir
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Reg_codegen = Tb_lir.Reg_codegen
module Hir_check = Tb_analysis.Hir_check
module Mir_check = Tb_analysis.Mir_check
module Lir_check = Tb_analysis.Lir_check
module Tbcheck = Tb_analysis.Tbcheck
module Validate = Tb_analysis.Validate
module Numeric = Tb_analysis.Numeric

type mode = No_verify | Verify_final | Verify_each

type stage_report = {
  stage : string;
  diagnostics : D.t list;
}

type report = { mode : mode; stages : stage_report list }

let diagnostics r = List.concat_map (fun s -> s.diagnostics) r.stages

let ok r = not (D.has_errors (diagnostics r))

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s ->
      if s.diagnostics = [] then Format.fprintf fmt "%-16s ok@," s.stage
      else begin
        Format.fprintf fmt "%-16s %s@," s.stage (D.summary s.diagnostics);
        List.iter
          (fun d -> Format.fprintf fmt "  %s@," (D.to_string d))
          s.diagnostics
      end)
    r.stages;
  Format.fprintf fmt "@]"

let report_to_string r = Format.asprintf "%a" pp_report r

(* Fold-with-early-exit over the pipeline: each step either appends a
   stage report and continues, or stops compilation on the first
   error-carrying stage. *)
exception Stage_failed

let lower ?(mode = Verify_each) ?(batch_size = 1024) ?profiles forest schedule
    =
  let stages = ref [] in
  let run_stage name check =
    let ds = if mode = Verify_each then check () else [] in
    stages := { stage = name; diagnostics = ds } :: !stages;
    if D.has_errors ds then raise Stage_failed
  in
  let finish () = { mode; stages = List.rev !stages } in
  try
    run_stage "schedule" (fun () ->
        Hir_check.check_schedule ~batch_size schedule);
    run_stage "numeric:model" (fun () ->
        (* Advisory: N00x findings refute the int16 quantization
           certificate of the *model*, not the float pipeline being
           compiled — demote to Info so they never fail compilation or
           trip a warning gate. [treebeard quantcheck] reports them at
           full severity. *)
        (Numeric.certify ~width:Numeric.I16 forest).Numeric.findings
        |> List.map (fun d -> { d with D.severity = D.Info }));
    let hir = Program.build ?profiles forest schedule in
    run_stage "hir" (fun () -> Hir_check.check_program hir);
    run_stage "validate:hir" (fun () ->
        Validate.to_diagnostics (Validate.check_hir hir));
    let mir_stage name mir =
      run_stage name (fun () -> Mir_check.check ~batch_size hir mir);
      mir
    in
    let specialized =
      Mir.lower_of_hir hir
      |> mir_stage "mir:lower"
      |> Mir.apply_walk_specialization hir
      |> mir_stage "mir:specialize"
    in
    run_stage "validate:mir" (fun () ->
        Validate.to_diagnostics (Validate.check_mir hir specialized));
    let mir =
      specialized
      |> Mir.apply_interleaving
      |> mir_stage "mir:interleave"
      |> Mir.apply_parallelization
      |> mir_stage "mir:parallelize"
    in
    let layout = Layout.build hir in
    let num_features = forest.Forest.num_features in
    run_stage "lir:layout" (fun () ->
        Lir_check.check_layout ~num_features layout);
    run_stage "validate:lir" (fun () ->
        Validate.to_diagnostics (Validate.check_lir hir mir layout));
    run_stage "lir:walks" (fun () ->
        let env = Lir_check.env_of_layout ~num_features layout in
        Reg_codegen.jammed_variants layout mir
        |> List.concat_map (fun (i, prog) ->
               Lir_check.check_variant env ~variant:i prog));
    run_stage "validate:reg" (fun () ->
        Validate.to_diagnostics (Validate.check_reg hir mir layout));
    let lowered = Lower.assemble hir mir layout in
    (match mode with
    | Verify_final ->
      let ds = Tbcheck.check_lowered ~batch_size lowered in
      stages := { stage = "final"; diagnostics = ds } :: !stages;
      if D.has_errors ds then raise Stage_failed
    | No_verify | Verify_each -> ());
    Ok (lowered, finish ())
  with Stage_failed -> Error (finish ())

let compile ?mode ?batch_size ?profiles ?(schedule = Schedule.default) forest
    =
  match lower ?mode ?batch_size ?profiles forest schedule with
  | Error report -> Error report
  | Ok (lowered, report) ->
    Ok
      ( {
          Treebeard.forest;
          schedule;
          lowered;
          predict = Tb_vm.Jit.compile lowered;
          tier = `Float;
          resident_k = 0;
          certificate = None;
          precision_diags = [];
        },
        report )
