(** The verifying pass manager.

    {!Tb_lir.Lower.lower} runs the lowering passes back to back and trusts
    them; [Passman] runs the same pipeline one pass at a time and threads
    the {!Tb_analysis} verifiers between the stages, so a fault is caught
    {e at the pass that introduced it} rather than as a wrong prediction
    (or a crash) at inference time.

    Stages, in order: [schedule] (legality), [numeric:model]
    (value-range / int16 quantization certification of the source model,
    {!Tb_analysis.Numeric} — advisory, so its N00x findings are demoted
    to info severity here), [hir] (tiling / LUT / padding
    / groups vs. the source model), [validate:hir] (source ↔ HIR
    translation validation), [mir:lower], [mir:specialize],
    [validate:mir] (HIR ↔ walk-kind semantics), [mir:interleave],
    [mir:parallelize] (loop-nest well-formedness and the row-partition
    race proof after every MIR pass), [lir:layout] (buffer closure),
    [validate:lir] (MIR ↔ layout buffers), [lir:walks] (interval dataflow
    over every generated walk variant) and [validate:reg] (layout ↔
    register-IR walk programs plus the unroll-and-jam renaming check).
    The [validate:*] stages run {!Tb_analysis.Validate}'s per-tree path
    summaries and refute any divergence with a concrete witness row (the
    T00x diagnostic family).

    Compilation fails — [Error report] — as soon as a stage produces an
    [Error]-severity diagnostic; warnings and infos are collected and
    carried through. *)

type mode =
  | No_verify  (** just compile; stages still run one at a time *)
  | Verify_final  (** one {!Tb_analysis.Tbcheck.check_lowered} at the end *)
  | Verify_each  (** verify between every pass (the tbcheck pipeline) *)

type stage_report = {
  stage : string;
  diagnostics : Tb_diag.Diagnostic.t list;
}

type report = { mode : mode; stages : stage_report list }

val diagnostics : report -> Tb_diag.Diagnostic.t list
(** All findings, in stage order. *)

val ok : report -> bool
(** No [Error]-severity finding in any stage. *)

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

val lower :
  ?mode:mode ->
  ?batch_size:int ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  Tb_model.Forest.t ->
  Tb_hir.Schedule.t ->
  (Tb_lir.Lower.t * report, report) result
(** Run the verified pipeline. [batch_size] (default 1024) parameterizes
    the deployment-dependent checks. Defaults to [Verify_each]. *)

val compile :
  ?mode:mode ->
  ?batch_size:int ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?schedule:Tb_hir.Schedule.t ->
  Tb_model.Forest.t ->
  (Treebeard.t * report, report) result
(** {!lower} plus backend code generation — the verified counterpart of
    {!Treebeard.make}. *)
