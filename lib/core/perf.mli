(** Simulated performance of a compiled program on a CPU target.

    Combines the instrumented execution ({!Tb_vm.Profiler}), the pipeline
    cost model ({!Tb_cpu.Cost_model}) and the multicore scaling model into
    one call. All figure-generating benchmarks go through this module. *)

type t = {
  cycles_per_row : float;
  time_per_row_us : float;
      (** at the target's nominal clock ({!Tb_cpu.Config.us_of_cycles}) *)
  breakdown : Tb_cpu.Cost_model.breakdown;
  workload : Tb_cpu.Cost_model.workload;
}

val simulate :
  target:Tb_cpu.Config.t ->
  ?threads:int ->
  ?batch:int ->
  ?sample:int ->
  Tb_lir.Lower.t ->
  float array array ->
  t
(** [simulate ~target lowered rows]: profile on at most [sample] rows
    (default 48) drawn from [rows], scale to [batch] (default the full
    [rows] length), apply the cost model, then the multicore model for
    [threads] (default the schedule's thread count). *)

val naive_parallel_efficiency : float
(** Efficiency factor charged to Treebeard's naive static row-loop
    partitioning relative to ideal multicore scaling (§IV-C). *)

val speedup : baseline:t -> t -> float
(** [speedup ~baseline x] = baseline time / x time. *)
