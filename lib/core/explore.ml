module Schedule = Tb_hir.Schedule
module Lower = Tb_lir.Lower

type result = {
  schedule : Schedule.t;
  perf : Perf.t;
  evaluated : int;
}

let evaluate ~target ?profiles ?sample ?threads forest schedule rows =
  let lowered = Lower.lower ?profiles forest schedule in
  Perf.simulate ~target ?threads ?sample lowered rows

let better a b = a.Perf.cycles_per_row < b.Perf.cycles_per_row

let search ~target ?profiles ?sample ?threads forest rows candidates =
  let evaluated = ref 0 in
  let score schedule =
    incr evaluated;
    (* Deep probability-tiled chains can overflow the array layout's
       implicit indexing; treat such candidates as infeasible. *)
    match evaluate ~target ?profiles ?sample ?threads forest schedule rows with
    | perf -> Some perf
    | exception Invalid_argument _ -> None
  in
  let best =
    List.fold_left
      (fun best schedule ->
        match score schedule with
        | None -> best
        | Some perf -> (
          match best with
          | Some (_, bp) when not (better perf bp) -> best
          | Some _ | None -> Some (schedule, perf)))
      None candidates
  in
  match best with
  | None -> invalid_arg "Explore: no feasible schedule"
  | Some (schedule, perf) -> { schedule; perf; evaluated = !evaluated }

let exhaustive ~target ?profiles ?sample ?threads ?(grid = Schedule.table2_grid)
    forest rows =
  search ~target ?profiles ?sample ?threads forest rows grid

let greedy ~target ?profiles ?sample ?threads forest rows =
  let evaluated = ref 0 in
  let score schedule =
    incr evaluated;
    match evaluate ~target ?profiles ?sample ?threads forest schedule rows with
    | perf -> Some perf
    | exception Invalid_argument _ -> None
  in
  (* Coordinate descent: sweep each axis holding the others fixed. *)
  let current = ref { Schedule.default with interleave = 1 } in
  let current_perf = ref None in
  let consider schedule =
    match score schedule with
    | None -> ()
    | Some perf -> (
      match !current_perf with
      | Some bp when not (better perf bp) -> ()
      | Some _ | None ->
        current := schedule;
        current_perf := Some perf)
  in
  let sweep variants = List.iter (fun v -> consider (v !current)) variants in
  consider !current;
  sweep
    [
      (fun s -> { s with Schedule.loop_order = Schedule.One_tree_at_a_time });
      (fun s -> { s with Schedule.loop_order = Schedule.One_row_at_a_time });
    ];
  (* Tile size and interleave interact strongly (interleaving is what
     hides the vector step's long dependency chain), so sweep them
     jointly. *)
  sweep
    (List.concat_map
       (fun nt ->
         List.map
           (fun il (s : Schedule.t) ->
             {
               s with
               Schedule.tile_size = nt;
               interleave = il;
               layout =
                 (if nt >= 4 then Schedule.Sparse_layout else Schedule.Array_layout);
             })
           [ 1; 4; 8 ])
       [ 1; 2; 4; 8 ]);
  sweep
    [
      (fun s -> { s with Schedule.tiling = Schedule.Basic });
      (fun s -> { s with Schedule.tiling = Schedule.Probability_based; alpha = 0.05 });
      (fun s -> { s with Schedule.tiling = Schedule.Probability_based; alpha = 0.075 });
      (fun s -> { s with Schedule.tiling = Schedule.Probability_based; alpha = 0.1 });
    ];
  sweep
    [
      (fun s -> { s with Schedule.pad_and_unroll = true; peel = true });
      (fun s -> { s with Schedule.pad_and_unroll = false; peel = true });
      (fun s -> { s with Schedule.pad_and_unroll = false; peel = false });
    ];
  sweep
    (List.map
       (fun il (s : Schedule.t) -> { s with Schedule.interleave = il })
       [ 1; 2; 4; 8 ]);
  sweep
    [
      (fun s -> { s with Schedule.layout = Schedule.Sparse_layout });
      (fun s -> { s with Schedule.layout = Schedule.Array_layout });
    ];
  match !current_perf with
  | None -> invalid_arg "Explore.greedy: no feasible schedule"
  | Some perf -> { schedule = !current; perf; evaluated = !evaluated }

(* ---------------- post-search calibration guard ---------------- *)

module Cost_check = Tb_analysis.Cost_check

let check_champion ~target ?profiles ?sample ?(rivals = Cost_check.reduced_grid)
    ?tol forest rows result =
  (* Re-rank the champion against the rival set with the measured side of
     the calibration lint (full-batch instrumented counts + JIT wall
     clock); a C001 finding means the simulated search picked a schedule
     real execution disagrees with. Rivals compile through the verified
     pipeline so a miscompiled candidate can't masquerade as "faster". *)
  let grid =
    result.schedule
    :: List.filter (fun s -> s <> result.schedule) rivals
  in
  let compile schedule =
    (* Passman would be the natural front end here, but Passman depends on
       Treebeard which depends on this module; lower + the whole-pipeline
       check is its Verify_final mode. *)
    let lowered = Lower.lower ?profiles forest schedule in
    let ds = Tb_analysis.Tbcheck.check_lowered lowered in
    if Tb_diag.Diagnostic.has_errors ds then
      Error (Tb_diag.Diagnostic.summary ds)
    else Ok lowered
  in
  let report =
    Cost_check.calibrate ~target ?tol ?sample ~compile
      ~name:"champion-guard" ~grid rows
  in
  (report, List.filter (fun d -> d.Tb_diag.Diagnostic.code = "C001") report.Cost_check.findings)
