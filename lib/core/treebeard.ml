module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Lower = Tb_lir.Lower
module Jit = Tb_vm.Jit

type t = {
  forest : Forest.t;
  schedule : Schedule.t;
  lowered : Lower.t;
  predict : float array array -> float array array;
}

let make ?(plan = `Schedule Schedule.default) ?profiles ?training_rows
    ?(backend = `Threaded) source =
  let forest =
    match source with
    | `Forest f -> f
    | `File path -> Tb_model.Serialize.of_file path
  in
  let profiles =
    match profiles with
    | Some _ as p -> p
    | None ->
      Option.map (Tb_model.Model_stats.profile_forest forest) training_rows
  in
  let schedule =
    match plan with
    | `Schedule s -> s
    | `Auto target ->
      let sample =
        match training_rows with
        | Some rows when Array.length rows > 0 -> rows
        | Some _ | None ->
          (* No data provided: synthesize a neutral probe batch. *)
          let rng = Tb_util.Prng.create 7 in
          Array.init 48 (fun _ ->
              Array.init forest.Forest.num_features (fun _ ->
                  Tb_util.Prng.gaussian rng))
      in
      let result = Explore.greedy ~target ?profiles forest sample in
      result.Explore.schedule
  in
  let schedule =
    match backend with
    | `Threaded -> schedule
    | `Single_thread -> fst (Schedule.clamp_threads ~max_threads:1 schedule)
  in
  let lowered = Lower.lower ?profiles forest schedule in
  let predict =
    match backend with
    | `Threaded -> Jit.compile lowered
    | `Single_thread -> Jit.compile_single_thread lowered
  in
  { forest; schedule; lowered; predict }

let predict_forest t rows = t.predict rows

let predict_one t row =
  match t.predict [| row |] with
  | [| out |] -> out
  | _ -> assert false

let dump_ir t = Lower.dump t.lowered
