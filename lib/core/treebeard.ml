module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Lower = Tb_lir.Lower
module Jit = Tb_vm.Jit

type t = {
  forest : Forest.t;
  schedule : Schedule.t;
  lowered : Lower.t;
  predict : float array array -> float array array;
}

let compile ?(schedule = Schedule.default) ?profiles forest =
  let lowered = Lower.lower ?profiles forest schedule in
  { forest; schedule; lowered; predict = Jit.compile lowered }

let compile_auto ?(target = Tb_cpu.Config.intel_rocket_lake) ?training_rows forest =
  let profiles =
    Option.map (Tb_model.Model_stats.profile_forest forest) training_rows
  in
  let sample =
    match training_rows with
    | Some rows when Array.length rows > 0 -> rows
    | Some _ | None ->
      (* No data provided: synthesize a neutral probe batch. *)
      let rng = Tb_util.Prng.create 7 in
      Array.init 48 (fun _ ->
          Array.init forest.Forest.num_features (fun _ ->
              Tb_util.Prng.gaussian rng))
  in
  let result = Explore.greedy ~target ?profiles forest sample in
  compile ~schedule:result.Explore.schedule ?profiles forest

let predict_forest t rows = t.predict rows

let predict_one t row =
  match t.predict [| row |] with
  | [| out |] -> out
  | _ -> assert false

let of_file ?schedule path =
  compile ?schedule (Tb_model.Serialize.of_file path)

let dump_ir t = Lower.dump t.lowered
