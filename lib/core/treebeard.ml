module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Pack = Tb_lir.Pack
module Jit = Tb_vm.Jit
module Numeric = Tb_analysis.Numeric
module Validate = Tb_analysis.Validate
module D = Tb_diag.Diagnostic
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model

type quant_request = { bits : [ `I8 | `I16 ]; tolerance : float }
type precision = [ `Float | `Quantized of quant_request ]
type tier = [ `Float | `Int8 | `Int16 ]

let tier_to_string = function
  | `Float -> "float"
  | `Int8 -> "int8"
  | `Int16 -> "int16"

let precision_of_string = function
  | "float" -> Ok `Float
  | "int8" ->
    Ok (`Quantized { bits = `I8; tolerance = Numeric.default_tolerance })
  | "int16" ->
    Ok (`Quantized { bits = `I16; tolerance = Numeric.default_tolerance })
  | s -> Error (Printf.sprintf "unknown precision %S (float|int8|int16)" s)

let precision_to_string = function
  | `Float -> "float"
  | `Quantized { bits = `I8; _ } -> "int8"
  | `Quantized { bits = `I16; _ } -> "int16"

let width_of_bits = function `I8 -> Numeric.I8 | `I16 -> Numeric.I16

let qspec_of_plan (p : Numeric.plan) =
  {
    Layout.qbits = Numeric.bits p.Numeric.width;
    q_max = p.Numeric.q_max;
    feature_exp = Array.copy p.Numeric.feature_exp;
    leaf_exp = p.Numeric.leaf_exp;
  }

(* N002 (threshold collisions) does not refute the certificate: dead-zone
   rows may route differently from the float path, which the quantized
   tier's contract explicitly permits. Overflow (N001), excess deviation
   (N003) and a possible decision flip (N004) do. *)
let refuting_findings (cert : Numeric.certificate) =
  List.filter (fun d -> d.D.code <> "N002") cert.Numeric.findings

type resolution =
  | Float_tier of D.t list  (** fallback (or explicit) reasons, may be [] *)
  | Quant_tier of Numeric.certificate

let resolve_precision ?(precision = `Float) forest =
  match precision with
  | `Float -> Float_tier []
  | `Quantized { bits; tolerance } ->
    let width = width_of_bits bits in
    let cert = Numeric.certify ~tolerance ~width forest in
    (match refuting_findings cert with
    | [] -> Quant_tier cert
    | blocking ->
      let info =
        D.infof ~level:D.Numeric ~code:"N005" ~path:[]
          "precision %s refused: %d certification finding(s) (%s); falling \
           back to the float tier"
          (Numeric.width_to_string width)
          (List.length blocking)
          (String.concat ", "
             (List.sort_uniq compare
                (List.map (fun d -> d.D.code) blocking)))
      in
      Float_tier
        (info :: List.map (fun d -> { d with D.severity = D.Info }) blocking))

type t = {
  forest : Forest.t;
  schedule : Schedule.t;
  lowered : Lower.t;
  predict : float array array -> float array array;
  tier : tier;
  resident_k : int;
  certificate : Numeric.certificate option;
  precision_diags : D.t list;
}

(* Resident-prefix depth cap: past a few levels the baked code grows
   geometrically while the saved chain latency is already spent. *)
let max_resident_k = 3

let tune_resident_k ~target (lowered : Lower.t) sample =
  let q =
    match lowered.Lower.layout.Layout.quant with
    | Some q -> q
    | None -> invalid_arg "Treebeard: tuning resident depth on a float layout"
  in
  let probe =
    if Array.length sample > 32 then Array.sub sample 0 32 else sample
  in
  if Array.length probe = 0 then 1
  else
    let w = Tb_vm.Profiler.profile ~target lowered probe in
    Cost_model.tune_resident_k target w lowered.Lower.layout
      ~walk_depth:lowered.Lower.walk_depth ~qbits:q.Layout.qbits
      ~max_k:max_resident_k

let make ?(plan = `Schedule Schedule.default) ?profiles ?training_rows
    ?(backend = `Threaded) ?(precision = `Float) source =
  let forest =
    match source with
    | `Forest f -> f
    | `File path -> Tb_model.Serialize.of_file path
  in
  let profiles =
    match profiles with
    | Some _ as p -> p
    | None ->
      Option.map (Tb_model.Model_stats.profile_forest forest) training_rows
  in
  let sample =
    match training_rows with
    | Some rows when Array.length rows > 0 -> rows
    | Some _ | None ->
      (* No data provided: synthesize a neutral probe batch. *)
      let rng = Tb_util.Prng.create 7 in
      Array.init 48 (fun _ ->
          Array.init forest.Forest.num_features (fun _ ->
              Tb_util.Prng.gaussian rng))
  in
  let schedule =
    match plan with
    | `Schedule s -> s
    | `Auto target ->
      let result = Explore.greedy ~target ?profiles forest sample in
      result.Explore.schedule
  in
  let schedule =
    match backend with
    | `Threaded -> schedule
    | `Single_thread -> fst (Schedule.clamp_threads ~max_threads:1 schedule)
  in
  let resolution = resolve_precision ~precision forest in
  (* A certified plan can still be refuted by the differential stage pair
     (a compiler bug in the quantized lowering): degrade to the float
     tier and surface the findings rather than serve wrong integers. *)
  let resolution =
    match resolution with
    | Float_tier _ -> resolution
    | Quant_tier cert -> (
      let quant = qspec_of_plan cert.Numeric.plan in
      let qlowered = Lower.lower ?profiles ~quant forest schedule in
      match Validate.check_quant forest cert.Numeric.plan qlowered with
      | [] -> resolution
      | findings -> Float_tier (Validate.to_diagnostics findings))
  in
  match resolution with
  | Float_tier diags ->
    let lowered = Lower.lower ?profiles forest schedule in
    let predict =
      match backend with
      | `Threaded -> Jit.compile lowered
      | `Single_thread -> Jit.compile_single_thread lowered
    in
    {
      forest;
      schedule;
      lowered;
      predict;
      tier = `Float;
      resident_k = 0;
      certificate = None;
      precision_diags = diags;
    }
  | Quant_tier cert ->
    let quant = qspec_of_plan cert.Numeric.plan in
    let lowered = Lower.lower ?profiles ~quant forest schedule in
    let target =
      (* The resident-depth autotune needs a machine model even under an
         explicit schedule; default to the Intel testbed. *)
      match plan with
      | `Auto target -> target
      | `Schedule _ -> Config.intel_rocket_lake
    in
    let resident_k = tune_resident_k ~target lowered sample in
    let pack_quant =
      {
        Pack.resident_k;
        dev_bound = Array.copy cert.Numeric.dev_bound;
        tolerance = cert.Numeric.plan.Numeric.tolerance;
      }
    in
    let pack = Pack.of_lower ~quant:pack_quant lowered in
    let predict =
      match backend with
      | `Threaded -> Jit.instantiate pack
      | `Single_thread -> Jit.instantiate_single_thread pack
    in
    {
      forest;
      schedule;
      lowered;
      predict;
      tier =
        (match cert.Numeric.plan.Numeric.width with
        | Numeric.I8 -> `Int8
        | Numeric.I16 -> `Int16);
      resident_k;
      certificate = Some cert;
      precision_diags = [];
    }

let predict_forest t rows = t.predict rows

let predict_one t row =
  match t.predict [| row |] with
  | [| out |] -> out
  | _ -> assert false

let dump_ir t = Lower.dump t.lowered
