(** TREEBEARD — an optimizing compiler for decision-tree ensemble inference.

    This is the library's public entry point. {!make} takes an ensemble
    source (an in-memory forest or a serialized model file) and a
    compilation plan (an explicit {!Tb_hir.Schedule.t} or the {!Explore}
    autotuner aimed at a CPU target), runs the full pipeline — tiling,
    padding and reordering on the high-level IR; loop ordering, walk
    interleaving, peeling/unrolling and parallelization on the mid-level
    IR; layout selection and vectorized walk lowering on the low-level IR
    — and returns a batch inference function ([predictForest] in the
    paper).

    {[
      (* explicit schedule, model file on disk *)
      let compiled = Treebeard.make (`File "model.json") in
      let predictions = Treebeard.predict_forest compiled rows in

      (* autotuned for a CPU target, in-memory forest *)
      let tuned =
        Treebeard.make ~plan:(`Auto Tb_cpu.Config.intel_rocket_lake)
          ~training_rows (`Forest forest)
      in
      ...
    ]}

    Use {!Explore} directly for visibility into the autotuner's search,
    and {!Perf} for simulated performance estimates and stall
    breakdowns. *)

type t = {
  forest : Tb_model.Forest.t;
  schedule : Tb_hir.Schedule.t;
  lowered : Tb_lir.Lower.t;
  predict : float array array -> float array array;
}

val make :
  ?plan:[ `Schedule of Tb_hir.Schedule.t | `Auto of Tb_cpu.Config.t ] ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?training_rows:float array array ->
  ?backend:[ `Threaded | `Single_thread ] ->
  [ `Forest of Tb_model.Forest.t | `File of string ] ->
  t
(** The one compilation entry point.

    - [source]: [`Forest f] compiles an in-memory ensemble; [`File path]
      deserializes one first (see {!Tb_model.Serialize}).
    - [plan]: [`Schedule s] compiles exactly [s] (default
      {!Tb_hir.Schedule.default}); [`Auto target] runs the {!Explore}
      greedy autotuner for the given CPU and compiles its champion.
    - [profiles]: leaf-probability estimates enabling probability-based
      tiling. When omitted but [training_rows] is given, profiles are
      derived from those rows ({!Tb_model.Model_stats.profile_forest}).
    - [training_rows]: representative input rows. Besides profiling,
      [`Auto] measures candidate schedules on them (a synthetic Gaussian
      probe batch is used when absent).
    - [backend]: [`Single_thread] clamps the schedule's row-loop
      parallelism to one thread ({!Tb_hir.Schedule.clamp_threads}) and
      builds the predictor with {!Tb_vm.Jit.compile_single_thread} — for
      hosts like the serving runtime whose workers each own a core.
      Default [`Threaded] keeps the schedule's own [num_threads]. *)

val predict_forest : t -> float array array -> float array array
(** Batch inference: one raw margin vector per row. Feature values must be
    finite when the schedule enables padding + unrolling (see
    {!Tb_hir.Padding}). *)

val predict_one : t -> float array -> float array

val dump_ir : t -> string
(** The compiled program's IR dump (schedule, MIR loop nest, LIR walk,
    layout stats). *)
