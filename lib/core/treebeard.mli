(** TREEBEARD — an optimizing compiler for decision-tree ensemble inference.

    This is the library's public entry point. Given a trained (or
    deserialized) ensemble and a {!Tb_hir.Schedule.t}, {!compile} runs the
    full pipeline — tiling, padding and reordering on the high-level IR;
    loop ordering, walk interleaving, peeling/unrolling and
    parallelization on the mid-level IR; layout selection and vectorized
    walk lowering on the low-level IR — and returns a batch inference
    function ([predictForest] in the paper).

    {[
      let model = Tb_model.Serialize.of_file "model.json" in
      let compiled = Treebeard.compile model in
      let predictions = Treebeard.predict_forest compiled rows in
      ...
    ]}

    Use {!Explore} to pick the best schedule for a model/CPU pair, and
    {!Perf} to obtain simulated performance estimates and stall
    breakdowns. *)

type t = {
  forest : Tb_model.Forest.t;
  schedule : Tb_hir.Schedule.t;
  lowered : Tb_lir.Lower.t;
  predict : float array array -> float array array;
}

val compile :
  ?schedule:Tb_hir.Schedule.t ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  Tb_model.Forest.t ->
  t
(** Compile with an explicit schedule (default {!Tb_hir.Schedule.default}).
    Pass [profiles] (leaf-probability estimates from training data) to
    enable probability-based tiling. *)

val compile_auto :
  ?target:Tb_cpu.Config.t ->
  ?training_rows:float array array ->
  Tb_model.Forest.t ->
  t
(** Compile with the schedule chosen by the {!Explore} autotuner for the
    given CPU target (default Intel Rocket Lake). [training_rows] enable
    leaf-probability profiling (and thus probability-based tiling). *)

val predict_forest : t -> float array array -> float array array
(** Batch inference: one raw margin vector per row. Feature values must be
    finite when the schedule enables padding + unrolling (see
    {!Tb_hir.Padding}). *)

val predict_one : t -> float array -> float array

val of_file :
  ?schedule:Tb_hir.Schedule.t -> string -> t
(** Load a serialized ensemble (see {!Tb_model.Serialize}) and compile. *)

val dump_ir : t -> string
(** The compiled program's IR dump (schedule, MIR loop nest, LIR walk,
    layout stats). *)
