(** TREEBEARD — an optimizing compiler for decision-tree ensemble inference.

    This is the library's public entry point. {!make} takes an ensemble
    source (an in-memory forest or a serialized model file) and a
    compilation plan (an explicit {!Tb_hir.Schedule.t} or the {!Explore}
    autotuner aimed at a CPU target), runs the full pipeline — tiling,
    padding and reordering on the high-level IR; loop ordering, walk
    interleaving, peeling/unrolling and parallelization on the mid-level
    IR; layout selection and vectorized walk lowering on the low-level IR
    — and returns a batch inference function ([predictForest] in the
    paper).

    {[
      (* explicit schedule, model file on disk *)
      let compiled = Treebeard.make (`File "model.json") in
      let predictions = Treebeard.predict_forest compiled rows in

      (* autotuned for a CPU target, in-memory forest *)
      let tuned =
        Treebeard.make ~plan:(`Auto Tb_cpu.Config.intel_rocket_lake)
          ~training_rows (`Forest forest)
      in
      ...
    ]}

    Use {!Explore} directly for visibility into the autotuner's search,
    and {!Perf} for simulated performance estimates and stall
    breakdowns. *)

type quant_request = { bits : [ `I8 | `I16 ]; tolerance : float }
(** A request for the integer fast path: quantized value width and the
    output-deviation tolerance the certificate must prove. *)

type precision = [ `Float | `Quantized of quant_request ]
(** The requested precision tier. [`Quantized] is a {e request}: the
    model is certified first ({!Tb_analysis.Numeric.certify}) and the
    compile falls back to [`Float] — with an [N005] info diagnostic —
    when N001/N003/N004 findings refute the plan. N002 (threshold
    collisions) does not refute: rows inside a dead zone
    ({!Tb_analysis.Numeric.dead_zone_row}) may route differently from
    the float path, which the quantized tier permits by contract. *)

type tier = [ `Float | `Int8 | `Int16 ]
(** The precision tier a compile actually resolved to. *)

val tier_to_string : tier -> string
(** ["float"] / ["int8"] / ["int16"]. *)

val precision_to_string : precision -> string
(** The requested tier's name (tolerance is not rendered). *)

val precision_of_string : string -> (precision, string) result
(** ["float"]/["int8"]/["int16"]; quantized tiers get
    {!Tb_analysis.Numeric.default_tolerance} — the CLI's [--precision]
    parser. *)

type resolution =
  | Float_tier of Tb_diag.Diagnostic.t list
      (** float path; the diagnostics explain a quantized-request
          fallback ([[]] when float was requested) *)
  | Quant_tier of Tb_analysis.Numeric.certificate

val resolve_precision :
  ?precision:precision -> Tb_model.Forest.t -> resolution
(** The certification gate {!make} runs, exposed for hosts (the serving
    registry) that cache the outcome per model. *)

val qspec_of_plan : Tb_analysis.Numeric.plan -> Tb_lir.Layout.qspec
(** The layout-level quantization spec of a certified plan — what
    {!Tb_lir.Lower.lower}'s [?quant] expects. *)

val tune_resident_k :
  target:Tb_cpu.Config.t -> Tb_lir.Lower.t -> float array array -> int
(** Autotune the register-resident prefix depth of a quantized lowering
    for a CPU target: profile the walk on (at most 32 of) the sample
    rows and pick the depth the cost model scores cheapest
    ({!Tb_cpu.Cost_model.tune_resident_k}), capped at 3 levels.
    @raise Invalid_argument on a float lowering. *)

type t = {
  forest : Tb_model.Forest.t;
  schedule : Tb_hir.Schedule.t;
  lowered : Tb_lir.Lower.t;
  predict : float array array -> float array array;
  tier : tier;  (** resolved precision tier *)
  resident_k : int;
      (** autotuned register-resident prefix depth (0 on the float tier) *)
  certificate : Tb_analysis.Numeric.certificate option;
      (** present iff [tier] is quantized *)
  precision_diags : Tb_diag.Diagnostic.t list;
      (** fallback diagnostics when a quantized request resolved to
          [`Float]; [[]] otherwise *)
}

val make :
  ?plan:[ `Schedule of Tb_hir.Schedule.t | `Auto of Tb_cpu.Config.t ] ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?training_rows:float array array ->
  ?backend:[ `Threaded | `Single_thread ] ->
  ?precision:precision ->
  [ `Forest of Tb_model.Forest.t | `File of string ] ->
  t
(** The one compilation entry point.

    - [source]: [`Forest f] compiles an in-memory ensemble; [`File path]
      deserializes one first (see {!Tb_model.Serialize}).
    - [plan]: [`Schedule s] compiles exactly [s] (default
      {!Tb_hir.Schedule.default}); [`Auto target] runs the {!Explore}
      greedy autotuner for the given CPU and compiles its champion.
    - [profiles]: leaf-probability estimates enabling probability-based
      tiling. When omitted but [training_rows] is given, profiles are
      derived from those rows ({!Tb_model.Model_stats.profile_forest}).
    - [training_rows]: representative input rows. Besides profiling,
      [`Auto] measures candidate schedules on them (a synthetic Gaussian
      probe batch is used when absent).
    - [backend]: [`Single_thread] clamps the schedule's row-loop
      parallelism to one thread ({!Tb_hir.Schedule.clamp_threads}) and
      builds the predictor with {!Tb_vm.Jit.compile_single_thread} — for
      hosts like the serving runtime whose workers each own a core.
      Default [`Threaded] keeps the schedule's own [num_threads].
    - [precision]: [`Quantized r] compiles the integer fast path when the
      model certifies clean at [r.bits]/[r.tolerance] — layout buffers
      rewritten to the certified fixed-point integers, a
      register-resident prefix of autotuned depth, predictions
      bitwise-equal to {!Tb_analysis.Numeric.qpredict_raw}. The
      quantized stage pair ({!Tb_analysis.Validate.check_quant}) is run
      on every quantized compile; any finding degrades to [`Float] with
      the findings in [precision_diags]. Default [`Float]. *)

val predict_forest : t -> float array array -> float array array
(** Batch inference: one raw margin vector per row. Feature values must be
    finite when the schedule enables padding + unrolling (see
    {!Tb_hir.Padding}). *)

val predict_one : t -> float array -> float array

val dump_ir : t -> string
(** The compiled program's IR dump (schedule, MIR loop nest, LIR walk,
    layout stats). *)
