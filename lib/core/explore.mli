(** Schedule exploration (the Table II search).

    Treebeard's performance comes from choosing the right combination of
    optimizations per (model, CPU) pair. Two search strategies:

    - {!greedy}: staged coordinate descent over loop order, tile size,
      tiling kind, padding/unrolling, interleave factor and layout
      (~20 candidate evaluations — what the benchmarks use by default);
    - {!exhaustive}: every schedule of {!Tb_hir.Schedule.table2_grid}
      (hundreds of evaluations — what the paper's offline exploration
      does).

    Candidates are scored by {!Perf.simulate} on a row sample. *)

type result = {
  schedule : Tb_hir.Schedule.t;
  perf : Perf.t;
  evaluated : int;  (** number of candidate schedules simulated *)
}

val greedy :
  target:Tb_cpu.Config.t ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?sample:int ->
  ?threads:int ->
  Tb_model.Forest.t ->
  float array array ->
  result

val exhaustive :
  target:Tb_cpu.Config.t ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?sample:int ->
  ?threads:int ->
  ?grid:Tb_hir.Schedule.t list ->
  Tb_model.Forest.t ->
  float array array ->
  result

val evaluate :
  target:Tb_cpu.Config.t ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?sample:int ->
  ?threads:int ->
  Tb_model.Forest.t ->
  Tb_hir.Schedule.t ->
  float array array ->
  Perf.t
(** Score one schedule (compile + simulate). *)

val check_champion :
  target:Tb_cpu.Config.t ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?sample:int ->
  ?rivals:Tb_hir.Schedule.t list ->
  ?tol:Tb_analysis.Cost_check.tolerance ->
  Tb_model.Forest.t ->
  float array array ->
  result ->
  Tb_analysis.Cost_check.report * Tb_diag.Diagnostic.t list
(** Optional post-search guard: run the cost-model calibration lint
    ({!Tb_analysis.Cost_check}) over the search champion plus a rival set
    (default {!Tb_analysis.Cost_check.reduced_grid}), verifying every
    candidate with {!Tb_analysis.Tbcheck.check_lowered} so a miscompiled
    rival can't masquerade as faster, and return the report together with
    the [C001] findings that concern the ranking. An empty second
    component means measured execution agrees the champion belongs in the
    measured top-k. *)
