(* Alias / register-group analysis for unroll-and-jam walks.

   A jammed program (Reg_codegen.jam_lanes) claims lane l owns the
   register window [l*width, (l+1)*width) of each file. This module does
   not trust that convention: it recomputes each statement's lane from the
   registers it actually reads and writes and reports an L013 lane
   collision whenever a statement straddles windows. On success the
   program provably factors into independent per-lane slices, and
   [project] extracts lane l as a plain single-lane program (registers
   renamed down to window 0) for precise, non-widened per-lane bounds
   analysis in Lir_check. *)

module D = Tb_diag.Diagnostic
open Tb_lir.Reg_ir

type widths = { wi : int; wf : int; wv : int }

let widths p =
  { wi = lane_width p; wf = lane_fwidth p; wv = lane_vwidth p }

(* Lanes touched by one statement, including nested control-flow bodies.
   Registers out of file range get a lane anyway; Reg_ir.check owns the
   range diagnostics (L001). *)
let stmt_lanes w s =
  let acc = ref [] in
  let add lane = if not (List.mem lane !acc) then acc := lane :: !acc in
  let ir r = add (r / w.wi) in
  let fr r = add (r / w.wf) in
  let vr r = add (r / w.wv) in
  let iexpr = function
    | Iconst _ -> ()
    | Imov a | Imul_const (a, _) | Iadd_const (a, _) | Iload (_, a) -> ir a
    | Iadd (a, b) | Isub (a, b) -> ir a; ir b
    | Movemask v -> vr v
  in
  let fexpr = function Fload (_, a) -> ir a in
  let vexpr = function
    | Vload_f (_, a) | Vload_i (_, a) -> ir a
    | Gather (_, v) -> vr v
    | Vcmp_lt (a, b) -> vr a; vr b
  in
  let cond = function Ige (r, _) | Ieq_load (_, r, _) -> ir r in
  let rec stmt = function
    | Iset (r, e) -> ir r; iexpr e
    | Fset (r, e) -> fr r; fexpr e
    | Vset (r, e) -> vr r; vexpr e
    | While (c, b) -> cond c; List.iter stmt b
    | If (c, t, e) -> cond c; List.iter stmt t; List.iter stmt e
    | Repeat (_, b) -> List.iter stmt b
  in
  stmt s;
  List.sort compare !acc

type result = {
  lanes : int;
  diags : D.t list;  (* L013 lane-collision errors; empty = partition holds *)
}

let check (p : walk_program) =
  if p.lanes <= 1 then { lanes = 1; diags = [] }
  else begin
    let diags = ref [] in
    let err path fmt =
      Printf.ksprintf
        (fun message ->
          diags := D.errorf ~level:D.Lir ~code:"L013" ~path "%s" message
                   :: !diags)
        fmt
    in
    if
      p.num_iregs mod p.lanes <> 0
      || p.num_fregs mod p.lanes <> 0
      || p.num_vregs mod p.lanes <> 0
    then
      err [] "register files (%d/%d/%d) not divisible into %d lane windows"
        p.num_iregs p.num_fregs p.num_vregs p.lanes
    else begin
      let w = widths p in
      let opno = ref (-1) in
      (* Repeat is the only construct whose body may mix lanes (lockstep
         interleaving); every other statement — including a While/If with
         its whole nested body — must stay inside one window. *)
      let rec go stmts =
        List.iter
          (fun s ->
            incr opno;
            match s with
            | Repeat (_, body) -> go body
            | _ -> (
              match stmt_lanes w s with
              | [] | [ _ ] -> ()
              | ls ->
                err
                  [ Printf.sprintf "op %d" !opno ]
                  "statement touches registers of lanes {%s}: jam lanes \
                   must not share registers"
                  (String.concat ", " (List.map string_of_int ls))))
          stmts
      in
      go p.body
    end;
    { lanes = p.lanes; diags = List.rev !diags }
  end

(* Extract lane [lane] as a single-lane program. Only meaningful when
   [check] reported no collision: statements are kept iff every register
   they touch is in the lane's windows, then renamed down to window 0 —
   which makes the projection of lane l literally comparable with the
   projection of lane 0. *)
let project (p : walk_program) ~lane =
  if p.lanes <= 1 then p
  else begin
    let w = widths p in
    let ir r = r - (lane * w.wi) in
    let fr r = r - (lane * w.wf) in
    let vr r = r - (lane * w.wv) in
    let iexpr = function
      | Iconst c -> Iconst c
      | Imov a -> Imov (ir a)
      | Iadd (a, b) -> Iadd (ir a, ir b)
      | Imul_const (a, c) -> Imul_const (ir a, c)
      | Iadd_const (a, c) -> Iadd_const (ir a, c)
      | Isub (a, b) -> Isub (ir a, ir b)
      | Iload (b, a) -> Iload (b, ir a)
      | Movemask v -> Movemask (vr v)
    in
    let fexpr = function Fload (b, a) -> Fload (b, ir a) in
    let vexpr = function
      | Vload_f (b, a) -> Vload_f (b, ir a)
      | Vload_i (b, a) -> Vload_i (b, ir a)
      | Gather (b, v) -> Gather (b, vr v)
      | Vcmp_lt (a, b) -> Vcmp_lt (vr a, vr b)
    in
    let cond = function
      | Ige (r, c) -> Ige (ir r, c)
      | Ieq_load (b, r, c) -> Ieq_load (b, ir r, c)
    in
    let rec rename = function
      | Iset (r, e) -> Iset (ir r, iexpr e)
      | Fset (r, e) -> Fset (fr r, fexpr e)
      | Vset (r, e) -> Vset (vr r, vexpr e)
      | While (c, b) -> While (cond c, List.map rename b)
      | If (c, t, e) -> If (cond c, List.map rename t, List.map rename e)
      | Repeat (n, b) -> Repeat (n, List.map rename b)
    in
    let rec keep stmts =
      List.filter_map
        (fun s ->
          match s with
          | Repeat (n, body) -> (
            match keep body with [] -> None | b -> Some (Repeat (n, b)))
          | _ -> (
            match stmt_lanes w s with
            | [ l ] when l = lane -> Some (rename s)
            | _ -> None))
        stmts
    in
    {
      p with
      body = keep p.body;
      num_iregs = w.wi;
      num_fregs = w.wf;
      num_vregs = w.wv;
      lanes = 1;
    }
  end
