(* Congruence (stride) abstract domain: a value is abstracted as the set
   { r + k*m | k in Z }. m = 0 means the single constant r; m = 1 is top.
   Invariant: m >= 0, and 0 <= r < m when m > 0. The reduced product with
   intervals lives in Lir_check (tighten_lo / tighten_hi below shrink an
   interval bound to the nearest member of the congruence class). *)

type t = { m : int; r : int }

let norm m r =
  if m = 0 then { m = 0; r }
  else
    let m = abs m in
    { m; r = ((r mod m) + m) mod m }

let top = { m = 1; r = 0 }
let const c = { m = 0; r = c }
let is_top g = g.m = 1
let is_const g = g.m = 0
let equal a b = a.m = b.m && a.r = b.r

let mem x g = if g.m = 0 then x = g.r else (x - g.r) mod g.m = 0

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let add a b =
  if a.m = 0 && b.m = 0 then const (a.r + b.r)
  else norm (gcd a.m b.m) (a.r + b.r)

let sub a b =
  if a.m = 0 && b.m = 0 then const (a.r - b.r)
  else norm (gcd a.m b.m) (a.r - b.r)

let mul_const c g =
  if c = 0 then const 0
  else if g.m = 0 then const (c * g.r)
  else norm (c * g.m) (c * g.r)

(* Join: both classes must be contained, so the new modulus divides both
   moduli and the residue difference. *)
let join a b =
  if equal a b then a
  else
    let m = gcd (gcd a.m b.m) (a.r - b.r) in
    norm m a.r

(* Smallest member of the class that is >= lo (interval reduction). Bounds
   arriving from the interval domain are floats (possibly infinite); only
   finite bounds in int range are tightened. *)
let float_in_int_range f =
  Float.is_finite f
  && f >= float_of_int min_int /. 4.0
  && f <= float_of_int max_int /. 4.0

let tighten_lo g lo =
  if g.m <= 1 || not (float_in_int_range lo) then lo
  else
    let l = int_of_float (Float.ceil lo) in
    let d = (((l - g.r) mod g.m) + g.m) mod g.m in
    float_of_int (if d = 0 then l else l + (g.m - d))

let tighten_hi g hi =
  if g.m <= 1 || not (float_in_int_range hi) then hi
  else
    let h = int_of_float (Float.floor hi) in
    let d = (((h - g.r) mod g.m) + g.m) mod g.m in
    float_of_int (h - d)

let to_string g =
  if g.m = 0 then string_of_int g.r
  else if g.m = 1 then "Z"
  else Printf.sprintf "%d mod %d" g.r g.m
