module D = Tb_diag.Diagnostic
module Schedule = Tb_hir.Schedule
module Itree = Tb_hir.Itree
module Shape = Tb_hir.Shape
module Lut = Tb_hir.Lut
module Tiled_tree = Tb_hir.Tiled_tree
module Reorder = Tb_hir.Reorder
module Program = Tb_hir.Program
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest

let err ~code ~path fmt = D.errorf ~level:D.Hir ~code ~path fmt

let prefix seg ds = List.map (fun d -> { d with D.path = seg :: d.D.path }) ds

(* ------------------------------------------------------------------ *)
(* Schedule legality                                                   *)
(* ------------------------------------------------------------------ *)

let check_schedule ?batch_size ?cores (s : Schedule.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let serr code fmt = D.errorf ~level:D.Schedule ~code ~path:[] fmt in
  let swarn code fmt = D.warningf ~level:D.Schedule ~code ~path:[] fmt in
  if s.Schedule.tile_size < 1 || s.Schedule.tile_size > 8 then
    add (serr "S001" "tile_size %d outside 1..8" s.Schedule.tile_size);
  if s.Schedule.interleave < 1 then
    add (serr "S002" "interleave %d < 1 (1 disables jamming)" s.Schedule.interleave);
  if s.Schedule.num_threads < 1 then
    add (serr "S003" "num_threads %d < 1" s.Schedule.num_threads);
  if not (s.Schedule.alpha > 0.0 && s.Schedule.alpha <= 1.0) then
    add (serr "S004" "alpha %g outside (0, 1]" s.Schedule.alpha);
  if not (s.Schedule.beta > 0.0 && s.Schedule.beta <= 1.0) then
    add (serr "S005" "beta %g outside (0, 1]" s.Schedule.beta);
  if s.Schedule.pad_imbalance_limit < 0 then
    add (serr "S006" "pad_imbalance_limit %d < 0" s.Schedule.pad_imbalance_limit);
  (match batch_size with
  | Some b when b >= 1 ->
    if s.Schedule.num_threads > b then
      add
        (swarn "S010"
           "num_threads %d exceeds batch size %d: trailing domains receive \
            empty row ranges"
           s.Schedule.num_threads b);
    if s.Schedule.interleave > b then
      add
        (swarn "S011"
           "interleave %d exceeds batch size %d: the jam never fills"
           s.Schedule.interleave b)
  | _ -> ());
  (match cores with
  | Some c when c >= 1 && s.Schedule.num_threads > c ->
    add
      (swarn "S013"
         "num_threads %d exceeds the target's %d cores: oversubscribed \
          domains serialize on the row loop (clamp with \
          Schedule.clamp_threads)"
         s.Schedule.num_threads c)
  | _ -> ());
  if s.Schedule.layout = Schedule.Array_layout && s.Schedule.tile_size >= 4 then
    add
      (swarn "S012"
         "array layout with tile size %d: slab size grows as \
          (tile_size+1)^depth; prefer the sparse layout for large tiles"
         s.Schedule.tile_size);
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Tiling validity (the four §III-B1 constraints)                      *)
(* ------------------------------------------------------------------ *)

(* Core shared by [check_tiling] (over a [Tiling.t]) and
   [check_tree_against_source] (over an ownership map reconstructed from a
   tiled tree). Reports every violation instead of stopping at the first. *)
let tiling_core (it : Itree.t) ~tile_size ~(tile_of_node : int array) ~num_tiles
    =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (* Partitioning (H001) + leaf separation (H003). *)
  for n = 0 to it.Itree.num_nodes - 1 do
    let path = [ Printf.sprintf "node %d" n ] in
    if Itree.is_leaf it n then begin
      if tile_of_node.(n) <> -1 then
        add
          (err ~code:"H003" ~path "leaf node %d assigned to tile %d" n
             tile_of_node.(n))
    end
    else if tile_of_node.(n) < 0 || tile_of_node.(n) >= num_tiles then
      add
        (err ~code:"H001" ~path "internal node %d not in any tile (owner %d)"
           n tile_of_node.(n))
  done;
  (* Group internal nodes per tile. *)
  let members = Array.make (max num_tiles 1) [] in
  for n = it.Itree.num_nodes - 1 downto 0 do
    if (not (Itree.is_leaf it n)) && tile_of_node.(n) >= 0
       && tile_of_node.(n) < num_tiles
    then members.(tile_of_node.(n)) <- n :: members.(tile_of_node.(n))
  done;
  for tid = 0 to num_tiles - 1 do
    let path = [ Printf.sprintf "tile %d" tid ] in
    let nodes = members.(tid) in
    let size = List.length nodes in
    if nodes = [] then add (err ~code:"H001" ~path "tile %d is empty" tid)
    else begin
      if size > tile_size then
        add
          (err ~code:"H001" ~path "tile %d has %d nodes, exceeding tile size %d"
             tid size tile_size);
      (* Connectedness (H002): exactly one member's parent lies outside. *)
      let roots =
        List.filter
          (fun n ->
            let p = it.Itree.parent.(n) in
            p < 0 || tile_of_node.(p) <> tid)
          nodes
      in
      (match roots with
      | [ _ ] -> ()
      | rs ->
        add
          (err ~code:"H002" ~path
             "tile %d is not a connected subtree (%d external-parent nodes)"
             tid (List.length rs)));
      (* Maximal tiling (H004): an under-full tile may not have an internal
         out-neighbour. *)
      if size < tile_size then begin
        let offender =
          List.find_opt
            (fun n ->
              List.exists
                (fun c -> (not (Itree.is_leaf it c)) && tile_of_node.(c) <> tid)
                [ it.Itree.left.(n); it.Itree.right.(n) ])
            nodes
        in
        match offender with
        | Some n ->
          add
            (err ~code:"H004" ~path
               "tile %d is under-full (%d < %d) but node %d has an internal \
                out-edge"
               tid size tile_size n)
        | None -> ()
      end
    end
  done;
  List.rev !ds

let check_tiling it (t : Tb_hir.Tiling.t) =
  tiling_core it ~tile_size:t.Tb_hir.Tiling.tile_size
    ~tile_of_node:t.Tb_hir.Tiling.tile_of_node
    ~num_tiles:t.Tb_hir.Tiling.num_tiles

(* ------------------------------------------------------------------ *)
(* LUT totality (H010)                                                 *)
(* ------------------------------------------------------------------ *)

let check_lut lut =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let nt = Lut.tile_size lut in
  let width = 1 lsl nt in
  let rows = Lut.table lut in
  for id = 0 to Lut.num_shapes lut - 1 do
    let path = [ Printf.sprintf "shape %d" id ] in
    let shape = Lut.shape_of_id lut id in
    let exits = Shape.num_exits shape in
    let row = rows.(id) in
    if Array.length row <> width then
      add
        (err ~code:"H010" ~path "LUT row has %d entries, expected 2^%d = %d"
           (Array.length row) nt width)
    else
      for bits = 0 to width - 1 do
        let c = row.(bits) in
        if c < 0 || c >= exits then
          add
            (err ~code:"H010" ~path
               "entry for bits %#x is %d, outside the shape's %d exits" bits c
               exits)
        else begin
          let expect = Shape.navigate shape ~tile_size:nt ~bits in
          if c <> expect then
            add
              (err ~code:"H010" ~path
                 "entry for bits %#x is %d but navigating the shape reaches \
                  exit %d"
                 bits c expect)
        end
      done
  done;
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Tiled-tree structure (H020/H030/H031)                               *)
(* ------------------------------------------------------------------ *)

let check_tiled_tree ?num_features (t : Tiled_tree.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let n = Array.length t.Tiled_tree.nodes in
  if n = 0 then [ err ~code:"H030" ~path:[] "tiled tree has no nodes" ]
  else begin
    let nt = t.Tiled_tree.tile_size in
    let refs = Array.make n 0 in
    Array.iteri
      (fun i node ->
        match node with
        | Tiled_tree.Leaf _ -> ()
        | Tiled_tree.Tile tile ->
          let path = [ Printf.sprintf "tile node %d" i ] in
          if
            Array.length tile.Tiled_tree.features <> nt
            || Array.length tile.Tiled_tree.thresholds <> nt
          then
            add
              (err ~code:"H030" ~path
                 "lane arrays have %d/%d entries, expected tile size %d"
                 (Array.length tile.Tiled_tree.features)
                 (Array.length tile.Tiled_tree.thresholds)
                 nt);
          let shape_size = Shape.size tile.Tiled_tree.shape in
          if shape_size > nt then
            add
              (err ~code:"H030" ~path "shape has %d nodes, exceeding tile size %d"
                 shape_size nt);
          let exits = Shape.num_exits tile.Tiled_tree.shape in
          if Array.length tile.Tiled_tree.children <> exits then
            add
              (err ~code:"H030" ~path
                 "tile has %d children but its shape has %d exits"
                 (Array.length tile.Tiled_tree.children)
                 exits);
          if
            tile.Tiled_tree.shape_id < 0
            || tile.Tiled_tree.shape_id >= Lut.num_shapes t.Tiled_tree.lut
          then
            add
              (err ~code:"H030" ~path
                 "shape id %d outside the LUT registry (%d shapes)"
                 tile.Tiled_tree.shape_id
                 (Lut.num_shapes t.Tiled_tree.lut))
          else if
            not
              (Shape.equal
                 (Lut.shape_of_id t.Tiled_tree.lut tile.Tiled_tree.shape_id)
                 tile.Tiled_tree.shape)
          then
            add
              (err ~code:"H030" ~path
                 "shape id %d does not resolve to the tile's shape in the LUT"
                 tile.Tiled_tree.shape_id);
          Array.iter
            (fun c ->
              if c < 0 || c >= n then
                add
                  (err ~code:"H030" ~path "child index %d outside nodes array" c)
              else if c = i then
                add (err ~code:"H030" ~path "tile is its own child")
              else refs.(c) <- refs.(c) + 1)
            tile.Tiled_tree.children;
          let k = Array.length tile.Tiled_tree.node_ids in
          if k > shape_size then
            add
              (err ~code:"H030" ~path
                 "tile carries %d source nodes but its shape has only %d" k
                 shape_size);
          (* Padding well-formedness (H020): lanes past the real nodes must
             be always-true dummies; a dummy tile routes only through exit
             0, so its other exits must be dead leaves. *)
          for lane = k to min nt (Array.length tile.Tiled_tree.features) - 1 do
            if
              tile.Tiled_tree.features.(lane) <> 0
              || tile.Tiled_tree.thresholds.(lane) <> infinity
            then
              add
                (err ~code:"H020" ~path
                   "padding lane %d is not the dummy predicate \
                    (feature 0 < +inf): feature %d < %g"
                   lane
                   tile.Tiled_tree.features.(lane)
                   tile.Tiled_tree.thresholds.(lane))
          done;
          if Tiled_tree.is_dummy tile then
            Array.iteri
              (fun j c ->
                if j > 0 && c >= 0 && c < n then
                  match t.Tiled_tree.nodes.(c) with
                  | Tiled_tree.Leaf _ -> ()
                  | Tiled_tree.Tile _ ->
                    add
                      (err ~code:"H020" ~path
                         "dummy tile exit %d leads to a tile; only exit 0 \
                          may continue the walk"
                         j))
              tile.Tiled_tree.children
          else begin
            match num_features with
            | None -> ()
            | Some nf ->
              for lane = 0 to k - 1 do
                let f = tile.Tiled_tree.features.(lane) in
                if f < 0 || f >= nf then
                  add
                    (err ~code:"H031" ~path
                       "lane %d reads feature %d outside the model's %d \
                        features"
                       lane f nf)
              done
          end)
      t.Tiled_tree.nodes;
    (* Tree-ness (H030): node 0 is the root; every other node has exactly
       one parent edge. *)
    if refs.(0) > 0 then
      add (err ~code:"H030" ~path:[] "root node is referenced as a child");
    for i = 1 to n - 1 do
      if refs.(i) <> 1 then
        add
          (err ~code:"H030"
             ~path:[ Printf.sprintf "node %d" i ]
             "node has %d parent edges, expected exactly 1" refs.(i))
    done;
    List.rev !ds
  end

(* ------------------------------------------------------------------ *)
(* Deep model/IR consistency (H032 + reconstructed tiling)             *)
(* ------------------------------------------------------------------ *)

(* Replicas of Tiled_tree's construction helpers, driven by the ownership
   map reconstructed from [node_ids] — so a corrupted tiled tree is checked
   against the source model, not against itself. *)
let reconstructed_shape_and_exits (it : Itree.t) ~tile_of_node ~tid root =
  let in_tile c = (not (Itree.is_leaf it c)) && tile_of_node.(c) = tid in
  let exits = ref [] in
  let rec build n =
    let side c =
      if in_tile c then Some (build c)
      else begin
        exits := c :: !exits;
        None
      end
    in
    let l = side it.Itree.left.(n) in
    let r = side it.Itree.right.(n) in
    Shape.Node (l, r)
  in
  let shape = build root in
  (shape, Array.of_list (List.rev !exits))

let reconstructed_level_order (it : Itree.t) ~tile_of_node ~tid root =
  let queue = Queue.create () in
  Queue.add root queue;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    acc := n :: !acc;
    let push c =
      if (not (Itree.is_leaf it c)) && tile_of_node.(c) = tid then
        Queue.add c queue
    in
    push it.Itree.left.(n);
    push it.Itree.right.(n)
  done;
  Array.of_list (List.rev !acc)

(* Follow a padding chain: dummy tiles forward the walk through exit 0. *)
let rec resolve_padding (t : Tiled_tree.t) i =
  if i < 0 || i >= Array.length t.Tiled_tree.nodes then None
  else
    match t.Tiled_tree.nodes.(i) with
    | Tiled_tree.Leaf v -> Some (`Leaf v)
    | Tiled_tree.Tile tile ->
      if Tiled_tree.is_dummy tile then
        if Array.length tile.Tiled_tree.children > 0 then
          resolve_padding t tile.Tiled_tree.children.(0)
        else None
      else Some (`Tile tile)

let check_tree_against_source (source : Tree.t) (t : Tiled_tree.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let it = Itree.of_tree source in
  let nt = t.Tiled_tree.tile_size in
  (* Reconstruct the ownership map from the tiles' node_ids. *)
  let tile_of_node = Array.make it.Itree.num_nodes (-1) in
  let num_real = ref 0 in
  let tids = Hashtbl.create 16 (* tiled node index -> reconstructed tid *) in
  Array.iteri
    (fun i node ->
      match node with
      | Tiled_tree.Leaf _ -> ()
      | Tiled_tree.Tile tile ->
        if not (Tiled_tree.is_dummy tile) then begin
          let tid = !num_real in
          incr num_real;
          Hashtbl.add tids i tid;
          Array.iter
            (fun nid ->
              let path = [ Printf.sprintf "tile node %d" i ] in
              if nid < 0 || nid >= it.Itree.num_nodes then
                add
                  (err ~code:"H032" ~path
                     "tile references source node %d, outside the tree's %d \
                      nodes"
                     nid it.Itree.num_nodes)
              else if tile_of_node.(nid) <> -1 then
                add
                  (err ~code:"H001" ~path
                     "source node %d claimed by two tiles" nid)
              else tile_of_node.(nid) <- tid)
            tile.Tiled_tree.node_ids
        end)
    t.Tiled_tree.nodes;
  (* Degenerate single-leaf tree: the tiled form must be that leaf. *)
  if Itree.is_leaf it Itree.root then begin
    match t.Tiled_tree.nodes with
    | [| Tiled_tree.Leaf v |] when v = it.Itree.value.(Itree.root) -> ()
    | _ ->
      add
        (err ~code:"H032" ~path:[]
           "single-leaf source tree not tiled as a lone leaf")
  end
  else begin
    (* The four tiling constraints over the reconstructed map. *)
    List.iter add
      (tiling_core it ~tile_size:nt ~tile_of_node ~num_tiles:!num_real);
    (* Per-tile deep checks: lanes, shape and exits against the source. *)
    Array.iteri
      (fun i node ->
        match node with
        | Tiled_tree.Leaf _ -> ()
        | Tiled_tree.Tile tile ->
          if not (Tiled_tree.is_dummy tile) then begin
            let path = [ Printf.sprintf "tile node %d" i ] in
            let tid = Hashtbl.find tids i in
            let ok_ids =
              Array.for_all
                (fun nid -> nid >= 0 && nid < it.Itree.num_nodes)
                tile.Tiled_tree.node_ids
            in
            if ok_ids && Array.length tile.Tiled_tree.node_ids > 0 then begin
              let root = tile.Tiled_tree.node_ids.(0) in
              (* Lane order must be the intra-tile level order. *)
              let lo = reconstructed_level_order it ~tile_of_node ~tid root in
              if lo <> tile.Tiled_tree.node_ids then
                add
                  (err ~code:"H032" ~path
                     "lane order does not match the intra-tile level order \
                      of the source nodes")
              else begin
                (* Lane predicates must reproduce the source nodes. *)
                Array.iteri
                  (fun lane nid ->
                    if
                      lane < Array.length tile.Tiled_tree.features
                      && (tile.Tiled_tree.features.(lane)
                            <> it.Itree.feature.(nid)
                         || tile.Tiled_tree.thresholds.(lane)
                            <> it.Itree.threshold.(nid))
                    then
                      add
                        (err ~code:"H032" ~path
                           "lane %d is (feature %d < %g) but source node %d \
                            is (feature %d < %g)"
                           lane
                           tile.Tiled_tree.features.(lane)
                           tile.Tiled_tree.thresholds.(lane)
                           nid
                           it.Itree.feature.(nid)
                           it.Itree.threshold.(nid)))
                  tile.Tiled_tree.node_ids;
                (* Shape and exit wiring must match a reconstruction from
                   the source tree. *)
                let shape, exits =
                  reconstructed_shape_and_exits it ~tile_of_node ~tid root
                in
                if not (Shape.equal shape tile.Tiled_tree.shape) then
                  add
                    (err ~code:"H032" ~path
                       "tile shape %s does not match the source structure %s"
                       (Shape.to_string tile.Tiled_tree.shape)
                       (Shape.to_string shape))
                else if
                  Array.length exits = Array.length tile.Tiled_tree.children
                then
                  Array.iteri
                    (fun j e ->
                      let expected =
                        if Itree.is_leaf it e then `Leaf it.Itree.value.(e)
                        else `Root e
                      in
                      match
                        (resolve_padding t tile.Tiled_tree.children.(j),
                         expected)
                      with
                      | Some (`Leaf v), `Leaf v' when v = v' -> ()
                      | Some (`Tile child), `Root e'
                        when Array.length child.Tiled_tree.node_ids > 0
                             && child.Tiled_tree.node_ids.(0) = e' -> ()
                      | _ ->
                        add
                          (err ~code:"H032" ~path
                             "exit %d does not lead to source node %d's \
                              subtree"
                             j e))
                    exits
              end
            end
          end)
      t.Tiled_tree.nodes
  end;
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Whole-program checks (H040/H041)                                    *)
(* ------------------------------------------------------------------ *)

let check_program (p : Program.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let addl l = List.iter add l in
  addl (check_schedule p.Program.schedule);
  addl (check_lut p.Program.lut);
  let nf = p.Program.forest.Forest.num_features in
  let num_trees = Array.length p.Program.trees in
  let src_trees = Array.length p.Program.forest.Forest.trees in
  if num_trees <> src_trees then
    add
      (err ~code:"H040" ~path:[] "HIR has %d trees but the forest has %d"
         num_trees src_trees);
  (* original_index must be a permutation of the source trees (H040). *)
  let seen = Array.make (max src_trees 1) false in
  Array.iteri
    (fun i (e : Program.tree_entry) ->
      let path = [ Printf.sprintf "tree %d" i ] in
      let oi = e.Program.original_index in
      if oi < 0 || oi >= src_trees then
        add
          (err ~code:"H040" ~path
             "original_index %d outside the forest's %d trees" oi src_trees)
      else if seen.(oi) then
        add
          (err ~code:"H040" ~path "original_index %d appears more than once" oi)
      else seen.(oi) <- true)
    p.Program.trees;
  (* Per-tree structural and model-consistency checks. *)
  Array.iteri
    (fun i (e : Program.tree_entry) ->
      let seg = Printf.sprintf "tree %d" i in
      let tt = e.Program.tiled in
      if tt.Tiled_tree.tile_size <> p.Program.schedule.Schedule.tile_size then
        add
          (err ~code:"H030" ~path:[ seg ]
             "tiled with tile size %d but the schedule says %d"
             tt.Tiled_tree.tile_size p.Program.schedule.Schedule.tile_size);
      addl (prefix seg (check_tiled_tree ~num_features:nf tt));
      let oi = e.Program.original_index in
      if oi >= 0 && oi < src_trees then
        addl
          (prefix seg
             (check_tree_against_source p.Program.forest.Forest.trees.(oi) tt)))
    p.Program.trees;
  (* Groups: exact cover of tree positions (H040) + honest claims (H041). *)
  let covered = Array.make (max num_trees 1) 0 in
  List.iteri
    (fun gi (g : Reorder.group) ->
      let path = [ Printf.sprintf "group %d" gi ] in
      Array.iter
        (fun pos ->
          if pos < 0 || pos >= num_trees then
            add
              (err ~code:"H040" ~path "position %d outside the %d trees" pos
                 num_trees)
          else covered.(pos) <- covered.(pos) + 1)
        g.Reorder.positions;
      let depths =
        Array.to_list g.Reorder.positions
        |> List.filter_map (fun pos ->
               if pos >= 0 && pos < num_trees then
                 Some (Tiled_tree.depth p.Program.trees.(pos).Program.tiled)
               else None)
      in
      let max_depth = List.fold_left max 0 depths in
      if g.Reorder.uniform then begin
        Array.iter
          (fun pos ->
            if pos >= 0 && pos < num_trees then begin
              let tt = p.Program.trees.(pos).Program.tiled in
              if not (Tiled_tree.is_uniform_depth tt) then
                add
                  (err ~code:"H041" ~path
                     "claimed uniform but tree at position %d has leaves at \
                      different depths"
                     pos)
              else if Tiled_tree.depth tt <> g.Reorder.walk_depth then
                add
                  (err ~code:"H041" ~path
                     "claimed uniform depth %d but tree at position %d has \
                      depth %d"
                     g.Reorder.walk_depth pos (Tiled_tree.depth tt))
            end)
          g.Reorder.positions
      end
      else if depths <> [] && g.Reorder.walk_depth <> max_depth then
        add
          (err ~code:"H041" ~path
             "walk_depth %d differs from the group's max tiled depth %d"
             g.Reorder.walk_depth max_depth);
      if g.Reorder.shared_structure then begin
        let keys =
          Array.to_list g.Reorder.positions
          |> List.filter_map (fun pos ->
                 if pos >= 0 && pos < num_trees then
                   Some
                     (Tiled_tree.structure_key
                        p.Program.trees.(pos).Program.tiled)
                 else None)
        in
        match keys with
        | [] -> ()
        | k0 :: rest ->
          if not (List.for_all (String.equal k0) rest) then
            add
              (err ~code:"H041" ~path
                 "claimed shared structure but structure keys differ")
      end)
    p.Program.groups;
  for pos = 0 to num_trees - 1 do
    if covered.(pos) <> 1 then
      add
        (err ~code:"H040"
           ~path:[ Printf.sprintf "tree %d" pos ]
           "tree position covered by %d groups, expected exactly 1"
           covered.(pos))
  done;
  List.rev !ds
