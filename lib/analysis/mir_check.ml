module D = Tb_diag.Diagnostic
module Schedule = Tb_hir.Schedule
module Program = Tb_hir.Program
module Reorder = Tb_hir.Reorder
module Tiled_tree = Tb_hir.Tiled_tree
module Mir = Tb_mir.Mir

let err ~code ~path fmt = D.errorf ~level:D.Mir ~code ~path fmt

(* ------------------------------------------------------------------ *)
(* Race check over the parallel row partition (§IV-C)                  *)
(* ------------------------------------------------------------------ *)

let check_row_partition ~batch ranges =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let indexed = Array.mapi (fun i r -> (i, r)) ranges in
  Array.iter
    (fun (i, (lo, hi)) ->
      let path = [ Printf.sprintf "domain %d" i ] in
      if lo > hi then
        add (err ~code:"M010" ~path "inverted row range [%d, %d)" lo hi)
      else if lo < hi && (lo < 0 || hi > batch) then
        add
          (err ~code:"M010" ~path
             "row range [%d, %d) writes outside the batch of %d rows" lo hi
             batch))
    indexed;
  (* Sort non-empty ranges by lo; adjacent overlap detection is then
     complete for pairwise disjointness. *)
  let nonempty =
    Array.to_list indexed |> List.filter (fun (_, (lo, hi)) -> lo < hi)
  in
  let sorted =
    List.sort (fun (_, (a, _)) (_, (b, _)) -> compare a b) nonempty
  in
  let rec scan = function
    | (i, (_, hi_i)) :: ((j, (lo_j, hi_j)) :: _ as rest) ->
      if lo_j < hi_i then
        add
          (err ~code:"M010" ~path:[]
             "domains %d and %d both write rows [%d, %d): data race on the \
              output buffer"
             i j lo_j (min hi_i hi_j));
      scan rest
    | _ -> ()
  in
  scan sorted;
  (* Coverage: the union of ranges must be exactly [0, batch). *)
  let rec cover next = function
    | [] ->
      if next < batch then
        add
          (err ~code:"M011" ~path:[]
             "rows [%d, %d) are not computed by any domain" next batch)
    | (_, (lo, hi)) :: rest ->
      if lo > next then
        add
          (err ~code:"M011" ~path:[]
             "rows [%d, %d) are not computed by any domain" next lo);
      cover (max next hi) rest
  in
  cover 0 sorted;
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Loop-nest well-formedness                                           *)
(* ------------------------------------------------------------------ *)

let check ?(batch_size = 1024) (p : Program.t) (t : Mir.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let num_trees = Array.length p.Program.trees in
  if t.Mir.loop_order <> p.Program.schedule.Schedule.loop_order then
    add
      (err ~code:"M005" ~path:[]
         "loop order differs from the schedule's");
  if t.Mir.num_threads < 1 then
    add (err ~code:"M006" ~path:[] "num_threads %d < 1" t.Mir.num_threads);
  (* Coverage (M001): group plans walk every tree exactly once. *)
  let covered = Array.make (max num_trees 1) 0 in
  Array.iteri
    (fun gi (plan : Mir.group_plan) ->
      let path = [ Printf.sprintf "group %d" gi ] in
      Array.iter
        (fun pos ->
          if pos < 0 || pos >= num_trees then
            add
              (err ~code:"M001" ~path
                 "plan walks tree position %d, outside the %d HIR trees" pos
                 num_trees)
          else covered.(pos) <- covered.(pos) + 1)
        plan.Mir.group.Reorder.positions)
    t.Mir.group_plans;
  for pos = 0 to num_trees - 1 do
    if covered.(pos) <> 1 then
      add
        (err ~code:"M001"
           ~path:[ Printf.sprintf "tree %d" pos ]
           "tree position walked by %d group plans, expected exactly 1"
           covered.(pos))
  done;
  (* Per-plan walk kinds against recomputed tree facts. *)
  Array.iteri
    (fun gi (plan : Mir.group_plan) ->
      let path = [ Printf.sprintf "group %d" gi ] in
      let positions =
        Array.to_list plan.Mir.group.Reorder.positions
        |> List.filter (fun pos -> pos >= 0 && pos < num_trees)
      in
      let tiled pos = p.Program.trees.(pos).Program.tiled in
      (match plan.Mir.walk with
      | Mir.Loop_walk -> ()
      | Mir.Unrolled_walk { depth } ->
        (* Only legal when every tree provably has all leaves at [depth]:
           re-derive uniformity instead of trusting the group flag. *)
        List.iter
          (fun pos ->
            let tt = tiled pos in
            if not (Tiled_tree.is_uniform_depth tt) then
              add
                (err ~code:"M002" ~path
                   "unrolled walk of depth %d over tree position %d, whose \
                    leaves sit at different depths: the walk would read past \
                    a leaf"
                   depth pos)
            else if Tiled_tree.depth tt <> depth then
              add
                (err ~code:"M002" ~path
                   "unrolled walk of depth %d over tree position %d of tiled \
                    depth %d"
                   depth pos (Tiled_tree.depth tt)))
          positions
      | Mir.Peeled_walk { peel } ->
        if peel < 1 then
          add (err ~code:"M003" ~path "peeled walk with peel %d < 1" peel)
        else
          List.iter
            (fun pos ->
              let m = Tiled_tree.min_leaf_depth (tiled pos) in
              if peel > m then
                add
                  (err ~code:"M003" ~path
                     "peel %d exceeds tree position %d's min leaf depth %d: \
                      a peeled iteration could step past a leaf"
                     peel pos m))
            positions);
      if plan.Mir.interleave < 1 then
        add
          (err ~code:"M004" ~path "interleave %d < 1" plan.Mir.interleave)
      else if
        t.Mir.loop_order = Schedule.One_row_at_a_time
        && plan.Mir.interleave > List.length positions
        && positions <> []
      then
        add
          (err ~code:"M004" ~path
             "row-major jam of %d trees but the group only has %d"
             plan.Mir.interleave (List.length positions)))
    t.Mir.group_plans;
  (* Race freedom of the parallel row tiling. *)
  if t.Mir.num_threads >= 1 && batch_size >= 0 then
    List.iter add
      (check_row_partition ~batch:batch_size
         (Mir.row_partition ~num_threads:t.Mir.num_threads ~batch:batch_size));
  List.rev !ds
