(* Cost-model calibration: the C0xx lint. See the .mli for the design. *)

module Schedule = Tb_hir.Schedule
module Program = Tb_hir.Program
module Lower = Tb_lir.Lower
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model
module Cache = Tb_cpu.Cache
module Profiler = Tb_vm.Profiler
module Jit = Tb_vm.Jit
module Timer = Tb_util.Timer
module Stats = Tb_util.Stats
module Json = Tb_util.Json
module D = Tb_diag.Diagnostic

type tolerance = {
  event_rel_err : float;
  stall_share_abs : float;
  min_tau : float;
  top_k : int;
  max_regret : float;
}

let default_tolerance =
  {
    event_rel_err = 0.25;
    stall_share_abs = 0.15;
    min_tau = 0.6;
    top_k = 3;
    max_regret = 0.2;
  }

type observation = {
  schedule : Schedule.t;
  predicted : Cost_model.breakdown;
  predicted_workload : Cost_model.workload;
  measured_workload : Cost_model.workload;
  measured_s_per_row : float;
}

type event_error = {
  event : string;
  schedule : Schedule.t;
  predicted_per_row : float;
  measured_per_row : float;
  rel_err : float;
}

type report = {
  name : string;
  target : string;
  tol : tolerance;
  observations : observation array;
  skipped : (Schedule.t * string) list;
  tau : float;
  champion : int;
  measured_best : int;
  regret : float;
  worst_events : event_error list;
  findings : D.t list;
}

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)

let observe ~target ?(sample = 48) ?(min_time_s = 0.05) ?(min_iters = 3)
    (lowered : Lower.t) rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Cost_check.observe: no rows";
  let sample_rows = if n <= sample then rows else Array.sub rows 0 sample in
  (* Mirror the autotuner: the prediction uses the same affine two-point
     extrapolation as Perf.simulate (two cold nested sample prefixes, so
     per-batch fixed costs aren't multiplied by the batch/sample ratio);
     the full-batch instrumented run below stays cold — it is the ground
     truth the extrapolation is judged against. *)
  let ns = Array.length sample_rows in
  let predicted_workload =
    if ns = n then Profiler.profile ~target lowered sample_rows
    else
      (* Second point at 2x the sample (clamped to n): the marginal rate
         below ~[sample] rows is still warm-up-contaminated, so a closer
         pair would overstate the fitted slope. *)
      let n2 = min n (2 * ns) in
      let w1 = Profiler.profile ~target lowered sample_rows in
      let w2 = Profiler.profile ~target lowered (Array.sub rows 0 n2) in
      Profiler.extrapolate w1 w2 ~rows:n
  in
  let predicted = Cost_model.estimate target predicted_workload in
  let measured_workload = Profiler.profile ~target lowered rows in
  let predict = Jit.compile lowered in
  let r =
    Timer.measure ~warmup:1 ~min_iters ~min_time_s (fun () ->
        ignore (predict rows))
  in
  {
    schedule = lowered.Lower.hir.Program.schedule;
    predicted;
    predicted_workload;
    measured_workload;
    measured_s_per_row = r.Timer.mean_s /. float_of_int n;
  }

(* ------------------------------------------------------------------ *)
(* Agreement statistics                                                *)

(* The extensive counts, as per-row rates so the sample-extrapolated and
   full-batch workloads are comparable whatever their row counts. *)
let events =
  [
    ("steps_checked", fun w -> w.Cost_model.steps_checked);
    ("steps_unchecked", fun w -> w.Cost_model.steps_unchecked);
    ("leaf_fetches", fun w -> w.Cost_model.leaf_fetches);
    ("critical_steps", fun w -> w.Cost_model.critical_steps);
    ("walks_checked", fun w -> w.Cost_model.walks_checked);
    ("walks_unrolled", fun w -> w.Cost_model.walks_unrolled);
    ("l1_accesses", fun w -> w.Cost_model.l1.Cache.accesses);
    ("l1_misses", fun w -> w.Cost_model.l1.Cache.misses);
  ]

let per_row w count =
  float_of_int count /. float_of_int (max 1 w.Cost_model.rows)

let event_error_of obs (event, field) =
  let p = per_row obs.predicted_workload (field obs.predicted_workload) in
  let m = per_row obs.measured_workload (field obs.measured_workload) in
  (* Floor the denominator at one event per row: a couple of stray cache
     misses on a tiny model is noise, not drift. *)
  let rel_err = Float.abs (p -. m) /. Float.max 1.0 m in
  {
    event;
    schedule = obs.schedule;
    predicted_per_row = p;
    measured_per_row = m;
    rel_err;
  }

(* The paper's §VI-E top-down buckets, as shares of total cycles. *)
let buckets =
  [
    ("retiring", fun b -> b.Cost_model.retiring);
    ("frontend", fun b -> b.Cost_model.frontend);
    ("bad_speculation", fun b -> b.Cost_model.bad_speculation);
    ("backend_memory", fun b -> b.Cost_model.backend_memory);
    ("backend_core", fun b -> b.Cost_model.backend_core);
  ]

let share b component = component /. Float.max 1e-9 b.Cost_model.cycles

let check ?(tol = default_tolerance) ~target ~name ?(skipped = []) obs =
  let n = Array.length obs in
  if n = 0 then invalid_arg "Cost_check.check: no observations";
  let predicted_cpr =
    Array.map (fun o -> Cost_model.cycles_per_row o.predicted o.predicted_workload) obs
  in
  let measured_spr = Array.map (fun o -> o.measured_s_per_row) obs in
  let tau = Stats.kendall_tau predicted_cpr measured_spr in
  let champion = Stats.argmin predicted_cpr in
  let measured_best = Stats.argmin measured_spr in
  let best_t = measured_spr.(measured_best) in
  let regret =
    if best_t <= 0.0 then 0.0
    else (measured_spr.(champion) -. best_t) /. best_t
  in
  let findings = ref [] in
  let emit d = findings := d :: !findings in
  (* C001: rank agreement over the grid, and the champion's regret. *)
  if n >= 2 && tau < tol.min_tau then
    emit
      (D.warningf ~level:D.Cost ~code:"C001" ~path:[ name ]
         "cost-model ranking disagrees with measured time: Kendall-tau %.2f \
          < %.2f over %d schedules"
         tau tol.min_tau n);
  let champion_rank =
    Array.fold_left
      (fun acc t -> if t < measured_spr.(champion) then acc + 1 else acc)
      0 measured_spr
  in
  if n >= 2 && (regret > tol.max_regret || champion_rank >= tol.top_k) then
    emit
      (D.warningf ~level:D.Cost ~code:"C001"
         ~path:[ name; Schedule.to_string obs.(champion).schedule ]
         "predicted champion ranks #%d measured (top-%d required), %.0f%% \
          slower than the measured best [%s]"
         (champion_rank + 1) tol.top_k (100.0 *. regret)
         (Schedule.to_string obs.(measured_best).schedule));
  (* C002: extensive-count divergence, worst offender per event. *)
  let worst_events =
    List.map
      (fun ev ->
        let errs = Array.map (fun o -> event_error_of o ev) obs in
        let worst = ref errs.(0) in
        Array.iter (fun e -> if e.rel_err > !worst.rel_err then worst := e) errs;
        let offenders =
          Array.fold_left
            (fun acc e -> if e.rel_err > tol.event_rel_err then acc + 1 else acc)
            0 errs
        in
        (!worst, offenders))
      events
  in
  List.iter
    (fun (worst, offenders) ->
      if worst.rel_err > tol.event_rel_err then
        emit
          (D.warningf ~level:D.Cost ~code:"C002"
             ~path:[ name; Schedule.to_string worst.schedule; worst.event ]
             "extrapolated %s diverges from the instrumented run: %.1f vs \
              %.1f per row (%.0f%% > %.0f%%, %d/%d schedules affected)"
             worst.event worst.predicted_per_row worst.measured_per_row
             (100.0 *. worst.rel_err)
             (100.0 *. tol.event_rel_err)
             offenders (Array.length obs)))
    worst_events;
  (* Structural fields must agree exactly between the two workloads. *)
  Array.iter
    (fun o ->
      let p = o.predicted_workload and m = o.measured_workload in
      if
        p.Cost_model.tile_size <> m.Cost_model.tile_size
        || p.Cost_model.layout <> m.Cost_model.layout
        || p.Cost_model.code_bytes <> m.Cost_model.code_bytes
        || p.Cost_model.model_bytes <> m.Cost_model.model_bytes
      then
        emit
          (D.warningf ~level:D.Cost ~code:"C002"
             ~path:[ name; Schedule.to_string o.schedule ]
             "structural workload fields disagree between the \
              extrapolated and instrumented runs (tile %d/%d, code %d/%d \
              bytes, model %d/%d bytes)"
             p.Cost_model.tile_size m.Cost_model.tile_size
             p.Cost_model.code_bytes m.Cost_model.code_bytes
             p.Cost_model.model_bytes m.Cost_model.model_bytes))
    obs;
  (* C003: the supplied breakdown's stall attribution vs the breakdown
     this target's reference model derives from the measured counts. *)
  List.iter
    (fun (bucket, field) ->
      let worst = ref None in
      Array.iter
        (fun o ->
          let reference = Cost_model.estimate target o.measured_workload in
          let delta =
            Float.abs (share o.predicted (field o.predicted) -. share reference (field reference))
          in
          match !worst with
          | Some (_, d) when d >= delta -> ()
          | _ -> worst := Some (o, delta))
        obs;
      match !worst with
      | Some (o, delta) when delta > tol.stall_share_abs ->
        let reference = Cost_model.estimate target o.measured_workload in
        emit
          (D.warningf ~level:D.Cost ~code:"C003"
             ~path:[ name; Schedule.to_string o.schedule; bucket ]
             "stall attribution drift on %s: %.0f%% of cycles predicted vs \
              %.0f%% derived from measured events (|delta| %.0f%% > %.0f%%)"
             bucket
             (100.0 *. share o.predicted (field o.predicted))
             (100.0 *. share reference (field reference))
             (100.0 *. delta)
             (100.0 *. tol.stall_share_abs))
      | _ -> ())
    buckets;
  {
    name;
    target = target.Config.name;
    tol;
    observations = obs;
    skipped;
    tau;
    champion;
    measured_best;
    regret;
    worst_events = List.map fst worst_events;
    findings = List.sort D.compare (List.rev !findings);
  }

(* ------------------------------------------------------------------ *)
(* The full loop                                                       *)

let calibrate ~target ?tol ?sample ?min_time_s ?min_iters ~compile ~name ~grid
    rows =
  let obs = ref [] and skipped = ref [] in
  List.iter
    (fun schedule ->
      match compile schedule with
      | Error msg -> skipped := (schedule, msg) :: !skipped
      | exception Invalid_argument msg -> skipped := (schedule, msg) :: !skipped
      | Ok lowered ->
        obs :=
          observe ~target ?sample ?min_time_s ?min_iters lowered rows :: !obs)
    grid;
  check ?tol ~target ~name ~skipped:(List.rev !skipped)
    (Array.of_list (List.rev !obs))

let reduced_grid =
  let d = Schedule.default in
  [
    Schedule.scalar_baseline;
    { Schedule.scalar_baseline with loop_order = Schedule.One_tree_at_a_time };
    { Schedule.scalar_baseline with peel = true };
    {
      d with
      tile_size = 2;
      interleave = 1;
      pad_and_unroll = false;
      peel = false;
      layout = Schedule.Array_layout;
    };
    { d with tile_size = 4; interleave = 1; pad_and_unroll = false; peel = false };
    { d with interleave = 1; pad_and_unroll = false; peel = false };
    { d with interleave = 1; pad_and_unroll = false; peel = true };
    { d with interleave = 1 };
    { d with interleave = 2 };
    d;
    { d with interleave = 8 };
    { d with layout = Schedule.Array_layout };
    { d with loop_order = Schedule.One_row_at_a_time };
    { d with tiling = Schedule.Probability_based };
    {
      d with
      tiling = Schedule.Probability_based;
      loop_order = Schedule.One_row_at_a_time;
      interleave = 1;
    };
    { d with tile_size = 4 };
  ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let report_to_json r =
  let sched_name (o : observation) = Json.Str (Schedule.to_string o.schedule) in
  let obs_json (o : observation) =
    Json.Obj
      [
        ("schedule", sched_name o);
        ( "predicted_cycles_per_row",
          Json.Num (Cost_model.cycles_per_row o.predicted o.predicted_workload) );
        ("measured_us_per_row", Json.Num (o.measured_s_per_row *. 1e6));
        ( "events",
          Json.Obj
            (List.map
               (fun (name, field) ->
                 ( name,
                   Json.Obj
                     [
                       ( "predicted_per_row",
                         Json.Num
                           (per_row o.predicted_workload
                              (field o.predicted_workload)) );
                       ( "measured_per_row",
                         Json.Num
                           (per_row o.measured_workload
                              (field o.measured_workload)) );
                     ] ))
               events) );
      ]
  in
  Json.Obj
    [
      ("model", Json.Str r.name);
      ("target", Json.Str r.target);
      ("schedules", Json.Num (float_of_int (Array.length r.observations)));
      ("kendall_tau", Json.Num r.tau);
      ("top_k", Json.Num (float_of_int r.tol.top_k));
      ("regret", Json.Num r.regret);
      ("champion", sched_name r.observations.(r.champion));
      ("measured_best", sched_name r.observations.(r.measured_best));
      ("findings", Json.List (List.map D.to_json r.findings));
      ( "skipped",
        Json.List
          (List.map
             (fun (s, msg) ->
               Json.Obj
                 [
                   ("schedule", Json.Str (Schedule.to_string s));
                   ("reason", Json.Str msg);
                 ])
             r.skipped) );
      ("observations", Json.List (Array.to_list (Array.map obs_json r.observations)));
    ]

let report_to_file path r =
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:true (report_to_json r));
  output_string oc "\n";
  close_out oc

let pp_report fmt r =
  Format.fprintf fmt "calibrate %s on %s: %d schedule(s), %d skipped@."
    r.name r.target (Array.length r.observations) (List.length r.skipped);
  Format.fprintf fmt "  kendall-tau %.3f (min %.2f)@." r.tau r.tol.min_tau;
  Format.fprintf fmt "  champion      %s@."
    (Schedule.to_string r.observations.(r.champion).schedule);
  Format.fprintf fmt "  measured best %s@."
    (Schedule.to_string r.observations.(r.measured_best).schedule);
  Format.fprintf fmt "  top-%d regret %.1f%% (max %.0f%%)@." r.tol.top_k
    (100.0 *. r.regret)
    (100.0 *. r.tol.max_regret);
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-15s worst rel err %5.1f%% (%.1f vs %.1f /row)@."
        e.event (100.0 *. e.rel_err) e.predicted_per_row e.measured_per_row)
    r.worst_events;
  if r.findings = [] then Format.fprintf fmt "  calibration clean@."
  else
    List.iter (fun d -> Format.fprintf fmt "  %s@." (D.to_string d)) r.findings

let report_to_string r = Format.asprintf "%a" pp_report r
