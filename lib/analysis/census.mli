(** Warning census for a diagnostic family.

    A census is a list of per-(model, schedule) rows counting one
    diagnostic family's codes in a lint or validate run. It is the
    measurable surface of an analysis: [treebeard lint --census] writes
    one for the walk-bounds family, [treebeard validate --census] for the
    translation-validation family, the bench [lint]/[validate]
    experiments record them, and CI diffs the current census against a
    checked-in baseline so a precision regression fails the build. *)

type family = {
  family_name : string;
  codes : string list;  (** tracked codes, in column order *)
  hard : string list;
      (** never-acceptable codes: any count fails the baseline diff *)
  soft : string list;
      (** per-cell counts may not grow vs the baseline; codes in [codes]
          but in neither [hard] nor [soft] are informational facts and
          are counted but not diffed *)
}

val lir_family : family
(** The walk-bounds family: codes [L010..L014]; [L010]/[L013] hard,
    [L011]/[L012] soft, [L014] a fact. *)

val validate_family : family
(** The translation-validation family: codes [T001..T004]; [T004] hard,
    [T001..T003] soft. *)

val numeric_family : family
(** The quantization-certification family: codes [N001..N004], all soft —
    a model may fail to certify at a narrow width (the baseline records
    the expected findings), but no cell's count may grow. *)

val all_families : family list
(** Every registered family, for table-driven coverage tests. *)

val family_of_code : string -> family option
(** The unique family tracking [code], if any (schedule/HIR/MIR/… codes
    have no census family). *)

val codes : string list
(** Tracked codes of {!lir_family}, in column order (the census's
    original single family; kept for compatibility). *)

type row = {
  model : string;
  schedule : string;  (** [Schedule.to_string] form *)
  counts : (string * int) list;  (** code -> count; zero counts omitted *)
}

type t = row list

val row_of_diags :
  ?family:family ->
  model:string -> schedule:string -> Tb_diag.Diagnostic.t list -> row
(** Count the tracked codes in one run's diagnostics (default family:
    {!lir_family}). *)

val get : row -> string -> int
(** Count for one code, 0 when absent. *)

val totals : ?family:family -> t -> (string * int) list
(** Per-code totals over all rows, in the family's code order. *)

val to_json : t -> Tb_util.Json.t
val of_json : Tb_util.Json.t -> t
(** @raise Tb_util.Json.Parse_error on schema mismatch. *)

val to_file : string -> t -> unit
val of_file : string -> t

val diff : ?family:family -> baseline:t -> t -> string list
(** Regression check for CI. Empty result = acceptable. Reported as
    problems: any [hard]-code count in [current] (never acceptable,
    baseline or not); a [soft]-code count in a cell exceeding the same
    cell in [baseline]; cells present on one side only. Fact codes are
    not diffed. Default family: {!lir_family}. *)

val pp_totals : ?family:family -> Format.formatter -> t -> unit
(** Per-code totals, one per line. *)
