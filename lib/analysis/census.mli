(** Warning census for the walk-bounds diagnostic family.

    A census is a list of per-(model, schedule) rows counting the
    {b L010}..{b L014} diagnostics produced by a lint run. It is the
    measurable surface of the relational LIR analysis: [treebeard lint
    --census] writes one, the bench [lint] experiment compares the legacy
    interval analysis against the relational one, and CI diffs the
    current census against a checked-in baseline so a bounds-precision
    regression fails the build. *)

val codes : string list
(** Tracked codes, in column order: [L010; L011; L012; L013; L014]. *)

type row = {
  model : string;
  schedule : string;  (** [Schedule.to_string] form *)
  counts : (string * int) list;  (** code -> count; zero counts omitted *)
}

type t = row list

val row_of_diags :
  model:string -> schedule:string -> Tb_diag.Diagnostic.t list -> row
(** Count the tracked codes in one lint run's diagnostics. *)

val get : row -> string -> int
(** Count for one code, 0 when absent. *)

val totals : t -> (string * int) list
(** Per-code totals over all rows, in {!codes} order. *)

val to_json : t -> Tb_util.Json.t
val of_json : Tb_util.Json.t -> t
(** @raise Tb_util.Json.Parse_error on schema mismatch. *)

val to_file : string -> t -> unit
val of_file : string -> t

val diff : baseline:t -> current:t -> string list
(** Regression check for CI. Empty result = acceptable. Reported as
    problems: any L010/L013 count in [current] (errors are never
    acceptable, baseline or not); an L011 or L012 count in a cell
    exceeding the same cell in [baseline]; cells present on one side
    only. L014 facts are informational and not diffed. *)

val pp_totals : Format.formatter -> t -> unit
(** Per-code totals, one per line. *)
