(** LIR static analyses: a relational forward dataflow over
    {!Tb_lir.Reg_ir} walk programs (intervals in reduced product with a
    {!Congruence} stride domain, plus provenance-tracked
    [child_ptr + lut_child] facts from {!Tb_lir.Layout.stride_facts}) and
    a closure check over {!Tb_lir.Layout} model buffers.

    Bounds verdicts come in three tiers, reflecting what the abstract
    domains can prove about cursor-chasing loads:

    - [L010] (error) — a {e finite} index interval is disjoint from the
      buffer: the load is out of bounds on {e every} execution that reaches
      it (widened intervals are excluded — they can be disjoint only
      because the abstract iteration they describe is unreachable);
    - [L011] (warning) — a finite interval sticks out of the buffer: some
      abstract executions go out of bounds, but the imprecision may be the
      analysis's;
    - [L012] (info) — the index is loop-variant and escaped even
      widening-with-thresholds; nothing is provable by intervals alone.

    Unroll-and-jam walk variants get a lane-aware treatment: the
    {!Alias} partition is verified first (its refutation is the [L013]
    lane-collision error), then each lane is analyzed as its own
    single-lane projection with no widening across lanes, identical
    per-lane findings are reported once, and an [L014] info fact records
    that lane independence was proved.

    The accompanying {!check_layout} closure check is the precise
    complement: it proves, slot by slot, that every LUT-reachable successor
    of every tile is allocated and in range — which together with the
    dataflow facts is the actual memory-safety argument for the generated
    walks. *)

type interval = { lo : float; hi : float }
(** Closed interval; either bound may be infinite. *)

type env = {
  tile_size : int;
  extent : Tb_lir.Reg_ir.buffer -> int;
      (** number of addressable scalar elements *)
  content : Tb_lir.Reg_ir.buffer -> (int * int) option;
      (** min/max value stored in an integer buffer, [None] for float
          buffers or when unknown — model buffers are compile-time
          constants, so this is exact *)
  content_cg : Tb_lir.Reg_ir.buffer -> Congruence.t;
      (** congruence class (gcd stride) of an integer buffer's values *)
  tile_advance : (int * int) option;
      (** {!Tb_lir.Layout.stride_facts}: exact range of
          [child_ptr + reachable lut child] over non-leaf sparse slots *)
  leaf_advance : (int * int) option;
      (** exact range of [-child_ptr - 1 + reachable lut child] over
          leaf-children sparse slots *)
  widen_thresholds : float array;
      (** sorted landmarks for widening-with-thresholds (buffer extents,
          content bounds, advance ranges, small codegen constants) *)
}

val env_of_layout : num_features:int -> Tb_lir.Layout.t -> env
(** Extents, content ranges, congruences and relational facts read off the
    actual layout arrays. *)

val check_program :
  ?path:string list -> ?relational:bool ->
  env -> Tb_lir.Reg_ir.walk_program -> Tb_diag.Diagnostic.t list
(** Forward dataflow over the program: register discipline
    ([L001]..[L004] as in {!Tb_lir.Reg_ir.check}), load/store typing against
    buffer element kinds ([L003]), and a bounds verdict for every buffer
    access ([L010]/[L011]/[L012]). Branch conditions refine intervals
    and congruence classes ([Ige] on both arms); [While] bodies run to a
    threshold-widened fixpoint before one reporting pass; [Repeat] bodies
    are executed abstractly [n] times. Duplicate findings at one program
    point are deduplicated.

    [relational] (default true) enables the congruence domain, provenance
    pairing against the layout's advance facts, and
    widening-with-thresholds; [relational:false] is the PR-1 interval
    analysis (plain intervals, infinite widening) kept as the census
    baseline. *)

val analyze_program :
  ?path:string list -> ?relational:bool ->
  env -> Tb_lir.Reg_ir.walk_program ->
  Tb_diag.Diagnostic.t list * (Tb_lir.Reg_ir.buffer * interval) list
(** Like {!check_program}, additionally returning per-buffer access facts:
    for each buffer, the hull of every access's index range (vector
    accesses contribute [index .. index + width - 1]) proved by the
    reporting pass. The soundness harness replays concrete executions
    against these hulls. *)

val check_variant :
  ?relational:bool -> env -> variant:int ->
  Tb_lir.Reg_ir.walk_program -> Tb_diag.Diagnostic.t list
(** Analyze one (possibly jammed) walk variant, findings prefixed with
    [variant N]. Single-lane programs go straight to {!check_program};
    multi-lane programs first get their register partition verified by
    {!Alias.check} — collisions are reported as [L013] (falling back to a
    joint non-relational analysis) and a proved partition yields per-lane
    analysis plus the [L014] lanes-independent fact. *)

val check_layout : num_features:int -> Tb_lir.Layout.t -> Tb_diag.Diagnostic.t list
(** Model-buffer closure: slot-major array sizes and LUT rows well-formed
    ([L020]/[L024]), tree roots valid ([L022]), every reachable tile
    successor allocated and inside its slab ([L020]), leaf indices inside
    the leaf store ([L023]) and stored feature ids within the model
    ([L021]). *)

val check :
  ?relational:bool -> num_features:int ->
  Tb_lir.Layout.t -> Tb_mir.Mir.t -> Tb_diag.Diagnostic.t list
(** [check_layout] plus {!check_variant} over every generated walk variant
    ({!Tb_lir.Reg_codegen.jammed_variants}, i.e. each group's program at
    its schedule's interleave factor). *)
