(** LIR static analyses: an interval-based forward dataflow over
    {!Tb_lir.Reg_ir} walk programs (extending the register-discipline check
    into buffer-bounds verification) and a closure check over
    {!Tb_lir.Layout} model buffers.

    Bounds verdicts come in three tiers, reflecting what pure interval
    reasoning can prove about cursor-chasing loads:

    - [L010] (error) — a {e finite} index interval is disjoint from the
      buffer: the load is out of bounds on {e every} execution that reaches
      it (widened intervals are excluded — they can be disjoint only
      because the abstract iteration they describe is unreachable);
    - [L011] (warning) — a finite interval sticks out of the buffer: some
      abstract executions go out of bounds, but the imprecision may be the
      analysis's (e.g. a child pointer plus a LUT child index);
    - [L012] (info) — the index is loop-variant and was widened to an
      infinite bound; nothing is provable by intervals alone.

    The accompanying {!check_layout} closure check is the precise
    complement: it proves, slot by slot, that every LUT-reachable successor
    of every tile is allocated and in range — which together with the
    interval facts is the actual memory-safety argument for the generated
    walks. *)

type interval = { lo : float; hi : float }
(** Closed interval; either bound may be infinite. *)

type env = {
  tile_size : int;
  extent : Tb_lir.Reg_ir.buffer -> int;
      (** number of addressable scalar elements *)
  content : Tb_lir.Reg_ir.buffer -> (int * int) option;
      (** min/max value stored in an integer buffer, [None] for float
          buffers or when unknown — model buffers are compile-time
          constants, so this is exact *)
}

val env_of_layout : num_features:int -> Tb_lir.Layout.t -> env
(** Extents and integer content ranges read off the actual layout arrays. *)

val check_program :
  ?path:string list -> env -> Tb_lir.Reg_ir.walk_program -> Tb_diag.Diagnostic.t list
(** Forward interval dataflow over the program: register discipline
    ([L001]..[L004] as in {!Tb_lir.Reg_ir.check}), load/store typing against
    buffer element kinds ([L003]), and a bounds verdict for every buffer
    access ([L010]/[L011]/[L012]). Branch conditions refine intervals
    ([Ige] on both arms); [While] bodies run to a widened fixpoint before
    one reporting pass; [Repeat] bodies are executed abstractly [n] times.
    Duplicate findings at one program point are deduplicated. *)

val check_layout : num_features:int -> Tb_lir.Layout.t -> Tb_diag.Diagnostic.t list
(** Model-buffer closure: slot-major array sizes and LUT rows well-formed
    ([L020]/[L024]), tree roots valid ([L022]), every reachable tile
    successor allocated and inside its slab ([L020]), leaf indices inside
    the leaf store ([L023]) and stored feature ids within the model
    ([L021]). *)

val check :
  num_features:int -> Tb_lir.Layout.t -> Tb_mir.Mir.t -> Tb_diag.Diagnostic.t list
(** [check_layout] plus [check_program] over every generated walk variant
    ({!Tb_lir.Reg_codegen.all_variants}); per-variant findings are prefixed
    with [variant N]. *)
