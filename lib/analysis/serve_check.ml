module D = Tb_diag.Diagnostic
module J = Tb_util.Json
module Stats = Tb_util.Stats

type sample = {
  rows : int;
  virtual_us : float;
  wall_us : float;
}

type compile_sample = {
  modeled_us : float;
  wall_compile_us : float;
}

type model_drift = {
  model : string;
  batches : int;
  rows : int;
  percentiles : (float * float * float) list;
  service_ratio : float;
  compiles : int;
  compile_ratio : float option;
}

let drift_percentiles = [ 0.5; 0.9; 0.99 ]

let drift_of_samples ~model samples compiles =
  let vs = Array.of_list (List.map (fun s -> s.virtual_us) samples) in
  let ws = Array.of_list (List.map (fun s -> s.wall_us) samples) in
  let sum_v = Stats.sum vs and sum_w = Stats.sum ws in
  let percentiles =
    if samples = [] then []
    else
      List.map
        (fun p -> (p, Stats.percentile vs p, Stats.percentile ws p))
        drift_percentiles
  in
  let sum_modeled =
    Stats.sum (Array.of_list (List.map (fun c -> c.modeled_us) compiles))
  and sum_wall_compile =
    Stats.sum (Array.of_list (List.map (fun c -> c.wall_compile_us) compiles))
  in
  {
    model;
    batches = List.length samples;
    rows = List.fold_left (fun a (s : sample) -> a + s.rows) 0 samples;
    percentiles;
    service_ratio = (if sum_v > 0.0 then sum_w /. sum_v else 0.0);
    compiles = List.length compiles;
    compile_ratio =
      (if sum_modeled > 0.0 then Some (sum_wall_compile /. sum_modeled)
       else None);
  }

type tolerance = {
  max_service_drift : float;
  max_compile_drift : float;
  min_batches : int;
}

let default_tolerance =
  { max_service_drift = 25.0; max_compile_drift = 50.0; min_batches = 8 }

(* Symmetric drift: 4x too slow and 4x too fast are equally wrong. *)
let fold_ratio r = if r > 0.0 then Float.max r (1.0 /. r) else infinity

let check ?(tol = default_tolerance) drifts =
  let findings = ref [] in
  List.iter
    (fun d ->
      if d.batches >= tol.min_batches then begin
        List.iter
          (fun (p, v, w) ->
            if v > 0.0 && w > 0.0 && fold_ratio (w /. v) > tol.max_service_drift
            then
              findings :=
                D.warningf ~level:D.Serve ~code:"V001" ~path:[ d.model ]
                  "virtual-clock drift at p%g: wall service %.1f us vs \
                   virtual %.1f us (x%.2f, tolerance x%.0f over %d batches)"
                  (100.0 *. p) w v (w /. v) tol.max_service_drift d.batches
                :: !findings)
          d.percentiles;
        match d.compile_ratio with
        | Some r when fold_ratio r > tol.max_compile_drift ->
          findings :=
            D.warningf ~level:D.Serve ~code:"V002" ~path:[ d.model ]
              "compile-cost drift: measured wall compile is x%.2f the \
               modeled cost over %d miss(es) (tolerance x%.0f)"
              r d.compiles tol.max_compile_drift
            :: !findings
        | Some _ | None -> ()
      end)
    drifts;
  List.sort D.compare !findings

let drift_to_json d =
  J.Obj
    [
      ("model", J.Str d.model);
      ("batches", J.Num (float_of_int d.batches));
      ("rows", J.Num (float_of_int d.rows));
      ( "percentiles",
        J.List
          (List.map
             (fun (p, v, w) ->
               J.Obj
                 [
                   ("p", J.Num p);
                   ("virtual_us", J.Num v);
                   ("wall_us", J.Num w);
                   ("ratio", J.Num (if v > 0.0 then w /. v else 0.0));
                 ])
             d.percentiles) );
      ("service_ratio", J.Num d.service_ratio);
      ("compiles", J.Num (float_of_int d.compiles));
      ( "compile_ratio",
        match d.compile_ratio with None -> J.Null | Some r -> J.Num r );
    ]
