module D = Tb_diag.Diagnostic
module Lower = Tb_lir.Lower
module Program = Tb_hir.Program
module Forest = Tb_model.Forest

let check_lowered ?(batch_size = 1024) (lp : Lower.t) =
  let hir = lp.Lower.hir in
  let num_features = hir.Program.forest.Forest.num_features in
  let ds =
    Hir_check.check_program hir
    @ Hir_check.check_schedule ~batch_size hir.Program.schedule
    @ Mir_check.check ~batch_size hir lp.Lower.mir
    @ Lir_check.check ~num_features lp.Lower.layout lp.Lower.mir
  in
  (* check_program re-runs the plain schedule checks; drop duplicates while
     keeping the batch-aware findings. *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun d ->
      let key = (d.D.code, d.D.path, d.D.message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ds
  |> List.stable_sort D.compare
