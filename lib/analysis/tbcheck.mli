(** tbcheck: the whole-pipeline verifier.

    One entry point over a fully lowered program, running every per-level
    analysis: schedule legality and HIR checks ({!Hir_check}), MIR loop
    nest and race checks ({!Mir_check}), and the LIR dataflow + layout
    closure ({!Lir_check}). Returns all findings sorted most-severe-first
    ({!Tb_diag.Diagnostic.compare}); "lint clean" means
    {!Tb_diag.Diagnostic.has_errors} is false. *)

val check_lowered : ?batch_size:int -> Tb_lir.Lower.t -> Tb_diag.Diagnostic.t list
(** Verify every level of a lowered program. [batch_size] (default 1024)
    parameterizes the deployment-dependent checks (row-partition race
    check, thread/interleave advisories). *)
