(** Congruence (stride) abstract domain, the relational half of
    [Lir_check]'s reduced product (paper's sparse layout makes slot indices
    advance in [tile_size]-multiples; cf. Granger's arithmetical
    congruences as used in Astrée-style analyzers).

    An element [{m; r}] denotes the set [{ r + k*m | k ∈ Z }]:
    [m = 0] is the single constant [r], [m = 1] is ⊤ (all integers).
    Invariant: [m >= 0] and [0 <= r < m] when [m > 0]. *)

type t = private { m : int; r : int }

val top : t
val const : int -> t
val is_top : t -> bool
val is_const : t -> bool
val equal : t -> t -> bool

val mem : int -> t -> bool
(** [mem x g] — does the concrete integer [x] belong to the class? *)

val add : t -> t -> t
val sub : t -> t -> t
val mul_const : int -> t -> t

val join : t -> t -> t
(** Least upper bound: modulus [gcd m1 m2 (r1 - r2)]. The domain has no
    infinite ascending chains (moduli only shrink by divisibility), so no
    widening is needed. *)

val tighten_lo : t -> float -> float
(** [tighten_lo g lo] rounds an interval lower bound up to the smallest
    member of [g] that is [>= lo]. Infinite or out-of-int-range bounds pass
    through unchanged. *)

val tighten_hi : t -> float -> float
(** Dual: round an upper bound down to the largest member [<= hi]. *)

val to_string : t -> string
