(** HIR static analyses: tiling validity, LUT totality, padding
    well-formedness, tiled-tree/model consistency and schedule legality.

    These are the checks that used to live only in the test suite (qcheck
    properties over {!Tb_hir.Tiling.check_valid}) or nowhere at all; they
    now run inside the compilation pipeline via {!Tb_core.Passman}. All
    findings are {!Tb_diag.Diagnostic.t} values; see the code registry
    there. *)

val check_schedule :
  ?batch_size:int -> ?cores:int -> Tb_hir.Schedule.t -> Tb_diag.Diagnostic.t list
(** Schedule legality: field ranges ([S001]..[S006] errors) and
    cross-field / deployment advisories — more threads than batch rows
    ([S010]), interleave wider than the batch ([S011]), array layout with a
    large tile size ([S012]), more threads than the target CPU's cores
    ([S013], pass [cores] from {!Tb_cpu.Config.t}); advisories are
    warnings, not errors. *)

val check_tiling : Tb_hir.Itree.t -> Tb_hir.Tiling.t -> Tb_diag.Diagnostic.t list
(** The four §III-B1 tiling constraints as a reusable pass: partitioning
    ([H001]), connectedness ([H002]), leaf separation ([H003]) and maximal
    tiling ([H004]). Unlike {!Tb_hir.Tiling.check_valid} it reports every
    violation, each with a structured code and a [tile N] location. *)

val check_lut : Tb_hir.Lut.t -> Tb_diag.Diagnostic.t list
(** LUT totality and correctness ([H010]): every (shape, bitmask) entry is
    a valid child index of that shape, and equals an independent
    re-navigation of the shape under the mask. *)

val check_tiled_tree :
  ?num_features:int -> Tb_hir.Tiled_tree.t -> Tb_diag.Diagnostic.t list
(** Structural well-formedness of one tiled tree: child/shape arity
    agreement, tree-ness and reachability ([H030]), feature ids in range
    ([H031]) and padding well-formedness — dummy tiles must carry only
    always-true lanes and dead non-0 exits ([H020]). *)

val check_tree_against_source :
  Tb_model.Tree.t -> Tb_hir.Tiled_tree.t -> Tb_diag.Diagnostic.t list
(** Deep model/IR consistency: every real tile lane must reproduce its
    originating node's feature and threshold ([H032]), and the tiling
    reconstructed from the tile/node ownership map must satisfy all four
    tiling constraints against the source tree ([H001]..[H004]). This is
    the check that catches model/layout mismatches before deployment. *)

val check_program : Tb_hir.Program.t -> Tb_diag.Diagnostic.t list
(** Everything above over a built HIR program, plus tree-group coverage
    ([H040]) and group uniformity claims ([H041]). Paths are rooted at
    [tree N] / [group N]. *)
