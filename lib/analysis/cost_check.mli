(** Cost-model calibration: cross-validate {!Tb_cpu.Cost_model} against
    the dynamic event counts {!Tb_vm.Profiler} actually observes and the
    wall clock of the JIT backend, over a grid of schedules.

    The whole Table II search ({!Tb_core.Explore}) is only as good as the
    cost model's {e ranking} of candidate schedules, and the cost model is
    only as good as the workload counts it is fed — which, inside the
    autotuner, are extrapolated from a small row sample. This module
    measures both links of that chain for a (model, target, grid) triple:

    - {e event-count agreement}: per-event relative error between the
      sample-extrapolated workload the autotuner scores and a full-batch
      instrumented run ([C002] beyond tolerance);
    - {e stall-attribution agreement}: the supplied breakdown's top-down
      bucket shares (retiring / front-end / bad speculation / back-end
      memory / back-end core — the paper's §VI-E VTune buckets) against
      the breakdown recomputed from the measured counts ([C003]);
    - {e rank agreement}: Kendall-τ between predicted cycles-per-row and
      measured wall-clock time-per-row over the grid, plus top-k regret —
      how much slower the cost model's champion runs than the measured
      best ([C001]).

    Findings are structured {!Tb_diag.Diagnostic}s in the [C0xx] family at
    level [Cost], all [Warning] severity: a calibration miss is advisory
    (the compiler is still correct), but the [calibrate] CLI and the CI
    smoke job can fail on them with [--strict].

    Compilation is injected (the [compile] callback) so callers choose the
    pipeline: the CLI and {!Tb_core.Explore} pass the verified
    {!Tb_core.Passman} pipeline; tests may pass {!Tb_lir.Lower.lower}
    directly. (This module cannot name [Passman] itself — [tb_core]
    depends on [tb_analysis].) *)

type tolerance = {
  event_rel_err : float;
      (** max per-row relative error on extensive counts before [C002]
          (default 0.25) *)
  stall_share_abs : float;
      (** max absolute difference in a stall bucket's share of total
          cycles before [C003] (default 0.15) *)
  min_tau : float;  (** min Kendall-τ before [C001] (default 0.6) *)
  top_k : int;  (** champion must rank in the measured top-k (default 3) *)
  max_regret : float;
      (** max (measured champion time - measured best) / measured best
          before [C001] (default 0.2) *)
}

val default_tolerance : tolerance

type observation = {
  schedule : Tb_hir.Schedule.t;
  predicted : Tb_cpu.Cost_model.breakdown;
      (** what the autotuner scores: cost model over the
          sample-extrapolated workload *)
  predicted_workload : Tb_cpu.Cost_model.workload;
      (** sample run extrapolated to the full batch
          ({!Tb_vm.Profiler.extrapolate}) *)
  measured_workload : Tb_cpu.Cost_model.workload;
      (** instrumented run over the full batch — the event ground truth *)
  measured_s_per_row : float;
      (** JIT wall clock per row ({!Tb_util.Timer.measure}) *)
}

type event_error = {
  event : string;  (** e.g. ["l1_misses"] *)
  schedule : Tb_hir.Schedule.t;
  predicted_per_row : float;
  measured_per_row : float;
  rel_err : float;
}

type report = {
  name : string;  (** model name the grid was calibrated on *)
  target : string;
  tol : tolerance;
  observations : observation array;
  skipped : (Tb_hir.Schedule.t * string) list;
      (** grid points the compile callback rejected *)
  tau : float;
      (** Kendall-τ, predicted cycles/row vs measured s/row over the grid *)
  champion : int;  (** index of the predicted-best observation *)
  measured_best : int;  (** index of the measured-best observation *)
  regret : float;
      (** measured slowdown of the champion over the measured best *)
  worst_events : event_error list;
      (** per event name, the observation with the largest relative
          error *)
  findings : Tb_diag.Diagnostic.t list;  (** [C001]/[C002]/[C003] *)
}

val observe :
  target:Tb_cpu.Config.t ->
  ?sample:int ->
  ?min_time_s:float ->
  ?min_iters:int ->
  Tb_lir.Lower.t ->
  float array array ->
  observation
(** Profile a compiled program both ways (sample of [sample] rows, default
    48, scaled to the batch; and the full batch) and wall-clock the JIT on
    the batch. [min_time_s] (default 0.05) / [min_iters] (default 3) bound
    the timing loop so full-grid sweeps stay tractable. *)

val check :
  ?tol:tolerance ->
  target:Tb_cpu.Config.t ->
  name:string ->
  ?skipped:(Tb_hir.Schedule.t * string) list ->
  observation array ->
  report
(** Pure agreement statistics over already-collected observations (no
    compilation, no timing) — the piece negative tests drive with seeded
    cost-model mutations. @raise Invalid_argument on an empty array. *)

val calibrate :
  target:Tb_cpu.Config.t ->
  ?tol:tolerance ->
  ?sample:int ->
  ?min_time_s:float ->
  ?min_iters:int ->
  compile:(Tb_hir.Schedule.t -> (Tb_lir.Lower.t, string) result) ->
  name:string ->
  grid:Tb_hir.Schedule.t list ->
  float array array ->
  report
(** The full loop: compile every grid schedule through [compile], observe
    each (skipping schedules the callback rejects), and {!check}.
    @raise Invalid_argument if no grid schedule compiles. *)

val reduced_grid : Tb_hir.Schedule.t list
(** A ~16-point single-threaded slice of the Table II space covering every
    optimization axis (loop order, tile size, tiling kind, padding /
    peeling, interleaving, layout) — the default grid for the [calibrate]
    CLI and the CI smoke job, where the full 256-point grid is too slow. *)

val report_to_json : report -> Tb_util.Json.t
val report_to_file : string -> report -> unit

val pp_report : Format.formatter -> report -> unit
(** Human-readable summary: τ, champion vs measured best, regret, worst
    per-event errors and the findings list. *)

val report_to_string : report -> string
