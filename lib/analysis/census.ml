(* Warning census: counts of a diagnostic family per (model, schedule)
   cell, with a JSON wire format and a baseline diff.

   A census is the measurable surface of an analysis: the lint and
   validate CLIs emit one each, the bench lint/validate experiments
   record them, and CI diffs the current census against a checked-in
   baseline so a precision regression fails the build.

   Two families are tracked today: the walk-bounds family (L010..L014,
   the relational LIR analysis) and the translation-validation family
   (T001..T004, {!Validate}). A family names its column order and the
   diff policy: [hard] codes are never acceptable, baseline or not;
   [soft] codes may not grow in any cell; anything else in [codes] is an
   informational fact and is counted but not diffed. *)

module D = Tb_diag.Diagnostic
module Json = Tb_util.Json

type family = {
  family_name : string;
  codes : string list;  (* column order *)
  hard : string list;  (* never acceptable *)
  soft : string list;  (* per-cell counts may not regress vs baseline *)
}

let lir_family =
  {
    family_name = "lir-bounds";
    codes = [ "L010"; "L011"; "L012"; "L013"; "L014" ];
    hard = [ "L010"; "L013" ];
    soft = [ "L011"; "L012" ];
    (* L014 is a proof fact: counted, not diffed. *)
  }

let validate_family =
  {
    family_name = "validate";
    codes = [ "T001"; "T002"; "T003"; "T004"; "T005" ];
    hard = [ "T004"; "T005" ];
    soft = [ "T001"; "T002"; "T003" ];
  }

let numeric_family =
  {
    family_name = "numeric";
    codes = [ "N001"; "N002"; "N003"; "N004" ];
    hard = [];
    (* All soft: a zoo model may legitimately fail to certify at a narrow
       width (the baseline records why), but certification may only get
       better — any per-cell growth fails the gate. *)
    soft = [ "N001"; "N002"; "N003"; "N004" ];
  }

let all_families = [ lir_family; validate_family; numeric_family ]

let family_of_code code =
  List.find_opt (fun f -> List.mem code f.codes) all_families

(* Default family, fixed by the original census consumers (lint). *)
let codes = lir_family.codes

type row = {
  model : string;
  schedule : string;
  counts : (string * int) list;  (* code -> count, [codes] order, no zeros *)
}

type t = row list

let row_of_diags ?(family = lir_family) ~model ~schedule diags =
  let count c =
    List.length (List.filter (fun d -> d.D.code = c) diags)
  in
  {
    model;
    schedule;
    counts =
      List.filter_map
        (fun c -> match count c with 0 -> None | n -> Some (c, n))
        family.codes;
  }

let get row code =
  try List.assoc code row.counts with Not_found -> 0

let totals ?(family = lir_family) (census : t) =
  List.map
    (fun c ->
      (c, List.fold_left (fun acc row -> acc + get row c) 0 census))
    family.codes

(* ---------------- JSON ---------------- *)

let to_json (census : t) =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("model", Json.Str row.model);
                   ("schedule", Json.Str row.schedule);
                   ( "counts",
                     Json.Obj
                       (List.map
                          (fun (c, n) -> (c, Json.Num (float_of_int n)))
                          row.counts) );
                 ])
             census) );
    ]

let of_json j =
  Json.member "rows" j |> Json.to_list
  |> List.map (fun r ->
         {
           model = Json.member "model" r |> Json.to_str;
           schedule = Json.member "schedule" r |> Json.to_str;
           counts =
             (match Json.member "counts" r with
             | Json.Obj kvs ->
               List.map (fun (c, n) -> (c, Json.to_int n)) kvs
             | _ -> raise (Json.Parse_error "census: counts must be an object"));
         })

let to_file path census =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~indent:true (to_json census)))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (Json.of_string (In_channel.input_all ic)))

(* ---------------- baseline diff ---------------- *)

(* CI contract, per family: [hard] findings are never acceptable,
   baseline or not; [soft] counts may not grow in any cell; the remaining
   codes are facts and are not diffed. *)
let diff ?(family = lir_family) ~baseline (current : t) =
  let key row = (row.model, row.schedule) in
  let base = Hashtbl.create (List.length baseline) in
  List.iter (fun row -> Hashtbl.replace base (key row) row) baseline;
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  List.iter
    (fun row ->
      List.iter
        (fun c ->
          if get row c > 0 then
            problem "%s / %s: %d %s error(s)" row.model row.schedule
              (get row c) c)
        family.hard;
      let soft_total r = List.fold_left (fun acc c -> acc + get r c) 0 family.soft in
      match Hashtbl.find_opt base (key row) with
      | None ->
        if soft_total row > 0 then
          problem
            "%s / %s: not in baseline with %s (regenerate the baseline)"
            row.model row.schedule
            (String.concat " "
               (List.map (fun c -> Printf.sprintf "%s=%d" c (get row c))
                  family.soft))
      | Some b ->
        List.iter
          (fun c ->
            if get row c > get b c then
              problem "%s / %s: %s regressed %d -> %d" row.model row.schedule
                c (get b c) (get row c))
          family.soft)
    current;
  let current_keys = Hashtbl.create (List.length current) in
  List.iter (fun row -> Hashtbl.replace current_keys (key row) ()) current;
  List.iter
    (fun row ->
      if not (Hashtbl.mem current_keys (key row)) then
        problem "%s / %s: in baseline but missing from this census" row.model
          row.schedule)
    baseline;
  List.rev !problems

let pp_totals ?family fmt census =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (c, n) -> Format.fprintf fmt "%-6s %d@," c n)
    (totals ?family census);
  Format.fprintf fmt "@]"
