(* Warning census: counts of the walk-bounds diagnostic family per
   (model, schedule) cell, with a JSON wire format and a baseline diff.

   The census is the measurable surface of the relational analysis: the
   lint CLI emits one, the bench lint experiment compares the legacy and
   relational analyses, and CI diffs the current census against a
   checked-in baseline so bounds-precision regressions fail the build. *)

module D = Tb_diag.Diagnostic
module Json = Tb_util.Json

(* Codes tracked per cell; everything else in a diagnostic list is
   ignored. Order fixes the JSON and pretty-print column order. *)
let codes = [ "L010"; "L011"; "L012"; "L013"; "L014" ]

type row = {
  model : string;
  schedule : string;
  counts : (string * int) list;  (* code -> count, [codes] order, no zeros *)
}

type t = row list

let row_of_diags ~model ~schedule diags =
  let count c =
    List.length (List.filter (fun d -> d.D.code = c) diags)
  in
  {
    model;
    schedule;
    counts =
      List.filter_map
        (fun c -> match count c with 0 -> None | n -> Some (c, n))
        codes;
  }

let get row code =
  try List.assoc code row.counts with Not_found -> 0

let totals (census : t) =
  List.map
    (fun c ->
      (c, List.fold_left (fun acc row -> acc + get row c) 0 census))
    codes

(* ---------------- JSON ---------------- *)

let to_json (census : t) =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("model", Json.Str row.model);
                   ("schedule", Json.Str row.schedule);
                   ( "counts",
                     Json.Obj
                       (List.map
                          (fun (c, n) -> (c, Json.Num (float_of_int n)))
                          row.counts) );
                 ])
             census) );
    ]

let of_json j =
  Json.member "rows" j |> Json.to_list
  |> List.map (fun r ->
         {
           model = Json.member "model" r |> Json.to_str;
           schedule = Json.member "schedule" r |> Json.to_str;
           counts =
             (match Json.member "counts" r with
             | Json.Obj kvs ->
               List.map (fun (c, n) -> (c, Json.to_int n)) kvs
             | _ -> raise (Json.Parse_error "census: counts must be an object"));
         })

let to_file path census =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~indent:true (to_json census)))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (Json.of_string (In_channel.input_all ic)))

(* ---------------- baseline diff ---------------- *)

(* CI contract: errors of the family (L010 definite out-of-bounds, L013
   lane collision) are never acceptable, baseline or not; the warning /
   info counts (L011, L012) may not grow in any cell. L014 is a proof
   fact — gaining some is fine, losing them is not a correctness issue,
   so it is not diffed. *)
let diff ~baseline ~(current : t) =
  let key row = (row.model, row.schedule) in
  let base = Hashtbl.create (List.length baseline) in
  List.iter (fun row -> Hashtbl.replace base (key row) row) baseline;
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  List.iter
    (fun row ->
      List.iter
        (fun c ->
          if get row c > 0 then
            problem "%s / %s: %d %s error(s)" row.model row.schedule
              (get row c) c)
        [ "L010"; "L013" ];
      match Hashtbl.find_opt base (key row) with
      | None ->
        if get row "L011" > 0 || get row "L012" > 0 then
          problem
            "%s / %s: not in baseline with L011=%d L012=%d (regenerate the \
             baseline)"
            row.model row.schedule (get row "L011") (get row "L012")
      | Some b ->
        List.iter
          (fun c ->
            if get row c > get b c then
              problem "%s / %s: %s regressed %d -> %d" row.model row.schedule
                c (get b c) (get row c))
          [ "L011"; "L012" ])
    current;
  let current_keys = Hashtbl.create (List.length current) in
  List.iter (fun row -> Hashtbl.replace current_keys (key row) ()) current;
  List.iter
    (fun row ->
      if not (Hashtbl.mem current_keys (key row)) then
        problem "%s / %s: in baseline but missing from this census" row.model
          row.schedule)
    baseline;
  List.rev !problems

let pp_totals fmt census =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (c, n) -> Format.fprintf fmt "%-6s %d@," c n)
    (totals census);
  Format.fprintf fmt "@]"
