(* Translation validation: symbolic path-summary equivalence across the
   lowering pipeline, with concrete counterexample witnesses.

   Each compiled form of a tree is symbolically executed into the set of
   (feature box, leaf contribution) pairs it can produce. A box is a
   conjunction of half-open interval constraints, refined one predicate
   at a time: the node test [x_f < t] splits an interval [lo, hi) into a
   true part [lo, min(hi, t)) and a false part [max(lo, t), hi), either
   of which may be empty. Padding lanes and hop tiles compare against
   +inf, whose false part is always empty — so they add no paths and
   correct lowerings produce structurally identical summaries.

   The key cost control is the LUT-row decision structure: rather than
   enumerating all 2^tile_size comparison bitmasks at every tile, each
   LUT row is compiled once (memoized by physical row identity, which
   {!Tb_hir.Lut} shares across HIR and LIR) into a reduced binary
   decision tree over lanes, collapsing branches the table does not
   distinguish. For a well-formed tile the reduced tree tests exactly
   the lanes on the navigation path, so the number of summary paths
   equals the source tree's leaf count; corrupt tables merely cause
   more (still sound) splits. *)

module D = Tb_diag.Diagnostic
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module T = Tb_hir.Tiled_tree
module Lut = Tb_hir.Lut
module Program = Tb_hir.Program
module Reorder = Tb_hir.Reorder
module M = Tb_mir.Mir
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Reg_ir = Tb_lir.Reg_ir
module Reg_codegen = Tb_lir.Reg_codegen
module Interp = Tb_vm.Interp

(* ------------------------------------------------------------------ *)
(* Boxes                                                               *)
(* ------------------------------------------------------------------ *)

type interval = { feature : int; lo : float; hi : float }
type box = interval list

(* Conjoin [x_feature < threshold] (lt = true) or [>=] (lt = false) onto
   a box. Returns None when the refined region is empty. Keeps the box
   canonical: sorted by feature, tightest interval, fully unconstrained
   features omitted — so a redundant refinement is the identity. *)
let refine box ~feature ~threshold ~lt =
  let finish acc lo hi rest =
    let lo, hi =
      if lt then (lo, Float.min hi threshold)
      else (Float.max lo threshold, hi)
    in
    if not (lo < hi) then None
    else
      let rest =
        if lo = neg_infinity && hi = infinity then rest
        else { feature; lo; hi } :: rest
      in
      Some (List.rev_append acc rest)
  in
  let rec go acc = function
    | iv :: rest when iv.feature < feature -> go (iv :: acc) rest
    | iv :: rest when iv.feature = feature -> finish acc iv.lo iv.hi rest
    | rest -> finish acc neg_infinity infinity rest
  in
  go [] box

let compare_interval a b =
  match Int.compare a.feature b.feature with
  | 0 -> (
    match Float.compare a.lo b.lo with
    | 0 -> Float.compare a.hi b.hi
    | c -> c)
  | c -> c

let rec compare_box (a : box) (b : box) =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys -> (
    match compare_interval x y with 0 -> compare_box xs ys | c -> c)

let interval_of (b : box) feature =
  match List.find_opt (fun iv -> iv.feature = feature) b with
  | Some iv -> (iv.lo, iv.hi)
  | None -> (neg_infinity, infinity)

(* Replace/insert feature's interval; requires lo < hi. *)
let set_interval (b : box) feature lo hi =
  let rec go acc = function
    | iv :: rest when iv.feature < feature -> go (iv :: acc) rest
    | iv :: rest when iv.feature = feature -> finish acc rest
    | rest -> finish acc rest
  and finish acc rest =
    let rest =
      if lo = neg_infinity && hi = infinity then rest
      else { feature; lo; hi } :: rest
    in
    List.rev_append acc rest
  in
  go [] b

let intersect (a : box) (b : box) : box option =
  let rec go acc a b =
    match (a, b) with
    | [], rest | rest, [] -> Some (List.rev_append acc rest)
    | x :: xs, y :: _ when x.feature < y.feature -> go (x :: acc) xs b
    | x :: _, y :: ys when x.feature > y.feature -> go (y :: acc) a ys
    | x :: xs, y :: ys ->
      let lo = Float.max x.lo y.lo and hi = Float.min x.hi y.hi in
      if not (lo < hi) then None
      else go ({ feature = x.feature; lo; hi } :: acc) xs ys
  in
  (go [] a b : box option)

(* Disjoint pieces of [region] not covered by [cover]. *)
let subtract (region : box) (cover : box) : box list =
  match intersect region cover with
  | None -> [ region ]
  | Some _ ->
    let pieces = ref [] in
    let current = ref region in
    List.iter
      (fun civ ->
        let rlo, rhi = interval_of !current civ.feature in
        if civ.lo > rlo then begin
          pieces := set_interval !current civ.feature rlo civ.lo :: !pieces;
          current := set_interval !current civ.feature civ.lo rhi
        end;
        let rlo, rhi = interval_of !current civ.feature in
        if civ.hi < rhi then begin
          pieces := set_interval !current civ.feature civ.hi rhi :: !pieces;
          current := set_interval !current civ.feature rlo civ.hi
        end)
      cover;
    !pieces

let subtract_all (region : box) (covers : box list) : box list =
  List.fold_left
    (fun regions cover -> List.concat_map (fun r -> subtract r cover) regions)
    [ region ] covers

(* A concrete row inside the box: midpoints, nudged off infinite ends;
   unconstrained features sit at 0. *)
let witness_row ~num_features (b : box) =
  let row = Array.make (max num_features 1) 0.0 in
  List.iter
    (fun iv ->
      if iv.feature >= 0 && iv.feature < Array.length row then
        row.(iv.feature) <-
          (if iv.lo = neg_infinity && iv.hi = infinity then 0.0
           else if iv.lo = neg_infinity then
             if iv.hi -. 1.0 < iv.hi then iv.hi -. 1.0 else Float.pred iv.hi
           else if iv.hi = infinity then
             if iv.lo +. 1.0 >= iv.lo then iv.lo +. 1.0 else iv.lo
           else
             let m = (iv.lo +. iv.hi) /. 2.0 in
             if m >= iv.lo && m < iv.hi then m else iv.lo))
    b;
  row

let interval_to_string iv =
  Printf.sprintf "x%d in [%g, %g)" iv.feature iv.lo iv.hi

let box_to_string = function
  | [] -> "(all rows)"
  | b -> String.concat " & " (List.map interval_to_string b)

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

type summary = {
  paths : (box * float) list;
  stuck : (box * string) list;
}

let compare_path (b1, v1) (b2, v2) =
  match compare_box b1 b2 with 0 -> Float.compare v1 v2 | c -> c

let compare_stuck (b1, m1) (b2, m2) =
  match compare_box b1 b2 with 0 -> String.compare m1 m2 | c -> c

let normalize s =
  {
    paths = List.sort compare_path s.paths;
    stuck = List.sort compare_stuck s.stuck;
  }

let num_paths s = List.length s.paths

let equal_summaries a b =
  List.equal (fun x y -> compare_path x y = 0) a.paths b.paths
  && List.equal (fun x y -> compare_stuck x y = 0) a.stuck b.stuck

(* Merge two same-value boxes that agree on every feature but one, where
   they abut. Boxes are canonical (sorted, tightest), so feature lists
   must align. *)
let merge_boxes (b1 : box) (b2 : box) : box option =
  let rec go acc merged l1 l2 =
    match (l1, l2) with
    | [], [] -> if merged then Some (List.rev acc) else None
    | iv1 :: r1, iv2 :: r2 when iv1.feature = iv2.feature ->
      if iv1.lo = iv2.lo && iv1.hi = iv2.hi then go (iv1 :: acc) merged r1 r2
      else if merged then None
      else
        let joined =
          if iv1.hi = iv2.lo then Some (iv1.lo, iv2.hi)
          else if iv2.hi = iv1.lo then Some (iv2.lo, iv1.hi)
          else None
        in
        (match joined with
        | None -> None
        | Some (lo, hi) ->
          let acc =
            if lo = neg_infinity && hi = infinity then acc
            else { feature = iv1.feature; lo; hi } :: acc
          in
          go acc true r1 r2)
    | _ -> None
  in
  go [] false b1 b2

let coalesce s =
  let merge_step paths =
    let rec scan acc = function
      | [] -> None
      | (b1, v1) :: rest ->
        let rec pair seen = function
          | [] -> None
          | (b2, v2) :: more ->
            if Float.compare v1 v2 = 0 then
              match merge_boxes b1 b2 with
              | Some b -> Some ((b, v1) :: List.rev_append seen more)
              | None -> pair ((b2, v2) :: seen) more
            else pair ((b2, v2) :: seen) more
        in
        (match pair [] rest with
        | Some rest' -> Some (List.rev_append acc rest')
        | None -> scan ((b1, v1) :: acc) rest)
    in
    scan [] paths
  in
  let rec fix paths =
    match merge_step paths with None -> paths | Some paths' -> fix paths'
  in
  normalize { s with paths = fix s.paths }

let exact_partition s =
  let boxes = List.map fst s.paths @ List.map fst s.stuck in
  let covers_everything = subtract_all [] boxes = [] in
  let rec disjoint = function
    | [] -> true
    | b :: rest ->
      List.for_all (fun b' -> intersect b b' = None) rest && disjoint rest
  in
  covers_everything && disjoint boxes

(* ------------------------------------------------------------------ *)
(* LUT-row decision structures                                         *)
(* ------------------------------------------------------------------ *)

type dtree = Child of int | Test of int * dtree * dtree
(* [Test (lane, yes, no)]: split on lane's predicate; [yes] when the
   comparison bit is set (x < t held). *)

(* BDD-style reduction with the lane order as variable order: branches
   the row does not distinguish collapse, so dummy lanes vanish and only
   lanes the table consults remain. *)
let build_dtree (row : int array) nt =
  let rec build lane bits =
    if lane = nt then Child row.(bits)
    else
      let bit = 1 lsl (nt - 1 - lane) in
      let yes = build (lane + 1) (bits lor bit) in
      let no = build (lane + 1) bits in
      if yes = no then yes else Test (lane, yes, no)
  in
  build 0 0

(* Memoized by physical row identity: HIR and LIR share row storage
   ({!Lut.table} keeps the registry's arrays), while a mutated copy is a
   distinct key — essential for the seeded-miscompile tests. *)
type dcache = (int array * dtree) list ref

let new_cache () : dcache = ref []

let dtree_for (cache : dcache) row nt =
  match List.find_opt (fun (r, _) -> r == row) !cache with
  | Some (_, dt) -> dt
  | None ->
    let dt = build_dtree row nt in
    cache := (row, dt) :: !cache;
    dt

(* Walk a decision structure, refining the box at each tested lane. *)
let split_dtree dt box ~lane_feature ~lane_threshold ~emit =
  let rec go box = function
    | Child c -> emit box c
    | Test (lane, yes, no) ->
      let feature = lane_feature lane and threshold = lane_threshold lane in
      (match refine box ~feature ~threshold ~lt:true with
      | Some b -> go b yes
      | None -> ());
      (match refine box ~feature ~threshold ~lt:false with
      | Some b -> go b no
      | None -> ())
  in
  go box dt

(* ------------------------------------------------------------------ *)
(* Summarizers                                                         *)
(* ------------------------------------------------------------------ *)

let summarize_source tree =
  let paths = ref [] in
  let rec go box = function
    | Tree.Leaf v -> paths := (box, v) :: !paths
    | Tree.Node { feature; threshold; left; right } ->
      (match refine box ~feature ~threshold ~lt:true with
      | Some b -> go b left
      | None -> ());
      (match refine box ~feature ~threshold ~lt:false with
      | Some b -> go b right
      | None -> ())
  in
  go [] tree;
  normalize { paths = !paths; stuck = [] }

(* HIR and MIR share the tiled-tree walker; MIR adds the walk kind's
   step contract on top. *)
let summarize_tiled (cache : dcache) (walk : M.walk_kind) (t : T.t) =
  let nt = t.T.tile_size in
  let n = Array.length t.T.nodes in
  let paths = ref [] and stuck = ref [] in
  let push_stuck box msg = stuck := (box, msg) :: !stuck in
  let rec go box i depth =
    if i < 0 || i >= n then push_stuck box "tile child index out of range"
    else if depth > n then push_stuck box "tiled walk deeper than the node count"
    else
      match t.T.nodes.(i) with
      | T.Leaf v -> (
        match walk with
        | M.Loop_walk -> paths := (box, v) :: !paths
        | M.Peeled_walk { peel } ->
          if depth < peel then
            push_stuck box
              (Printf.sprintf "leaf at depth %d < peel %d (check-free step on a leaf)"
                 depth peel)
          else paths := (box, v) :: !paths
        | M.Unrolled_walk { depth = d } ->
          if depth < d then
            push_stuck box
              (Printf.sprintf "leaf at depth %d < unroll depth %d" depth d)
          else paths := (box, v) :: !paths)
      | T.Tile tile -> (
        match walk with
        | M.Unrolled_walk { depth = d } when depth >= d ->
          push_stuck box
            (Printf.sprintf "still on a tile after %d unrolled steps" d)
        | _ ->
          (match Lut.row t.T.lut ~shape_id:tile.T.shape_id with
          | row when Array.length row = 1 lsl nt ->
            split_dtree (dtree_for cache row nt) box
              ~lane_feature:(fun l -> tile.T.features.(l))
              ~lane_threshold:(fun l -> tile.T.thresholds.(l))
              ~emit:(fun box c ->
                if c < 0 || c >= Array.length tile.T.children then
                  push_stuck box "LUT exit outside the tile's child list"
                else go box tile.T.children.(c) (depth + 1))
          | _ -> push_stuck box "malformed LUT row"
          | exception Invalid_argument _ -> push_stuck box "bad shape id"))
  in
  go [] 0 0;
  normalize { paths = !paths; stuck = !stuck }

let summarize_hir t = summarize_tiled (new_cache ()) M.Loop_walk t
let summarize_mir walk t = summarize_tiled (new_cache ()) walk t

let summarize_layout_c (cache : dcache) (lay : Layout.t) ~tree =
  let nt = lay.Layout.tile_size in
  let nslots = Array.length lay.Layout.shape_ids in
  let paths = ref [] and stuck = ref [] in
  let push_stuck box msg = stuck := (box, msg) :: !stuck in
  let tile box s emit =
    let sid = lay.Layout.shape_ids.(s) in
    if sid < 0 || sid >= Array.length lay.Layout.lut then
      push_stuck box (Printf.sprintf "slot %d has shape id %d" s sid)
    else
      let row = lay.Layout.lut.(sid) in
      if Array.length row <> 1 lsl nt then
        push_stuck box (Printf.sprintf "malformed LUT row %d" sid)
      else
        split_dtree (dtree_for cache row nt) box
          ~lane_feature:(fun l -> lay.Layout.features.((s * nt) + l))
          ~lane_threshold:(fun l -> lay.Layout.thresholds.((s * nt) + l))
          ~emit
  in
  if tree < 0 || tree >= Array.length lay.Layout.tree_root then
    push_stuck [] (Printf.sprintf "tree %d outside the layout" tree)
  else begin
    match lay.Layout.kind with
    | Layout.Array_kind ->
      let base = lay.Layout.tree_root.(tree) in
      let fanout = nt + 1 in
      let rec go box local depth =
        let s = base + local in
        if s < 0 || s >= nslots then
          push_stuck box (Printf.sprintf "array slot %d out of bounds" s)
        else if depth > nslots then
          push_stuck box "array walk deeper than the slot count"
        else if lay.Layout.shape_ids.(s) = Layout.leaf_marker then
          paths := (box, lay.Layout.thresholds.(s * nt)) :: !paths
        else
          tile box s (fun box c -> go box ((local * fanout) + c + 1) (depth + 1))
      in
      go [] 0 0
    | Layout.Sparse_kind ->
      let nleaves = Array.length lay.Layout.leaf_values in
      let leaf box idx =
        if idx < 0 || idx >= nleaves then
          push_stuck box (Printf.sprintf "leaf index %d out of bounds" idx)
        else paths := (box, lay.Layout.leaf_values.(idx)) :: !paths
      in
      let rec go box s depth =
        if s < 0 then leaf box (-s - 1)
        else if s >= nslots then
          push_stuck box (Printf.sprintf "sparse slot %d out of bounds" s)
        else if depth > nslots then
          push_stuck box "sparse walk exceeded the slot count (cycle?)"
        else
          tile box s (fun box c ->
              let p = lay.Layout.child_ptr.(s) in
              if p >= 0 then go box (p + c) (depth + 1)
              else leaf box (-p - 1 + c))
      in
      go [] lay.Layout.tree_root.(tree) 0
  end;
  normalize { paths = !paths; stuck = !stuck }

let summarize_layout lay ~tree = summarize_layout_c (new_cache ()) lay ~tree

(* ------------------------------------------------------------------ *)
(* Symbolic register-IR execution                                      *)
(* ------------------------------------------------------------------ *)

(* Register values stay concrete along any single path — index
   arithmetic only ever mixes constants, buffer loads and the one
   symbolic quantity, the comparison bitmask, which is resolved by
   forking at the LUT load. *)
type sval =
  | Sint of int
  | Sbits of { base : int; lanes : (int * float) array }
      (* base + movemask of per-lane [row.(feature) < threshold] bits *)

type vval =
  | Vnone
  | Vfloats of float array
  | Vints of int array
  | Vrow of int array  (* row values gathered at these feature ids *)
  | Vmask of (int * float) array  (* per-lane comparison predicates *)

type sstate = {
  iregs : sval array;
  fregs : float array;
  vregs : vval array;
  mutable sbox : box;
  mutable fuel : int;
}

exception Stuck of string

let stuck_f fmt = Printf.ksprintf (fun m -> raise (Stuck m)) fmt

let summarize_reg_c (cache : dcache) ?num_features (p : Reg_ir.walk_program)
    (lay : Layout.t) ~tree =
  if p.Reg_ir.lanes <> 1 then
    invalid_arg "Validate.summarize_reg: jammed program (project a lane first)";
  let nt = p.Reg_ir.tile_size in
  let w = 1 lsl nt in
  let nslots = Array.length lay.Layout.shape_ids in
  let paths = ref [] and stuck = ref [] in
  let arr_get name a i =
    if i < 0 || i >= Array.length a then
      stuck_f "%s load out of bounds (%d)" name i
    else a.(i)
  in
  let iload buffer idx =
    match buffer with
    | Reg_ir.Shape_ids -> arr_get "shapeIds" lay.Layout.shape_ids idx
    | Reg_ir.Child_ptrs -> arr_get "childPtrs" lay.Layout.child_ptr idx
    | Reg_ir.Feature_ids -> arr_get "featureIds" lay.Layout.features idx
    | Reg_ir.Tree_roots -> arr_get "treeRoots" lay.Layout.tree_root idx
    | Reg_ir.Lut ->
      if idx < 0 then stuck_f "lut load out of bounds (%d)" idx
      else
        let row = arr_get "lut" lay.Layout.lut (idx / w) in
        arr_get "lut row" row (idx mod w)
    | Reg_ir.Thresholds | Reg_ir.Leaf_values | Reg_ir.Row ->
      stuck_f "integer load from a float buffer"
  in
  let fload buffer idx =
    match buffer with
    | Reg_ir.Thresholds -> arr_get "thresholds" lay.Layout.thresholds idx
    | Reg_ir.Leaf_values -> arr_get "leafValues" lay.Layout.leaf_values idx
    | Reg_ir.Row -> stuck_f "scalar row load has no symbolic semantics"
    | _ -> stuck_f "float load from an integer buffer"
  in
  let as_int = function
    | Sint v -> v
    | Sbits _ -> stuck_f "symbolic bitmask used as a plain integer"
  in
  let clone st =
    {
      st with
      iregs = Array.copy st.iregs;
      fregs = Array.copy st.fregs;
      vregs = Array.copy st.vregs;
    }
  in
  let protect st f = try f () with Stuck msg -> stuck := (st.sbox, msg) :: !stuck in
  let eval_cond st = function
    | Reg_ir.Ige (r, c) -> as_int st.iregs.(r) >= c
    | Reg_ir.Ieq_load (b, r, c) -> iload b (as_int st.iregs.(r)) = c
  in
  let eval_v st = function
    | Reg_ir.Vload_f (b, a) ->
      let base = as_int st.iregs.(a) in
      Vfloats (Array.init nt (fun l -> fload b (base + l)))
    | Reg_ir.Vload_i (b, a) ->
      let base = as_int st.iregs.(a) in
      Vints (Array.init nt (fun l -> iload b (base + l)))
    | Reg_ir.Gather (Reg_ir.Row, v) -> (
      match st.vregs.(v) with
      | Vints feats ->
        (match num_features with
        | Some nf ->
          Array.iter
            (fun f ->
              if f < 0 || f >= nf then
                stuck_f "gathered feature id %d out of range" f)
            feats
        | None -> ());
        Vrow feats
      | _ -> stuck_f "gather over a non-index vector")
    | Reg_ir.Gather (_, _) -> stuck_f "gather from a non-row buffer"
    | Reg_ir.Vcmp_lt (a, b) -> (
      match (st.vregs.(a), st.vregs.(b)) with
      | Vrow feats, Vfloats thrs when Array.length feats = Array.length thrs ->
        Vmask (Array.init (Array.length feats) (fun l -> (feats.(l), thrs.(l))))
      | _ -> stuck_f "vector compare over unexpected operands")
  in
  let rec exec st stmts k =
    match stmts with
    | [] -> k st
    | s :: rest -> (
      let continue st = exec st rest k in
      match s with
      | Reg_ir.Iset (r, e) ->
        eval_i st e (fun st v ->
            st.iregs.(r) <- v;
            continue st)
      | Reg_ir.Fset (r, Reg_ir.Fload (b, a)) ->
        st.fregs.(r) <- fload b (as_int st.iregs.(a));
        continue st
      | Reg_ir.Vset (r, e) ->
        st.vregs.(r) <- eval_v st e;
        continue st
      | Reg_ir.While (c, body) ->
        let rec loop st =
          if st.fuel <= 0 then stuck_f "loop fuel exhausted (cycle?)"
          else begin
            st.fuel <- st.fuel - 1;
            if eval_cond st c then exec st body loop else continue st
          end
        in
        loop st
      | Reg_ir.If (c, then_, else_) ->
        exec st (if eval_cond st c then then_ else else_) continue
      | Reg_ir.Repeat (n, body) ->
        if n < 0 then stuck_f "negative repeat count"
        else
          let rec rep i st = if i = 0 then continue st else exec st body (rep (i - 1)) in
          rep n st)
  and eval_i st e k =
    match e with
    | Reg_ir.Iconst c -> k st (Sint c)
    | Reg_ir.Imov a -> k st st.iregs.(a)
    | Reg_ir.Iadd (a, b) -> (
      match (st.iregs.(a), st.iregs.(b)) with
      | Sint x, Sint y -> k st (Sint (x + y))
      | Sint x, Sbits s | Sbits s, Sint x ->
        k st (Sbits { s with base = s.base + x })
      | Sbits _, Sbits _ -> stuck_f "sum of two symbolic bitmasks")
    | Reg_ir.Isub (a, b) -> (
      match (st.iregs.(a), st.iregs.(b)) with
      | Sint x, Sint y -> k st (Sint (x - y))
      | _ -> stuck_f "subtraction over a symbolic bitmask")
    | Reg_ir.Imul_const (a, c) -> (
      match st.iregs.(a) with
      | Sint x -> k st (Sint (x * c))
      | Sbits _ -> stuck_f "scaling a symbolic bitmask")
    | Reg_ir.Iadd_const (a, c) -> (
      match st.iregs.(a) with
      | Sint x -> k st (Sint (x + c))
      | Sbits s -> k st (Sbits { s with base = s.base + c }))
    | Reg_ir.Movemask v -> (
      match st.vregs.(v) with
      | Vmask lanes -> k st (Sbits { base = 0; lanes })
      | _ -> stuck_f "movemask of a non-comparison vector")
    | Reg_ir.Iload (Reg_ir.Lut, a) -> (
      match st.iregs.(a) with
      | Sint idx -> k st (Sint (iload Reg_ir.Lut idx))
      | Sbits { base; lanes } ->
        if base < 0 || base mod w <> 0 then
          stuck_f "LUT index base %d is not row-aligned" base
        else if Array.length lanes <> nt then
          stuck_f "movemask width %d does not match the tile size"
            (Array.length lanes)
        else
          let sid = base / w in
          if sid >= Array.length lay.Layout.lut then
            stuck_f "LUT row %d out of range" sid
          else
            let row = lay.Layout.lut.(sid) in
            if Array.length row <> w then stuck_f "malformed LUT row %d" sid
            else
              (* The fork: each distinct child the row can select becomes
                 its own execution path with the correspondingly refined
                 box. *)
              split_dtree (dtree_for cache row nt) st.sbox
                ~lane_feature:(fun l -> fst lanes.(l))
                ~lane_threshold:(fun l -> snd lanes.(l))
                ~emit:(fun box c ->
                  let st' = clone st in
                  st'.sbox <- box;
                  protect st' (fun () -> k st' (Sint c))))
    | Reg_ir.Iload (b, a) -> k st (Sint (iload b (as_int st.iregs.(a))))
  in
  if tree < 0 || tree >= Array.length lay.Layout.tree_root then
    stuck := ([], Printf.sprintf "tree %d outside the layout" tree) :: !stuck
  else begin
    let st =
      {
        iregs = Array.make p.Reg_ir.num_iregs (Sint 0);
        fregs = Array.make p.Reg_ir.num_fregs 0.0;
        vregs = Array.make p.Reg_ir.num_vregs Vnone;
        sbox = [];
        fuel = (4 * nslots) + 64;
      }
    in
    (* Mirror Interp.run_walk_machine's prologue. *)
    st.iregs.(Reg_ir.base_reg) <- Sint lay.Layout.tree_root.(tree);
    st.iregs.(Reg_ir.state_reg) <-
      (match lay.Layout.kind with
      | Layout.Array_kind -> Sint 0
      | Layout.Sparse_kind -> Sint lay.Layout.tree_root.(tree));
    protect st (fun () ->
        exec st p.Reg_ir.body (fun st ->
            paths := (st.sbox, st.fregs.(Reg_ir.result_reg)) :: !paths))
  end;
  normalize { paths = !paths; stuck = !stuck }

let summarize_reg ?num_features p lay ~tree =
  summarize_reg_c (new_cache ()) ?num_features p lay ~tree

(* ------------------------------------------------------------------ *)
(* Jam-lane projection                                                 *)
(* ------------------------------------------------------------------ *)

exception Projection of string

(* Generic register renaming over a statement. *)
let rec map_regs_stmt ~ir ~fr ~vr stmt =
  let iexpr = function
    | Reg_ir.Iconst c -> Reg_ir.Iconst c
    | Reg_ir.Imov a -> Reg_ir.Imov (ir a)
    | Reg_ir.Iadd (a, b) -> Reg_ir.Iadd (ir a, ir b)
    | Reg_ir.Imul_const (a, c) -> Reg_ir.Imul_const (ir a, c)
    | Reg_ir.Iadd_const (a, c) -> Reg_ir.Iadd_const (ir a, c)
    | Reg_ir.Isub (a, b) -> Reg_ir.Isub (ir a, ir b)
    | Reg_ir.Iload (b, a) -> Reg_ir.Iload (b, ir a)
    | Reg_ir.Movemask v -> Reg_ir.Movemask (vr v)
  in
  let fexpr = function Reg_ir.Fload (b, a) -> Reg_ir.Fload (b, ir a) in
  let vexpr = function
    | Reg_ir.Vload_f (b, a) -> Reg_ir.Vload_f (b, ir a)
    | Reg_ir.Vload_i (b, a) -> Reg_ir.Vload_i (b, ir a)
    | Reg_ir.Gather (b, v) -> Reg_ir.Gather (b, vr v)
    | Reg_ir.Vcmp_lt (a, b) -> Reg_ir.Vcmp_lt (vr a, vr b)
  in
  let cond = function
    | Reg_ir.Ige (r, c) -> Reg_ir.Ige (ir r, c)
    | Reg_ir.Ieq_load (b, r, c) -> Reg_ir.Ieq_load (b, ir r, c)
  in
  match stmt with
  | Reg_ir.Iset (r, e) -> Reg_ir.Iset (ir r, iexpr e)
  | Reg_ir.Fset (r, e) -> Reg_ir.Fset (fr r, fexpr e)
  | Reg_ir.Vset (r, e) -> Reg_ir.Vset (vr r, vexpr e)
  | Reg_ir.While (c, b) ->
    Reg_ir.While (cond c, List.map (map_regs_stmt ~ir ~fr ~vr) b)
  | Reg_ir.If (c, t, e) ->
    Reg_ir.If
      (cond c, List.map (map_regs_stmt ~ir ~fr ~vr) t,
       List.map (map_regs_stmt ~ir ~fr ~vr) e)
  | Reg_ir.Repeat (n, b) ->
    Reg_ir.Repeat (n, List.map (map_regs_stmt ~ir ~fr ~vr) b)

(* The single lane a (non-Repeat) statement's registers all live in, per
   the jam window convention; raises on a cross-window statement. *)
let stmt_lane ~wi ~wf ~wv stmt =
  let lane = ref (-1) in
  let touch width r =
    let l = if width = 0 then 0 else r / width in
    if !lane = -1 then lane := l
    else if !lane <> l then raise (Projection "statement spans lane windows")
  in
  (* Reuse the renamer as a traversal: record, return unchanged. *)
  ignore
    (map_regs_stmt
       ~ir:(fun r -> touch wi r; r)
       ~fr:(fun r -> touch wf r; r)
       ~vr:(fun r -> touch wv r; r)
       stmt);
  !lane

let project_lane (p : Reg_ir.walk_program) ~lane =
  let wi = Reg_ir.lane_width p in
  let wf = Reg_ir.lane_fwidth p in
  let wv = Reg_ir.lane_vwidth p in
  let rebase =
    map_regs_stmt
      ~ir:(fun r -> r - (lane * wi))
      ~fr:(fun r -> r - (lane * wf))
      ~vr:(fun r -> r - (lane * wv))
  in
  let rec proj stmts =
    List.filter_map
      (fun s ->
        match s with
        | Reg_ir.Repeat (n, body) -> Some (Reg_ir.Repeat (n, proj body))
        | _ ->
          let l = stmt_lane ~wi ~wf ~wv s in
          if l = lane then Some (rebase s) else None)
      stmts
  in
  try
    Ok
      {
        p with
        Reg_ir.body = proj p.Reg_ir.body;
        num_iregs = wi;
        num_fregs = wf;
        num_vregs = wv;
        lanes = 1;
      }
  with Projection msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Cross-stage comparison                                              *)
(* ------------------------------------------------------------------ *)

type stage = Source | Hir | Mir | Lir | Reg | Quant

let stage_name = function
  | Source -> "source"
  | Hir -> "hir"
  | Mir -> "mir"
  | Lir -> "lir"
  | Reg -> "reg"
  | Quant -> "quant"

type finding = {
  code : string;
  severity : D.severity;
  tree : int;
  pair : stage * stage;
  region : box;
  witness : float array option;
  message : string;
}

let pair_string (a, b) = Printf.sprintf "%s<->%s" (stage_name a) (stage_name b)

let compare_summaries ?(max_findings = 4) ~num_features ~pair ~tree ~replay a b
    =
  if equal_summaries a b then []
  else
    let a = coalesce a and b = coalesce b in
    if equal_summaries a b then []
    else begin
      let findings = ref [] and count = ref 0 in
      let add f =
        if !count < max_findings then begin
          findings := f :: !findings;
          incr count
        end
      in
      let sa, sb = pair in
      let run stage row =
        match replay stage row with
        | v -> Ok v
        | exception e -> Error (Printexc.to_string e)
      in
      let diverged = function
        | Ok x, Ok y -> Float.compare x y <> 0
        | Ok _, Error _ | Error _, Ok _ -> true
        | Error _, Error _ -> false
      in
      let show = function
        | Ok v -> Printf.sprintf "%.17g" v
        | Error m -> "raise: " ^ m
      in
      let witnessed code severity region fmt =
        Printf.ksprintf
          (fun msg ->
            let wit = witness_row ~num_features region in
            let ra = run sa wit and rb = run sb wit in
            let confirmed = diverged (ra, rb) in
            let code = if confirmed then "T004" else code in
            let severity = if confirmed then D.Error else severity in
            let message =
              Printf.sprintf
                "%s on %s: %s; witness [%s] replays %s=%s vs %s=%s (%s)" msg
                (box_to_string region)
                (if confirmed then "confirmed miscompile" else "not confirmed by replay")
                (String.concat ", "
                   (Array.to_list (Array.map (Printf.sprintf "%g") wit)))
                (stage_name sa) (show ra) (stage_name sb) (show rb) code
            in
            add { code; severity; tree; pair; region; witness = Some wit; message })
          fmt
      in
      (* Leaf-value disagreements on overlapping boxes. *)
      List.iter
        (fun (ba, va) ->
          List.iter
            (fun (bb, vb) ->
              if Float.compare va vb <> 0 then
                match intersect ba bb with
                | Some region ->
                  witnessed "T002" D.Warning region
                    "leaf contribution differs (%.17g vs %.17g)" va vb
                | None -> ())
            b.paths)
        a.paths;
      (* Regions one side reaches that the other covers nowhere. *)
      let boxes s = List.map fst s.paths @ List.map fst s.stuck in
      let cover_b = boxes b and cover_a = boxes a in
      List.iter
        (fun (ba, va) ->
          List.iter
            (fun region ->
              witnessed "T001" D.Warning region
                "partition mismatch: %s maps this region to leaf %.17g but %s \
                 has no path here"
                (stage_name sa) va (stage_name sb))
            (subtract_all ba cover_b))
        a.paths;
      List.iter
        (fun (bb, vb) ->
          List.iter
            (fun region ->
              witnessed "T003" D.Warning region
                "unreachable region introduced: %s maps it to leaf %.17g but \
                 %s has no path here"
                (stage_name sb) vb (stage_name sa))
            (subtract_all bb cover_a))
        b.paths;
      (* Stuck regions facing a live path on the other side. *)
      List.iter
        (fun (bs, msg) ->
          List.iter
            (fun (ba, _) ->
              match intersect bs ba with
              | Some region ->
                witnessed "T003" D.Warning region "%s gets stuck (%s)"
                  (stage_name sb) msg
              | None -> ())
            a.paths)
        b.stuck;
      List.iter
        (fun (bs, msg) ->
          List.iter
            (fun (bb, _) ->
              match intersect bs bb with
              | Some region ->
                witnessed "T001" D.Warning region "%s gets stuck (%s)"
                  (stage_name sa) msg
              | None -> ())
            b.paths)
        a.stuck;
      (* The summaries differ but every slice agrees pointwise: pure
         partition drift with no semantic divergence. *)
      if !findings = [] then
        add
          {
            code = "T001";
            severity = D.Info;
            tree;
            pair;
            region = [];
            witness = None;
            message =
              Printf.sprintf
                "summaries of %s and %s differ structurally but agree on every \
                 overlap (benign partition drift)"
                (stage_name sa) (stage_name sb);
          };
      List.rev !findings
    end

let to_diagnostics fs =
  List.map
    (fun f ->
      let path =
        [ pair_string f.pair;
          (if f.tree >= 0 then Printf.sprintf "tree %d" f.tree else "jam") ]
      in
      let mk =
        match f.severity with
        | D.Error -> D.errorf
        | D.Warning -> D.warningf
        | D.Info -> D.infof
      in
      mk ~level:D.Validate ~code:f.code ~path "%s" f.message)
    fs

(* ------------------------------------------------------------------ *)
(* Pipeline checks                                                     *)
(* ------------------------------------------------------------------ *)

let walks_by_tree (mir : M.t) n =
  let walks = Array.make n M.Loop_walk in
  Array.iter
    (fun (plan : M.group_plan) ->
      Array.iter
        (fun pos -> walks.(pos) <- plan.M.walk)
        plan.M.group.Reorder.positions)
    mir.M.group_plans;
  walks

let check_hir (hir : Program.t) =
  let cache = new_cache () in
  let nf = hir.Program.forest.Forest.num_features in
  let out = ref [] in
  Array.iteri
    (fun i (entry : Program.tree_entry) ->
      let src = hir.Program.forest.Forest.trees.(entry.Program.original_index) in
      let tiled = entry.Program.tiled in
      let fs =
        compare_summaries ~num_features:nf ~pair:(Source, Hir) ~tree:i
          ~replay:(fun stage row ->
            match stage with
            | Source -> Tree.predict src row
            | _ -> T.walk tiled row)
          (summarize_source src)
          (summarize_tiled cache M.Loop_walk tiled)
      in
      out := List.rev_append fs !out)
    hir.Program.trees;
  List.rev !out

let check_mir (hir : Program.t) (mir : M.t) =
  let cache = new_cache () in
  let nf = hir.Program.forest.Forest.num_features in
  let walks = walks_by_tree mir (Array.length hir.Program.trees) in
  let out = ref [] in
  Array.iteri
    (fun i (entry : Program.tree_entry) ->
      match walks.(i) with
      | M.Loop_walk -> ()  (* the generic walk is the HIR semantics *)
      | walk ->
        let tiled = entry.Program.tiled in
        let fs =
          compare_summaries ~num_features:nf ~pair:(Hir, Mir) ~tree:i
            ~replay:(fun stage row ->
              match stage with
              | Mir -> M.walk_tree walk tiled row
              | _ -> T.walk tiled row)
            (summarize_tiled cache M.Loop_walk tiled)
            (summarize_tiled cache walk tiled)
        in
        out := List.rev_append fs !out)
    hir.Program.trees;
  List.rev !out

let check_lir (hir : Program.t) (mir : M.t) (lay : Layout.t) =
  let cache = new_cache () in
  let nf = hir.Program.forest.Forest.num_features in
  let walks = walks_by_tree mir (Array.length hir.Program.trees) in
  let out = ref [] in
  Array.iteri
    (fun i (entry : Program.tree_entry) ->
      let tiled = entry.Program.tiled in
      let walk = walks.(i) in
      let fs =
        compare_summaries ~num_features:nf ~pair:(Mir, Lir) ~tree:i
          ~replay:(fun stage row ->
            match stage with
            | Lir -> Layout.walk lay ~tree:i row
            | _ -> M.walk_tree walk tiled row)
          (summarize_tiled cache walk tiled)
          (summarize_layout_c cache lay ~tree:i)
      in
      out := List.rev_append fs !out)
    hir.Program.trees;
  List.rev !out

let check_reg (hir : Program.t) (mir : M.t) (lay : Layout.t) =
  let cache = new_cache () in
  let nf = hir.Program.forest.Forest.num_features in
  let lp = lazy (Lower.assemble hir mir lay) in
  let variants = Reg_codegen.all_variants lay mir in
  let out = ref [] in
  Array.iteri
    (fun gi (plan : M.group_plan) ->
      match List.assoc_opt gi variants with
      | None -> ()
      | Some prog ->
        Array.iter
          (fun tree ->
            let fs =
              compare_summaries ~num_features:nf ~pair:(Lir, Reg) ~tree
                ~replay:(fun stage row ->
                  match stage with
                  | Reg -> Interp.run_walk prog (Lazy.force lp) ~tree ~row
                  | _ -> Layout.walk lay ~tree row)
                (summarize_layout_c cache lay ~tree)
                (summarize_reg_c cache ~num_features:nf prog lay ~tree)
            in
            out := List.rev_append fs !out)
          plan.M.group.Reorder.positions)
    mir.M.group_plans;
  (* Unroll-and-jam: each lane of a jammed variant must be a pure window
     renaming of the group's single-lane program — then validating the
     base program (above) validates every lane. *)
  List.iter
    (fun (gi, (p : Reg_ir.walk_program)) ->
      if p.Reg_ir.lanes > 1 then
        match List.assoc_opt gi variants with
        | None -> ()
        | Some expected ->
          for lane = 0 to p.Reg_ir.lanes - 1 do
            let problem =
              match project_lane p ~lane with
              | Error msg -> Some msg
              | Ok q ->
                if q = expected then None
                else Some "lane projection is not the group walk program"
            in
            match problem with
            | None -> ()
            | Some msg ->
              out :=
                {
                  code = "T001";
                  severity = D.Warning;
                  tree = -1;
                  pair = (Lir, Reg);
                  region = [];
                  witness = None;
                  message =
                    Printf.sprintf
                      "group %d lane %d of the jammed walk is not a window \
                       renaming of the group program: %s"
                      gi lane msg;
                }
                :: !out
          done)
    (Reg_codegen.jammed_variants lay mir);
  List.rev !out

let check_all hir mir lay =
  check_hir hir @ check_mir hir mir @ check_lir hir mir lay
  @ check_reg hir mir lay

(* The quantized stage pair is concrete, not symbolic: both sides
   quantize rows and thresholds with the same saturating rounding, so
   the quantized layout must agree with the certified integer evaluator
   {e bit for bit on every probe row} — including threshold ties and
   dead-zone rows (those may only diverge from the {e float} path). *)
let check_quant ?(rows = 48) (forest : Forest.t) (plan : Numeric.plan)
    (lp : Lower.t) =
  match lp.Lower.layout.Layout.quant with
  | None ->
    [
      {
        code = "T005";
        severity = D.Error;
        tree = -1;
        pair = (Lir, Quant);
        region = [];
        witness = None;
        message = "quantized stage pair requested on a float lowering";
      };
    ]
  | Some _ ->
    let qm = Numeric.quantize plan forest in
    let nf = forest.Forest.num_features in
    let rng = Tb_util.Prng.create 0x51ab in
    let gaussian_row () =
      Array.init nf (fun _ -> 2.0 *. Tb_util.Prng.gaussian rng)
    in
    (* Tie probes: pin one feature to an exact source threshold so the
       quantized compare sits on the rounding boundary. *)
    let thresholds =
      Array.to_list forest.Forest.trees
      |> List.concat_map (fun tree ->
             Tree.fold
               ~leaf:(fun _ -> [])
               ~node:(fun f t l r -> ((f, t) :: l) @ r)
               tree)
    in
    let tie_rows =
      List.filteri (fun i _ -> i < 32) thresholds
      |> List.map (fun (f, t) ->
             let row = gaussian_row () in
             row.(f) <- t;
             row)
    in
    let probes = List.init rows (fun _ -> gaussian_row ()) @ tie_rows in
    let out = ref [] in
    List.iter
      (fun row ->
        let a = Lower.reference_qpredict lp row in
        let b = Numeric.qpredict_raw qm row in
        let agree =
          Array.length a = Array.length b
          && Array.for_all2
               (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
               a b
        in
        if not agree then
          out :=
            {
              code = "T005";
              severity = D.Error;
              tree = -1;
              pair = (Lir, Quant);
              region = [];
              witness = Some row;
              message =
                Printf.sprintf
                  "quantized layout evaluation diverges from the certified \
                   integer evaluator: layout %s, qpredict %s"
                  (String.concat ","
                     (Array.to_list (Array.map (Printf.sprintf "%h") a)))
                  (String.concat ","
                     (Array.to_list (Array.map (Printf.sprintf "%h") b)));
            }
            :: !out)
      probes;
    List.rev !out
