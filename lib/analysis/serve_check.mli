(** Dual-clock serving calibration: does the virtual clock track the wall?

    The serving runtime ({!Tb_serve.Runtime}) schedules batches on a
    deterministic virtual clock whose service times come from the cost
    model, and (in wall/dual mode) also times each batch's real [predict]
    call — plus each cache miss's real compile — with monotonic timers on
    the worker pool. This module turns those paired measurements into a
    per-model {e drift summary} (wall/virtual ratio per percentile) and
    checks it against tolerances, the same way {!Cost_check} calibrates
    cycles:

    - [V001] {e virtual-clock drift}: at some latency percentile a model's
      wall service time is more than [max_service_drift]× away (in either
      direction) from the virtual one;
    - [V002] {e compile-cost drift}: the measured compile cost of cache
      misses is more than [max_compile_drift]× away from the registry's
      modeled compile cost.

    Both clocks are microseconds; ratios are dimensionless, so drift
    statements survive hardware changes. The module is pure — it never
    reads a clock itself — which keeps the virtual simulator deterministic
    and lets tests fault-inject drift by scaling the modeled costs. *)

type sample = {
  rows : int;  (** batch size *)
  virtual_us : float;  (** modeled predict time charged by the simulator *)
  wall_us : float;  (** measured wall-clock predict time *)
}

type compile_sample = {
  modeled_us : float;  (** the registry's deterministic compile cost *)
  wall_compile_us : float;  (** measured wall-clock compile time *)
}

type model_drift = {
  model : string;
  batches : int;  (** number of paired service samples *)
  rows : int;  (** total rows across those batches *)
  percentiles : (float * float * float) list;
      (** [(p, virtual_q, wall_q)] at the {!drift_percentiles} *)
  service_ratio : float;
      (** Σ wall / Σ virtual service time — the headline wall/virtual
          drift factor (0 when there are no samples) *)
  compiles : int;
  compile_ratio : float option;
      (** Σ wall / Σ modeled compile cost over misses; [None] when no
          compile was measured *)
}

val drift_percentiles : float list
(** The percentiles a drift summary reports: 0.5, 0.9, 0.99. *)

val drift_of_samples :
  model:string -> sample list -> compile_sample list -> model_drift
(** Summarize one model's paired measurements. *)

type tolerance = {
  max_service_drift : float;
      (** allowed wall/virtual ratio (either direction) per percentile
          before V001 *)
  max_compile_drift : float;
      (** allowed measured/modeled compile ratio before V002 *)
  min_batches : int;
      (** drift of a model with fewer paired batches is not judged (one
          noisy measurement must not fail a run) *)
}

val default_tolerance : tolerance
(** 25× service drift, 50× compile drift, 8 batches minimum. The virtual
    clock models a vectorized native backend while execution runs OCaml
    closures, so a wide corridor is the honest default; calibration
    ({!Tb_serve.Registry.calibrate}) is how the corridor narrows. *)

val check :
  ?tol:tolerance -> model_drift list -> Tb_diag.Diagnostic.t list
(** V001/V002 warnings ([Serve] level) for every model whose drift
    summary leaves the tolerance corridor, sorted
    ({!Tb_diag.Diagnostic.compare}). *)

val drift_to_json : model_drift -> Tb_util.Json.t
(** Machine-readable drift section for serving reports. *)
