(** Static value-range and quantization certification over forests
    (the N00x family).

    Two ROADMAP items — the integer-only fast path (InTreeger-style
    quantized thresholds/leaves) and early-exit traversal (stop scoring a
    row once the remaining trees cannot change the decision) — need the
    same capability: sound static bounds on what a forest can compute.
    This module provides both halves, in the style of the repo's other
    verifiers ({!Lir_check}, {!Validate}): everything it claims is either
    proved by interval arithmetic over the model or reported as an N00x
    finding, and [test/test_numeric.ml] replays concrete quantized
    executions against every proved bound.

    {2 Value-range summary}

    {!summarize} computes, per feature, a threshold census (occurrence
    and distinct counts, range, minimum adjacent gap — the quantities
    per-feature scale derivation needs) and, per tree, the reachable
    leaf-value interval; per class, the reachable leaf-sum interval
    including [base_score].

    {2 Per-prefix partial-sum tables}

    {!prefix_bounds} is the data structure the future early-exit MIR pass
    consumes: for a given tree evaluation order, the min/max contribution
    of every suffix. After evaluating the first [k] trees of
    [order] with per-class partial sums [p_c] (initialized to
    [base_score]), the final raw margin of class [c] lies in
    [p_c + suffix_lo.(c).(k), p_c + suffix_hi.(c).(k)] — so traversal can
    stop as soon as the margin/tolerance decision is invariant over those
    intervals.

    {2 Quantization certificates}

    {!certify} derives per-feature power-of-two scales for a target
    integer width (int8/int16) and statically proves — or refutes with
    N001–N004 findings — that integer-only inference is safe:

    - thresholds on feature [f] are scaled by [2^e_f] with [e_f] the
      largest exponent whose scaled threshold range fits the width, so a
      scaled threshold never overflows by construction;
    - leaves and [base_score] share the largest power-of-two scale
      [2^leaf_exp] that fits the width; class accumulation happens in a
      doubled-width register (int16 for int8, int32 for int16), and
      [N001] fires when the worst-case running accumulator magnitude can
      exceed it (or a model constant is non-finite / needs an exponent
      outside the supported range);
    - [N002] fires per feature whose distinct thresholds collide after
      scaling (rows in the dead zone between two collided thresholds can
      be routed differently by the integer path);
    - [N003] fires per class whose proved worst-case dequantized-output
      deviation {!certificate.dev_bound} exceeds the tolerance;
    - [N004] fires (classification only) when some class pair's
      reachable margin interval comes within the combined deviation
      bound of the decision boundary — quantization alone, with routing
      unchanged, could flip the predicted class. Rows inside a rounding
      dead zone ({!dead_zone_row}) are outside this certificate; the
      soundness harness checks them separately.

    All findings are [Warning] severity: they refute the quantization
    certificate, not the float pipeline. *)

type interval = { lo : float; hi : float }

type feature_census = {
  feature : int;
  occurrences : int;  (** internal nodes comparing this feature *)
  distinct : int;  (** distinct threshold values *)
  range : interval;
      (** threshold min/max; [{lo = infinity; hi = neg_infinity}] when
          the feature is unused *)
  min_gap : float;
      (** smallest gap between adjacent distinct thresholds; [infinity]
          when fewer than two *)
}

type summary = {
  forest_name : string;
  num_classes : int;
  features : feature_census array;  (** indexed by feature *)
  tree_values : interval array;  (** per tree: reachable leaf interval *)
  class_bounds : interval array;
      (** per class: reachable raw-margin interval, [base_score]
          included *)
}

val summarize : Tb_model.Forest.t -> summary

type prefix_table = {
  order : int array;  (** tree evaluation order (a permutation) *)
  suffix_lo : float array array;
  suffix_hi : float array array;
      (** [suffix_lo.(c).(k)] / [suffix_hi.(c).(k)] bound the summed
          contribution of trees [order.(k) .. order.(n-1)] to class [c];
          both have length [n + 1] per class, with entry [n] = 0. *)
}

val prefix_bounds : ?order:int array -> Tb_model.Forest.t -> prefix_table
(** Per-prefix partial-sum bound table for [order] (default: the forest's
    own tree order). @raise Invalid_argument if [order] is not a
    permutation of the tree indices. *)

val suffix_interval : prefix_table -> cls:int -> prefix:int -> interval
(** The [[suffix_lo; suffix_hi]] pair as an interval. *)

(** {2 Quantization} *)

type width = I8 | I16

val bits : width -> int

val width_to_string : width -> string
(** ["int8"] / ["int16"]. *)

val width_of_string : string -> (width, string) result
(** Accepts ["int8"]/["int16"]/["8"]/["16"]. *)

type plan = {
  width : width;
  q_max : int;  (** [2^(bits-1) - 1]: scaled threshold/leaf magnitude cap *)
  acc_max : int;  (** [2^(2*bits-1) - 1]: doubled-width accumulator cap *)
  feature_exp : int option array;
      (** per feature: [Some e] scales feature [f] and its thresholds by
          [2^e]; [None] for unused features *)
  leaf_exp : int;  (** leaves and [base_score] are scaled by [2^leaf_exp] *)
  tolerance : float;
}

type collision = {
  c_feature : int;
  pairs : int;  (** adjacent distinct threshold pairs that collided *)
  widest_gap : float;  (** widest dead zone among the collided pairs *)
}

type certificate = {
  plan : plan;
  summary : summary;
  dev_bound : float array;
      (** per class: proved worst-case |dequantized − float reference|
          over rows whose routing is unchanged by quantization *)
  acc_bound : int array;
      (** per class: proved worst-case running-accumulator magnitude in
          quantized units (any evaluation order) *)
  collisions : collision list;
  ambiguous_pairs : int;
      (** class pairs (or the sign boundary, for binary) whose margin
          interval overlaps the deviation band — the N004 count *)
  findings : Tb_diag.Diagnostic.t list;  (** N001..N004, [Warning] level *)
}

val default_tolerance : float
(** 1e-3 — the default [--tolerance] of the [quantcheck] CLI. *)

val certify :
  ?tolerance:float -> width:width -> Tb_model.Forest.t -> certificate

val certified_clean : certificate -> bool
(** No findings: integer-only inference at this width is proved safe for
    routing-stable rows within [tolerance]. *)

(** {2 Executable quantized path}

    A reference integer-only evaluator over the derived plan — what the
    future quantized LIR layout must agree with, and what the soundness
    harness replays against the certificate. *)

type qtree =
  | Qleaf of int
  | Qnode of { feature : int; qthreshold : int; qleft : qtree; qright : qtree }

type qmodel = {
  qplan : plan;
  qtrees : qtree array;
  qbase : int;  (** [round (base_score * 2^leaf_exp)] *)
  q_classes : int;
}

val quantize : plan -> Tb_model.Forest.t -> qmodel

val quantize_input : plan -> float array -> int array
(** Per-feature rounding of a row by its scale (0 for unused features). *)

val qpredict_acc : qmodel -> int array -> int array
(** Integer class accumulators for a quantized row ([qbase] included). *)

val qpredict_raw : qmodel -> float array -> float array
(** Quantize the row, accumulate in integers, dequantize: the end-to-end
    integer fast path whose deviation the certificate bounds. *)

val qtree_leaf_index : qtree -> int array -> int
(** Leaf reached by the quantized routing, in left-to-right leaf order —
    comparable with {!Tb_model.Tree.predict_leaf_index} to detect routing
    divergence. *)

val dead_zone_row : plan -> Tb_model.Forest.t -> float array -> bool
(** True when some internal node [(f, t)] of the forest disagrees between
    [x_f < t] and its quantized comparison — the only rows on which
    quantized routing can diverge from float routing. The certificate's
    deviation and flip claims hold on rows where this is [false]. *)

val reference_raw : Tb_model.Forest.t -> float array -> float array
(** Float reference margins computed with {!Tb_util.Stats.neumaier_sum}
    (near-exact accumulation), the baseline the deviation bound is
    stated against. *)

val report_to_json : certificate -> Tb_util.Json.t
(** Machine-readable certificate: plan exponents, bounds, findings. *)
