(** MIR static analyses: loop-nest well-formedness and the row-loop race
    check.

    The race check is the one genuinely "static parallel safety" proof in
    the pipeline: the parallel backend splits the batch with
    {!Tb_mir.Mir.row_partition} and each domain accumulates into
    [out.(lo..hi)]; proving the ranges pairwise disjoint and covering
    proves the domains never write the same output row. *)

val check_row_partition :
  batch:int -> (int * int) array -> Tb_diag.Diagnostic.t list
(** Prove that per-domain half-open row ranges are races-free: pairwise
    disjoint and within the batch ([M010] on any overlap or out-of-batch
    write) and that together they cover every row exactly once ([M011] on
    gaps). Exposed over raw ranges so tests can feed seeded-faulty
    partitions; the pipeline checks the real
    {!Tb_mir.Mir.row_partition} output. *)

val check :
  ?batch_size:int -> Tb_hir.Program.t -> Tb_mir.Mir.t -> Tb_diag.Diagnostic.t list
(** Loop-nest well-formedness of a lowered MIR against its HIR program:
    group plans must cover every tree exactly once and echo the HIR groups
    ([M001]); [Unrolled_walk] is only legal on groups re-verified to be
    uniform at the claimed depth ([M002]); [Peeled_walk]'s peel cannot
    exceed the group's min leaf depth ([M003]); interleave factors must be
    at least 1 and row-major jams at most the group size ([M004]);
    [loop_order] must match the schedule ([M005]); [num_threads] must be
    at least 1 ([M006]). Finally the row partition for [batch_size]
    (default 1024) rows is proven race-free ([M010]/[M011]). *)
