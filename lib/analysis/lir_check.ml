module D = Tb_diag.Diagnostic
module Reg_ir = Tb_lir.Reg_ir
module Reg_codegen = Tb_lir.Reg_codegen
module Layout = Tb_lir.Layout
module Mir = Tb_mir.Mir

(* ------------------------------------------------------------------ *)
(* Interval arithmetic (float bounds so infinities are first-class)    *)
(* ------------------------------------------------------------------ *)

type interval = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }
let const c = { lo = float_of_int c; hi = float_of_int c }
let iadd a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let isub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }
let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let imul_const a c =
  if c = 0 then const 0
  else begin
    let c = float_of_int c in
    let p = a.lo *. c and q = a.hi *. c in
    { lo = min p q; hi = max p q }
  end

let bound_str x =
  if x = infinity then "+inf"
  else if x = neg_infinity then "-inf"
  else Printf.sprintf "%.0f" x

let istr iv = Printf.sprintf "[%s, %s]" (bound_str iv.lo) (bound_str iv.hi)

let within iv ~lo ~hi = iv.lo >= float_of_int lo && iv.hi <= float_of_int hi

(* ------------------------------------------------------------------ *)
(* Environment: buffer extents, content ranges, and relational facts   *)
(* ------------------------------------------------------------------ *)

type env = {
  tile_size : int;
  extent : Reg_ir.buffer -> int;
  content : Reg_ir.buffer -> (int * int) option;
  content_cg : Reg_ir.buffer -> Congruence.t;
  tile_advance : (int * int) option;
  leaf_advance : (int * int) option;
  widen_thresholds : float array;
}

let int_range arr =
  if Array.length arr = 0 then None
  else
    Some
      ( Array.fold_left min max_int arr,
        Array.fold_left max min_int arr )

let cg_of_array arr =
  if Array.length arr = 0 then Congruence.top
  else
    Array.fold_left
      (fun acc v -> Congruence.join acc (Congruence.const v))
      (Congruence.const arr.(0))
      arr

let env_of_layout ~num_features (lay : Layout.t) =
  let nt = lay.Layout.tile_size in
  let extent = function
    | Reg_ir.Thresholds -> Array.length lay.Layout.thresholds
    | Reg_ir.Feature_ids -> Array.length lay.Layout.features
    | Reg_ir.Shape_ids -> Array.length lay.Layout.shape_ids
    | Reg_ir.Child_ptrs -> Array.length lay.Layout.child_ptr
    | Reg_ir.Leaf_values -> Array.length lay.Layout.leaf_values
    | Reg_ir.Lut -> Array.length lay.Layout.lut * (1 lsl nt)
    | Reg_ir.Tree_roots -> Array.length lay.Layout.tree_root
    | Reg_ir.Row -> num_features
  in
  let lut_range =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc v ->
            match acc with
            | None -> Some (v, v)
            | Some (a, b) -> Some (min a v, max b v))
          acc row)
      None lay.Layout.lut
  in
  let content = function
    | Reg_ir.Feature_ids -> int_range lay.Layout.features
    | Reg_ir.Shape_ids -> int_range lay.Layout.shape_ids
    | Reg_ir.Child_ptrs -> int_range lay.Layout.child_ptr
    | Reg_ir.Tree_roots -> int_range lay.Layout.tree_root
    | Reg_ir.Lut -> lut_range
    | Reg_ir.Thresholds | Reg_ir.Leaf_values | Reg_ir.Row -> None
  in
  let content_cg = function
    | Reg_ir.Feature_ids -> cg_of_array lay.Layout.features
    | Reg_ir.Shape_ids -> cg_of_array lay.Layout.shape_ids
    | Reg_ir.Child_ptrs -> cg_of_array lay.Layout.child_ptr
    | Reg_ir.Tree_roots -> cg_of_array lay.Layout.tree_root
    | Reg_ir.Lut ->
      Array.fold_left
        (fun acc row -> Congruence.join acc (cg_of_array row))
        (Congruence.const 0) lay.Layout.lut
    | Reg_ir.Thresholds | Reg_ir.Leaf_values | Reg_ir.Row -> Congruence.top
  in
  let facts = Layout.stride_facts lay in
  (* Widening thresholds (satellite of the relational upgrade): landmarks
     a loop-variant index can genuinely be bounded by — buffer extents and
     content bounds, the layout's advance ranges, and the small constants
     the codegen uses. A bounded cursor now stops at the nearest landmark
     instead of degrading every neighbour to ±inf via [hull]. *)
  let widen_thresholds =
    let acc = ref [ -1.0; 0.0; 1.0; float_of_int nt;
                    float_of_int ((1 lsl nt) - 1) ] in
    let add v = acc := float_of_int v :: !acc in
    List.iter
      (fun b ->
        add (extent b);
        add (extent b - 1);
        match content b with
        | Some (a, z) -> add a; add z
        | None -> ())
      [ Reg_ir.Thresholds; Reg_ir.Feature_ids; Reg_ir.Shape_ids;
        Reg_ir.Child_ptrs; Reg_ir.Leaf_values; Reg_ir.Lut;
        Reg_ir.Tree_roots; Reg_ir.Row ];
    (match facts.Layout.tile_advance with
    | Some (a, z) -> add a; add z
    | None -> ());
    (match facts.Layout.leaf_advance with
    | Some (a, z) -> add a; add z; add (-z - 1); add (-a - 1)
    | None -> ());
    Array.of_list (List.sort_uniq compare !acc)
  in
  {
    tile_size = nt;
    extent;
    content;
    content_cg;
    tile_advance = facts.Layout.tile_advance;
    leaf_advance = facts.Layout.leaf_advance;
    widen_thresholds;
  }

let buffer_name = function
  | Reg_ir.Thresholds -> "thresholds"
  | Reg_ir.Feature_ids -> "featureIds"
  | Reg_ir.Shape_ids -> "shapeIds"
  | Reg_ir.Child_ptrs -> "childPtrs"
  | Reg_ir.Leaf_values -> "leafValues"
  | Reg_ir.Lut -> "lut"
  | Reg_ir.Tree_roots -> "treeRoots"
  | Reg_ir.Row -> "row"

let is_float_buffer = function
  | Reg_ir.Thresholds | Reg_ir.Leaf_values | Reg_ir.Row -> true
  | Reg_ir.Feature_ids | Reg_ir.Shape_ids | Reg_ir.Child_ptrs | Reg_ir.Lut
  | Reg_ir.Tree_roots -> false

(* ------------------------------------------------------------------ *)
(* Abstract values: interval x congruence x provenance                 *)
(* ------------------------------------------------------------------ *)

(* Provenance chains let the analysis recognize the codegen's sparse-step
   idiom relationally. [sym] is the identity of the defining occurrence
   (fresh per definition, preserved by moves/refinement, joined to [None]
   when control flow merges distinct definitions): two loads indexed by
   values with the same [sym] read the same slot at run time. The [org]
   tags then say what a value is in terms of that slot:

     Oshape s    = shape_ids[v_s]          Ocptr s = child_ptr[v_s]
     Olutbase s  = shape_ids[v_s] * 2^nt   (the slot's LUT row base)
     Olutrow s   = row base + bits, bits within the row
     Ochild s    = lut[Olutrow s]          (a child the slot can select)

   When Ocptr s (known >= 0) meets Ochild s in an add, the sum is exactly
   a [child_ptr + reachable child] pair of one slot — the quantity
   [Layout.stride_facts] bounds precisely; likewise Ocptr - Ochild for
   negative pointers against the leaf-advance range. This is what
   discharges the sparse-layout L011s that a per-register interval
   analysis conflates (max child_ptr + max child overshoots because the
   max-pointer slot's child block is smaller than tile_size + 1). *)
type origin =
  | Onone
  | Oshape of int
  | Olutbase of int
  | Olutrow of int
  | Ochild of int
  | Ocptr of int

type aval = {
  iv : interval;
  cg : Congruence.t;
  org : origin;
  sym : int option;
}

type ival = Ibot | Iv of aval
type vval = Vbot | Vint of interval | Vfloat

type state = { ir : ival array; vr : vval array; fr : bool array }

let join_aval a b =
  {
    iv = hull a.iv b.iv;
    cg = Congruence.join a.cg b.cg;
    org = (if a.org = b.org then a.org else Onone);
    sym = (if a.sym = b.sym then a.sym else None);
  }

let join_ival a b =
  match (a, b) with
  | Ibot, _ | _, Ibot -> Ibot
  | Iv x, Iv y -> Iv (join_aval x y)

let join_vval a b =
  match (a, b) with
  | Vbot, _ | _, Vbot -> Vbot
  | Vint x, Vint y -> Vint (hull x y)
  | Vfloat, Vfloat -> Vfloat
  | Vint _, Vfloat | Vfloat, Vint _ -> Vbot

let join_state a b =
  {
    ir = Array.map2 join_ival a.ir b.ir;
    vr = Array.map2 join_vval a.vr b.vr;
    fr = Array.map2 ( && ) a.fr b.fr;
  }

(* Widening-with-thresholds: an escaping bound jumps to the nearest
   landmark in the given direction, or to infinity once landmarks run
   out. [thresholds] is sorted ascending; the empty array degenerates to
   the classic infinite widening. *)
let widen_interval ~thresholds prev next =
  let lo =
    if next.lo >= prev.lo then next.lo
    else
      Array.fold_left
        (fun best t -> if t <= next.lo && t > best then t else best)
        neg_infinity thresholds
  in
  let hi =
    if next.hi <= prev.hi then next.hi
    else
      Array.fold_left
        (fun best t -> if t >= next.hi && t < best then t else best)
        infinity thresholds
  in
  { lo; hi }

let widen_ival ~thresholds prev next =
  match (prev, next) with
  | Iv a, Iv b -> Iv { b with iv = widen_interval ~thresholds a.iv b.iv }
  | _ -> next

let widen_vval ~thresholds prev next =
  match (prev, next) with
  | Vint a, Vint b -> Vint (widen_interval ~thresholds a b)
  | _ -> next

let widen_state ~thresholds prev next =
  {
    ir = Array.map2 (widen_ival ~thresholds) prev.ir next.ir;
    vr = Array.map2 (widen_vval ~thresholds) prev.vr next.vr;
    fr = next.fr;
  }

let aval_equal a b =
  a.iv.lo = b.iv.lo && a.iv.hi = b.iv.hi
  && Congruence.equal a.cg b.cg
  && a.org = b.org && a.sym = b.sym

let ival_equal a b =
  match (a, b) with
  | Ibot, Ibot -> true
  | Iv x, Iv y -> aval_equal x y
  | _ -> false

let vval_equal a b =
  match (a, b) with
  | Vbot, Vbot -> true
  | Vfloat, Vfloat -> true
  | Vint x, Vint y -> x.lo = y.lo && x.hi = y.hi
  | _ -> false

let state_equal a b =
  Array.length a.ir = Array.length b.ir
  && Array.for_all2 ival_equal a.ir b.ir
  && Array.for_all2 vval_equal a.vr b.vr
  && a.fr = b.fr

let set_i st r v =
  let ir = Array.copy st.ir in
  ir.(r) <- v;
  { st with ir }

let set_v st r v =
  let vr = Array.copy st.vr in
  vr.(r) <- v;
  { st with vr }

let set_f st r =
  let fr = Array.copy st.fr in
  fr.(r) <- true;
  { st with fr }

let join_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (join_state x y)

(* ------------------------------------------------------------------ *)
(* The forward dataflow                                                *)
(* ------------------------------------------------------------------ *)

let analyze_program ?(path = []) ?(relational = true) env
    (p : Reg_ir.walk_program) =
  let diags = ref [] in
  let dedup = Hashtbl.create 64 in
  let emit ~report d =
    if report then begin
      let key = (d.D.code, d.D.path) in
      if not (Hashtbl.mem dedup key) then begin
        Hashtbl.add dedup key ();
        diags := d :: !diags
      end
    end
  in
  let err ~report ~code pth fmt =
    Printf.ksprintf
      (fun message ->
        emit ~report
          { D.code; severity = D.Error; level = D.Lir; path = pth; message })
      fmt
  in
  let warn ~report ~code pth fmt =
    Printf.ksprintf
      (fun message ->
        emit ~report
          { D.code; severity = D.Warning; level = D.Lir; path = pth; message })
      fmt
  in
  let info ~report ~code pth fmt =
    Printf.ksprintf
      (fun message ->
        emit ~report
          { D.code; severity = D.Info; level = D.Lir; path = pth; message })
      fmt
  in
  if p.Reg_ir.tile_size <> env.tile_size then
    err ~report:true ~code:"L003" path
      "program tile size %d does not match the layout's %d" p.Reg_ir.tile_size
      env.tile_size;
  let nt = p.Reg_ir.tile_size in
  let sym_counter = ref 0 in
  let fresh () =
    incr sym_counter;
    Some !sym_counter
  in
  let content_iv buf =
    match env.content buf with
    | Some (a, b) -> { lo = float_of_int a; hi = float_of_int b }
    | None -> top
  in
  let av ?(cg = Congruence.top) ?(org = Onone) iv =
    { iv; cg; org; sym = fresh () }
  in
  (* Per-buffer hull of every (reporting-pass) access index range — the
     facts the soundness harness replays concrete executions against. *)
  let access : (Reg_ir.buffer, interval) Hashtbl.t = Hashtbl.create 8 in
  let record_access buf ~width idx =
    let range = { lo = idx.lo; hi = idx.hi +. float_of_int (width - 1) } in
    match Hashtbl.find_opt access buf with
    | None -> Hashtbl.replace access buf range
    | Some acc -> Hashtbl.replace access buf (hull acc range)
  in
  let read_a ~report pth r st =
    if r < 0 || r >= p.Reg_ir.num_iregs then begin
      err ~report ~code:"L001" pth "int register %d outside the %d declared" r
        p.Reg_ir.num_iregs;
      av top
    end
    else
      match st.ir.(r) with
      | Iv a -> a
      | Ibot ->
        err ~report ~code:"L002" pth
          "int register %d read before any definition" r;
        av top
  in
  let read_v ~report pth r st =
    if r < 0 || r >= p.Reg_ir.num_vregs then begin
      err ~report ~code:"L001" pth
        "vector register %d outside the %d declared" r p.Reg_ir.num_vregs;
      Vbot
    end
    else st.vr.(r)
  in
  let check_bounds ?(cg = Congruence.top) ~report pth buf ~width idx =
    (* Reduced product: shrink the interval to congruence-class members
       before judging (e.g. a lane index that is a multiple of tile_size
       cannot reach extent - 1, only extent - tile_size). *)
    let idx =
      if relational then
        { lo = Congruence.tighten_lo cg idx.lo;
          hi = Congruence.tighten_hi cg idx.hi }
      else idx
    in
    if idx.lo > idx.hi then ( (* congruence class empty in range *) )
    else begin
      if report then record_access buf ~width idx;
      let extent = env.extent buf in
      let hi_ok = float_of_int (extent - width) in
      let finite = Float.is_finite idx.lo && Float.is_finite idx.hi in
      (* The definite-OOB verdict is reserved for finite intervals: an
         interval opened up by loop widening can be disjoint from the
         buffer merely because the abstract iteration it describes is
         unreachable (e.g. a peeled walk whose loop body never runs again
         on a tiny slab), and intervals do not track reachability. *)
      if extent < width || (finite && (idx.lo > hi_ok || idx.hi < 0.0)) then
        err ~report ~code:"L010" pth
          "%d-element access to %s at index %s is always out of bounds \
           (extent %d)"
          width (buffer_name buf) (istr idx) extent
      else if idx.lo >= 0.0 && idx.hi <= hi_ok then ()
      else if finite then
        warn ~report ~code:"L011" pth
          "%d-element access to %s at index %s may be out of bounds \
           (extent %d)"
          width (buffer_name buf) (istr idx) extent
      else
        info ~report ~code:"L012" pth
          "%d-element access to %s at loop-variant index %s (extent %d): \
           bounds not provable by intervals (see the layout closure check)"
          width (buffer_name buf) (istr idx) extent
    end
  in
  (* Relational add/sub: recognize child_ptr ± lut_child pairs over the
     same slot and meet the interval with the layout's advance range. *)
  let child_in_row b = within b.iv ~lo:0 ~hi:nt in
  let meet iv (lo, hi) =
    { lo = max iv.lo (float_of_int lo); hi = min iv.hi (float_of_int hi) }
  in
  let relational_add a b iv =
    let pair x y =
      match (x.org, y.org) with
      | Ocptr s, Ochild s' when s = s' && x.iv.lo >= 0.0 && child_in_row y ->
        (match env.tile_advance with
        | Some range -> Some (meet iv range)
        | None -> None)
      | _ -> None
    in
    if not relational then iv
    else
      match pair a b with
      | Some iv -> iv
      | None -> ( match pair b a with Some iv -> iv | None -> iv)
  in
  let relational_sub a b iv =
    if not relational then iv
    else
      match (a.org, b.org) with
      | Ocptr s, Ochild s' when s = s' && a.iv.hi < 0.0 && child_in_row b -> (
        match env.leaf_advance with
        | Some (lmin, lmax) ->
          (* state = cptr - child; the later leaf fetch reads
             leaf_values[-state - 1] = -cptr - 1 + child, which the
             layout bounds as [lmin, lmax] — so state is in
             [-lmax - 1, -lmin - 1]. *)
          meet iv (-lmax - 1, -lmin - 1)
        | None -> iv)
      | _ -> iv
  in
  let load_origin buf idx_a =
    if not relational then Onone
    else
      match buf with
      | Reg_ir.Shape_ids -> (
        match idx_a.sym with Some s -> Oshape s | None -> Onone)
      | Reg_ir.Child_ptrs -> (
        match idx_a.sym with Some s -> Ocptr s | None -> Onone)
      | Reg_ir.Lut -> (
        match idx_a.org with
        | Olutbase s | Olutrow s -> Ochild s
        | _ -> Onone)
      | _ -> Onone
  in
  let eval_iexpr ~report pth st = function
    | Reg_ir.Iconst c -> av ~cg:(Congruence.const c) (const c)
    | Reg_ir.Imov r ->
      (* A move is a fresh defining occurrence: reads of the destination
         between here and its next write all see one runtime value, so it
         gets its own symbol (the source's may already have been lost to a
         control-flow join — provenance must not depend on that). *)
      let a = read_a ~report pth r st in
      { a with sym = fresh () }
    | Reg_ir.Iadd (ra, rb) ->
      let a = read_a ~report pth ra st and b = read_a ~report pth rb st in
      let iv = relational_add a b (iadd a.iv b.iv) in
      let org =
        if not relational then Onone
        else
          match (a.org, b.org) with
          | Olutbase s, _ when within b.iv ~lo:0 ~hi:((1 lsl nt) - 1) ->
            Olutrow s
          | _, Olutbase s when within a.iv ~lo:0 ~hi:((1 lsl nt) - 1) ->
            Olutrow s
          | _ -> Onone
      in
      av ~cg:(Congruence.add a.cg b.cg) ~org iv
    | Reg_ir.Isub (ra, rb) ->
      let a = read_a ~report pth ra st and b = read_a ~report pth rb st in
      let iv = relational_sub a b (isub a.iv b.iv) in
      av ~cg:(Congruence.sub a.cg b.cg) iv
    | Reg_ir.Imul_const (r, c) ->
      let a = read_a ~report pth r st in
      let org =
        if relational && a.org <> Onone && c = 1 lsl nt then
          match a.org with Oshape s -> Olutbase s | _ -> Onone
        else Onone
      in
      av ~cg:(Congruence.mul_const c a.cg) ~org (imul_const a.iv c)
    | Reg_ir.Iadd_const (r, c) ->
      let a = read_a ~report pth r st in
      av ~cg:(Congruence.add a.cg (Congruence.const c)) (iadd a.iv (const c))
    | Reg_ir.Iload (buf, r) ->
      let a = read_a ~report pth r st in
      if is_float_buffer buf then
        err ~report ~code:"L003" pth "integer load from float buffer %s"
          (buffer_name buf);
      check_bounds ~cg:a.cg ~report pth buf ~width:1 a.iv;
      av
        ~cg:(if relational then env.content_cg buf else Congruence.top)
        ~org:(load_origin buf a) (content_iv buf)
    | Reg_ir.Movemask v -> (
      match read_v ~report pth v st with
      | Vint _ -> av { lo = 0.0; hi = float_of_int ((1 lsl nt) - 1) }
      | Vfloat ->
        err ~report ~code:"L003" pth "movemask of float-typed lanes";
        av top
      | Vbot ->
        err ~report ~code:"L002" pth
          "vector register %d read before any definition" v;
        av top)
  in
  let eval_fexpr ~report pth st = function
    | Reg_ir.Fload (buf, r) ->
      let a = read_a ~report pth r st in
      if not (is_float_buffer buf) then
        err ~report ~code:"L003" pth "float load from integer buffer %s"
          (buffer_name buf);
      check_bounds ~cg:a.cg ~report pth buf ~width:1 a.iv
  in
  let eval_vexpr ~report pth st = function
    | Reg_ir.Vload_f (buf, r) ->
      let a = read_a ~report pth r st in
      if not (is_float_buffer buf) then
        err ~report ~code:"L003" pth
          "float vector load from integer buffer %s" (buffer_name buf);
      check_bounds ~cg:a.cg ~report pth buf ~width:nt a.iv;
      Vfloat
    | Reg_ir.Vload_i (buf, r) ->
      let a = read_a ~report pth r st in
      if is_float_buffer buf then
        err ~report ~code:"L003" pth
          "integer vector load from float buffer %s" (buffer_name buf);
      check_bounds ~cg:a.cg ~report pth buf ~width:nt a.iv;
      Vint (content_iv buf)
    | Reg_ir.Gather (buf, v) ->
      if not (is_float_buffer buf) then
        err ~report ~code:"L003" pth "gather from integer buffer %s"
          (buffer_name buf);
      (match read_v ~report pth v st with
      | Vint lanes -> check_bounds ~report pth buf ~width:1 lanes
      | Vfloat ->
        err ~report ~code:"L003" pth "gather indexed by float-typed lanes"
      | Vbot ->
        err ~report ~code:"L002" pth
          "vector register %d read before any definition" v);
      Vfloat
    | Reg_ir.Vcmp_lt (a, b) ->
      let lane r =
        match read_v ~report pth r st with
        | Vfloat -> ()
        | Vint _ ->
          err ~report ~code:"L003" pth
            "vector compare over integer-typed lanes (register %d)" r
        | Vbot ->
          err ~report ~code:"L002" pth
            "vector register %d read before any definition" r
      in
      lane a;
      lane b;
      Vint { lo = 0.0; hi = 1.0 }
  in
  let check_cond ~report pth st = function
    | Reg_ir.Ige (r, _) -> ignore (read_a ~report pth r st)
    | Reg_ir.Ieq_load (buf, r, _) ->
      let a = read_a ~report pth r st in
      if is_float_buffer buf then
        err ~report ~code:"L003" pth
          "integer conditional load from float buffer %s" (buffer_name buf);
      check_bounds ~cg:a.cg ~report pth buf ~width:1 a.iv
  in
  let refine st cond taken =
    match cond with
    | Reg_ir.Ige (r, c) when r >= 0 && r < p.Reg_ir.num_iregs -> (
      match st.ir.(r) with
      | Ibot -> Some st
      | Iv a ->
        let iv =
          if taken then { a.iv with lo = max a.iv.lo (float_of_int c) }
          else { a.iv with hi = min a.iv.hi (float_of_int (c - 1)) }
        in
        let iv =
          if relational then
            { lo = Congruence.tighten_lo a.cg iv.lo;
              hi = Congruence.tighten_hi a.cg iv.hi }
          else iv
        in
        if iv.lo > iv.hi then None else Some (set_i st r (Iv { a with iv })))
    | _ -> Some st
  in
  let thresholds = if relational then env.widen_thresholds else [||] in
  let sub pth seg = pth @ [ seg ] in
  let rec exec_stmts ~report pth st stmts =
    let _, st =
      List.fold_left
        (fun (i, st) stmt ->
          (i + 1, exec ~report (sub pth (Printf.sprintf "op %d" i)) st stmt))
        (0, st) stmts
    in
    st
  and exec ~report pth st stmt =
    match st with
    | None -> None
    | Some st -> (
      match stmt with
      | Reg_ir.Iset (r, e) ->
        let v = eval_iexpr ~report pth st e in
        if r < 0 || r >= p.Reg_ir.num_iregs then begin
          err ~report ~code:"L001" pth
            "int register %d outside the %d declared" r p.Reg_ir.num_iregs;
          Some st
        end
        else Some (set_i st r (Iv v))
      | Reg_ir.Fset (r, e) ->
        eval_fexpr ~report pth st e;
        if r < 0 || r >= p.Reg_ir.num_fregs then begin
          err ~report ~code:"L001" pth
            "float register %d outside the %d declared" r p.Reg_ir.num_fregs;
          Some st
        end
        else Some (set_f st r)
      | Reg_ir.Vset (r, e) ->
        let v = eval_vexpr ~report pth st e in
        if r < 0 || r >= p.Reg_ir.num_vregs then begin
          err ~report ~code:"L001" pth
            "vector register %d outside the %d declared" r p.Reg_ir.num_vregs;
          Some st
        end
        else Some (set_v st r v)
      | Reg_ir.If (cond, then_b, else_b) ->
        check_cond ~report pth st cond;
        let t = exec_stmts ~report (sub pth "then") (refine st cond true) then_b in
        let e =
          exec_stmts ~report (sub pth "else") (refine st cond false) else_b
        in
        join_opt t e
      | Reg_ir.While (cond, body) ->
        (* Iterate to a (widened) fixpoint with reporting off, then run one
           reporting pass over the body from the stable loop invariant. *)
        let rec fix inv n =
          let out =
            match refine inv cond true with
            | None -> None
            | Some entry ->
              exec_stmts ~report:false (sub pth "while") (Some entry) body
          in
          match join_opt (Some inv) out with
          | None -> inv
          | Some joined ->
            if state_equal joined inv then inv
            else
              fix
                (if n >= 2 then widen_state ~thresholds inv joined else joined)
                (n + 1)
        in
        let inv = fix st 0 in
        check_cond ~report pth inv cond;
        (match refine inv cond true with
        | None -> ()
        | Some entry ->
          ignore (exec_stmts ~report (sub pth "while") (Some entry) body));
        refine inv cond false
      | Reg_ir.Repeat (n, body) ->
        if n < 0 then begin
          err ~report ~code:"L004" pth "negative repeat count %d" n;
          Some st
        end
        else begin
          let st = ref (Some st) in
          for _ = 1 to n do
            st := exec_stmts ~report (sub pth "repeat") !st body
          done;
          !st
        end)
  in
  let init =
    let ir = Array.make (max p.Reg_ir.num_iregs 0) Ibot in
    let roots () =
      av ~cg:(if relational then env.content_cg Reg_ir.Tree_roots
              else Congruence.top)
        (content_iv Reg_ir.Tree_roots)
    in
    let state0 () =
      match p.Reg_ir.layout with
      | Layout.Array_kind -> av ~cg:(Congruence.const 0) (const 0)
      | Layout.Sparse_kind -> roots ()
    in
    (* The driver sets up state/base once per jam lane, at each lane's
       register-window offset. *)
    let w = Reg_ir.lane_width p in
    for lane = 0 to max 1 p.Reg_ir.lanes - 1 do
      let off = lane * w in
      if off + Reg_ir.state_reg < Array.length ir then
        ir.(off + Reg_ir.state_reg) <- Iv (state0 ());
      if off + Reg_ir.base_reg < Array.length ir then
        ir.(off + Reg_ir.base_reg) <- Iv (roots ())
    done;
    {
      ir;
      vr = Array.make (max p.Reg_ir.num_vregs 0) Vbot;
      fr = Array.make (max p.Reg_ir.num_fregs 0) false;
    }
  in
  (match exec_stmts ~report:true path (Some init) p.Reg_ir.body with
  | Some final ->
    let fw = Reg_ir.lane_fwidth p in
    for lane = 0 to max 1 p.Reg_ir.lanes - 1 do
      let r = (lane * fw) + Reg_ir.result_reg in
      if r >= 0 && r < Array.length final.fr && not final.fr.(r) then
        warn ~report:true ~code:"L002" path
          "result register may be undefined when the walk exits%s"
          (if p.Reg_ir.lanes > 1 then Printf.sprintf " (lane %d)" lane else "")
    done
  | None -> ());
  let facts =
    Hashtbl.fold (fun buf iv acc -> (buf, iv) :: acc) access []
    |> List.sort compare
  in
  (List.rev !diags, facts)

let check_program ?path ?relational env p =
  fst (analyze_program ?path ?relational env p)

(* ------------------------------------------------------------------ *)
(* Layout closure                                                      *)
(* ------------------------------------------------------------------ *)

let check_layout ~num_features (lay : Layout.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let err ~code ~path fmt = D.errorf ~level:D.Lir ~code ~path fmt in
  let nt = lay.Layout.tile_size in
  let slots = Array.length lay.Layout.shape_ids in
  let rows = Array.length lay.Layout.lut in
  if nt < 1 then add (err ~code:"L020" ~path:[] "tile size %d < 1" nt);
  let lanes_ok =
    Array.length lay.Layout.thresholds = slots * nt
    && Array.length lay.Layout.features = slots * nt
  in
  if not lanes_ok then
    add
      (err ~code:"L020" ~path:[]
         "slot-major arrays have %d/%d entries, expected %d slots x %d lanes"
         (Array.length lay.Layout.thresholds)
         (Array.length lay.Layout.features)
         slots nt);
  let cptr_ok =
    match lay.Layout.kind with
    | Layout.Sparse_kind -> Array.length lay.Layout.child_ptr = slots
    | Layout.Array_kind -> true
  in
  if not cptr_ok then
    add
      (err ~code:"L020" ~path:[]
         "child-pointer array has %d entries, expected one per slot (%d)"
         (Array.length lay.Layout.child_ptr)
         slots);
  (* LUT rows (L024). *)
  let width = 1 lsl nt in
  Array.iteri
    (fun sid row ->
      let path = [ Printf.sprintf "lut row %d" sid ] in
      if Array.length row <> width then
        add
          (err ~code:"L024" ~path "row has %d entries, expected 2^%d = %d"
             (Array.length row) nt width)
      else
        Array.iteri
          (fun bits c ->
            if c < 0 || c > nt then
              add
                (err ~code:"L024" ~path
                   "entry for bits %#x is %d, outside the 0..%d child range"
                   bits c nt))
          row)
    lay.Layout.lut;
  (* Reachable (distinct) child indices per LUT row, clamped to sane
     values so a corrupt row doesn't crash the closure walk below. *)
  let row_children sid =
    if sid < 0 || sid >= rows then []
    else
      List.sort_uniq compare (Array.to_list lay.Layout.lut.(sid))
      |> List.filter (fun c -> c >= 0 && c <= nt)
  in
  let is_tile s =
    match lay.Layout.kind with
    | Layout.Array_kind -> lay.Layout.shape_ids.(s) >= 0
    | Layout.Sparse_kind -> true
  in
  (* Per-slot shape ids and feature ids. *)
  for s = 0 to slots - 1 do
    let path = [ Printf.sprintf "slot %d" s ] in
    let sid = lay.Layout.shape_ids.(s) in
    (match lay.Layout.kind with
    | Layout.Array_kind ->
      if sid < Layout.unused_marker then
        add (err ~code:"L024" ~path "shape id %d is not a valid marker" sid)
      else if sid >= rows then
        add
          (err ~code:"L024" ~path "shape id %d references one of %d LUT rows"
             sid rows)
    | Layout.Sparse_kind ->
      if sid < 0 || sid >= rows then
        add
          (err ~code:"L024" ~path
             "shape id %d outside the %d LUT rows (sparse slots are always \
              tiles)"
             sid rows));
    if lanes_ok && is_tile s then
      for lane = 0 to nt - 1 do
        let f = lay.Layout.features.((s * nt) + lane) in
        if f < 0 || f >= num_features then
          add
            (err ~code:"L021" ~path
               "lane %d reads feature %d outside the model's %d features" lane
               f num_features)
      done
  done;
  (* Tree roots and successor closure. *)
  (match lay.Layout.kind with
  | Layout.Array_kind ->
    let n_trees = Array.length lay.Layout.tree_root in
    if n_trees <> lay.Layout.num_trees then
      add
        (err ~code:"L022" ~path:[] "%d tree roots for %d trees" n_trees
           lay.Layout.num_trees);
    let slab_end i =
      if i + 1 < n_trees then lay.Layout.tree_root.(i + 1) else slots
    in
    for i = 0 to n_trees - 1 do
      let path = [ Printf.sprintf "tree %d" i ] in
      let base = lay.Layout.tree_root.(i) in
      let stop = slab_end i in
      if base < 0 || base >= slots || base > stop then
        add
          (err ~code:"L022" ~path
             "slab [%d, %d) is not a valid slot range (layout has %d slots)"
             base stop slots)
      else begin
        if lay.Layout.shape_ids.(base) = Layout.unused_marker then
          add (err ~code:"L022" ~path "root slot %d was never allocated" base);
        for s = base to stop - 1 do
          let sid = lay.Layout.shape_ids.(s) in
          if sid >= 0 then begin
            let local = s - base in
            List.iter
              (fun c ->
                let target = base + (local * (nt + 1)) + c + 1 in
                let spath = [ Printf.sprintf "tree %d" i; Printf.sprintf "slot %d" s ] in
                if target >= stop then
                  add
                    (err ~code:"L020" ~path:spath
                       "child %d at slot %d escapes the tree's slab [%d, %d)"
                       c target base stop)
                else if lay.Layout.shape_ids.(target) = Layout.unused_marker
                then
                  add
                    (err ~code:"L020" ~path:spath
                       "child %d points to unallocated slot %d" c target))
              (row_children sid)
          end
        done
      end
    done
  | Layout.Sparse_kind ->
    let num_leaves = Array.length lay.Layout.leaf_values in
    Array.iteri
      (fun i r ->
        let path = [ Printf.sprintf "tree %d" i ] in
        if r >= 0 then begin
          if r >= slots then
            add
              (err ~code:"L022" ~path "root slot %d outside the %d slots" r
                 slots)
        end
        else if -r - 1 >= num_leaves then
          add
            (err ~code:"L022" ~path
               "single-leaf root index %d outside the %d leaf values" (-r - 1)
               num_leaves))
      lay.Layout.tree_root;
    if cptr_ok then
      for s = 0 to slots - 1 do
        let path = [ Printf.sprintf "slot %d" s ] in
        let cp = lay.Layout.child_ptr.(s) in
        let children = row_children lay.Layout.shape_ids.(s) in
        List.iter
          (fun c ->
            if cp >= 0 then begin
              if cp + c >= slots then
                add
                  (err ~code:"L020" ~path
                     "child %d at slot %d outside the %d slots" c (cp + c)
                     slots)
            end
            else begin
              let leaf = -cp - 1 + c in
              if leaf >= num_leaves then
                add
                  (err ~code:"L023" ~path
                     "child %d reads leaf %d outside the %d leaf values" c leaf
                     num_leaves)
            end)
          children
      done);
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Umbrella: layout + every generated walk variant                     *)
(* ------------------------------------------------------------------ *)

let reprefix seg d = { d with D.path = seg :: d.D.path }

let check_variant_raw ~relational env (prog : Reg_ir.walk_program) =
  if not relational || prog.Reg_ir.lanes <= 1 then
    check_program ~relational env prog
  else begin
    let al = Alias.check prog in
    if al.Alias.diags <> [] then
      (* Lane partition refuted: the jammed register windows collide, so a
         per-lane analysis would be unsound. Report the collisions and
         fall back to the joint (widened) analysis for bounds facts. *)
      al.Alias.diags @ check_program ~relational:false env prog
    else begin
      (* Lanes proved independent: analyze each lane's projection with
         full precision. Lane l's projection is register-identical to
         lane 0's (the jam is a renaming), so identical findings are
         reported once rather than once per lane; any lane that differs
         (it cannot, unless projection is broken) is reported under its
         own path. *)
      let ds0 = check_program ~relational env (Alias.project prog ~lane:0) in
      let extra =
        List.concat
          (List.init
             (prog.Reg_ir.lanes - 1)
             (fun k ->
               let lane = k + 1 in
               let dsl =
                 check_program ~relational env (Alias.project prog ~lane)
               in
               if dsl = ds0 then []
               else
                 List.map
                   (fun d ->
                     { d with D.path = d.D.path @ [ Printf.sprintf "lane %d" lane ] })
                   dsl))
      in
      let fact =
        D.infof ~level:D.Lir ~code:"L014" ~path:[]
          "unroll-and-jam lanes independent: %d-lane register partition \
           proved, per-lane bounds analyzed without widening across lanes"
          prog.Reg_ir.lanes
      in
      ds0 @ extra @ [ fact ]
    end
  end

let check_variant ?(relational = true) env ~variant prog =
  List.map
    (reprefix (Printf.sprintf "variant %d" variant))
    (check_variant_raw ~relational env prog)

let check_walks ?(relational = true) env (lay : Layout.t) (mir : Mir.t) =
  (* Walk programs depend only on (walk kind, interleave), so on wide
     models with many uniform groups most variants are structurally
     identical — analyze each distinct program once and re-prefix the
     findings per variant. *)
  let cache = Hashtbl.create 8 in
  Reg_codegen.jammed_variants lay mir
  |> List.concat_map (fun (i, prog) ->
         let ds =
           match Hashtbl.find_opt cache prog with
           | Some ds -> ds
           | None ->
             let ds = check_variant_raw ~relational env prog in
             Hashtbl.replace cache prog ds;
             ds
         in
         List.map (reprefix (Printf.sprintf "variant %d" i)) ds)

let check ?(relational = true) ~num_features (lay : Layout.t) (mir : Mir.t) =
  let env = env_of_layout ~num_features lay in
  check_layout ~num_features lay @ check_walks ~relational env lay mir
