(** Structured compiler diagnostics — the currency of [tbcheck].

    Every static analysis in the compiler (HIR tiling/LUT/padding checks,
    MIR loop-nest checks, the LIR dataflow verifier, the layout closure
    check) reports findings as values of {!t} instead of bare strings: a
    stable error code, a severity, the IR level the finding belongs to, a
    location path into the artifact, and a human-readable message. The
    pass manager ({!Tb_core.Passman}) fails compilation on [Error]
    diagnostics and forwards the rest; the [treebeard_cli lint] subcommand
    renders them.

    {2 Error-code registry}

    Codes are stable identifiers; tests assert on them. Allocated so far:

    - [S001]..[S006] — schedule field ranges; [S010]..[S012] — deployment
      advisories (threads/interleave vs batch size, array-layout blowup)
    - [H001] partitioning, [H002] connectedness, [H003] leaf separation,
      [H004] maximal tiling (the four §III-B1 tiling constraints)
    - [H010] LUT totality / row consistency
    - [H020] padding well-formedness (malformed dummy tile)
    - [H030] tiled-tree structural fault, [H031] feature id out of range,
      [H032] tile lane disagrees with the source model
    - [H040] tree-group coverage, [H041] bogus group uniformity claim
    - [M001] loop-nest tree coverage, [M002] unrolled walk on a
      non-uniform group / wrong depth, [M003] over-deep peel,
      [M004] bad interleave factor, [M005] loop order diverges from the
      schedule, [M006] bad thread count
    - [M010] parallel row loop: overlapping domain write ranges (race),
      [M011] parallel row loop: rows not covered
    - [L001] register out of range, [L002] use before definition,
      [L003] vector lane-type mismatch, [L004] negative repeat count
    - [L010] buffer index definitely out of bounds, [L011] buffer index
      possibly out of bounds (finite interval sticking out), [L012] bounds
      not provable (loop-variant index, informational)
    - [L020] layout closure: dangling tile successor, [L021] layout
      feature id out of range, [L022] tree root out of range, [L023] leaf
      index out of range, [L024] malformed LUT row *)

type severity = Info | Warning | Error

type level =
  | Schedule  (** the optimization-option record, checked before lowering *)
  | Hir
  | Mir
  | Lir

type t = {
  code : string;  (** stable registry code, e.g. ["L010"] *)
  severity : severity;
  level : level;
  path : string list;
      (** outermost-first location, e.g. [["tree 3"; "tile 7"; "lane 2"]] *)
  message : string;
}

val errorf :
  level:level -> code:string -> path:string list ->
  ('a, unit, string, t) format4 -> 'a

val warningf :
  level:level -> code:string -> path:string list ->
  ('a, unit, string, t) format4 -> 'a

val infof :
  level:level -> code:string -> path:string list ->
  ('a, unit, string, t) format4 -> 'a

val severity_string : severity -> string
val level_string : level -> string

val is_error : t -> bool
val errors : t list -> t list
(** Error-severity findings only. *)

val has_errors : t list -> bool
(** True when any finding is [Error]-severity — the pass manager's
    rejection criterion ("lint clean" means no errors; warnings and infos
    are advisory). *)

val compare : t -> t -> int
(** Severity-major (errors first), then code, then path — a stable
    presentation order. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[L010] lir @ group 0 > body: index ...]. *)

val to_string : t -> string

val summary : t list -> string
(** Count line, e.g. ["2 errors, 1 warning, 4 infos"]. *)
