(** Structured compiler diagnostics — the currency of [tbcheck].

    Every static analysis in the compiler (HIR tiling/LUT/padding checks,
    MIR loop-nest checks, the LIR dataflow verifier, the layout closure
    check) reports findings as values of {!t} instead of bare strings: a
    stable error code, a severity, the IR level the finding belongs to, a
    location path into the artifact, and a human-readable message. The
    pass manager ({!Tb_core.Passman}) fails compilation on [Error]
    diagnostics and forwards the rest; the [treebeard_cli lint] subcommand
    renders them.

    {2 Error-code registry}

    Codes are stable identifiers; tests assert on them. Allocated so far:

    - [S001]..[S006] — schedule field ranges; [S010]..[S012] — deployment
      advisories (threads/interleave vs batch size, array-layout blowup)
    - [H001] partitioning, [H002] connectedness, [H003] leaf separation,
      [H004] maximal tiling (the four §III-B1 tiling constraints)
    - [H010] LUT totality / row consistency
    - [H020] padding well-formedness (malformed dummy tile)
    - [H030] tiled-tree structural fault, [H031] feature id out of range,
      [H032] tile lane disagrees with the source model
    - [H040] tree-group coverage, [H041] bogus group uniformity claim
    - [M001] loop-nest tree coverage, [M002] unrolled walk on a
      non-uniform group / wrong depth, [M003] over-deep peel,
      [M004] bad interleave factor, [M005] loop order diverges from the
      schedule, [M006] bad thread count
    - [M010] parallel row loop: overlapping domain write ranges (race),
      [M011] parallel row loop: rows not covered
    - [L001] register out of range, [L002] use before definition,
      [L003] vector lane-type mismatch, [L004] negative repeat count
    - [L010] buffer index definitely out of bounds, [L011] buffer index
      possibly out of bounds (finite interval sticking out after the
      congruence/stride refinement), [L012] bounds not provable
      (loop-variant index widened to an infinite interval even with
      threshold widening, informational)
    - [L013] unroll-and-jam lane collision: a statement of a jammed walk
      program touches registers of more than one lane window, so lanes
      are not provably independent and per-lane analysis is unsound;
      [L014] lanes-independent fact (informational): the alias analysis
      verified the per-lane register partition of a jammed program by
      dataflow, and per-lane findings are reported on lane 0 only
    - [L020] layout closure: dangling tile successor, [L021] layout
      feature id out of range, [L022] tree root out of range, [L023] leaf
      index out of range, [L024] malformed LUT row
    - [C001] cost-model rank disagreement: the cost model's schedule
      ranking contradicts measured execution (low Kendall-τ over a grid,
      or the predicted champion's measured regret over the measured best
      exceeds the top-k tolerance)
    - [C002] event-count divergence: the sample-extrapolated workload the
      autotuner scores diverges from the full-batch instrumented counts
      beyond tolerance (extrapolation drift)
    - [C003] stall-attribution mismatch: a top-down stall bucket share of
      the supplied breakdown disagrees with the breakdown recomputed from
      the measured event counts (cost-model drift against the profiler,
      à la the paper's §VI-E VTune analysis)
    - [V001] virtual-clock drift: a model's measured wall-clock batch
      service time diverges from the virtual clock's modeled service time
      beyond tolerance at some percentile (the serving runtime's dual-clock
      calibration, {!Tb_analysis.Serve_check})
    - [V002] compile-cost drift: the measured wall-clock compile time of
      cache misses diverges from the registry's modeled compile cost
      beyond tolerance
    - [T001] translation-validation partition mismatch: a feature-space
      region reachable in one compiled form has no corresponding path in
      the adjacent form's summary ({!Tb_analysis.Validate}); the finding
      carries a witness row inside the disagreeing box
    - [T002] translation-validation leaf-value mismatch: two adjacent
      forms agree on a path's feature box but claim different leaf
      contributions, yet concrete replay at the witness row did not
      diverge (symbolic-summary imprecision — investigate, not fatal)
    - [T003] translation-validation unreachable-region introduced: a
      lowered form executes (or gets stuck) on a region the earlier form
      proves unreachable, e.g. a walk stepping out of bounds or running
      out of fuel on a corrupt layout
    - [T004] witness-confirmed miscompile: the cross-stage summaries
      disagree on a region AND concretely replaying both forms on the
      witness row (midpoint of the disagreeing box) produced diverging
      predictions — an error-severity member of the family
    - [T005] quantized-path divergence: the quantized LIR layout's
      reference evaluation disagrees {e bitwise} with the certified
      integer evaluator ([Numeric.qpredict_raw]) on a probe row — a
      miscompile of the integer fast path (error severity; the finding
      carries the witness row)
    - [A001] artifact magic mismatch: the bytes are not a packed predictor
      artifact (wrong/absent magic, or shorter than a header)
    - [A002] artifact version unsupported: the decoder does not speak the
      artifact's declared format version
    - [A003] artifact checksum mismatch: the payload's CRC32 disagrees with
      the header — bit rot or torn write; the artifact is discarded and the
      registry falls back to a fresh compile
    - [A004] artifact body malformed: the payload parses out of bounds,
      declares inconsistent block lengths, fails structural validation
      (layout buffer lengths, walk-program register discipline) or is
      truncated — every decode failure is one of A001..A004, never a crash
      ({!Tb_lir.Pack})
    - [N001] quantization scaled-value overflow: at the chosen width the
      quantized per-class accumulator (or a scaled threshold/leaf, or a
      non-finite model constant) can exceed the integer range the
      certificate assumes, so integer-only inference could wrap
      ({!Tb_analysis.Numeric})
    - [N002] quantization threshold collision: two distinct thresholds on
      one feature quantize to the same integer — every row whose feature
      value lands in the dead zone between them can be routed differently
      by the integer path; the finding reports the collision count and
      the widest dead zone
    - [N003] quantization worst-case leaf-sum deviation: the statically
      proved per-class deviation bound of the dequantized output against
      the float reference exceeds the requested tolerance
    - [N004] quantization argmax/sign flip possible: for a classification
      model, some class pair's reachable margin interval comes within the
      combined deviation bound of the decision boundary, so quantization
      alone (routing unchanged) could flip the predicted class
    - [N005] precision fallback (info): a quantized tier was requested
      but N001/N003/N004 findings refuted the certificate (or the
      quantized stage pair failed), so the compile fell back to the
      float tier — the blocking findings ride along demoted to info
      ({!Tb_core.Treebeard.make}) *)

type severity = Info | Warning | Error

type level =
  | Schedule  (** the optimization-option record, checked before lowering *)
  | Hir
  | Mir
  | Lir
  | Cost  (** cost-model calibration findings ({!Tb_analysis.Cost_check}) *)
  | Serve
      (** serving-runtime dual-clock calibration findings
          ({!Tb_analysis.Serve_check}) *)
  | Validate
      (** cross-stage translation-validation findings
          ({!Tb_analysis.Validate}) *)
  | Artifact
      (** packed-predictor-artifact decode findings ({!Tb_lir.Pack}) *)
  | Numeric
      (** value-range / quantization certification findings
          ({!Tb_analysis.Numeric}) *)

type t = {
  code : string;  (** stable registry code, e.g. ["L010"] *)
  severity : severity;
  level : level;
  path : string list;
      (** outermost-first location, e.g. [["tree 3"; "tile 7"; "lane 2"]] *)
  message : string;
}

val errorf :
  level:level -> code:string -> path:string list ->
  ('a, unit, string, t) format4 -> 'a

val warningf :
  level:level -> code:string -> path:string list ->
  ('a, unit, string, t) format4 -> 'a

val infof :
  level:level -> code:string -> path:string list ->
  ('a, unit, string, t) format4 -> 'a

val severity_string : severity -> string
val level_string : level -> string

val registry : (string * level) list
(** Every allocated code with its level — the registry the doc comment
    above describes, as data. The census families
    ({!Tb_analysis.Census.all_families}) and the family-coverage test
    check against it: codes are unique, every family-tracked code is
    registered, and a code's leading letter determines its level
    (S=Schedule, H=Hir, M=Mir, L=Lir, C=Cost, V=Serve, T=Validate,
    A=Artifact, N=Numeric). *)

val is_error : t -> bool
val errors : t list -> t list
(** Error-severity findings only. *)

val has_errors : t list -> bool
(** True when any finding is [Error]-severity — the pass manager's
    rejection criterion ("lint clean" means no errors; warnings and infos
    are advisory). *)

val compare : t -> t -> int
(** Severity-major (errors first), then code, then path — a stable
    presentation order. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[L010] lir @ group 0 > body: index ...]. *)

val to_string : t -> string

val to_json : t -> Tb_util.Json.t
(** Structured rendering for machine-readable reports (the [calibrate]
    CLI's JSON output). *)

val summary : t list -> string
(** Count line, e.g. ["2 errors, 1 warning, 4 infos"]. *)
