type severity = Info | Warning | Error

type level =
  | Schedule
  | Hir
  | Mir
  | Lir
  | Cost
  | Serve
  | Validate
  | Artifact
  | Numeric

type t = {
  code : string;
  severity : severity;
  level : level;
  path : string list;
  message : string;
}

let make severity ~level ~code ~path fmt =
  Printf.ksprintf (fun message -> { code; severity; level; path; message }) fmt

let errorf ~level ~code ~path fmt = make Error ~level ~code ~path fmt
let warningf ~level ~code ~path fmt = make Warning ~level ~code ~path fmt
let infof ~level ~code ~path fmt = make Info ~level ~code ~path fmt

let severity_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let level_string = function
  | Schedule -> "schedule"
  | Hir -> "hir"
  | Mir -> "mir"
  | Lir -> "lir"
  | Cost -> "cost"
  | Serve -> "serve"
  | Validate -> "validate"
  | Artifact -> "artifact"
  | Numeric -> "numeric"

let registry =
  let codes level cs = List.map (fun c -> (c, level)) cs in
  codes Schedule
    [ "S001"; "S002"; "S003"; "S004"; "S005"; "S006"; "S010"; "S011";
      "S012"; "S013" ]
  @ codes Hir
      [ "H001"; "H002"; "H003"; "H004"; "H010"; "H020"; "H030"; "H031";
        "H032"; "H040"; "H041" ]
  @ codes Mir [ "M001"; "M002"; "M003"; "M004"; "M005"; "M006"; "M010"; "M011" ]
  @ codes Lir
      [ "L001"; "L002"; "L003"; "L004"; "L010"; "L011"; "L012"; "L013";
        "L014"; "L020"; "L021"; "L022"; "L023"; "L024" ]
  @ codes Cost [ "C001"; "C002"; "C003" ]
  @ codes Serve [ "V001"; "V002" ]
  @ codes Validate [ "T001"; "T002"; "T003"; "T004"; "T005" ]
  @ codes Artifact [ "A001"; "A002"; "A003"; "A004" ]
  @ codes Numeric [ "N001"; "N002"; "N003"; "N004"; "N005" ]

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match String.compare a.code b.code with
    | 0 -> Stdlib.compare (a.path, a.message) (b.path, b.message)
    | c -> c)
  | c -> c

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s" (severity_string d.severity) d.code
    (level_string d.level);
  if d.path <> [] then
    Format.fprintf fmt " @@ %s" (String.concat " > " d.path);
  Format.fprintf fmt ": %s" d.message

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  Tb_util.Json.Obj
    [
      ("code", Tb_util.Json.Str d.code);
      ("severity", Tb_util.Json.Str (severity_string d.severity));
      ("level", Tb_util.Json.Str (level_string d.level));
      ("path", Tb_util.Json.List (List.map (fun p -> Tb_util.Json.Str p) d.path));
      ("message", Tb_util.Json.Str d.message);
    ]

let summary ds =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
  String.concat ", "
    [ plural (count Error) "error"; plural (count Warning) "warning";
      plural (count Info) "info" ]
