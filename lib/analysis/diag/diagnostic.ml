type severity = Info | Warning | Error

type level =
  | Schedule
  | Hir
  | Mir
  | Lir
  | Cost
  | Serve
  | Validate
  | Artifact

type t = {
  code : string;
  severity : severity;
  level : level;
  path : string list;
  message : string;
}

let make severity ~level ~code ~path fmt =
  Printf.ksprintf (fun message -> { code; severity; level; path; message }) fmt

let errorf ~level ~code ~path fmt = make Error ~level ~code ~path fmt
let warningf ~level ~code ~path fmt = make Warning ~level ~code ~path fmt
let infof ~level ~code ~path fmt = make Info ~level ~code ~path fmt

let severity_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let level_string = function
  | Schedule -> "schedule"
  | Hir -> "hir"
  | Mir -> "mir"
  | Lir -> "lir"
  | Cost -> "cost"
  | Serve -> "serve"
  | Validate -> "validate"
  | Artifact -> "artifact"

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match String.compare a.code b.code with
    | 0 -> Stdlib.compare (a.path, a.message) (b.path, b.message)
    | c -> c)
  | c -> c

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s" (severity_string d.severity) d.code
    (level_string d.level);
  if d.path <> [] then
    Format.fprintf fmt " @@ %s" (String.concat " > " d.path);
  Format.fprintf fmt ": %s" d.message

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  Tb_util.Json.Obj
    [
      ("code", Tb_util.Json.Str d.code);
      ("severity", Tb_util.Json.Str (severity_string d.severity));
      ("level", Tb_util.Json.Str (level_string d.level));
      ("path", Tb_util.Json.List (List.map (fun p -> Tb_util.Json.Str p) d.path));
      ("message", Tb_util.Json.Str d.message);
    ]

let summary ds =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
  String.concat ", "
    [ plural (count Error) "error"; plural (count Warning) "warning";
      plural (count Info) "info" ]
