(* Static value-range & quantization certification over forests.

   Everything here is interval arithmetic over the model — no inputs, no
   profiling. The derived facts come in three layers:

   1. summarize: per-feature threshold censuses (count / distinct / range
      / min adjacent gap) and per-tree reachable leaf intervals, folded
      into per-class reachable raw-margin bounds.

   2. prefix_bounds: for a tree evaluation order, the min/max
      contribution of every suffix — the table the future early-exit MIR
      pass consumes (stop scoring a row once the decision is invariant
      over [partial + suffix interval]).

   3. certify: derive per-feature power-of-two scales for a target
      integer width and either prove integer-only inference safe or
      refute it with N001..N004 findings. The companion executable
      quantized path (quantize / qpredict_raw) is the reference
      semantics the soundness harness replays against the proved bounds.

   Scale discipline: every scale is a power of two (2^e, e in
   [-60, 60]), so dequantization (multiply by 2^-e) is exact in doubles
   and the proved deviation bound is a statement about leaf rounding
   only, not about float arithmetic in the dequantizer. *)

module D = Tb_diag.Diagnostic
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Json = Tb_util.Json

type interval = { lo : float; hi : float }

let empty_interval = { lo = infinity; hi = neg_infinity }
let join a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

type feature_census = {
  feature : int;
  occurrences : int;
  distinct : int;
  range : interval;
  min_gap : float;
}

type summary = {
  forest_name : string;
  num_classes : int;
  features : feature_census array;
  tree_values : interval array;
  class_bounds : interval array;
}

(* Distinct sorted thresholds of one feature; shared by the census and
   the collision check. *)
let thresholds_by_feature (forest : Forest.t) =
  let per_feature = Array.make forest.Forest.num_features [] in
  Array.iter
    (fun tree ->
      Tree.fold
        ~leaf:(fun _ -> ())
        ~node:(fun f t () () ->
          per_feature.(f) <- t :: per_feature.(f))
        tree)
    forest.Forest.trees;
  Array.map
    (fun ts ->
      let all = Array.of_list ts in
      Array.sort compare all;
      let distinct =
        Array.of_list
          (Array.fold_right
             (fun t acc ->
               match acc with
               | t' :: _ when Float.equal t t' -> acc
               | _ -> t :: acc)
             all [])
      in
      (all, distinct))
    per_feature

let tree_value_interval tree =
  Tree.fold
    ~leaf:(fun v -> { lo = v; hi = v })
    ~node:(fun _ _ l r -> join l r)
    tree

let summarize (forest : Forest.t) =
  let k = Forest.num_outputs forest in
  let features =
    Array.mapi
      (fun f (all, distinct) ->
        let range =
          Array.fold_left
            (fun acc t -> join acc { lo = t; hi = t })
            empty_interval distinct
        in
        let min_gap = ref infinity in
        for i = 1 to Array.length distinct - 1 do
          min_gap := Float.min !min_gap (distinct.(i) -. distinct.(i - 1))
        done;
        {
          feature = f;
          occurrences = Array.length all;
          distinct = Array.length distinct;
          range;
          min_gap = !min_gap;
        })
      (thresholds_by_feature forest)
  in
  let tree_values = Array.map tree_value_interval forest.Forest.trees in
  let class_bounds =
    Array.init k (fun _ ->
        { lo = forest.Forest.base_score; hi = forest.Forest.base_score })
  in
  Array.iteri
    (fun i iv ->
      let c = Forest.class_of_tree forest i in
      class_bounds.(c) <-
        { lo = class_bounds.(c).lo +. iv.lo; hi = class_bounds.(c).hi +. iv.hi })
    tree_values;
  {
    forest_name = forest.Forest.name;
    num_classes = k;
    features;
    tree_values;
    class_bounds;
  }

(* ---------------- per-prefix partial-sum tables ---------------- *)

type prefix_table = {
  order : int array;
  suffix_lo : float array array;
  suffix_hi : float array array;
}

let prefix_bounds ?order (forest : Forest.t) =
  let n = Array.length forest.Forest.trees in
  let order =
    match order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
      if Array.length o <> n then
        invalid_arg "Numeric.prefix_bounds: order length mismatch";
      let seen = Array.make n false in
      Array.iter
        (fun i ->
          if i < 0 || i >= n || seen.(i) then
            invalid_arg "Numeric.prefix_bounds: order is not a permutation";
          seen.(i) <- true)
        o;
      Array.copy o
  in
  let k = Forest.num_outputs forest in
  let tree_values = Array.map tree_value_interval forest.Forest.trees in
  let suffix_lo = Array.init k (fun _ -> Array.make (n + 1) 0.0) in
  let suffix_hi = Array.init k (fun _ -> Array.make (n + 1) 0.0) in
  for pos = n - 1 downto 0 do
    let tree = order.(pos) in
    let c = Forest.class_of_tree forest tree in
    for cls = 0 to k - 1 do
      let add_lo = if cls = c then tree_values.(tree).lo else 0.0 in
      let add_hi = if cls = c then tree_values.(tree).hi else 0.0 in
      suffix_lo.(cls).(pos) <- suffix_lo.(cls).(pos + 1) +. add_lo;
      suffix_hi.(cls).(pos) <- suffix_hi.(cls).(pos + 1) +. add_hi
    done
  done;
  { order; suffix_lo; suffix_hi }

let suffix_interval t ~cls ~prefix =
  { lo = t.suffix_lo.(cls).(prefix); hi = t.suffix_hi.(cls).(prefix) }

(* ---------------- quantization plans ---------------- *)

type width = I8 | I16

let bits = function I8 -> 8 | I16 -> 16
let width_to_string = function I8 -> "int8" | I16 -> "int16"

let width_of_string = function
  | "int8" | "i8" | "8" -> Ok I8
  | "int16" | "i16" | "16" -> Ok I16
  | s -> Error (Printf.sprintf "unknown width %S (try int8 or int16)" s)

type plan = {
  width : width;
  q_max : int;
  acc_max : int;
  feature_exp : int option array;
  leaf_exp : int;
  tolerance : float;
}

type collision = {
  c_feature : int;
  pairs : int;
  widest_gap : float;
}

type certificate = {
  plan : plan;
  summary : summary;
  dev_bound : float array;
  acc_bound : int array;
  collisions : collision list;
  ambiguous_pairs : int;
  findings : D.t list;
}

let default_tolerance = 1e-3

let exp_min = -60
let exp_max = 60
let pow2 e = Float.ldexp 1.0 e

(* Largest e in [exp_min, exp_max] with mag * 2^e <= cap — so a scaled
   magnitude never exceeds cap by construction. Returns None when even
   2^exp_min overflows (absurd dynamic range — an N001). *)
let exp_for ~cap mag =
  if mag = 0.0 then Some exp_max
  else if not (Float.is_finite mag) then None
  else begin
    let cap = float_of_int cap in
    let e = ref (int_of_float (Float.floor (Float.log2 (cap /. mag)))) in
    if !e > exp_max then e := exp_max;
    if !e < exp_min then e := exp_min;
    while !e > exp_min && mag *. pow2 !e > cap do
      decr e
    done;
    while !e < exp_max && mag *. pow2 (!e + 1) <= cap do
      incr e
    done;
    if mag *. pow2 !e > cap then None else Some !e
  end

(* Saturating integer scaling. Totality over any input (including plans
   whose exponent was refuted by N001): the result always fits
   [-q_max - 1, q_max], and the evaluator, the collision check and
   dead_zone_row all go through here so they agree bit for bit. The low
   saturation point sits one below -q_max so a saturated-low input stays
   strictly below every representable threshold. *)
let quantize_scaled ~q_max scaled =
  let v = Float.round scaled in
  if Float.is_nan v then 0
  else if v >= float_of_int q_max then q_max
  else if v <= float_of_int (-q_max - 1) then -q_max - 1
  else int_of_float v

let qthreshold plan e t = quantize_scaled ~q_max:plan.q_max (t *. pow2 e)
let qleaf plan v = quantize_scaled ~q_max:plan.q_max (v *. pow2 plan.leaf_exp)

(* ---------------- certificates ---------------- *)

let finding ~code ~path fmt = D.warningf ~level:D.Numeric ~code ~path fmt

let certify ?(tolerance = default_tolerance) ~width (forest : Forest.t) =
  let summary = summarize forest in
  let q_max = (1 lsl (bits width - 1)) - 1 in
  let acc_max = (1 lsl ((2 * bits width) - 1)) - 1 in
  let findings = ref [] in
  let add d = findings := d :: !findings in
  (* Per-feature threshold scales: the finest power of two whose scaled
     threshold range still fits the width. *)
  let feature_exp =
    Array.map
      (fun (fc : feature_census) ->
        if fc.occurrences = 0 then None
        else begin
          let mag = Float.max (Float.abs fc.range.lo) (Float.abs fc.range.hi) in
          match exp_for ~cap:q_max mag with
          | Some e -> Some e
          | None ->
            add
              (finding ~code:"N001"
                 ~path:[ Printf.sprintf "feature %d" fc.feature ]
                 "threshold range [%g, %g] cannot be scaled into %s even at \
                  2^%d: scaled thresholds overflow the width"
                 fc.range.lo fc.range.hi (width_to_string width) exp_min);
            (* Saturating quantization keeps the evaluator total anyway. *)
            Some exp_min
        end)
      summary.features
  in
  (* One shared leaf/base scale: class accumulation must stay in one
     fixed-point grid. *)
  let leaf_mag =
    Array.fold_left
      (fun acc (iv : interval) ->
        Float.max acc (Float.max (Float.abs iv.lo) (Float.abs iv.hi)))
      (Float.abs forest.Forest.base_score)
      summary.tree_values
  in
  let leaf_exp =
    match exp_for ~cap:q_max leaf_mag with
    | Some e -> e
    | None ->
      add
        (finding ~code:"N001" ~path:[ "leaves" ]
           "leaf/base magnitude %g cannot be scaled into %s even at 2^%d"
           leaf_mag (width_to_string width) exp_min);
      exp_min
  in
  let plan =
    { width; q_max; acc_max; feature_exp; leaf_exp; tolerance }
  in
  (* Per-class worst-case running-accumulator magnitude (any evaluation
     order: sum of per-tree worst magnitudes) and dequantization error
     bound over routing-stable rows (per-tree worst leaf rounding error,
     Neumaier slack for the float reference included). *)
  let k = summary.num_classes in
  let qbase = qleaf plan forest.Forest.base_score in
  let acc_bound = Array.make k (abs qbase) in
  let dev_bound = Array.make k 0.0 in
  let abs_mass = Array.make k (Float.abs forest.Forest.base_score) in
  let base_err =
    Float.abs
      (forest.Forest.base_score -. (float_of_int qbase *. pow2 (-plan.leaf_exp)))
  in
  Array.iteri (fun c _ -> dev_bound.(c) <- base_err) acc_bound;
  Array.iteri
    (fun i tree ->
      let c = Forest.class_of_tree forest i in
      let worst_q, worst_err, worst_abs =
        Tree.fold
          ~leaf:(fun v ->
            let q = qleaf plan v in
            let err =
              Float.abs (v -. (float_of_int q *. pow2 (-plan.leaf_exp)))
            in
            (abs q, err, Float.abs v))
          ~node:(fun _ _ (ql, el, al) (qr, er, ar) ->
            (max ql qr, Float.max el er, Float.max al ar))
          tree
      in
      acc_bound.(c) <- acc_bound.(c) + worst_q;
      dev_bound.(c) <- dev_bound.(c) +. worst_err;
      abs_mass.(c) <- abs_mass.(c) +. worst_abs)
    forest.Forest.trees;
  Array.iteri
    (fun c m -> dev_bound.(c) <- dev_bound.(c) +. (8.0 *. epsilon_float *. m))
    abs_mass;
  (* N001: the doubled-width accumulator can wrap. *)
  Array.iteri
    (fun c bound ->
      if bound > acc_max then
        add
          (finding ~code:"N001"
             ~path:[ Printf.sprintf "class %d" c ]
             "worst-case %s accumulator magnitude %d exceeds the %d-bit \
              accumulator cap %d (%d trees at leaf scale 2^%d)"
             (width_to_string width) bound
             (2 * bits width)
             acc_max
             (Array.length forest.Forest.trees / k)
             plan.leaf_exp))
    acc_bound;
  (* N002: distinct thresholds colliding after scaling. *)
  let by_feature = thresholds_by_feature forest in
  let collisions =
    List.filter_map
      (fun (fc : feature_census) ->
        match feature_exp.(fc.feature) with
        | None -> None
        | Some e ->
          let _, distinct = by_feature.(fc.feature) in
          let pairs = ref 0 and widest = ref 0.0 in
          for i = 1 to Array.length distinct - 1 do
            if qthreshold plan e distinct.(i) = qthreshold plan e distinct.(i - 1)
            then begin
              incr pairs;
              widest := Float.max !widest (distinct.(i) -. distinct.(i - 1))
            end
          done;
          if !pairs = 0 then None
          else
            Some
              { c_feature = fc.feature; pairs = !pairs; widest_gap = !widest })
      (Array.to_list summary.features)
  in
  List.iter
    (fun col ->
      add
        (finding ~code:"N002"
           ~path:[ Printf.sprintf "feature %d" col.c_feature ]
           "%d adjacent distinct threshold pair(s) quantize to the same %s \
            value at scale 2^%d; rows inside a dead zone (widest %g) can \
            be routed differently by the integer path"
           col.pairs (width_to_string width)
           (match feature_exp.(col.c_feature) with Some e -> e | None -> 0)
           col.widest_gap))
    collisions;
  (* N003: proved deviation bound vs the requested tolerance. *)
  Array.iteri
    (fun c d ->
      if d > tolerance then
        add
          (finding ~code:"N003"
             ~path:[ Printf.sprintf "class %d" c ]
             "proved worst-case dequantized deviation %.3g exceeds the \
              tolerance %.3g (%d trees at leaf scale 2^%d)"
             d tolerance
             (Array.length forest.Forest.trees / k)
             plan.leaf_exp))
    dev_bound;
  (* N004: a class decision can flip on a routing-stable row. *)
  let ambiguous = ref 0 and worst_slack = ref neg_infinity in
  (match forest.Forest.task with
  | Forest.Regression -> ()
  | Forest.Binary_logistic ->
    let m = summary.class_bounds.(0) and d = dev_bound.(0) in
    if m.lo <= d && m.hi >= -.d then begin
      incr ambiguous;
      worst_slack := d
    end
  | Forest.Multiclass _ ->
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        let m =
          {
            lo = summary.class_bounds.(i).lo -. summary.class_bounds.(j).hi;
            hi = summary.class_bounds.(i).hi -. summary.class_bounds.(j).lo;
          }
        in
        let d = dev_bound.(i) +. dev_bound.(j) in
        if m.lo <= d && m.hi >= -.d then begin
          incr ambiguous;
          worst_slack := Float.max !worst_slack d
        end
      done
    done);
  if !ambiguous > 0 then
    add
      (finding ~code:"N004" ~path:[]
         "%d class pair(s) have reachable margins within the combined \
          deviation bound (worst %.3g) of the decision boundary: \
          quantization alone can flip the predicted class"
         !ambiguous !worst_slack);
  {
    plan;
    summary;
    dev_bound;
    acc_bound;
    collisions;
    ambiguous_pairs = !ambiguous;
    findings = List.stable_sort D.compare (List.rev !findings);
  }

let certified_clean c = c.findings = []

(* ---------------- the executable quantized path ---------------- *)

type qtree =
  | Qleaf of int
  | Qnode of { feature : int; qthreshold : int; qleft : qtree; qright : qtree }

type qmodel = {
  qplan : plan;
  qtrees : qtree array;
  qbase : int;
  q_classes : int;
}

let quantize plan (forest : Forest.t) =
  let rec go = function
    | Tree.Leaf v -> Qleaf (qleaf plan v)
    | Tree.Node { feature; threshold; left; right } ->
      let e =
        match plan.feature_exp.(feature) with
        | Some e -> e
        | None -> invalid_arg "Numeric.quantize: node on an unused feature"
      in
      Qnode
        {
          feature;
          qthreshold = qthreshold plan e threshold;
          qleft = go left;
          qright = go right;
        }
  in
  {
    qplan = plan;
    qtrees = Array.map go forest.Forest.trees;
    qbase = qleaf plan forest.Forest.base_score;
    q_classes = Forest.num_outputs forest;
  }

let quantize_input plan row =
  Array.mapi
    (fun f x ->
      match plan.feature_exp.(f) with
      | None -> 0
      | Some e -> quantize_scaled ~q_max:plan.q_max (x *. pow2 e))
    row

let rec qeval t qrow =
  match t with
  | Qleaf q -> q
  | Qnode { feature; qthreshold; qleft; qright } ->
    if qrow.(feature) < qthreshold then qeval qleft qrow else qeval qright qrow

let qpredict_acc (m : qmodel) qrow =
  let acc = Array.make m.q_classes m.qbase in
  Array.iteri
    (fun i t ->
      let c = i mod m.q_classes in
      acc.(c) <- acc.(c) + qeval t qrow)
    m.qtrees;
  acc

let qpredict_raw (m : qmodel) row =
  let qrow = quantize_input m.qplan row in
  Array.map
    (fun acc -> float_of_int acc *. pow2 (-m.qplan.leaf_exp))
    (qpredict_acc m qrow)

let qtree_leaf_index t qrow =
  let rec count = function
    | Qleaf _ -> 1
    | Qnode { qleft; qright; _ } -> count qleft + count qright
  in
  let rec go t acc =
    match t with
    | Qleaf _ -> acc
    | Qnode { feature; qthreshold; qleft; qright } ->
      if qrow.(feature) < qthreshold then go qleft acc
      else go qright (acc + count qleft)
  in
  go t 0

let dead_zone_row plan (forest : Forest.t) row =
  let qrow = quantize_input plan row in
  let hit = ref false in
  Array.iter
    (fun tree ->
      Tree.fold
        ~leaf:(fun _ -> ())
        ~node:(fun f t () () ->
          match plan.feature_exp.(f) with
          | None -> ()
          | Some e ->
            if row.(f) < t <> (qrow.(f) < qthreshold plan e t) then hit := true)
        tree)
    forest.Forest.trees;
  !hit

let reference_raw (forest : Forest.t) row =
  let k = Forest.num_outputs forest in
  let terms = Array.init k (fun _ -> ref [ forest.Forest.base_score ]) in
  Array.iteri
    (fun i tree ->
      let c = Forest.class_of_tree forest i in
      terms.(c) := Tree.predict tree row :: !(terms.(c)))
    forest.Forest.trees;
  Array.map
    (fun ts -> Tb_util.Stats.neumaier_sum (Array.of_list !(ts)))
    terms

(* ---------------- JSON report ---------------- *)

let report_to_json (c : certificate) =
  let num f = Json.Num f in
  let int i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("model", Json.Str c.summary.forest_name);
      ("width", Json.Str (width_to_string c.plan.width));
      ("tolerance", num c.plan.tolerance);
      ("classes", int c.summary.num_classes);
      ("leaf_exp", int c.plan.leaf_exp);
      ( "feature_exp",
        Json.List
          (Array.to_list
             (Array.map
                (function None -> Json.Null | Some e -> int e)
                c.plan.feature_exp)) );
      ("dev_bound", Json.List (Array.to_list (Array.map num c.dev_bound)));
      ("acc_bound", Json.List (Array.to_list (Array.map int c.acc_bound)));
      ( "collisions",
        Json.List
          (List.map
             (fun col ->
               Json.Obj
                 [
                   ("feature", int col.c_feature);
                   ("pairs", int col.pairs);
                   ("widest_gap", num col.widest_gap);
                 ])
             c.collisions) );
      ("ambiguous_pairs", int c.ambiguous_pairs);
      ("findings", Json.List (List.map D.to_json c.findings));
    ]
