(** Alias / register-group analysis for unroll-and-jam walk programs.

    [Reg_codegen.jam_lanes] lays lane [l]'s registers in the window
    [l*width, (l+1)*width) of each register file. This pass {e verifies}
    that claim by dataflow — every statement (with its whole nested
    control-flow body) must read and write registers of exactly one lane
    window; [Repeat] bodies may mix lanes structurally because lockstep
    interleaving puts all lanes' copies inside one repeat. A violation is
    the {b L013 lane-collision} error. When the partition holds, the
    jammed program provably factors into independent per-lane slices and
    {!project} extracts each slice for per-lane (non-widened) analysis. *)

type result = {
  lanes : int;
  diags : Tb_diag.Diagnostic.t list;
      (** L013 errors; empty means the lane partition is proved. *)
}

val check : Tb_lir.Reg_ir.walk_program -> result
(** Verify the per-lane register partition. Trivially succeeds for
    single-lane programs. *)

val project : Tb_lir.Reg_ir.walk_program -> lane:int -> Tb_lir.Reg_ir.walk_program
(** Extract lane [lane] as a single-lane program: keep exactly the
    statements owned by that lane (recursing through [Repeat]) and rename
    their registers down to window 0, so lane [l]'s projection is directly
    comparable with lane 0's. Only meaningful after {!check} returned no
    diagnostics. Identity for single-lane programs. *)
