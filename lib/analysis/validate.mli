(** Translation validation of the lowering pipeline (the T00x family).

    Every root-to-leaf path of a decision tree is a conjunction of
    [x_f < t] / [x_f >= t] facts — a {e box} over feature space. This
    module symbolically executes each compiled form of a tree — the
    source binary tree, the HIR tiled tree (through the LUT child tables
    and padding), the MIR walk kinds (peeled / unrolled step contracts),
    the LIR layout buffers and the register-IR walk programs (including
    unrolled sparse steps) — into a canonical {e path summary}: the set
    of [(box, leaf contribution)] pairs the form can produce, plus any
    {e stuck} regions where execution is undefined (out-of-bounds load,
    walk-contract violation, fuel exhaustion on a corrupt layout).

    Summaries are normalized (tightest intervals, unconstrained features
    omitted, boxes sorted) so two correct lowerings of the same tree
    produce structurally equal summaries; comparison is then a fast
    structural check. On inequality the comparer localizes the
    divergence by box intersection/subtraction, picks a witness row (the
    midpoint of the disagreeing box) and {e refutes concretely}: both
    forms are replayed on the witness — {!Tb_model.Tree.predict},
    {!Tb_hir.Tiled_tree.walk}, {!Tb_mir.Mir.walk_tree},
    {!Tb_lir.Layout.walk} and {!Tb_vm.Interp.run_walk} respectively —
    and only a confirmed divergence is an error ([T004]); everything
    else stays a warning ([T001]..[T003], see
    {!Tb_diag.Diagnostic}'s registry).

    Cost: summarization is per-tree (never per-forest-product) and
    linear in the number of source leaves — the LUT child table of each
    tile is first compiled (memoized per physical row) into a reduced
    decision structure that only splits on lanes the table actually
    consults, so padding lanes and dummy/hop tiles add no paths. This
    keeps the validator cheap enough to run inside
    {!Tb_core.Passman}'s [Verify_each] mode by default. *)

type interval = { feature : int; lo : float; hi : float }
(** Half-open constraint [lo <= x_feature < hi]; [lo] may be
    [neg_infinity] and [hi] may be [infinity], but never both (a fully
    unconstrained feature is omitted from its box). *)

type box = interval list
(** Conjunction of interval constraints, sorted by feature, at most one
    interval per feature. The empty list is all of feature space. *)

type summary = {
  paths : (box * float) list;
      (** normalized: boxes sorted; one entry per reachable leaf path *)
  stuck : (box * string) list;
      (** regions where the form's execution is undefined (reason given);
          empty for well-formed inputs *)
}

(** {2 Per-form summarizers} *)

val summarize_source : Tb_model.Tree.t -> summary

val summarize_hir : Tb_hir.Tiled_tree.t -> summary
(** Through the tile shapes' LUT rows; padding tiles add no paths. *)

val summarize_mir : Tb_mir.Mir.walk_kind -> Tb_hir.Tiled_tree.t -> summary
(** Under the walk kind's step contract: a peeled walk marks leaves
    shallower than [peel] stuck, an unrolled walk marks any path not
    ending on a leaf after exactly [depth] tile steps stuck. *)

val summarize_layout : Tb_lir.Layout.t -> tree:int -> summary
(** Symbolic traversal of the layout buffers, mirroring
    {!Tb_lir.Layout.walk}; bounds-checked, with fuel against cycles in
    corrupt sparse layouts. *)

val summarize_reg :
  ?num_features:int ->
  Tb_lir.Reg_ir.walk_program ->
  Tb_lir.Layout.t ->
  tree:int ->
  summary
(** Symbolic execution of a register-IR walk program (lanes = 1) over
    the layout buffers, forking at the LUT load on the comparison
    bitmask. [num_features] enables bounds-checking the row gather. *)

(** {2 Summary utilities} *)

val num_paths : summary -> int

val exact_partition : summary -> bool
(** The path and stuck boxes are pairwise disjoint and jointly cover all
    of feature space — every input row hits exactly one box. Holds for
    every summary of a well-formed form (tested); quadratic, meant for
    tests and reporting rather than hot paths. *)

val equal_summaries : summary -> summary -> bool
(** Structural equality of normalized summaries — the fast path. *)

val coalesce : summary -> summary
(** Merge adjacent same-value boxes (equal on every other feature,
    abutting on one) to a fixpoint — canonicalization before slow-path
    comparison, so partition drift that does not change semantics is not
    reported. *)

(** {2 Cross-stage comparison} *)

type stage = Source | Hir | Mir | Lir | Reg | Quant

val stage_name : stage -> string

type finding = {
  code : string;  (** ["T001"].."T004"] *)
  severity : Tb_diag.Diagnostic.severity;
  tree : int;  (** execution-order (layout) tree index *)
  pair : stage * stage;
  region : box;  (** a disagreeing box *)
  witness : float array option;
      (** concrete row inside [region] (midpoint), when one was built *)
  message : string;
}

val compare_summaries :
  ?max_findings:int ->
  num_features:int ->
  pair:stage * stage ->
  tree:int ->
  replay:(stage -> float array -> float) ->
  summary ->
  summary ->
  finding list
(** Compare two adjacent forms' summaries for one tree. [replay] runs a
    form concretely on a witness row (it may raise; an exception on one
    side with a value on the other is a confirmed divergence). Returns
    [[]] iff the summaries agree (after {!coalesce}). *)

val to_diagnostics : finding list -> Tb_diag.Diagnostic.t list

(** {2 Pipeline checks (what {!Tb_core.Passman} runs)} *)

val check_hir : Tb_hir.Program.t -> finding list
(** Source ↔ HIR, per tree. *)

val check_mir : Tb_hir.Program.t -> Tb_mir.Mir.t -> finding list
(** HIR ↔ MIR (walk-kind semantics), per tree. Expects at least the
    specialized MIR; interleaving and parallelization do not change walk
    semantics. *)

val check_lir :
  Tb_hir.Program.t -> Tb_mir.Mir.t -> Tb_lir.Layout.t -> finding list
(** MIR ↔ LIR layout buffers, per tree. *)

val check_reg :
  Tb_hir.Program.t -> Tb_mir.Mir.t -> Tb_lir.Layout.t -> finding list
(** LIR ↔ register-IR walk programs: every tree against its group's
    program, plus the unroll-and-jam renaming check — each lane of a
    jammed variant must project (window extraction + rebasing) to
    exactly the group's single-lane program, so validating the base
    program validates every lane. *)

val check_all :
  Tb_hir.Program.t -> Tb_mir.Mir.t -> Tb_lir.Layout.t -> finding list
(** All four pairs in pipeline order. *)

val check_quant :
  ?rows:int ->
  Tb_model.Forest.t ->
  Numeric.plan ->
  Tb_lir.Lower.t ->
  finding list
(** The quantized stage pair (Lir ↔ Quant), checked concretely: the
    quantized lowering's reference evaluator
    ({!Tb_lir.Lower.reference_qpredict}) against the certified integer
    evaluator ({!Numeric.qpredict_raw}) on [rows] deterministic Gaussian
    probes plus threshold-tie probes, compared {e bitwise} per class —
    the two integer paths must agree on every row, dead zones included
    (only the float path may diverge there). Any mismatch is a [T005]
    error with the witness row. @raise Invalid_argument via
    [reference_qpredict] if the lowering is not quantized — callers gate
    on [layout.quant]. *)
