(** Binary decision trees.

    A tree is the unit the compiler tiles and lowers. Internal nodes hold a
    [feature] index and a [threshold]; inference moves to the left child when
    [row.(feature) < threshold] (the paper's node predicate) and to the right
    child otherwise. Leaves hold the tree's contribution to the model
    output. *)

type t =
  | Leaf of float
  | Node of { feature : int; threshold : float; left : t; right : t }

val predict : t -> float array -> float
(** Reference (ground truth) traversal. *)

val predict_leaf_index : t -> float array -> int
(** Like {!predict} but returns the index of the reached leaf in
    left-to-right leaf order. *)

val depth : t -> int
(** Depth counted in edges: a lone leaf has depth 0. *)

val num_nodes : t -> int
(** Number of internal nodes. *)

val num_leaves : t -> int

val leaves : t -> float array
(** Leaf values in left-to-right order. *)

val leaf_depths : t -> int array
(** Depth of each leaf in left-to-right order. *)

val fold : leaf:(float -> 'a) -> node:(int -> float -> 'a -> 'a -> 'a) -> t -> 'a
(** Bottom-up catamorphism. *)

val max_feature : t -> int
(** Largest feature index referenced, or [-1] for a lone leaf. *)

val equal : t -> t -> bool
(** Structural equality with exact float comparison. *)

val structure_key : t -> string
(** A key identifying the tree's shape only (thresholds and values ignored).
    Trees with equal keys can share traversal code (used by tree
    reordering). *)

val pp : Format.formatter -> t -> unit
(** Multi-line indented rendering for debugging. *)

val random : ?max_depth:int -> ?num_features:int -> Tb_util.Prng.t -> t
(** A random well-formed tree for property tests: random shape with leaf
    probability growing with depth, random features/thresholds/values. *)
