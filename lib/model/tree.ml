type t =
  | Leaf of float
  | Node of { feature : int; threshold : float; left : t; right : t }

let rec predict t row =
  match t with
  | Leaf v -> v
  | Node { feature; threshold; left; right } ->
    if row.(feature) < threshold then predict left row else predict right row

let predict_leaf_index t row =
  (* Walk while counting the leaves of every skipped subtree. *)
  let rec count_leaves = function
    | Leaf _ -> 1
    | Node { left; right; _ } -> count_leaves left + count_leaves right
  in
  let rec go t acc =
    match t with
    | Leaf _ -> acc
    | Node { feature; threshold; left; right } ->
      if row.(feature) < threshold then go left acc
      else go right (acc + count_leaves left)
  in
  go t 0

let rec depth = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + max (depth left) (depth right)

let rec num_nodes = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + num_nodes left + num_nodes right

let rec num_leaves = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> num_leaves left + num_leaves right

let leaves t =
  let acc = ref [] in
  let rec go = function
    | Leaf v -> acc := v :: !acc
    | Node { left; right; _ } -> go left; go right
  in
  go t;
  Array.of_list (List.rev !acc)

let leaf_depths t =
  let acc = ref [] in
  let rec go d = function
    | Leaf _ -> acc := d :: !acc
    | Node { left; right; _ } ->
      go (d + 1) left;
      go (d + 1) right
  in
  go 0 t;
  Array.of_list (List.rev !acc)

let rec fold ~leaf ~node = function
  | Leaf v -> leaf v
  | Node { feature; threshold; left; right } ->
    node feature threshold (fold ~leaf ~node left) (fold ~leaf ~node right)

let max_feature t =
  fold ~leaf:(fun _ -> -1) ~node:(fun f _ l r -> max f (max l r)) t

let rec equal a b =
  match (a, b) with
  | Leaf va, Leaf vb -> Float.equal va vb
  | Node na, Node nb ->
    na.feature = nb.feature
    && Float.equal na.threshold nb.threshold
    && equal na.left nb.left
    && equal na.right nb.right
  | Leaf _, Node _ | Node _, Leaf _ -> false

let structure_key t =
  let buf = Buffer.create 64 in
  let rec go = function
    | Leaf _ -> Buffer.add_char buf 'L'
    | Node { left; right; _ } ->
      Buffer.add_char buf '(';
      go left;
      go right;
      Buffer.add_char buf ')'
  in
  go t;
  Buffer.contents buf

let rec pp fmt = function
  | Leaf v -> Format.fprintf fmt "Leaf %g" v
  | Node { feature; threshold; left; right } ->
    Format.fprintf fmt "@[<v 2>Node x%d < %g@,%a@,%a@]" feature threshold pp left pp right

let random ?(max_depth = 6) ?(num_features = 8) rng =
  let rec go d =
    let leaf_prob =
      if d >= max_depth then 1.0
      else if d = 0 then 0.0
      else float_of_int d /. float_of_int max_depth *. 0.7
    in
    if Tb_util.Prng.uniform rng < leaf_prob then
      Leaf (Tb_util.Prng.float rng 2.0 -. 1.0)
    else
      Node
        {
          feature = Tb_util.Prng.int rng num_features;
          threshold = Tb_util.Prng.float rng 2.0 -. 1.0;
          left = go (d + 1);
          right = go (d + 1);
        }
  in
  go 0
