(** Importer for XGBoost's JSON model dumps.

    The paper's evaluation trains every benchmark with XGBoost; this module
    accepts the format produced by
    [booster.dump_model(..., dump_format="json")] — a JSON array of
    recursive tree objects with [nodeid]/[split]/[split_condition]/[yes]/
    [no]/[children] fields and [leaf] terminals — so real XGBoost models
    can be compiled directly.

    Semantics match XGBoost's: the [yes] child is taken when
    [x(split) < split_condition], which is exactly this library's left
    branch. The [missing] field is ignored (inputs are assumed
    non-missing; see {!Tb_hir.Padding} for the related finiteness
    precondition). Split names of the form ["fN"] map to feature index
    [N]; other names need [feature_names]. *)

val of_dump_string :
  ?task:Forest.task ->
  ?base_score:float ->
  ?num_features:int ->
  ?feature_names:string list ->
  ?name:string ->
  string ->
  Forest.t
(** Parse a dump. [num_features] defaults to 1 + the largest feature index
    referenced; [task] defaults to [Regression] ([Multiclass k] applies
    XGBoost's round-robin tree-to-class layout).
    @raise Tb_util.Json.Parse_error on malformed input or unknown split
    names. *)

val of_dump_file :
  ?task:Forest.task ->
  ?base_score:float ->
  ?num_features:int ->
  ?feature_names:string list ->
  ?name:string ->
  string ->
  Forest.t
