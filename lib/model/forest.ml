type task =
  | Regression
  | Binary_logistic
  | Multiclass of int

type t = {
  name : string;
  trees : Tree.t array;
  num_features : int;
  task : task;
  base_score : float;
}

let num_outputs_of_task = function
  | Regression | Binary_logistic -> 1
  | Multiclass k -> k

let make ?(name = "forest") ?(base_score = 0.0) ~task ~num_features trees =
  Array.iter
    (fun tree ->
      if Tree.max_feature tree >= num_features then
        invalid_arg "Forest.make: feature index out of range")
    trees;
  (match task with
  | Multiclass k ->
    if k < 2 then invalid_arg "Forest.make: multiclass needs >= 2 classes";
    if Array.length trees mod k <> 0 then
      invalid_arg "Forest.make: multiclass tree count must be a multiple of k"
  | Regression | Binary_logistic -> ());
  { name; trees; num_features; task; base_score }

let num_outputs t = num_outputs_of_task t.task

let class_of_tree t i =
  match t.task with
  | Regression | Binary_logistic -> 0
  | Multiclass k -> i mod k

let predict_raw t row =
  let out = Array.make (num_outputs t) t.base_score in
  Array.iteri
    (fun i tree -> out.(class_of_tree t i) <- out.(class_of_tree t i) +. Tree.predict tree row)
    t.trees;
  out

let predict_single t row = (predict_raw t row).(0)

let predict_class t row =
  match t.task with
  | Regression -> invalid_arg "Forest.predict_class: regression model"
  | Binary_logistic -> if predict_single t row >= 0.0 then 1 else 0
  | Multiclass _ -> Tb_util.Stats.argmax (predict_raw t row)

let predict_batch_raw t rows = Array.map (predict_raw t) rows

let total_nodes t = Array.fold_left (fun acc tr -> acc + Tree.num_nodes tr) 0 t.trees
let total_leaves t = Array.fold_left (fun acc tr -> acc + Tree.num_leaves tr) 0 t.trees
let max_depth t = Array.fold_left (fun acc tr -> max acc (Tree.depth tr)) 0 t.trees

let random ?(num_trees = 10) ?(max_depth = 6) ?(num_features = 8) rng =
  let trees = Array.init num_trees (fun _ -> Tree.random ~max_depth ~num_features rng) in
  make ~name:"random" ~task:Regression ~num_features trees
