(** Forest serialization.

    Treebeard's compiler input is a serialized ensemble; this module defines
    the on-disk JSON schema and its loader. The schema round-trips exactly
    (thresholds and leaf values are printed with full precision). *)

val tree_to_json : Tree.t -> Tb_util.Json.t
val tree_of_json : Tb_util.Json.t -> Tree.t

val forest_to_json : Forest.t -> Tb_util.Json.t
val forest_of_json : Tb_util.Json.t -> Forest.t

val to_string : Forest.t -> string
(** Compact single-line JSON. *)

val of_string : string -> Forest.t
(** @raise Tb_util.Json.Parse_error on malformed or schema-violating input. *)

val to_file : string -> Forest.t -> unit
val of_file : string -> Forest.t
