module J = Tb_util.Json

let feature_index ~feature_names name =
  let by_name () =
    match feature_names with
    | None -> None
    | Some names ->
      let rec find i = function
        | [] -> None
        | n :: rest -> if String.equal n name then Some i else find (i + 1) rest
      in
      find 0 names
  in
  let as_fn () =
    if String.length name >= 2 && name.[0] = 'f' then
      int_of_string_opt (String.sub name 1 (String.length name - 1))
    else None
  in
  let as_int () = int_of_string_opt name in
  match by_name () with
  | Some i -> Some i
  | None -> (
    match as_fn () with
    | Some i -> Some i
    | None -> as_int ())

let rec tree_of_json ~feature_names j =
  match j with
  | J.Obj fields when List.mem_assoc "leaf" fields ->
    Tree.Leaf (J.to_float (J.member "leaf" j))
  | J.Obj _ ->
    let split = J.to_str (J.member "split" j) in
    let feature =
      match feature_index ~feature_names split with
      | Some i when i >= 0 -> i
      | Some _ | None ->
        raise (J.Parse_error (Printf.sprintf "unknown split name %S" split))
    in
    let threshold = J.to_float (J.member "split_condition" j) in
    let yes = J.to_int (J.member "yes" j) in
    let no = J.to_int (J.member "no" j) in
    let children = J.to_list (J.member "children" j) in
    let child id =
      match
        List.find_opt
          (fun c -> match J.member "nodeid" c with
            | v -> J.to_int v = id
            | exception J.Parse_error _ -> false)
          children
      with
      | Some c -> tree_of_json ~feature_names c
      | None ->
        raise (J.Parse_error (Printf.sprintf "missing child nodeid %d" id))
    in
    (* XGBoost: the "yes" branch is taken when x < split_condition — our
       left branch. *)
    Tree.Node { feature; threshold; left = child yes; right = child no }
  | _ -> raise (J.Parse_error "xgboost dump: expected tree object")

let of_dump_string ?(task = Forest.Regression) ?(base_score = 0.0) ?num_features
    ?feature_names ?(name = "xgboost-import") s =
  let trees =
    match J.of_string s with
    | J.List items ->
      Array.of_list (List.map (tree_of_json ~feature_names) items)
    | _ -> raise (J.Parse_error "xgboost dump: expected a JSON array of trees")
  in
  let num_features =
    match num_features with
    | Some n -> n
    | None ->
      1 + Array.fold_left (fun acc t -> max acc (Tree.max_feature t)) (-1) trees
  in
  Forest.make ~name ~base_score ~task ~num_features:(max 1 num_features) trees

let of_dump_file ?task ?base_score ?num_features ?feature_names ?name path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      of_dump_string ?task ?base_score ?num_features ?feature_names ?name
        (In_channel.input_all ic))
