module J = Tb_util.Json

let rec tree_to_json = function
  | Tree.Leaf v -> J.Obj [ ("leaf", J.Num v) ]
  | Tree.Node { feature; threshold; left; right } ->
    J.Obj
      [
        ("feature", J.Num (float_of_int feature));
        ("threshold", J.Num threshold);
        ("left", tree_to_json left);
        ("right", tree_to_json right);
      ]

let rec tree_of_json j =
  match j with
  | J.Obj fields when List.mem_assoc "leaf" fields ->
    Tree.Leaf (J.to_float (J.member "leaf" j))
  | J.Obj _ ->
    Tree.Node
      {
        feature = J.to_int (J.member "feature" j);
        threshold = J.to_float (J.member "threshold" j);
        left = tree_of_json (J.member "left" j);
        right = tree_of_json (J.member "right" j);
      }
  | _ -> raise (J.Parse_error "tree: expected object")

let task_to_json = function
  | Forest.Regression -> J.Str "regression"
  | Forest.Binary_logistic -> J.Str "binary_logistic"
  | Forest.Multiclass k ->
    J.Obj [ ("multiclass", J.Num (float_of_int k)) ]

let task_of_json = function
  | J.Str "regression" -> Forest.Regression
  | J.Str "binary_logistic" -> Forest.Binary_logistic
  | J.Obj _ as j -> Forest.Multiclass (J.to_int (J.member "multiclass" j))
  | _ -> raise (J.Parse_error "task: expected known task")

let forest_to_json (f : Forest.t) =
  J.Obj
    [
      ("name", J.Str f.name);
      ("task", task_to_json f.task);
      ("num_features", J.Num (float_of_int f.num_features));
      ("base_score", J.Num f.base_score);
      ("trees", J.List (Array.to_list (Array.map tree_to_json f.trees)));
    ]

let forest_of_json j =
  let trees =
    J.member "trees" j |> J.to_list |> List.map tree_of_json |> Array.of_list
  in
  Forest.make
    ~name:(J.to_str (J.member "name" j))
    ~base_score:(J.to_float (J.member "base_score" j))
    ~task:(task_of_json (J.member "task" j))
    ~num_features:(J.to_int (J.member "num_features" j))
    trees

let to_string f = J.to_string (forest_to_json f)
let of_string s = forest_of_json (J.of_string s)

let to_file path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string f))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
