(** Statistical profiles of trained models (paper §III-B2, Fig. 3, Table I).

    Probability-based tiling consumes the probability of reaching each leaf,
    estimated by replaying the training data through each tree. A tree is
    {e leaf-biased} at ⟨α, β⟩ when its ⌈α·|L|⌉ most probable leaves cover at
    least a fraction β of the inputs. *)

type tree_profile = {
  leaf_probs : float array;  (** probability per leaf, left-to-right order *)
  hits : int array;          (** raw hit counts *)
}

val profile_tree : Tree.t -> float array array -> tree_profile
(** Replay [rows] through the tree and estimate leaf probabilities. Trees
    that are never hit get a uniform distribution (so downstream tiling is
    still well defined). *)

val profile_forest : Forest.t -> float array array -> tree_profile array

val coverage_leaves : tree_profile -> float -> int
(** [coverage_leaves p beta] is the minimum number of leaves (taken most
    probable first) whose probabilities sum to at least [beta]. *)

val is_leaf_biased : tree_profile -> alpha:float -> beta:float -> bool

val num_leaf_biased :
  Forest.t -> float array array -> alpha:float -> beta:float -> int
(** Table I's last column. *)

val coverage_cdf :
  Forest.t -> float array array -> f:float -> (float * float) array
(** Fig. 3 data: pairs (x, y) where a fraction [y] of the trees cover a
    fraction [f] of the inputs using at most a fraction [x] of their leaves.
    Sorted by [x]. *)

val expected_leaf_depth : Tree.t -> tree_profile -> float
(** Σ_l p_l · depth(l) on the {e binary} tree — the quantity probability
    tiling minimizes over tiled depths. *)
