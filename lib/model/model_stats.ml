type tree_profile = {
  leaf_probs : float array;
  hits : int array;
}

let profile_tree tree rows =
  let n_leaves = Tree.num_leaves tree in
  let hits = Array.make n_leaves 0 in
  Array.iter
    (fun row ->
      let l = Tree.predict_leaf_index tree row in
      hits.(l) <- hits.(l) + 1)
    rows;
  let total = Array.fold_left ( + ) 0 hits in
  let leaf_probs =
    if total = 0 then Array.make n_leaves (1.0 /. float_of_int n_leaves)
    else Array.map (fun h -> float_of_int h /. float_of_int total) hits
  in
  { leaf_probs; hits }

let profile_forest (f : Forest.t) rows =
  Array.map (fun tree -> profile_tree tree rows) f.trees

let coverage_leaves p beta =
  let sorted = Array.copy p.leaf_probs in
  Array.sort (fun a b -> compare b a) sorted;
  let n = Array.length sorted in
  (* Tolerate float accumulation error: a sum within 1e-12 of beta counts
     as covering it. *)
  let rec go i acc =
    if acc >= beta -. 1e-12 || i >= n then i
    else go (i + 1) (acc +. sorted.(i))
  in
  max 1 (go 0 0.0)

let is_leaf_biased p ~alpha ~beta =
  let n = Array.length p.leaf_probs in
  let budget = int_of_float (ceil (alpha *. float_of_int n)) in
  coverage_leaves p beta <= max 1 budget

let num_leaf_biased f rows ~alpha ~beta =
  let profiles = profile_forest f rows in
  Array.fold_left
    (fun acc p -> if is_leaf_biased p ~alpha ~beta then acc + 1 else acc)
    0 profiles

let coverage_cdf f rows ~f:frac =
  let profiles = profile_forest f rows in
  let fractions =
    Array.map
      (fun p ->
        let needed = coverage_leaves p frac in
        float_of_int needed /. float_of_int (Array.length p.leaf_probs))
      profiles
  in
  Array.sort compare fractions;
  let n = Array.length fractions in
  Array.mapi
    (fun i x -> (x, float_of_int (i + 1) /. float_of_int n))
    fractions

let expected_leaf_depth tree p =
  let depths = Tree.leaf_depths tree in
  let acc = ref 0.0 in
  Array.iteri (fun i d -> acc := !acc +. (p.leaf_probs.(i) *. float_of_int d)) depths;
  !acc
