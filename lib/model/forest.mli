(** Decision-tree ensembles (the compiler's input).

    A forest aggregates tree outputs additively. Regression and binary
    models have a single output; multiclass models follow the XGBoost
    convention of one tree per class per boosting round, with tree [i]
    contributing to output [i mod num_classes]. *)

type task =
  | Regression
  | Binary_logistic
  | Multiclass of int  (** number of classes, >= 2 *)

type t = {
  name : string;
  trees : Tree.t array;
  num_features : int;
  task : task;
  base_score : float;  (** added to every output *)
}

val make :
  ?name:string -> ?base_score:float -> task:task -> num_features:int ->
  Tree.t array -> t
(** Build a forest, checking that every referenced feature index is within
    [num_features] and that multiclass forests have a whole number of
    rounds. @raise Invalid_argument otherwise. *)

val num_outputs : t -> int
(** 1 for regression/binary, [k] for [Multiclass k]. *)

val class_of_tree : t -> int -> int
(** Output index that tree [i] contributes to. *)

val predict_raw : t -> float array -> float array
(** Raw margin per output (reference semantics for all backends). *)

val predict_single : t -> float array -> float
(** Raw margin of output 0 — convenience for single-output models. *)

val predict_class : t -> float array -> int
(** Argmax class for multiclass; thresholded sign for binary;
    @raise Invalid_argument for regression. *)

val predict_batch_raw : t -> float array array -> float array array
(** [predictForest] reference: one margin vector per row. *)

val total_nodes : t -> int
val total_leaves : t -> int
val max_depth : t -> int

val random :
  ?num_trees:int -> ?max_depth:int -> ?num_features:int -> Tb_util.Prng.t -> t
(** Random single-output forest for property tests. *)
