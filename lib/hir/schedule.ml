type loop_order =
  | One_row_at_a_time
  | One_tree_at_a_time

type tiling_kind =
  | Basic
  | Probability_based
  | Optimal_probability_based
  | Min_max_depth

type layout_kind =
  | Array_layout
  | Sparse_layout

type t = {
  tile_size : int;
  tiling : tiling_kind;
  alpha : float;
  beta : float;
  loop_order : loop_order;
  pad_and_unroll : bool;
  pad_imbalance_limit : int;
  interleave : int;
  peel : bool;
  layout : layout_kind;
  num_threads : int;
}

let scalar_baseline =
  {
    tile_size = 1;
    tiling = Basic;
    alpha = 0.075;
    beta = 0.9;
    loop_order = One_row_at_a_time;
    pad_and_unroll = false;
    pad_imbalance_limit = 2;
    interleave = 1;
    peel = false;
    layout = Array_layout;
    num_threads = 1;
  }

let default =
  {
    scalar_baseline with
    tile_size = 8;
    loop_order = One_tree_at_a_time;
    pad_and_unroll = true;
    interleave = 4;
    peel = true;
    layout = Sparse_layout;
  }

let table2_grid =
  let orders = [ One_tree_at_a_time; One_row_at_a_time ] in
  let tile_sizes = [ 1; 2; 4; 8 ] in
  let tilings = [ Basic; Probability_based ] in
  let pads = [ true; false ] in
  let interleaves = [ 1; 2; 4; 8 ] in
  let alphas = [ (0.05, 0.9); (0.075, 0.9); (0.1, 0.9) ] in
  List.concat_map
    (fun loop_order ->
      List.concat_map
        (fun tile_size ->
          List.concat_map
            (fun tiling ->
              List.concat_map
                (fun pad_and_unroll ->
                  List.concat_map
                    (fun interleave ->
                      let ab =
                        (* α/β only matter for probability-based tiling;
                           don't blow up the grid for basic tiling. The DP
                           variants are extensions outside Table II. *)
                        match tiling with
                        | Basic | Optimal_probability_based | Min_max_depth ->
                          [ (0.075, 0.9) ]
                        | Probability_based -> alphas
                      in
                      List.map
                        (fun (alpha, beta) ->
                          {
                            scalar_baseline with
                            tile_size;
                            tiling;
                            alpha;
                            beta;
                            loop_order;
                            pad_and_unroll;
                            interleave;
                            peel = pad_and_unroll;
                            layout = (if tile_size >= 4 then Sparse_layout else Array_layout);
                          })
                        ab)
                    interleaves)
                pads)
            tilings)
        tile_sizes)
    orders

let with_threads t n = { t with num_threads = n }

let to_string t =
  let tiling =
    match t.tiling with
    | Basic -> "basic"
    | Probability_based -> Printf.sprintf "prob(%g,%g)" t.alpha t.beta
    | Optimal_probability_based -> Printf.sprintf "prob-opt(%g,%g)" t.alpha t.beta
    | Min_max_depth -> "minmax"
  in
  let order =
    match t.loop_order with
    | One_row_at_a_time -> "row-major"
    | One_tree_at_a_time -> "tree-major"
  in
  let layout =
    match t.layout with Array_layout -> "array" | Sparse_layout -> "sparse"
  in
  Printf.sprintf "nt=%d %s %s%s%s il=%d %s%s" t.tile_size tiling order
    (if t.pad_and_unroll then " pad+unroll" else "")
    (if t.peel then " peel" else "")
    t.interleave layout
    (if t.num_threads > 1 then Printf.sprintf " threads=%d" t.num_threads else "")

module J = Tb_util.Json

let to_json t =
  let tiling =
    match t.tiling with
    | Basic -> "basic"
    | Probability_based -> "probability"
    | Optimal_probability_based -> "optimal-probability"
    | Min_max_depth -> "min-max-depth"
  in
  J.Obj
    [
      ("tile_size", J.Num (float_of_int t.tile_size));
      ("tiling", J.Str tiling);
      ("alpha", J.Num t.alpha);
      ("beta", J.Num t.beta);
      ( "loop_order",
        J.Str (match t.loop_order with One_row_at_a_time -> "row" | One_tree_at_a_time -> "tree") );
      ("pad_and_unroll", J.Bool t.pad_and_unroll);
      ("pad_imbalance_limit", J.Num (float_of_int t.pad_imbalance_limit));
      ("interleave", J.Num (float_of_int t.interleave));
      ("peel", J.Bool t.peel);
      ( "layout",
        J.Str (match t.layout with Array_layout -> "array" | Sparse_layout -> "sparse") );
      ("num_threads", J.Num (float_of_int t.num_threads));
    ]

let of_json j =
  let tiling =
    match J.to_str (J.member "tiling" j) with
    | "basic" -> Basic
    | "probability" -> Probability_based
    | "optimal-probability" -> Optimal_probability_based
    | "min-max-depth" -> Min_max_depth
    | s -> raise (J.Parse_error ("unknown tiling " ^ s))
  in
  let loop_order =
    match J.to_str (J.member "loop_order" j) with
    | "row" -> One_row_at_a_time
    | "tree" -> One_tree_at_a_time
    | s -> raise (J.Parse_error ("unknown loop order " ^ s))
  in
  let layout =
    match J.to_str (J.member "layout" j) with
    | "array" -> Array_layout
    | "sparse" -> Sparse_layout
    | s -> raise (J.Parse_error ("unknown layout " ^ s))
  in
  {
    tile_size = J.to_int (J.member "tile_size" j);
    tiling;
    alpha = J.to_float (J.member "alpha" j);
    beta = J.to_float (J.member "beta" j);
    loop_order;
    pad_and_unroll = J.to_bool (J.member "pad_and_unroll" j);
    pad_imbalance_limit = J.to_int (J.member "pad_imbalance_limit" j);
    interleave = J.to_int (J.member "interleave" j);
    peel = J.to_bool (J.member "peel" j);
    layout;
    num_threads = J.to_int (J.member "num_threads" j);
  }

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string ~indent:true (to_json t)))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (J.of_string (In_channel.input_all ic)))

let validate t =
  if t.tile_size < 1 || t.tile_size > 8 then Error "tile_size must be in 1..8"
  else if t.interleave < 1 then Error "interleave must be >= 1"
  else if t.num_threads < 1 then Error "num_threads must be >= 1"
  else if not (t.alpha > 0.0 && t.alpha <= 1.0) then Error "alpha out of (0,1]"
  else if not (t.beta > 0.0 && t.beta <= 1.0) then Error "beta out of (0,1]"
  else if t.pad_imbalance_limit < 0 then Error "pad_imbalance_limit must be >= 0"
  else Ok ()

let canonicalize ?num_trees t =
  (* At tile_size 1 every tiling algorithm degenerates to singleton tiles,
     so the tiling kind cannot affect the compiled artifact. *)
  let tiling = if t.tile_size = 1 then Basic else t.tiling in
  (* Under row-major order the interleaver jams trees of one group and
     clamps the factor at the group size; groups never exceed the model's
     tree count, so any factor >= num_trees yields the same per-group
     clamp as num_trees itself. (Tree-major jams rows — not clamped.) *)
  let interleave =
    match (num_trees, t.loop_order) with
    | Some n, One_row_at_a_time when n >= 1 -> min t.interleave n
    | _ -> t.interleave
  in
  (* The leaf-bias test (and hence alpha/beta) only runs for the
     probability-based tilings. *)
  let alpha, beta =
    match tiling with
    | Probability_based | Optimal_probability_based -> (t.alpha, t.beta)
    | Basic | Min_max_depth -> (scalar_baseline.alpha, scalar_baseline.beta)
  in
  let pad_imbalance_limit =
    if t.pad_and_unroll then t.pad_imbalance_limit
    else scalar_baseline.pad_imbalance_limit
  in
  { t with tiling; interleave; alpha; beta; pad_imbalance_limit }

let clamp_threads ~max_threads t =
  if max_threads < 1 then invalid_arg "Schedule.clamp_threads: max_threads < 1";
  if t.num_threads <= max_threads then (t, None)
  else
    ( { t with num_threads = max_threads },
      Some
        (Printf.sprintf
           "schedule requests %d row-loop threads but only %d are available; \
            clamped to %d"
           t.num_threads max_threads max_threads) )
