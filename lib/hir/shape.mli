(** Tile shapes (paper §V-A1).

    For a tile size [n_t], each legal binary tree with at most [n_t]
    (indistinguishable) nodes is a {e tile shape}. The shape determines how
    a comparison-outcome bitmask maps to the child tile to visit next.

    Conventions (fixed across the whole compiler and encoded in the LUT):
    - nodes within a tile are numbered in {e level order} (BFS), the tile
      root being node 0;
    - in a comparison bitmask for tile size [n_t], node [i]'s predicate
      outcome occupies bit [n_t - 1 - i] (node 0 is the MSB, as in the
      paper's Figure 5);
    - a set bit means the predicate [x < threshold] held, i.e. the walk
      moves to the left child;
    - a tile with [k] nodes has [k + 1] exits ("children"), ordered left to
      right regardless of depth. *)

type t = Node of t option * t option
(** A present node with optional present children; [None] marks an exit
    edge. The shape containing just a root is [Node (None, None)]. *)

val size : t -> int
(** Number of nodes; at least 1. *)

val num_exits : t -> int
(** [size t + 1]. *)

val depth : t -> int
(** Longest node chain, counted in nodes (a singleton has depth 1). *)

val navigate : t -> tile_size:int -> bits:int -> int
(** [navigate shape ~tile_size ~bits] walks the shape from node 0 guided by
    the comparison bitmask and returns the index of the exit reached.
    Bits of absent node positions are ignored (don't-care), so any value on
    dummy lanes is safe. *)

val enumerate : max_size:int -> t list
(** All shapes with 1..max_size nodes (Catalan-many per size). Used by the
    exhaustive LUT tests. *)

val equal : t -> t -> bool
val to_string : t -> string
(** Compact parenthesized rendering, e.g. ["(•(•..)(..))"]. *)
