module Tree = Tb_model.Tree

type t = {
  feature : int array;
  threshold : float array;
  value : float array;
  left : int array;
  right : int array;
  parent : int array;
  num_nodes : int;
}

let root = 0

let of_tree tree =
  let n = Tree.num_nodes tree + Tree.num_leaves tree in
  let feature = Array.make n (-1) in
  let threshold = Array.make n 0.0 in
  let value = Array.make n 0.0 in
  let left = Array.make n (-1) in
  let right = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let next = ref 0 in
  let rec go tree par =
    let id = !next in
    incr next;
    parent.(id) <- par;
    (match tree with
    | Tree.Leaf v -> value.(id) <- v
    | Tree.Node { feature = f; threshold = th; left = l; right = r } ->
      feature.(id) <- f;
      threshold.(id) <- th;
      left.(id) <- go l id;
      right.(id) <- go r id);
    id
  in
  let (_ : int) = go tree (-1) in
  { feature; threshold; value; left; right; parent; num_nodes = n }

let is_leaf t id = t.left.(id) < 0

let rec to_tree_from t id =
  if is_leaf t id then Tree.Leaf t.value.(id)
  else
    Tree.Node
      {
        feature = t.feature.(id);
        threshold = t.threshold.(id);
        left = to_tree_from t t.left.(id);
        right = to_tree_from t t.right.(id);
      }

let to_tree t = to_tree_from t root

let internal_ids t =
  List.filter (fun id -> not (is_leaf t id)) (List.init t.num_nodes Fun.id)

let leaf_rank t =
  let rank = Array.make t.num_nodes (-1) in
  let next = ref 0 in
  let rec go id =
    if is_leaf t id then begin
      rank.(id) <- !next;
      incr next
    end
    else begin
      go t.left.(id);
      go t.right.(id)
    end
  in
  go root;
  rank

let node_probs t ~leaf_probs =
  let rank = leaf_rank t in
  let probs = Array.make t.num_nodes 0.0 in
  let rec go id =
    if is_leaf t id then begin
      probs.(id) <- leaf_probs.(rank.(id));
      probs.(id)
    end
    else begin
      let p = go t.left.(id) +. go t.right.(id) in
      probs.(id) <- p;
      p
    end
  in
  let (_ : float) = go root in
  probs

let depth_of t id =
  let rec go id acc = if id < 0 then acc - 1 else go t.parent.(id) (acc + 1) in
  go id 0
