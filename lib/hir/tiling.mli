(** Tree tiling (paper §III-B/C/D).

    A tiling partitions a tree's {e internal} nodes into tiles of at most
    [tile_size] nodes; leaves always form implicit singleton leaf-tiles
    (the paper's leaf-separation constraint). Both paper algorithms are
    implemented as written:

    - {!basic} (Algorithm 2) builds each tile by a level-order traversal
      from the tile root, minimizing tile depth;
    - {!probability_based} (Algorithm 1) greedily grows each tile toward
      the most probable nodes, minimizing the expected number of tiles
      evaluated per inference for leaf-biased trees. *)

type t = {
  tile_size : int;
  tile_of_node : int array;
      (** internal node id -> tile id; -1 for leaves. Tile ids are dense,
          tile 0 contains the root. *)
  num_tiles : int;
}

val basic : Itree.t -> tile_size:int -> t

val probability_based : Itree.t -> node_probs:float array -> tile_size:int -> t
(** [node_probs] as computed by {!Itree.node_probs}. *)

val optimal_probability_based :
  Itree.t -> node_probs:float array -> tile_size:int -> t
(** The dynamic program the paper's §III-C mentions but leaves aside "in
    the interest of simplicity": minimizes the exact expected number of
    tiles evaluated per walk, Σ_l p_l · depth(l). The expected tiled depth
    equals the probability mass entering each chosen tile root, so the DP
    is [C(v) = p(v) + min over valid tiles T rooted at v of
    Σ C(u) over T's internal exits], with tile enumeration following the
    tree structure (so each rooted connected set is generated exactly
    once) and under-full tiles admitted only when maximal. Guaranteed no
    worse than either greedy algorithm under the §III-C objective
    (property-tested). *)

val min_max_depth :
  Itree.t -> tile_size:int -> t
(** The "minimize the maximum leaf depth" variant the paper suggests as
    future work (§III-B2): the same DP with objective
    [C(v) = 1 + min over tiles of max C(u)], breaking ties toward fewer
    tiles. Useful for latency-critical deployments where the worst-case
    walk matters more than the average. *)

val nodes_of_tile : t -> int -> int list
(** Node ids of a tile, ascending. *)

val tile_root : Itree.t -> t -> int -> int
(** The node of the tile closest to the tree root. *)

val check_valid : Itree.t -> t -> (unit, string) result
(** Verify the four §III-B1 constraints: partitioning, connectedness, leaf
    separation, and maximal tiling. Returns a description of the first
    violation found. *)
