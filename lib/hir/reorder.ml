type group = {
  positions : int array;
  walk_depth : int;
  uniform : bool;
  shared_structure : bool;
}

let reorder trees =
  let keyed =
    Array.mapi
      (fun i t -> ((Tiled_tree.is_uniform_depth t, Tiled_tree.depth t), i))
      trees
  in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (key, i) ->
      let existing = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (i :: existing))
    keyed;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  let keys = List.sort_uniq compare keys in
  List.map
    (fun ((uniform, walk_depth) as key) ->
      let positions = Array.of_list (List.rev (Hashtbl.find tbl key)) in
      let shared_structure =
        let key0 = Tiled_tree.structure_key trees.(positions.(0)) in
        Array.for_all
          (fun i -> String.equal (Tiled_tree.structure_key trees.(i)) key0)
          positions
      in
      { positions; walk_depth; uniform; shared_structure })
    keys

let num_code_variants groups =
  List.fold_left
    (fun acc g ->
      acc + if g.shared_structure || g.uniform then 1 else Array.length g.positions)
    0 groups
