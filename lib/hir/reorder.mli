(** Tree reordering (paper §III-F).

    Groups trees of identical tiled structure / depth so they can share
    traversal code: the generated loop nest walks each group with one body,
    shrinking code footprint (fewer I-cache misses) and giving the
    interleaver same-shaped walks to jam together. *)

type group = {
  positions : int array;
      (** indices into the input tiled-tree array, in original order *)
  walk_depth : int;
      (** common tiled depth when [uniform]; max depth otherwise *)
  uniform : bool;
      (** every tree in the group has all leaves at [walk_depth] — the
          group's walk can be unrolled with no termination checks *)
  shared_structure : bool;
      (** all trees have identical {!Tiled_tree.structure_key} — they can
          share one fully specialized body *)
}

val reorder : Tiled_tree.t array -> group list
(** Partition trees into groups keyed by (uniformity, depth). Group order
    and intra-group order are deterministic. Every input index appears in
    exactly one group. *)

val num_code_variants : group list -> int
(** Number of distinct walk bodies the backend must emit — the quantity
    reordering minimizes (one per group, counting structure sharing). *)
