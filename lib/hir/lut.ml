type t = {
  tile_size : int;
  ids : (Shape.t, int) Hashtbl.t;
  mutable shapes : Shape.t array;  (* indexed by id *)
  mutable rows : int array array;  (* indexed by id *)
  mutable count : int;
}

let create ~tile_size =
  if tile_size < 1 || tile_size > 8 then
    invalid_arg "Lut.create: tile_size must be within 1..8";
  {
    tile_size;
    ids = Hashtbl.create 64;
    shapes = Array.make 8 (Shape.Node (None, None));
    rows = Array.make 8 [||];
    count = 0;
  }

let tile_size t = t.tile_size

let compute_row t shape =
  Array.init (1 lsl t.tile_size) (fun bits ->
      Shape.navigate shape ~tile_size:t.tile_size ~bits)

let shape_id t shape =
  match Hashtbl.find_opt t.ids shape with
  | Some id -> id
  | None ->
    if Shape.size shape > t.tile_size then
      invalid_arg "Lut.shape_id: shape larger than tile size";
    let id = t.count in
    if id >= Array.length t.shapes then begin
      let grow a fill =
        let b = Array.make (2 * Array.length a) fill in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      t.shapes <- grow t.shapes (Shape.Node (None, None));
      t.rows <- grow t.rows [||]
    end;
    t.shapes.(id) <- shape;
    t.rows.(id) <- compute_row t shape;
    t.count <- id + 1;
    Hashtbl.add t.ids shape id;
    id

let shape_of_id t id =
  if id < 0 || id >= t.count then invalid_arg "Lut.shape_of_id: bad id";
  t.shapes.(id)

let num_shapes t = t.count

let lookup t ~shape_id ~bits = t.rows.(shape_id).(bits)

let row t ~shape_id =
  if shape_id < 0 || shape_id >= t.count then invalid_arg "Lut.row: bad id";
  t.rows.(shape_id)

let table t = Array.sub t.rows 0 t.count

let memory_bytes t = t.count * (1 lsl t.tile_size) * 2
