(** Compilation schedules: the optimization decisions of Table II.

    A schedule is attached to the HIR as annotations; each lowering stage
    reads the part it implements (tiling and reordering at HIR, loop order /
    interleaving / unrolling at MIR, layout and vectorization at LIR). *)

type loop_order =
  | One_row_at_a_time  (** walk every tree for a row, then the next row *)
  | One_tree_at_a_time  (** walk one tree over all rows, then the next tree *)

type tiling_kind =
  | Basic  (** Algorithm 2 for every tree *)
  | Probability_based
      (** Algorithm 1 for leaf-biased trees (per the α/β test), Algorithm 2
          for the rest — exactly the paper's policy (§III-C) *)
  | Optimal_probability_based
      (** extension: the exact DP the paper mentions but does not implement
          — minimizes expected tiled depth for leaf-biased trees *)
  | Min_max_depth
      (** extension: the paper's suggested "minimize the maximum leaf
          depth" variant, for worst-case latency *)

type layout_kind =
  | Array_layout  (** implicit-index array of tiles (§V-B1) *)
  | Sparse_layout  (** child pointers + separate leaf array (§V-B2) *)

type t = {
  tile_size : int;  (** 1..8; 1 = untiled scalar walk *)
  tiling : tiling_kind;
  alpha : float;  (** leaf-bias leaf-fraction threshold *)
  beta : float;  (** leaf-bias coverage threshold *)
  loop_order : loop_order;
  pad_and_unroll : bool;
      (** pad almost-balanced trees to uniform depth and fully unroll their
          walks *)
  pad_imbalance_limit : int;
      (** only trees with tiled imbalance <= this are padded (the §III-F
          "almost balanced" rule) *)
  interleave : int;  (** unroll-and-jam factor for tree walks; 1 = off *)
  peel : bool;
      (** peel the walk loop to the depth of the shallowest leaf (§IV-B) *)
  layout : layout_kind;
  num_threads : int;  (** batch-loop parallelism; 1 = sequential *)
}

val scalar_baseline : t
(** The paper's unoptimized reference: tile size 1, row-at-a-time loop,
    no padding/interleaving/peeling, array layout, single thread. *)

val default : t
(** A good general-purpose schedule: tile size 8, basic tiling, tree-at-a-
    time, padding+unrolling, interleave 4, sparse layout. *)

val table2_grid : t list
(** The full optimization space of Table II (loop order × tile size ×
    tiling type × padding × interleaving × ⟨α,β⟩), single-threaded. *)

val with_threads : t -> int -> t

val to_string : t -> string
(** Compact one-line description, e.g.
    ["nt=8 prob(0.075,0.9) tree-major pad+unroll il=4 sparse"]. *)

val to_json : t -> Tb_util.Json.t
val of_json : Tb_util.Json.t -> t
(** Round-trips exactly. @raise Tb_util.Json.Parse_error on schema
    violations. Lets autotuned schedules be saved and shipped with a
    model (the CLI's [explore --save] / [--schedule-file]). *)

val to_file : string -> t -> unit
val of_file : string -> t

val validate : t -> (unit, string) result
(** Check field ranges (tile size 1..8, interleave >= 1, threads >= 1,
    alpha/beta in (0,1]). *)

val canonicalize : ?num_trees:int -> t -> t
(** Collapse fields the lowering pipeline provably ignores to their
    defaults, so schedules that compile to the same artifact compare
    equal: at [tile_size = 1] the tiling kind is irrelevant (every
    algorithm degenerates to singleton tiles) and becomes [Basic];
    [alpha]/[beta] are reset unless the tiling is probability-based (the
    leaf-bias test is the only reader); [pad_imbalance_limit] is reset
    when [pad_and_unroll] is off. With [num_trees] (per-model
    canonicalization), a row-major [interleave] is clamped to the model's
    tree count: the MIR interleaver caps the jam factor at each group's
    size and no group exceeds the forest, so larger factors compile to
    the same artifact. Idempotent. Used by {!Tb_serve.Registry} to
    canonicalize predictor-cache keys. *)

val clamp_threads : max_threads:int -> t -> t * string option
(** [clamp_threads ~max_threads t] caps [num_threads] at [max_threads]
    (e.g. the target CPU's core count from {!Tb_cpu.Config}, or 1 for a
    serving worker that owns a whole core). Returns the possibly-adjusted
    schedule and a warning describing the clamp when one was needed;
    [(t, None)] when the schedule was already within bounds.
    @raise Invalid_argument when [max_threads < 1]. *)
