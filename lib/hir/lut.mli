(** The child-index lookup table (paper §V-A2).

    [LUT : (tile shape, comparison bitmask) -> child index]. Shape IDs are
    assigned on demand per registry; the table rows are computed statically
    (at compile time) by exhaustively navigating each shape under every
    possible bitmask, so the generated walk needs one load per step. *)

type t

val create : tile_size:int -> t
(** An empty registry for tiles of up to [tile_size] nodes (1..8). *)

val tile_size : t -> int

val shape_id : t -> Shape.t -> int
(** Intern a shape, computing its LUT row on first sight.
    @raise Invalid_argument if the shape exceeds the registry tile size. *)

val shape_of_id : t -> int -> Shape.t

val num_shapes : t -> int

val lookup : t -> shape_id:int -> bits:int -> int
(** Child index for a comparison outcome; O(1) array access. *)

val row : t -> shape_id:int -> int array
(** One shape's LUT row (entry per bitmask). The returned array is the
    registry's own storage — do not mutate. Rows are physically shared
    with {!table}'s rows, which lets consumers key per-row caches by
    physical identity ({!Tb_analysis.Validate} memoizes the child
    decision structure this way).
    @raise Invalid_argument on an unknown shape id. *)

val table : t -> int array array
(** The raw table (row per shape id, 2^tile_size entries) — handed to the
    lowered code as a global buffer. Do not mutate. *)

val memory_bytes : t -> int
(** Size of the table in bytes assuming 2-byte entries (int16 in the
    paper). *)
