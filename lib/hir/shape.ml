type t = Node of t option * t option

let rec size (Node (l, r)) =
  let side = function None -> 0 | Some s -> size s in
  1 + side l + side r

let num_exits t = size t + 1

let rec depth (Node (l, r)) =
  let side = function None -> 0 | Some s -> depth s in
  1 + max (side l) (side r)

(* Indexed form: nodes numbered in level order; child entries are either a
   node index (>= 0) or an exit slot encoded as [-1 - slot], with exit slots
   numbered left to right (DFS preorder collection order). *)
type indexed = { left : int array; right : int array }

let index shape =
  let n = size shape in
  (* Level-order ids: BFS over the shape. *)
  let queue = Queue.create () in
  let id_of = Hashtbl.create 16 in
  (* Physical identity is unreliable for structurally equal subtrees, so
     carry (shape, path) pairs; the path uniquely names a position. *)
  let next_id = ref 0 in
  Queue.add (shape, []) queue;
  while not (Queue.is_empty queue) do
    let Node (l, r), path = Queue.pop queue in
    let id = !next_id in
    incr next_id;
    Hashtbl.replace id_of path id;
    (match l with Some s -> Queue.add (s, 0 :: path) queue | None -> ());
    (match r with Some s -> Queue.add (s, 1 :: path) queue | None -> ())
  done;
  let left = Array.make n 0 and right = Array.make n 0 in
  (* DFS preorder to number exits left-to-right, and fill child entries via
     paths. *)
  let exit_count = ref 0 in
  let rec dfs (Node (l, r)) path =
    let my_id = Hashtbl.find id_of path in
    (match l with
    | Some s ->
      left.(my_id) <- Hashtbl.find id_of (0 :: path);
      dfs s (0 :: path)
    | None ->
      left.(my_id) <- -1 - !exit_count;
      incr exit_count);
    match r with
    | Some s ->
      right.(my_id) <- Hashtbl.find id_of (1 :: path);
      dfs s (1 :: path)
    | None ->
      right.(my_id) <- -1 - !exit_count;
      incr exit_count
  in
  dfs shape [];
  { left; right }

let navigate shape ~tile_size ~bits =
  let idx = index shape in
  let rec go i =
    if i < 0 then -1 - i
    else begin
      let bit = (bits lsr (tile_size - 1 - i)) land 1 in
      go (if bit = 1 then idx.left.(i) else idx.right.(i))
    end
  in
  go 0

let enumerate ~max_size =
  (* shapes_of n: all shapes with exactly n nodes. *)
  let memo = Hashtbl.create 16 in
  let rec shapes_of n =
    if n = 0 then [ None ]
    else
      match Hashtbl.find_opt memo n with
      | Some s -> s
      | None ->
        let acc = ref [] in
        for k = 0 to n - 1 do
          List.iter
            (fun l ->
              List.iter
                (fun r -> acc := Some (Node (l, r)) :: !acc)
                (shapes_of (n - 1 - k)))
            (shapes_of k)
        done;
        Hashtbl.add memo n !acc;
        !acc
  in
  List.concat_map
    (fun n -> List.filter_map Fun.id (shapes_of n))
    (List.init max_size (fun i -> i + 1))

let equal = ( = )

let rec to_string (Node (l, r)) =
  let side = function None -> "." | Some s -> to_string s in
  "(" ^ side l ^ side r ^ ")"
