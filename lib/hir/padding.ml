module T = Tiled_tree

(* Recursive intermediate form, flattened back to BFS order at the end. *)
type rnode =
  | RLeaf of float
  | RTile of tile_info * rnode array

and tile_info = {
  node_ids : int array;
  features : int array;
  thresholds : float array;
  shape : Shape.t;
  shape_id : int;
}

let to_rnode (t : T.t) =
  let rec go i =
    match t.T.nodes.(i) with
    | T.Leaf v -> RLeaf v
    | T.Tile tile ->
      RTile
        ( {
            node_ids = tile.T.node_ids;
            features = tile.T.features;
            thresholds = tile.T.thresholds;
            shape = tile.T.shape;
            shape_id = tile.T.shape_id;
          },
          Array.map go tile.T.children )
  in
  go 0

let of_rnode (t : T.t) root =
  (* Flatten in BFS order (root first, siblings contiguous). *)
  let count = ref 0 in
  let queue = Queue.create () in
  let enqueue r =
    let id = !count in
    incr count;
    Queue.add (id, r) queue;
    id
  in
  let (_ : int) = enqueue root in
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let id, r = Queue.pop queue in
    match r with
    | RLeaf v -> out := (id, T.Leaf v) :: !out
    | RTile (info, children) ->
      let child_ids = Array.map enqueue children in
      out :=
        ( id,
          T.Tile
            {
              T.node_ids = info.node_ids;
              features = info.features;
              thresholds = info.thresholds;
              shape = info.shape;
              shape_id = info.shape_id;
              children = child_ids;
            } )
        :: !out
  done;
  let arr = Array.make !count (T.Leaf 0.0) in
  List.iter (fun (id, n) -> arr.(id) <- n) !out;
  { t with T.nodes = arr }

let dummy_tile (t : T.t) inner =
  let shape = Shape.Node (None, None) in
  let info =
    {
      node_ids = [||];
      features = Array.make t.T.tile_size 0;
      thresholds = Array.make t.T.tile_size infinity;
      shape;
      shape_id = Lut.shape_id t.T.lut shape;
    }
  in
  (* Exit 0 continues to the real subtree; exit 1 is a dead leaf. *)
  RTile (info, [| inner; RLeaf 0.0 |])

let static_rchildren info children =
  if Array.length info.node_ids = 0 then [| children.(0) |] else children

let pad_to_depth (t : T.t) ~depth:target =
  let current = T.depth t in
  if target < current then invalid_arg "Padding.pad_to_depth: target too small";
  let rec pad r d =
    match r with
    | RLeaf v ->
      if d >= target then RLeaf v
      else dummy_tile t (pad (RLeaf v) (d + 1))
    | RTile (info, children) ->
      (* Only reachable children are padded; the dead leaf of an existing
         dummy tile stays where it is. *)
      let reachable = static_rchildren info children in
      let padded = Array.map (fun c -> pad c (d + 1)) reachable in
      let children' =
        if Array.length reachable = Array.length children then padded
        else Array.append padded (Array.sub children 1 (Array.length children - 1))
      in
      RTile (info, children')
  in
  of_rnode t (pad (to_rnode t) 0)

let imbalance t =
  match T.leaf_depths t with
  | [] -> 0
  | depths ->
    let ds = List.map fst depths in
    List.fold_left max 0 ds - List.fold_left min max_int ds

let pad_to_uniform_depth t =
  if T.is_uniform_depth t then t else pad_to_depth t ~depth:(T.depth t)
