(** Tree padding (paper §III-F).

    Padding inserts dummy tiles above shallow leaves so that every
    (reachable) leaf sits at the same tiled depth. A padded tree's walk
    executes a fixed number of tile steps, which lets the mid-level IR
    unroll the walk with no termination checks and lets isomorphic trees
    share unrolled code.

    A dummy tile holds a single always-true predicate (feature 0 vs +inf):
    the walk always leaves through exit 0 toward the real subtree, while
    exit 1 points at a dead zero leaf that no input can reach.

    {b Precondition} (shared with the paper's padding): feature values must
    be finite. IEEE comparison makes [x < +inf] false for NaN and +inf
    inputs, which would divert a padded walk through the dead exit;
    unpadded schedules handle non-finite features consistently (the
    predicate simply evaluates false everywhere). *)

val pad_to_uniform_depth : Tiled_tree.t -> Tiled_tree.t
(** Pad so all leaves reach depth = (current max tiled depth). Idempotent
    on already-uniform trees (returns the input unchanged). *)

val pad_to_depth : Tiled_tree.t -> depth:int -> Tiled_tree.t
(** Pad to a specific depth (>= the tree's max tiled depth) — used by tree
    reordering to equalize whole groups.
    @raise Invalid_argument if [depth] is smaller than the tree's depth. *)

val imbalance : Tiled_tree.t -> int
(** max tiled leaf depth - min tiled leaf depth; the §III-F "almost
    balanced" criterion padding decisions are based on. *)
