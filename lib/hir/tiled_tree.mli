(** Tiled trees: the HIR form of a decision tree after tiling.

    A tiled tree is an n-ary tree whose internal nodes are tiles (up to
    [tile_size] decision nodes plus a shape) and whose leaves carry
    prediction values. Under-full tiles are padded to [tile_size] lanes
    with dummy predicates ([feature 0 < +inf], always true); the LUT never
    consults dummy lanes' bits, so padding is semantics-preserving.

    The walk over a tiled tree (see {!walk}) is the reference semantics all
    lowered code must match: evaluate all lane predicates speculatively,
    pack them into a bitmask (node 0 = MSB), look up the child index in the
    LUT, move to that child. *)

type tile = {
  node_ids : int array;
      (** originating {!Itree.t} node ids in intra-tile level order; empty
          for dummy (padding) tiles *)
  features : int array;  (** length [tile_size]; dummy lanes use feature 0 *)
  thresholds : float array;
      (** length [tile_size]; dummy lanes hold [infinity] *)
  shape : Shape.t;
  shape_id : int;
  children : int array;
      (** indices into the tree's [nodes] array, length
          [Shape.num_exits shape], ordered left to right *)
}

type node =
  | Tile of tile
  | Leaf of float

type t = {
  tile_size : int;
  nodes : node array;  (** node 0 is the root *)
  lut : Lut.t;  (** shared shape registry for the whole compilation *)
  source_leaves : int;  (** leaf count of the source binary tree *)
}

val create : Lut.t -> Itree.t -> Tiling.t -> t
(** Build the tiled tree for a tiling of [itree], interning shapes in the
    given registry. Handles the degenerate single-leaf tree. *)

val walk : t -> float array -> float
(** Reference tiled traversal (must equal {!Tb_model.Tree.predict} on the
    source tree — tested). *)

val walk_leaf_node : t -> float array -> int
(** Index (into [nodes]) of the leaf reached — used by probability
    accounting. *)

val step : t -> int -> float array -> int
(** One tile step: index (into [nodes]) of the child the row selects at
    tile node [i]. Building block for walk-kind-faithful replay
    ({!Tb_mir.Mir.walk_tree}).
    @raise Invalid_argument when node [i] is a leaf. *)

val depth : t -> int
(** Tiled depth in tiles: number of tiles traversed to the deepest leaf. *)

val min_leaf_depth : t -> int
(** Number of tiles traversed to the shallowest leaf. *)

val num_tiles : t -> int
(** Number of internal (tile) nodes, including dummy padding tiles. *)

val num_leaves : t -> int

val leaf_depths : t -> (int * float) list
(** (depth in tiles, value) for every leaf. *)

val expected_depth : t -> leaf_node_probs:(int -> float) -> float
(** Σ p(leaf) · tiled-depth(leaf), the §III-C objective; [leaf_node_probs]
    maps a [nodes] index to its reach probability. *)

val structure_key : t -> string
(** Shape-and-topology key: two tiled trees with equal keys can share
    traversal code (used by tree reordering). *)

val is_uniform_depth : t -> bool
(** All reachable leaves at the same tiled depth (holds after padding). *)

val is_dummy : tile -> bool
(** Padding tiles (no originating nodes); their exit 0 is the only
    reachable child. *)

val static_children : tile -> int array
(** Children reachable by some input: all of them for real tiles, exit 0
    only for dummy tiles. Static analyses must use this instead of
    [children] to avoid counting padding's dead leaves. *)
