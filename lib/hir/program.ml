module Forest = Tb_model.Forest
module Model_stats = Tb_model.Model_stats

type tree_entry = {
  tiled : Tiled_tree.t;
  original_index : int;
  used_probability_tiling : bool;
}

type t = {
  forest : Forest.t;
  schedule : Schedule.t;
  trees : tree_entry array;
  groups : Reorder.group list;
  lut : Lut.t;
}

let build ?profiles forest (schedule : Schedule.t) =
  (match Schedule.validate schedule with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Program.build: " ^ msg));
  (match profiles with
  | Some p when Array.length p <> Array.length forest.Forest.trees ->
    invalid_arg "Program.build: profile count mismatch"
  | Some _ | None -> ());
  let lut = Lut.create ~tile_size:schedule.tile_size in
  let tile_one index tree =
    let itree = Itree.of_tree tree in
    let use_probability =
      match (schedule.tiling, profiles) with
      | Schedule.Basic, _ | Schedule.Min_max_depth, _ | _, None -> false
      | (Schedule.Probability_based | Schedule.Optimal_probability_based), Some profiles
        ->
        Model_stats.is_leaf_biased profiles.(index) ~alpha:schedule.alpha
          ~beta:schedule.beta
    in
    let tiling =
      if use_probability then begin
        let profiles = Option.get profiles in
        let node_probs =
          Itree.node_probs itree ~leaf_probs:profiles.(index).Model_stats.leaf_probs
        in
        match schedule.tiling with
        | Schedule.Optimal_probability_based ->
          Tiling.optimal_probability_based itree ~node_probs
            ~tile_size:schedule.tile_size
        | Schedule.Probability_based | Schedule.Basic | Schedule.Min_max_depth ->
          Tiling.probability_based itree ~node_probs ~tile_size:schedule.tile_size
      end
      else
        match schedule.tiling with
        | Schedule.Min_max_depth ->
          Tiling.min_max_depth itree ~tile_size:schedule.tile_size
        | Schedule.Basic | Schedule.Probability_based
        | Schedule.Optimal_probability_based ->
          Tiling.basic itree ~tile_size:schedule.tile_size
    in
    let tiled = Tiled_tree.create lut itree tiling in
    let tiled =
      if
        schedule.pad_and_unroll
        && Padding.imbalance tiled <= schedule.pad_imbalance_limit
      then Padding.pad_to_uniform_depth tiled
      else tiled
    in
    { tiled; original_index = index; used_probability_tiling = use_probability }
  in
  let entries = Array.mapi tile_one forest.Forest.trees in
  let groups = Reorder.reorder (Array.map (fun e -> e.tiled) entries) in
  (* Materialize the reordered execution order while keeping group position
     arrays valid: rebuild trees in group order and renumber. *)
  let order = List.concat_map (fun g -> Array.to_list g.Reorder.positions) groups in
  let trees = Array.of_list (List.map (fun i -> entries.(i)) order) in
  let groups =
    let next = ref 0 in
    List.map
      (fun g ->
        let n = Array.length g.Reorder.positions in
        let positions = Array.init n (fun i -> !next + i) in
        next := !next + n;
        { g with Reorder.positions })
      groups
  in
  { forest; schedule; trees; groups; lut }

let reference_predict t row =
  let out = Array.make (Forest.num_outputs t.forest) t.forest.Forest.base_score in
  Array.iter
    (fun entry ->
      let cls = Forest.class_of_tree t.forest entry.original_index in
      out.(cls) <- out.(cls) +. Tiled_tree.walk entry.tiled row)
    t.trees;
  out

let num_leaf_biased t =
  Array.fold_left
    (fun acc e -> if e.used_probability_tiling then acc + 1 else acc)
    0 t.trees

let total_tiles t =
  Array.fold_left (fun acc e -> acc + Tiled_tree.num_tiles e.tiled) 0 t.trees
