(** Indexed (array) view of a binary decision tree.

    Tiling algorithms manipulate sets of nodes, which needs stable node
    identities; this module gives every node of a {!Tb_model.Tree.t} an
    integer id (preorder numbering, root = 0) and O(1) structural
    accessors. Leaf ids and leaf order match {!Tb_model.Tree.leaves}
    (left-to-right). *)

type t = {
  feature : int array;  (** meaningful for internal nodes *)
  threshold : float array;
  value : float array;  (** meaningful for leaves *)
  left : int array;  (** child id, or -1 for leaves *)
  right : int array;
  parent : int array;  (** -1 for the root *)
  num_nodes : int;  (** total, internal + leaves *)
}

val of_tree : Tb_model.Tree.t -> t
val to_tree : t -> Tb_model.Tree.t

val root : int
(** Always 0. *)

val is_leaf : t -> int -> bool
val internal_ids : t -> int list
(** All internal node ids, ascending. *)

val leaf_rank : t -> int array
(** [(leaf_rank t).(id)] is the left-to-right index of leaf [id]
    (meaningless for internal nodes). *)

val node_probs : t -> leaf_probs:float array -> float array
(** Probability of the walk reaching each node: leaves get their profile
    probability (indexed by left-to-right rank), internal nodes the sum of
    their subtree's leaves — the input to probability-based tiling
    (footnote 6 of the paper). *)

val depth_of : t -> int -> int
(** Depth in edges from the root. *)
