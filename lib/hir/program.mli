(** The assembled HIR: a forest after tiling, padding and reordering,
    annotated with its schedule — the input to MIR lowering.

    Construction applies the HIR-level optimizations in paper order:
    + tile every tree (probability-based tiling for leaf-biased trees when
      the schedule asks for it and profiles are available, basic tiling
      otherwise);
    + pad almost-balanced trees to uniform tiled depth when the schedule
      enables padding + unrolling;
    + reorder trees into code-sharing groups. *)

type tree_entry = {
  tiled : Tiled_tree.t;
  original_index : int;
      (** index in the source forest — determines which output class this
          tree accumulates into *)
  used_probability_tiling : bool;
}

type t = {
  forest : Tb_model.Forest.t;
  schedule : Schedule.t;
  trees : tree_entry array;  (** in reordered execution order *)
  groups : Reorder.group list;  (** positions index into [trees] *)
  lut : Lut.t;
}

val build :
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  Tb_model.Forest.t ->
  Schedule.t ->
  t
(** Compile the HIR. [profiles] (one per forest tree, from
    {!Tb_model.Model_stats.profile_forest}) enable probability-based
    tiling; without them the schedule's [Probability_based] degrades to
    basic tiling for every tree.
    @raise Invalid_argument if the schedule fails {!Schedule.validate} or
    the profile count mismatches. *)

val reference_predict : t -> float array -> float array
(** Prediction computed by walking the HIR's tiled trees directly — the
    semantic anchor lower stages are tested against. Must equal
    {!Tb_model.Forest.predict_raw} on the source forest. *)

val num_leaf_biased : t -> int
(** Trees that were tiled with Algorithm 1. *)

val total_tiles : t -> int
