type tile = {
  node_ids : int array;
  features : int array;
  thresholds : float array;
  shape : Shape.t;
  shape_id : int;
  children : int array;
}

type node =
  | Tile of tile
  | Leaf of float

type t = {
  tile_size : int;
  nodes : node array;
  lut : Lut.t;
  source_leaves : int;
}

(* Intra-tile level-order node ids, following only in-tile edges. *)
let level_order_ids (it : Itree.t) (tiling : Tiling.t) tile_id =
  let root = Tiling.tile_root it tiling tile_id in
  let queue = Queue.create () in
  Queue.add root queue;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    acc := n :: !acc;
    let push c =
      if (not (Itree.is_leaf it c)) && tiling.Tiling.tile_of_node.(c) = tile_id
      then Queue.add c queue
    in
    push it.Itree.left.(n);
    push it.Itree.right.(n)
  done;
  Array.of_list (List.rev !acc)

(* Shape of the tile plus its exits' tree nodes in left-to-right order. *)
let shape_and_exits (it : Itree.t) (tiling : Tiling.t) tile_id root =
  let in_tile n =
    (not (Itree.is_leaf it n)) && tiling.Tiling.tile_of_node.(n) = tile_id
  in
  let exits = ref [] in
  let rec build n =
    let side c =
      if in_tile c then Some (build c)
      else begin
        exits := c :: !exits;
        None
      end
    in
    (* Left must be traversed before right so that the exit list matches the
       shape's left-to-right (DFS) exit numbering. *)
    let l = side it.Itree.left.(n) in
    let r = side it.Itree.right.(n) in
    Shape.Node (l, r)
  in
  let shape = build root in
  (shape, Array.of_list (List.rev !exits))

let create lut (it : Itree.t) (tiling : Tiling.t) =
  let tile_size = tiling.Tiling.tile_size in
  if Lut.tile_size lut <> tile_size then
    invalid_arg "Tiled_tree.create: LUT tile size mismatch";
  if Itree.is_leaf it Itree.root then
    {
      tile_size;
      nodes = [| Leaf it.Itree.value.(Itree.root) |];
      lut;
      source_leaves = 1;
    }
  else begin
    (* Output order: BFS over tiles-and-leaves from the root tile, so the
       root is node 0 and siblings are contiguous (the sparse layout relies
       on sibling contiguity). *)
    let node_index = Hashtbl.create 64 in
    (* keys: [`T tile_id] or [`L tree_node_id] *)
    let order = ref [] in
    let next = ref 0 in
    let queue = Queue.create () in
    let enqueue key =
      if not (Hashtbl.mem node_index key) then begin
        Hashtbl.add node_index key !next;
        incr next;
        order := key :: !order;
        Queue.add key queue
      end
    in
    enqueue (`T 0);
    while not (Queue.is_empty queue) do
      match Queue.pop queue with
      | `L _ -> ()
      | `T tid ->
        let root = Tiling.tile_root it tiling tid in
        let _, exits = shape_and_exits it tiling tid root in
        Array.iter
          (fun e ->
            if Itree.is_leaf it e then enqueue (`L e)
            else enqueue (`T tiling.Tiling.tile_of_node.(e)))
          exits
    done;
    let keys = Array.of_list (List.rev !order) in
    let nodes =
      Array.map
        (function
          | `L leaf_id -> Leaf it.Itree.value.(leaf_id)
          | `T tid ->
            let root = Tiling.tile_root it tiling tid in
            let node_ids = level_order_ids it tiling tid in
            let shape, exits = shape_and_exits it tiling tid root in
            let features = Array.make tile_size 0 in
            let thresholds = Array.make tile_size infinity in
            Array.iteri
              (fun lane n ->
                features.(lane) <- it.Itree.feature.(n);
                thresholds.(lane) <- it.Itree.threshold.(n))
              node_ids;
            let children =
              Array.map
                (fun e ->
                  let key =
                    if Itree.is_leaf it e then `L e
                    else `T tiling.Tiling.tile_of_node.(e)
                  in
                  Hashtbl.find node_index key)
                exits
            in
            Tile
              {
                node_ids;
                features;
                thresholds;
                shape;
                shape_id = Lut.shape_id lut shape;
                children;
              })
        keys
    in
    {
      tile_size;
      nodes;
      lut;
      source_leaves = Tb_model.Tree.num_leaves (Itree.to_tree it);
    }
  end

let comparison_bits t (tile : tile) row =
  let bits = ref 0 in
  for lane = 0 to t.tile_size - 1 do
    (* Dummy lanes compare against +inf, so their bit is always set; the
       LUT ignores those positions anyway. *)
    let b = if row.(tile.features.(lane)) < tile.thresholds.(lane) then 1 else 0 in
    bits := !bits lor (b lsl (t.tile_size - 1 - lane))
  done;
  !bits

let walk_leaf_node t row =
  let rec go i =
    match t.nodes.(i) with
    | Leaf _ -> i
    | Tile tile ->
      let bits = comparison_bits t tile row in
      let child = Lut.lookup t.lut ~shape_id:tile.shape_id ~bits in
      go tile.children.(child)
  in
  go 0

let walk t row =
  match t.nodes.(walk_leaf_node t row) with
  | Leaf v -> v
  | Tile _ -> assert false

let step t i row =
  match t.nodes.(i) with
  | Leaf _ -> invalid_arg "Tiled_tree.step: node is a leaf"
  | Tile tile ->
    let bits = comparison_bits t tile row in
    tile.children.(Lut.lookup t.lut ~shape_id:tile.shape_id ~bits)

let is_dummy (tile : tile) = Array.length tile.node_ids = 0

(* Children considered by static analyses: a dummy (padding) tile always
   routes the walk through exit 0; its other exit is a dead leaf that no
   input can reach and must not be counted. *)
let static_children (tile : tile) =
  if is_dummy tile then [| tile.children.(0) |] else tile.children

let leaf_depths t =
  let acc = ref [] in
  let rec go i d =
    match t.nodes.(i) with
    | Leaf v -> acc := (d, v) :: !acc
    | Tile tile -> Array.iter (fun c -> go c (d + 1)) (static_children tile)
  in
  go 0 0;
  !acc

let depth t = List.fold_left (fun m (d, _) -> max m d) 0 (leaf_depths t)

let min_leaf_depth t =
  List.fold_left (fun m (d, _) -> min m d) max_int (leaf_depths t)

let num_tiles t =
  Array.fold_left
    (fun acc -> function Tile _ -> acc + 1 | Leaf _ -> acc)
    0 t.nodes

let num_leaves t =
  Array.fold_left
    (fun acc -> function Leaf _ -> acc + 1 | Tile _ -> acc)
    0 t.nodes

let expected_depth t ~leaf_node_probs =
  let acc = ref 0.0 in
  let rec go i d =
    match t.nodes.(i) with
    | Leaf _ -> acc := !acc +. (leaf_node_probs i *. float_of_int d)
    | Tile tile -> Array.iter (fun c -> go c (d + 1)) (static_children tile)
  in
  go 0 0;
  !acc

let structure_key t =
  let buf = Buffer.create 128 in
  let rec go i =
    match t.nodes.(i) with
    | Leaf _ -> Buffer.add_char buf 'L'
    | Tile tile ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (string_of_int tile.shape_id);
      Array.iter go (static_children tile);
      Buffer.add_char buf ')'
  in
  go 0;
  Buffer.contents buf

let is_uniform_depth t =
  match leaf_depths t with
  | [] -> true
  | (d0, _) :: rest -> List.for_all (fun (d, _) -> d = d0) rest
