type t = {
  tile_size : int;
  tile_of_node : int array;
  num_tiles : int;
}

(* Shared recursion skeleton: [make_tile root] returns the node set of the
   tile rooted at [root] (internal nodes only); recursion continues on every
   internal node reachable by an edge leaving the tile. *)
let tile_with ~make_tile (it : Itree.t) ~tile_size =
  let tile_of_node = Array.make it.Itree.num_nodes (-1) in
  let num_tiles = ref 0 in
  let rec tile_tree root =
    if not (Itree.is_leaf it root) then begin
      let tile = make_tile root in
      let id = !num_tiles in
      incr num_tiles;
      List.iter (fun n -> tile_of_node.(n) <- id) tile;
      let in_tile n = tile_of_node.(n) = id in
      List.iter
        (fun n ->
          let visit child = if not (in_tile child) then tile_tree child in
          visit it.Itree.left.(n);
          visit it.Itree.right.(n))
        tile
    end
  in
  tile_tree Itree.root;
  { tile_size; tile_of_node; num_tiles = !num_tiles }

let basic (it : Itree.t) ~tile_size =
  let make_tile root =
    (* LevelOrderTraversal of Algorithm 2: BFS from the tile root, skipping
       leaves, until the tile is full. *)
    let queue = Queue.create () in
    Queue.add root queue;
    let tile = ref [] in
    let count = ref 0 in
    while (not (Queue.is_empty queue)) && !count < tile_size do
      let n = Queue.pop queue in
      if not (Itree.is_leaf it n) then begin
        tile := n :: !tile;
        incr count;
        Queue.add it.Itree.left.(n) queue;
        Queue.add it.Itree.right.(n) queue
      end
    done;
    List.rev !tile
  in
  tile_with ~make_tile it ~tile_size

let probability_based (it : Itree.t) ~node_probs ~tile_size =
  let make_tile root =
    (* Algorithm 1: greedily add the most probable internal out-node. *)
    let tile = ref [ root ] in
    let count = ref 1 in
    let continue = ref true in
    while !continue && !count < tile_size do
      let candidates =
        List.concat_map
          (fun n ->
            List.filter
              (fun c -> (not (Itree.is_leaf it c)) && not (List.mem c !tile))
              [ it.Itree.left.(n); it.Itree.right.(n) ])
          !tile
      in
      match candidates with
      | [] -> continue := false
      | c0 :: rest ->
        let best =
          List.fold_left
            (fun best c -> if node_probs.(c) > node_probs.(best) then c else best)
            c0 rest
        in
        tile := best :: !tile;
        incr count
    done;
    List.rev !tile
  in
  tile_with ~make_tile it ~tile_size

(* ------------------------------------------------------------------ *)
(* Dynamic-programming tilings                                          *)
(* ------------------------------------------------------------------ *)

(* Enumerate every connected set of internal nodes rooted at [v] with at
   most [budget] nodes. Because candidates are assembled from disjoint
   left/right sub-choices, each rooted set is generated exactly once. A
   choice is a node list plus its internal exits (out-edges to internal
   nodes); leaf exits never constrain the DP. *)
let rooted_tiles (it : Itree.t) v budget =
  (* side v b: choices for the subtree hanging off child [v]: either cut
     here (v becomes an exit) or, if internal, include a rooted tile. *)
  let rec tiles v budget =
    (* v is internal; budget >= 1. *)
    let l = it.Itree.left.(v) and r = it.Itree.right.(v) in
    let acc = ref [] in
    for left_size = 0 to budget - 1 do
      let left_choices = side l left_size in
      if left_choices <> [] then begin
        let right_choices = side r (budget - 1 - left_size) in
        List.iter
          (fun (ln, le, lsz) ->
            List.iter
              (fun (rn, re, rsz) ->
                if lsz = left_size then
                  acc := ((v :: ln) @ rn, le @ re, 1 + lsz + rsz) :: !acc)
              right_choices)
          left_choices
      end
    done;
    !acc
  and side v budget =
    if Itree.is_leaf it v then
      (* A leaf exit: contributes no nodes and no internal exits, and only
         exists as the single size-0 choice. *)
      if budget = 0 then [ ([], [], 0) ] else []
    else begin
      (* Either cut the edge (internal exit), using size 0... *)
      let cut = if budget = 0 then [ ([], [ v ], 0) ] else [] in
      (* ...or include a rooted tile of exactly [budget] nodes. *)
      let inc =
        if budget >= 1 then
          List.filter (fun (_, _, sz) -> sz = budget) (tiles v budget)
        else []
      in
      cut @ inc
    end
  in
  (* Collect choices of every size 1..budget rooted at v. *)
  List.concat_map
    (fun b -> List.filter (fun (_, _, sz) -> sz = b) (tiles v b))
    (List.init budget (fun i -> i + 1))

(* Maximal-tiling rule: an under-full tile may not have internal exits. *)
let admissible tile_size (nodes, internal_exits, size) =
  ignore nodes;
  size = tile_size || internal_exits = []

(* Generic DP over rooted tiles: [combine] folds the exit costs, [seed] is
   the per-tile base cost. Returns the per-root cost and chosen tile. *)
let dp_tiling (it : Itree.t) ~tile_size ~cost_of_root ~combine_exits =
  let n = it.Itree.num_nodes in
  let memo_cost = Array.make n Float.nan in
  let memo_tile : (int list * int list) array = Array.make n ([], []) in
  let rec solve v =
    if not (Float.is_nan memo_cost.(v)) then memo_cost.(v)
    else begin
      let candidates =
        List.filter (admissible tile_size) (rooted_tiles it v tile_size)
      in
      let best = ref Float.infinity and best_tile = ref ([ v ], []) in
      List.iter
        (fun (nodes, exits, _) ->
          let c = cost_of_root v +. combine_exits (List.map solve exits) in
          if c < !best then begin
            best := c;
            best_tile := (nodes, exits)
          end)
        candidates;
      memo_cost.(v) <- !best;
      memo_tile.(v) <- !best_tile;
      !best
    end
  in
  let tile_of_node = Array.make n (-1) in
  let num_tiles = ref 0 in
  let rec emit v =
    let (_ : float) = solve v in
    let nodes, exits = memo_tile.(v) in
    let id = !num_tiles in
    incr num_tiles;
    List.iter (fun u -> tile_of_node.(u) <- id) nodes;
    List.iter emit exits
  in
  if not (Itree.is_leaf it Itree.root) then emit Itree.root;
  { tile_size; tile_of_node; num_tiles = !num_tiles }

let optimal_probability_based (it : Itree.t) ~node_probs ~tile_size =
  dp_tiling it ~tile_size
    ~cost_of_root:(fun v -> node_probs.(v))
    ~combine_exits:(List.fold_left ( +. ) 0.0)

let min_max_depth (it : Itree.t) ~tile_size =
  dp_tiling it ~tile_size
    ~cost_of_root:(fun _ -> 1.0)
    ~combine_exits:(fun costs ->
      (* max leaf depth below this tile, with a tiny tile-count tiebreak so
         equal-depth solutions prefer fewer tiles. *)
      List.fold_left Float.max 0.0 costs
      +. (1e-6 *. List.fold_left ( +. ) 0.0 costs))

let nodes_of_tile t tile_id =
  let acc = ref [] in
  for n = Array.length t.tile_of_node - 1 downto 0 do
    if t.tile_of_node.(n) = tile_id then acc := n :: !acc
  done;
  !acc

let tile_root (it : Itree.t) t tile_id =
  let nodes = nodes_of_tile t tile_id in
  match
    List.filter
      (fun n ->
        let p = it.Itree.parent.(n) in
        p < 0 || t.tile_of_node.(p) <> tile_id)
      nodes
  with
  | [ r ] -> r
  | [] -> invalid_arg "Tiling.tile_root: empty or rootless tile"
  | _ -> invalid_arg "Tiling.tile_root: disconnected tile"

let check_valid (it : Itree.t) t =
  let ( let* ) r f = Result.bind r f in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  (* Partitioning + leaf separation: every internal node in exactly one
     tile, no leaf in any tile. *)
  let* () =
    let rec check n =
      if n >= it.Itree.num_nodes then Ok ()
      else if Itree.is_leaf it n then
        if t.tile_of_node.(n) <> -1 then fail "leaf %d assigned to a tile" n
        else check (n + 1)
      else if t.tile_of_node.(n) < 0 || t.tile_of_node.(n) >= t.num_tiles then
        fail "internal node %d not in any tile" n
      else check (n + 1)
    in
    check 0
  in
  (* Per-tile checks. *)
  let rec per_tile tid =
    if tid >= t.num_tiles then Ok ()
    else begin
      let nodes = nodes_of_tile t tid in
      let* () =
        if nodes = [] then fail "tile %d is empty" tid
        else if List.length nodes > t.tile_size then
          fail "tile %d exceeds tile size" tid
        else Ok ()
      in
      (* Connectedness: exactly one node whose parent is outside the tile,
         and every other node's parent is inside. *)
      let roots =
        List.filter
          (fun n ->
            let p = it.Itree.parent.(n) in
            p < 0 || t.tile_of_node.(p) <> tid)
          nodes
      in
      let* () =
        match roots with
        | [ _ ] -> Ok ()
        | _ -> fail "tile %d is not a connected subtree" tid
      in
      (* Maximal tiling: an under-full tile must have no internal node as an
         out-neighbour. *)
      let* () =
        if List.length nodes >= t.tile_size then Ok ()
        else begin
          let has_internal_out =
            List.exists
              (fun n ->
                List.exists
                  (fun c ->
                    (not (Itree.is_leaf it c)) && t.tile_of_node.(c) <> tid)
                  [ it.Itree.left.(n); it.Itree.right.(n) ])
              nodes
          in
          if has_internal_out then
            fail "tile %d is under-full but has an internal out-edge" tid
          else Ok ()
        end
      in
      per_tile (tid + 1)
    end
  in
  per_tile 0
