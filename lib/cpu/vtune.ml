type row = {
  variant : string;
  breakdown : Cost_model.breakdown;
  rows : int;
}

let pct (b : Cost_model.breakdown) component =
  100.0 *. component /. Float.max 1e-9 b.Cost_model.cycles

let table rows =
  let t =
    Tb_util.Table.create
      [
        "variant"; "cycles/row"; "inst/row"; "retiring%"; "frontend%";
        "bad-spec%"; "mem-stall%"; "core-stall%";
      ]
  in
  List.iter
    (fun { variant; breakdown = b; rows } ->
      let per x = x /. float_of_int (max 1 rows) in
      Tb_util.Table.add_row t
        [
          variant;
          Printf.sprintf "%.0f" (per b.Cost_model.cycles);
          Printf.sprintf "%.0f" (per b.Cost_model.instructions);
          Tb_util.Table.cell_f ~dec:0 (pct b b.Cost_model.retiring);
          Tb_util.Table.cell_f ~dec:0 (pct b b.Cost_model.frontend);
          Tb_util.Table.cell_f ~dec:0 (pct b b.Cost_model.bad_speculation);
          Tb_util.Table.cell_f ~dec:0 (pct b b.Cost_model.backend_memory);
          Tb_util.Table.cell_f ~dec:0 (pct b b.Cost_model.backend_core);
        ])
    rows;
  t
