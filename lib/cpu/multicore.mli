(** Multicore scaling model (paper §IV-C, Figs. 7b/8b/13).

    The row loop is tiled across threads; this module converts a
    single-thread cycle estimate into a multi-thread one, accounting for
    physical cores, SMT yield, a small fork/join overhead, and an optional
    cap on usable cores (Hummingbird's observed 3-of-16 utilization). *)

val speedup : Config.t -> ?max_effective_cores:int -> threads:int -> unit -> float
(** Parallel speedup factor (>= 1 for threads >= 1). *)

val cycles : Config.t -> ?max_effective_cores:int -> threads:int -> float -> float
(** [cycles config ~threads single_thread_cycles]. *)
