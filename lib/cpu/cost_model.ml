module Ops = Tb_lir.Ops
module Layout = Tb_lir.Layout

type workload = {
  rows : int;
  walks_checked : int;
  walks_unrolled : int;
  steps_checked : int;
  steps_unchecked : int;
  leaf_fetches : int;
  critical_steps : int;
  l1 : Cache.stats;
  code_bytes : int;
  model_bytes : int;
  tile_size : int;
  layout : Layout.kind;
}

type breakdown = {
  cycles : float;
  instructions : float;
  retiring : float;
  frontend : float;
  bad_speculation : float;
  backend_memory : float;
  backend_core : float;
}

let sum_uops config ops =
  List.fold_left (fun acc op -> acc +. Config.op_uops config op) 0.0 ops

let sum_latency config ops =
  List.fold_left (fun acc op -> acc +. Config.op_latency config op) 0.0 ops

let estimate (config : Config.t) w =
  let layout = w.layout and tile_size = w.tile_size in
  let checked_ops = Ops.step_ops ~layout ~tile_size (Tile_step { leaf_check = true }) in
  let unchecked_ops = Ops.step_ops ~layout ~tile_size (Tile_step { leaf_check = false }) in
  let leaf_ops = Ops.step_ops ~layout ~tile_size Leaf_fetch in
  let count_insts ops = float_of_int (List.length ops) in
  let instructions =
    (float_of_int w.steps_checked *. count_insts checked_ops)
    +. (float_of_int w.steps_unchecked *. count_insts unchecked_ops)
    +. (float_of_int w.leaf_fetches *. count_insts leaf_ops)
  in
  let uops =
    (float_of_int w.steps_checked *. sum_uops config checked_ops)
    +. (float_of_int w.steps_unchecked *. sum_uops config unchecked_ops)
    +. (float_of_int w.leaf_fetches *. sum_uops config leaf_ops)
  in
  let retiring = uops /. config.Config.issue_width in
  (* Serial dependency chain: one chain traversal per critical step. *)
  let chain_latency =
    sum_latency config (Ops.dependency_chain ~layout ~tile_size (Tile_step { leaf_check = true }))
  in
  (* The OOO window overlaps a couple of adjacent independent walks even
     without explicit interleaving. *)
  let chain_cycles =
    float_of_int w.critical_steps *. chain_latency /. config.Config.ooo_walk_overlap
  in
  let backend_core = Float.max 0.0 (chain_cycles -. retiring) in
  let miss_penalty =
    (* Working sets past L2 (e.g. the bloated array layout on big models)
       pay L3/TLB latency on their misses. *)
    if w.model_bytes > config.Config.l2_size_bytes then
      config.Config.l1_miss_penalty *. config.Config.l2_spill_penalty
    else config.Config.l1_miss_penalty
  in
  let backend_memory =
    float_of_int w.l1.Cache.misses
    *. miss_penalty
    *. (1.0 -. config.Config.memory_overlap)
  in
  let predicate_branches =
    (* Scalar walks branch on every node predicate; vector walks replace
       predicates with the LUT and keep only the loop-termination check. *)
    if tile_size = 1 then float_of_int (w.steps_checked + w.steps_unchecked) else 0.0
  in
  let bad_speculation =
    ((predicate_branches *. config.Config.predicate_mispredict_rate)
    +. (float_of_int w.walks_checked *. config.Config.loop_exit_mispredict_rate))
    *. config.Config.branch_miss_penalty
  in
  let frontend =
    if w.code_bytes <= config.Config.icache_bytes then 0.0
    else begin
      let excess =
        float_of_int (w.code_bytes - config.Config.icache_bytes)
        /. float_of_int config.Config.icache_bytes
      in
      instructions *. config.Config.frontend_miss_penalty *. Float.min 1.0 (excess /. 4.0)
    end
  in
  let cycles =
    Float.max retiring chain_cycles +. backend_memory +. bad_speculation +. frontend
  in
  {
    cycles;
    instructions;
    retiring;
    frontend;
    bad_speculation;
    backend_memory;
    backend_core;
  }

(* ------------------------------------------------------------------ *)
(* Quantized fast path                                                 *)
(* ------------------------------------------------------------------ *)

(* Registers a depth-[k] resident prefix keeps live: walk cursor and
   scratch, the current tile's lane values, and one path-state register
   per resident level. *)
let resident_reg_demand ~tile_size ~k = 6 + tile_size + k

(* Baked straight-line code per resident tile: per lane a compare against
   an immediate plus a flag update, then the LUT dispatch ladder. *)
let resident_code_bytes ~tile_size ~resident_tiles =
  resident_tiles * ((12 * tile_size) + 16)

let estimate_quant (config : Config.t) w ~qbits ~resident_k ~resident_steps
    ~resident_tiles =
  (* Narrower values touch fewer cache lines: thresholds and leaves are
     roughly half the walk's data traffic and shrink from f32 to
     [qbits], so scale the measured float-layout misses accordingly. *)
  let value_scale = 0.5 +. (0.5 *. float_of_int qbits /. 32.0) in
  let scale_misses s =
    {
      s with
      Cache.misses =
        int_of_float (Float.round (float_of_int s.Cache.misses *. value_scale));
    }
  in
  let w =
    {
      w with
      l1 = scale_misses w.l1;
      model_bytes =
        int_of_float (Float.round (float_of_int w.model_bytes *. value_scale));
      code_bytes =
        w.code_bytes
        + resident_code_bytes ~tile_size:w.tile_size ~resident_tiles;
    }
  in
  let b = estimate config w in
  (* The first [resident_steps] of the serial chain run on the register
     phase: replace their memory-chain latency with the (much shorter)
     resident compare/select chain, spill-penalized past the register
     budget. *)
  let chain_latency =
    sum_latency config
      (Ops.dependency_chain ~layout:w.layout ~tile_size:w.tile_size
         (Tile_step { leaf_check = true }))
  in
  let demand = resident_reg_demand ~tile_size:w.tile_size ~k:resident_k in
  let step_latency =
    if demand > config.Config.int_regs then
      config.Config.resident_step_latency *. config.Config.resident_spill_penalty
    else config.Config.resident_step_latency
  in
  let saved =
    float_of_int resident_steps
    *. Float.max 0.0 (chain_latency -. step_latency)
    /. config.Config.ooo_walk_overlap
  in
  let chain_cycles =
    (float_of_int w.critical_steps *. chain_latency /. config.Config.ooo_walk_overlap)
    -. saved
  in
  let memory_and_stalls =
    b.backend_memory +. b.bad_speculation +. b.frontend
  in
  let cycles = Float.max b.retiring chain_cycles +. memory_and_stalls in
  {
    b with
    cycles;
    backend_core = Float.max 0.0 (chain_cycles -. b.retiring);
  }

let tune_resident_k (config : Config.t) w (lay : Layout.t)
    ~walk_depth ~qbits ~max_k =
  let best = ref 0 and best_cycles = ref infinity in
  for k = 0 to max_k do
    let resident_steps =
      Array.fold_left
        (fun acc d -> acc + (w.rows * min k d))
        0 walk_depth
    in
    let resident_tiles = Layout.resident_tiles lay ~k in
    let b =
      estimate_quant config w ~qbits ~resident_k:k ~resident_steps
        ~resident_tiles
    in
    if b.cycles < !best_cycles -. 1e-9 then begin
      best := k;
      best_cycles := b.cycles
    end
  done;
  !best

let cycles_per_row b w =
  if w.rows = 0 then 0.0 else b.cycles /. float_of_int w.rows

let time_per_row_us ?(ghz = 3.5) b w = cycles_per_row b w /. (ghz *. 1000.0)

let pp_breakdown fmt b =
  let pct x = 100.0 *. x /. Float.max 1e-9 b.cycles in
  Format.fprintf fmt
    "cycles=%.0f inst=%.0f | retiring %.0f%% frontend %.0f%% bad-spec %.0f%% mem %.0f%% core %.0f%%"
    b.cycles b.instructions (pct b.retiring) (pct b.frontend)
    (pct b.bad_speculation) (pct b.backend_memory) (pct b.backend_core)
