(** Set-associative LRU cache simulator.

    Models a single cache level (we use it for the L1D). The profiler feeds
    it the byte addresses the compiled walk touches; the hit/miss counts
    drive the memory-stall component of the cost model. *)

type t

type stats = {
  accesses : int;
  hits : int;
  misses : int;
}

val create : ?line_bytes:int -> ?ways:int -> size_bytes:int -> unit -> t
(** Defaults: 64-byte lines, 8 ways. [size_bytes] must be a multiple of
    [line_bytes * ways]. *)

val access : t -> int -> bool
(** [access t addr] touches one byte address; returns [true] on hit and
    updates LRU state. *)

val access_range : t -> int -> int -> unit
(** [access_range t addr len] touches every line overlapping
    [addr, addr+len). *)

val stats : t -> stats
val reset : t -> unit
val reset_stats : t -> unit
(** Zero the hit/miss counters but keep the cached lines — used to measure
    steady-state miss rates after a warm-up pass. *)

val miss_rate : t -> float
