let speedup (config : Config.t) ?(max_effective_cores = max_int) ~threads () =
  if threads <= 1 then 1.0
  else begin
    let threads = min threads max_effective_cores in
    let physical = min threads config.Config.cores in
    let smt_extra =
      let logical_cap = config.Config.cores * config.Config.smt_threads in
      let extra = min threads logical_cap - physical in
      float_of_int (max 0 extra) *. config.Config.smt_yield
    in
    let raw = float_of_int physical +. smt_extra in
    let overhead =
      1.0 +. (config.Config.parallel_overhead *. log (float_of_int threads) /. log 2.0)
    in
    Float.max 1.0 (raw /. overhead)
  end

let cycles config ?max_effective_cores ~threads single =
  single /. speedup config ?max_effective_cores ~threads ()
