(** CPU target descriptions.

    The cost model is parametric over a small set of microarchitectural
    constants; the two shipped configurations mirror the paper's testbeds.
    The load-bearing difference is the {e gather} implementation: Rocket
    Lake executes AVX2 gathers far faster than Zen 2, which is why the
    paper finds larger tile sizes optimal on Intel (§VI-A). *)

type t = {
  name : string;
  issue_width : float;  (** µops issued per cycle *)
  branch_miss_penalty : float;  (** cycles *)
  predicate_mispredict_rate : float;
      (** misprediction probability of a data-dependent node-predicate
          branch (scalar walks) *)
  l1_size_bytes : int;
  l1_ways : int;
  l1_line_bytes : int;
  l1_miss_penalty : float;  (** cycles to L2 *)
  memory_overlap : float;
      (** fraction of miss latency hidden by out-of-order overlap, 0..1 *)
  icache_bytes : int;
  frontend_miss_penalty : float;
      (** cycles charged per instruction when code overflows the I-cache *)
  cores : int;
  smt_threads : int;  (** logical threads per core *)
  smt_yield : float;  (** extra throughput from the second SMT thread *)
  parallel_overhead : float;
      (** per-thread fork/join overhead factor used by the multicore model *)
  gather_latency : float;  (** the Intel-vs-AMD differentiator *)
  gather_uops : float;
  ooo_walk_overlap : float;
      (** independent adjacent walks the out-of-order window overlaps even
          without explicit interleaving *)
  loop_exit_mispredict_rate : float;
      (** probability the walk loop's exit branch mispredicts *)
  l2_size_bytes : int;
  l2_spill_penalty : float;
      (** multiplier on the L1 miss penalty once the model working set
          spills past L2 (captures L3/TLB pressure of bloated layouts) *)
  nominal_mhz : float;
      (** nominal clock used to convert modeled cycles into (virtual)
          microseconds — every virtual-time figure (Perf, the serving
          simulator's service model) goes through {!us_of_cycles}, so a
          target's simulated clock is declared here, not hardcoded at the
          conversion sites *)
  int_regs : int;
      (** architectural integer registers a resident tree-top prefix can
          occupy before spilling (the register-pressure budget of the
          quantized fast path) *)
  resident_step_latency : float;
      (** serial cycles per register-resident walk level — compare +
          select over baked immediates, replacing the memory-phase
          load/LUT chain for the first [k] levels *)
  resident_spill_penalty : float;
      (** multiplier on the resident chain once a prefix's register
          demand exceeds {!int_regs} (spilled thresholds reload from the
          stack) *)
}

val us_of_cycles : t -> float -> float
(** [us_of_cycles t cycles] = cycles / nominal_mhz: modeled cycles as
    virtual microseconds at the target's nominal clock. *)

val op_latency : t -> Tb_lir.Ops.op -> float
(** Serial result latency of an op on this target. *)

val op_uops : t -> Tb_lir.Ops.op -> float
(** Issue bandwidth an op consumes. *)

val intel_rocket_lake : t
(** Modeled after the Core i9-11900K testbed (8C/16T, fast gather). *)

val amd_ryzen7 : t
(** Modeled after the Ryzen 7 4700G testbed (8C/16T, microcoded gather). *)

val targets : t list
val by_name : string -> t
(** @raise Not_found for unknown target names. *)
