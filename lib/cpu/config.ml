module Ops = Tb_lir.Ops

type t = {
  name : string;
  issue_width : float;
  branch_miss_penalty : float;
  predicate_mispredict_rate : float;
  l1_size_bytes : int;
  l1_ways : int;
  l1_line_bytes : int;
  l1_miss_penalty : float;
  memory_overlap : float;
  icache_bytes : int;
  frontend_miss_penalty : float;
  cores : int;
  smt_threads : int;
  smt_yield : float;
  parallel_overhead : float;
  gather_latency : float;
  gather_uops : float;
  ooo_walk_overlap : float;
  loop_exit_mispredict_rate : float;
  l2_size_bytes : int;
  l2_spill_penalty : float;
  nominal_mhz : float;
  int_regs : int;
  resident_step_latency : float;
  resident_spill_penalty : float;
}

let us_of_cycles t cycles = cycles /. t.nominal_mhz

let op_latency t (op : Ops.op) =
  match op with
  | Ops.Vload_thresholds | Ops.Vload_features -> 5.0
  | Ops.Gather_row -> t.gather_latency
  | Ops.Vcompare -> 3.0
  | Ops.Pack_mask -> 3.0
  | Ops.Load_shape_id | Ops.Load_child_ptr -> 4.0
  | Ops.Lut_lookup -> 4.0
  | Ops.Addr_arith -> 1.0
  | Ops.Leaf_check_branch | Ops.Loop_back_branch -> 1.0
  | Ops.Scalar_load_leaf -> 4.0
  | Ops.Accumulate -> 3.0
  | Ops.Scalar_load_threshold | Ops.Scalar_load_feature -> 4.0
  | Ops.Scalar_compare_branch -> 1.0

let op_uops t (op : Ops.op) =
  match op with
  | Ops.Gather_row -> t.gather_uops
  | Ops.Vload_thresholds | Ops.Vload_features -> 1.0
  | Ops.Vcompare | Ops.Pack_mask -> 1.0
  | Ops.Load_shape_id | Ops.Load_child_ptr | Ops.Lut_lookup -> 1.0
  | Ops.Addr_arith -> 1.0
  | Ops.Leaf_check_branch | Ops.Loop_back_branch -> 1.0
  | Ops.Scalar_load_leaf | Ops.Accumulate -> 1.0
  | Ops.Scalar_load_threshold | Ops.Scalar_load_feature -> 1.0
  | Ops.Scalar_compare_branch -> 1.0

let intel_rocket_lake =
  {
    name = "intel-rocket-lake";
    issue_width = 5.0;
    branch_miss_penalty = 17.0;
    predicate_mispredict_rate = 0.12;
    l1_size_bytes = 48 * 1024;
    l1_ways = 12;
    l1_line_bytes = 64;
    l1_miss_penalty = 14.0;
    memory_overlap = 0.65;
    icache_bytes = 32 * 1024;
    frontend_miss_penalty = 1.2;
    cores = 8;
    smt_threads = 2;
    smt_yield = 0.25;
    parallel_overhead = 0.03;
    (* AVX2 vpgatherdd on Rocket Lake is fast. *)
    gather_latency = 14.0;
    gather_uops = 8.0;
    ooo_walk_overlap = 4.0;
    loop_exit_mispredict_rate = 0.5;
    l2_size_bytes = 512 * 1024;
    l2_spill_penalty = 1.5;
    nominal_mhz = 3500.0;
    int_regs = 16;
    resident_step_latency = 2.0;
    resident_spill_penalty = 2.5;
  }

let amd_ryzen7 =
  {
    name = "amd-ryzen7";
    issue_width = 5.0;
    branch_miss_penalty = 19.0;
    predicate_mispredict_rate = 0.12;
    l1_size_bytes = 32 * 1024;
    l1_ways = 8;
    l1_line_bytes = 64;
    l1_miss_penalty = 15.0;
    memory_overlap = 0.65;
    icache_bytes = 32 * 1024;
    frontend_miss_penalty = 1.2;
    cores = 8;
    smt_threads = 2;
    smt_yield = 0.22;
    parallel_overhead = 0.03;
    (* Zen 2 gathers are microcoded: long latency, many µops — the reason
       the paper finds smaller tiles optimal on AMD. *)
    gather_latency = 22.0;
    gather_uops = 12.0;
    ooo_walk_overlap = 4.0;
    loop_exit_mispredict_rate = 0.5;
    l2_size_bytes = 512 * 1024;
    l2_spill_penalty = 1.5;
    nominal_mhz = 3500.0;
    int_regs = 16;
    (* Zen 2's select/cmov chains are a touch slower, so the resident
       prefix pays a slightly higher per-level latency there. *)
    resident_step_latency = 2.5;
    resident_spill_penalty = 2.5;
  }

let targets = [ intel_rocket_lake; amd_ryzen7 ]

let by_name name =
  match List.find_opt (fun t -> t.name = name) targets with
  | Some t -> t
  | None -> raise Not_found
