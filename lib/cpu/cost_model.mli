(** Pipeline cost model: exact dynamic event counts → cycle estimate with a
    top-down stall attribution (retiring / front-end / bad speculation /
    back-end memory / back-end core).

    The model is deliberately simple and fully deterministic:
    - {e retiring} = µops / issue width (useful work);
    - {e back-end core} = dependency-chain latency not hidden by
      instruction-level parallelism (what tree-walk interleaving attacks);
    - {e back-end memory} = L1 misses × penalty, partially overlapped;
    - {e bad speculation} = mispredicted data-dependent predicate branches
      (scalar walks) + one loop-exit miss per leaf-checked walk;
    - {e front-end} = per-instruction fetch penalty once the walk code
      overflows the I-cache (what tree reordering attacks; dominant for
      Treelite-style if-else expansion). *)

type workload = {
  rows : int;
  walks_checked : int;  (** walks executed with termination checks *)
  walks_unrolled : int;
  steps_checked : int;  (** tile steps carrying a leaf check *)
  steps_unchecked : int;  (** unrolled/peeled tile steps *)
  leaf_fetches : int;
  critical_steps : int;
      (** Σ over jam sets of the longest walk in the set — the number of
          steps on the serial critical path after interleaving *)
  l1 : Cache.stats;
  code_bytes : int;
  model_bytes : int;  (** in-memory model size (drives L2-spill penalty) *)
  tile_size : int;
  layout : Tb_lir.Layout.kind;
}

type breakdown = {
  cycles : float;
  instructions : float;
  retiring : float;
  frontend : float;
  bad_speculation : float;
  backend_memory : float;
  backend_core : float;
}

val estimate : Config.t -> workload -> breakdown

val estimate_quant :
  Config.t ->
  workload ->
  qbits:int ->
  resident_k:int ->
  resident_steps:int ->
  resident_tiles:int ->
  breakdown
(** {!estimate} for the integer fast path: the float-layout workload's
    misses and model bytes are rescaled for [qbits]-wide values, the baked
    resident-prefix code is added to the I-cache footprint, and the first
    [resident_steps] of the serial chain run at the target's
    register-resident step latency (spill-penalized once the prefix's
    register demand exceeds [int_regs]) instead of the memory-walk chain. *)

val tune_resident_k :
  Config.t ->
  workload ->
  Tb_lir.Layout.t ->
  walk_depth:int array ->
  qbits:int ->
  max_k:int ->
  int
(** Autotune the resident-prefix depth: argmin of {!estimate_quant} cycles
    over [k = 0..max_k], with per-tree resident steps capped by each
    tree's walk depth and the code-size term fed from
    {!Tb_lir.Layout.resident_tiles}. *)

val cycles_per_row : breakdown -> workload -> float

val time_per_row_us : ?ghz:float -> breakdown -> workload -> float
(** Convert to microseconds per row at a clock rate (default 3.5 GHz) —
    used when printing paper-style "mean µs per row" numbers. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
