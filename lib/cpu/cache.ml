type stats = {
  accesses : int;
  hits : int;
  misses : int;
}

type t = {
  line_bytes : int;
  ways : int;
  num_sets : int;
  (* tags.(set * ways + way); -1 = invalid. *)
  tags : int array;
  (* LRU ordering: age.(set * ways + way); smaller = more recent. *)
  ages : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
}

let create ?(line_bytes = 64) ?(ways = 8) ~size_bytes () =
  if size_bytes mod (line_bytes * ways) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of line_bytes * ways";
  let num_sets = size_bytes / (line_bytes * ways) in
  {
    line_bytes;
    ways;
    num_sets;
    tags = Array.make (num_sets * ways) (-1);
    ages = Array.make (num_sets * ways) 0;
    clock = 0;
    accesses = 0;
    hits = 0;
  }

let access t addr =
  let line = addr / t.line_bytes in
  let set = line mod t.num_sets in
  let base = set * t.ways in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let hit_way = ref (-1) in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) = line then hit_way := w
  done;
  if !hit_way >= 0 then begin
    t.ages.(base + !hit_way) <- t.clock;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    (* Evict the least recently used way. *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if t.ages.(base + w) < t.ages.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- line;
    t.ages.(base + !victim) <- t.clock;
    false
  end

let access_range t addr len =
  let first = addr / t.line_bytes and last = (addr + len - 1) / t.line_bytes in
  for line = first to last do
    ignore (access t (line * t.line_bytes))
  done

let stats t = { accesses = t.accesses; hits = t.hits; misses = t.accesses - t.hits }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int (t.accesses - t.hits) /. float_of_int t.accesses
