(** VTune-style top-down report rendering (paper §VI-E).

    Formats stall-cycle attributions for a set of code variants the way the
    paper discusses them: percentage of cycles spent retiring vs stalled in
    the front-end, on bad speculation, on memory, or on core (dependency)
    stalls, plus dynamic instruction counts. *)

type row = {
  variant : string;
  breakdown : Cost_model.breakdown;
  rows : int;  (** batch size the breakdown covers, for per-row reporting *)
}

val table : row list -> Tb_util.Table.t
(** One table row per variant; cycles and instructions are reported per
    input row, stall components as percentages of total cycles. *)

val pct : Cost_model.breakdown -> float -> float
(** [pct b component] as a percentage of [b.cycles]. *)
