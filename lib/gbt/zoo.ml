module Dataset = Tb_data.Dataset
module Generators = Tb_data.Generators

type spec = {
  name : string;
  num_rounds : int;
  max_depth : int;
  paper_features : int;
  paper_trees : int;
  paper_leaf_biased : int;
  train_params : Train.params;
  dataset_rows : int;
}

type entry = {
  spec : spec;
  forest : Tb_model.Forest.t;
  train_data : Dataset.t;
  test_data : Dataset.t;
}

let default_cache_dir = "_models"

let mk name ~rounds ~depth ~features ~trees ~biased ~rows
    ?(lr = 0.1) ?(subsample = 1.0) ?(colsample = 1.0) ?(max_bins = 32)
    ?(min_child_weight = 1.0) () =
  {
    name;
    num_rounds = rounds;
    max_depth = depth;
    paper_features = features;
    paper_trees = trees;
    paper_leaf_biased = biased;
    dataset_rows = rows;
    train_params =
      {
        Train.default_params with
        num_rounds = rounds;
        max_depth = depth;
        learning_rate = lr;
        subsample;
        colsample;
        max_bins;
        min_child_weight;
        seed = 1000 + Hashtbl.hash name mod 1000;
      };
  }

let specs =
  [
    mk "abalone" ~rounds:1000 ~depth:7 ~features:8 ~trees:1000 ~biased:438
      ~rows:4200 ~lr:0.02 ~subsample:0.9 ~colsample:0.3 ~min_child_weight:0.1 ();
    mk "airline" ~rounds:100 ~depth:9 ~features:13 ~trees:100 ~biased:8
      ~rows:4000 ~subsample:0.7 ();
    mk "airline-ohe" ~rounds:1000 ~depth:9 ~features:692 ~trees:1000 ~biased:976
      ~rows:6000 ~lr:0.02 ~subsample:0.5 ~colsample:0.12 ~min_child_weight:0.1 ();
    mk "covtype" ~rounds:800 ~depth:9 ~features:54 ~trees:800 ~biased:283
      ~rows:4000 ~lr:0.02 ~subsample:0.7 ~colsample:0.25 ~min_child_weight:0.1 ();
    mk "epsilon" ~rounds:100 ~depth:9 ~features:2000 ~trees:100 ~biased:0
      ~rows:1200 ~colsample:0.1 ();
    mk "letter" ~rounds:100 ~depth:7 ~features:16 ~trees:2600 ~biased:0
      ~rows:4000 ~subsample:0.4 ~colsample:0.6 ();
    mk "higgs" ~rounds:100 ~depth:9 ~features:28 ~trees:100 ~biased:8
      ~rows:4000 ~subsample:0.7 ();
    mk "year" ~rounds:100 ~depth:9 ~features:90 ~trees:100 ~biased:0
      ~rows:3000 ~colsample:0.5 ();
  ]

let spec name =
  match List.find_opt (fun s -> s.name = name) specs with
  | Some s -> s
  | None -> raise Not_found

let dataset s =
  let rng = Tb_util.Prng.create (7 + Hashtbl.hash s.name) in
  Generators.by_name s.name ~rows:s.dataset_rows rng

let split_entry s forest =
  let ds = dataset s in
  let split_rng = Tb_util.Prng.create (31 + Hashtbl.hash s.name) in
  let train_data, test_data = Dataset.split ds ~train_fraction:0.8 split_rng in
  { spec = s; forest; train_data; test_data }

let model_path cache_dir s = Filename.concat cache_dir (s.name ^ ".json")

let get ?(cache_dir = default_cache_dir) name =
  let s = spec name in
  let path = model_path cache_dir s in
  if Sys.file_exists path then split_entry s (Tb_model.Serialize.of_file path)
  else begin
    let ds = dataset s in
    let split_rng = Tb_util.Prng.create (31 + Hashtbl.hash s.name) in
    let train_data, test_data = Dataset.split ds ~train_fraction:0.8 split_rng in
    let forest = Train.fit ~params:s.train_params train_data in
    if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755;
    Tb_model.Serialize.to_file path forest;
    { spec = s; forest; train_data; test_data }
  end

let all ?cache_dir () = List.map (fun s -> get ?cache_dir s.name) specs
