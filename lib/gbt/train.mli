(** Gradient-boosting driver: fits a {!Tb_model.Forest.t} to a dataset.

    Regression uses squared loss, binary uses logistic loss, and multiclass
    trains one one-vs-rest tree per class per round (XGBoost's layout, so
    tree [i] contributes to class [i mod k]). *)

type params = {
  num_rounds : int;
      (** boosting rounds; total trees = rounds × classes for multiclass *)
  learning_rate : float;
  max_depth : int;
  min_child_weight : float;
  lambda : float;
  gamma : float;
  subsample : float;  (** row fraction per tree *)
  colsample : float;  (** feature fraction per tree *)
  max_bins : int;
  seed : int;
}

val default_params : params
(** 100 rounds, lr 0.1, depth 6, 32 bins, no subsampling, seed 42. *)

val fit : ?params:params -> Tb_data.Dataset.t -> Tb_model.Forest.t
(** Train on the full dataset. The forest's task, feature count and name are
    taken from the dataset. *)

val rmse : Tb_model.Forest.t -> Tb_data.Dataset.t -> float
(** Root-mean-square error of raw margins vs labels (regression). *)

val accuracy : Tb_model.Forest.t -> Tb_data.Dataset.t -> float
(** Classification accuracy (binary or multiclass). *)
