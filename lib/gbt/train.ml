module Forest = Tb_model.Forest
module Tree = Tb_model.Tree
module Dataset = Tb_data.Dataset
module Prng = Tb_util.Prng

type params = {
  num_rounds : int;
  learning_rate : float;
  max_depth : int;
  min_child_weight : float;
  lambda : float;
  gamma : float;
  subsample : float;
  colsample : float;
  max_bins : int;
  seed : int;
}

let default_params =
  {
    num_rounds = 100;
    learning_rate = 0.1;
    max_depth = 6;
    min_child_weight = 1.0;
    lambda = 1.0;
    gamma = 0.0;
    subsample = 1.0;
    colsample = 1.0;
    max_bins = 32;
    seed = 42;
  }

let builder_params p =
  {
    Tree_builder.max_depth = p.max_depth;
    min_child_weight = p.min_child_weight;
    lambda = p.lambda;
    gamma = p.gamma;
    colsample = p.colsample;
    min_rows = 2;
    leaf_scale = p.learning_rate;
  }

let subsample_rows rng fraction n =
  if fraction >= 1.0 then Array.init n Fun.id
  else begin
    let rows = ref [] in
    for r = n - 1 downto 0 do
      if Prng.uniform rng < fraction then rows := r :: !rows
    done;
    match !rows with
    | [] -> [| Prng.int rng n |]
    | rs -> Array.of_list rs
  end

let fit ?(params = default_params) (ds : Dataset.t) =
  let rng = Prng.create params.seed in
  let n = Dataset.num_rows ds in
  let binning = Binning.create ~max_bins:params.max_bins ds.features in
  let bp = builder_params params in
  let losses =
    match ds.task with
    | Forest.Regression -> [| Loss.squared |]
    | Forest.Binary_logistic -> [| Loss.logistic |]
    | Forest.Multiclass k -> Array.init k (fun c -> Loss.one_vs_rest ~target_class:c)
  in
  let num_outputs = Array.length losses in
  let base_scores =
    Array.map (fun (loss : Loss.t) -> loss.base_score ~labels:ds.labels) losses
  in
  (* One margin vector per output class, updated after each tree. *)
  let margins = Array.map (fun b -> Array.make n b) base_scores in
  let grad = Array.make n 0.0 in
  let hess = Array.make n 0.0 in
  let trees = ref [] in
  for _round = 1 to params.num_rounds do
    for c = 0 to num_outputs - 1 do
      let loss = losses.(c) in
      let margin = margins.(c) in
      for r = 0 to n - 1 do
        let g, h = loss.grad_hess ~pred:margin.(r) ~label:ds.labels.(r) in
        grad.(r) <- g;
        hess.(r) <- h
      done;
      let rows = subsample_rows rng params.subsample n in
      let tree = Tree_builder.build bp binning ~grad ~hess ~rows ~rng in
      trees := tree :: !trees;
      for r = 0 to n - 1 do
        margin.(r) <- margin.(r) +. Tree.predict tree ds.features.(r)
      done
    done
  done;
  let trees = Array.of_list (List.rev !trees) in
  (* Multiclass base scores differ per class; fold the shared part into
     base_score and the per-class remainder into one constant leaf... for
     simplicity we use a single base_score only when all classes share it,
     otherwise we prepend per-class constant-leaf trees. *)
  let all_same =
    Array.for_all (fun b -> Float.equal b base_scores.(0)) base_scores
  in
  if all_same then
    Forest.make ~name:ds.name ~base_score:base_scores.(0) ~task:ds.task
      ~num_features:ds.num_features trees
  else begin
    let constant_trees = Array.map (fun b -> Tree.Leaf b) base_scores in
    Forest.make ~name:ds.name ~base_score:0.0 ~task:ds.task
      ~num_features:ds.num_features
      (Array.append constant_trees trees)
  end

let rmse forest (ds : Dataset.t) =
  let n = Dataset.num_rows ds in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    let p = Forest.predict_single forest ds.features.(r) in
    let e = p -. ds.labels.(r) in
    acc := !acc +. (e *. e)
  done;
  sqrt (!acc /. float_of_int n)

let accuracy forest (ds : Dataset.t) =
  let n = Dataset.num_rows ds in
  let correct = ref 0 in
  for r = 0 to n - 1 do
    if Forest.predict_class forest ds.features.(r) = int_of_float ds.labels.(r) then
      incr correct
  done;
  float_of_int !correct /. float_of_int n
