(** Greedy histogram-based construction of one regression tree on a
    gradient/hessian vector (one boosting step). *)

type params = {
  max_depth : int;
  min_child_weight : float;  (** minimum hessian sum per child *)
  lambda : float;  (** L2 regularization on leaf weights *)
  gamma : float;  (** minimum split gain *)
  colsample : float;  (** fraction of features considered per tree *)
  min_rows : int;  (** minimum rows to attempt a split *)
  leaf_scale : float;  (** learning rate applied to leaf weights *)
}

val default_params : params
(** depth 6, min_child_weight 1.0, lambda 1.0, gamma 0.0, colsample 1.0,
    min_rows 2, leaf_scale 0.1. *)

val build :
  params ->
  Binning.t ->
  grad:float array ->
  hess:float array ->
  rows:int array ->
  rng:Tb_util.Prng.t ->
  Tb_model.Tree.t
(** Grow one tree over the given row subset. The returned tree predicts
    (scaled) Newton leaf weights [-G/(H + lambda) * leaf_scale]. *)
