module Tree = Tb_model.Tree

type params = {
  max_depth : int;
  min_child_weight : float;
  lambda : float;
  gamma : float;
  colsample : float;
  min_rows : int;
  leaf_scale : float;
}

let default_params =
  {
    max_depth = 6;
    min_child_weight = 1.0;
    lambda = 1.0;
    gamma = 0.0;
    colsample = 1.0;
    min_rows = 2;
    leaf_scale = 0.1;
  }

type split = {
  feature : int;
  bin : int;  (** left = bins 0..bin *)
  gain : float;
}

let sample_features rng colsample num_features =
  let k =
    max 1 (int_of_float (ceil (colsample *. float_of_int num_features)))
  in
  if k >= num_features then Array.init num_features Fun.id
  else begin
    (* Partial Fisher–Yates: the first k entries are a uniform sample
       without replacement. *)
    let idx = Array.init num_features Fun.id in
    for i = 0 to k - 1 do
      let j = i + Tb_util.Prng.int rng (num_features - i) in
      let tmp = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- tmp
    done;
    Array.sub idx 0 k
  end

let build params binning ~grad ~hess ~rows ~rng =
  let features = sample_features rng params.colsample binning.Binning.num_features in
  let leaf_value g h = -.g /. (h +. params.lambda) *. params.leaf_scale in
  let score g h = g *. g /. (h +. params.lambda) in
  let rec grow depth rows g_total h_total =
    let n = Array.length rows in
    if depth >= params.max_depth || n < params.min_rows then
      Tree.Leaf (leaf_value g_total h_total)
    else begin
      let parent_score = score g_total h_total in
      let best = ref None in
      Array.iter
        (fun f ->
          let nb = Binning.num_bins binning f in
          if nb > 1 then begin
            let hist_g = Array.make nb 0.0 in
            let hist_h = Array.make nb 0.0 in
            let hist_n = Array.make nb 0 in
            let col = binning.Binning.binned.(f) in
            Array.iter
              (fun r ->
                let b = col.(r) in
                hist_g.(b) <- hist_g.(b) +. grad.(r);
                hist_h.(b) <- hist_h.(b) +. hess.(r);
                hist_n.(b) <- hist_n.(b) + 1)
              rows;
            let gl = ref 0.0 and hl = ref 0.0 and nl = ref 0 in
            for b = 0 to nb - 2 do
              gl := !gl +. hist_g.(b);
              hl := !hl +. hist_h.(b);
              nl := !nl + hist_n.(b);
              let gr = g_total -. !gl and hr = h_total -. !hl in
              let nr = n - !nl in
              if
                !nl > 0 && nr > 0
                && !hl >= params.min_child_weight
                && hr >= params.min_child_weight
              then begin
                let gain = score !gl !hl +. score gr hr -. parent_score in
                match !best with
                | Some s when s.gain >= gain -> ()
                | _ -> best := Some { feature = f; bin = b; gain }
              end
            done
          end)
        features;
      match !best with
      | Some s when s.gain > params.gamma ->
        let col = binning.Binning.binned.(s.feature) in
        let left_rows = Array.of_list (List.filter (fun r -> col.(r) <= s.bin) (Array.to_list rows)) in
        let right_rows = Array.of_list (List.filter (fun r -> col.(r) > s.bin) (Array.to_list rows)) in
        let sum_gh rs =
          Array.fold_left
            (fun (g, h) r -> (g +. grad.(r), h +. hess.(r)))
            (0.0, 0.0) rs
        in
        let gl, hl = sum_gh left_rows in
        let gr, hr = (g_total -. gl, h_total -. hl) in
        Tree.Node
          {
            feature = s.feature;
            threshold = Binning.threshold_of_bin binning ~feature:s.feature ~bin:s.bin;
            left = grow (depth + 1) left_rows gl hl;
            right = grow (depth + 1) right_rows gr hr;
          }
      | Some _ | None -> Tree.Leaf (leaf_value g_total h_total)
    end
  in
  let g_total, h_total =
    Array.fold_left (fun (g, h) r -> (g +. grad.(r), h +. hess.(r))) (0.0, 0.0) rows
  in
  grow 0 rows g_total h_total
