type t = {
  name : string;
  grad_hess : pred:float -> label:float -> float * float;
  base_score : labels:float array -> float;
}

let squared =
  {
    name = "squared";
    grad_hess = (fun ~pred ~label -> (pred -. label, 1.0));
    base_score = (fun ~labels -> Tb_util.Stats.mean labels);
  }

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let logistic_of ~name ~is_positive =
  {
    name;
    grad_hess =
      (fun ~pred ~label ->
        let y = if is_positive label then 1.0 else 0.0 in
        let p = sigmoid pred in
        (p -. y, max 1e-6 (p *. (1.0 -. p))));
    base_score =
      (fun ~labels ->
        let pos =
          Array.fold_left (fun acc l -> if is_positive l then acc +. 1.0 else acc) 0.0 labels
        in
        let n = float_of_int (Array.length labels) in
        let p = min 0.999 (max 0.001 (pos /. n)) in
        log (p /. (1.0 -. p)));
  }

let logistic = logistic_of ~name:"logistic" ~is_positive:(fun l -> l >= 0.5)

let one_vs_rest ~target_class =
  logistic_of
    ~name:(Printf.sprintf "ovr-%d" target_class)
    ~is_positive:(fun l -> int_of_float l = target_class)
