(** Feature quantile binning for histogram-based split finding.

    Each feature is discretized at (approximate) quantile cut points; split
    finding then scans gradient histograms instead of sorted feature values,
    as in LightGBM / XGBoost 'hist'. *)

type t = {
  cuts : float array array;
      (** [cuts.(f)] are feature [f]'s sorted cut points. A value [v] falls
          in bin [b] = number of cut points <= [v], so feature [f] has
          [Array.length cuts.(f) + 1] bins. *)
  binned : int array array;
      (** column-major: [binned.(f).(row)] is the bin of feature [f] in
          [row]. *)
  num_rows : int;
  num_features : int;
}

val create : ?max_bins:int -> float array array -> t
(** [create rows] bins a row-major feature matrix with at most [max_bins]
    bins per feature (default 32). *)

val num_bins : t -> int -> int

val threshold_of_bin : t -> feature:int -> bin:int -> float
(** The threshold [thr] such that the predicate [v < thr] separates bins
    [0..bin] (left) from [bin+1..] (right): the cut point at index [bin].
    [bin] must be < [Array.length cuts.(feature)]. *)

val bin_of_value : t -> feature:int -> float -> int
(** Bin index of a raw value under this binning. *)
