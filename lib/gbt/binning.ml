type t = {
  cuts : float array array;
  binned : int array array;
  num_rows : int;
  num_features : int;
}

(* Distinct quantile cut points of a column. Cut points are placed *between*
   distinct values so that equal raw values always share a bin. *)
let column_cuts max_bins column =
  let sorted = Array.copy column in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let distinct = ref [] in
  for i = n - 1 downto 0 do
    match !distinct with
    | v :: _ when Float.equal v sorted.(i) -> ()
    | _ -> distinct := sorted.(i) :: !distinct
  done;
  let distinct = Array.of_list !distinct in
  let d = Array.length distinct in
  if d <= 1 then [||]
  else if d <= max_bins then
    (* One bin per distinct value; cut between consecutive values. *)
    Array.init (d - 1) (fun i -> (distinct.(i) +. distinct.(i + 1)) /. 2.0)
  else begin
    let cuts = ref [] in
    for q = max_bins - 1 downto 1 do
      let pos = q * n / max_bins in
      let v = sorted.(min (n - 1) pos) in
      (* Midpoint between this quantile value and its successor value, so
         the cut never equals a data value. *)
      let next =
        let rec find i = if i < n && sorted.(i) <= v then find (i + 1) else i in
        let i = find 0 in
        if i < n then sorted.(i) else v +. 1.0
      in
      let cut = (v +. next) /. 2.0 in
      match !cuts with
      | c :: _ when c <= cut -> ()
      | _ -> cuts := cut :: !cuts
    done;
    Array.of_list !cuts
  end

let bin_of_cuts cuts v =
  (* Number of cut points <= v, by binary search. *)
  let lo = ref 0 and hi = ref (Array.length cuts) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cuts.(mid) <= v then lo := mid + 1 else hi := mid
  done;
  !lo

let create ?(max_bins = 32) rows =
  let num_rows = Array.length rows in
  if num_rows = 0 then invalid_arg "Binning.create: empty matrix";
  let num_features = Array.length rows.(0) in
  let cuts =
    Array.init num_features (fun f ->
        column_cuts max_bins (Array.init num_rows (fun r -> rows.(r).(f))))
  in
  let binned =
    Array.init num_features (fun f ->
        Array.init num_rows (fun r -> bin_of_cuts cuts.(f) rows.(r).(f)))
  in
  { cuts; binned; num_rows; num_features }

let num_bins t f = Array.length t.cuts.(f) + 1

let threshold_of_bin t ~feature ~bin = t.cuts.(feature).(bin)

let bin_of_value t ~feature v = bin_of_cuts t.cuts.(feature) v
