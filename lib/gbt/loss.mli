(** Training losses: per-example gradient/hessian of the objective with
    respect to the current raw margin, in XGBoost's second-order style. *)

type t = {
  name : string;
  grad_hess : pred:float -> label:float -> float * float;
      (** (first derivative, second derivative) at the current margin *)
  base_score : labels:float array -> float;
      (** constant initial margin minimizing the loss *)
}

val squared : t
(** 1/2 (pred - label)^2 — regression. *)

val logistic : t
(** log(1 + e^{-y·pred}) with y in {0,1} encoded labels — binary
    classification. *)

val one_vs_rest : target_class:int -> t
(** Logistic loss against the indicator [label = target_class] — used per
    class for multiclass training. *)
