(** The benchmark-model zoo: the eight Table I models, trained on the
    synthetic datasets with the paper's model shapes (#trees, max depth) and
    cached on disk so experiments don't retrain.

    Hyperparameters are chosen per benchmark so that trained models match
    Table I's #trees and max-depth columns; subsampling keeps training fast
    without changing the models' structural character. *)

type spec = {
  name : string;
  num_rounds : int;
  max_depth : int;
  paper_features : int;
  paper_trees : int;  (** #Trees column of Table I *)
  paper_leaf_biased : int;  (** last column of Table I, for reference *)
  train_params : Train.params;
  dataset_rows : int;
}

type entry = {
  spec : spec;
  forest : Tb_model.Forest.t;
  train_data : Tb_data.Dataset.t;
      (** used to estimate leaf probabilities (the paper uses training data
          for tree statistics, §III-B2) *)
  test_data : Tb_data.Dataset.t;
}

val specs : spec list
(** Table I order: abalone, airline, airline-ohe, covtype, epsilon, letter,
    higgs, year. *)

val spec : string -> spec
(** @raise Not_found for unknown benchmark names. *)

val dataset : spec -> Tb_data.Dataset.t
(** Regenerate the benchmark's dataset (deterministic). *)

val get : ?cache_dir:string -> string -> entry
(** Load from [cache_dir] (default ["_models"]) or train and cache. The
    dataset is regenerated deterministically either way. *)

val all : ?cache_dir:string -> unit -> entry list

val default_cache_dir : string
