type t = {
  name : string;
  features : float array array;
  labels : float array;
  num_features : int;
  task : Tb_model.Forest.task;
}

let make ~name ~task features labels =
  let n = Array.length features in
  if n = 0 then invalid_arg "Dataset.make: empty dataset";
  if Array.length labels <> n then invalid_arg "Dataset.make: label count mismatch";
  let width = Array.length features.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> width then invalid_arg "Dataset.make: ragged rows")
    features;
  (match task with
  | Tb_model.Forest.Multiclass k ->
    Array.iter
      (fun l ->
        if not (Float.is_integer l) || l < 0.0 || l >= float_of_int k then
          invalid_arg "Dataset.make: class label out of range")
      labels
  | Tb_model.Forest.Binary_logistic ->
    Array.iter
      (fun l ->
        if l <> 0.0 && l <> 1.0 then invalid_arg "Dataset.make: binary label not 0/1")
      labels
  | Tb_model.Forest.Regression -> ());
  { name; features; labels; num_features = width; task }

let num_rows t = Array.length t.features

let split t ~train_fraction rng =
  let n = num_rows t in
  let order = Array.init n Fun.id in
  Tb_util.Prng.shuffle rng order;
  let n_train = int_of_float (train_fraction *. float_of_int n) in
  let n_train = max 1 (min (n - 1) n_train) in
  let pick lo hi =
    let feats = Array.init (hi - lo) (fun i -> t.features.(order.(lo + i))) in
    let labs = Array.init (hi - lo) (fun i -> t.labels.(order.(lo + i))) in
    make ~name:t.name ~task:t.task feats labs
  in
  (pick 0 n_train, pick n_train n)

let subsample_rows t n rng =
  Array.init n (fun _ -> t.features.(Tb_util.Prng.int rng (num_rows t)))
