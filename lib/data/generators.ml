module Prng = Tb_util.Prng
module Forest = Tb_model.Forest

(* Zipf-distributed category sampler: frequency of category i is
   proportional to 1/(i+1)^s. Heavy skew is what makes one-hot models
   leaf-biased: the common categories dominate the reached paths. *)
let zipf_sampler rng cardinality s =
  let weights =
    Array.init cardinality (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cumulative = Array.make cardinality 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cumulative.(i) <- !acc)
    weights;
  fun () ->
    let u = Prng.uniform rng in
    let rec find i = if i >= cardinality - 1 || u <= cumulative.(i) then i else find (i + 1) in
    find 0

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let bernoulli rng p = if Prng.uniform rng < p then 1.0 else 0.0

(* Head-heavy row sampler. Production categorical traffic is dominated by a
   small set of recurring feature combinations; we model this by drawing a
   fraction [head_mass] of rows verbatim from [templates] (with Zipf-skewed
   template popularity) and the rest from [diffuse ()]. Because template
   rows are exact duplicates, a trained tree cannot split them apart: each
   template's mass lands in a single leaf while the diffuse tail fragments
   into many small leaves. This is precisely the structure that makes trees
   leaf-biased at the paper's ⟨α = 0.075, β = 0.9⟩ threshold. *)
let head_heavy_rows rng ~head_mass ~templates ~diffuse rows =
  let num_templates = Array.length templates in
  let pick_template = zipf_sampler rng num_templates 1.1 in
  Array.init rows (fun _ ->
      if Prng.uniform rng < head_mass then begin
        let t = pick_template () in
        let row, label_of = templates.(t) in
        (Array.copy row, label_of ())
      end
      else diffuse ())

(* ------------------------------------------------------------------ *)
(* abalone: physical measurements of a shellfish; rings (age) target.  *)
(* ------------------------------------------------------------------ *)

let abalone_measurements rng =
  (* Lognormal latent size drives correlated physical measurements. *)
  let size = exp (0.5 *. Prng.gaussian rng) in
  let sex = float_of_int (Prng.int rng 3) in
  let row =
    [|
      sex;
      size *. (1.0 +. (0.05 *. Prng.gaussian rng));
      0.8 *. size *. (1.0 +. (0.05 *. Prng.gaussian rng));
      0.3 *. size *. (1.0 +. (0.08 *. Prng.gaussian rng));
      (size ** 2.8) *. (1.0 +. (0.1 *. Prng.gaussian rng));
      0.45 *. (size ** 2.8) *. (1.0 +. (0.08 *. Prng.gaussian rng));
      0.22 *. (size ** 2.8) *. (1.0 +. (0.08 *. Prng.gaussian rng));
      0.28 *. (size ** 2.8) *. (1.0 +. (0.08 *. Prng.gaussian rng));
    |]
  in
  let rings = 3.0 +. (8.0 *. log (1.0 +. size)) +. (0.5 *. sex) in
  (row, rings)

let abalone ?(rows = 4200) rng =
  (* Moderate leaf bias (Table I: 438/1000): 93% of the mass comes from a
     few recurring measurement cohorts (two base cohorts, each with a close
     variant); the rest is a diffuse continuum that fragments trained trees
     into many small leaves. Whether a given tree separates a cohort from
     its variant depends on its feature subsample, which spreads leaf bias
     over roughly half the forest. *)
  let base_templates =
    Array.init 2 (fun _ ->
        let row, rings = abalone_measurements rng in
        (row, rings))
  in
  (* Each base cohort also appears in a close variant differing in one
     measurement; whether a tree separates the pair depends on the feature
     subsample, which is what spreads leaf bias over roughly half the
     forest. *)
  let templates =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (row, rings) ->
              let variant = Array.copy row in
              variant.(3) <- variant.(3) *. 1.5;
              [|
                (row, fun () -> rings +. (0.2 *. Prng.gaussian rng));
                (variant, fun () -> rings +. 0.8 +. (0.2 *. Prng.gaussian rng));
              |])
            base_templates))
  in
  let diffuse () =
    let row, rings = abalone_measurements rng in
    (row, rings +. Prng.gaussian rng)
  in
  let pairs = head_heavy_rows rng ~head_mass:0.93 ~templates ~diffuse rows in
  Dataset.make ~name:"abalone" ~task:Forest.Regression
    (Array.map fst pairs) (Array.map snd pairs)

(* ------------------------------------------------------------------ *)
(* airline: flight-delay prediction. Shared generative process for the *)
(* integer-coded and one-hot variants.                                 *)
(* ------------------------------------------------------------------ *)

type flight = {
  month : int;        (* 12 *)
  day_of_week : int;  (* 7 *)
  carrier : int;      (* 18, Zipf *)
  origin : int;       (* 280, Zipf *)
  dest : int;         (* 280, Zipf *)
  cabin : int;        (* 3 *)
  dep_hour : float;
  distance : float;
  taxi : float;
  age : float;
  load : float;
  weather : float;
  congestion : float;
}

let flight_cardinalities = [ 12; 7; 18; 280; 280; 3 ]

let gen_flight rng carrier_s origin_s dest_s =
  let month = Prng.int rng 12 in
  let day_of_week = Prng.int rng 7 in
  let carrier = carrier_s () in
  let origin = origin_s () in
  let dest = dest_s () in
  let cabin = Prng.int rng 3 in
  let dep_hour = 5.0 +. (18.0 *. Prng.uniform rng) in
  let distance = 100.0 +. (2400.0 *. (Prng.uniform rng ** 2.0)) in
  let taxi = 5.0 +. (25.0 *. Prng.uniform rng) in
  let age = 1.0 +. (25.0 *. Prng.uniform rng) in
  let load = 0.4 +. (0.6 *. Prng.uniform rng) in
  let weather = Prng.uniform rng in
  let congestion =
    (* Big hubs (small Zipf index) are congested. *)
    (1.0 /. (1.0 +. float_of_int origin)) +. (0.2 *. Prng.uniform rng)
  in
  { month; day_of_week; carrier; origin; dest; cabin; dep_hour; distance;
    taxi; age; load; weather; congestion }

let flight_delay_prob f =
  let peak = if f.dep_hour > 16.0 && f.dep_hour < 20.0 then 0.8 else 0.0 in
  let hub = if f.origin < 5 then 0.6 else -0.2 in
  let carrier_effect = if f.carrier < 3 then -0.4 else 0.3 in
  let z =
    -1.2 +. peak +. hub +. carrier_effect +. (1.5 *. f.weather)
    +. (1.2 *. f.congestion) +. (0.4 *. f.load)
    +. (0.1 *. float_of_int (f.day_of_week mod 2))
  in
  sigmoid z

let airline ?(rows = 4000) rng =
  let carrier_s = zipf_sampler rng 18 1.1 in
  let origin_s = zipf_sampler rng 280 1.3 in
  let dest_s = zipf_sampler rng 280 1.3 in
  let features = Array.make rows [||] in
  let labels = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let f = gen_flight rng carrier_s origin_s dest_s in
    features.(i) <-
      [|
        float_of_int f.month; float_of_int f.day_of_week; float_of_int f.carrier;
        float_of_int f.origin; float_of_int f.dest; float_of_int f.cabin;
        f.dep_hour; f.distance; f.taxi; f.age; f.load; f.weather; f.congestion;
      |];
    labels.(i) <- bernoulli rng (flight_delay_prob f)
  done;
  Dataset.make ~name:"airline" ~task:Forest.Binary_logistic features labels

(* One-hot layout: 12 + 7 + 18 + 280 + 280 + 3 = 600 indicator columns for
   the categorical fields, then 4 binned indicator groups for dep_hour (24),
   distance (32), taxi (16), age (16) = 88, plus 4 numeric columns (load,
   weather, congestion, distance raw) — 692 features total, as in Table I. *)
let encode_flight_ohe f =
  let cat_width = List.fold_left ( + ) 0 flight_cardinalities in
  let width = cat_width + 24 + 32 + 16 + 16 + 4 in
  assert (width = 692);
  let row = Array.make width 0.0 in
  let offset = ref 0 in
  let one_hot card v =
    row.(!offset + max 0 (min (card - 1) v)) <- 1.0;
    offset := !offset + card
  in
  one_hot 12 f.month;
  one_hot 7 f.day_of_week;
  one_hot 18 f.carrier;
  one_hot 280 f.origin;
  one_hot 280 f.dest;
  one_hot 3 f.cabin;
  one_hot 24 (int_of_float f.dep_hour);
  one_hot 32 (int_of_float (f.distance /. 2500.0 *. 32.0));
  one_hot 16 (int_of_float (f.taxi /. 30.0 *. 16.0));
  one_hot 16 (int_of_float (f.age /. 26.0 *. 16.0));
  row.(!offset) <- f.load;
  row.(!offset + 1) <- f.weather;
  row.(!offset + 2) <- f.congestion;
  row.(!offset + 3) <- f.distance;
  row

let airline_ohe ?(rows = 6000) rng =
  (* Strong leaf bias (Table I: 976/1000): 94% of the traffic repeats 2
     common flight profiles (head-heavy categorical traffic); each profile
     has a near-deterministic delay outcome, so a trained tree keeps each
     profile's mass in one leaf while the diffuse 8% fragments into many
     noisy leaves. *)
  let carrier_s = zipf_sampler rng 18 1.2 in
  let origin_s = zipf_sampler rng 280 1.4 in
  let dest_s = zipf_sampler rng 280 1.4 in
  (* The recurring profiles form a *chain*: variants of one base flight
     that differ only in their departure-hour bin. One-hot encoding means a
     split can only peel a single bin at a time, so the trainer needs a
     chain of splits to tell the variants apart — and because the most
     common variant's delay rate matches the diffuse traffic's, it is the
     least distinguishable and its (heavy) leaf ends up deepest. This is
     the structure that makes probability-based tiling profitable
     (§III-C): the hot path is long, and Algorithm 1 covers it with few
     tiles. *)
  let base = gen_flight rng carrier_s origin_s dest_s in
  let templates =
    Array.init 6 (fun i ->
        let f = { base with dep_hour = 5.5 +. (2.2 *. float_of_int i) } in
        let p =
          if i = 0 then 0.3 (* indistinct from the diffuse mean *)
          else if i mod 2 = 1 then 0.95
          else 0.02
        in
        (encode_flight_ohe f, fun () -> bernoulli rng p))
  in
  let diffuse () =
    let f = gen_flight rng carrier_s origin_s dest_s in
    (encode_flight_ohe f, bernoulli rng (0.15 +. (0.5 *. f.weather)))
  in
  let pairs = head_heavy_rows rng ~head_mass:0.90 ~templates ~diffuse rows in
  Dataset.make ~name:"airline-ohe" ~task:Forest.Binary_logistic
    (Array.map fst pairs) (Array.map snd pairs)

(* ------------------------------------------------------------------ *)
(* covtype: forest cover type from cartographic features (binary       *)
(* variant, as in LIBSVM's covtype.binary).                            *)
(* ------------------------------------------------------------------ *)

let covtype_site rng soil_s =
  let elevation = 1800.0 +. (1600.0 *. Prng.uniform rng) in
  let aspect = 360.0 *. Prng.uniform rng in
  let slope = 35.0 *. (Prng.uniform rng ** 1.5) in
  let h_hydro = 600.0 *. (Prng.uniform rng ** 2.0) in
  let v_hydro = 150.0 *. Prng.gaussian rng in
  let h_road = 4000.0 *. Prng.uniform rng in
  let hill_9 = 180.0 +. (60.0 *. Prng.gaussian rng) in
  let hill_noon = 220.0 +. (30.0 *. Prng.gaussian rng) in
  let hill_3 = 150.0 +. (50.0 *. Prng.gaussian rng) in
  let h_fire = 3000.0 *. Prng.uniform rng in
  let wilderness = Prng.int rng 4 in
  let soil = soil_s () in
  let row = Array.make 54 0.0 in
  row.(0) <- elevation; row.(1) <- aspect; row.(2) <- slope;
  row.(3) <- h_hydro; row.(4) <- v_hydro; row.(5) <- h_road;
  row.(6) <- hill_9; row.(7) <- hill_noon; row.(8) <- hill_3;
  row.(9) <- h_fire;
  row.(10 + wilderness) <- 1.0;
  row.(14 + soil) <- 1.0;
  let z =
    ((elevation -. 2600.0) /. 400.0)
    -. (slope /. 20.0)
    +. (if wilderness = 0 then 0.7 else -0.3)
    +. (if soil < 6 then 0.5 else -0.2)
  in
  (row, z)

let covtype ?(rows = 4000) rng =
  (* Moderate leaf bias (Table I: 283/800): cartographic surveys revisit
     the same map cells — 93% of rows revisit a handful of recurring sites. *)
  let soil_s = zipf_sampler rng 40 0.9 in
  let templates =
    Array.concat
      (List.init 3 (fun _ ->
           let row, z = covtype_site rng soil_s in
           let p = sigmoid (3.0 *. z) in
           let variant = Array.copy row in
           variant.(4) <- variant.(4) +. 300.0;
           let q = sigmoid (3.0 *. (z +. 0.8)) in
           [| (row, fun () -> bernoulli rng p); (variant, fun () -> bernoulli rng q) |]))
  in
  let diffuse () =
    let row, z = covtype_site rng soil_s in
    (row, bernoulli rng (sigmoid (z +. (0.3 *. Prng.gaussian rng))))
  in
  let pairs = head_heavy_rows rng ~head_mass:0.93 ~templates ~diffuse rows in
  Dataset.make ~name:"covtype" ~task:Forest.Binary_logistic
    (Array.map fst pairs) (Array.map snd pairs)

(* ------------------------------------------------------------------ *)
(* epsilon: dense isotropic gaussian features — deliberately NO leaf   *)
(* bias (Fig. 3b): every split divides the data roughly in half.       *)
(* ------------------------------------------------------------------ *)

let epsilon ?(rows = 1200) rng =
  let width = 2000 in
  let w = Array.init width (fun _ -> Prng.gaussian rng /. sqrt (float_of_int width)) in
  let features = Array.make rows [||] in
  let labels = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let row = Array.init width (fun _ -> Prng.gaussian rng) in
    features.(i) <- row;
    let dot = ref 0.0 in
    for j = 0 to width - 1 do
      dot := !dot +. (w.(j) *. row.(j))
    done;
    labels.(i) <- bernoulli rng (sigmoid (3.0 *. !dot))
  done;
  Dataset.make ~name:"epsilon" ~task:Forest.Binary_logistic features labels

(* ------------------------------------------------------------------ *)
(* letter: 26-class recognition from 16 roughly uniform integer        *)
(* features — no leaf bias.                                            *)
(* ------------------------------------------------------------------ *)

let letter ?(rows = 4000) rng =
  let num_classes = 26 in
  let width = 16 in
  (* A fixed prototype per class; features are noisy integer snaps. *)
  let protos =
    Array.init num_classes (fun _ ->
        Array.init width (fun _ -> 2.0 +. (11.0 *. Prng.uniform rng)))
  in
  let features = Array.make rows [||] in
  let labels = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let cls = Prng.int rng num_classes in
    let row =
      Array.init width (fun j ->
          let v = protos.(cls).(j) +. (2.2 *. Prng.gaussian rng) in
          Float.round (max 0.0 (min 15.0 v)))
    in
    features.(i) <- row;
    labels.(i) <- float_of_int cls
  done;
  Dataset.make ~name:"letter" ~task:(Forest.Multiclass num_classes) features labels

(* ------------------------------------------------------------------ *)
(* higgs: particle kinematics (21 low-level + 7 derived features).     *)
(* ------------------------------------------------------------------ *)

let higgs ?(rows = 4000) rng =
  let width = 28 in
  let features = Array.make rows [||] in
  let labels = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let signal = Prng.bool rng in
    let shift = if signal then 0.35 else 0.0 in
    let row = Array.make width 0.0 in
    (* 21 low-level: momenta are exponential-tailed, angles uniform. *)
    for j = 0 to 20 do
      if j mod 3 = 0 then
        row.(j) <- -.log (max 1e-12 (Prng.uniform rng)) *. (1.0 +. shift)
      else row.(j) <- (2.0 *. Prng.uniform rng) -. 1.0 +. (0.1 *. Prng.gaussian rng)
    done;
    (* 7 derived invariant masses: gaussian around a mass peak. *)
    for j = 21 to 27 do
      let peak = if signal then 1.25 else 1.0 in
      row.(j) <- peak +. (0.3 *. Prng.gaussian rng)
    done;
    features.(i) <- row;
    labels.(i) <- (if signal then 1.0 else 0.0)
  done;
  Dataset.make ~name:"higgs" ~task:Forest.Binary_logistic features labels

(* ------------------------------------------------------------------ *)
(* year: audio timbre (12 means + 78 covariances) → release year.      *)
(* ------------------------------------------------------------------ *)

let year ?(rows = 3000) rng =
  let width = 90 in
  let w = Array.init width (fun _ -> Prng.gaussian rng) in
  let features = Array.make rows [||] in
  let labels = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let era = Prng.uniform rng in
    let row =
      Array.init width (fun j ->
          let base = if j < 12 then 4.0 *. Prng.gaussian rng else Prng.gaussian rng in
          base +. (2.0 *. era *. w.(j) /. 10.0))
    in
    features.(i) <- row;
    labels.(i) <- 1960.0 +. (50.0 *. era) +. (3.0 *. Prng.gaussian rng)
  done;
  Dataset.make ~name:"year" ~task:Forest.Regression features labels

let names =
  [ "abalone"; "airline"; "airline-ohe"; "covtype"; "epsilon"; "letter"; "higgs"; "year" ]

let by_name name =
  match name with
  | "abalone" -> abalone
  | "airline" -> airline
  | "airline-ohe" -> airline_ohe
  | "covtype" -> covtype
  | "epsilon" -> epsilon
  | "letter" -> letter
  | "higgs" -> higgs
  | "year" -> year
  | _ -> raise Not_found
