(** Synthetic generators for the eight Table I benchmarks.

    Each generator matches the corresponding public dataset's feature count
    and task type, and is engineered so that models trained on it reproduce
    the paper's leaf-bias character (Fig. 3, Table I last column):

    - [airline_ohe] draws 94% of its rows from two recurring flight
      profiles (head-heavy categorical traffic) — nearly every trained tree
      is strongly leaf-biased;
    - [abalone] and [covtype] mix recurring cohorts with a diffuse tail —
      moderate bias (roughly half / a third of trees);
    - [epsilon], [letter], [year] are isotropic/uniform — no leaf bias;
    - [airline], [higgs] carry their signal in smooth numeric features —
      essentially unbiased trees.

    All generators are deterministic functions of the provided PRNG. *)

val abalone : ?rows:int -> Tb_util.Prng.t -> Dataset.t
(** 8 features, regression (ring count). Default 4200 rows. *)

val airline : ?rows:int -> Tb_util.Prng.t -> Dataset.t
(** 13 integer-coded features, binary (delayed?). Default 4000 rows. *)

val airline_ohe : ?rows:int -> Tb_util.Prng.t -> Dataset.t
(** 692 features: the same flight process as [airline] but one-hot encoded
    (688 indicator columns + 4 numeric), with head-heavy repeated traffic.
    Default 6000 rows. *)

val covtype : ?rows:int -> Tb_util.Prng.t -> Dataset.t
(** 54 features (10 numeric + 4 wilderness + 40 soil indicators), binary.
    Default 4000 rows. *)

val epsilon : ?rows:int -> Tb_util.Prng.t -> Dataset.t
(** 2000 dense gaussian features, binary. Default 1200 rows. *)

val letter : ?rows:int -> Tb_util.Prng.t -> Dataset.t
(** 16 features, 26-class classification. Default 4000 rows. *)

val higgs : ?rows:int -> Tb_util.Prng.t -> Dataset.t
(** 28 features (21 kinematic + 7 derived), binary. Default 4000 rows. *)

val year : ?rows:int -> Tb_util.Prng.t -> Dataset.t
(** 90 audio-timbre features, regression (release year). Default 3000
    rows. *)

val by_name : string -> ?rows:int -> Tb_util.Prng.t -> Dataset.t
(** Lookup by benchmark name ("airline-ohe" uses the hyphenated paper
    spelling). @raise Not_found for unknown names. *)

val names : string list
(** The eight benchmark names in Table I order. *)
