(** In-memory datasets (feature matrix + labels).

    The paper trains on eight public datasets (Table I). Those downloads are
    gated, so {!Generators} synthesizes datasets with the same shape
    (feature count, task type) and — critically for probability-based
    tiling — the same leaf-bias character once trained. *)

type t = {
  name : string;
  features : float array array;  (** row-major: [features.(row).(col)] *)
  labels : float array;  (** regression target, or class index as a float *)
  num_features : int;
  task : Tb_model.Forest.task;
}

val make :
  name:string -> task:Tb_model.Forest.task -> float array array -> float array -> t
(** Checks rectangularity, non-emptiness and (for classification) label
    range. @raise Invalid_argument on violation. *)

val num_rows : t -> int

val split : t -> train_fraction:float -> Tb_util.Prng.t -> t * t
(** Shuffled train/test split. *)

val subsample_rows : t -> int -> Tb_util.Prng.t -> float array array
(** [subsample_rows d n rng] draws [n] rows (with replacement if [n] exceeds
    the dataset size) — used to build inference batches of arbitrary size. *)
