type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st.pos (Printf.sprintf "expected %C" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st.pos "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with Failure _ -> fail st.pos "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        (* Encode the code point as UTF-8 (BMP only; no surrogate pairs). *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> fail st.pos "bad escape");
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some c when is_num_char c -> advance st
    | _ -> continue := false
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail start (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> advance st; Str (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st.pos (Printf.sprintf "unexpected %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin advance st; Obj [] end
  else begin
    let fields = ref [] in
    let rec loop () =
      skip_ws st;
      expect st '"';
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; loop ()
      | Some '}' -> advance st
      | _ -> fail st.pos "expected ',' or '}'"
    in
    loop ();
    Obj (List.rev !fields)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin advance st; List [] end
  else begin
    let items = ref [] in
    let rec loop () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; loop ()
      | Some ']' -> advance st
      | _ -> fail st.pos "expected ',' or ']'"
    in
    loop ();
    List (List.rev !items)
  end

let of_string src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st.pos "trailing input";
  v

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let format_number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* %.17g round-trips any float. *)
    Printf.sprintf "%.17g" f

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (format_number f)
    | Str s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if indent then ": " else ":");
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "missing field %S" key)))
  | v -> raise (Parse_error (Printf.sprintf "expected object, got %s" (type_name v)))

let to_float = function
  | Num f -> f
  | v -> raise (Parse_error (Printf.sprintf "expected number, got %s" (type_name v)))

let to_int v =
  let f = to_float v in
  if Float.is_integer f then int_of_float f
  else raise (Parse_error (Printf.sprintf "expected integer, got %g" f))

let to_str = function
  | Str s -> s
  | v -> raise (Parse_error (Printf.sprintf "expected string, got %s" (type_name v)))

let to_list = function
  | List items -> items
  | v -> raise (Parse_error (Printf.sprintf "expected list, got %s" (type_name v)))

let to_bool = function
  | Bool b -> b
  | v -> raise (Parse_error (Printf.sprintf "expected bool, got %s" (type_name v)))
