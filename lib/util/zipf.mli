(** Zipfian rank sampling by rejection inversion.

    A multi-tenant serving fleet sees a few hot models and a long cold
    tail; a Zipf(theta) popularity trace is the standard synthetic stand-in
    (theta ≈ 0.99 for YCSB-like skew). This sampler draws ranks with
    [P(rank = k) ∝ 1/(k+1)^theta] without tabulating harmonic sums, so
    setup is O(1) however many models the trace covers, and every draw
    comes from the caller's seeded {!Prng} — same seed, same trace. *)

type t
(** Immutable sampling constants for one (n, theta) pair. *)

val create : n:int -> theta:float -> t
(** @raise Invalid_argument when [n < 1] or [theta] is not positive and
    finite. [theta = 1] (the classic harmonic case) is supported. *)

val size : t -> int
val theta : t -> float

val draw : t -> Prng.t -> int
(** A rank in [\[0, n)]; rank 0 is the most popular. Expected O(1)
    rejections per draw. *)
