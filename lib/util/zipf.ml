(* Zipf-distributed rank sampling by rejection inversion (Hörmann &
   Derflinger, "Rejection-inversion to generate variates from monotone
   discrete distributions", TOMACS 1996) — the same algorithm zigache's
   bench harness and commons-math's ZipfRejectionInversionSampler use.

   P(rank = k) ∝ 1 / (k+1)^theta for k in [0, n). Setup is O(1) in n (no
   harmonic-number table), draws are O(1) expected with a handful of
   transcendental calls, and everything is driven by the caller's seeded
   PRNG, so traces stay reproducible. *)

type t = {
  n : int;
  theta : float;
  h_x1 : float;  (* h_integral 1.5 - 1 *)
  h_n : float;  (* h_integral (n + 0.5) *)
  s : float;  (* rejection-test shortcut constant *)
}

(* helper1 t ~ log1p(t)/t, helper2 t ~ expm1(t)/t, both continuous at 0. *)
let helper1 t =
  if Float.abs t > 1e-8 then Float.log1p t /. t
  else 1.0 -. (t /. 2.0) +. (t *. t /. 3.0)

let helper2 t =
  if Float.abs t > 1e-8 then Float.expm1 t /. t
  else 1.0 +. (t /. 2.0) +. (t *. t /. 6.0)

(* ∫ x^-theta dx from 1 to x, continued through theta = 1. *)
let h_integral c x =
  let logx = log x in
  helper2 ((1.0 -. c.theta) *. logx) *. logx

let h c x = exp (-.c.theta *. log x)

let h_integral_inverse c x =
  let t = Float.max (-1.0) (x *. (1.0 -. c.theta)) in
  exp (helper1 t *. x)

let create ~n ~theta =
  if n < 1 then invalid_arg "Zipf.create: n < 1";
  if not (theta > 0.0 && Float.is_finite theta) then
    invalid_arg "Zipf.create: theta must be positive and finite";
  let c = { n; theta; h_x1 = 0.0; h_n = 0.0; s = 0.0 } in
  {
    c with
    h_x1 = h_integral c 1.5 -. 1.0;
    h_n = h_integral c (float_of_int n +. 0.5);
    s = 2.0 -. h_integral_inverse c (h_integral c 2.5 -. h c 2.0);
  }

let size c = c.n
let theta c = c.theta

let draw c rng =
  if c.n = 1 then 0
  else begin
    let rec loop () =
      (* u is uniform over [h_n, h_x1) — the integral's range over the
         support — and inverting puts x in [0.5, n + 0.5). *)
      let u = c.h_n +. (Prng.uniform rng *. (c.h_x1 -. c.h_n)) in
      let x = h_integral_inverse c u in
      let k =
        let k = int_of_float (Float.round x) in
        if k < 1 then 1 else if k > c.n then c.n else k
      in
      let kf = float_of_int k in
      (* Accept k when x landed close enough to it (the shortcut covers
         the bulk of the mass) or the exact rejection test passes. *)
      if kf -. x <= c.s || u >= h_integral c (kf +. 0.5) -. h c kf then k - 1
      else loop ()
    in
    loop ()
  end
