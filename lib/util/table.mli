(** ASCII table rendering for benchmark output.

    The benchmark harness prints every reproduced paper table/figure as an
    aligned text table; this module does the formatting. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [aligns] defaults to [Left] for the first column and [Right] for the
    rest, which suits "name, numbers..." benchmark rows. *)

val add_row : t -> string list -> unit
(** Append a row; it must have as many cells as there are headers. *)

val add_sep : t -> unit
(** Append a horizontal separator row. *)

val render : t -> string
(** Render the table with box-drawing rules and padded cells. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_f : ?dec:int -> float -> string
(** Format a float with [dec] decimals (default 2). *)

val cell_fx : ?dec:int -> float -> string
(** Like {!cell_f} but suffixed with ["x"], for speedup factors. *)
