(** Minimal JSON reader/writer.

    Used for model serialization (Treebeard's input is a serialized
    ensemble). Supports the full JSON grammar except for surrogate escape
    pairs; numbers are parsed as OCaml floats, with an integer accessor for
    whole values. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} on malformed input, with a position message. *)

val of_string : string -> t
(** Parse a JSON document. @raise Parse_error on malformed input. *)

val to_string : ?indent:bool -> t -> string
(** Serialize; [indent] pretty-prints with two-space indentation. *)

(** {2 Accessors} — raise [Parse_error] with a descriptive message when the
    structure does not match, so loaders fail loudly on schema drift. *)

val member : string -> t -> t
val to_float : t -> float
val to_int : t -> int
val to_str : t -> string
val to_list : t -> t list
val to_bool : t -> bool
