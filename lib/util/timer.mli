(** Wall-clock measurement harness for the real-time benchmarks.

    Measurements use the monotonic clock, run a warmup phase, then repeat the
    workload until both a minimum repetition count and a minimum total time
    are reached, reporting the per-iteration statistics. *)

type result = {
  iterations : int;
  total_s : float;
  mean_s : float;  (** mean seconds per iteration *)
  min_s : float;
  max_s : float;
}

val now : unit -> float
(** Monotonic time in seconds. *)

val measure :
  ?warmup:int -> ?min_iters:int -> ?min_time_s:float -> (unit -> unit) -> result
(** [measure f] times [f]. Defaults: 2 warmup runs, at least 5 timed
    iterations, at least 0.2 s of total measured time. *)

val time_once : (unit -> 'a) -> 'a * float
(** Run a thunk once, returning its result and elapsed seconds. *)
