(** Deterministic string hashing.

    Serving components — the artifact store's filenames, the router's
    consistent-hash ring — need a hash that every process computes
    identically, so separate shards (and separate runs) agree on where a
    key lives. [Hashtbl.hash] is documented to vary across versions;
    FNV-1a is fixed by specification. *)

val fnv1a64 : string -> int64
(** FNV-1a over the bytes of the string, 64-bit variant. *)

val fnv1a64_mod : string -> int -> int
(** [fnv1a64_mod s n] is the hash reduced to [\[0, n)] with {e unsigned}
    modulus (the raw hash is a full 64-bit pattern).
    @raise Invalid_argument when [n < 1]. *)
