(* FNV-1a 64-bit: deterministic across processes and OCaml versions
   (unlike Hashtbl.hash, which is documented to vary), cheap enough for
   per-request routing decisions. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h prime)
    s;
  !h

let fnv1a64_mod s n =
  if n < 1 then invalid_arg "Hashing.fnv1a64_mod: n < 1";
  Int64.to_int (Int64.unsigned_rem (fnv1a64 s) (Int64.of_int n))
