(** Small statistics helpers used by benchmarks and model analysis. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val geomean : float array -> float
(** Geometric mean of strictly positive values; 0 for an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]]; linear interpolation on a sorted
    copy of [xs]. *)

val min_max : float array -> float * float
(** Smallest and largest element of a non-empty array. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val argmax : float array -> int
(** Index of the largest element of a non-empty array (first on ties). *)

val argmin : float array -> int
(** Index of the smallest element of a non-empty array (first on ties). *)

val kendall_tau : float array -> float array -> float
(** Kendall rank correlation (τ-b, tie-corrected) between two equal-length
    score vectors; 1.0 = identical ranking, -1.0 = reversed, 0 when either
    vector is all ties or shorter than two elements. O(n²).
    @raise Invalid_argument on length mismatch. *)
