(** Small statistics helpers used by benchmarks and model analysis. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val geomean : float array -> float
(** Geometric mean of strictly positive values; 0 for an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]]; linear interpolation on a sorted
    copy of [xs]. *)

val min_max : float array -> float * float
(** Smallest and largest element of a non-empty array. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val neumaier_sum : float array -> float
(** Kahan–Babuška–Neumaier compensated sum: like {!sum} but also correct
    when a term exceeds the running total in magnitude (the adversarial
    cancellation vector [[|1.; 1e100; 1.; -1e100|]] sums to [2.], where
    plain Kahan returns [0.]). The reference accumulator for
    {!Tb_analysis.Numeric}'s leaf sums. *)

val argmax : float array -> int
(** Index of the largest element of a non-empty array (first on ties). *)

val argmin : float array -> int
(** Index of the smallest element of a non-empty array (first on ties). *)

val kendall_tau : float array -> float array -> float
(** Kendall rank correlation (τ-b, tie-corrected) between two equal-length
    score vectors; 1.0 = identical ranking, -1.0 = reversed, 0 when either
    vector is all ties or shorter than two elements. O(n²).
    @raise Invalid_argument on length mismatch. *)

(** Fixed-bucket histogram with geometric bucket bounds.

    Constant memory however many samples are recorded, so the serving
    runtime can track per-request latency distributions for arbitrarily
    long traces. Quantile estimates are exact to within one bucket's
    resolution (default 16 buckets per decade ≈ 15% relative error). *)
module Histogram : sig
  type t

  val create : ?lo:float -> ?hi:float -> ?per_decade:int -> unit -> t
  (** [create ()] covers [\[lo, hi)] (defaults 0.1 .. 1e8, e.g. latencies in
      microseconds from 100ns to 100s) with [per_decade] geometric buckets
      per decade plus underflow/overflow buckets.
      @raise Invalid_argument unless [0 < lo < hi] and [per_decade > 0]. *)

  val add : t -> float -> unit
  (** Record one sample. *)

  val count : t -> int
  val total : t -> float
  (** Sum of all recorded samples (Kahan-compensated). *)

  val mean : t -> float
  (** 0 when empty. *)

  val min_value : t -> float
  val max_value : t -> float
  (** Exact extremes of the recorded samples; 0 when empty. *)

  val quantile : t -> float -> float
  (** [quantile t q] with [q] in [\[0,1\]]: the upper bound of the first
      bucket whose cumulative count reaches [q], clamped to the exact
      recorded min/max. 0 when empty. @raise Invalid_argument on [q]
      outside [\[0,1\]]. *)

  val same_shape : t -> t -> bool
  (** Whether two histograms share bucket geometry (lo, growth ratio,
      bucket count) — the precondition for an exact merge. *)

  val merge_into : t -> t -> unit
  (** [merge_into dst src] adds [src]'s samples into [dst]. Exact — equal
      geometric buckets cover equal intervals, so the merged counts are
      exactly the histogram of the union of the recorded samples (the
      property per-shard serving metrics rely on to roll up into one
      fleet report). [src] is unchanged.
      @raise Invalid_argument when the bucket shapes differ. *)

  val to_json : t -> Json.t
  (** count/mean/min/max and the p50/p90/p95/p99 quantiles. *)
end
