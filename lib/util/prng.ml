type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let uniform t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t bound = uniform t *. bound

let gaussian t =
  (* Box–Muller; guard against log 0. *)
  let u1 = max 1e-300 (uniform t) in
  let u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))
