(** Deterministic pseudo-random number generation.

    All randomized components of the library (dataset synthesis, training
    subsampling, property tests) draw from this splittable SplitMix64
    generator so that every experiment is reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Two generators
    created from the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances by one step. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
