type result = {
  iterations : int;
  total_s : float;
  mean_s : float;
  min_s : float;
  max_s : float;
}

let now () = Unix.gettimeofday ()

let time_once f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)

let measure ?(warmup = 2) ?(min_iters = 5) ?(min_time_s = 0.2) f =
  for _ = 1 to warmup do
    f ()
  done;
  let times = ref [] in
  let total = ref 0.0 in
  let iters = ref 0 in
  while !iters < min_iters || !total < min_time_s do
    let t0 = now () in
    f ();
    let dt = now () -. t0 in
    times := dt :: !times;
    total := !total +. dt;
    incr iters
  done;
  let times = Array.of_list !times in
  let lo, hi = Stats.min_max times in
  {
    iterations = !iters;
    total_s = !total;
    mean_s = !total /. float_of_int !iters;
    min_s = lo;
    max_s = hi;
  }
