type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns length mismatch";
      a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note_widths cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  note_widths t.headers;
  List.iter (function Cells cs -> note_widths cs | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let a = List.nth t.aligns i in
        Buffer.add_string buf (" " ^ pad a widths.(i) c ^ " ");
        Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line t.headers;
  rule ();
  List.iter (function Cells cs -> line cs | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_f ?(dec = 2) v = Printf.sprintf "%.*f" dec v
let cell_fx ?(dec = 2) v = Printf.sprintf "%.*fx" dec v
