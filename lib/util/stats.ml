let sum xs =
  (* Kahan summation: benchmarks aggregate many small per-row timings. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let neumaier_sum xs =
  (* Kahan–Babuška–Neumaier: like [sum], but the compensation also
     absorbs the case where the incoming term is larger than the running
     total (plain Kahan loses the *total*'s low bits there — the classic
     [1; 1e100; 1; -1e100] vector sums to 0 instead of 2). Used as the
     float reference accumulator by the quantization certifier, whose
     proved deviation bounds assume a near-exact reference. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let t = !total +. x in
      if Float.abs !total >= Float.abs x then
        comp := !comp +. (!total -. t +. x)
      else comp := !comp +. (x -. t +. !total);
      total := t)
    xs;
  !total +. !comp

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    sqrt (!acc /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0))
    xs

let argmax xs =
  if Array.length xs = 0 then invalid_arg "Stats.argmax: empty array";
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) > xs.(!best) then best := i
  done;
  !best

let argmin xs =
  if Array.length xs = 0 then invalid_arg "Stats.argmin: empty array";
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < xs.(!best) then best := i
  done;
  !best

module Histogram = struct
  type t = {
    lo : float;
    ratio : float;  (* geometric bucket growth factor *)
    log_ratio : float;
    (* counts.(0) = underflow (< lo); counts.(n-1) = overflow (>= hi);
       bucket i in between covers [lo * ratio^(i-1), lo * ratio^i). *)
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable comp : float;  (* Kahan compensation for [sum] *)
    mutable lo_seen : float;
    mutable hi_seen : float;
  }

  let create ?(lo = 0.1) ?(hi = 1e8) ?(per_decade = 16) () =
    if not (lo > 0.0 && lo < hi) then
      invalid_arg "Histogram.create: need 0 < lo < hi";
    if per_decade <= 0 then invalid_arg "Histogram.create: per_decade <= 0";
    let decades = log10 (hi /. lo) in
    let buckets =
      int_of_float (ceil (decades *. float_of_int per_decade))
    in
    let ratio = 10.0 ** (1.0 /. float_of_int per_decade) in
    {
      lo;
      ratio;
      log_ratio = log ratio;
      counts = Array.make (buckets + 2) 0;
      n = 0;
      sum = 0.0;
      comp = 0.0;
      lo_seen = infinity;
      hi_seen = neg_infinity;
    }

  let bucket_of t x =
    if x < t.lo then 0
    else begin
      let i = 1 + int_of_float (log (x /. t.lo) /. t.log_ratio) in
      min i (Array.length t.counts - 1)
    end

  let add t x =
    let i = bucket_of t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1;
    let y = x -. t.comp in
    let s = t.sum +. y in
    t.comp <- s -. t.sum -. y;
    t.sum <- s;
    if x < t.lo_seen then t.lo_seen <- x;
    if x > t.hi_seen then t.hi_seen <- x

  let count t = t.n
  let total t = t.sum
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
  let min_value t = if t.n = 0 then 0.0 else t.lo_seen
  let max_value t = if t.n = 0 then 0.0 else t.hi_seen

  let upper_bound t i =
    (* Upper edge of bucket i (i >= 1); the underflow bucket reports lo. *)
    if i = 0 then t.lo else t.lo *. (t.ratio ** float_of_int i)

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of range";
    if t.n = 0 then 0.0
    else begin
      let need =
        max 1 (int_of_float (ceil (q *. float_of_int t.n)))
      in
      let acc = ref 0 and i = ref 0 in
      while !acc < need && !i < Array.length t.counts do
        acc := !acc + t.counts.(!i);
        if !acc < need then incr i
      done;
      let est = upper_bound t !i in
      Float.min t.hi_seen (Float.max t.lo_seen est)
    end

  let same_shape a b =
    a.lo = b.lo
    && a.ratio = b.ratio
    && Array.length a.counts = Array.length b.counts

  let merge_into dst src =
    (* Geometric buckets make the merge exact: same (lo, ratio, size)
       means bucket i covers the same interval in both histograms, so
       adding counts is the histogram of the union of the samples. *)
    if not (same_shape dst src) then
      invalid_arg "Histogram.merge_into: bucket shapes differ";
    Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
    dst.n <- dst.n + src.n;
    let y = src.sum -. dst.comp in
    let s = dst.sum +. y in
    dst.comp <- s -. dst.sum -. y;
    dst.sum <- s;
    if src.lo_seen < dst.lo_seen then dst.lo_seen <- src.lo_seen;
    if src.hi_seen > dst.hi_seen then dst.hi_seen <- src.hi_seen

  let to_json t =
    Json.Obj
      [
        ("count", Json.Num (float_of_int t.n));
        ("mean", Json.Num (mean t));
        ("min", Json.Num (min_value t));
        ("max", Json.Num (max_value t));
        ("p50", Json.Num (quantile t 0.5));
        ("p90", Json.Num (quantile t 0.9));
        ("p95", Json.Num (quantile t 0.95));
        ("p99", Json.Num (quantile t 0.99));
      ]
end

let kendall_tau xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.kendall_tau: length mismatch";
  if n < 2 then 0.0
  else begin
    (* τ-b: concordant minus discordant over the geometric mean of the
       non-tied pair counts, so ties in either ranking don't inflate the
       correlation. O(n²) — rankings here are schedule grids, n ≤ ~10³. *)
    let concordant = ref 0 and discordant = ref 0 in
    let ties_x = ref 0 and ties_y = ref 0 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let dx = compare xs.(i) xs.(j) and dy = compare ys.(i) ys.(j) in
        if dx = 0 && dy = 0 then begin incr ties_x; incr ties_y end
        else if dx = 0 then incr ties_x
        else if dy = 0 then incr ties_y
        else if dx * dy > 0 then incr concordant
        else incr discordant
      done
    done;
    let pairs = n * (n - 1) / 2 in
    let denom =
      sqrt (float_of_int (pairs - !ties_x) *. float_of_int (pairs - !ties_y))
    in
    if denom = 0.0 then 0.0
    else float_of_int (!concordant - !discordant) /. denom
  end
