let sum xs =
  (* Kahan summation: benchmarks aggregate many small per-row timings. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    sqrt (!acc /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0))
    xs

let argmax xs =
  if Array.length xs = 0 then invalid_arg "Stats.argmax: empty array";
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) > xs.(!best) then best := i
  done;
  !best

let argmin xs =
  if Array.length xs = 0 then invalid_arg "Stats.argmin: empty array";
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < xs.(!best) then best := i
  done;
  !best

let kendall_tau xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.kendall_tau: length mismatch";
  if n < 2 then 0.0
  else begin
    (* τ-b: concordant minus discordant over the geometric mean of the
       non-tied pair counts, so ties in either ranking don't inflate the
       correlation. O(n²) — rankings here are schedule grids, n ≤ ~10³. *)
    let concordant = ref 0 and discordant = ref 0 in
    let ties_x = ref 0 and ties_y = ref 0 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let dx = compare xs.(i) xs.(j) and dy = compare ys.(i) ys.(j) in
        if dx = 0 && dy = 0 then begin incr ties_x; incr ties_y end
        else if dx = 0 then incr ties_x
        else if dy = 0 then incr ties_y
        else if dx * dy > 0 then incr concordant
        else incr discordant
      done
    done;
    let pairs = n * (n - 1) / 2 in
    let denom =
      sqrt (float_of_int (pairs - !ties_x) *. float_of_int (pairs - !ties_y))
    in
    if denom = 0.0 then 0.0
    else float_of_int (!concordant - !discordant) /. denom
  end
