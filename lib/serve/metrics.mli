(** Serving observability: latency histograms, queue/batch gauges and
    counters, with a JSON snapshot.

    Latencies are decomposed the way a serving dashboard wants them:

    - {e queue wait} — arrival to batch dispatch (batching delay plus any
      wait for a free worker);
    - {e service} — dispatch to completion (compile-on-miss plus the
      batch's predict time, amortized per request as the whole batch's
      span);
    - {e total} — arrival to completion, the end-to-end number whose
      p50/p95/p99 the acceptance criteria quote.

    Histograms are fixed-bucket ({!Tb_util.Stats.Histogram}), so memory
    stays constant over arbitrarily long traces. All times are virtual
    microseconds from the deterministic simulator. *)

type t = {
  queue_wait_us : Tb_util.Stats.Histogram.t;
  service_us : Tb_util.Stats.Histogram.t;
  total_us : Tb_util.Stats.Histogram.t;
  batch_size : Tb_util.Stats.Histogram.t;
  queue_depth : Tb_util.Stats.Histogram.t;
      (** sampled at every arrival, before admission *)
  mutable arrivals : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable batches : int;
  mutable by_size : int;
  mutable by_deadline : int;
  mutable by_flush : int;
  mutable rows_served : int;
  mutable makespan_us : float;  (** last completion's virtual finish time *)
}

val create : unit -> t

val record_arrival : t -> depth:int -> unit
val record_reject : t -> unit
val record_admit : t -> unit

val record_batch : t -> size:int -> cause:Batcher.cause -> unit

val record_completion :
  t -> arrival_us:float -> start_us:float -> finish_us:float -> unit

val throughput_rows_per_s : t -> float
(** completed rows / virtual makespan; 0 for an empty run. *)

val to_json : t -> Tb_util.Json.t
