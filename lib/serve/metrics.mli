(** Serving observability: latency histograms, queue/batch gauges and
    counters, with a JSON snapshot.

    Latencies are decomposed the way a serving dashboard wants them:

    - {e queue wait} — arrival to batch dispatch (batching delay plus any
      wait for a free worker);
    - {e service} — dispatch to completion (compile-on-miss plus the
      batch's predict time, amortized per request as the whole batch's
      span);
    - {e total} — arrival to completion, the end-to-end number whose
      p50/p95/p99 the acceptance criteria quote.

    Histograms are fixed-bucket ({!Tb_util.Stats.Histogram}), so memory
    stays constant over arbitrarily long traces. All times in the primary
    set are virtual microseconds from the deterministic simulator; a
    parallel {e wall} set (same decomposition, measured microseconds)
    is populated only by wall/dual-mode runs ({!Runtime.mode}) and never
    perturbs the virtual set, so a run's virtual report stays
    byte-identical whatever was measured alongside it. *)

type slo_cell = { mutable slo_met : int; mutable slo_missed : int }
(** Per-model SLO attainment cell: completions whose virtual end-to-end
    latency landed within / beyond the model's budget. *)

type t = {
  queue_wait_us : Tb_util.Stats.Histogram.t;
  service_us : Tb_util.Stats.Histogram.t;
  total_us : Tb_util.Stats.Histogram.t;
  batch_size : Tb_util.Stats.Histogram.t;
  queue_depth : Tb_util.Stats.Histogram.t;
      (** sampled at every arrival, before admission *)
  slo_by_model : (string, slo_cell) Hashtbl.t;
  mutable arrivals : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable shed_admission : int;
      (** rejects from the graded overload ladder at admission *)
  mutable shed_backlog : int;
      (** formed batches dropped because the pending pool overflowed *)
  mutable completed : int;
  mutable batches : int;
  mutable by_size : int;
  mutable by_deadline : int;
  mutable by_flush : int;
  mutable tier_hit : int;
      (** dispatches answered by the in-memory compiled cache *)
  mutable tier_disk : int;
      (** dispatches answered by hydrating an on-disk artifact *)
  mutable tier_compile : int;  (** dispatches that paid a fresh compile *)
  mutable rows_served : int;
  mutable makespan_us : float;  (** last completion's virtual finish time *)
  wall_queue_wait_us : Tb_util.Stats.Histogram.t;
  wall_service_us : Tb_util.Stats.Histogram.t;
  wall_total_us : Tb_util.Stats.Histogram.t;
  mutable wall_completed : int;
  mutable wall_rows : int;
  mutable wall_makespan_us : float;
      (** last completion's finish on the reconstructed wall timeline *)
}

val create : unit -> t

val record_arrival : t -> depth:int -> unit
val record_reject : t -> unit
val record_admit : t -> unit

val record_batch : t -> size:int -> cause:Batcher.cause -> unit

val record_tier : t -> [ `Hit | `Disk | `Compile ] -> unit
(** Count which registry tier answered a batch's {!Registry.compiled}
    lookup ({!Registry.provenance}). *)

val record_shed : t -> n:int -> [ `Admission | `Backlog ] -> unit
(** Count [n] requests shed by the overload ladder ([`Admission]) or
    dropped with an evicted pending batch ([`Backlog]). Sheds are also
    rejects — callers still bump {!record_reject} per request so the
    admit/reject ledger stays whole. *)

val record_completion :
  ?slo:string * float ->
  t ->
  arrival_us:float ->
  start_us:float ->
  finish_us:float ->
  unit
(** [?slo:(model, budget_us)] additionally scores the completion against
    the model's latency budget (met iff [finish - arrival <= budget]). *)

val record_wall_completion :
  t -> arrival_us:float -> start_us:float -> finish_us:float -> unit
(** Same decomposition into the wall set; [arrival_us] is the trace's
    (virtual) arrival, [start_us]/[finish_us] come from the reconstructed
    wall timeline. *)

val throughput_rows_per_s : t -> float
(** completed rows / virtual makespan; 0 for an empty run. *)

val wall_throughput_rows_per_s : t -> float
(** completed rows / wall makespan; 0 when nothing was measured. *)

val slo_attainment : t -> string -> float option
(** Fraction of this model's scored completions that met their budget;
    [None] when the model recorded no scored completions. *)

val slo_models : t -> string list
(** Models with at least one scored completion, sorted. *)

val merge : t list -> t
(** Roll per-shard snapshots into one fleet view: histograms merge
    exactly ({!Tb_util.Stats.Histogram.merge_into} — all inputs share the
    default bucket shapes), counters and per-model SLO cells add, and
    each makespan is the max over shards (shards run concurrently).
    @raise Invalid_argument if histogram shapes differ. *)

val to_json : ?include_wall:bool -> t -> Tb_util.Json.t
(** The snapshot. A ["wall"] sub-object (wall latency histograms,
    makespan, throughput) is appended only when wall completions were
    recorded; pass [~include_wall:false] to suppress it — the remaining
    fields are exactly the virtual-only report. *)
