(** Dynamic batch formation: max-size or deadline, whichever fires first.

    The batcher groups admitted requests per model (a batch runs one
    compiled predictor) and closes a group as a batch when either

    - the group reaches [batch_max] requests (size trigger — fires at the
      admitting arrival's timestamp), or
    - the group's {e oldest} request has waited [deadline_us] (deadline
      trigger — bounds the batching delay any request can pay).

    All times are caller-supplied virtual microseconds, so formation is
    deterministic and testable without a clock. The batcher never launches
    a partial batch early just because a worker is idle: the two triggers
    above are the whole policy (the paper-adjacent design point the
    [bench -- serve] experiment sweeps). *)

type config = {
  batch_max : int;
  deadline_us : float;
}

type cause =
  | By_size  (** group hit [batch_max] *)
  | By_deadline  (** oldest request aged past [deadline_us] *)
  | By_flush  (** end-of-trace drain *)

val cause_to_string : cause -> string

type 'r batch = {
  model : string;
  formed_us : float;
  cause : cause;
  requests : 'r array;  (** admission order *)
  arrivals_us : float array;  (** per request, same order *)
}

type 'r t

val create : ?deadline_us_for:(string -> float) -> config -> 'r t
(** [deadline_us_for] overrides the batching deadline per model (values
    are clamped to be positive); the default is the uniform
    [cfg.deadline_us]. Deadline-aware serving caps a tight-SLO model's
    batching delay at a fraction of its budget while loose models still
    batch deep — the override must be a pure function of the model name
    so formation stays deterministic.
    @raise Invalid_argument when [batch_max < 1] or [deadline_us <= 0]. *)

val config : 'r t -> config

val add : 'r t -> model:string -> arrival_us:float -> 'r -> 'r batch option
(** Admit one request at [arrival_us]; returns the formed batch when this
    admission fires the size trigger. Arrivals must be fed in
    non-decreasing time order per the virtual clock. *)

val next_deadline : 'r t -> float option
(** Earliest pending deadline over all groups; [None] when nothing is
    pending. *)

val expire : 'r t -> now:float -> 'r batch list
(** Close every group whose deadline is [<= now], in deadline order (ties
    broken by model registration order — deterministic). *)

val flush : 'r t -> now:float -> 'r batch list
(** Close every pending group regardless of age ([By_flush]); used at the
    end of a trace. *)

val pending_count : 'r t -> int
(** Requests admitted but not yet formed into a batch. *)
