(** Routed admission: which shard serves a model.

    A sharded fleet wants each model's compiled artifact resident on as
    few shards as possible (so per-shard predictor caches stay hot) while
    rebalancing — adding or draining a shard — moves as few models as
    possible (each moved model pays a cold hydration or compile on its
    new shard). Two pluggable policies:

    - {e Hash}: [fnv1a64(model) mod N] over the live shards. Perfectly
      balanced but {e unstable}: resizing from N to N+1 remaps ~N/(N+1)
      of all keys.
    - {e Affinity}: consistent hashing — every live shard contributes
      [vnodes] pseudo-random points on a 64-bit ring; a model routes to
      the owner of the first point clockwise from its hash. Adding a
      shard moves only the keys that land on the new shard's points
      (≈ K/N of K keys); removing one moves only the removed shard's
      keys, and every untouched model keeps its shard — the affinity
      property the rebalancing tests pin down.

    Routers are immutable; {!add_shard}/{!remove_shard} return the
    resized router so a rebalance can compare old and new assignments.
    Routing is pure and deterministic ({!Tb_util.Hashing.fnv1a64}), so
    every process — and every run — agrees on the assignment. *)

type policy = Hash | Affinity

val policy_to_string : policy -> string

val policy_of_string : string -> (policy, string) result
(** ["hash"], ["affinity"]. *)

type t

val create : ?vnodes:int -> policy -> shards:int -> t
(** Router over shard ids [0 .. shards-1]. [vnodes] (default 64) is the
    ring points per shard — more points, smoother balance.
    @raise Invalid_argument when [shards < 1] or [vnodes < 1]. *)

val of_shard_ids : ?vnodes:int -> policy -> int list -> t
(** Router over an explicit live-shard id set (ids need not be dense —
    a drained shard leaves a hole).
    @raise Invalid_argument on an empty list, duplicates or negative
    ids. *)

val policy_of : t -> policy
val vnodes : t -> int

val shard_ids : t -> int list
(** Live shard ids, ascending. *)

val num_shards : t -> int

val route : t -> string -> int
(** The live shard id serving this model. Pure. *)

val add_shard : t -> int -> t
(** @raise Invalid_argument when the id is negative or already live. *)

val remove_shard : t -> int -> t
(** @raise Invalid_argument when the id is not live or is the last
    one. *)

val to_json : t -> Tb_util.Json.t
