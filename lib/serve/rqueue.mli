(** Bounded MPSC request queue with backpressure.

    The admission edge of the serving runtime: any number of producers
    [try_push] concurrently; a single consumer (the batcher/dispatcher)
    pops. When the queue is full, [try_push] rejects immediately — callers
    get a diagnostic instead of unbounded queueing, which keeps tail
    latency bounded under overload (load shedding, not buffering).

    A [Mutex.t] guards the ring; operations are a few instructions under
    the lock, so contention is negligible at the request rates the
    simulator drives. The deterministic simulator additionally uses
    [drop_n] to retire accounting slots for requests whose batch has been
    dispatched in virtual time (elements are popped by count there, since
    the batcher tracks the identities). *)

type 'a t

type stats = {
  pushed : int;
  rejected : int;
  popped : int;
  max_depth : int;  (** high-water mark of the queue length *)
}

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is at capacity; the rejection is counted. *)

val pop_opt : 'a t -> 'a option
(** Single-consumer pop; [None] when empty. *)

val drop_n : 'a t -> int -> unit
(** Retire [n] elements FIFO (discarding them). Clamped to the current
    length. *)

val stats : 'a t -> stats
val stats_to_json : stats -> Tb_util.Json.t
