type stats = {
  pushed : int;
  rejected : int;
  popped : int;
  max_depth : int;
}

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  lock : Mutex.t;
  mutable pushed : int;
  mutable rejected : int;
  mutable popped : int;
  mutable max_depth : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Rqueue.create: capacity < 1";
  {
    capacity;
    q = Queue.create ();
    lock = Mutex.create ();
    pushed = 0;
    rejected = 0;
    popped = 0;
    max_depth = 0;
  }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> Queue.length t.q)

let try_push t x =
  with_lock t (fun () ->
      if Queue.length t.q >= t.capacity then begin
        t.rejected <- t.rejected + 1;
        false
      end
      else begin
        Queue.push x t.q;
        t.pushed <- t.pushed + 1;
        if Queue.length t.q > t.max_depth then t.max_depth <- Queue.length t.q;
        true
      end)

let pop_opt t =
  with_lock t (fun () ->
      match Queue.take_opt t.q with
      | None -> None
      | Some x ->
        t.popped <- t.popped + 1;
        Some x)

let drop_n t n =
  with_lock t (fun () ->
      let n = min n (Queue.length t.q) in
      for _ = 1 to n do
        ignore (Queue.pop t.q)
      done;
      t.popped <- t.popped + n)

let stats t : stats =
  with_lock t (fun () ->
      {
        pushed = t.pushed;
        rejected = t.rejected;
        popped = t.popped;
        max_depth = t.max_depth;
      })

module J = Tb_util.Json

let stats_to_json (s : stats) =
  J.Obj
    [
      ("pushed", J.Num (float_of_int s.pushed));
      ("rejected", J.Num (float_of_int s.rejected));
      ("popped", J.Num (float_of_int s.popped));
      ("max_depth", J.Num (float_of_int s.max_depth));
    ]
