(** Deterministic trace simulation: arrival processes → {!Runtime.run} →
    JSON report.

    Everything is derived from the PRNG seed and the configuration — in
    the default [Virtual] mode the report contains no wall-clock times, so
    the same seed produces a byte-identical report on any machine (the
    acceptance criterion for [treebeard serve-sim]). In [Wall]/[Dual]
    modes ({!Runtime.mode}) the report additionally carries measured wall
    metrics (and, for [Dual], a per-model drift section); the virtual
    fields are still byte-identical across same-seed runs, and
    [report_to_json ~virtual_only:true] extracts exactly that
    deterministic half. *)

type arrival_kind =
  | Poisson  (** exponential inter-arrival gaps at [rate_rps] *)
  | Burst of int
      (** bursts of [n] back-to-back requests; burst starts are Poisson at
          [rate_rps / n], preserving the average rate *)
  | Ramp
      (** linearly increasing intensity over the trace: 0 at t=0 up to
          [2 × rate_rps] at the end, same average rate *)

val arrival_kind_to_string : arrival_kind -> string

val arrival_kind_of_string : string -> (arrival_kind, string) Stdlib.result
(** ["poisson"], ["burst"] / ["burst:<n>"] (default n = 8), ["ramp"]. *)

type model_spec = {
  name : string;
  forest : Tb_model.Forest.t;
  profiles : Tb_model.Model_stats.tree_profile array option;
  pool : float array array;
      (** rows sampled (with replacement) to build requests *)
  weight : int;
      (** relative request frequency (≥ 1); a skewed mix is how serving
          caches see hot and cold models *)
}

type config = {
  arrival : arrival_kind;
  rate_rps : float;  (** average request rate, requests/second *)
  num_requests : int;
  seed : int;
  schedule : Tb_hir.Schedule.t;
  runtime : Runtime.config;
  mode : Runtime.mode;  (** virtual / wall / dual execution *)
  cache_policy : Policy.kind;
  cache_capacity : int;
  cache_dir : string option;
      (** registry on-disk artifact store; [None] = memory tier only *)
  target : Tb_cpu.Config.t;
}

val default_config : config
(** Poisson at 50k rps, 2000 requests, seed 42, default schedule and
    runtime config, virtual mode, LRU cache of 8, Intel Rocket Lake
    target. *)

val gen_arrivals :
  Tb_util.Prng.t -> arrival_kind -> rate_rps:float -> n:int -> float array
(** [n] non-decreasing arrival times in virtual microseconds starting at
    0. Exposed for tests. *)

type report = {
  config_json : Tb_util.Json.t;
  result : Runtime.result;
  per_model : (string * int) list;  (** completed request count per model *)
}

val run : ?calibration:Registry.calibration -> config -> model_spec list -> report
(** Build a {!Registry}, generate the trace (model choice and row choice
    are drawn from the same seeded PRNG as the arrival times) and serve
    it. [calibration] (typically fitted from a previous dual run's drift
    via {!Registry.calibration_of_drift}) is applied to the fresh registry
    before any compile, so the run's modeled costs are the corrected ones.
    @raise Invalid_argument on an empty model list or a model with an
    empty row pool. *)

val report_to_json : ?virtual_only:bool -> report -> Tb_util.Json.t
(** The serve-sim report: config echo, counts, latency percentiles,
    batch/queue/cache statistics, throughput, equivalence flag and
    per-model totals — plus, when the run measured them, the metrics'
    ["wall"] sub-object and a top-level ["drift"] section (dual mode).
    [~virtual_only:true] omits both, leaving exactly the deterministic
    virtual report (used for determinism diffs of dual runs). *)
