(** Deterministic trace simulation: arrival processes → {!Runtime.run} →
    JSON report.

    Everything is derived from the PRNG seed and the configuration — in
    the default [Virtual] mode the report contains no wall-clock times, so
    the same seed produces a byte-identical report on any machine (the
    acceptance criterion for [treebeard serve-sim]). In [Wall]/[Dual]
    modes ({!Runtime.mode}) the report additionally carries measured wall
    metrics (and, for [Dual], a per-model drift section); the virtual
    fields are still byte-identical across same-seed runs, and
    [report_to_json ~virtual_only:true] extracts exactly that
    deterministic half. *)

type arrival_kind =
  | Poisson  (** exponential inter-arrival gaps at [rate_rps] *)
  | Burst of int
      (** bursts of [n] back-to-back requests; burst starts are Poisson at
          [rate_rps / n], preserving the average rate *)
  | Ramp
      (** linearly increasing intensity over the trace: 0 at t=0 up to
          [2 × rate_rps] at the end, same average rate *)

val arrival_kind_to_string : arrival_kind -> string

val arrival_kind_of_string : string -> (arrival_kind, string) Stdlib.result
(** ["poisson"], ["burst"] / ["burst:<n>"] (default n = 8), ["ramp"]. *)

type popularity =
  | Uniform  (** weighted choice by the specs' [weight] fields *)
  | Zipf of float
      (** Zipfian skew over declaration order — the first model is the
          hottest, P(rank k) ∝ 1/(k+1)^θ; [weight]s are ignored. The
          shape serving fleets actually see, and the regime where
          affinity routing's cache locality pays. *)

val popularity_to_string : popularity -> string

val popularity_of_string : string -> (popularity, string) Stdlib.result
(** ["uniform"], ["zipf"] / ["zipf:<theta>"] (default θ = 1). *)

type model_spec = {
  name : string;
  forest : Tb_model.Forest.t;
  profiles : Tb_model.Model_stats.tree_profile array option;
  pool : float array array;
      (** rows sampled (with replacement) to build requests *)
  weight : int;
      (** relative request frequency (≥ 1); a skewed mix is how serving
          caches see hot and cold models *)
  slo_us : float option;
      (** per-model end-to-end latency budget (virtual µs): feeds EDF
          deadlines, SLO attainment scoring and the shed ladder *)
}

type config = {
  arrival : arrival_kind;
  rate_rps : float;  (** average request rate, requests/second *)
  num_requests : int;
  seed : int;
  popularity : popularity;  (** model-choice distribution *)
  schedule : Tb_hir.Schedule.t;
  runtime : Runtime.config;
  mode : Runtime.mode;  (** virtual / wall / dual execution *)
  shards : int;  (** fleet size for {!run_fleet}; {!run} ignores it *)
  routing : Router.policy;  (** fleet admission routing *)
  cache_policy : Policy.kind;
  cache_capacity : int;
  cache_dir : string option;
      (** registry on-disk artifact store; [None] = memory tier only. In
          a fleet every shard shares it — the artifact-shipping channel *)
  cache_max_bytes : int option;
      (** artifact-store size cap ({!Registry.create}) *)
  target : Tb_cpu.Config.t;
}

val default_config : config
(** Poisson at 50k rps, 2000 requests, seed 42, uniform popularity,
    default schedule and runtime config, virtual mode, 1 shard with
    affinity routing, LRU cache of 8, Intel Rocket Lake target. *)

val gen_arrivals :
  Tb_util.Prng.t -> arrival_kind -> rate_rps:float -> n:int -> float array
(** [n] non-decreasing arrival times in virtual microseconds starting at
    0. Exposed for tests. *)

val gen_requests :
  Tb_util.Prng.t -> config -> model_spec list -> Runtime.request array
(** The full request trace: arrivals plus popularity-driven model and
    row choices, all from the one PRNG. Generated before any routing, so
    the trace depends only on the seed — resharding re-partitions the
    same requests. Exposed for tests. *)

type report = {
  config_json : Tb_util.Json.t;
  result : Runtime.result;
  per_model : (string * int) list;  (** completed request count per model *)
}

val run : ?calibration:Registry.calibration -> config -> model_spec list -> report
(** Build a {!Registry}, generate the trace (model choice and row choice
    are drawn from the same seeded PRNG as the arrival times) and serve
    it. [calibration] (typically fitted from a previous dual run's drift
    via {!Registry.calibration_of_drift}) is applied to the fresh registry
    before any compile, so the run's modeled costs are the corrected ones.
    @raise Invalid_argument on an empty model list or a model with an
    empty row pool. *)

val report_to_json : ?virtual_only:bool -> report -> Tb_util.Json.t
(** The serve-sim report: config echo, counts, latency percentiles,
    batch/queue/cache statistics, throughput, equivalence flag,
    per-model totals and the ["precision_tiers"] map (the tier —
    float/int8/int16 — that actually served each dispatched model) — plus, when the run measured them, the metrics'
    ["wall"] sub-object and a top-level ["drift"] section (dual mode).
    [~virtual_only:true] omits both, leaving exactly the deterministic
    virtual report (used for determinism diffs of dual runs). *)

(** {2 Sharded fleet} *)

type fleet_report = {
  fleet_config_json : Tb_util.Json.t;
  fleet : Runtime.fleet_result;
  fleet_per_model : (string * int) list;
      (** completed request count per model, fleet-wide *)
}

val run_fleet :
  ?calibration:Registry.calibration -> config -> model_spec list -> fleet_report
(** Like {!run} but across [config.shards] shards behind a
    [config.routing] router: one registry per shard (every model
    registered on each — compilation stays lazy; all sharing
    [cache_dir]), the seed-deterministic trace partitioned by model.
    @raise Invalid_argument as {!run}, or when [shards < 1]. *)

val fleet_report_to_json : ?virtual_only:bool -> fleet_report -> Tb_util.Json.t
(** The sharded serve-sim report: config echo, the router, the merged
    fleet metrics, a per-shard breakdown (metrics, queue/cache stats,
    compiles / hydrations / {e foreign} hydrations and the shard's
    ["precision_tiers"] map of which tier served each model), fleet
    totals and the equivalence flag. Virtual-only filtering as {!report_to_json}. *)
