type kind =
  | Lru
  | Sieve

let kind_to_string = function Lru -> "lru" | Sieve -> "sieve"

let kind_of_string = function
  | "lru" -> Ok Lru
  | "sieve" -> Ok Sieve
  | s -> Error (Printf.sprintf "unknown eviction policy %S (try lru or sieve)" s)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

(* Intrusive doubly-linked list over cache entries. [head] is the
   insertion (LRU: recency) end, [tail] the eviction end. *)
type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable visited : bool;  (* SIEVE second-chance mark *)
  mutable prev : ('k, 'v) node option;  (* toward head *)
  mutable next : ('k, 'v) node option;  (* toward tail *)
}

type ('k, 'v) t = {
  kind : kind;
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hand : ('k, 'v) node option;  (* SIEVE sweep position *)
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

let create ?(capacity = 16) kind =
  if capacity < 1 then invalid_arg "Policy.create: capacity < 1";
  {
    kind;
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hand = None;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
  }

let kind_of t = t.kind
let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  if (match t.hand with Some h -> h == node | None -> false) then
    (* Keep the SIEVE hand valid: step it over the vanished node, toward
       the head (the sweep direction). *)
    t.hand <- node.prev;
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    (match t.kind with
    | Lru ->
      unlink t node;
      push_front t node
    | Sieve -> node.visited <- true);
    Some node.value

let mem t k = Hashtbl.mem t.table k

let evict t =
  let victim =
    match t.kind with
    | Lru -> t.tail
    | Sieve ->
      (* Sweep from the hand (or the tail) toward the head, granting each
         visited entry its second chance. Wrapping to the tail guarantees
         termination: a full pass clears every mark. *)
      let cur = ref (match t.hand with Some _ as h -> h | None -> t.tail) in
      let result = ref None in
      while !result = None && !cur <> None do
        match !cur with
        | None -> ()
        | Some node ->
          if node.visited then begin
            node.visited <- false;
            cur := (match node.prev with Some _ as p -> p | None -> t.tail)
          end
          else begin
            result := Some node;
            (* The hand persists across evictions: the next sweep resumes
               one past the victim, not back at the tail — this is what
               makes the cleared marks count. *)
            t.hand <- node.prev
          end
      done;
      !result
  in
  match victim with
  | None -> None
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1;
    Some (node.key, node.value)

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    (match t.kind with
    | Lru ->
      unlink t node;
      push_front t node
    | Sieve -> ());
    None
  | None ->
    let evicted = if length t >= t.capacity then evict t else None in
    let node = { key = k; value = v; visited = false; prev = None; next = None } in
    push_front t node;
    Hashtbl.replace t.table k node;
    t.insertions <- t.insertions + 1;
    evicted

let stats t : stats =
  {
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
  }

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let iter f t =
  let rec go = function
    | None -> ()
    | Some node ->
      f node.key node.value;
      go node.next
  in
  go t.head

let contents t =
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go (node.key :: acc) node.next
  in
  go [] t.head

module J = Tb_util.Json

let stats_to_json (s : stats) =
  let total = s.hits + s.misses in
  J.Obj
    [
      ("hits", J.Num (float_of_int s.hits));
      ("misses", J.Num (float_of_int s.misses));
      ("insertions", J.Num (float_of_int s.insertions));
      ("evictions", J.Num (float_of_int s.evictions));
      ( "hit_ratio",
        J.Num
          (if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total)
      );
    ]
