(** The serving runtime: admission queue → dynamic batcher → worker pool,
    driven on a deterministic virtual clock.

    The engine runs in two phases:

    + {e Virtual-time scheduling} (single-threaded, deterministic): walk
      the arrival trace in time order; admit each request through the
      bounded {!Rqueue} (rejecting with backpressure when the window of
      queued-but-unstarted requests is full), form batches per
      {!Batcher}'s size-or-deadline policy, and assign each batch to the
      earliest-free worker of a pool of [workers] logical servers. Batch
      service time is charged from the {!Registry}'s deterministic model:
      a fixed dispatch overhead, the modeled compile cost when the
      predictor cache misses, and [size × us_per_row]. Every latency in
      {!Metrics} comes from this clock, so a fixed trace yields identical
      numbers on any host.
    + {e Execution} (parallel, real): the scheduled batches are executed
      on OCaml [Domain]s — one per worker, each running its assigned
      batches through {!Tb_vm.Jit.compile_single_thread} predictors
      (serving-level parallelism replaces the schedule's row-loop
      threads). Outputs land in per-request slots, and an equivalence
      check compares them bitwise against one direct whole-trace predictor
      call per model: batching, caching and parallel dispatch must never
      change a result.

    The execution {!mode} decides whether the second phase also runs the
    {e wall clock}: in [Wall] and [Dual] modes each batch's real [predict]
    call is timed on its worker, a wall timeline is replayed from the
    virtual schedule's decisions (same batches, workers and formation
    times, measured service durations — cache misses charged their
    {e measured} compile time), and the wall latencies land in
    {!Metrics}'s parallel wall set. [Dual] additionally pairs the two
    clocks per batch into a per-model drift summary
    ({!Tb_analysis.Serve_check.model_drift}) — the input to V001/V002
    drift checking and {!Registry.calibrate}. The virtual phase never
    reads a wall measurement, so the virtual half of a dual run is
    byte-identical to a pure virtual run of the same trace. *)

type request = {
  id : int;  (** dense 0..n-1; indexes the result's output slots *)
  model : string;
  row : float array;
  arrival_us : float;
}

type mode =
  | Virtual  (** deterministic simulation only (the default) *)
  | Wall  (** also time real execution and report wall metrics *)
  | Dual  (** wall metrics plus per-model wall/virtual drift *)

val mode_to_string : mode -> string

val mode_of_string : string -> (mode, string) Stdlib.result
(** ["virtual"], ["wall"], ["dual"]. *)

type config = {
  queue_capacity : int;
      (** max requests admitted but not yet dispatched to a worker *)
  batch_max : int;
  deadline_us : float;
  workers : int;
  dispatch_overhead_us : float;
      (** fixed virtual cost per batch: queue handoff + output scatter *)
}

val default_config : config
(** capacity 1024, batch 32, deadline 500µs, 2 workers, 20µs overhead. *)

type batch_exec = {
  batch_id : int;
  worker : int;
  cause : Batcher.cause;
  compiled : Registry.compiled;
  tier : Registry.provenance;
      (** which registry tier answered this batch's lookup; decides the
          modeled acquire cost charged on the virtual clock ([`Hit] free,
          [`Disk] [hydrate_us], [`Compile] [compile_us]) and the measured
          cost on the wall replay *)
  requests : request array;
  formed_us : float;
  start_us : float;
  finish_us : float;
  mutable wall_predict_us : float;
      (** measured wall time of this batch's [predict] call; 0 in
          [Virtual] mode *)
}

type result = {
  outputs : float array option array;
      (** per request id: the margin vector, [None] when rejected *)
  batches : batch_exec list;  (** dispatch order *)
  rejects : request list;  (** arrival order *)
  metrics : Metrics.t;
  queue_stats : Rqueue.stats;
  cache_stats : Policy.stats;
  compile_count : int;
  hydration_count : int;
      (** registry disk-tier hydrations over the run (0 without a
          [cache_dir]) *)
  equivalence_failures : int;
      (** requests whose served output differs bitwise from the direct
          single-call JIT prediction; 0 on a healthy run *)
  drift : Tb_analysis.Serve_check.model_drift list;
      (** per-model wall/virtual drift (registration order); empty unless
          the run was [Dual] *)
}

val run :
  ?config:config ->
  ?mode:mode ->
  schedule:Tb_hir.Schedule.t ->
  Registry.t ->
  request array ->
  result
(** Serve a trace (default mode [Virtual]). Requests may arrive in any
    order (they are sorted by arrival time, stably); ids must be exactly
    0..n-1.
    @raise Invalid_argument on malformed ids or config fields, and
    [Not_found] when a request names an unregistered model. *)
