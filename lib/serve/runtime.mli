(** The serving runtime: a fleet of {!Shard}s behind routed admission —
    or, the historical entry point, a fleet of one.

    {!run} drives the single-shard engine (admission queue → dynamic
    batcher → deadline-aware scheduler → worker pool; see {!Shard} for
    the two-phase design). {!run_fleet} scales it out: a {!Router}
    partitions the trace by model, each live shard serves its slice with
    its own registry, metrics merge exactly across shards
    ({!Metrics.merge}), and shards sharing an artifact [cache_dir] ship
    compiled artifacts to each other through the disk tier — a model that
    moves after a rebalance hydrates on its new shard instead of
    recompiling ({!Registry.foreign_hydration_count}).

    The execution {!mode} decides whether execution also runs the
    {e wall clock}: in [Wall] and [Dual] modes each batch's real
    [predict] call is timed on its worker, a wall timeline is replayed
    from the virtual schedule's decisions (same batches, workers and
    formation times, measured service durations — cache misses charged
    their {e measured} compile time), and the wall latencies land in
    {!Metrics}'s parallel wall set. [Dual] additionally pairs the two
    clocks per batch into a per-model drift summary
    ({!Tb_analysis.Serve_check.model_drift}) — the input to V001/V002
    drift checking and {!Registry.calibrate}. The virtual phase never
    reads a wall measurement, so the virtual half of a dual run is
    byte-identical to a pure virtual run of the same trace — per shard
    and for the merged fleet view alike. *)

type request = Shard.request = {
  id : int;  (** dense 0..n-1; indexes the result's output slots *)
  model : string;
  row : float array;
  arrival_us : float;
}

type mode = Shard.mode =
  | Virtual  (** deterministic simulation only (the default) *)
  | Wall  (** also time real execution and report wall metrics *)
  | Dual  (** wall metrics plus per-model wall/virtual drift *)

val mode_to_string : mode -> string

val mode_of_string : string -> (mode, string) Stdlib.result
(** ["virtual"], ["wall"], ["dual"]. *)

type config = Shard.config = {
  queue_capacity : int;
      (** max requests admitted but not yet dispatched to a worker *)
  batch_max : int;
  deadline_us : float;
  workers : int;
  dispatch_overhead_us : float;
      (** fixed virtual cost per batch: queue handoff + output scatter *)
  scheduling : Scheduler.policy;
  slo_us : (string * float) list;
  default_slo_us : float option;
  shed_lo : float;
  shed_hi : float;
  pending_cap : int;
  precision : Tb_core.Treebeard.precision;
}
(** See {!Shard.config} for the scheduling / SLO / shedding /
    precision knobs. *)

val default_config : config
(** capacity 1024, batch 32, deadline 500µs, 2 workers, 20µs overhead,
    FIFO scheduling, no SLOs, shedding off. *)

type batch_exec = Shard.batch_exec = {
  batch_id : int;
  worker : int;
  cause : Batcher.cause;
  compiled : Registry.compiled;
  tier : Registry.provenance;
  requests : request array;
  formed_us : float;
  start_us : float;
  finish_us : float;
  mutable wall_predict_us : float;
}

type result = Shard.result = {
  outputs : float array option array;
      (** per request id: the margin vector, [None] when rejected *)
  batches : batch_exec list;  (** dispatch order *)
  rejects : request list;  (** arrival order *)
  metrics : Metrics.t;
  queue_stats : Rqueue.stats;
  cache_stats : Policy.stats;
  compile_count : int;
  hydration_count : int;
  foreign_hydration_count : int;
  equivalence_failures : int;
  drift : Tb_analysis.Serve_check.model_drift list;
}

val run :
  ?config:config ->
  ?mode:mode ->
  schedule:Tb_hir.Schedule.t ->
  Registry.t ->
  request array ->
  result
(** Serve a trace on a single shard (default mode [Virtual]). Requests
    may arrive in any order (they are sorted by arrival time, stably);
    ids must be exactly 0..n-1.
    @raise Invalid_argument on malformed ids or config fields, and
    [Not_found] when a request names an unregistered model. *)

(** {2 Sharded fleet} *)

type fleet_result = {
  fleet_outputs : float array option array;
      (** per request id, whichever shard served it *)
  shard_results : (int * result) list;  (** ascending shard id *)
  fleet_metrics : Metrics.t;  (** {!Metrics.merge} over the shards *)
  fleet_rejects : request list;  (** arrival order across the fleet *)
  fleet_router : Router.t;
  fleet_compiles : int;
  fleet_hydrations : int;
  fleet_foreign_hydrations : int;
      (** hydrations of artifacts the hydrating shard never compiled —
          cross-shard (or cross-process) artifact shipping at work *)
  fleet_equivalence_failures : int;
}

val run_fleet :
  ?config:config ->
  ?mode:mode ->
  schedule:Tb_hir.Schedule.t ->
  router:Router.t ->
  (int * Registry.t) list ->
  request array ->
  fleet_result
(** Serve a trace across a fleet: the router partitions requests by
    model (preserving arrival order within a shard), each shard serves
    its slice in ascending shard-id order — sequentially, so a fixed
    trace and seed yield a byte-identical fleet result on any host — and
    the per-shard results are merged. The registry list must carry
    exactly the router's live shard ids; point the registries at one
    shared [cache_dir] to let shards hydrate each other's artifacts.
    @raise Invalid_argument on malformed ids or config fields, or when
    the registries don't match the router's shards. *)
