(** The serving runtime: admission queue → dynamic batcher → worker pool,
    driven on a deterministic virtual clock.

    The engine runs in two phases:

    + {e Virtual-time scheduling} (single-threaded, deterministic): walk
      the arrival trace in time order; admit each request through the
      bounded {!Rqueue} (rejecting with backpressure when the window of
      queued-but-unstarted requests is full), form batches per
      {!Batcher}'s size-or-deadline policy, and assign each batch to the
      earliest-free worker of a pool of [workers] logical servers. Batch
      service time is charged from the {!Registry}'s deterministic model:
      a fixed dispatch overhead, the modeled compile cost when the
      predictor cache misses, and [size × us_per_row]. Every latency in
      {!Metrics} comes from this clock, so a fixed trace yields identical
      numbers on any host.
    + {e Execution} (parallel, real): the scheduled batches are executed
      on OCaml [Domain]s — one per worker, each running its assigned
      batches through {!Tb_vm.Jit.compile_single_thread} predictors
      (serving-level parallelism replaces the schedule's row-loop
      threads). Outputs land in per-request slots, and an equivalence
      check compares them bitwise against one direct whole-trace predictor
      call per model: batching, caching and parallel dispatch must never
      change a result. *)

type request = {
  id : int;  (** dense 0..n-1; indexes the result's output slots *)
  model : string;
  row : float array;
  arrival_us : float;
}

type config = {
  queue_capacity : int;
      (** max requests admitted but not yet dispatched to a worker *)
  batch_max : int;
  deadline_us : float;
  workers : int;
  dispatch_overhead_us : float;
      (** fixed virtual cost per batch: queue handoff + output scatter *)
}

val default_config : config
(** capacity 1024, batch 32, deadline 500µs, 2 workers, 20µs overhead. *)

type batch_exec = {
  batch_id : int;
  worker : int;
  cause : Batcher.cause;
  compiled : Registry.compiled;
  cache_hit : bool;
  requests : request array;
  formed_us : float;
  start_us : float;
  finish_us : float;
}

type result = {
  outputs : float array option array;
      (** per request id: the margin vector, [None] when rejected *)
  batches : batch_exec list;  (** dispatch order *)
  rejects : request list;  (** arrival order *)
  metrics : Metrics.t;
  queue_stats : Rqueue.stats;
  cache_stats : Policy.stats;
  compile_count : int;
  equivalence_failures : int;
      (** requests whose served output differs bitwise from the direct
          single-call JIT prediction; 0 on a healthy run *)
}

val run :
  ?config:config ->
  schedule:Tb_hir.Schedule.t ->
  Registry.t ->
  request array ->
  result
(** Serve a trace. Requests may arrive in any order (they are sorted by
    arrival time, stably); ids must be exactly 0..n-1.
    @raise Invalid_argument on malformed ids or config fields, and
    [Not_found] when a request names an unregistered model. *)
