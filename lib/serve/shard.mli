(** One serving shard: admission queue → dynamic batcher → deadline-aware
    scheduler → worker pool, wrapped around its own {!Registry}, driven on
    a deterministic virtual clock.

    A shard is the instantiable unit a sharded fleet replicates: it owns a
    registry (in-memory predictor cache plus optional on-disk artifact
    store), a bounded admission window, a batcher, a pending-batch
    {!Scheduler} and a pool of logical workers, and its own {!Metrics}.
    {!Runtime.run} is a fleet of one; {!Runtime.run_fleet} routes a trace
    across many.

    The engine runs in two phases:

    + {e Virtual-time scheduling} (single-threaded, deterministic): walk
      the arrival trace in time order; admit each request through the
      graded shed ladder and the bounded {!Rqueue}; form batches per
      {!Batcher}'s size-or-deadline policy into the pending pool; hand
      each freed worker the pool's highest-priority batch (formation
      order under FIFO — exactly the pre-pool greedy assignment — or
      earliest deadline first under EDF). Batch service time is charged
      from the {!Registry}'s deterministic model, so a fixed trace yields
      identical numbers on any host.
    + {e Execution} (parallel, real): the scheduled batches are executed
      on OCaml [Domain]s — one per worker — and outputs land in
      per-request slots. An equivalence check compares them bitwise
      against one direct whole-trace predictor call per model: batching,
      caching, scheduling and parallel dispatch must never change a
      result.

    The execution {!mode} decides whether the second phase also times the
    wall clock; see {!Runtime} for the dual-clock contract. *)

type request = {
  id : int;  (** indexes the output array handed to {!serve} *)
  model : string;
  row : float array;
  arrival_us : float;
}

type mode =
  | Virtual  (** deterministic simulation only (the default) *)
  | Wall  (** also time real execution and report wall metrics *)
  | Dual  (** wall metrics plus per-model wall/virtual drift *)

val mode_to_string : mode -> string

val mode_of_string : string -> (mode, string) Stdlib.result
(** ["virtual"], ["wall"], ["dual"]. *)

type config = {
  queue_capacity : int;
      (** max requests admitted but not yet dispatched to a worker *)
  batch_max : int;
  deadline_us : float;
  workers : int;
  dispatch_overhead_us : float;
      (** fixed virtual cost per batch: queue handoff + output scatter *)
  scheduling : Scheduler.policy;
      (** pending-batch dispatch order: FIFO (the historical behaviour)
          or EDF. Under EDF a model with an SLO budget also stops
          batching at half its budget
          ({!Batcher.create}'s [deadline_us_for]). *)
  slo_us : (string * float) list;
      (** per-model end-to-end latency budgets, virtual µs; budgets feed
          EDF deadlines, per-model SLO attainment in {!Metrics} and the
          shed ladder's classes *)
  default_slo_us : float option;
      (** budget for models without an [slo_us] entry; [None] leaves
          them unscored (and last under EDF) *)
  shed_lo : float;
      (** admission-window occupancy (0..1) where graded shedding
          starts; the default 2.0 can never trigger — shedding off *)
  shed_hi : float;
      (** occupancy where every class but the tightest is shed; between
          [shed_lo] and [shed_hi] the loosest classes go first *)
  pending_cap : int;
      (** max formed-but-undispatched batches; overflow sheds the
          lowest-priority pending batch *)
  precision : Tb_core.Treebeard.precision;
      (** precision tier requested for every compile this engine
          dispatches (see {!Registry.compiled}): a quantized request
          serves the integer fast path for models that certify clean and
          falls back per model otherwise. Default [`Float]. *)
}

val default_config : config
(** capacity 1024, batch 32, deadline 500µs, 2 workers, 20µs overhead,
    FIFO, no SLOs, shedding off, unbounded pending pool — the exact
    pre-sharding engine. *)

type batch_exec = {
  batch_id : int;
  worker : int;
  cause : Batcher.cause;
  compiled : Registry.compiled;
  tier : Registry.provenance;
      (** which registry tier answered this batch's lookup; decides the
          modeled acquire cost charged on the virtual clock ([`Hit] free,
          [`Disk] [hydrate_us], [`Compile] [compile_us]) and the measured
          cost on the wall replay *)
  requests : request array;
  formed_us : float;
  start_us : float;
  finish_us : float;
  mutable wall_predict_us : float;
      (** measured wall time of this batch's [predict] call; 0 in
          [Virtual] mode *)
}

type result = {
  outputs : float array option array;
      (** the array handed to {!serve}: per request id the margin
          vector, [None] when rejected (or served by another shard) *)
  batches : batch_exec list;  (** dispatch order *)
  rejects : request list;  (** arrival order; includes shed requests *)
  metrics : Metrics.t;
  queue_stats : Rqueue.stats;
  cache_stats : Policy.stats;
  compile_count : int;
  hydration_count : int;
      (** registry disk-tier hydrations over the run (0 without a
          [cache_dir]) *)
  foreign_hydration_count : int;
      (** hydrations of artifacts this shard's registry never compiled —
          shipped in from another shard or a previous process *)
  equivalence_failures : int;
      (** requests whose served output differs bitwise from the direct
          single-call JIT prediction; 0 on a healthy run *)
  drift : Tb_analysis.Serve_check.model_drift list;
      (** per-model wall/virtual drift (registration order); empty unless
          the run was [Dual] *)
}

type t
(** A shard: engine configuration plus its registry. Serving state is
    per-{!serve} call; registry cache state persists across calls. *)

val create :
  ?id:int -> ?config:config -> schedule:Tb_hir.Schedule.t -> Registry.t -> t
(** @raise Invalid_argument on malformed config fields (non-positive
    knobs, [shed_hi < shed_lo], non-positive SLO budgets) or a negative
    id. *)

val id : t -> int
val registry : t -> Registry.t
val config_of : t -> config

val serve :
  ?mode:mode -> t -> outputs:float array option array -> request array -> result
(** Serve this shard's slice of a trace (default mode [Virtual]).
    Requests may arrive in any order (they are sorted by arrival time,
    stably); each request's [id] must index [outputs] — the fleet hands
    every shard the same shared array. Counters in the result snapshot
    the registry's cumulative totals.
    @raise Not_found when a request names an unregistered model. *)
