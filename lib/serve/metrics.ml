module H = Tb_util.Stats.Histogram
module J = Tb_util.Json

type t = {
  queue_wait_us : H.t;
  service_us : H.t;
  total_us : H.t;
  batch_size : H.t;
  queue_depth : H.t;
  mutable arrivals : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable batches : int;
  mutable by_size : int;
  mutable by_deadline : int;
  mutable by_flush : int;
  mutable tier_hit : int;
  mutable tier_disk : int;
  mutable tier_compile : int;
  mutable rows_served : int;
  mutable makespan_us : float;
  (* Parallel wall-clock set, populated only by wall/dual-mode runs. The
     virtual histograms above are never touched by wall recording, so a
     virtual report stays byte-identical whatever the mode measured. *)
  wall_queue_wait_us : H.t;
  wall_service_us : H.t;
  wall_total_us : H.t;
  mutable wall_completed : int;
  mutable wall_rows : int;
  mutable wall_makespan_us : float;
}

let create () =
  {
    queue_wait_us = H.create ();
    service_us = H.create ();
    total_us = H.create ();
    (* Counts (batch sizes, queue depths) are small integers: a finer
       near-1 resolution keeps their quantiles exact. *)
    batch_size = H.create ~lo:1.0 ~hi:1e6 ~per_decade:32 ();
    queue_depth = H.create ~lo:1.0 ~hi:1e6 ~per_decade:32 ();
    arrivals = 0;
    admitted = 0;
    rejected = 0;
    completed = 0;
    batches = 0;
    by_size = 0;
    by_deadline = 0;
    by_flush = 0;
    tier_hit = 0;
    tier_disk = 0;
    tier_compile = 0;
    rows_served = 0;
    makespan_us = 0.0;
    wall_queue_wait_us = H.create ();
    wall_service_us = H.create ();
    wall_total_us = H.create ();
    wall_completed = 0;
    wall_rows = 0;
    wall_makespan_us = 0.0;
  }

let record_arrival t ~depth =
  t.arrivals <- t.arrivals + 1;
  H.add t.queue_depth (float_of_int depth)

let record_reject t = t.rejected <- t.rejected + 1
let record_admit t = t.admitted <- t.admitted + 1

let record_batch t ~size ~cause =
  t.batches <- t.batches + 1;
  H.add t.batch_size (float_of_int size);
  match (cause : Batcher.cause) with
  | Batcher.By_size -> t.by_size <- t.by_size + 1
  | Batcher.By_deadline -> t.by_deadline <- t.by_deadline + 1
  | Batcher.By_flush -> t.by_flush <- t.by_flush + 1

let record_tier t tier =
  match (tier : [ `Hit | `Disk | `Compile ]) with
  | `Hit -> t.tier_hit <- t.tier_hit + 1
  | `Disk -> t.tier_disk <- t.tier_disk + 1
  | `Compile -> t.tier_compile <- t.tier_compile + 1

let record_completion t ~arrival_us ~start_us ~finish_us =
  t.completed <- t.completed + 1;
  t.rows_served <- t.rows_served + 1;
  H.add t.queue_wait_us (start_us -. arrival_us);
  H.add t.service_us (finish_us -. start_us);
  H.add t.total_us (finish_us -. arrival_us);
  if finish_us > t.makespan_us then t.makespan_us <- finish_us

let record_wall_completion t ~arrival_us ~start_us ~finish_us =
  t.wall_completed <- t.wall_completed + 1;
  t.wall_rows <- t.wall_rows + 1;
  H.add t.wall_queue_wait_us (start_us -. arrival_us);
  H.add t.wall_service_us (finish_us -. start_us);
  H.add t.wall_total_us (finish_us -. arrival_us);
  if finish_us > t.wall_makespan_us then t.wall_makespan_us <- finish_us

let throughput_rows_per_s t =
  if t.makespan_us <= 0.0 then 0.0
  else float_of_int t.rows_served /. (t.makespan_us /. 1e6)

let wall_throughput_rows_per_s t =
  if t.wall_makespan_us <= 0.0 then 0.0
  else float_of_int t.wall_rows /. (t.wall_makespan_us /. 1e6)

let wall_to_json t =
  J.Obj
    [
      ("completed", J.Num (float_of_int t.wall_completed));
      ("latency_total_us", H.to_json t.wall_total_us);
      ("latency_queue_wait_us", H.to_json t.wall_queue_wait_us);
      ("latency_service_us", H.to_json t.wall_service_us);
      ("makespan_us", J.Num t.wall_makespan_us);
      ("throughput_rows_per_s", J.Num (wall_throughput_rows_per_s t));
    ]

let to_json ?(include_wall = true) t =
  let fields =
    [
      ("arrivals", J.Num (float_of_int t.arrivals));
      ("admitted", J.Num (float_of_int t.admitted));
      ("rejected", J.Num (float_of_int t.rejected));
      ("completed", J.Num (float_of_int t.completed));
      ("batches", J.Num (float_of_int t.batches));
      ( "batch_cause",
        J.Obj
          [
            ("size", J.Num (float_of_int t.by_size));
            ("deadline", J.Num (float_of_int t.by_deadline));
            ("flush", J.Num (float_of_int t.by_flush));
          ] );
      ( "cache_tier",
        J.Obj
          [
            ("hit", J.Num (float_of_int t.tier_hit));
            ("disk", J.Num (float_of_int t.tier_disk));
            ("compile", J.Num (float_of_int t.tier_compile));
          ] );
      ("latency_total_us", H.to_json t.total_us);
      ("latency_queue_wait_us", H.to_json t.queue_wait_us);
      ("latency_service_us", H.to_json t.service_us);
      ("batch_size", H.to_json t.batch_size);
      ("queue_depth", H.to_json t.queue_depth);
      ("makespan_us", J.Num t.makespan_us);
      ("throughput_rows_per_s", J.Num (throughput_rows_per_s t));
    ]
    (* The wall key appears only when a wall/dual run actually recorded
       completions: stripping it (or never measuring) recovers the
       byte-identical virtual report. *)
    @
    if include_wall && t.wall_completed > 0 then
      [ ("wall", wall_to_json t) ]
    else []
  in
  J.Obj fields
