module H = Tb_util.Stats.Histogram
module J = Tb_util.Json

(* Per-model SLO attainment: completions within / beyond the model's
   latency budget on the virtual clock. *)
type slo_cell = { mutable slo_met : int; mutable slo_missed : int }

type t = {
  queue_wait_us : H.t;
  service_us : H.t;
  total_us : H.t;
  batch_size : H.t;
  queue_depth : H.t;
  slo_by_model : (string, slo_cell) Hashtbl.t;
  mutable arrivals : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable shed_admission : int;
  mutable shed_backlog : int;
  mutable completed : int;
  mutable batches : int;
  mutable by_size : int;
  mutable by_deadline : int;
  mutable by_flush : int;
  mutable tier_hit : int;
  mutable tier_disk : int;
  mutable tier_compile : int;
  mutable rows_served : int;
  mutable makespan_us : float;
  (* Parallel wall-clock set, populated only by wall/dual-mode runs. The
     virtual histograms above are never touched by wall recording, so a
     virtual report stays byte-identical whatever the mode measured. *)
  wall_queue_wait_us : H.t;
  wall_service_us : H.t;
  wall_total_us : H.t;
  mutable wall_completed : int;
  mutable wall_rows : int;
  mutable wall_makespan_us : float;
}

let create () =
  {
    queue_wait_us = H.create ();
    service_us = H.create ();
    total_us = H.create ();
    (* Counts (batch sizes, queue depths) are small integers: a finer
       near-1 resolution keeps their quantiles exact. *)
    batch_size = H.create ~lo:1.0 ~hi:1e6 ~per_decade:32 ();
    queue_depth = H.create ~lo:1.0 ~hi:1e6 ~per_decade:32 ();
    slo_by_model = Hashtbl.create 8;
    arrivals = 0;
    admitted = 0;
    rejected = 0;
    shed_admission = 0;
    shed_backlog = 0;
    completed = 0;
    batches = 0;
    by_size = 0;
    by_deadline = 0;
    by_flush = 0;
    tier_hit = 0;
    tier_disk = 0;
    tier_compile = 0;
    rows_served = 0;
    makespan_us = 0.0;
    wall_queue_wait_us = H.create ();
    wall_service_us = H.create ();
    wall_total_us = H.create ();
    wall_completed = 0;
    wall_rows = 0;
    wall_makespan_us = 0.0;
  }

let record_arrival t ~depth =
  t.arrivals <- t.arrivals + 1;
  H.add t.queue_depth (float_of_int depth)

let record_reject t = t.rejected <- t.rejected + 1
let record_admit t = t.admitted <- t.admitted + 1

let record_shed t ~n cause =
  match (cause : [ `Admission | `Backlog ]) with
  | `Admission -> t.shed_admission <- t.shed_admission + n
  | `Backlog -> t.shed_backlog <- t.shed_backlog + n

let record_batch t ~size ~cause =
  t.batches <- t.batches + 1;
  H.add t.batch_size (float_of_int size);
  match (cause : Batcher.cause) with
  | Batcher.By_size -> t.by_size <- t.by_size + 1
  | Batcher.By_deadline -> t.by_deadline <- t.by_deadline + 1
  | Batcher.By_flush -> t.by_flush <- t.by_flush + 1

let record_tier t tier =
  match (tier : [ `Hit | `Disk | `Compile ]) with
  | `Hit -> t.tier_hit <- t.tier_hit + 1
  | `Disk -> t.tier_disk <- t.tier_disk + 1
  | `Compile -> t.tier_compile <- t.tier_compile + 1

let slo_cell t model =
  match Hashtbl.find_opt t.slo_by_model model with
  | Some c -> c
  | None ->
    let c = { slo_met = 0; slo_missed = 0 } in
    Hashtbl.replace t.slo_by_model model c;
    c

let record_completion ?slo t ~arrival_us ~start_us ~finish_us =
  t.completed <- t.completed + 1;
  t.rows_served <- t.rows_served + 1;
  H.add t.queue_wait_us (start_us -. arrival_us);
  H.add t.service_us (finish_us -. start_us);
  H.add t.total_us (finish_us -. arrival_us);
  (match slo with
  | None -> ()
  | Some (model, budget_us) ->
    let c = slo_cell t model in
    if finish_us -. arrival_us <= budget_us then c.slo_met <- c.slo_met + 1
    else c.slo_missed <- c.slo_missed + 1);
  if finish_us > t.makespan_us then t.makespan_us <- finish_us

let record_wall_completion t ~arrival_us ~start_us ~finish_us =
  t.wall_completed <- t.wall_completed + 1;
  t.wall_rows <- t.wall_rows + 1;
  H.add t.wall_queue_wait_us (start_us -. arrival_us);
  H.add t.wall_service_us (finish_us -. start_us);
  H.add t.wall_total_us (finish_us -. arrival_us);
  if finish_us > t.wall_makespan_us then t.wall_makespan_us <- finish_us

let throughput_rows_per_s t =
  if t.makespan_us <= 0.0 then 0.0
  else float_of_int t.rows_served /. (t.makespan_us /. 1e6)

let wall_throughput_rows_per_s t =
  if t.wall_makespan_us <= 0.0 then 0.0
  else float_of_int t.wall_rows /. (t.wall_makespan_us /. 1e6)

let slo_attainment t model =
  match Hashtbl.find_opt t.slo_by_model model with
  | None -> None
  | Some c ->
    let n = c.slo_met + c.slo_missed in
    if n = 0 then None else Some (float_of_int c.slo_met /. float_of_int n)

let slo_models t =
  Hashtbl.fold (fun m _ acc -> m :: acc) t.slo_by_model []
  |> List.sort compare

(* Roll per-shard snapshots into one fleet view. The geometric-bucket
   histograms merge exactly (Histogram.merge_into), counters add, and
   the fleet makespan is the latest shard's; per-model SLO cells add
   across shards (a model lives on one shard, but a rebalance can split
   its completions across two). *)
let merge ts =
  let m = create () in
  List.iter
    (fun s ->
      H.merge_into m.queue_wait_us s.queue_wait_us;
      H.merge_into m.service_us s.service_us;
      H.merge_into m.total_us s.total_us;
      H.merge_into m.batch_size s.batch_size;
      H.merge_into m.queue_depth s.queue_depth;
      Hashtbl.iter
        (fun model c ->
          let dst = slo_cell m model in
          dst.slo_met <- dst.slo_met + c.slo_met;
          dst.slo_missed <- dst.slo_missed + c.slo_missed)
        s.slo_by_model;
      m.arrivals <- m.arrivals + s.arrivals;
      m.admitted <- m.admitted + s.admitted;
      m.rejected <- m.rejected + s.rejected;
      m.shed_admission <- m.shed_admission + s.shed_admission;
      m.shed_backlog <- m.shed_backlog + s.shed_backlog;
      m.completed <- m.completed + s.completed;
      m.batches <- m.batches + s.batches;
      m.by_size <- m.by_size + s.by_size;
      m.by_deadline <- m.by_deadline + s.by_deadline;
      m.by_flush <- m.by_flush + s.by_flush;
      m.tier_hit <- m.tier_hit + s.tier_hit;
      m.tier_disk <- m.tier_disk + s.tier_disk;
      m.tier_compile <- m.tier_compile + s.tier_compile;
      m.rows_served <- m.rows_served + s.rows_served;
      if s.makespan_us > m.makespan_us then m.makespan_us <- s.makespan_us;
      H.merge_into m.wall_queue_wait_us s.wall_queue_wait_us;
      H.merge_into m.wall_service_us s.wall_service_us;
      H.merge_into m.wall_total_us s.wall_total_us;
      m.wall_completed <- m.wall_completed + s.wall_completed;
      m.wall_rows <- m.wall_rows + s.wall_rows;
      if s.wall_makespan_us > m.wall_makespan_us then
        m.wall_makespan_us <- s.wall_makespan_us)
    ts;
  m

let slo_to_json t =
  J.Obj
    (List.map
       (fun model ->
         let c = Hashtbl.find t.slo_by_model model in
         let n = c.slo_met + c.slo_missed in
         ( model,
           J.Obj
             [
               ("met", J.Num (float_of_int c.slo_met));
               ("missed", J.Num (float_of_int c.slo_missed));
               ( "attainment",
                 J.Num
                   (if n = 0 then 0.0
                    else float_of_int c.slo_met /. float_of_int n) );
             ] ))
       (slo_models t))

let wall_to_json t =
  J.Obj
    [
      ("completed", J.Num (float_of_int t.wall_completed));
      ("latency_total_us", H.to_json t.wall_total_us);
      ("latency_queue_wait_us", H.to_json t.wall_queue_wait_us);
      ("latency_service_us", H.to_json t.wall_service_us);
      ("makespan_us", J.Num t.wall_makespan_us);
      ("throughput_rows_per_s", J.Num (wall_throughput_rows_per_s t));
    ]

let to_json ?(include_wall = true) t =
  let fields =
    [
      ("arrivals", J.Num (float_of_int t.arrivals));
      ("admitted", J.Num (float_of_int t.admitted));
      ("rejected", J.Num (float_of_int t.rejected));
      ("completed", J.Num (float_of_int t.completed));
      ("batches", J.Num (float_of_int t.batches));
      ( "batch_cause",
        J.Obj
          [
            ("size", J.Num (float_of_int t.by_size));
            ("deadline", J.Num (float_of_int t.by_deadline));
            ("flush", J.Num (float_of_int t.by_flush));
          ] );
      ( "cache_tier",
        J.Obj
          [
            ("hit", J.Num (float_of_int t.tier_hit));
            ("disk", J.Num (float_of_int t.tier_disk));
            ("compile", J.Num (float_of_int t.tier_compile));
          ] );
      ( "shed",
        J.Obj
          [
            ("admission", J.Num (float_of_int t.shed_admission));
            ("backlog", J.Num (float_of_int t.shed_backlog));
          ] );
      ("latency_total_us", H.to_json t.total_us);
      ("latency_queue_wait_us", H.to_json t.queue_wait_us);
      ("latency_service_us", H.to_json t.service_us);
      ("batch_size", H.to_json t.batch_size);
      ("queue_depth", H.to_json t.queue_depth);
      ("makespan_us", J.Num t.makespan_us);
      ("throughput_rows_per_s", J.Num (throughput_rows_per_s t));
    ]
    (* SLO scoring appears only when budgets were supplied, so unscored
       runs keep their exact historical report shape. *)
    @ (if Hashtbl.length t.slo_by_model > 0 then [ ("slo", slo_to_json t) ]
       else [])
    (* The wall key appears only when a wall/dual run actually recorded
       completions: stripping it (or never measuring) recovers the
       byte-identical virtual report. *)
    @
    if include_wall && t.wall_completed > 0 then
      [ ("wall", wall_to_json t) ]
    else []
  in
  J.Obj fields
