(** Pluggable eviction policies for the compiled-predictor cache.

    A bounded keyed cache with two interchangeable policies:

    - {e LRU}: classic move-to-front on hit, evict the tail. Strong on
      skewed reuse, but a burst of one-hit-wonder keys (a scan over many
      cold models) flushes the hot set.
    - {e SIEVE}: FIFO insertion order with a lazy second-chance sweep — a
      hit only marks the entry visited; eviction advances a hand from the
      tail toward the head, clearing visited marks until it finds an
      unvisited entry. Scan-resistant at LRU's cost, without per-hit list
      surgery (SIEVE, NSDI'24).

    Serving workloads hot-swap models, so the policy is a real lever: the
    cache keys are (model, schedule, target) triples and a miss costs a
    full compile. All operations are O(1) amortized; the structure is not
    thread-safe — the serving runtime confines it to the dispatch thread. *)

type kind =
  | Lru
  | Sieve

val kind_to_string : kind -> string

val kind_of_string : string -> (kind, string) result
(** Accepts ["lru"] and ["sieve"]. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;  (** {!find} calls that returned [None] *)
  insertions : int;
  evictions : int;
}

val create : ?capacity:int -> kind -> ('k, 'v) t
(** Default capacity 16. @raise Invalid_argument when [capacity < 1]. *)

val kind_of : ('k, 'v) t -> kind
val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Policy-aware lookup: updates recency (LRU) or the visited mark
    (SIEVE), and the hit/miss counters. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure membership probe: no policy state or counter updates. *)

val put : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or update a binding, returning the binding evicted to make
    room, if any. An update of an existing key never evicts. *)

val stats : ('k, 'v) t -> stats

val hit_ratio : ('k, 'v) t -> float
(** hits / (hits + misses); 0 before any lookup. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Visit every binding, head to tail. Pure with respect to the policy:
    no recency/visited-mark or counter updates — calibration sweeps over
    cached entries must not skew hit statistics. *)

val contents : ('k, 'v) t -> 'k list
(** Keys from the insertion/recency head to the eviction tail — test
    visibility into the policy's internal order. *)

val stats_to_json : stats -> Tb_util.Json.t
