(* The single-shard serving engine lives in {!Shard}; this module keeps
   the historical single-shard entry point (a fleet of one) and adds the
   sharded fleet: routed admission, per-shard engines, merged metrics. *)

type request = Shard.request = {
  id : int;
  model : string;
  row : float array;
  arrival_us : float;
}

type mode = Shard.mode = Virtual | Wall | Dual

let mode_to_string = Shard.mode_to_string
let mode_of_string = Shard.mode_of_string

type config = Shard.config = {
  queue_capacity : int;
  batch_max : int;
  deadline_us : float;
  workers : int;
  dispatch_overhead_us : float;
  scheduling : Scheduler.policy;
  slo_us : (string * float) list;
  default_slo_us : float option;
  shed_lo : float;
  shed_hi : float;
  pending_cap : int;
  precision : Tb_core.Treebeard.precision;
}

let default_config = Shard.default_config

type batch_exec = Shard.batch_exec = {
  batch_id : int;
  worker : int;
  cause : Batcher.cause;
  compiled : Registry.compiled;
  tier : Registry.provenance;
  requests : request array;
  formed_us : float;
  start_us : float;
  finish_us : float;
  mutable wall_predict_us : float;
}

type result = Shard.result = {
  outputs : float array option array;
  batches : batch_exec list;
  rejects : request list;
  metrics : Metrics.t;
  queue_stats : Rqueue.stats;
  cache_stats : Policy.stats;
  compile_count : int;
  hydration_count : int;
  foreign_hydration_count : int;
  equivalence_failures : int;
  drift : Tb_analysis.Serve_check.model_drift list;
}

let validate_ids requests =
  let n = Array.length requests in
  let seen = Array.make (max n 1) false in
  Array.iter
    (fun r ->
      if r.id < 0 || r.id >= n || seen.(r.id) then
        invalid_arg "Runtime.run: request ids must be exactly 0..n-1";
      seen.(r.id) <- true)
    requests

let run ?(config = default_config) ?(mode = Virtual) ~schedule registry
    requests =
  validate_ids requests;
  let shard = Shard.create ~config ~schedule registry in
  let outputs = Array.make (Array.length requests) None in
  Shard.serve ~mode shard ~outputs requests

(* ------------------------------------------------------------------ *)
(* The fleet: routed admission over per-shard engines                  *)

type fleet_result = {
  fleet_outputs : float array option array;
  shard_results : (int * result) list;  (** ascending shard id *)
  fleet_metrics : Metrics.t;  (** {!Metrics.merge} over the shards *)
  fleet_rejects : request list;  (** arrival order across the fleet *)
  fleet_router : Router.t;
  fleet_compiles : int;
  fleet_hydrations : int;
  fleet_foreign_hydrations : int;
  fleet_equivalence_failures : int;
}

let run_fleet ?(config = default_config) ?(mode = Virtual) ~schedule ~router
    registries requests =
  validate_ids requests;
  let registries =
    List.sort (fun (a, _) (b, _) -> compare a b) registries
  in
  if List.map fst registries <> Router.shard_ids router then
    invalid_arg
      "Runtime.run_fleet: registries must cover the router's live shards";
  let n = Array.length requests in
  let outputs = Array.make n None in
  (* Routed admission: the router partitions the trace by model, so a
     model's requests all land on one shard (its artifacts stay hot
     there) and every process agrees on the split. Partitioning preserves
     arrival order within a shard. *)
  let parts = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      let sid = Router.route router r.model in
      Hashtbl.replace parts sid
        (r :: Option.value ~default:[] (Hashtbl.find_opt parts sid)))
    requests;
  (* Shards run one after another (each one's virtual phase is already
     sequential, and its execution phase joins its domains), in ascending
     id order — the fleet is deterministic end to end. *)
  let shard_results =
    List.map
      (fun (sid, reg) ->
        let part =
          Option.value ~default:[] (Hashtbl.find_opt parts sid)
          |> List.rev |> Array.of_list
        in
        let shard = Shard.create ~id:sid ~config ~schedule reg in
        (sid, Shard.serve ~mode shard ~outputs part))
      registries
  in
  let results = List.map snd shard_results in
  let rejects =
    List.concat_map (fun r -> r.rejects) results
    |> List.stable_sort (fun a b -> compare (a.arrival_us, a.id) (b.arrival_us, b.id))
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  {
    fleet_outputs = outputs;
    shard_results;
    fleet_metrics = Metrics.merge (List.map (fun r -> r.metrics) results);
    fleet_rejects = rejects;
    fleet_router = router;
    fleet_compiles = sum (fun r -> r.compile_count);
    fleet_hydrations = sum (fun r -> r.hydration_count);
    fleet_foreign_hydrations = sum (fun r -> r.foreign_hydration_count);
    fleet_equivalence_failures = sum (fun r -> r.equivalence_failures);
  }
