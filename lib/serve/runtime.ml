type request = {
  id : int;
  model : string;
  row : float array;
  arrival_us : float;
}

type mode = Virtual | Wall | Dual

let mode_to_string = function
  | Virtual -> "virtual"
  | Wall -> "wall"
  | Dual -> "dual"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "virtual" -> Ok Virtual
  | "wall" -> Ok Wall
  | "dual" -> Ok Dual
  | s ->
    Error
      (Printf.sprintf
         "unknown execution mode %S (expected virtual, wall or dual)" s)

type config = {
  queue_capacity : int;
  batch_max : int;
  deadline_us : float;
  workers : int;
  dispatch_overhead_us : float;
}

let default_config =
  {
    queue_capacity = 1024;
    batch_max = 32;
    deadline_us = 500.0;
    workers = 2;
    dispatch_overhead_us = 20.0;
  }

type batch_exec = {
  batch_id : int;
  worker : int;
  cause : Batcher.cause;
  compiled : Registry.compiled;
  tier : Registry.provenance;
  requests : request array;
  formed_us : float;
  start_us : float;
  finish_us : float;
  mutable wall_predict_us : float;
}

type result = {
  outputs : float array option array;
  batches : batch_exec list;
  rejects : request list;
  metrics : Metrics.t;
  queue_stats : Rqueue.stats;
  cache_stats : Policy.stats;
  compile_count : int;
  hydration_count : int;
  equivalence_failures : int;
  drift : Tb_analysis.Serve_check.model_drift list;
}

let validate_config c =
  if c.queue_capacity < 1 then invalid_arg "Runtime: queue_capacity < 1";
  if c.batch_max < 1 then invalid_arg "Runtime: batch_max < 1";
  if not (c.deadline_us > 0.0) then invalid_arg "Runtime: deadline_us <= 0";
  if c.workers < 1 then invalid_arg "Runtime: workers < 1";
  if c.dispatch_overhead_us < 0.0 then
    invalid_arg "Runtime: dispatch_overhead_us < 0"

type state = {
  cfg : config;
  registry : Registry.t;
  schedule : Tb_hir.Schedule.t;
  rq : request Rqueue.t;
  batcher : request Batcher.t;
  busy_until : float array;  (* per worker *)
  (* Dispatched batches whose virtual start hasn't passed yet: (start,
     size), FIFO. Starts are non-decreasing in dispatch order (each
     dispatch takes the current earliest-free worker, and formation times
     are non-decreasing), so retiring the head suffices. *)
  inflight : (float * int) Queue.t;
  metrics : Metrics.t;
  mutable batch_seq : int;
  mutable batches_rev : batch_exec list;
  mutable rejects_rev : request list;
  (* Last compiled entry per model, kept out of the eviction cache so the
     post-run equivalence check doesn't perturb cache statistics. *)
  by_model : (string, Registry.compiled) Hashtbl.t;
}

(* Retire queue slots of batches that have started by [now]: those
   requests are on a worker, not in the bounded admission window. *)
let retire_started st ~now =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt st.inflight with
    | Some (start, size) when start <= now ->
      ignore (Queue.pop st.inflight);
      Rqueue.drop_n st.rq size
    | _ -> continue := false
  done

let dispatch st (b : request Batcher.batch) =
  let compiled, tier =
    Registry.compiled st.registry ~model:b.Batcher.model ~schedule:st.schedule
  in
  Hashtbl.replace st.by_model b.Batcher.model compiled;
  let worker = ref 0 in
  for w = 1 to Array.length st.busy_until - 1 do
    if st.busy_until.(w) < st.busy_until.(!worker) then worker := w
  done;
  let w = !worker in
  let size = Array.length b.Batcher.requests in
  let start = Float.max b.Batcher.formed_us st.busy_until.(w) in
  (* Each tier's modeled cost on the virtual clock: a memory hit is free,
     a disk hydration pays the (cheap) decode+instantiate model, a fresh
     compile pays the full pipeline model. All three are deterministic. *)
  let acquire_us =
    match tier with
    | `Hit -> 0.0
    | `Disk -> compiled.Registry.hydrate_us
    | `Compile -> compiled.Registry.compile_us
  in
  let service =
    st.cfg.dispatch_overhead_us
    +. acquire_us
    +. (float_of_int size *. compiled.Registry.us_per_row)
  in
  let finish = start +. service in
  st.busy_until.(w) <- finish;
  Queue.push (start, size) st.inflight;
  Metrics.record_batch st.metrics ~size ~cause:b.Batcher.cause;
  Metrics.record_tier st.metrics tier;
  Array.iteri
    (fun i _ ->
      Metrics.record_completion st.metrics
        ~arrival_us:b.Batcher.arrivals_us.(i) ~start_us:start ~finish_us:finish)
    b.Batcher.requests;
  st.batch_seq <- st.batch_seq + 1;
  st.batches_rev <-
    {
      batch_id = st.batch_seq - 1;
      worker = w;
      cause = b.Batcher.cause;
      compiled;
      tier;
      requests = b.Batcher.requests;
      formed_us = b.Batcher.formed_us;
      start_us = start;
      finish_us = finish;
      wall_predict_us = 0.0;
    }
    :: st.batches_rev

(* ------------------------------------------------------------------ *)
(* Phase 1: virtual-time scheduling                                    *)

let schedule_trace st requests =
  Array.iter
    (fun req ->
      let now = req.arrival_us in
      (* Deadlines that elapsed before this arrival fire first. *)
      List.iter (dispatch st) (Batcher.expire st.batcher ~now);
      retire_started st ~now;
      Metrics.record_arrival st.metrics ~depth:(Rqueue.length st.rq);
      if Rqueue.try_push st.rq req then begin
        Metrics.record_admit st.metrics;
        match
          Batcher.add st.batcher ~model:req.model ~arrival_us:now req
        with
        | Some b -> dispatch st b
        | None -> ()
      end
      else begin
        Metrics.record_reject st.metrics;
        st.rejects_rev <- req :: st.rejects_rev
      end)
    requests;
  (* The trace is over but the server keeps running: every remaining
     group fires at its own deadline. *)
  let rec drain () =
    match Batcher.next_deadline st.batcher with
    | None -> ()
    | Some d ->
      List.iter (dispatch st) (Batcher.expire st.batcher ~now:d);
      drain ()
  in
  drain ();
  retire_started st ~now:infinity

(* ------------------------------------------------------------------ *)
(* Phase 2: parallel execution on domains                              *)

let execute ~timed cfg batches outputs =
  let by_worker = Array.make cfg.workers [] in
  List.iter
    (fun b -> by_worker.(b.worker) <- b :: by_worker.(b.worker))
    (List.rev batches);
  let run_worker assigned () =
    List.iter
      (fun b ->
        let rows = Array.map (fun r -> r.row) b.requests in
        let outs =
          if timed then begin
            (* Each batch belongs to exactly one worker, so writing its
               wall measurement from that worker's domain is race-free;
               the joins below publish it to the replay. *)
            let t0 = Tb_util.Timer.now () in
            let outs = b.compiled.Registry.predict rows in
            b.wall_predict_us <- (Tb_util.Timer.now () -. t0) *. 1e6;
            outs
          end
          else b.compiled.Registry.predict rows
        in
        Array.iteri
          (fun i r -> outputs.(r.id) <- Some outs.(i))
          b.requests)
      (List.rev assigned)
  in
  let domains =
    Array.to_list by_worker
    |> List.filter_map (fun assigned ->
           if assigned = [] then None
           else Some (Domain.spawn (run_worker assigned)))
  in
  List.iter Domain.join domains

(* ------------------------------------------------------------------ *)
(* Wall timeline + drift (wall/dual modes)                             *)

(* Replay the virtual schedule's decisions — batch composition, worker
   assignment, formation times — substituting measured service durations
   for modeled ones. Queue wait on this clock still starts at the trace's
   (virtual) arrival: the trace defines the workload, execution defines
   the speed. *)
let wall_replay cfg batches metrics =
  let busy = Array.make cfg.workers 0.0 in
  List.iter
    (fun b ->
      let start = Float.max b.formed_us busy.(b.worker) in
      (* wall_compile_us already holds the tier-appropriate measurement:
         lowering+packing+instantiation for a compile, read+decode+
         instantiation for a disk hydration. *)
      let acquire_us =
        match b.tier with
        | `Hit -> 0.0
        | `Disk | `Compile -> b.compiled.Registry.wall_compile_us
      in
      let service = cfg.dispatch_overhead_us +. acquire_us +. b.wall_predict_us in
      let finish = start +. service in
      busy.(b.worker) <- finish;
      Array.iter
        (fun r ->
          Metrics.record_wall_completion metrics ~arrival_us:r.arrival_us
            ~start_us:start ~finish_us:finish)
        b.requests)
    batches

let drift_of_batches registry batches =
  let module S = Tb_analysis.Serve_check in
  let samples : (string, S.sample list) Hashtbl.t = Hashtbl.create 8 in
  let compiles : (string, S.compile_sample list) Hashtbl.t = Hashtbl.create 8 in
  let push tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun b ->
      let size = Array.length b.requests in
      let c = b.compiled in
      push samples c.Registry.model
        {
          S.rows = size;
          virtual_us = float_of_int size *. c.Registry.us_per_row;
          wall_us = b.wall_predict_us;
        };
      (* Only true compiles feed V002: a disk hydration's wall cost is a
         decode, not a compile, and would poison the compile-drift fit. *)
      if b.tier = `Compile then
        push compiles c.Registry.model
          {
            S.modeled_us = c.Registry.compile_us;
            wall_compile_us = c.Registry.wall_compile_us;
          })
    batches;
  List.filter_map
    (fun model ->
      match Hashtbl.find_opt samples model with
      | None -> None
      | Some ss ->
        let cs = Option.value ~default:[] (Hashtbl.find_opt compiles model) in
        Some (S.drift_of_samples ~model (List.rev ss) (List.rev cs)))
    (Registry.models registry)

(* ------------------------------------------------------------------ *)
(* Equivalence: serving must not change results                        *)

let check_equivalence st requests outputs =
  let failures = ref 0 in
  List.iter
    (fun model ->
      match Hashtbl.find_opt st.by_model model with
      | None -> ()  (* no batch of this model was dispatched *)
      | Some compiled ->
        let served =
          Array.to_list requests
          |> List.filter (fun r -> r.model = model && outputs.(r.id) <> None)
        in
        if served <> [] then begin
          let rows = Array.of_list (List.map (fun r -> r.row) served) in
          let direct = compiled.Registry.predict rows in
          List.iteri
            (fun i r ->
              match outputs.(r.id) with
              | Some got
                when Array.length got = Array.length direct.(i)
                     && Array.for_all2 Float.equal got direct.(i) ->
                ()
              | _ -> incr failures)
            served
        end)
    (Registry.models st.registry);
  !failures

let run ?(config = default_config) ?(mode = Virtual) ~schedule registry
    requests =
  validate_config config;
  let n = Array.length requests in
  let seen = Array.make (max n 1) false in
  Array.iter
    (fun r ->
      if r.id < 0 || r.id >= n || seen.(r.id) then
        invalid_arg "Runtime.run: request ids must be exactly 0..n-1";
      seen.(r.id) <- true)
    requests;
  let requests = Array.copy requests in
  Array.stable_sort (fun a b -> compare a.arrival_us b.arrival_us) requests;
  let st =
    {
      cfg = config;
      registry;
      schedule;
      rq = Rqueue.create ~capacity:config.queue_capacity;
      batcher =
        Batcher.create
          {
            Batcher.batch_max = config.batch_max;
            deadline_us = config.deadline_us;
          };
      busy_until = Array.make config.workers 0.0;
      inflight = Queue.create ();
      metrics = Metrics.create ();
      batch_seq = 0;
      batches_rev = [];
      rejects_rev = [];
      by_model = Hashtbl.create 8;
    }
  in
  schedule_trace st requests;
  (* Snapshot cache statistics before the equivalence pass so the check
     itself can't distort the reported hit ratio. *)
  let cache_stats = Registry.cache_stats registry in
  let compile_count = Registry.compile_count registry in
  let hydration_count = Registry.hydration_count registry in
  let batches = List.rev st.batches_rev in
  let outputs = Array.make n None in
  let timed = match mode with Virtual -> false | Wall | Dual -> true in
  execute ~timed config batches outputs;
  if timed then wall_replay config batches st.metrics;
  let drift =
    match mode with
    | Virtual | Wall -> []
    | Dual -> drift_of_batches registry batches
  in
  let equivalence_failures = check_equivalence st requests outputs in
  {
    outputs;
    batches;
    rejects = List.rev st.rejects_rev;
    metrics = st.metrics;
    queue_stats = Rqueue.stats st.rq;
    cache_stats;
    compile_count;
    hydration_count;
    equivalence_failures;
    drift;
  }
