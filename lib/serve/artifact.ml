module Pack = Tb_lir.Pack
module Schedule = Tb_hir.Schedule
module Json = Tb_util.Json

let write_file path bytes =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_bytes oc bytes);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error m ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error m

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok (Bytes.unsafe_of_string s)
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error (path ^ ": truncated read")

type load_error =
  | Absent
  | Io of string
  | Decode of Pack.error
  | Mismatch of string

let load_error_to_string = function
  | Absent -> "absent"
  | Io m -> "io: " ^ m
  | Decode e -> Printf.sprintf "decode[%s]: %s" e.Pack.code e.Pack.message
  | Mismatch m -> "mismatch: " ^ m

type t = { root : string }

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    (* A concurrent creator racing us is fine — only a still-absent
       directory is an error. *)
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let create ~dir =
  mkdirs dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  { root = dir }

let dir t = t.root

(* FNV-1a 64-bit over the registry cache key: deterministic across
   processes (unlike Hashtbl.hash, which is documented to vary). *)
let fnv1a64 = Tb_util.Hashing.fnv1a64

let sanitize name =
  let name = if name = "" then "model" else name in
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ch
      | _ -> '_')
    name

let path t ~key ~model =
  Filename.concat t.root
    (Printf.sprintf "%s-%016Lx.tbpack" (sanitize model) (fnv1a64 key))

let load t ~key ~model ~target ~schedule =
  let file = path t ~key ~model in
  if not (Sys.file_exists file) then Error Absent
  else
    match read_file file with
    | Error m -> Error (Io m)
    | Ok bytes -> (
      match Pack.decode bytes with
      | Error e -> Error (Decode e)
      | Ok pk ->
        let meta = pk.Pack.meta in
        if meta.Pack.model <> model then
          Error
            (Mismatch
               (Printf.sprintf "artifact is for model %S, wanted %S"
                  meta.Pack.model model))
        else if meta.Pack.target <> target then
          Error
            (Mismatch
               (Printf.sprintf "artifact was compiled for target %S, wanted %S"
                  meta.Pack.target target))
        else
          let got = Json.to_string (Schedule.to_json meta.Pack.schedule) in
          let want = Json.to_string (Schedule.to_json schedule) in
          if got <> want then
            Error
              (Mismatch
                 (Printf.sprintf "artifact schedule %s, wanted %s" got want))
          else Ok pk)

let save t ~key ~model pk = write_file (path t ~key ~model) (Pack.encode pk)

let remove t ~key ~model =
  let file = path t ~key ~model in
  if Sys.file_exists file then
    try Sys.remove file with Sys_error _ -> ()

type gc_result = {
  scanned : int;
  removed : int;
  bytes_before : int;
  bytes_after : int;
}

let gc t ~max_bytes =
  if max_bytes < 0 then invalid_arg "Artifact.gc: max_bytes < 0";
  let entries =
    Sys.readdir t.root |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tbpack")
    |> List.filter_map (fun f ->
           let file = Filename.concat t.root f in
           match Unix.stat file with
           | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
             Some (st_mtime, f, st_size)
           | _ -> None
           | exception Unix.Unix_error _ -> None)
  in
  let bytes_before = List.fold_left (fun a (_, _, s) -> a + s) 0 entries in
  (* Oldest mtime first; name breaks ties so the victim order is stable
     when a batch of artifacts lands within one clock tick. *)
  let victims =
    List.stable_sort
      (fun (ma, fa, _) (mb, fb, _) -> compare (ma, fa) (mb, fb))
      entries
  in
  let live = ref bytes_before and removed = ref 0 in
  List.iter
    (fun (_, f, size) ->
      if !live > max_bytes then begin
        (try Sys.remove (Filename.concat t.root f) with Sys_error _ -> ());
        live := !live - size;
        incr removed
      end)
    victims;
  {
    scanned = List.length entries;
    removed = !removed;
    bytes_before;
    bytes_after = !live;
  }
