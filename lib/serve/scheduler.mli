(** Deadline-aware dispatch ordering for formed batches.

    The serving engine forms batches faster than workers free up under
    load, so a pool of pending batches accumulates between formation and
    dispatch. The scheduler decides which pending batch the next free
    worker takes:

    - {e FIFO}: formation order — the pre-sharding behaviour, optimal for
      nothing in particular but fair and simple;
    - {e EDF} (earliest deadline first): each batch carries the absolute
      deadline of its {e oldest} request (arrival + the model's SLO
      budget); the nearest deadline dispatches first. When per-model p99
      budgets differ, EDF is the classic optimal single-machine policy
      for meeting them.

    The pool also exposes the opposite end — {!shed_last} removes the
    entry the policy would serve last (latest deadline under EDF, newest
    under FIFO), which is exactly the work graded overload shedding
    discards first.

    Ordering ties break on admission sequence, so a virtual-clock run is
    deterministic. All operations are O(pool size); the pool is bounded
    by the engine's backlog cap. *)

type policy = Fifo | Edf

val policy_to_string : policy -> string

val policy_of_string : string -> (policy, string) result
(** ["fifo"], ["edf"]. *)

type 'a t

val create : policy -> 'a t
val policy_of : 'a t -> policy
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> deadline_us:float -> 'a -> unit
(** Admit a pending item. [deadline_us] is ignored by FIFO ordering but
    still recorded (shedding and introspection read it). *)

val pop : 'a t -> 'a option
(** Remove and return the highest-priority pending item. *)

val peek : 'a t -> 'a option

val shed_last : 'a t -> 'a option
(** Remove and return the {e lowest}-priority pending item — the latest
    deadline (EDF) or newest admission (FIFO). *)

val to_list : 'a t -> 'a list
(** Pending items in dispatch order (test visibility). *)
