type request = {
  id : int;
  model : string;
  row : float array;
  arrival_us : float;
}

type mode = Virtual | Wall | Dual

let mode_to_string = function
  | Virtual -> "virtual"
  | Wall -> "wall"
  | Dual -> "dual"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "virtual" -> Ok Virtual
  | "wall" -> Ok Wall
  | "dual" -> Ok Dual
  | s ->
    Error
      (Printf.sprintf
         "unknown execution mode %S (expected virtual, wall or dual)" s)

type config = {
  queue_capacity : int;
  batch_max : int;
  deadline_us : float;
  workers : int;
  dispatch_overhead_us : float;
  scheduling : Scheduler.policy;
  slo_us : (string * float) list;
  default_slo_us : float option;
  shed_lo : float;
  shed_hi : float;
  pending_cap : int;
  precision : Tb_core.Treebeard.precision;
}

let default_config =
  {
    queue_capacity = 1024;
    batch_max = 32;
    deadline_us = 500.0;
    workers = 2;
    dispatch_overhead_us = 20.0;
    scheduling = Scheduler.Fifo;
    slo_us = [];
    default_slo_us = None;
    (* An occupancy threshold above 1.0 can never trigger: graded
       shedding is off unless asked for. *)
    shed_lo = 2.0;
    shed_hi = 2.0;
    pending_cap = max_int;
    precision = `Float;
  }

type batch_exec = {
  batch_id : int;
  worker : int;
  cause : Batcher.cause;
  compiled : Registry.compiled;
  tier : Registry.provenance;
  requests : request array;
  formed_us : float;
  start_us : float;
  finish_us : float;
  mutable wall_predict_us : float;
}

type result = {
  outputs : float array option array;
  batches : batch_exec list;
  rejects : request list;
  metrics : Metrics.t;
  queue_stats : Rqueue.stats;
  cache_stats : Policy.stats;
  compile_count : int;
  hydration_count : int;
  foreign_hydration_count : int;
  equivalence_failures : int;
  drift : Tb_analysis.Serve_check.model_drift list;
}

let validate_config c =
  if c.queue_capacity < 1 then invalid_arg "Runtime: queue_capacity < 1";
  if c.batch_max < 1 then invalid_arg "Runtime: batch_max < 1";
  if not (c.deadline_us > 0.0) then invalid_arg "Runtime: deadline_us <= 0";
  if c.workers < 1 then invalid_arg "Runtime: workers < 1";
  if c.dispatch_overhead_us < 0.0 then
    invalid_arg "Runtime: dispatch_overhead_us < 0";
  if c.pending_cap < 1 then invalid_arg "Runtime: pending_cap < 1";
  if c.shed_hi < c.shed_lo then invalid_arg "Runtime: shed_hi < shed_lo";
  if not (c.shed_lo >= 0.0) then invalid_arg "Runtime: shed_lo < 0";
  List.iter
    (fun (m, b) ->
      if not (b > 0.0 && Float.is_finite b) then
        invalid_arg (Printf.sprintf "Runtime: slo_us for %S not positive" m))
    c.slo_us;
  match c.default_slo_us with
  | Some b when not (b > 0.0 && Float.is_finite b) ->
    invalid_arg "Runtime: default_slo_us not positive"
  | Some _ | None -> ()

let slo_of cfg model =
  match List.assoc_opt model cfg.slo_us with
  | Some b -> Some b
  | None -> cfg.default_slo_us

(* The graded-shed ladder's latency classes: every distinct budget a
   model can carry, loosest first. Models without a budget sit in an
   implicit infinite-budget class — the least valuable work, shed
   first. *)
let shed_classes cfg =
  let default = Option.value ~default:Float.infinity cfg.default_slo_us in
  List.map snd cfg.slo_us @ [ default ]
  |> List.sort_uniq (fun a b -> compare b a)
  |> Array.of_list

type state = {
  cfg : config;
  registry : Registry.t;
  schedule : Tb_hir.Schedule.t;
  rq : request Rqueue.t;
  batcher : request Batcher.t;
  (* Formed-but-undispatched batches; the scheduler decides which one the
     next free worker takes (FIFO or EDF). *)
  pool : request Batcher.batch Scheduler.t;
  classes : float array;  (* shed-ladder budgets, loosest first *)
  busy_until : float array;  (* per worker *)
  (* Dispatched batches whose virtual start hasn't passed yet: (start,
     size), FIFO. Dispatches happen in event-time order and each start is
     its event's time (or later on the same worker), so starts are
     non-decreasing and retiring the head suffices. *)
  inflight : (float * int) Queue.t;
  metrics : Metrics.t;
  mutable batch_seq : int;
  mutable batches_rev : batch_exec list;
  mutable rejects_rev : request list;
  (* Last compiled entry per model, kept out of the eviction cache so the
     post-run equivalence check doesn't perturb cache statistics. *)
  by_model : (string, Registry.compiled) Hashtbl.t;
}

type t = {
  shard_id : int;
  st_cfg : config;
  st_schedule : Tb_hir.Schedule.t;
  st_registry : Registry.t;
}

let create ?(id = 0) ?(config = default_config) ~schedule registry =
  validate_config config;
  if id < 0 then invalid_arg "Shard.create: negative id";
  { shard_id = id; st_cfg = config; st_schedule = schedule; st_registry = registry }

let id t = t.shard_id
let registry t = t.st_registry
let config_of t = t.st_cfg

(* Retire queue slots of batches that have started by [now]: those
   requests are on a worker, not in the bounded admission window. *)
let retire_started st ~now =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt st.inflight with
    | Some (start, size) when start <= now ->
      ignore (Queue.pop st.inflight);
      Rqueue.drop_n st.rq size
    | _ -> continue := false
  done

let earliest_free st =
  let w = ref 0 in
  for i = 1 to Array.length st.busy_until - 1 do
    if st.busy_until.(i) < st.busy_until.(!w) then w := i
  done;
  !w

let dispatch st ~worker (b : request Batcher.batch) =
  let compiled, tier =
    Registry.compiled ~precision:st.cfg.precision st.registry
      ~model:b.Batcher.model ~schedule:st.schedule
  in
  Hashtbl.replace st.by_model b.Batcher.model compiled;
  let w = worker in
  let size = Array.length b.Batcher.requests in
  let start = Float.max b.Batcher.formed_us st.busy_until.(w) in
  (* Each tier's modeled cost on the virtual clock: a memory hit is free,
     a disk hydration pays the (cheap) decode+instantiate model, a fresh
     compile pays the full pipeline model. All three are deterministic. *)
  let acquire_us =
    match tier with
    | `Hit -> 0.0
    | `Disk -> compiled.Registry.hydrate_us
    | `Compile -> compiled.Registry.compile_us
  in
  let service =
    st.cfg.dispatch_overhead_us
    +. acquire_us
    +. (float_of_int size *. compiled.Registry.us_per_row)
  in
  let finish = start +. service in
  st.busy_until.(w) <- finish;
  Queue.push (start, size) st.inflight;
  Metrics.record_batch st.metrics ~size ~cause:b.Batcher.cause;
  Metrics.record_tier st.metrics tier;
  let slo =
    Option.map (fun b -> (compiled.Registry.model, b)) (slo_of st.cfg b.Batcher.model)
  in
  Array.iteri
    (fun i _ ->
      Metrics.record_completion ?slo st.metrics
        ~arrival_us:b.Batcher.arrivals_us.(i) ~start_us:start ~finish_us:finish)
    b.Batcher.requests;
  st.batch_seq <- st.batch_seq + 1;
  st.batches_rev <-
    {
      batch_id = st.batch_seq - 1;
      worker = w;
      cause = b.Batcher.cause;
      compiled;
      tier;
      requests = b.Batcher.requests;
      formed_us = b.Batcher.formed_us;
      start_us = start;
      finish_us = finish;
      wall_predict_us = 0.0;
    }
    :: st.batches_rev

(* ------------------------------------------------------------------ *)
(* Phase 1: virtual-time scheduling                                    *)

(* A batch's absolute deadline: its oldest request's arrival plus the
   model's SLO budget (infinite without one — such batches sort last
   under EDF, ties broken by formation order). *)
let batch_deadline st (b : request Batcher.batch) =
  match slo_of st.cfg b.Batcher.model with
  | None -> Float.infinity
  | Some budget -> b.Batcher.arrivals_us.(0) +. budget

(* Hand pool work to every worker idle at [now]; each dispatch starts at
   max(formation, the worker's free time) <= now, so event order equals
   start order. With FIFO scheduling this reproduces the pre-pool greedy
   assignment exactly: batches leave in formation order, each to the
   earliest-free worker. *)
let pump st ~now =
  let continue = ref true in
  while !continue do
    if Scheduler.is_empty st.pool then continue := false
    else begin
      let w = earliest_free st in
      if st.busy_until.(w) <= now then
        match Scheduler.pop st.pool with
        | Some b -> dispatch st ~worker:w b
        | None -> continue := false
      else continue := false
    end
  done

let shed_batch st (b : request Batcher.batch) =
  let n = Array.length b.Batcher.requests in
  (* The victims' admission-window slots free up immediately ([drop_n]
     retires by count; the batcher already holds the identities). *)
  Rqueue.drop_n st.rq n;
  Metrics.record_shed st.metrics ~n `Backlog;
  Array.iter
    (fun r ->
      Metrics.record_reject st.metrics;
      st.rejects_rev <- r :: st.rejects_rev)
    b.Batcher.requests

let enqueue st ~now (b : request Batcher.batch) =
  Scheduler.push st.pool ~deadline_us:(batch_deadline st b) b;
  if Scheduler.length st.pool > st.cfg.pending_cap then begin
    (* Backlog overflow sheds the lowest-priority pending work — the
       latest deadline under EDF, the newest batch under FIFO. *)
    match Scheduler.shed_last st.pool with
    | Some victim -> shed_batch st victim
    | None -> ()
  end;
  pump st ~now

(* Process every internal event up to [now] in time order: batcher
   deadlines form batches into the pool; worker frees drain the pool.
   Ties prefer the worker-free event — the formed batch is already
   pending either way, and a deadline firing at the same instant joins
   the pool before the next pump iteration looks. *)
let rec catch_up st ~now =
  let t_deadline =
    Option.value ~default:Float.infinity (Batcher.next_deadline st.batcher)
  in
  let t_free =
    if Scheduler.is_empty st.pool then Float.infinity
    else st.busy_until.(earliest_free st)
  in
  let t = Float.min t_deadline t_free in
  if t <= now && t < Float.infinity then begin
    if t_free <= t_deadline then pump st ~now:t
    else List.iter (enqueue st ~now:t) (Batcher.expire st.batcher ~now:t);
    catch_up st ~now
  end

(* Occupancy-graded admission shedding. The ladder's classes are the
   distinct SLO budgets, loosest first; as the admission window fills
   from [shed_lo] toward [shed_hi], progressively more of the loosest
   classes are turned away — the tightest class is only ever rejected by
   the hard capacity bound. *)
let shed_at_admission st model =
  let c = Array.length st.classes in
  if c < 2 then false
  else begin
    let occ =
      float_of_int (Rqueue.length st.rq) /. float_of_int st.cfg.queue_capacity
    in
    let frac =
      if occ <= st.cfg.shed_lo then 0.0
      else if occ >= st.cfg.shed_hi then 1.0
      else (occ -. st.cfg.shed_lo) /. (st.cfg.shed_hi -. st.cfg.shed_lo)
    in
    let k = int_of_float (Float.ceil (frac *. float_of_int (c - 1))) in
    k >= 1
    &&
    let budget =
      Option.value ~default:Float.infinity (slo_of st.cfg model)
    in
    budget >= st.classes.(k - 1)
  end

let schedule_trace st requests =
  Array.iter
    (fun req ->
      let now = req.arrival_us in
      (* Deadlines that elapsed and workers that freed before this
         arrival fire first. *)
      catch_up st ~now;
      retire_started st ~now;
      Metrics.record_arrival st.metrics ~depth:(Rqueue.length st.rq);
      if shed_at_admission st req.model then begin
        Metrics.record_reject st.metrics;
        Metrics.record_shed st.metrics ~n:1 `Admission;
        st.rejects_rev <- req :: st.rejects_rev
      end
      else if Rqueue.try_push st.rq req then begin
        Metrics.record_admit st.metrics;
        match
          Batcher.add st.batcher ~model:req.model ~arrival_us:now req
        with
        | Some b -> enqueue st ~now b
        | None -> ()
      end
      else begin
        Metrics.record_reject st.metrics;
        st.rejects_rev <- req :: st.rejects_rev
      end)
    requests;
  (* The trace is over but the server keeps running: every remaining
     group fires at its own deadline, every pending batch at its
     worker's free time. *)
  catch_up st ~now:Float.infinity;
  retire_started st ~now:Float.infinity

(* ------------------------------------------------------------------ *)
(* Phase 2: parallel execution on domains                              *)

let execute ~timed cfg batches outputs =
  let by_worker = Array.make cfg.workers [] in
  List.iter
    (fun b -> by_worker.(b.worker) <- b :: by_worker.(b.worker))
    (List.rev batches);
  let run_worker assigned () =
    List.iter
      (fun b ->
        let rows = Array.map (fun r -> r.row) b.requests in
        let outs =
          if timed then begin
            (* Each batch belongs to exactly one worker, so writing its
               wall measurement from that worker's domain is race-free;
               the joins below publish it to the replay. *)
            let t0 = Tb_util.Timer.now () in
            let outs = b.compiled.Registry.predict rows in
            b.wall_predict_us <- (Tb_util.Timer.now () -. t0) *. 1e6;
            outs
          end
          else b.compiled.Registry.predict rows
        in
        Array.iteri
          (fun i r -> outputs.(r.id) <- Some outs.(i))
          b.requests)
      (List.rev assigned)
  in
  let domains =
    Array.to_list by_worker
    |> List.filter_map (fun assigned ->
           if assigned = [] then None
           else Some (Domain.spawn (run_worker assigned)))
  in
  List.iter Domain.join domains

(* ------------------------------------------------------------------ *)
(* Wall timeline + drift (wall/dual modes)                             *)

(* Replay the virtual schedule's decisions — batch composition, worker
   assignment, formation times — substituting measured service durations
   for modeled ones. Queue wait on this clock still starts at the trace's
   (virtual) arrival: the trace defines the workload, execution defines
   the speed. *)
let wall_replay cfg batches metrics =
  let busy = Array.make cfg.workers 0.0 in
  List.iter
    (fun b ->
      let start = Float.max b.formed_us busy.(b.worker) in
      (* wall_compile_us already holds the tier-appropriate measurement:
         lowering+packing+instantiation for a compile, read+decode+
         instantiation for a disk hydration. *)
      let acquire_us =
        match b.tier with
        | `Hit -> 0.0
        | `Disk | `Compile -> b.compiled.Registry.wall_compile_us
      in
      let service = cfg.dispatch_overhead_us +. acquire_us +. b.wall_predict_us in
      let finish = start +. service in
      busy.(b.worker) <- finish;
      Array.iter
        (fun r ->
          Metrics.record_wall_completion metrics ~arrival_us:r.arrival_us
            ~start_us:start ~finish_us:finish)
        b.requests)
    batches

let drift_of_batches registry batches =
  let module S = Tb_analysis.Serve_check in
  let samples : (string, S.sample list) Hashtbl.t = Hashtbl.create 8 in
  let compiles : (string, S.compile_sample list) Hashtbl.t = Hashtbl.create 8 in
  let push tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun b ->
      let size = Array.length b.requests in
      let c = b.compiled in
      push samples c.Registry.model
        {
          S.rows = size;
          virtual_us = float_of_int size *. c.Registry.us_per_row;
          wall_us = b.wall_predict_us;
        };
      (* Only true compiles feed V002: a disk hydration's wall cost is a
         decode, not a compile, and would poison the compile-drift fit. *)
      if b.tier = `Compile then
        push compiles c.Registry.model
          {
            S.modeled_us = c.Registry.compile_us;
            wall_compile_us = c.Registry.wall_compile_us;
          })
    batches;
  List.filter_map
    (fun model ->
      match Hashtbl.find_opt samples model with
      | None -> None
      | Some ss ->
        let cs = Option.value ~default:[] (Hashtbl.find_opt compiles model) in
        Some (S.drift_of_samples ~model (List.rev ss) (List.rev cs)))
    (Registry.models registry)

(* ------------------------------------------------------------------ *)
(* Equivalence: serving must not change results                        *)

let check_equivalence st requests outputs =
  let failures = ref 0 in
  List.iter
    (fun model ->
      match Hashtbl.find_opt st.by_model model with
      | None -> ()  (* no batch of this model was dispatched *)
      | Some compiled ->
        let served =
          Array.to_list requests
          |> List.filter (fun r -> r.model = model && outputs.(r.id) <> None)
        in
        if served <> [] then begin
          let rows = Array.of_list (List.map (fun r -> r.row) served) in
          let direct = compiled.Registry.predict rows in
          List.iteri
            (fun i r ->
              match outputs.(r.id) with
              | Some got
                when Array.length got = Array.length direct.(i)
                     && Array.for_all2 Float.equal got direct.(i) ->
                ()
              | _ -> incr failures)
            served
        end)
    (Registry.models st.registry);
  !failures

let serve ?(mode = Virtual) t ~outputs requests =
  let requests = Array.copy requests in
  Array.stable_sort (fun a b -> compare a.arrival_us b.arrival_us) requests;
  let config = t.st_cfg in
  let st =
    {
      cfg = config;
      registry = t.st_registry;
      schedule = t.st_schedule;
      rq = Rqueue.create ~capacity:config.queue_capacity;
      batcher =
        Batcher.create
          ?deadline_us_for:
            (match config.scheduling with
            | Scheduler.Fifo -> None
            | Scheduler.Edf ->
              (* Deadline-aware formation: a tight-budget model stops
                 batching at half its budget, leaving the other half for
                 queueing and service; loose models batch as deep as the
                 uniform deadline allows. *)
              Some
                (fun model ->
                  match slo_of config model with
                  | None -> config.deadline_us
                  | Some b -> Float.min config.deadline_us (b /. 2.0)))
          {
            Batcher.batch_max = config.batch_max;
            deadline_us = config.deadline_us;
          };
      pool = Scheduler.create config.scheduling;
      classes = shed_classes config;
      busy_until = Array.make config.workers 0.0;
      inflight = Queue.create ();
      metrics = Metrics.create ();
      batch_seq = 0;
      batches_rev = [];
      rejects_rev = [];
      by_model = Hashtbl.create 8;
    }
  in
  schedule_trace st requests;
  (* Snapshot cache statistics before the equivalence pass so the check
     itself can't distort the reported hit ratio. *)
  let cache_stats = Registry.cache_stats t.st_registry in
  let compile_count = Registry.compile_count t.st_registry in
  let hydration_count = Registry.hydration_count t.st_registry in
  let foreign_hydration_count = Registry.foreign_hydration_count t.st_registry in
  let batches = List.rev st.batches_rev in
  let timed = match mode with Virtual -> false | Wall | Dual -> true in
  execute ~timed config batches outputs;
  if timed then wall_replay config batches st.metrics;
  let drift =
    match mode with
    | Virtual | Wall -> []
    | Dual -> drift_of_batches t.st_registry batches
  in
  let equivalence_failures = check_equivalence st requests outputs in
  {
    outputs;
    batches;
    rejects = List.rev st.rejects_rev;
    metrics = st.metrics;
    queue_stats = Rqueue.stats st.rq;
    cache_stats;
    compile_count;
    hydration_count;
    foreign_hydration_count;
    equivalence_failures;
    drift;
  }
