type config = {
  batch_max : int;
  deadline_us : float;
}

type cause =
  | By_size
  | By_deadline
  | By_flush

let cause_to_string = function
  | By_size -> "size"
  | By_deadline -> "deadline"
  | By_flush -> "flush"

type 'r batch = {
  model : string;
  formed_us : float;
  cause : cause;
  requests : 'r array;
  arrivals_us : float array;
}

type 'r group = {
  g_model : string;
  items : ('r * float) Queue.t;  (* admission order; float = arrival_us *)
}

type 'r t = {
  cfg : config;
  (* Per-model batching-deadline override; defaults to cfg.deadline_us.
     Deadline-aware scheduling wants tight-SLO models to stop batching
     well before their budget, while loose models still batch deep. *)
  deadline_us_for : string -> float;
  groups : (string, 'r group) Hashtbl.t;
  (* Model names in first-seen order: Hashtbl iteration order is not a
     stable public contract, and expiry ties must break deterministically. *)
  mutable order : string list;  (* reversed first-seen order *)
  mutable pending : int;
}

let create ?deadline_us_for cfg =
  if cfg.batch_max < 1 then invalid_arg "Batcher.create: batch_max < 1";
  if not (cfg.deadline_us > 0.0) then
    invalid_arg "Batcher.create: deadline_us <= 0";
  let deadline_us_for =
    match deadline_us_for with
    | None -> fun _ -> cfg.deadline_us
    | Some f -> fun model -> Float.max 1e-6 (f model)
  in
  { cfg; deadline_us_for; groups = Hashtbl.create 8; order = []; pending = 0 }

let config t = t.cfg

let group t model =
  match Hashtbl.find_opt t.groups model with
  | Some g -> g
  | None ->
    let g = { g_model = model; items = Queue.create () } in
    Hashtbl.replace t.groups model g;
    t.order <- model :: t.order;
    g

let ordered_groups t =
  List.rev t.order
  |> List.filter_map (fun m ->
         match Hashtbl.find_opt t.groups m with
         | Some g when not (Queue.is_empty g.items) -> Some g
         | _ -> None)

let form t cause now g =
  let n = Queue.length g.items in
  let requests = Array.make n (fst (Queue.peek g.items)) in
  let arrivals = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let r, a = Queue.pop g.items in
    requests.(i) <- r;
    arrivals.(i) <- a
  done;
  t.pending <- t.pending - n;
  { model = g.g_model; formed_us = now; cause; requests; arrivals_us = arrivals }

let add t ~model ~arrival_us r =
  let g = group t model in
  Queue.push (r, arrival_us) g.items;
  t.pending <- t.pending + 1;
  if Queue.length g.items >= t.cfg.batch_max then
    Some (form t By_size arrival_us g)
  else None

let group_deadline t g =
  snd (Queue.peek g.items) +. t.deadline_us_for g.g_model

let next_deadline t =
  List.fold_left
    (fun acc g ->
      let d = group_deadline t g in
      match acc with Some best when best <= d -> acc | _ -> Some d)
    None (ordered_groups t)

let expire t ~now =
  (* Deadline order, ties by registration order: sort is stable. *)
  ordered_groups t
  |> List.filter (fun g -> group_deadline t g <= now)
  |> List.map (fun g -> (group_deadline t g, g))
  |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (d, g) -> form t By_deadline d g)

let flush t ~now = List.map (form t By_flush now) (ordered_groups t)

let pending_count t = t.pending
