module Schedule = Tb_hir.Schedule
module Forest = Tb_model.Forest
module Lower = Tb_lir.Lower
module Layout = Tb_lir.Layout
module Config = Tb_cpu.Config
module Perf = Tb_core.Perf
module Treebeard = Tb_core.Treebeard
module Json = Tb_util.Json
module Prng = Tb_util.Prng
module Timer = Tb_util.Timer

type compiled = {
  model : string;
  schedule : Schedule.t;
  lowered : Lower.t;
  predict : float array array -> float array array;
  mutable us_per_row : float;
  mutable compile_us : float;
  wall_compile_us : float;
}

type source = {
  forest : Forest.t;
  profiles : Tb_model.Model_stats.tree_profile array option;
  sample_rows : float array array;
}

type t = {
  target : Config.t;
  sources : (string, source) Hashtbl.t;
  mutable order : string list;  (* reversed registration order *)
  cache : (string, compiled) Policy.t;
  mutable compiles : int;
  mutable clamps : (string * string) list;
  (* Calibration state: multiplicative corrections learned from measured
     dual-clock runs, applied to every subsequent compile's modeled costs.
     1.0 = uncalibrated. *)
  service_scales : (string, float) Hashtbl.t;
  mutable compile_scale : float;
}

let create ?(target = Config.intel_rocket_lake) ?(policy = Policy.Lru)
    ?(capacity = 8) () =
  {
    target;
    sources = Hashtbl.create 8;
    order = [];
    cache = Policy.create ~capacity policy;
    compiles = 0;
    clamps = [];
    service_scales = Hashtbl.create 8;
    compile_scale = 1.0;
  }

let default_sample_rows name forest =
  let rng = Prng.create (Hashtbl.hash name land max_int) in
  Array.init 48 (fun _ ->
      Array.init forest.Forest.num_features (fun _ -> Prng.gaussian rng))

let register t ~name ?profiles ?sample_rows forest =
  let sample_rows =
    match sample_rows with
    | Some rows when Array.length rows > 0 -> rows
    | _ -> default_sample_rows name forest
  in
  if not (Hashtbl.mem t.sources name) then t.order <- name :: t.order;
  Hashtbl.replace t.sources name { forest; profiles; sample_rows }

let models t = List.rev t.order

let forest t name = (Hashtbl.find t.sources name).forest

(* The cache key must distinguish every schedule field, so use the exact
   JSON round-trip form rather than the lossy to_string. *)
let key t name schedule =
  Printf.sprintf "%s|%s|%s" name t.target.Config.name
    (Json.to_string (Schedule.to_json schedule))

(* Modeled compile cost: lowering walks every node once and layout size
   tracks slot count, so charge a fixed pipeline overhead plus a per-slot
   term. Deterministic by construction — the simulator's virtual clock
   must not depend on host wall time. *)
let modeled_compile_us lowered =
  150.0 +. (0.05 *. float_of_int (Layout.num_slots lowered.Lower.layout))

let service_scale t name =
  match Hashtbl.find_opt t.service_scales name with
  | Some s -> s
  | None -> 1.0

let compile t name schedule =
  let src = Hashtbl.find t.sources name in
  let t0 = Timer.now () in
  let tb =
    Treebeard.make ~plan:(`Schedule schedule) ?profiles:src.profiles
      ~backend:`Single_thread (`Forest src.forest)
  in
  let perf = Perf.simulate ~target:t.target tb.Treebeard.lowered src.sample_rows in
  let wall_compile_us = (Timer.now () -. t0) *. 1e6 in
  t.compiles <- t.compiles + 1;
  {
    model = name;
    schedule = tb.Treebeard.schedule;
    lowered = tb.Treebeard.lowered;
    predict = tb.Treebeard.predict;
    us_per_row = perf.Perf.time_per_row_us *. service_scale t name;
    compile_us = modeled_compile_us tb.Treebeard.lowered *. t.compile_scale;
    wall_compile_us;
  }

let compiled t ~model ~schedule =
  let src =
    match Hashtbl.find_opt t.sources model with
    | Some src -> src
    | None -> raise Not_found
  in
  (* Normalize before keying, so schedules differing only in fields the
     compiled artifact cannot depend on — the (now irrelevant) thread
     count, tiling knobs at tile_size 1, alpha/beta under non-probability
     tilings, the pad limit without padding, a row-major interleave factor
     beyond the model's tree count — share one cache entry and one
     compile. *)
  let schedule, warning = Schedule.clamp_threads ~max_threads:1 schedule in
  let schedule =
    Schedule.canonicalize
      ~num_trees:(Array.length src.forest.Forest.trees)
      schedule
  in
  let k = key t model schedule in
  match Policy.find t.cache k with
  | Some c -> (c, true)
  | None ->
    (match warning with
    | Some w -> t.clamps <- (model, w) :: t.clamps
    | None -> ());
    let c = compile t model schedule in
    ignore (Policy.put t.cache k c);
    (c, false)

(* ------------------------------------------------------------------ *)
(* Calibration: refit modeled costs from measured dual-clock runs      *)

type calibration = {
  service_scale : (string * float) list;
  compile_scale : float option;
}

let calibration_of_drift drifts =
  let module S = Tb_analysis.Serve_check in
  let service_scale =
    List.filter_map
      (fun (d : S.model_drift) ->
        if d.S.service_ratio > 0.0 && Float.is_finite d.S.service_ratio then
          Some (d.S.model, d.S.service_ratio)
        else None)
      drifts
  in
  (* One global compile scale: the compile pipeline is shared, and single
     models rarely see enough misses for a per-model fit. Weight each
     model's ratio by its miss count. *)
  let num, den =
    List.fold_left
      (fun (num, den) (d : S.model_drift) ->
        match d.S.compile_ratio with
        | Some r when r > 0.0 && Float.is_finite r ->
          (num +. (r *. float_of_int d.S.compiles), den + d.S.compiles)
        | Some _ | None -> (num, den))
      (0.0, 0) drifts
  in
  {
    service_scale;
    compile_scale = (if den > 0 then Some (num /. float_of_int den) else None);
  }

let calibrate t cal =
  List.iter
    (fun (model, s) ->
      if s > 0.0 && Float.is_finite s then
        Hashtbl.replace t.service_scales model (service_scale t model *. s))
    cal.service_scale;
  (match cal.compile_scale with
  | Some s when s > 0.0 && Float.is_finite s ->
    t.compile_scale <- t.compile_scale *. s
  | Some _ | None -> ());
  (* Rescale what's already compiled, in place, without touching the
     eviction policy's recency state or hit statistics. *)
  Policy.iter
    (fun _ c ->
      (match List.assoc_opt c.model cal.service_scale with
      | Some s when s > 0.0 && Float.is_finite s ->
        c.us_per_row <- c.us_per_row *. s
      | Some _ | None -> ());
      match cal.compile_scale with
      | Some s when s > 0.0 && Float.is_finite s ->
        c.compile_us <- c.compile_us *. s
      | Some _ | None -> ())
    t.cache

let calibration_to_json cal =
  Json.Obj
    [
      ( "service_scale",
        Json.Obj (List.map (fun (m, s) -> (m, Json.Num s)) cal.service_scale)
      );
      ( "compile_scale",
        match cal.compile_scale with
        | None -> Json.Null
        | Some s -> Json.Num s );
    ]

let cache_stats t = Policy.stats t.cache
let cache_policy t = Policy.kind_of t.cache
let compile_count t = t.compiles
let clamp_warnings t = t.clamps
