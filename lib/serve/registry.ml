module Schedule = Tb_hir.Schedule
module Forest = Tb_model.Forest
module Lower = Tb_lir.Lower
module Layout = Tb_lir.Layout
module Jit = Tb_vm.Jit
module Config = Tb_cpu.Config
module Perf = Tb_core.Perf
module Json = Tb_util.Json
module Prng = Tb_util.Prng

type compiled = {
  model : string;
  schedule : Schedule.t;
  lowered : Lower.t;
  predict : float array array -> float array array;
  us_per_row : float;
  compile_us : float;
}

type source = {
  forest : Forest.t;
  profiles : Tb_model.Model_stats.tree_profile array option;
  sample_rows : float array array;
}

type t = {
  target : Config.t;
  sources : (string, source) Hashtbl.t;
  mutable order : string list;  (* reversed registration order *)
  cache : (string, compiled) Policy.t;
  mutable compiles : int;
  mutable clamps : (string * string) list;
}

let create ?(target = Config.intel_rocket_lake) ?(policy = Policy.Lru)
    ?(capacity = 8) () =
  {
    target;
    sources = Hashtbl.create 8;
    order = [];
    cache = Policy.create ~capacity policy;
    compiles = 0;
    clamps = [];
  }

let default_sample_rows name forest =
  let rng = Prng.create (Hashtbl.hash name land max_int) in
  Array.init 48 (fun _ ->
      Array.init forest.Forest.num_features (fun _ -> Prng.gaussian rng))

let register t ~name ?profiles ?sample_rows forest =
  let sample_rows =
    match sample_rows with
    | Some rows when Array.length rows > 0 -> rows
    | _ -> default_sample_rows name forest
  in
  if not (Hashtbl.mem t.sources name) then t.order <- name :: t.order;
  Hashtbl.replace t.sources name { forest; profiles; sample_rows }

let models t = List.rev t.order

let forest t name = (Hashtbl.find t.sources name).forest

(* The cache key must distinguish every schedule field, so use the exact
   JSON round-trip form rather than the lossy to_string. *)
let key t name schedule =
  Printf.sprintf "%s|%s|%s" name t.target.Config.name
    (Json.to_string (Schedule.to_json schedule))

(* Modeled compile cost: lowering walks every node once and layout size
   tracks slot count, so charge a fixed pipeline overhead plus a per-slot
   term. Deterministic by construction — the simulator's virtual clock
   must not depend on host wall time. *)
let modeled_compile_us lowered =
  150.0 +. (0.05 *. float_of_int (Layout.num_slots lowered.Lower.layout))

let compile t name schedule =
  let src = Hashtbl.find t.sources name in
  let lowered = Lower.lower ?profiles:src.profiles src.forest schedule in
  let perf = Perf.simulate ~target:t.target lowered src.sample_rows in
  t.compiles <- t.compiles + 1;
  {
    model = name;
    schedule;
    lowered;
    predict = Jit.compile_single_thread lowered;
    us_per_row = perf.Perf.time_per_row_us;
    compile_us = modeled_compile_us lowered;
  }

let compiled t ~model ~schedule =
  if not (Hashtbl.mem t.sources model) then raise Not_found;
  (* Normalize before keying, so schedules differing only in fields the
     compiled artifact cannot depend on — the (now irrelevant) thread
     count, tiling knobs at tile_size 1, alpha/beta under non-probability
     tilings, the pad limit without padding — share one cache entry and
     one compile. *)
  let schedule, warning = Schedule.clamp_threads ~max_threads:1 schedule in
  let schedule = Schedule.canonicalize schedule in
  let k = key t model schedule in
  match Policy.find t.cache k with
  | Some c -> (c, true)
  | None ->
    (match warning with
    | Some w -> t.clamps <- (model, w) :: t.clamps
    | None -> ());
    let c = compile t model schedule in
    ignore (Policy.put t.cache k c);
    (c, false)

let cache_stats t = Policy.stats t.cache
let cache_policy t = Policy.kind_of t.cache
let compile_count t = t.compiles
let clamp_warnings t = t.clamps
