module Schedule = Tb_hir.Schedule
module Forest = Tb_model.Forest
module Lower = Tb_lir.Lower
module Layout = Tb_lir.Layout
module Pack = Tb_lir.Pack
module Jit = Tb_vm.Jit
module Config = Tb_cpu.Config
module Perf = Tb_core.Perf
module Treebeard = Tb_core.Treebeard
module Numeric = Tb_analysis.Numeric
module Validate = Tb_analysis.Validate
module D = Tb_diag.Diagnostic
module Json = Tb_util.Json
module Prng = Tb_util.Prng
module Timer = Tb_util.Timer

type provenance = [ `Hit | `Disk | `Compile ]

let provenance_string = function
  | `Hit -> "hit"
  | `Disk -> "disk"
  | `Compile -> "compile"

type compiled = {
  model : string;
  schedule : Schedule.t;
  tier : Treebeard.tier;
  artifact : Pack.t;
  predict : float array array -> float array array;
  mutable us_per_row : float;
  mutable compile_us : float;
  hydrate_us : float;
  wall_compile_us : float;
  wall_instantiate_us : float;
}

type source = {
  forest : Forest.t;
  profiles : Tb_model.Model_stats.tree_profile array option;
  sample_rows : float array array;
}

type t = {
  target : Config.t;
  sources : (string, source) Hashtbl.t;
  mutable order : string list;  (* reversed registration order *)
  cache : (string, compiled) Policy.t;
  store : Artifact.t option;
  (* Disk-store budget: after every save, evict oldest artifacts beyond
     this many bytes. None = unbounded. *)
  cache_max_bytes : int option;
  mutable compiles : int;
  mutable hydrations : int;
  (* Keys this instance itself compiled: a hydration of any other key is
     {e foreign} — evidence an artifact shipped in from another shard or
     survived from a previous process. *)
  compiled_keys : (string, unit) Hashtbl.t;
  mutable foreign_hydrations : int;
  mutable gc_removed : int;
  mutable clamps : (string * string) list;
  mutable artifact_errors : (string * string) list;
  (* Per-(model, precision request) memo of the certification gate: the
     certificate and the quantized stage pair are schedule-light, so one
     resolution serves every schedule of the model. *)
  resolutions : (string, Treebeard.resolution) Hashtbl.t;
  mutable precision_fallbacks : (string * string) list;
  (* Calibration state: multiplicative corrections learned from measured
     dual-clock runs, applied to every subsequent compile's modeled costs.
     1.0 = uncalibrated. *)
  service_scales : (string, float) Hashtbl.t;
  mutable compile_scale : float;
}

let create ?(target = Config.intel_rocket_lake) ?(policy = Policy.Lru)
    ?(capacity = 8) ?cache_dir ?cache_max_bytes () =
  (match cache_max_bytes with
  | Some b when b < 0 -> invalid_arg "Registry.create: cache_max_bytes < 0"
  | Some _ | None -> ());
  {
    target;
    sources = Hashtbl.create 8;
    order = [];
    cache = Policy.create ~capacity policy;
    store = Option.map (fun dir -> Artifact.create ~dir) cache_dir;
    cache_max_bytes;
    compiles = 0;
    hydrations = 0;
    compiled_keys = Hashtbl.create 8;
    foreign_hydrations = 0;
    gc_removed = 0;
    clamps = [];
    artifact_errors = [];
    resolutions = Hashtbl.create 8;
    precision_fallbacks = [];
    service_scales = Hashtbl.create 8;
    compile_scale = 1.0;
  }

let default_sample_rows name forest =
  let rng = Prng.create (Hashtbl.hash name land max_int) in
  Array.init 48 (fun _ ->
      Array.init forest.Forest.num_features (fun _ -> Prng.gaussian rng))

let register t ~name ?profiles ?sample_rows forest =
  let sample_rows =
    match sample_rows with
    | Some rows when Array.length rows > 0 -> rows
    | _ -> default_sample_rows name forest
  in
  if not (Hashtbl.mem t.sources name) then t.order <- name :: t.order;
  Hashtbl.replace t.sources name { forest; profiles; sample_rows }

let models t = List.rev t.order

let forest t name = (Hashtbl.find t.sources name).forest

(* The cache key must distinguish every schedule field, so use the exact
   JSON round-trip form rather than the lossy to_string. The resolved
   precision tier is a key component too: it selects a different artifact
   (quantized buffers, quant block), so tiers must never share an entry —
   and the disk store's filenames inherit the separation. *)
let key t name tier schedule =
  Printf.sprintf "%s|%s|%s|%s" name t.target.Config.name
    (Treebeard.tier_to_string tier)
    (Json.to_string (Schedule.to_json schedule))

(* Modeled compile cost: lowering walks every node once and layout size
   tracks slot count, so charge a fixed pipeline overhead plus a per-slot
   term. Deterministic by construction — the simulator's virtual clock
   must not depend on host wall time. *)
let modeled_compile_us_of_slots slots =
  150.0 +. (0.05 *. float_of_int slots)

(* Modeled disk-hydration cost: a bounded Bytes decode plus closure
   instantiation, linear in layout size with a far smaller constant and
   slope than a compile — deterministic for the same reason as above. *)
let modeled_hydrate_us_of_slots slots =
  10.0 +. (0.002 *. float_of_int slots)

let service_scale t name =
  match Hashtbl.find_opt t.service_scales name with
  | Some s -> s
  | None -> 1.0

let artifact_error t name what =
  t.artifact_errors <- (name, what) :: t.artifact_errors

(* ------------------------------------------------------------------ *)
(* Precision resolution: certify once per (model, request)             *)

let tier_of_resolution = function
  | Treebeard.Float_tier _ -> `Float
  | Treebeard.Quant_tier cert -> (
    match cert.Numeric.plan.Numeric.width with
    | Numeric.I8 -> `Int8
    | Numeric.I16 -> `Int16)

let tier_of_pack (pk : Pack.t) =
  match pk.Pack.layout.Layout.quant with
  | None -> `Float
  | Some s -> if s.Layout.qbits = 8 then `Int8 else `Int16

let resolution_memo_key name precision =
  match precision with
  | `Float -> name ^ "#float"
  | `Quantized q ->
    Printf.sprintf "%s#%s#%h" name
      (Treebeard.precision_to_string precision)
      q.Treebeard.tolerance

let resolve t name src precision schedule =
  let mk = resolution_memo_key name precision in
  match Hashtbl.find_opt t.resolutions mk with
  | Some r -> r
  | None ->
    let r = Treebeard.resolve_precision ~precision src.forest in
    (* A certified plan still has to clear the quantized stage pair on a
       real lowering before this registry serves integers — same gate as
       Treebeard.make, run once per model rather than per compile. *)
    let r =
      match r with
      | Treebeard.Float_tier _ -> r
      | Treebeard.Quant_tier cert -> (
        let quant = Treebeard.qspec_of_plan cert.Numeric.plan in
        let qlowered =
          Lower.lower ?profiles:src.profiles ~quant src.forest schedule
        in
        match Validate.check_quant src.forest cert.Numeric.plan qlowered with
        | [] -> r
        | findings -> Treebeard.Float_tier (Validate.to_diagnostics findings))
    in
    (match (r, precision) with
    | Treebeard.Float_tier diags, `Quantized _ ->
      t.precision_fallbacks <-
        ( name,
          String.concat "; " (List.map (fun d -> D.to_string d) diags) )
        :: t.precision_fallbacks
    | _ -> ());
    Hashtbl.replace t.resolutions mk r;
    r

let compile t name resolution schedule =
  let src = Hashtbl.find t.sources name in
  (* Inlined Treebeard.make pipeline, so the two wall-clock halves of a
     compile — lowering/packing vs closure instantiation — are timed
     separately, and the service-time simulation (a serving-layer concern,
     not compilation) is excluded from both. *)
  let t0 = Timer.now () in
  let lowered, pack_quant =
    match resolution with
    | Treebeard.Float_tier _ ->
      (Lower.lower ?profiles:src.profiles src.forest schedule, None)
    | Treebeard.Quant_tier cert ->
      let quant = Treebeard.qspec_of_plan cert.Numeric.plan in
      let lowered =
        Lower.lower ?profiles:src.profiles ~quant src.forest schedule
      in
      let resident_k =
        Treebeard.tune_resident_k ~target:t.target lowered src.sample_rows
      in
      ( lowered,
        Some
          {
            Pack.resident_k;
            dev_bound = Array.copy cert.Numeric.dev_bound;
            tolerance = cert.Numeric.plan.Numeric.tolerance;
          } )
  in
  let packed =
    Pack.of_lower ~model:name ~target:t.target.Config.name ?quant:pack_quant
      lowered
  in
  let t1 = Timer.now () in
  let predict = Jit.instantiate_single_thread packed in
  let t2 = Timer.now () in
  (* Service-time model: simulate on the rows the predictor actually
     walks — the quantized path's integer rows for a quantized entry. *)
  let sim_rows =
    match lowered.Lower.layout.Layout.quant with
    | None -> src.sample_rows
    | Some spec -> Array.map (Layout.quantize_row spec) src.sample_rows
  in
  let perf = Perf.simulate ~target:t.target lowered sim_rows in
  let artifact =
    {
      packed with
      Pack.meta = { packed.Pack.meta with Pack.us_per_row = perf.Perf.time_per_row_us };
    }
  in
  let slots = Layout.num_slots lowered.Lower.layout in
  t.compiles <- t.compiles + 1;
  {
    model = name;
    schedule;
    tier = tier_of_resolution resolution;
    artifact;
    predict;
    us_per_row = perf.Perf.time_per_row_us *. service_scale t name;
    compile_us = modeled_compile_us_of_slots slots *. t.compile_scale;
    hydrate_us = modeled_hydrate_us_of_slots slots;
    wall_compile_us = (t2 -. t0) *. 1e6;
    wall_instantiate_us = (t2 -. t1) *. 1e6;
  }

(* Disk tier: read + decode + verify the stored artifact, instantiate the
   predictor. Service and compile cost models are rebuilt from the pack's
   own (uncalibrated) metadata, so hydration touches neither the source
   forest nor the simulator. *)
let hydrate t name tier schedule k =
  match t.store with
  | None -> None
  | Some store -> (
    let t0 = Timer.now () in
    match
      Artifact.load store ~key:k ~model:name ~target:t.target.Config.name
        ~schedule
    with
    | Error Artifact.Absent -> None
    | Error e ->
      artifact_error t name (Artifact.load_error_to_string e);
      None
    | Ok artifact when tier_of_pack artifact <> tier ->
      (* The key embeds the tier, so this only fires on a store someone
         mislabeled — treat like any other metadata mismatch. *)
      artifact_error t name
        (Printf.sprintf "mismatch: artifact precision tier %s, expected %s"
           (Treebeard.tier_to_string (tier_of_pack artifact))
           (Treebeard.tier_to_string tier));
      None
    | Ok artifact ->
      let t1 = Timer.now () in
      let predict = Jit.instantiate_single_thread artifact in
      let t2 = Timer.now () in
      let slots = Layout.num_slots artifact.Pack.layout in
      t.hydrations <- t.hydrations + 1;
      if not (Hashtbl.mem t.compiled_keys k) then
        t.foreign_hydrations <- t.foreign_hydrations + 1;
      Some
        {
          model = name;
          schedule;
          tier;
          artifact;
          predict;
          us_per_row = artifact.Pack.meta.Pack.us_per_row *. service_scale t name;
          compile_us = modeled_compile_us_of_slots slots *. t.compile_scale;
          hydrate_us = modeled_hydrate_us_of_slots slots;
          wall_compile_us = (t2 -. t0) *. 1e6;
          wall_instantiate_us = (t2 -. t1) *. 1e6;
        })

let compiled ?(precision = `Float) t ~model ~schedule =
  let src =
    match Hashtbl.find_opt t.sources model with
    | Some src -> src
    | None -> raise Not_found
  in
  (* Normalize before keying, so schedules differing only in fields the
     compiled artifact cannot depend on — the (now irrelevant) thread
     count, tiling knobs at tile_size 1, alpha/beta under non-probability
     tilings, the pad limit without padding, a row-major interleave factor
     beyond the model's tree count — share one cache entry and one
     compile. *)
  let schedule, warning = Schedule.clamp_threads ~max_threads:1 schedule in
  let schedule =
    Schedule.canonicalize
      ~num_trees:(Array.length src.forest.Forest.trees)
      schedule
  in
  let resolution = resolve t model src precision schedule in
  let tier = tier_of_resolution resolution in
  let k = key t model tier schedule in
  match Policy.find t.cache k with
  | Some c -> (c, `Hit)
  | None -> (
    (match warning with
    | Some w -> t.clamps <- (model, w) :: t.clamps
    | None -> ());
    match hydrate t model tier schedule k with
    | Some c ->
      ignore (Policy.put t.cache k c);
      (c, `Disk)
    | None ->
      let c = compile t model resolution schedule in
      Hashtbl.replace t.compiled_keys k ();
      (match t.store with
      | None -> ()
      | Some store -> (
        (match Artifact.save store ~key:k ~model c.artifact with
        | Ok () -> ()
        | Error m -> artifact_error t model ("save: " ^ m));
        match t.cache_max_bytes with
        | None -> ()
        | Some max_bytes ->
          let r = Artifact.gc store ~max_bytes in
          t.gc_removed <- t.gc_removed + r.Artifact.removed));
      ignore (Policy.put t.cache k c);
      (c, `Compile))

(* ------------------------------------------------------------------ *)
(* Calibration: refit modeled costs from measured dual-clock runs      *)

type calibration = {
  service_scale : (string * float) list;
  compile_scale : float option;
}

let calibration_of_drift drifts =
  let module S = Tb_analysis.Serve_check in
  let service_scale =
    List.filter_map
      (fun (d : S.model_drift) ->
        if d.S.service_ratio > 0.0 && Float.is_finite d.S.service_ratio then
          Some (d.S.model, d.S.service_ratio)
        else None)
      drifts
  in
  (* One global compile scale: the compile pipeline is shared, and single
     models rarely see enough misses for a per-model fit. Weight each
     model's ratio by its miss count. *)
  let num, den =
    List.fold_left
      (fun (num, den) (d : S.model_drift) ->
        match d.S.compile_ratio with
        | Some r when r > 0.0 && Float.is_finite r ->
          (num +. (r *. float_of_int d.S.compiles), den + d.S.compiles)
        | Some _ | None -> (num, den))
      (0.0, 0) drifts
  in
  {
    service_scale;
    compile_scale = (if den > 0 then Some (num /. float_of_int den) else None);
  }

let calibrate t cal =
  List.iter
    (fun (model, s) ->
      if s > 0.0 && Float.is_finite s then
        Hashtbl.replace t.service_scales model (service_scale t model *. s))
    cal.service_scale;
  (match cal.compile_scale with
  | Some s when s > 0.0 && Float.is_finite s ->
    t.compile_scale <- t.compile_scale *. s
  | Some _ | None -> ());
  (* Rescale what's already compiled, in place, without touching the
     eviction policy's recency state or hit statistics. *)
  Policy.iter
    (fun _ c ->
      (match List.assoc_opt c.model cal.service_scale with
      | Some s when s > 0.0 && Float.is_finite s ->
        c.us_per_row <- c.us_per_row *. s
      | Some _ | None -> ());
      match cal.compile_scale with
      | Some s when s > 0.0 && Float.is_finite s ->
        c.compile_us <- c.compile_us *. s
      | Some _ | None -> ())
    t.cache

let calibration_to_json cal =
  Json.Obj
    [
      ( "service_scale",
        Json.Obj (List.map (fun (m, s) -> (m, Json.Num s)) cal.service_scale)
      );
      ( "compile_scale",
        match cal.compile_scale with
        | None -> Json.Null
        | Some s -> Json.Num s );
    ]

let cache_stats t = Policy.stats t.cache
let cache_policy t = Policy.kind_of t.cache
let cache_dir t = Option.map Artifact.dir t.store
let compile_count t = t.compiles
let hydration_count t = t.hydrations
let foreign_hydration_count t = t.foreign_hydrations
let gc_removed_count t = t.gc_removed
let clamp_warnings t = t.clamps
let artifact_errors t = t.artifact_errors
let precision_fallbacks t = t.precision_fallbacks
