(** Model registry + compiled-predictor cache.

    Serving hot-swaps models out of a zoo, and a Treebeard compile
    (tiling, reordering, lowering, layout) is far too slow to sit on the
    request path of every batch. The registry keeps the source forests and
    a bounded {!Policy} cache of compiled predictors keyed by
    [(model, schedule, target)], so repeated dispatches of a hot model hit
    the cache and cold or evicted entries pay one recompile.

    Serving-level parallelism replaces the schedule's row-loop threads: a
    worker owns a whole core, so every schedule is compiled through
    {!Tb_core.Treebeard.make} with [~backend:`Single_thread] (thread count
    normalized to 1, {!Tb_vm.Jit.compile_single_thread} predictor). Each
    compiled entry also carries a deterministic service-time model
    ([us_per_row], from {!Tb_core.Perf.simulate} on the registered sample
    rows, and a modeled [compile_us]) that the virtual-clock simulator
    charges instead of wall time, keeping every run reproducible — plus
    the {e measured} wall-clock cost of the compile itself
    ([wall_compile_us]), which the dual-clock mode compares against the
    model.

    {!calibrate} closes the loop: given the drift a dual-clock run
    measured ({!Tb_analysis.Serve_check.model_drift}), it refits the
    modeled costs — a per-model service scale and a global compile scale —
    rescaling both the cached entries (in place) and every future
    compile. *)

type compiled = {
  model : string;
  schedule : Tb_hir.Schedule.t;  (** normalized: [num_threads = 1] *)
  lowered : Tb_lir.Lower.t;
  predict : float array array -> float array array;
      (** single-thread JIT closure *)
  mutable us_per_row : float;
      (** deterministic per-row service time (simulated cycles at the
          target's nominal clock), times any calibrated service scale *)
  mutable compile_us : float;
      (** modeled compilation cost, charged to the batch that misses;
          times any calibrated compile scale *)
  wall_compile_us : float;
      (** measured wall-clock time of the compile that built this entry
          (lowering + JIT + service-time simulation), microseconds *)
}

type t

val create :
  ?target:Tb_cpu.Config.t ->
  ?policy:Policy.kind ->
  ?capacity:int ->
  unit ->
  t
(** Defaults: Intel Rocket Lake, LRU, capacity 8 compiled entries. *)

val register :
  t ->
  name:string ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?sample_rows:float array array ->
  Tb_model.Forest.t ->
  unit
(** Add (or replace) a model. [profiles] enable probability-based tiling;
    [sample_rows] feed the service-time model (default: 48 deterministic
    gaussian rows seeded from the model name). *)

val models : t -> string list
(** Registration order. *)

val forest : t -> string -> Tb_model.Forest.t
(** @raise Not_found for unregistered names. *)

val compiled :
  t -> model:string -> schedule:Tb_hir.Schedule.t -> compiled * bool
(** Get-or-compile; the flag is [true] on a cache hit. The schedule is
    normalized before keying — [num_threads] clamped to 1 (each worker
    owns its core) and {!Tb_hir.Schedule.canonicalize} applied with the
    model's tree count (so e.g. a row-major interleave factor beyond the
    forest shares the entry of the clamped factor) — so schedules
    differing only in fields the compiled artifact cannot depend on share
    one entry and one compile. On a miss the compile may evict another
    entry per the policy.
    @raise Not_found for unregistered names. *)

(** {2 Calibration} *)

type calibration = {
  service_scale : (string * float) list;
      (** per-model multiplicative correction to [us_per_row] *)
  compile_scale : float option;
      (** global multiplicative correction to [compile_us] *)
}

val calibration_of_drift :
  Tb_analysis.Serve_check.model_drift list -> calibration
(** Fit a calibration from a dual-clock run's measured drift: each
    model's service scale is its Σwall/Σvirtual ratio, and the compile
    scale is the miss-count-weighted mean of the per-model compile
    ratios (absent when the run measured no compile). Scales of
    non-positive or non-finite ratios are dropped. *)

val calibrate : t -> calibration -> unit
(** Apply a calibration: fold the scales into the registry's correction
    state (so future compiles are scaled) and rescale the already-cached
    entries' [us_per_row] / [compile_us] in place ({!Policy.iter} — no
    eviction-policy or hit-statistic side effects). Calibrations compose
    multiplicatively; because a drift ratio is measured against the
    {e currently} modeled costs, repeated measure-calibrate rounds
    converge toward ratio 1. *)

val calibration_to_json : calibration -> Tb_util.Json.t

val cache_stats : t -> Policy.stats
val cache_policy : t -> Policy.kind
val compile_count : t -> int
(** Total compiles performed (= cache insertions, counting recompiles
    after eviction). *)

val clamp_warnings : t -> (string * string) list
(** [(model, warning)] for every schedule whose [num_threads] the
    registry normalized away, newest first. *)
