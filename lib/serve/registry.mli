(** Model registry + compiled-predictor cache.

    Serving hot-swaps models out of a zoo, and a Treebeard compile
    (tiling, reordering, lowering, layout) is far too slow to sit on the
    request path of every batch. The registry keeps the source forests and
    a bounded {!Policy} cache of compiled predictors keyed by
    [(model, schedule, target)], so repeated dispatches of a hot model hit
    the cache and cold or evicted entries pay one recompile.

    Serving-level parallelism replaces the schedule's row-loop threads: a
    worker owns a whole core, so every schedule is normalized to
    [num_threads = 1] ({!Tb_hir.Schedule.clamp_threads}) and executed via
    {!Tb_vm.Jit.compile_single_thread}. Each compiled entry also carries a
    deterministic service-time model ([us_per_row], from
    {!Tb_core.Perf.simulate} on the registered sample rows, and a modeled
    [compile_us]) that the virtual-clock simulator charges instead of wall
    time, keeping every run reproducible. *)

type compiled = {
  model : string;
  schedule : Tb_hir.Schedule.t;  (** normalized: [num_threads = 1] *)
  lowered : Tb_lir.Lower.t;
  predict : float array array -> float array array;
      (** {!Tb_vm.Jit.compile_single_thread} closure *)
  us_per_row : float;
      (** deterministic per-row service time (simulated cycles at the
          target's nominal clock) *)
  compile_us : float;
      (** modeled compilation cost, charged to the batch that misses *)
}

type t

val create :
  ?target:Tb_cpu.Config.t ->
  ?policy:Policy.kind ->
  ?capacity:int ->
  unit ->
  t
(** Defaults: Intel Rocket Lake, LRU, capacity 8 compiled entries. *)

val register :
  t ->
  name:string ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?sample_rows:float array array ->
  Tb_model.Forest.t ->
  unit
(** Add (or replace) a model. [profiles] enable probability-based tiling;
    [sample_rows] feed the service-time model (default: 48 deterministic
    gaussian rows seeded from the model name). *)

val models : t -> string list
(** Registration order. *)

val forest : t -> string -> Tb_model.Forest.t
(** @raise Not_found for unregistered names. *)

val compiled :
  t -> model:string -> schedule:Tb_hir.Schedule.t -> compiled * bool
(** Get-or-compile; the flag is [true] on a cache hit. The schedule is
    normalized before keying — [num_threads] clamped to 1 (each worker
    owns its core) and {!Tb_hir.Schedule.canonicalize} applied — so
    schedules differing only in fields the compiled artifact cannot
    depend on share one entry and one compile. On a miss the compile may
    evict another entry per the policy.
    @raise Not_found for unregistered names. *)

val cache_stats : t -> Policy.stats
val cache_policy : t -> Policy.kind
val compile_count : t -> int
(** Total compiles performed (= cache insertions, counting recompiles
    after eviction). *)

val clamp_warnings : t -> (string * string) list
(** [(model, warning)] for every schedule whose [num_threads] the
    registry normalized away, newest first. *)
