(** Model registry + two-tier compiled-predictor cache.

    Serving hot-swaps models out of a zoo, and a Treebeard compile
    (tiling, reordering, lowering, layout) is far too slow to sit on the
    request path of every batch. The registry keeps the source forests and
    two cache tiers keyed by [(model, canonical schedule, target)]:

    - a bounded in-memory {!Policy} tier of instantiated predictors, so
      repeated dispatches of a hot model hit the cache;
    - optionally (when created with [?cache_dir]) an on-disk
      {!Artifact} store of packed artifacts ({!Tb_lir.Pack}), so a cold
      or evicted entry — and, crucially, a {e warm restart} of a fresh
      process — hydrates by decode + {!Tb_vm.Jit.instantiate} instead of
      recompiling. Every fresh compile writes its artifact back.

    {!compiled} reports which tier answered as a {!provenance}. Any disk
    failure (I/O, a structured [A00x] decode error, metadata mismatch) is
    a miss that falls back to a fresh compile — see {!artifact_errors}.

    Serving-level parallelism replaces the schedule's row-loop threads: a
    worker owns a whole core, so every schedule is normalized to
    [num_threads = 1] and instantiated with
    {!Tb_vm.Jit.instantiate_single_thread}. Each compiled entry also
    carries a deterministic service-time model ([us_per_row], from
    {!Tb_core.Perf.simulate} on the registered sample rows — persisted
    uncalibrated in the artifact's metadata so hydration never touches the
    simulator — and modeled [compile_us] / [hydrate_us]) that the
    virtual-clock simulator charges instead of wall time, keeping every
    run reproducible; plus the {e measured} wall-clock costs
    ([wall_compile_us], [wall_instantiate_us]), which the dual-clock mode
    compares against the model.

    {!calibrate} closes the loop: given the drift a dual-clock run
    measured ({!Tb_analysis.Serve_check.model_drift}), it refits the
    modeled costs — a per-model service scale and a global compile scale —
    rescaling both the cached entries (in place) and every future
    compile. *)

type provenance = [ `Hit | `Disk | `Compile ]
(** Which cache tier satisfied a {!compiled} request: the in-memory
    tier, the on-disk artifact store, or a fresh compile. *)

val provenance_string : provenance -> string

type compiled = {
  model : string;
  schedule : Tb_hir.Schedule.t;  (** normalized: [num_threads = 1] *)
  tier : Tb_core.Treebeard.tier;
      (** the precision tier this entry actually serves — [`Float] for a
          float compile or a quantized request whose certificate was
          refuted, [`Int8]/[`Int16] for the integer fast path *)
  artifact : Tb_lir.Pack.t;
      (** the packed form this entry was instantiated from (for [`Compile]
          entries, the pack just constructed and written back to disk) *)
  predict : float array array -> float array array;
      (** single-thread instantiated closure *)
  mutable us_per_row : float;
      (** deterministic per-row service time (simulated cycles at the
          target's nominal clock), times any calibrated service scale *)
  mutable compile_us : float;
      (** modeled full-compilation cost, charged to a batch that misses
          both tiers; times any calibrated compile scale *)
  hydrate_us : float;
      (** modeled disk-hydration (decode + instantiate) cost, charged to a
          batch answered by the disk tier — far below [compile_us] *)
  wall_compile_us : float;
      (** measured wall-clock cost of building this entry, microseconds:
          lowering + packing + instantiation for a [`Compile] entry,
          read + decode + instantiation for a [`Disk] one. Excludes the
          service-time simulation (a serving-layer concern the old
          all-in-one timer wrongly lumped in). *)
  wall_instantiate_us : float;
      (** measured wall-clock cost of closure instantiation alone — the
          part both tiers share *)
}

type t

val create :
  ?target:Tb_cpu.Config.t ->
  ?policy:Policy.kind ->
  ?capacity:int ->
  ?cache_dir:string ->
  ?cache_max_bytes:int ->
  unit ->
  t
(** Defaults: Intel Rocket Lake, LRU, capacity 8 compiled entries, no
    disk tier. [cache_dir] enables the on-disk artifact store (created,
    parents included, if absent). [cache_max_bytes] caps the store's
    total size: after every artifact write the registry runs
    {!Artifact.gc}, evicting oldest-mtime files until under the cap.
    @raise Invalid_argument when [cache_max_bytes < 0]. *)

val register :
  t ->
  name:string ->
  ?profiles:Tb_model.Model_stats.tree_profile array ->
  ?sample_rows:float array array ->
  Tb_model.Forest.t ->
  unit
(** Add (or replace) a model. [profiles] enable probability-based tiling;
    [sample_rows] feed the service-time model (default: 48 deterministic
    gaussian rows seeded from the model name). *)

val models : t -> string list
(** Registration order. *)

val forest : t -> string -> Tb_model.Forest.t
(** @raise Not_found for unregistered names. *)

val compiled :
  ?precision:Tb_core.Treebeard.precision ->
  t ->
  model:string ->
  schedule:Tb_hir.Schedule.t ->
  compiled * provenance
(** Get-or-hydrate-or-compile; the provenance names the tier that
    answered ([`Hit] in-memory, [`Disk] artifact store, [`Compile]
    fresh). [precision] (default [`Float]) requests the integer fast
    path: the model is certified and differentially validated once per
    (model, request) — the outcome is memoized — and a refuted request
    degrades to the float tier, recorded in {!precision_fallbacks}. The
    {e resolved} tier is part of the cache key (and therefore of the
    artifact filename), so float and quantized entries never share a
    cache line or a file, and a fallback shares the plain float entry.
    The schedule is normalized before keying — [num_threads]
    clamped to 1 (each worker owns its core) and
    {!Tb_hir.Schedule.canonicalize} applied with the model's tree count
    (so e.g. a row-major interleave factor beyond the forest shares the
    entry of the clamped factor) — so schedules differing only in fields
    the compiled artifact cannot depend on share one entry and one
    compile. On a memory miss the inserted entry may evict another per
    the policy; a fresh compile also writes its artifact to the disk
    store (when enabled), and any disk-tier failure falls back to a
    fresh compile.
    @raise Not_found for unregistered names. *)

(** {2 Calibration} *)

type calibration = {
  service_scale : (string * float) list;
      (** per-model multiplicative correction to [us_per_row] *)
  compile_scale : float option;
      (** global multiplicative correction to [compile_us] *)
}

val calibration_of_drift :
  Tb_analysis.Serve_check.model_drift list -> calibration
(** Fit a calibration from a dual-clock run's measured drift: each
    model's service scale is its Σwall/Σvirtual ratio, and the compile
    scale is the miss-count-weighted mean of the per-model compile
    ratios (absent when the run measured no compile). Scales of
    non-positive or non-finite ratios are dropped. *)

val calibrate : t -> calibration -> unit
(** Apply a calibration: fold the scales into the registry's correction
    state (so future compiles are scaled) and rescale the already-cached
    entries' [us_per_row] / [compile_us] in place ({!Policy.iter} — no
    eviction-policy or hit-statistic side effects). Calibrations compose
    multiplicatively; because a drift ratio is measured against the
    {e currently} modeled costs, repeated measure-calibrate rounds
    converge toward ratio 1. *)

val calibration_to_json : calibration -> Tb_util.Json.t

val cache_stats : t -> Policy.stats
val cache_policy : t -> Policy.kind

val cache_dir : t -> string option
(** The disk tier's directory, when one is enabled. *)

val compile_count : t -> int
(** Total fresh compiles performed (misses of both tiers). *)

val hydration_count : t -> int
(** Total disk-tier hydrations (memory misses answered by a stored
    artifact). *)

val foreign_hydration_count : t -> int
(** Hydrations of keys this registry instance never compiled itself — the
    artifact was produced by another shard sharing the store, or by a
    previous process (warm restart). Evidence that artifact shipping, not
    recompilation, satisfied the dispatch. *)

val gc_removed_count : t -> int
(** Artifacts evicted by the [cache_max_bytes] garbage collector. *)

val clamp_warnings : t -> (string * string) list
(** [(model, warning)] for every schedule whose [num_threads] the
    registry normalized away, newest first. *)

val artifact_errors : t -> (string * string) list
(** [(model, error)] for every disk-tier failure the registry fell back
    from — read errors, structured [A00x] decode rejections, metadata
    mismatches, failed writes — newest first. Absent files are normal
    cold misses, not errors. *)

val precision_fallbacks : t -> (string * string) list
(** [(model, findings)] for every quantized-precision request that
    resolved to the float tier — the certificate was refuted
    (N001/N003/N004) or the quantized stage pair found a divergence
    (T005) — newest first. One entry per (model, request), matching the
    resolution memo. *)
