type policy = Fifo | Edf

let policy_to_string = function Fifo -> "fifo" | Edf -> "edf"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fifo" -> Ok Fifo
  | "edf" -> Ok Edf
  | s ->
    Error
      (Printf.sprintf "unknown scheduling policy %S (expected fifo or edf)" s)

type 'a entry = { deadline_us : float; seq : int; item : 'a }

(* Entries kept sorted by the policy's priority key, best first. The pool
   holds formed-but-unstarted batches, so its size is bounded by the
   scheduler backlog cap — linear insertion is fine and keeps ordering
   trivially deterministic. *)
type 'a t = {
  policy : policy;
  mutable entries : 'a entry list;
  mutable seq : int;
}

let create policy = { policy; entries = []; seq = 0 }

let policy_of t = t.policy
let length t = List.length t.entries
let is_empty t = t.entries = []

(* Priority order: EDF by (deadline, admission seq), FIFO by admission
   seq alone. Ties always fall back to seq, so the order is total and a
   run is reproducible. *)
let before t (a : 'a entry) (b : 'a entry) =
  match t.policy with
  | Fifo -> a.seq < b.seq
  | Edf ->
    a.deadline_us < b.deadline_us
    || (a.deadline_us = b.deadline_us && a.seq < b.seq)

let push t ~deadline_us item =
  let e = { deadline_us; seq = t.seq; item } in
  t.seq <- t.seq + 1;
  let rec insert = function
    | [] -> [ e ]
    | x :: rest when before t x e -> x :: insert rest
    | rest -> e :: rest
  in
  t.entries <- insert t.entries

let pop t =
  match t.entries with
  | [] -> None
  | e :: rest ->
    t.entries <- rest;
    Some e.item

let peek t = match t.entries with [] -> None | e :: _ -> Some e.item

let shed_last t =
  (* The entry the policy would serve last: under EDF the latest
     deadline (the least urgent work), under FIFO the newest admission.
     Overload sheds from this end first. *)
  match t.entries with
  | [] -> None
  | entries ->
    let rec split = function
      | [ last ] -> ([], last)
      | x :: rest ->
        let kept, last = split rest in
        (x :: kept, last)
      | [] -> assert false
    in
    let kept, last = split entries in
    t.entries <- kept;
    Some last.item

let to_list t = List.map (fun e -> e.item) t.entries
