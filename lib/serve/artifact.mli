(** On-disk packed-artifact store — the second tier of the registry's
    compiled-predictor cache.

    The in-memory {!Policy} tier answers repeat dispatches within a
    process; this store answers them {e across} processes: a warm restart
    finds the artifact a previous run packed, decodes it
    ({!Tb_lir.Pack.decode}) and instantiates the predictor
    ({!Tb_vm.Jit.instantiate}) instead of recompiling. Entries are keyed
    by the registry's cache key — [(model, canonical schedule, target)] —
    hashed into a filename; the decoded artifact's own metadata is checked
    against the expected key material, so a hash collision or a stale file
    under a reused name is a miss, never a wrong predictor.

    Corruption safety: every load failure is a structured value — an I/O
    error, a {!Tb_lir.Pack.error} (family [A001]..[A004]) or a metadata
    mismatch — and the registry's contract is to treat each as a miss and
    fall back to a fresh compile, overwriting the bad file. Writes are
    atomic (temp file + rename), so a crash mid-save leaves either the old
    artifact or none, not a torn one. *)

val write_file : string -> bytes -> (unit, string) result
(** Atomically write [bytes] to a path: write to a [.tmp] sibling, then
    rename over the destination. *)

val read_file : string -> (bytes, string) result
(** Read a whole file. [Error] carries the system message. *)

type load_error =
  | Absent  (** no artifact on disk for this key *)
  | Io of string  (** the file exists but could not be read *)
  | Decode of Tb_lir.Pack.error  (** structured [A00x] decode failure *)
  | Mismatch of string
      (** decoded fine, but the artifact's own metadata disagrees with the
          requested (model, schedule, target) — treat as a miss *)

val load_error_to_string : load_error -> string

type t
(** A store rooted at one directory. *)

val create : dir:string -> t
(** Open (creating the directory, parents included, if needed).
    @raise Sys_error when the directory cannot be created. *)

val dir : t -> string

val path : t -> key:string -> model:string -> string
(** The filename an artifact for [key] lives at:
    [<dir>/<sanitized model>-<fnv1a64(key)>.tbpack]. Deterministic, so
    separate processes agree on it. *)

val load :
  t ->
  key:string ->
  model:string ->
  target:string ->
  schedule:Tb_hir.Schedule.t ->
  (Tb_lir.Pack.t, load_error) result
(** Look up, read, decode and verify the artifact for [key]. The metadata
    check compares the decoded pack's model, target and exact canonical
    schedule JSON against the arguments. *)

val save : t -> key:string -> model:string -> Tb_lir.Pack.t -> (unit, string) result
(** Encode and atomically write the artifact for [key]. *)

val remove : t -> key:string -> model:string -> unit
(** Delete the artifact for [key] if present (used to clear a corrupt
    file before rewriting). Never raises. *)

type gc_result = {
  scanned : int;  (** [.tbpack] files found in the store *)
  removed : int;
  bytes_before : int;
  bytes_after : int;
}

val gc : t -> max_bytes:int -> gc_result
(** Evict oldest artifacts (by mtime, filename breaking ties) until the
    store's total [.tbpack] size is [<= max_bytes]. Unlinks are the same
    atomic deletes as {!remove}: a reader that raced an unlink sees
    [Absent] and recompiles — never a torn file. Files that vanish or
    error mid-scan are skipped.
    @raise Invalid_argument when [max_bytes < 0]. *)
