module Hashing = Tb_util.Hashing

type policy = Hash | Affinity

let policy_to_string = function Hash -> "hash" | Affinity -> "affinity"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "hash" -> Ok Hash
  | "affinity" -> Ok Affinity
  | s ->
    Error
      (Printf.sprintf "unknown routing policy %S (expected hash or affinity)" s)

type t = {
  policy : policy;
  vnodes : int;
  live : int array;  (* sorted live shard ids *)
  (* Affinity ring: every live shard contributes [vnodes] points; a model
     routes to the owner of the first point clockwise from its hash.
     Sorted by (point, shard) so collisions break deterministically. *)
  ring : (int64 * int) array;
}

let ring_of ~vnodes live =
  let points =
    Array.init
      (Array.length live * vnodes)
      (fun i ->
        let shard = live.(i / vnodes) and v = i mod vnodes in
        (Hashing.fnv1a64 (Printf.sprintf "shard:%d:vnode:%d" shard v), shard))
  in
  Array.sort
    (fun (a, sa) (b, sb) ->
      match Int64.unsigned_compare a b with 0 -> compare sa sb | c -> c)
    points;
  points

let of_shard_ids ?(vnodes = 64) policy ids =
  if ids = [] then invalid_arg "Router.of_shard_ids: no shards";
  if vnodes < 1 then invalid_arg "Router.of_shard_ids: vnodes < 1";
  List.iter
    (fun id -> if id < 0 then invalid_arg "Router.of_shard_ids: negative id")
    ids;
  let live = Array.of_list (List.sort_uniq compare ids) in
  if Array.length live <> List.length ids then
    invalid_arg "Router.of_shard_ids: duplicate shard id";
  {
    policy;
    vnodes;
    live;
    ring = (match policy with Hash -> [||] | Affinity -> ring_of ~vnodes live);
  }

let create ?vnodes policy ~shards =
  if shards < 1 then invalid_arg "Router.create: shards < 1";
  of_shard_ids ?vnodes policy (List.init shards Fun.id)

let policy_of t = t.policy
let vnodes t = t.vnodes
let shard_ids t = Array.to_list t.live
let num_shards t = Array.length t.live

let route t model =
  match t.policy with
  | Hash ->
    (* Plain modulus over the live set: perfectly balanced, but resizing
       remaps nearly every key — the foil the affinity policy beats. *)
    t.live.(Hashing.fnv1a64_mod model (Array.length t.live))
  | Affinity ->
    let h = Hashing.fnv1a64 model in
    let n = Array.length t.ring in
    (* First ring point with point >= h, wrapping to 0 past the end. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare (fst t.ring.(mid)) h < 0 then lo := mid + 1
      else hi := mid
    done;
    snd t.ring.(if !lo = n then 0 else !lo)

let add_shard t id =
  if id < 0 then invalid_arg "Router.add_shard: negative id";
  if Array.exists (( = ) id) t.live then
    invalid_arg "Router.add_shard: id already live";
  of_shard_ids ~vnodes:t.vnodes t.policy (id :: Array.to_list t.live)

let remove_shard t id =
  if not (Array.exists (( = ) id) t.live) then
    invalid_arg "Router.remove_shard: id not live";
  if Array.length t.live = 1 then
    invalid_arg "Router.remove_shard: cannot remove the last shard";
  of_shard_ids ~vnodes:t.vnodes t.policy
    (List.filter (( <> ) id) (Array.to_list t.live))

let to_json t =
  Tb_util.Json.Obj
    [
      ("policy", Tb_util.Json.Str (policy_to_string t.policy));
      ("vnodes", Tb_util.Json.Num (float_of_int t.vnodes));
      ( "shards",
        Tb_util.Json.List
          (List.map
             (fun id -> Tb_util.Json.Num (float_of_int id))
             (shard_ids t)) );
    ]
